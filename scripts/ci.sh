#!/usr/bin/env bash
# Tier-1 CI gate: the default build + full test suite, then the same suite
# under ThreadSanitizer (the collective engine, FSDP runtime, loader, and
# trace recorder are all concurrency-heavy — TSan is the real reviewer).
#
# Usage:  scripts/ci.sh [--skip-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: default build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

if [[ "$SKIP_TSAN" == "0" ]]; then
  echo "== tier-1: ThreadSanitizer build + ctest =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGEOFM_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure
fi

echo "== ci.sh: all suites passed =="
