#!/usr/bin/env bash
# Tier-1 CI gate: the default build + full test suite, then the same suite
# under ThreadSanitizer (the collective engine, FSDP runtime, loader, and
# trace recorder are all concurrency-heavy — TSan is the real reviewer).
#
# Usage:  scripts/ci.sh [--skip-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: default build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

echo "== kernel engine: scalar-oracle cross-check =="
# The default build above ran everything under the SIMD kernel engine
# (GEOFM_KERNELS default). Re-run the kernel-facing suites against the
# scalar oracle so both sides of the dispatch seam stay green, plus the
# parity suite which compares the two implementations directly.
GEOFM_KERNELS=scalar ./build/tests/geofm_tests \
    --gtest_filter='Kernel*:Ops.*:Linear.*:LayerNorm.*:Attention.*:Mlp.*:TransformerBlock.*:PatchEmbed.*:AdamW.*:Sgd.*:Lars.*:Mae.*:ViT.*'

echo "== trace-span budget gate =="
# Structural perf tripwires: comm wait, unshard, loader fetch, the exposed
# checkpoint-snapshot cost, the elastic-recovery path (recover.*, including
# grow-back readmission), and the uploader's publish-side hook
# (upload.exposed) as fractions of step time (budgets in
# scripts/span_budgets.txt).
./build/bench/bench_span_budget_gate scripts/span_budgets.txt

echo "== fault matrix: every FaultPlan kind x sharding strategy =="
# Each deterministic fault kind (kill, stall, slow-rank, corruption, and
# the storage-path injections) under both DDP (NO_SHARD) and FULL_SHARD,
# plus the shrink-and-continue and grow-back recovery scenarios and the
# retrying uploader, as their own pass so a fault-layer regression is
# named here rather than buried in the full suite. FaultTrace is the
# JSON record/replay contract for realized fault schedules.
./build/tests/geofm_tests \
    --gtest_filter='*ElasticFaultMatrix*:ElasticRecovery.*:*ElasticGrowBack*:Fault.*:FaultTrace.*:Uploader.*:StorageFaults.*:Chaos*'

echo "== observability: postmortem bundles + sampler + health report =="
# Flight-recorder contract over the elastic fault matrix: every
# fault-injected recovery (kill, watchdog-diagnosed stall, slow rank past
# the deadline) must leave exactly one postmortem bundle whose
# kind/diagnosis/suspects match the abort path's, written atomically (the
# torn-write seam proves no partial bundle can surface), and replayed
# fault plans must reproduce the bundle structure. Telemetry.* covers the
# background sampler's JSONL series; HealthReport.* the end-of-run
# aggregation and Prometheus exposition.
./build/tests/geofm_tests \
    --gtest_filter='Postmortem.*:Telemetry.*:HealthReport.*'
# Overhead anchor: BENCH_obs.json records trace-scope, flight-capture,
# and sampler cost (the budget gate above enforces telemetry.sample).
GEOFM_BENCH_QUICK=1 GEOFM_BENCH_CACHE=/tmp/geofm_ci_bench_cache \
    ./build/bench/bench_obs_overhead

echo "== serving tier: hot-reload, batching, cache, heads =="
# The frozen-encoder embedding service: batcher coalescing + bitwise
# batched-vs-single parity, cache LRU/epoch semantics, per-tenant head
# hot-swap, reload robustness under storage faults (torn write, unreadable
# shard -> keep serving old weights), and the E2E hot-swap-under-load
# contract (no mixed weights, post-swap embeddings match a direct
# forward, cache hits skip the encoder). The full suite already ran in
# ctest above; this pass names a serving regression directly.
./build/tests/geofm_tests --gtest_filter='Serve*'
# Overload phase: load beyond capacity against a bounded admission queue
# must serve some requests with bounded latency, shed the excess with
# typed errors, and resolve every future (no hangs) — the suite asserts
# all three. Failover/breaker/cache-only degradation runs in the same
# filter (ServeFailover.*, ServeBreaker.*, ServeShutdown.*).
./build/tests/geofm_tests \
    --gtest_filter='ServeOverload.*:ServeShutdown.*:ServeFailover.*:ServeBreaker.*'
# Latency/throughput anchor: closed-loop sweep over (max_batch,
# max_delay_us), p50/p99 per config, plus the overload phase's shed rate
# and admitted-request p50/p99, into BENCH_serve.json.
GEOFM_BENCH_QUICK=1 GEOFM_BENCH_CACHE=/tmp/geofm_ci_bench_cache \
    ./build/bench/bench_serve

echo "== chaos soak: seeded campaigns + invariant audit =="
# Full-stack failure drill: generated campaigns land correlated comm +
# storage + loader faults on an elastic run with a checkpoint mirror,
# flood the serving tier, then audit the system invariants (futures
# conserved, publications atomic, recovery bounded AND bitwise,
# postmortems present/replayable). Fixed seed so CI is deterministic;
# the wall-clock budget bounds the leg, and any violation exits nonzero
# with the offending campaign's seed and kept roots. Longer soaks:
# scripts/soak.sh <seconds>.
./build/bench/soak_chaos --seconds 45 --campaigns 8 --seed 806661

echo "== kernel engine: parity suite under AddressSanitizer =="
# The SIMD kernels do tail-masked loads/stores and packed-panel staging;
# ASan is the reviewer for off-by-one lane handling. Tests-only target —
# the full ASan ctest pass is not in tier-1 budget.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGEOFM_SANITIZE=address
cmake --build build-asan -j "$JOBS" --target geofm_tests
./build-asan/tests/geofm_tests --gtest_filter='Kernel*:ThreadPool.*'
GEOFM_KERNELS=scalar ./build-asan/tests/geofm_tests --gtest_filter='Kernel*'

if [[ "$SKIP_TSAN" == "0" ]]; then
  echo "== tier-1: ThreadSanitizer build + ctest =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGEOFM_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure
  echo "== TSan: kernel parity suite =="
  # The kernel engine parallelizes over the pool with grain hints and
  # thread-local packing buffers; run the parity suite under TSan in both
  # dispatch modes.
  ./build-tsan/tests/geofm_tests --gtest_filter='Kernel*:ThreadPool.*'
  GEOFM_KERNELS=scalar ./build-tsan/tests/geofm_tests --gtest_filter='Kernel*'
  echo "== TSan: fault-injected restart, extra schedules =="
  # The abort -> unwind -> async-writer-drain -> resume path is the most
  # concurrency-dense sequence in the repo; ctest above ran it once, this
  # repeats it for schedule diversity under TSan.
  ./build-tsan/tests/geofm_tests \
      --gtest_filter='FaultTolerance.*' --gtest_repeat=3
  echo "== TSan: in-run elastic recovery, extra schedules =="
  # Kill-triggered and watchdog-triggered recovery race the supervisor,
  # the dying rank, survivors, the watchdog thread, and checkpoint I/O;
  # repeat for schedule diversity.
  ./build-tsan/tests/geofm_tests \
      --gtest_filter='ElasticRecovery.KillMidStepShrinksAndContinues:ElasticRecovery.StallQuarantinedByWatchdog' \
      --gtest_repeat=2
  echo "== TSan: uploader vs retention GC, extra schedules =="
  # The background uploader races checkpoint publication (enqueue from the
  # publishing rank) and the retention GC (anchor protection); repeat so
  # the slow-copy/GC interleaving sees multiple schedules.
  ./build-tsan/tests/geofm_tests \
      --gtest_filter='Uploader.*' --gtest_repeat=3
  echo "== TSan: serving hot-swap under load, extra schedules =="
  # The serving tier races the batch worker (pinning + cache inserts), the
  # reload poller (restore + atomic swap + cache invalidation), and client
  # threads (submit/futures); repeat the reload and E2E suites for
  # schedule diversity.
  ./build-tsan/tests/geofm_tests \
      --gtest_filter='ServeE2E.*:ServeReload.*' --gtest_repeat=2
  echo "== TSan: serving overload + failover, extra schedules =="
  # Admission control races submitters against the worker's drain and
  # the shed paths (expiry sweeps, displacement, shutdown completion);
  # failover/breaker race the poller's source scan against serving.
  ./build-tsan/tests/geofm_tests \
      --gtest_filter='ServeOverload.*:ServeShutdown.*:ServeFailover.*:ServeBreaker.*' \
      --gtest_repeat=2
  echo "== TSan: mixed chaos campaign, extra schedules =="
  # One mixed comm+storage+loader campaign under TSan: the campaign layers
  # loader worker kills/respawns and watchdog takeovers on top of the
  # elastic recovery and uploader races above — the densest cross-subsystem
  # interleaving the repo has. Fixed seed; repeated via --campaigns for
  # schedule diversity.
  cmake --build build-tsan -j "$JOBS" --target soak_chaos
  ./build-tsan/bench/soak_chaos --seconds 120 --campaigns 2 --seed 806662
  echo "== TSan: grow-back at a checkpoint boundary, extra schedules =="
  # Shrink -> probationary rendezvous -> re-formed communicator layers the
  # probe group, the supervisor pad rank, the watchdog, and a fresh
  # restore on top of the recovery machinery above.
  ./build-tsan/tests/geofm_tests \
      --gtest_filter='Strategies/ElasticGrowBack.ShrinkThenGrowBackBitwise/full_shard' \
      --gtest_repeat=2
fi

echo "== ci.sh: all suites passed =="
