#!/usr/bin/env bash
# Tier-1 CI gate: the default build + full test suite, then the same suite
# under ThreadSanitizer (the collective engine, FSDP runtime, loader, and
# trace recorder are all concurrency-heavy — TSan is the real reviewer).
#
# Usage:  scripts/ci.sh [--skip-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: default build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

echo "== trace-span budget gate =="
# Structural perf tripwires: comm wait, unshard, loader fetch, and the
# exposed checkpoint-snapshot cost as fractions of step time (budgets in
# scripts/span_budgets.txt).
./build/bench/bench_span_budget_gate scripts/span_budgets.txt

if [[ "$SKIP_TSAN" == "0" ]]; then
  echo "== tier-1: ThreadSanitizer build + ctest =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGEOFM_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure
  echo "== TSan: fault-injected restart, extra schedules =="
  # The abort -> unwind -> async-writer-drain -> resume path is the most
  # concurrency-dense sequence in the repo; ctest above ran it once, this
  # repeats it for schedule diversity under TSan.
  ./build-tsan/tests/geofm_tests \
      --gtest_filter='FaultTolerance.*' --gtest_repeat=3
fi

echo "== ci.sh: all suites passed =="
