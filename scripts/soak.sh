#!/usr/bin/env bash
# Chaos soak quick-start: build the soak runner and hammer the full stack
# with seeded multi-subsystem fault campaigns until the wall-clock budget
# expires. Every campaign is replayable from its printed seed:
#
#   scripts/soak.sh                  # 60s budget, default seed
#   scripts/soak.sh 300              # 5-minute soak
#   SEED=123 scripts/soak.sh 300     # different campaign stream
#
# A violated invariant keeps the campaign's checkpoint roots under
# /tmp/geofm_soak_<seed>/ for postmortem and exits nonzero; replay the
# exact scenario with  ./build/bench/soak_chaos --campaigns 1 --seed <S>.
set -euo pipefail

cd "$(dirname "$0")/.."

BUDGET_SECONDS="${1:-60}"
SEED="${SEED:-806661}"   # 0xc4a05, the runner's default
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS" --target soak_chaos

exec "./$BUILD_DIR/bench/soak_chaos" --seconds "$BUDGET_SECONDS" --seed "$SEED"
