// Distributed MAE pretraining with FSDP over thread ranks — the
// functional analogue of the paper's Frontier runs. Four "GPUs" (threads)
// train one model with FULL_SHARD parameter sharding; every rank sees a
// different slice of each global batch, and gradients are
// reduce-scattered exactly as PyTorch FSDP would.
//
// Run:  ./example_distributed_pretraining
#include <cstdio>
#include <mutex>

#include "geofm.hpp"

using namespace geofm;

int main() {
  constexpr int kRanks = 4;
  constexpr i64 kGlobalBatch = 64;
  constexpr i64 kLocalBatch = kGlobalBatch / kRanks;
  constexpr int kSteps = 30;

  std::printf("distributed MAE pretraining: %d ranks, global batch %lld, "
              "FULL_SHARD\n",
              kRanks, static_cast<long long>(kGlobalBatch));

  auto corpus = data::million_aid_pretrain(512, 32);
  std::mutex io_mu;

  comm::run_ranks(kRanks, [&](comm::Communicator& c) {
    // Every rank constructs the same model; FSDP broadcasts rank 0's
    // initialization and shards parameters.
    Rng rng(1);
    models::MAE mae(models::mae_for(models::proxy_huge()), rng);
    parallel::FsdpOptions opts;
    opts.strategy = parallel::ShardingStrategy::kFullShard;
    opts.prefetch = parallel::BackwardPrefetch::kBackwardPre;  // paper pick
    parallel::Fsdp fsdp(mae, c, opts);
    optim::AdamW opt(fsdp.optimizer_parameters(), 3e-3, 0.9, 0.95, 1e-8,
                     0.05);
    if (c.rank() == 0) {
      std::printf("  shard elements/rank: %lld of %lld total\n",
                  static_cast<long long>(fsdp.shard_elements_per_rank()),
                  static_cast<long long>(mae.num_params()));
    }

    data::DataLoader::Options lo;
    lo.batch_size = kGlobalBatch;  // each rank loads the global batch and
    lo.n_workers = 0;              // takes its slice: simplest SPMD pattern
    lo.seed = 9;
    data::DataLoader loader(corpus, data::Split::kTrain, lo);

    int step = 0;
    for (i64 epoch = 0; step < kSteps; ++epoch) {
      loader.start_epoch(epoch);
      while (auto batch = loader.next()) {
        if (step >= kSteps) break;
        // Slice the global batch for this rank.
        const i64 per = batch->images.numel() / batch->images.dim(0);
        Tensor mine({kLocalBatch, 3, 32, 32});
        mine.copy_(batch->images.flat_view(c.rank() * kLocalBatch * per,
                                           kLocalBatch * per));

        fsdp.begin_step();
        Rng mask_rng(static_cast<u64>(1000 + step));
        const float local_loss =
            mae.forward(mine, mask_rng, c.rank() * kLocalBatch);
        mae.backward();
        fsdp.end_backward();
        opt.step();

        // Average the loss across ranks for logging.
        Tensor loss_t = Tensor::from({local_loss});
        c.all_reduce(loss_t, comm::ReduceOp::kAvg);
        if (c.rank() == 0 && step % 10 == 0) {
          std::lock_guard<std::mutex> lk(io_mu);
          std::printf("  step %3d  global loss %.4f  (gathers so far: %d "
                      "in-flight peak %d)\n",
                      step, loss_t[0],
                      static_cast<int>(fsdp.last_schedule().size()),
                      fsdp.peak_unsharded_units());
        }
        ++step;
      }
    }

    // Materialize and checkpoint the full model from rank 0.
    fsdp.gather_full_parameters();
    if (c.rank() == 0) {
      train::save_checkpoint(mae, "/tmp/geofm_distributed_example.bin");
      std::printf("  checkpoint written to /tmp/geofm_distributed_example.bin\n");
    }
    c.barrier();
  });

  std::printf("done.\n");
  return 0;
}
