// Distributed MAE pretraining with FSDP over thread ranks — the
// functional analogue of the paper's Frontier runs. Four "GPUs" (threads)
// train one model with FULL_SHARD parameter sharding; every rank sees a
// different slice of each global batch, parameter gathers and gradient
// reduce-scatters are nonblocking and overlap compute, and the driver
// reports how much communication the async runtime hid behind compute.
//
// Run:  ./example_distributed_pretraining
//
// Set GEOFM_TRACE=trace.json to capture a Chrome-trace timeline of the
// run (one track per rank; open in chrome://tracing or ui.perfetto.dev).
#include <cstdio>
#include <mutex>

#include "geofm.hpp"

using namespace geofm;

int main() {
  constexpr int kRanks = 4;

  train::DistributedPretrainConfig cfg;
  cfg.steps = 30;
  cfg.global_batch = 64;
  cfg.lr = 3e-3;
  cfg.weight_decay = 0.05;
  cfg.seed = 9;
  cfg.loader_workers = 2;  // prefetch batches off the training thread
  cfg.verbose = true;

  std::printf("distributed MAE pretraining: %d ranks, global batch %lld, "
              "FULL_SHARD\n",
              kRanks, static_cast<long long>(cfg.global_batch));

  auto corpus = data::million_aid_pretrain(512, 32);
  std::mutex io_mu;

  comm::run_ranks(kRanks, [&](comm::Communicator& c) {
    // Every rank constructs the same model; FSDP broadcasts rank 0's
    // initialization and shards parameters.
    Rng rng(1);
    models::MAE mae(models::mae_for(models::proxy_huge()), rng);
    parallel::FsdpOptions opts;
    opts.strategy = parallel::ShardingStrategy::kFullShard;
    opts.prefetch = parallel::BackwardPrefetch::kBackwardPre;  // paper pick
    opts.limit_all_gathers = true;
    parallel::Fsdp fsdp(mae, c, opts);
    if (c.rank() == 0) {
      std::printf("  shard elements/rank: %lld of %lld total\n",
                  static_cast<long long>(fsdp.shard_elements_per_rank()),
                  static_cast<long long>(mae.num_params()));
    }

    const auto result = train::pretrain_mae_distributed(mae, fsdp, c, corpus,
                                                        cfg);

    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(io_mu);
      std::printf("  final loss %.4f after %lld images in %.1fs\n",
                  result.step_losses.back(),
                  static_cast<long long>(result.images_seen),
                  result.wall_seconds);
      std::printf("  overlap: %d/%d collectives already complete when "
                  "waited; %.1f ms comm hidden behind compute, %.1f ms "
                  "exposed; peak in-flight gathers %d (cap %d)\n",
                  result.collectives_overlapped, result.collectives_waited,
                  1e3 * result.overlapped_comm_seconds,
                  1e3 * result.exposed_wait_seconds,
                  result.peak_inflight_gathers,
                  parallel::kAllGatherInflightCap);
      std::printf("  input pipeline: %.1f ms loader-exposed over %lld steps "
                  "(%d workers/rank)\n",
                  1e3 * result.loader_exposed_seconds,
                  static_cast<long long>(cfg.steps), cfg.loader_workers);
    }

    // Materialize and checkpoint the full model from rank 0.
    fsdp.gather_full_parameters();
    if (c.rank() == 0) {
      train::save_checkpoint(mae, "/tmp/geofm_distributed_example.bin");
      std::printf("  checkpoint written to /tmp/geofm_distributed_example.bin\n");
    }
    c.barrier();
  });

  std::printf("done.\n");
  return 0;
}
