// Distributed MAE pretraining with FSDP over thread ranks — the
// functional analogue of the paper's Frontier runs. Four "GPUs" (threads)
// train one model with FULL_SHARD parameter sharding; every rank's loader
// renders only its slice of each global batch, parameter gathers and
// gradient reduce-scatters are nonblocking and overlap compute, and the
// driver reports how much communication the async runtime hid behind
// compute.
//
// The run also exercises the fault-tolerance path end to end: sharded
// checkpoints are snapshotted asynchronously every 10 steps (the training
// loop only pays for the host-side staging copy; serialization and I/O
// happen on a background writer), and a second phase resumes from the
// latest checkpoint at HALF the world size — the elastic reshard path
// reassembling 4 ranks' shards into 2 ranks' layout.
//
// A third phase survives a fault *in-run* and then heals: a
// deterministic FaultPlan kills one rank mid-step under the elastic
// supervisor, which quarantines it, re-forms the communicator over the
// survivors (4 -> 2 here, since the global batch forces an even world),
// reshards from the latest checkpoint, and continues. At the next
// checkpoint boundary the supervisor runs the quarantined identities
// through a probationary health check and grows the world back to 4 —
// and every checkpoint it publishes along the way is mirrored to a
// secondary location by the background retrying uploader.
//
// Run:  ./example_distributed_pretraining
//
// Set GEOFM_TRACE=trace.json to capture a Chrome-trace timeline of the
// run (one track per rank; `ckpt.snapshot` spans sit on the rank tracks,
// `ckpt.write` on the background writer tracks).
#include <cstdio>
#include <filesystem>
#include <mutex>

#include "geofm.hpp"

using namespace geofm;

namespace {

double metric_sum(const char* name) {
  for (const auto& sample : obs::MetricsRegistry::instance().snapshot()) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

}  // namespace

int main() {
  const std::string ckpt_root = "/tmp/geofm_distributed_example_ckpt";
  std::filesystem::remove_all(ckpt_root);

  train::DistributedPretrainConfig cfg;
  cfg.steps = 20;
  cfg.global_batch = 64;
  cfg.lr = 3e-3;
  cfg.weight_decay = 0.05;
  cfg.seed = 9;
  cfg.loader_workers = 2;  // prefetch batches off the training thread
  cfg.verbose = true;
  cfg.checkpoint_every_n_steps = 10;
  cfg.checkpoint_dir = ckpt_root;
  cfg.async_checkpoint = true;

  std::printf("distributed MAE pretraining: 4 ranks, global batch %lld, "
              "FULL_SHARD, async checkpoint every %lld steps\n",
              static_cast<long long>(cfg.global_batch),
              static_cast<long long>(cfg.checkpoint_every_n_steps));

  auto corpus = data::million_aid_pretrain(512, 32);
  std::mutex io_mu;

  auto run_phase = [&](int n_ranks, const train::DistributedPretrainConfig&
                                        phase_cfg) {
    comm::run_ranks(n_ranks, [&](comm::Communicator& c) {
      // Every rank constructs the same model; FSDP broadcasts rank 0's
      // initialization and shards parameters.
      Rng rng(1);
      models::MAE mae(models::mae_for(models::proxy_huge()), rng);
      parallel::FsdpOptions opts;
      opts.strategy = parallel::ShardingStrategy::kFullShard;
      opts.prefetch = parallel::BackwardPrefetch::kBackwardPre;  // paper pick
      opts.limit_all_gathers = true;
      parallel::Fsdp fsdp(mae, c, opts);
      if (c.rank() == 0) {
        std::printf("  [%d ranks] shard elements/rank: %lld of %lld total\n",
                    n_ranks,
                    static_cast<long long>(fsdp.shard_elements_per_rank()),
                    static_cast<long long>(mae.num_params()));
      }

      const auto result =
          train::pretrain_mae_distributed(mae, fsdp, c, corpus, phase_cfg);

      if (c.rank() == 0) {
        std::lock_guard<std::mutex> lk(io_mu);
        std::printf("  [%d ranks] steps %lld..%lld, final loss %.4f after "
                    "%lld images in %.1fs\n",
                    n_ranks, static_cast<long long>(result.start_step),
                    static_cast<long long>(phase_cfg.steps - 1),
                    result.step_losses.back(),
                    static_cast<long long>(result.images_seen),
                    result.wall_seconds);
        std::printf("  overlap: %d/%d collectives already complete when "
                    "waited; %.1f ms comm hidden behind compute, %.1f ms "
                    "exposed; peak in-flight gathers %d (cap %d)\n",
                    result.collectives_overlapped, result.collectives_waited,
                    1e3 * result.overlapped_comm_seconds,
                    1e3 * result.exposed_wait_seconds,
                    result.peak_inflight_gathers,
                    parallel::kAllGatherInflightCap);
        std::printf("  input pipeline: %.1f ms loader-exposed "
                    "(%d workers/rank, worker-side batch slicing)\n",
                    1e3 * result.loader_exposed_seconds,
                    phase_cfg.loader_workers);
      }

      // Materialize and checkpoint the full model from rank 0 (the
      // single-file legacy format downstream tools read).
      fsdp.gather_full_parameters();
      if (c.rank() == 0) {
        train::save_checkpoint(mae, "/tmp/geofm_distributed_example.bin");
      }
      c.barrier();
    });
  };

  // Phase 1: 4 ranks, checkpoints at steps 9 and 19.
  run_phase(4, cfg);
  const double snapshot_s = metric_sum("ckpt.snapshot_seconds");
  const double write_s = metric_sum("ckpt.write_seconds");
  std::printf("  async checkpointing: %.1f ms exposed staging vs %.1f ms "
              "hidden write+serialize (%lld bytes across %d shard writes)\n",
              1e3 * snapshot_s, 1e3 * write_s,
              static_cast<long long>(metric_sum("ckpt.bytes_written")),
              static_cast<int>(metric_sum("ckpt.shard_writes")));

  // Phase 2: elastic restart — resume the world-4 checkpoint on 2 ranks.
  const ckpt::PublishedManifest latest =
      ckpt::latest_published_manifest(ckpt_root);
  std::printf("resuming from %s at world size 2 (written at 4)\n",
              latest.dir.c_str());
  train::DistributedPretrainConfig resume_cfg = cfg;
  resume_cfg.steps = 30;
  resume_cfg.resume_from = ckpt_root;
  run_phase(2, resume_cfg);

  // Phase 3: in-run failure recovery, then grow-back. A fresh 4-rank run
  // under the elastic supervisor, with a fault plan that kills rank 1 at
  // step 12; the comm watchdog (1s deadline) would likewise catch a
  // silent stall. Survivors unwind with comm::Aborted; the supervisor
  // quarantines the dead rank, trims to an even world (global batch 64 is
  // not divisible by 3), re-forms at world 2, and reshards from the
  // step-9 checkpoint. With readmission enabled it then stops at the next
  // checkpoint boundary (step 14), health-checks the two parked
  // identities in a probationary rendezvous, and grows back to world 4
  // for the final stretch. Every published checkpoint is also mirrored to
  // a secondary directory by the background retrying uploader — training
  // never blocks on the mirror.
  const std::string elastic_root = ckpt_root + "_elastic";
  const std::string mirror_root = elastic_root + "_mirror";
  std::filesystem::remove_all(elastic_root);
  std::filesystem::remove_all(mirror_root);
  std::printf("elastic phase: 4 ranks, rank 1 killed at step 12 by fault "
              "plan; shrink, then grow back at the next checkpoint "
              "boundary\n");
  train::ElasticConfig ecfg;
  ecfg.model = models::mae_for(models::proxy_huge());
  ecfg.model_seed = 1;
  ecfg.world = 4;
  ecfg.fsdp.strategy = parallel::ShardingStrategy::kFullShard;
  ecfg.fsdp.prefetch = parallel::BackwardPrefetch::kBackwardPre;
  ecfg.train = cfg;
  ecfg.train.steps = 20;
  ecfg.train.checkpoint_every_n_steps = 5;
  ecfg.train.checkpoint_dir = elastic_root;
  ecfg.train.upload.destination = mirror_root;
  ecfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 12));
  ecfg.watchdog_deadline_seconds = 1.0;
  ecfg.readmission.readmit_quarantined = true;
  const auto eres = train::run_elastic(ecfg, corpus);
  for (size_t i = 0; i < eres.attempts.size(); ++i) {
    const auto& a = eres.attempts[i];
    if (a.completed) {
      std::printf("  attempt %zu: world %d ran steps %lld..%lld "
                  "(last loss %.4f)%s%s\n",
                  i + 1, a.world, static_cast<long long>(a.start_step),
                  static_cast<long long>(a.start_step) +
                      static_cast<long long>(a.losses.size()) - 1,
                  a.losses.back(),
                  a.readmitted.empty() ? "" : " — after growing back",
                  a.truncated_for_growth ? "; stopped at boundary to re-admit"
                                         : "");
    } else {
      std::printf("  attempt %zu: world %d failed — %s; quarantined rank "
                  "%d\n",
                  i + 1, a.world, a.failure.c_str(),
                  a.quarantined.empty() ? -1 : a.quarantined.front());
    }
  }
  std::printf("  recovered %d time(s) (%.1f ms failure-to-running), grew "
              "back %d time(s) (spans recover.detect / recover.reform / "
              "recover.reshard / recover.readmit in the trace)\n",
              eres.recoveries, 1e3 * eres.recovery_seconds,
              eres.readmissions);
  std::printf("  uploader: mirrored %d checkpoint(s) to %s "
              "(%lld bytes, %d attempt(s), %d retrie(s), %d gave up)\n",
              static_cast<int>(metric_sum("upload.checkpoints")),
              mirror_root.c_str(),
              static_cast<long long>(metric_sum("upload.bytes")),
              static_cast<int>(metric_sum("upload.attempts")),
              static_cast<int>(metric_sum("upload.retries")),
              static_cast<int>(metric_sum("upload.gave_up")));

  std::printf("done. checkpoints under %s, final model at "
              "/tmp/geofm_distributed_example.bin\n",
              ckpt_root.c_str());
  return 0;
}
