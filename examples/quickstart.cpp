// Quickstart: the full geofm workflow in one file —
//   1. build a (proxy-scale) MAE/ViT model,
//   2. self-supervised pretraining on the procedural MillionAID corpus,
//   3. linear probing on a downstream scene-classification dataset,
//   4. inspecting accuracy.
//
// Run:  ./example_quickstart
#include <cstdio>

#include "geofm.hpp"

using namespace geofm;

int main() {
  std::printf("geofm quickstart\n================\n");

  // 1. A small ViT encoder wrapped in the MAE pretraining architecture.
  models::ViTConfig encoder = models::proxy_1b();
  Rng rng(/*seed=*/42);
  models::MAE mae(models::mae_for(encoder), rng);
  std::printf("model: %s (%lld parameters as MAE)\n", encoder.name.c_str(),
              static_cast<long long>(mae.num_params()));

  // 2. Pretrain with the paper's recipe (AdamW, cosine schedule, 75%%
  //    masking), on a small procedural corpus so this runs in ~a minute.
  auto corpus = data::million_aid_pretrain(/*n_images=*/512, encoder.img_size);
  train::PretrainConfig pretrain;
  pretrain.epochs = 8;
  pretrain.batch_size = 64;
  pretrain.base_lr = 3e-3;
  pretrain.seed = 7;
  pretrain.verbose = false;
  std::printf("pretraining on %lld images x %lld epochs...\n",
              static_cast<long long>(corpus.size(data::Split::kTrain)),
              static_cast<long long>(pretrain.epochs));
  auto result = train::pretrain_mae(mae, corpus, pretrain);
  std::printf("  loss: %.4f -> %.4f (%.1fs)\n", result.epoch_losses.front(),
              result.epoch_losses.back(), result.wall_seconds);

  // 3. Freeze the encoder; train a linear classifier on UCM.
  auto ucm = data::ucm(encoder.img_size, {.divisor = 3});
  train::ProbeConfig probe;
  probe.epochs = 20;
  probe.batch_size = 64;
  probe.seed = 3;
  std::printf("linear probing on %s (%d classes)...\n", ucm.name().c_str(),
              ucm.n_classes());
  auto probed = train::linear_probe(mae, ucm, probe);

  // 4. Results.
  std::printf("  top-1 %.1f%%  top-5 %.1f%%  (chance %.1f%%)\n",
              100 * probed.final_top1, 100 * probed.final_top5,
              100.0 / ucm.n_classes());
  std::printf("done. Next: examples/distributed_pretraining.cpp for FSDP,\n"
              "examples/frontier_scaling_study.cpp for the simulator.\n");
  return 0;
}
