// MAE reconstruction visualization: pretrain briefly, mask a scene, and
// print original / masked / reconstructed views as ASCII intensity maps —
// a qualitative check that the masked-autoencoding objective learned
// something about geospatial structure.
//
// Run:  ./example_mae_reconstruction
#include <cstdio>

#include "geofm.hpp"
#include "tensor/ops.hpp"

using namespace geofm;

namespace {

// Renders channel 0 of [C,H,W] (or [H,W]) as ASCII ramp.
void print_ascii(const Tensor& img, i64 h, i64 w, const char* title) {
  static const char* ramp = " .:-=+*#%@";
  std::printf("%s\n", title);
  float lo = 1e9f, hi = -1e9f;
  for (i64 i = 0; i < h * w; ++i) {
    lo = std::min(lo, img[i]);
    hi = std::max(hi, img[i]);
  }
  const float scale = (hi > lo) ? 9.0f / (hi - lo) : 0.f;
  for (i64 y = 0; y < h; ++y) {
    for (i64 x = 0; x < w; ++x) {
      const int level =
          static_cast<int>((img[y * w + x] - lo) * scale + 0.5f);
      std::putchar(ramp[std::max(0, std::min(9, level))]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  Rng rng(3);
  models::MAE mae(models::mae_for(models::proxy_3b()), rng);

  std::printf("pretraining a %s MAE for reconstruction demo...\n",
              models::proxy_3b().name.c_str());
  auto corpus = data::million_aid_pretrain(1024, 32);
  train::PretrainConfig pc;
  pc.epochs = 10;
  pc.batch_size = 64;
  pc.base_lr = 3e-3;
  pc.seed = 7;
  auto result = train::pretrain_mae(mae, corpus, pc);
  std::printf("loss %.4f -> %.4f\n\n", result.epoch_losses.front(),
              result.epoch_losses.back());

  // One held-out scene.
  auto ds = data::ucm(32);
  data::Sample sample = ds.get(data::Split::kTest, 7);
  Tensor batch = sample.image.view({1, 3, 32, 32});

  Rng mask_rng(99);
  const float loss = mae.forward(batch, mask_rng);
  const auto& mask = mae.last_mask();

  // Original (channel 0).
  print_ascii(sample.image, 32, 32, "original (channel 0):");

  // Masked view: zero out masked patches.
  Tensor masked = sample.image.clone();
  for (i64 p = 0; p < 16; ++p) {
    if (mask[static_cast<size_t>(p)] == 0) continue;  // visible
    const i64 py = p / 4, px = p % 4;
    for (i64 y = 0; y < 8; ++y) {
      for (i64 x = 0; x < 8; ++x) {
        masked[(py * 8 + y) * 32 + px * 8 + x] = 0.f;
      }
    }
  }
  print_ascii(masked, 32, 32, "\nmasked input (75% of patches hidden):");

  // Reconstruction: decoder output for all patches, un-patchified.
  Tensor recon = ops::unpatchify(mae.last_prediction(), 8, 3);
  print_ascii(recon, 32, 32, "\nMAE reconstruction (normalized space):");

  std::printf("\nmasked-patch reconstruction loss on this scene: %.4f\n",
              loss);
  return 0;
}
