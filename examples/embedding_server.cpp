// Embedding-server quick start: the serving tier end to end.
//
// 1. "Train" and publish checkpoint A into a manifest directory (here a
//    freshly initialized tiny MAE stands in for a pretrained encoder —
//    point checkpoint_root at a real training run's checkpoint_dir or at
//    the uploader's mirror to serve real weights).
// 2. Start a ModelServer on the root: it loads the newest published
//    step through the elastic reshard-to-world-1 restore, then batches
//    concurrent requests into shared encoder forwards, caches
//    embeddings, and polls for newer checkpoints.
// 3. Register a per-tenant linear-probe head and request logits.
// 4. Publish checkpoint B while requests are in flight: the server
//    hot-swaps atomically — in-flight batches finish on A, later ones
//    serve B, and the epoch-tagged cache never mixes the two.
// 5. Overload the bounded admission queue with deadline-carrying
//    requests: the excess resolves immediately with typed Overloaded /
//    DeadlineExceeded errors (fail fast, never hang) while admitted
//    requests are served within budget.
// 6. Print server stats and the run-health report's serving SLO and
//    resilience lines.
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "geofm.hpp"

using namespace geofm;

namespace {

void publish(const std::string& root, i64 step, models::MAE& model) {
  ckpt::SaveRequest req;
  req.dir = root;
  req.step = step;
  req.state = ckpt::replicated_state(model, nullptr, 0, 1, /*for_save=*/true);
  ckpt::Checkpointer saver(/*async=*/false);
  saver.save(req);
  std::printf("published step %lld under %s\n",
              static_cast<long long>(step), root.c_str());
}

}  // namespace

int main() {
  obs::TraceRecorder::instance().enable();

  models::ViTConfig enc{.name = "demo", .width = 32, .depth = 4,
                        .mlp_dim = 64, .heads = 4, .img_size = 16,
                        .patch_size = 4, .in_channels = 3};
  const auto cfg = models::mae_for(enc);

  const std::string root = "/tmp/geofm_embedding_server_demo";
  std::filesystem::remove_all(root);
  ckpt::reset_save_state(root);
  Rng rng_a(1);
  models::MAE checkpoint_a(cfg, rng_a);
  publish(root, 100, checkpoint_a);

  // ----- start the server on the newest published checkpoint -----------
  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.model = cfg;
  scfg.max_batch = 8;
  scfg.max_delay_us = 500;
  scfg.cache_capacity = 256;
  scfg.max_queue = 32;             // bounded admission: overload sheds
  scfg.default_deadline_us = 250000;  // every request gets a 250ms budget
  scfg.poll_interval_seconds = 0.01;
  serve::ModelServer server(scfg);
  std::printf("serving step %lld\n",
              static_cast<long long>(server.model_step()));

  // ----- a tenant: one linear-probe head over the shared encoder -------
  Rng head_rng(2);
  server.heads().put("land-cover",
                     std::make_unique<nn::Linear>("probe.head", enc.width,
                                                  /*classes=*/10, head_rng));

  // ----- concurrent clients; checkpoint B publishes mid-stream ---------
  Rng rng_b(3);
  models::MAE checkpoint_b(cfg, rng_b);
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        serve::EmbedRequest req;
        req.key = "scene_" + std::to_string((t * 30 + i) % 10);
        req.tenant = "land-cover";
        Rng img_rng(static_cast<u64>(1000 + (t * 30 + i) % 10));
        req.image = Tensor::randn({enc.in_channels, enc.img_size,
                                   enc.img_size}, img_rng, 0.5f);
        const serve::EmbedResult r = server.embed(std::move(req));
        if (t == 0 && i == 0) {
          std::printf("first result: embedding[%lld] logits[%lld] "
                      "step %lld%s\n",
                      static_cast<long long>(r.embedding.numel()),
                      static_cast<long long>(r.logits.numel()),
                      static_cast<long long>(r.model_step),
                      r.cache_hit ? " (cache hit)" : "");
        }
        if (t == 0 && i == 15) publish(root, 200, checkpoint_b);
      }
    });
  }
  for (auto& c : clients) c.join();

  // The poller lands the swap within a tick or two.
  for (int i = 0; i < 1000 && server.model_step() != 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::printf("after hot swap: serving step %lld (epoch %lld)\n",
              static_cast<long long>(server.model_step()),
              static_cast<long long>(server.model_epoch()));

  // ----- overload: a burst far beyond the admission queue --------------
  // submit() never blocks: a request the server cannot take resolves
  // immediately with a typed error on its future. Callers branch on the
  // type — retry elsewhere on Overloaded, drop on DeadlineExceeded.
  {
    std::vector<std::future<serve::EmbedResult>> futs;
    for (int i = 0; i < 200; ++i) {
      serve::EmbedRequest req;
      Rng img_rng(static_cast<u64>(5000 + i));
      req.image = Tensor::randn({enc.in_channels, enc.img_size,
                                 enc.img_size}, img_rng, 0.5f);
      req.deadline_us = 50000;  // this burst is latency-critical: 50ms
      futs.push_back(server.submit(std::move(req)));
    }
    int served = 0, overloaded = 0, late = 0;
    for (auto& f : futs) {
      try {
        (void)f.get();
        ++served;
      } catch (const serve::Overloaded&) {
        ++overloaded;
      } catch (const serve::DeadlineExceeded&) {
        ++late;
      }
    }
    std::printf("overload burst of 200: served %d, shed %d overloaded + "
                "%d past-deadline (all typed, none hung)\n",
                served, overloaded, late);
  }

  const serve::ServerStats stats = server.stats();
  std::printf("requests %lld  batches %lld  encoder forwards %lld "
              "(%lld images)  cache %lld hit / %lld miss  reloads %lld "
              "(%lld failed)  shed %lld overload / %lld deadline\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.batches),
              static_cast<long long>(stats.encodes),
              static_cast<long long>(stats.encoded_images),
              static_cast<long long>(stats.cache_hits),
              static_cast<long long>(stats.cache_misses),
              static_cast<long long>(stats.reloads),
              static_cast<long long>(stats.reload_failures),
              static_cast<long long>(stats.shed_overload),
              static_cast<long long>(stats.shed_deadline));
  server.stop();

  // The serving SLO lines the run-health report renders from the spans.
  std::printf("\n%s", obs::report_to_text(
                          obs::build_run_health_report()).c_str());
  std::filesystem::remove_all(root);
  return 0;
}
