// Frontier scaling study: use the performance simulator to answer the
// practical question the paper's Sec. IV-E distills — "which sharding
// strategy should I pick for my model at my node count?" — and print a
// recommendation table with predicted throughput and memory.
//
// Run:  ./example_frontier_scaling_study
#include <cstdio>
#include <vector>

#include "geofm.hpp"

using namespace geofm;
using namespace geofm::sim;
using parallel::ShardingStrategy;

namespace {

struct Candidate {
  std::string label;
  ParallelPlan plan;
};

std::vector<Candidate> candidates(int world) {
  std::vector<Candidate> out;
  ParallelPlan ddp;
  ddp.kind = ParallelPlan::Kind::kDdp;
  out.push_back({"DDP", ddp});
  for (auto [s, name] :
       {std::pair{ShardingStrategy::kNoShard, "NO_SHARD"},
        std::pair{ShardingStrategy::kFullShard, "FULL_SHARD"},
        std::pair{ShardingStrategy::kShardGradOp, "SHARD_GRAD_OP"}}) {
    ParallelPlan p;
    p.fsdp.strategy = s;
    out.push_back({name, p});
  }
  for (int g : {1, 2, 4, 8, 16}) {
    if (g > world) continue;
    ParallelPlan p;
    p.fsdp.strategy = ShardingStrategy::kHybridShard;
    p.fsdp.hybrid_group_size = g;
    out.push_back({"HYBRID_" + std::to_string(g) + "GPUs", p});
  }
  return out;
}

}  // namespace

int main() {
  const MachineSpec machine = frontier();
  const double hbm_gb = machine.gpu.hbm_bytes / double(1ull << 30);
  std::printf("Frontier scaling advisor (simulated, local batch 32)\n");
  std::printf("HBM per GCD: %.0f GB\n\n", hbm_gb);

  for (const auto& cfg : models::table1_variants()) {
    for (int nodes : {8, 64}) {
      const auto workload = vit_step_workload(cfg, 32);
      const int world = nodes * machine.gpus_per_node;

      std::string best;
      double best_ips = 0, best_mem = 0;
      int feasible = 0;
      for (const auto& cand : candidates(world)) {
        TrainingSimulator sim(workload, machine, nodes, cand.plan);
        const double mem_gb =
            sim.memory_footprint().total() / double(1ull << 30);
        if (mem_gb > hbm_gb) continue;  // does not fit
        ++feasible;
        const double ips = sim.simulate_step().images_per_second_total;
        if (ips > best_ips) {
          best_ips = ips;
          best = cand.label;
          best_mem = mem_gb;
        }
      }
      if (feasible == 0) {
        std::printf("%-9s @ %2d nodes: no feasible strategy (model too "
                    "large)\n",
                    cfg.name.c_str(), nodes);
        continue;
      }
      std::printf("%-9s @ %2d nodes: use %-14s  (%8.0f ips, %5.1f GB/GCD, "
                  "%d strategies fit)\n",
                  cfg.name.c_str(), nodes, best.c_str(), best_ips, best_mem,
                  feasible);
    }
  }

  std::printf(
      "\nThese recommendations reproduce the paper's Sec. IV-E guidance:\n"
      "data-parallel (HYBRID_1GPU/NO_SHARD) for single-GPU models,\n"
      "node-local HYBRID sharding for 2-GPU models, SHARD_GRAD_OP for\n"
      "half-node models.\n");
  return 0;
}
