// Layer-level tests: shapes, parameter registration, and gradcheck for
// every nn module via central finite differences.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "nn/attention.hpp"
#include "nn/block.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/patch_embed.hpp"
#include "nn/pos_embed.hpp"

namespace geofm {
namespace {

using nn::Parameter;

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  nn::Linear lin("fc", 4, 6, rng);
  Tensor x = Tensor::randn({2, 3, 4}, rng);
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<i64>{2, 3, 6}));
  // Zero weights + bias b must produce constant rows of b.
  lin.weight.value.zero_();
  lin.bias.value.fill_(2.5f);
  Tensor y2 = lin.forward(x);
  for (i64 i = 0; i < y2.numel(); ++i) EXPECT_FLOAT_EQ(y2[i], 2.5f);
}

TEST(Linear, NoBiasVariant) {
  Rng rng(2);
  nn::Linear lin("fc", 3, 3, rng, /*bias=*/false);
  EXPECT_EQ(lin.parameters().size(), 1u);
  Tensor x = Tensor::zeros({1, 3});
  Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y.abs_max(), 0.f);
}

TEST(Linear, GradCheck) {
  Rng rng(3);
  nn::Linear lin("fc", 5, 4, rng);
  Tensor x = Tensor::randn({3, 5}, rng);
  testing::expect_gradients_match(
      lin, x, [&] { return lin.forward(x); },
      [&](const Tensor& dy) { return lin.backward(dy); });
}

TEST(Linear, BackwardBeforeForwardRejected) {
  Rng rng(4);
  nn::Linear lin("fc", 2, 2, rng);
  EXPECT_THROW(lin.backward(Tensor::zeros({1, 2})), Error);
}

TEST(LayerNorm, GradCheck) {
  Rng rng(5);
  nn::LayerNorm ln("ln", 8);
  // Non-trivial affine so dgamma paths are exercised.
  Tensor gscale = Tensor::randn({8}, rng, 0.3f, 1.f);
  ln.gamma.value.copy_(gscale);
  Tensor x = Tensor::randn({4, 8}, rng, 2.f, 0.5f);
  testing::expect_gradients_match(
      ln, x, [&] { return ln.forward(x); },
      [&](const Tensor& dy) { return ln.backward(dy); });
}

TEST(Mlp, GradCheck) {
  Rng rng(6);
  nn::Mlp mlp("mlp", 6, 12, rng);
  Tensor x = Tensor::randn({5, 6}, rng);
  testing::expect_gradients_match(
      mlp, x, [&] { return mlp.forward(x); },
      [&](const Tensor& dy) { return mlp.backward(dy); });
}

TEST(Attention, ForwardShapeAndParamCount) {
  Rng rng(7);
  nn::MultiHeadSelfAttention attn("attn", 16, 4, rng);
  Tensor x = Tensor::randn({2, 5, 16}, rng);
  Tensor y = attn.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  // qkv: 16*48 + 48; proj: 16*16 + 16.
  EXPECT_EQ(attn.num_params(), 16 * 48 + 48 + 16 * 16 + 16);
}

TEST(Attention, RejectsIndivisibleHeads) {
  Rng rng(8);
  EXPECT_THROW(nn::MultiHeadSelfAttention("a", 10, 3, rng), Error);
}

TEST(Attention, GradCheck) {
  Rng rng(9);
  nn::MultiHeadSelfAttention attn("attn", 8, 2, rng);
  Tensor x = Tensor::randn({2, 4, 8}, rng);
  testing::expect_gradients_match(
      attn, x, [&] { return attn.forward(x); },
      [&](const Tensor& dy) { return attn.backward(dy); });
}

TEST(TransformerBlock, GradCheck) {
  Rng rng(10);
  nn::TransformerBlock blk("blk", 8, 2, 16, rng);
  Tensor x = Tensor::randn({2, 3, 8}, rng);
  testing::expect_gradients_match(
      blk, x, [&] { return blk.forward(x); },
      [&](const Tensor& dy) { return blk.backward(dy); });
}

TEST(TransformerBlock, ResidualIdentityAtZeroWeights) {
  Rng rng(11);
  nn::TransformerBlock blk("blk", 8, 2, 16, rng);
  // Zero the output projections => block becomes identity.
  blk.attn.proj.weight.value.zero_();
  blk.attn.proj.bias.value.zero_();
  blk.mlp.fc2.weight.value.zero_();
  blk.mlp.fc2.bias.value.zero_();
  Tensor x = Tensor::randn({1, 4, 8}, rng);
  Tensor y = blk.forward(x);
  EXPECT_TRUE(y.allclose(x, 1e-5f, 1e-6f));
}

TEST(PatchEmbed, ShapeAndGradCheck) {
  Rng rng(12);
  nn::PatchEmbed pe("pe", 8, 4, 3, 10, rng);
  EXPECT_EQ(pe.n_patches(), 4);
  Tensor img = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor tok = pe.forward(img);
  EXPECT_EQ(tok.shape(), (std::vector<i64>{2, 4, 10}));
  testing::expect_gradients_match(
      pe, img, [&] { return pe.forward(img); },
      [&](const Tensor& dy) { return pe.backward(dy); });
}

TEST(PosEmbed, SinCosProperties) {
  Tensor pe = nn::sincos_pos_embed_2d(16, 4, /*with_cls_token=*/true);
  EXPECT_EQ(pe.shape(), (std::vector<i64>{17, 16}));
  // cls row is zeros.
  for (i64 c = 0; c < 16; ++c) EXPECT_FLOAT_EQ(pe.at({0, c}), 0.f);
  // All entries bounded by 1.
  EXPECT_LE(pe.abs_max(), 1.f + 1e-6f);
  // Distinct positions get distinct embeddings.
  Tensor r1({16}), r2({16});
  r1.copy_(pe.flat_view(16, 16));
  r2.copy_(pe.flat_view(32, 16));
  EXPECT_FALSE(r1.allclose(r2, 1e-3f, 1e-3f));
}

TEST(PosEmbed, TranslationStructure1d) {
  Tensor pos = Tensor::from({0.f, 1.f, 2.f});
  Tensor pe = nn::sincos_pos_embed_1d(8, pos);
  EXPECT_EQ(pe.shape(), (std::vector<i64>{3, 8}));
  // First frequency: sin(p), cos(p).
  EXPECT_NEAR(pe.at({1, 0}), std::sin(1.0), 1e-6);
  EXPECT_NEAR(pe.at({1, 4}), std::cos(1.0), 1e-6);
  EXPECT_THROW(nn::sincos_pos_embed_1d(7, pos), Error);
}

TEST(Module, ZeroGradAllocatesAndZeroes) {
  Rng rng(13);
  nn::Linear lin("fc", 3, 3, rng);
  lin.zero_grad();
  EXPECT_TRUE(lin.weight.grad.defined());
  EXPECT_FLOAT_EQ(lin.weight.grad.abs_max(), 0.f);
  Tensor x = Tensor::randn({2, 3}, rng);
  lin.forward(x);
  lin.backward(Tensor::ones({2, 3}));
  EXPECT_GT(lin.weight.grad.abs_max(), 0.f);
  lin.zero_grad();
  EXPECT_FLOAT_EQ(lin.weight.grad.abs_max(), 0.f);
}

TEST(Module, TruncNormalBounded) {
  Rng rng(14);
  Tensor t({10000});
  nn::trunc_normal_(t, rng, 0.02f);
  EXPECT_LE(t.abs_max(), 0.04f + 1e-7f);
  EXPECT_NEAR(t.mean(), 0.f, 1e-3f);
}

TEST(Module, BackwardAccumulatesAcrossCalls) {
  Rng rng(15);
  nn::Linear lin("fc", 2, 2, rng);
  Tensor x = Tensor::randn({1, 2}, rng);
  lin.zero_grad();
  lin.forward(x);
  lin.backward(Tensor::ones({1, 2}));
  Tensor g1 = lin.weight.grad.clone();
  lin.forward(x);
  lin.backward(Tensor::ones({1, 2}));
  Tensor g2 = lin.weight.grad.clone();
  g1.scale_(2.f);
  EXPECT_TRUE(g2.allclose(g1, 1e-5f, 1e-6f));
}

}  // namespace
}  // namespace geofm
