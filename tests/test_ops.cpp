// Tests for tensor/ops: GEMM variants against naive references, softmax,
// layernorm, losses, patchify round trips.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"

namespace geofm {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const i64 m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c = Tensor::zeros({m, n});
  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < n; ++j) {
      double acc = 0;
      for (i64 p = 0; p < k; ++p) acc += a.at({i, p}) * b.at({p, j});
      c.at({i, j}) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(Ops, MatmulMatchesNaive) {
  Rng rng(1);
  Tensor a = Tensor::randn({7, 5}, rng);
  Tensor b = Tensor::randn({5, 9}, rng);
  EXPECT_TRUE(ops::matmul(a, b).allclose(naive_matmul(a, b), 1e-4f, 1e-5f));
}

TEST(Ops, MatmulNtMatchesExplicitTranspose) {
  Rng rng(2);
  Tensor a = Tensor::randn({4, 6}, rng);
  Tensor b = Tensor::randn({3, 6}, rng);
  Tensor expect = naive_matmul(a, ops::transpose2d(b));
  EXPECT_TRUE(ops::matmul_nt(a, b).allclose(expect, 1e-4f, 1e-5f));
}

TEST(Ops, MatmulTnMatchesExplicitTranspose) {
  Rng rng(3);
  Tensor a = Tensor::randn({6, 4}, rng);
  Tensor b = Tensor::randn({6, 5}, rng);
  Tensor expect = naive_matmul(ops::transpose2d(a), b);
  EXPECT_TRUE(ops::matmul_tn(a, b).allclose(expect, 1e-4f, 1e-5f));
}

TEST(Ops, MatmulShapeErrors) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({4, 5});
  EXPECT_THROW(ops::matmul(a, b), Error);
  EXPECT_THROW(ops::matmul_nt(a, b), Error);
  EXPECT_THROW(ops::matmul_tn(a, b), Error);
}

TEST(Ops, LargeMatmulThreadedConsistent) {
  Rng rng(4);
  Tensor a = Tensor::randn({130, 70}, rng);
  Tensor b = Tensor::randn({70, 90}, rng);
  EXPECT_TRUE(ops::matmul(a, b).allclose(naive_matmul(a, b), 1e-3f, 1e-4f));
}

TEST(Ops, BmmAgainstPerSliceMatmul) {
  Rng rng(5);
  Tensor a = Tensor::randn({3, 4, 5}, rng);
  Tensor b = Tensor::randn({3, 5, 6}, rng);
  Tensor c = ops::bmm(a, b);
  for (i64 i = 0; i < 3; ++i) {
    Tensor ai({4, 5}), bi({5, 6});
    ai.copy_(a.flat_view(i * 20, 20));
    bi.copy_(b.flat_view(i * 30, 30));
    Tensor ci = ops::matmul(ai, bi);
    Tensor got({4, 6});
    got.copy_(c.flat_view(i * 24, 24));
    EXPECT_TRUE(got.allclose(ci, 1e-4f, 1e-5f));
  }
}

TEST(Ops, BmmNtAndTnAgainstTransposes) {
  Rng rng(6);
  Tensor a = Tensor::randn({2, 3, 4}, rng);
  Tensor b = Tensor::randn({2, 5, 4}, rng);  // for nt: [batch, n, k]
  Tensor c_nt = ops::bmm_nt(a, b);           // [2,3,5]
  for (i64 i = 0; i < 2; ++i) {
    Tensor ai({3, 4}), bi({5, 4});
    ai.copy_(a.flat_view(i * 12, 12));
    bi.copy_(b.flat_view(i * 20, 20));
    Tensor expect = ops::matmul_nt(ai, bi);
    Tensor got({3, 5});
    got.copy_(c_nt.flat_view(i * 15, 15));
    EXPECT_TRUE(got.allclose(expect, 1e-4f, 1e-5f));
  }

  Tensor d = Tensor::randn({2, 3, 6}, rng);  // for tn: [batch, m, n]
  Tensor c_tn = ops::bmm_tn(a, d);           // [2,4,6]
  for (i64 i = 0; i < 2; ++i) {
    Tensor ai({3, 4}), di({3, 6});
    ai.copy_(a.flat_view(i * 12, 12));
    di.copy_(d.flat_view(i * 18, 18));
    Tensor expect = ops::matmul_tn(ai, di);
    Tensor got({4, 6});
    got.copy_(c_tn.flat_view(i * 24, 24));
    EXPECT_TRUE(got.allclose(expect, 1e-4f, 1e-5f));
  }
}

TEST(Ops, SoftmaxRowsSumToOneAndOrderPreserved) {
  Rng rng(7);
  Tensor x = Tensor::randn({10, 17}, rng, 3.f);
  Tensor y = ops::softmax_lastdim(x);
  for (i64 r = 0; r < 10; ++r) {
    double sum = 0;
    for (i64 c = 0; c < 17; ++c) {
      const float v = y.at({r, c});
      EXPECT_GT(v, 0.f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  // Monotonicity: larger logit => larger probability within a row.
  EXPECT_GT(y.at({0, 0}), 0.f);
}

TEST(Ops, SoftmaxStableUnderLargeLogits) {
  Tensor x = Tensor::from({1000.f, 1001.f, 999.f}).view({1, 3});
  Tensor y = ops::softmax_lastdim(x);
  EXPECT_FALSE(std::isnan(y[0]));
  EXPECT_GT(y.at({0, 1}), y.at({0, 0}));
  EXPECT_GT(y.at({0, 0}), y.at({0, 2}));
}

TEST(Ops, GeluKnownValues) {
  Tensor x = Tensor::from({0.f, 100.f, -100.f});
  Tensor y = ops::gelu(x);
  EXPECT_NEAR(y[0], 0.f, 1e-6);
  EXPECT_NEAR(y[1], 100.f, 1e-3);
  EXPECT_NEAR(y[2], 0.f, 1e-3);
}

TEST(Ops, LayerNormRowsNormalized) {
  Rng rng(8);
  Tensor x = Tensor::randn({6, 32}, rng, 5.f, 3.f);
  Tensor gamma = Tensor::ones({32});
  Tensor beta = Tensor::zeros({32});
  ops::LayerNormCache cache;
  Tensor y = ops::layernorm(x, gamma, beta, 1e-6f, cache);
  for (i64 r = 0; r < 6; ++r) {
    double mean = 0, var = 0;
    for (i64 c = 0; c < 32; ++c) mean += y.at({r, c});
    mean /= 32;
    for (i64 c = 0; c < 32; ++c) {
      var += (y.at({r, c}) - mean) * (y.at({r, c}) - mean);
    }
    var /= 32;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(Ops, CrossEntropyUniformLogits) {
  Tensor logits = Tensor::zeros({4, 10});
  std::vector<i64> labels{0, 3, 5, 9};
  auto ce = ops::softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(ce.loss, std::log(10.f), 1e-5);
  Tensor d = ops::softmax_cross_entropy_backward(ce, labels);
  // Gradient sums to zero per row.
  for (i64 r = 0; r < 4; ++r) {
    double sum = 0;
    for (i64 c = 0; c < 10; ++c) sum += d.at({r, c});
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(Ops, CrossEntropyPerfectPrediction) {
  Tensor logits = Tensor::zeros({2, 3});
  logits.at({0, 1}) = 50.f;
  logits.at({1, 2}) = 50.f;
  auto ce = ops::softmax_cross_entropy(logits, {1, 2});
  EXPECT_NEAR(ce.loss, 0.f, 1e-4);
}

TEST(Ops, TopkAccuracy) {
  Tensor logits = Tensor::from({
      3.f, 2.f, 1.f, 0.f,   // label 0: top1 hit
      0.f, 1.f, 2.f, 3.f,   // label 0: top1 miss, top4 hit
  }).view({2, 4});
  std::vector<i64> labels{0, 0};
  EXPECT_DOUBLE_EQ(ops::topk_accuracy(logits, labels, 1), 0.5);
  EXPECT_DOUBLE_EQ(ops::topk_accuracy(logits, labels, 3), 0.5);
  EXPECT_DOUBLE_EQ(ops::topk_accuracy(logits, labels, 4), 1.0);
}

TEST(Ops, MaskedMseOnlyCountsMaskedRows) {
  Tensor pred = Tensor::from({1.f, 1.f, 5.f, 5.f}).view({2, 2});
  Tensor target = Tensor::zeros({2, 2});
  std::vector<u32> mask{0, 1};  // only the second row counts
  Tensor dpred;
  const float loss = ops::masked_mse(pred, target, mask, &dpred);
  EXPECT_FLOAT_EQ(loss, 25.f);
  EXPECT_FLOAT_EQ(dpred.at({0, 0}), 0.f);  // unmasked row: no gradient
  EXPECT_FLOAT_EQ(dpred.at({1, 0}), 2.f * 5.f / 2.f);
}

TEST(Ops, MaskedMseEmptyMaskRejected) {
  Tensor pred = Tensor::zeros({2, 2});
  Tensor target = Tensor::zeros({2, 2});
  std::vector<u32> mask{0, 0};
  EXPECT_THROW(ops::masked_mse(pred, target, mask, nullptr), Error);
}

TEST(Ops, PatchifyRoundTrip) {
  Rng rng(9);
  Tensor img = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor patches = ops::patchify(img, 4);
  EXPECT_EQ(patches.dim(0), 2);
  EXPECT_EQ(patches.dim(1), 4);
  EXPECT_EQ(patches.dim(2), 48);
  Tensor back = ops::unpatchify(patches, 4, 3);
  EXPECT_TRUE(back.allclose(img, 0.f, 0.f));
}

TEST(Ops, PatchifyLayoutChannelMajorWithinPatch) {
  // 1x1 patches: patch vector = per-channel pixel values.
  Tensor img = Tensor::arange(2 * 2 * 2).view({1, 2, 2, 2});
  Tensor p = ops::patchify(img, 1);
  // Patch (0,0): channel 0 pixel (0,0)=0, channel 1 pixel (0,0)=4.
  EXPECT_FLOAT_EQ(p.at({0, 0, 0}), 0.f);
  EXPECT_FLOAT_EQ(p.at({0, 0, 1}), 4.f);
}

TEST(Ops, GatherScatterRows) {
  Tensor x = Tensor::arange(12).view({4, 3});
  Tensor g = ops::gather_rows(x, {2, 0});
  EXPECT_FLOAT_EQ(g.at({0, 0}), 6.f);
  EXPECT_FLOAT_EQ(g.at({1, 2}), 2.f);

  Tensor out = Tensor::zeros({4, 3});
  ops::scatter_rows_add(g, {2, 0}, out);
  EXPECT_FLOAT_EQ(out.at({2, 0}), 6.f);
  EXPECT_FLOAT_EQ(out.at({0, 2}), 2.f);
  EXPECT_FLOAT_EQ(out.at({1, 0}), 0.f);
}

TEST(Ops, AddBiasRows) {
  Tensor x = Tensor::zeros({3, 2});
  Tensor b = Tensor::from({1.f, -1.f});
  ops::add_bias_rows(x, b);
  for (i64 r = 0; r < 3; ++r) {
    EXPECT_FLOAT_EQ(x.at({r, 0}), 1.f);
    EXPECT_FLOAT_EQ(x.at({r, 1}), -1.f);
  }
  Tensor gb = Tensor::zeros({2});
  ops::accumulate_bias_grad(x, gb);
  EXPECT_FLOAT_EQ(gb[0], 3.f);
  EXPECT_FLOAT_EQ(gb[1], -3.f);
}

}  // namespace
}  // namespace geofm
