// Fine-tuning tests: MAE->ViT weight transfer, freeze policies, and the
// training loop on a small dataset.
#include <gtest/gtest.h>

#include "models/config.hpp"
#include "train/finetune.hpp"
#include "train/pretrain.hpp"

namespace geofm {
namespace {

models::ViTConfig enc_cfg() { return models::proxy_huge(); }

TEST(Finetune, WeightTransferMatchesEncodeFeatures) {
  Rng rng(1);
  models::MAE mae(models::mae_for(enc_cfg()), rng);
  // Light pretraining so the weights are non-trivial.
  auto corpus = data::million_aid_pretrain(128, 32);
  train::PretrainConfig pc;
  pc.epochs = 2;
  pc.batch_size = 64;
  pc.seed = 5;
  train::pretrain_mae(mae, corpus, pc);

  Rng rng2(99);
  models::ViTEncoder vit(enc_cfg(), rng2, /*num_classes=*/0);
  train::init_vit_from_mae(vit, mae);

  // The headless ViT's cls feature must equal MAE::encode(..., kCls):
  // identical weights, identical forward path.
  Rng drng(7);
  Tensor img = Tensor::randn({3, 3, 32, 32}, drng, 0.5f);
  Tensor from_vit = vit.forward(img);
  Tensor from_mae = mae.encode(img, models::MAE::Pool::kCls);
  EXPECT_TRUE(from_vit.allclose(from_mae, 1e-5f, 1e-6f));
}

TEST(Finetune, TransferRejectsMismatchedArch) {
  Rng rng(2);
  models::MAE mae(models::mae_for(models::proxy_base()), rng);
  models::ViTEncoder vit(models::proxy_huge(), rng, 0);
  EXPECT_THROW(train::init_vit_from_mae(vit, mae), Error);
}

TEST(Finetune, FreezePoliciesControlTrainableCount) {
  Rng rng(3);
  models::ViTEncoder vit(enc_cfg(), rng, /*num_classes=*/10);
  auto trainable = [&] {
    i64 n = 0;
    for (nn::Parameter* p : vit.parameters()) {
      if (p->requires_grad) n += p->numel();
    }
    return n;
  };
  train::apply_finetune_mode(vit, train::FinetuneMode::kFull, 0);
  const i64 full = trainable();
  EXPECT_EQ(full, vit.num_params());

  train::apply_finetune_mode(vit, train::FinetuneMode::kHeadOnly, 0);
  const i64 head_only = trainable();
  EXPECT_LT(head_only, full / 10);
  // Exactly the head: width*classes + classes.
  EXPECT_EQ(head_only, enc_cfg().width * 10 + 10);

  train::apply_finetune_mode(vit, train::FinetuneMode::kTopBlocks, 1);
  const i64 top1 = trainable();
  EXPECT_GT(top1, head_only);
  EXPECT_LT(top1, full);
}

TEST(Finetune, HeadOnlyDoesNotTouchBackboneWeights) {
  Rng rng(4);
  models::ViTEncoder vit(enc_cfg(), rng, 21);
  const Tensor before = vit.patch_embed.proj.weight.value.clone();

  train::FinetuneConfig cfg;
  cfg.mode = train::FinetuneMode::kHeadOnly;
  cfg.epochs = 2;
  cfg.batch_size = 32;
  cfg.seed = 6;
  auto ds = data::ucm(32, {.divisor = 21});  // 50/50
  train::finetune(vit, ds, cfg);
  EXPECT_TRUE(
      vit.patch_embed.proj.weight.value.allclose(before, 0.f, 0.f));
}

TEST(Finetune, FullFinetuneLearnsAboveChance) {
  Rng rng(5);
  models::MAE mae(models::mae_for(enc_cfg()), rng);
  auto corpus = data::million_aid_pretrain(256, 32);
  train::PretrainConfig pc;
  pc.epochs = 3;
  pc.batch_size = 64;
  pc.base_lr = 3e-3;
  pc.seed = 8;
  train::pretrain_mae(mae, corpus, pc);

  models::ViTEncoder vit(enc_cfg(), rng, 21);
  train::init_vit_from_mae(vit, mae);

  train::FinetuneConfig cfg;
  cfg.mode = train::FinetuneMode::kFull;
  cfg.epochs = 10;
  cfg.batch_size = 64;
  cfg.base_lr = 2e-3;
  cfg.seed = 9;
  auto ds = data::ucm(32, {.divisor = 3});  // 350/350
  auto result = train::finetune(vit, ds, cfg);

  EXPECT_EQ(result.trainable_params, vit.num_params());
  EXPECT_EQ(result.top1_per_epoch.size(), 10u);
  // Loss decreases and accuracy clears chance by a wide margin.
  EXPECT_LT(result.train_loss_per_epoch.back(),
            result.train_loss_per_epoch.front());
  EXPECT_GT(result.final_top1, 2.5 / 21);
  EXPECT_GE(result.final_top5, result.final_top1);
}

TEST(Finetune, RequiresClassificationHead) {
  Rng rng(6);
  models::ViTEncoder vit(enc_cfg(), rng, /*num_classes=*/0);
  train::FinetuneConfig cfg;
  auto ds = data::ucm(32, {.divisor = 21});
  EXPECT_THROW(train::finetune(vit, ds, cfg), Error);
}

}  // namespace
}  // namespace geofm
