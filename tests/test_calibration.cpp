// Simulator-vs-runtime calibration: the Frontier simulator and the
// functional async FSDP runtime model the same overlap machinery
// (backward prefetch, the in-flight all-gather limiter), so the *ordering*
// of exposed communication time across configurations must agree even
// though the absolute scales differ by orders of magnitude (modeled
// ViT-5B on 8 nodes vs a proxy model on 4 thread ranks).
//
// ROADMAP item: "Calibration test comparing simulator predictions against
// the functional runtime's measured compute/comm overlap".
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "comm/communicator.hpp"
#include "models/config.hpp"
#include "models/mae.hpp"
#include "parallel/fsdp.hpp"
#include "sim/simulator.hpp"

namespace geofm {
namespace {

using parallel::BackwardPrefetch;
using parallel::ShardingStrategy;

struct OverlapConfig {
  const char* name;
  BackwardPrefetch prefetch;
  bool limit_all_gathers;
};

constexpr OverlapConfig kConfigs[] = {
    {"pre+limit", BackwardPrefetch::kBackwardPre, true},
    {"post+limit", BackwardPrefetch::kBackwardPost, true},
    {"none+limit", BackwardPrefetch::kNone, true},
    {"pre+nolimit", BackwardPrefetch::kBackwardPre, false},
};
constexpr size_t kNumConfigs = sizeof(kConfigs) / sizeof(kConfigs[0]);

double modeled_exposed_seconds(const OverlapConfig& cfg) {
  sim::ParallelPlan plan;
  plan.kind = sim::ParallelPlan::Kind::kFsdp;
  plan.fsdp.strategy = ShardingStrategy::kFullShard;
  plan.fsdp.prefetch = cfg.prefetch;
  plan.fsdp.limit_all_gathers = cfg.limit_all_gathers;
  sim::TrainingSimulator simulator(
      sim::vit_step_workload(models::vit_5b(), 32), sim::frontier(),
      /*nodes=*/8, plan);
  return simulator.simulate_step().exposed_comm_seconds;
}

struct MeasuredOverlap {
  double exposed_seconds = 0;
  int peak_inflight = 0;
};

// Rank 0's exposed-wait accounting for a short proxy-model run, warm-up
// step excluded (first-touch allocation noise).
MeasuredOverlap measured_overlap(const OverlapConfig& cfg) {
  constexpr int kRanks = 4;
  constexpr int kSteps = 4;
  MeasuredOverlap out;
  std::mutex mu;
  comm::run_ranks(kRanks, [&](comm::Communicator& c) {
    Rng rng(1);
    models::MAE mae(models::mae_for(models::proxy_base()), rng);
    parallel::FsdpOptions opts;
    opts.strategy = ShardingStrategy::kFullShard;
    opts.prefetch = cfg.prefetch;
    opts.limit_all_gathers = cfg.limit_all_gathers;
    parallel::Fsdp fsdp(mae, c, opts);

    Rng data_rng(100 + static_cast<u64>(c.rank()));
    Tensor batch = Tensor::randn({2, 3, 32, 32}, data_rng, 0.5f);
    for (int s = 0; s < kSteps; ++s) {
      Rng mask_rng(static_cast<u64>(50 + s));
      fsdp.begin_step();
      mae.forward(batch, mask_rng, 0);
      mae.backward();
      fsdp.end_backward();
      if (s == 0) continue;
      if (c.rank() == 0) {
        std::lock_guard<std::mutex> lk(mu);
        out.exposed_seconds += fsdp.last_step_stats().exposed_wait_seconds;
        out.peak_inflight =
            std::max(out.peak_inflight, fsdp.peak_inflight_gathers());
      }
    }
    c.barrier();
  });
  return out;
}

class OverlapCalibration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    for (size_t i = 0; i < kNumConfigs; ++i) {
      modeled_[i] = modeled_exposed_seconds(kConfigs[i]);
      measured_[i] = measured_overlap(kConfigs[i]);
    }
  }
  static double modeled_[kNumConfigs];
  static MeasuredOverlap measured_[kNumConfigs];
};

double OverlapCalibration::modeled_[kNumConfigs];
MeasuredOverlap OverlapCalibration::measured_[kNumConfigs];

// The simulator is deterministic: better prefetch must never increase
// modeled exposed time, and everything should expose *some* comm at
// paper scale.
TEST_F(OverlapCalibration, ModeledOrderingIsMonotoneInPrefetch) {
  const double pre = modeled_[0], post = modeled_[1], none = modeled_[2];
  EXPECT_GT(pre, 0.0);
  EXPECT_LE(pre, post);
  EXPECT_LE(post, none);
}

// Concordance: where the simulator predicts a decisive gap (>= 1.5x)
// between two configs, the measured runtime must not be decisively
// ordered the *opposite* way. Thread-rank timings are noisy, so only
// large modeled gaps are checked, and a 1.35x noise margin is allowed.
TEST_F(OverlapCalibration, MeasuredOrderingAgreesWithDecisiveModeledGaps) {
  constexpr double kDecisiveRatio = 1.5;
  constexpr double kNoiseMargin = 1.35;
  int decisive_pairs = 0;
  for (size_t a = 0; a < kNumConfigs; ++a) {
    for (size_t b = 0; b < kNumConfigs; ++b) {
      if (a == b || modeled_[b] <= 0.0) continue;
      if (modeled_[a] >= kDecisiveRatio * modeled_[b]) {
        // Model says a is decisively worse than b: the runtime must not
        // measure a as decisively *better*.
        ++decisive_pairs;
        EXPECT_LE(measured_[b].exposed_seconds,
                  kNoiseMargin * measured_[a].exposed_seconds)
            << kConfigs[a].name << " modeled " << modeled_[a] << "s vs "
            << kConfigs[b].name << " modeled " << modeled_[b]
            << "s, but measured " << measured_[a].exposed_seconds << "s vs "
            << measured_[b].exposed_seconds << "s";
      }
    }
  }
  // The no-prefetch config is modeled >= 1.5x worse than BACKWARD_PRE at
  // paper scale, so at least one pair must have been checked.
  EXPECT_GE(decisive_pairs, 1);
}

// The limiter invariant holds in every measured configuration that
// enables it, regardless of prefetch mode.
TEST_F(OverlapCalibration, LimiterCapsInflightGathersInAllConfigs) {
  for (size_t i = 0; i < kNumConfigs; ++i) {
    if (!kConfigs[i].limit_all_gathers) continue;
    EXPECT_LE(measured_[i].peak_inflight, parallel::kAllGatherInflightCap)
        << kConfigs[i].name;
    EXPECT_GE(measured_[i].peak_inflight, 1) << kConfigs[i].name;
  }
}

}  // namespace
}  // namespace geofm
