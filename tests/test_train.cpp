// Training-layer tests: MAE pretraining loop, linear probing protocol,
// checkpoint round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "models/config.hpp"
#include "train/checkpoint.hpp"
#include "train/linear_probe.hpp"
#include "train/pretrain.hpp"

namespace geofm {
namespace {

models::MaeConfig tiny_cfg() {
  models::ViTConfig enc{.name = "t", .width = 16, .depth = 2, .mlp_dim = 64,
                        .heads = 2, .img_size = 32, .patch_size = 8,
                        .in_channels = 3};
  return models::mae_for(enc);
}

TEST(Pretrain, LossDecreasesOverEpochs) {
  Rng rng(1);
  models::MAE mae(tiny_cfg(), rng);
  auto corpus = data::million_aid_pretrain(128, 32);
  train::PretrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 32;
  cfg.base_lr = 4e-3;  // proxy scale trains faster with a larger lr
  cfg.loader_workers = 2;
  cfg.seed = 7;
  auto result = train::pretrain_mae(mae, corpus, cfg);

  ASSERT_EQ(result.epoch_losses.size(), 4u);
  EXPECT_EQ(static_cast<i64>(result.step_losses.size()), 4 * (128 / 32));
  EXPECT_EQ(result.images_seen, 4 * 128);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
  for (float l : result.step_losses) EXPECT_TRUE(std::isfinite(l));
}

TEST(Pretrain, DeterministicAcrossRuns) {
  auto run_once = [] {
    Rng rng(3);
    models::MAE mae(tiny_cfg(), rng);
    auto corpus = data::million_aid_pretrain(64, 32);
    train::PretrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch_size = 32;
    cfg.loader_workers = 3;
    cfg.seed = 11;
    return train::pretrain_mae(mae, corpus, cfg).step_losses;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Probe, ExtractFeaturesShapesAndDeterminism) {
  Rng rng(2);
  models::MAE mae(tiny_cfg(), rng);
  auto ds = data::ucm(32, {.divisor = 21});  // 50/50 samples
  auto [f1, y1] = train::extract_features(mae, ds, data::Split::kTrain, 16);
  auto [f2, y2] = train::extract_features(mae, ds, data::Split::kTrain, 32);
  EXPECT_EQ(f1.shape(), (std::vector<i64>{50, 16}));
  EXPECT_EQ(y1.size(), 50u);
  // Batch size must not affect features.
  EXPECT_TRUE(f1.allclose(f2, 1e-5f, 1e-6f));
  EXPECT_EQ(y1, y2);
}

TEST(Probe, BeatsChanceOnEasySetupAndImproves) {
  Rng rng(4);
  models::MAE mae(tiny_cfg(), rng);
  // Short pretraining so features carry some signal.
  auto corpus = data::million_aid_pretrain(512, 32);
  train::PretrainConfig pcfg;
  pcfg.epochs = 5;
  pcfg.batch_size = 64;
  pcfg.base_lr = 3e-3;
  pcfg.seed = 5;
  train::pretrain_mae(mae, corpus, pcfg);

  auto ds = data::ucm(32, {.divisor = 3});  // 350/350
  train::ProbeConfig cfg;
  cfg.epochs = 20;
  cfg.batch_size = 64;
  cfg.seed = 9;
  auto result = train::linear_probe(mae, ds, cfg);

  ASSERT_EQ(result.top1_per_epoch.size(), 20u);
  const double chance = 1.0 / ds.n_classes();
  EXPECT_GT(result.final_top1, 2.5 * chance);
  EXPECT_GE(result.final_top5, result.final_top1);
  // Later epochs beat the first epoch.
  EXPECT_GT(result.final_top1, result.top1_per_epoch.front() - 1e-9);
}

TEST(Checkpoint, RoundTripRestoresParameters) {
  const std::string path = "/tmp/geofm_test_ckpt.bin";
  Rng rng(6);
  models::MAE mae(tiny_cfg(), rng);
  train::save_checkpoint(mae, path);

  // Snapshot, perturb, reload, compare.
  std::vector<float> snapshot;
  for (nn::Parameter* p : mae.parameters()) {
    for (i64 i = 0; i < p->numel(); ++i) snapshot.push_back(p->value[i]);
  }
  for (nn::Parameter* p : mae.parameters()) p->value.fill_(123.f);
  train::load_checkpoint(mae, path);
  size_t k = 0;
  for (nn::Parameter* p : mae.parameters()) {
    for (i64 i = 0; i < p->numel(); ++i) {
      ASSERT_EQ(p->value[i], snapshot[k++]);
    }
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, MismatchedModelRejected) {
  const std::string path = "/tmp/geofm_test_ckpt2.bin";
  Rng rng(7);
  models::MAE small(tiny_cfg(), rng);
  train::save_checkpoint(small, path);

  auto big_cfg = tiny_cfg();
  big_cfg.encoder.width = 32;
  big_cfg.encoder.mlp_dim = 128;
  models::MAE big(big_cfg, rng);
  EXPECT_THROW(train::load_checkpoint(big, path), Error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, ShapeMismatchReportedByParameterName) {
  const std::string path = "/tmp/geofm_test_ckpt_shape.bin";
  struct OneParam : nn::Module {
    nn::Parameter p;
    OneParam(std::vector<i64> shape, const char* name) {
      Rng rng(3);
      p.name = name;
      p.value = Tensor::randn(std::move(shape), rng);
    }
    std::vector<nn::Parameter*> parameters() override { return {&p}; }
  };
  OneParam saved({2, 3}, "enc.blocks.0.attn.w");
  train::save_checkpoint(saved, path);

  // Same element count, transposed shape: the numel-only check of the
  // original loader accepted this silently; it must now be rejected with
  // the offending parameter named.
  OneParam transposed({3, 2}, "enc.blocks.0.attn.w");
  try {
    train::load_checkpoint(transposed, path);
    FAIL() << "shape mismatch not detected";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("enc.blocks.0.attn.w"), std::string::npos) << what;
    EXPECT_NE(what.find("shape mismatch"), std::string::npos) << what;
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, MissingFileRejected) {
  Rng rng(8);
  models::MAE mae(tiny_cfg(), rng);
  EXPECT_THROW(train::load_checkpoint(mae, "/tmp/geofm_does_not_exist.bin"),
               Error);
}

TEST(Checkpoint, GarbageFileRejected) {
  const std::string path = "/tmp/geofm_test_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not a checkpoint";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  Rng rng(9);
  models::MAE mae(tiny_cfg(), rng);
  EXPECT_THROW(train::load_checkpoint(mae, path), Error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace geofm
