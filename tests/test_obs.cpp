// Observability subsystem tests: trace recorder (concurrent emission,
// ring-buffer drop semantics, JSON export, disabled-mode behaviour),
// metrics registry (counters, gauges, histogram percentiles), and the
// end-to-end contract that summed "comm.exposed" span time per rank
// matches CommStats::exposed_wait_seconds.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_context.hpp"

namespace geofm {
namespace {

using obs::TraceEvent;
using obs::TraceRecorder;
using obs::TraceScope;

/// Enables tracing for one test body and restores the disabled,
/// empty-buffer state on exit so tests compose in any order.
struct TraceSession {
  TraceSession() {
    auto& r = TraceRecorder::instance();
    r.disable();
    r.clear();
    r.enable();
  }
  ~TraceSession() {
    auto& r = TraceRecorder::instance();
    r.disable();
    r.clear();
  }
};

std::vector<TraceEvent> complete_events() {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : TraceRecorder::instance().snapshot()) {
    if (e.phase == TraceEvent::Phase::kComplete) out.push_back(e);
  }
  return out;
}

// ----- trace recorder --------------------------------------------------------

TEST(Trace, DisabledRecordsNothing) {
  auto& r = TraceRecorder::instance();
  r.disable();
  r.clear();
  const size_t before = r.snapshot().size();
  {
    TraceScope span("trace.test.disabled", "test");
    obs::trace_instant("trace.test.instant", "test");
    obs::trace_counter("trace.test.counter", 7);
  }
  EXPECT_EQ(r.snapshot().size(), before);
  EXPECT_FALSE(obs::trace_enabled());
}

TEST(Trace, ScopeRecordsCompleteEventWithArgs) {
  TraceSession session;
  {
    TraceScope span("trace.test.span", "test", "bytes", 4096, "unit", 3);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto events = complete_events();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& e = events[0];
  EXPECT_STREQ(e.name, "trace.test.span");
  EXPECT_STREQ(e.cat, "test");
  EXPECT_GE(e.dur_ns, 1'000'000u);  // slept >= 2 ms, allow scheduler slack
  EXPECT_STREQ(e.arg_name, "bytes");
  EXPECT_EQ(e.arg, 4096);
  EXPECT_STREQ(e.arg2_name, "unit");
  EXPECT_EQ(e.arg2, 3);
}

TEST(Trace, ConcurrentEmissionIsWellNestedPerRank) {
  TraceSession session;
  constexpr int kThreads = 8;
  constexpr int kOuter = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_thread_rank(t);
      obs::set_thread_label("test.worker");
      for (int i = 0; i < kOuter; ++i) {
        TraceScope outer("outer", "test", "i", i);
        TraceScope mid("mid", "test");
        { TraceScope inner("inner", "test"); }
        { TraceScope inner2("inner", "test"); }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Group by rank (each test thread has a unique rank) and verify the
  // span intervals are properly nested: sorted by start (ties: longest
  // first), every event must fit inside the enclosing open span.
  std::map<int, std::vector<TraceEvent>> by_rank;
  for (const TraceEvent& e : complete_events()) {
    if (e.rank >= 0) by_rank[e.rank].push_back(e);
  }
  ASSERT_EQ(by_rank.size(), static_cast<size_t>(kThreads));
  for (auto& [rank, events] : by_rank) {
    EXPECT_EQ(events.size(), static_cast<size_t>(kOuter * 4));
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                return a.dur_ns > b.dur_ns;
              });
    std::vector<u64> open_ends;  // stack of enclosing span end times
    for (const TraceEvent& e : events) {
      const u64 end = e.ts_ns + e.dur_ns;
      while (!open_ends.empty() && open_ends.back() <= e.ts_ns) {
        open_ends.pop_back();
      }
      if (!open_ends.empty()) {
        EXPECT_LE(end, open_ends.back())
            << "rank " << rank << " span " << e.name
            << " overlaps its enclosing span without nesting";
      }
      open_ends.push_back(end);
    }
  }
  EXPECT_EQ(TraceRecorder::instance().dropped_events(), 0u);
}

TEST(Trace, FullBufferDropsInsteadOfWrapping) {
  TraceSession session;
  auto& r = TraceRecorder::instance();
  const u64 old_cap = r.buffer_capacity();
  r.set_buffer_capacity(16);
  // Capacity applies to tracks registered after the call — use a fresh
  // thread so its track is created small.
  std::thread emitter([] {
    set_thread_rank(77);
    for (int i = 0; i < 100; ++i) obs::trace_instant("flood", "test");
  });
  emitter.join();
  r.set_buffer_capacity(old_cap);

  size_t recorded = 0;
  for (const TraceEvent& e : r.snapshot()) {
    if (e.rank == 77) ++recorded;
  }
  EXPECT_EQ(recorded, 16u);
  EXPECT_EQ(r.dropped_events(), 84u);
}

// Minimal structural JSON check: balanced braces/brackets outside string
// literals, non-empty, object at top level. Catches truncation, unescaped
// quotes, and trailing garbage without a JSON parser dependency.
void expect_valid_json_structure(const std::string& s) {
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.front(), '{');
  int depth_brace = 0, depth_bracket = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_brace; break;
      case '}': --depth_brace; break;
      case '[': ++depth_bracket; break;
      case ']': --depth_bracket; break;
      default: break;
    }
    EXPECT_GE(depth_brace, 0);
    EXPECT_GE(depth_bracket, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_brace, 0);
  EXPECT_EQ(depth_bracket, 0);
}

TEST(Trace, JsonExportIsStructurallyValid) {
  TraceSession session;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_thread_rank(t);
      obs::set_thread_label("rank");
      for (int i = 0; i < 20; ++i) {
        TraceScope span("work", "test", "i", i);
        obs::trace_counter("queue_depth", i);
      }
      obs::trace_instant("done", "test");
    });
  }
  for (auto& th : threads) th.join();

  std::ostringstream os;
  TraceRecorder::instance().write_json(os);
  const std::string json = os.str();
  expect_valid_json_structure(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // One process track per rank.
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(json.find("\"pid\":" + std::to_string(t)), std::string::npos);
  }
}

TEST(Trace, ExposedSpansMatchCommStatsPerRank) {
  TraceSession session;
  constexpr int kRanks = 4;
  constexpr int kIters = 6;
  std::array<comm::CommStats, kRanks> stats{};
  comm::run_ranks(kRanks, [&](comm::Communicator& c) {
    for (int i = 0; i < kIters; ++i) {
      Tensor t = Tensor::full({1 << 12}, static_cast<float>(c.rank()));
      auto h = c.iall_reduce(t, comm::ReduceOp::kSum);
      // Skewed compute so some ranks block in wait() and others overlap.
      std::this_thread::sleep_for(
          std::chrono::microseconds(200 * (c.rank() + 1)));
      h.wait(&stats[static_cast<size_t>(c.rank())]);
    }
    c.barrier();
  });

  std::array<double, kRanks> span_seconds{};
  for (const TraceEvent& e : complete_events()) {
    if (e.rank >= 0 && e.rank < kRanks && std::string(e.cat) == "comm.exposed") {
      span_seconds[static_cast<size_t>(e.rank)] +=
          static_cast<double>(e.dur_ns) * 1e-9;
    }
  }
  for (int r = 0; r < kRanks; ++r) {
    const double reported = stats[static_cast<size_t>(r)].exposed_wait_seconds;
    const double traced = span_seconds[static_cast<size_t>(r)];
    // Acceptance contract: within 5% (or an absolute 2 ms floor for
    // near-zero waits, where clock-call skew dominates).
    const double tol = std::max(0.05 * reported, 2e-3);
    EXPECT_NEAR(traced, reported, tol) << "rank " << r;
  }
}

// ----- metrics ---------------------------------------------------------------

TEST(Metrics, CounterSumsConcurrentAdds) {
  auto& c = obs::MetricsRegistry::instance().counter("test.obs.counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(c.value(), static_cast<double>(kThreads) * kAdds);
}

TEST(Metrics, GaugeSetMaxKeepsMaximum) {
  auto& g = obs::MetricsRegistry::instance().gauge("test.obs.gauge");
  g.reset();
  g.set_max(3.0);
  g.set_max(7.0);
  g.set_max(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Metrics, HistogramPercentilesWithinBucketError) {
  auto& h = obs::MetricsRegistry::instance().histogram("test.obs.hist");
  h.reset();
  // Uniform 1ms..1000ms: p50 ≈ 0.5, p90 ≈ 0.9, p99 ≈ 0.99.
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i) * 1e-3);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_NEAR(h.mean(), 0.5005, 1e-9);
  // Geometric buckets are 10% wide, so percentiles carry <= ~10% error.
  EXPECT_NEAR(h.percentile(50), 0.5, 0.05);
  EXPECT_NEAR(h.percentile(90), 0.9, 0.09);
  EXPECT_NEAR(h.percentile(99), 0.99, 0.1);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1e-3);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1.0);
}

TEST(Metrics, HistogramConcurrentObservations) {
  auto& h = obs::MetricsRegistry::instance().histogram("test.obs.hist2");
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kObs = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) {
        h.observe(1e-3 * static_cast<double>(1 + ((t * kObs + i) % 100)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<u64>(kThreads) * kObs);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 0.1);
  EXPECT_NEAR(h.mean(), 0.0505, 1e-3);
}

TEST(Metrics, SnapshotAndDumpCoverAllInstruments) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("test.obs.snap_counter").reset();
  reg.counter("test.obs.snap_counter").add(42.0);
  reg.gauge("test.obs.snap_gauge").set(3.5);
  auto& h = reg.histogram("test.obs.snap_hist");
  h.reset();
  h.observe(1.0);
  h.observe(2.0);

  const auto samples = reg.snapshot();
  ASSERT_TRUE(std::is_sorted(samples.begin(), samples.end(),
                             [](const obs::MetricSample& a,
                                const obs::MetricSample& b) {
                               return a.name < b.name;
                             }));
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& s : samples) {
    if (s.name == "test.obs.snap_counter") {
      saw_counter = true;
      EXPECT_EQ(s.kind, obs::MetricSample::Kind::kCounter);
      EXPECT_DOUBLE_EQ(s.value, 42.0);
    } else if (s.name == "test.obs.snap_gauge") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(s.value, 3.5);
    } else if (s.name == "test.obs.snap_hist") {
      saw_hist = true;
      EXPECT_EQ(s.count, 2u);
      EXPECT_DOUBLE_EQ(s.value, 3.0);  // histogram sum
      EXPECT_DOUBLE_EQ(s.min, 1.0);
      EXPECT_DOUBLE_EQ(s.max, 2.0);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);

  const std::string text = reg.dump_text();
  EXPECT_NE(text.find("test.obs.snap_counter"), std::string::npos);
  EXPECT_NE(text.find("test.obs.snap_gauge"), std::string::npos);
  EXPECT_NE(text.find("test.obs.snap_hist"), std::string::npos);
}

TEST(Metrics, DeltaDiffsCountersAndHistogramsKeepsGauges) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("test.obs.delta_counter").reset();
  reg.counter("test.obs.delta_counter").add(10.0);
  reg.gauge("test.obs.delta_gauge").set(1.0);
  auto& h = reg.histogram("test.obs.delta_hist");
  h.reset();
  h.observe(1.0);

  const auto before = reg.snapshot();

  reg.counter("test.obs.delta_counter").add(7.0);
  reg.gauge("test.obs.delta_gauge").set(5.0);
  h.observe(3.0);
  h.observe(5.0);
  reg.counter("test.obs.delta_fresh").add(2.0);  // new since `before`

  const auto after = reg.snapshot();
  const auto d = obs::MetricsRegistry::delta(before, after);

  ASSERT_TRUE(std::is_sorted(d.begin(), d.end(),
                             [](const obs::MetricSample& a,
                                const obs::MetricSample& b) {
                               return a.name < b.name;
                             }));
  bool saw_counter = false, saw_gauge = false, saw_hist = false,
       saw_fresh = false;
  for (const auto& s : d) {
    if (s.name == "test.obs.delta_counter") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(s.value, 7.0);  // counters diff
    } else if (s.name == "test.obs.delta_gauge") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(s.value, 5.0);  // gauges are point-in-time
    } else if (s.name == "test.obs.delta_hist") {
      saw_hist = true;
      EXPECT_EQ(s.count, 2u);          // 3 - 1 observations
      EXPECT_DOUBLE_EQ(s.value, 8.0);  // sum 9 - 1
      EXPECT_DOUBLE_EQ(s.mean, 4.0);   // mean of the delta, not of `after`
    } else if (s.name == "test.obs.delta_fresh") {
      saw_fresh = true;
      EXPECT_DOUBLE_EQ(s.value, 2.0);  // new instruments pass through
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist && saw_fresh);
}

TEST(Metrics, DeltaSurvivesRegistryResetBetweenSnapshots) {
  auto& reg = obs::MetricsRegistry::instance();
  auto& h = reg.histogram("test.obs.delta_reset_hist");
  h.reset();
  h.observe(1.0);
  h.observe(2.0);
  const auto before = reg.snapshot();
  h.reset();
  h.observe(5.0);
  const auto after = reg.snapshot();

  // after.count < before.count: a reset happened, `after` is the whole
  // story — no u64 underflow into a garbage delta.
  for (const auto& s : obs::MetricsRegistry::delta(before, after)) {
    if (s.name == "test.obs.delta_reset_hist") {
      EXPECT_EQ(s.count, 1u);
      EXPECT_DOUBLE_EQ(s.value, 5.0);
    }
  }
}

TEST(Trace, DropsFeedTheTraceDroppedMetric) {
  TraceSession session;
  auto& reg = obs::MetricsRegistry::instance();
  const double before = reg.counter("trace.dropped").value();

  auto& r = TraceRecorder::instance();
  const u64 old_cap = r.buffer_capacity();
  r.set_buffer_capacity(16);
  std::thread emitter([] {
    set_thread_rank(78);
    for (int i = 0; i < 100; ++i) obs::trace_instant("flood2", "test");
  });
  emitter.join();
  r.set_buffer_capacity(old_cap);

  // Satellite contract: ring-buffer drops are a visible metric, not just
  // a recorder-local count.
  EXPECT_DOUBLE_EQ(reg.counter("trace.dropped").value() - before, 84.0);
  EXPECT_EQ(r.dropped_events(), 84u);
}

}  // namespace
}  // namespace geofm
