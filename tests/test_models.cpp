// Model-level tests: Table I parameter counts, ViT/MAE forward-backward
// correctness (including gradcheck through the full MAE loss), masking
// invariants, and a single-batch overfit sanity run.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "models/config.hpp"
#include "models/mae.hpp"
#include "models/vit.hpp"
#include "optim/optimizer.hpp"

namespace geofm {
namespace {

using models::MaeConfig;
using models::ViTConfig;

ViTConfig tiny_vit() {
  return {.name = "tiny", .width = 16, .depth = 2, .mlp_dim = 32, .heads = 2,
          .img_size = 16, .patch_size = 8, .in_channels = 3};
}

// ----- Table I --------------------------------------------------------------

struct ParamCountCase {
  const char* name;
  i64 paper_millions;
  double tolerance;  // relative
};

TEST(TableI, ParamCountsMatchPaper) {
  // The paper's Table I counts. Our analytic count (patch embed + cls +
  // blocks + final LN) lands within ~2.5% for five of six variants. ViT-5B
  // is the documented exception: width 1792 / depth 56 / MLP 15360 yields
  // ~3.8B parameters by any standard ViT accounting — see EXPERIMENTS.md.
  const auto variants = models::table1_variants();
  const std::vector<ParamCountCase> cases = {
      {"ViT-Base", 87, 0.025},  {"ViT-Huge", 635, 0.025},
      {"ViT-1B", 914, 0.025},   {"ViT-3B", 3067, 0.025},
      {"ViT-5B", 3816, 0.025},  // computed from the Table I config
      {"ViT-15B", 14720, 0.025},
  };
  ASSERT_EQ(variants.size(), cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    const double millions =
        static_cast<double>(variants[i].param_count()) / 1e6;
    EXPECT_EQ(variants[i].name, cases[i].name);
    EXPECT_NEAR(millions / static_cast<double>(cases[i].paper_millions), 1.0,
                cases[i].tolerance)
        << variants[i].name << " computed " << millions << "M";
  }
}

TEST(TableI, PatchSizes) {
  EXPECT_EQ(models::vit_base().patch_size, 16);   // per ViT paper
  EXPECT_EQ(models::vit_huge().patch_size, 14);   // per paper Sec III-A
  EXPECT_EQ(models::vit_15b().patch_size, 14);
}

TEST(TableI, AnalyticCountMatchesAllocatedModel) {
  // The formula must agree exactly with what the real model allocates.
  Rng rng(1);
  ViTConfig cfg = tiny_vit();
  models::ViTEncoder vit(cfg, rng, /*num_classes=*/0);
  EXPECT_EQ(vit.num_params(), cfg.param_count());
}

TEST(TableI, AnalyticMaeCountMatchesAllocatedModel) {
  Rng rng(2);
  MaeConfig cfg = models::mae_for(tiny_vit());
  // Tiny encoder (width 16 <= 128) gets the proxy decoder.
  models::MAE mae(cfg, rng);
  EXPECT_EQ(mae.num_params(), cfg.param_count());
}

TEST(TableI, WidthDivisibleByHeads) {
  for (const auto& cfg : models::table1_variants()) {
    EXPECT_EQ(cfg.width % cfg.heads, 0) << cfg.name;
  }
  for (const auto& cfg : models::proxy_variants()) {
    EXPECT_EQ(cfg.width % cfg.heads, 0) << cfg.name;
  }
}

TEST(TableI, ProxyOrderingMirrorsPaper) {
  const auto proxies = models::proxy_variants();
  for (size_t i = 1; i < proxies.size(); ++i) {
    EXPECT_GT(proxies[i].param_count(), proxies[i - 1].param_count());
  }
}

// ----- ViT -------------------------------------------------------------------

TEST(ViT, ForwardShapes) {
  Rng rng(3);
  models::ViTEncoder feat(tiny_vit(), rng, 0);
  Tensor img = Tensor::randn({2, 3, 16, 16}, rng);
  Tensor f = feat.forward(img);
  EXPECT_EQ(f.shape(), (std::vector<i64>{2, 16}));

  models::ViTEncoder clf(tiny_vit(), rng, 7);
  Tensor logits = clf.forward(img);
  EXPECT_EQ(logits.shape(), (std::vector<i64>{2, 7}));
}

TEST(ViT, GradCheckThroughWholeModel) {
  Rng rng(4);
  models::ViTEncoder vit(tiny_vit(), rng, 3);
  Tensor img = Tensor::randn({2, 3, 16, 16}, rng, 0.5f);
  testing::expect_gradients_match(
      vit, img, [&] { return vit.forward(img); },
      [&](const Tensor& dy) { return vit.backward(dy); }, /*seed=*/77,
      /*tol=*/3e-2);
}

TEST(ViT, StageHooksFireInOrder) {
  Rng rng(5);
  models::ViTEncoder vit(tiny_vit(), rng, 0);
  std::vector<int> fwd, bwd;
  nn::StageHooks hooks;
  hooks.before_forward = [&](int s) { fwd.push_back(s); };
  hooks.before_backward = [&](int s) { bwd.push_back(s); };
  vit.set_stage_hooks(&hooks);
  Tensor img = Tensor::randn({1, 3, 16, 16}, rng);
  Tensor f = vit.forward(img);
  vit.backward(Tensor::ones(f.shape()));
  EXPECT_EQ(fwd, (std::vector<int>{0, 1}));
  EXPECT_EQ(bwd, (std::vector<int>{1, 0}));
}

// ----- MAE -------------------------------------------------------------------

MaeConfig tiny_mae() {
  ViTConfig enc{.name = "tiny-enc", .width = 16, .depth = 2, .mlp_dim = 32,
                .heads = 2, .img_size = 16, .patch_size = 4, .in_channels = 3};
  return models::mae_for(enc);  // 16 patches, keep 4
}

TEST(Mae, MaskingInvariants) {
  Rng rng(6);
  models::MAE mae(tiny_mae(), rng);
  Tensor img = Tensor::randn({3, 3, 16, 16}, rng);
  Rng mask_rng(10);
  mae.forward(img, mask_rng);
  const auto& mask = mae.last_mask();
  ASSERT_EQ(mask.size(), 3u * 16u);
  // Exactly n_keep visible per sample.
  for (int b = 0; b < 3; ++b) {
    int visible = 0;
    for (int p = 0; p < 16; ++p) visible += (mask[b * 16 + p] == 0);
    EXPECT_EQ(visible, mae.n_keep());
  }
  EXPECT_EQ(mae.n_keep(), 4);  // 16 * (1 - 0.75)
}

TEST(Mae, MaskIsRandomAcrossSamplesAndSteps) {
  Rng rng(7);
  models::MAE mae(tiny_mae(), rng);
  Tensor img = Tensor::randn({2, 3, 16, 16}, rng);
  Rng r1(20);
  mae.forward(img, r1);
  auto m1 = mae.last_mask();
  Rng r2(21);
  mae.forward(img, r2);
  auto m2 = mae.last_mask();
  EXPECT_NE(m1, m2);
  // Same seed => same mask.
  Rng r3(20);
  mae.forward(img, r3);
  EXPECT_EQ(m1, mae.last_mask());
}

TEST(Mae, LossIsFiniteAndPositive) {
  Rng rng(8);
  models::MAE mae(tiny_mae(), rng);
  Tensor img = Tensor::randn({2, 3, 16, 16}, rng);
  Rng mask_rng(30);
  const float loss = mae.forward(img, mask_rng);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.f);
  // Untrained reconstruction of normalized targets: loss near var ~= 1.
  EXPECT_LT(loss, 10.f);
}

TEST(Mae, GradCheckThroughLoss) {
  Rng rng(9);
  models::MAE mae(tiny_mae(), rng);
  Tensor img = Tensor::randn({2, 3, 16, 16}, rng, 0.5f);

  // Fixed masking per evaluation keeps the loss a deterministic function
  // of the parameters.
  auto loss_fn = [&]() -> double {
    Rng mask_rng(99);
    return mae.forward(img, mask_rng);
  };
  mae.zero_grad();
  loss_fn();
  mae.backward();

  Rng probe(123);
  double max_rel = 0;
  for (nn::Parameter* p : mae.parameters()) {
    auto r = testing::check_leaf_gradient(p->value, p->grad, loss_fn, probe,
                                          /*n_probe=*/6, /*eps=*/2e-3);
    max_rel = std::max(max_rel, r.max_rel_err);
    EXPECT_LT(r.max_rel_err, 5e-2) << p->name;
  }
}

TEST(Mae, OverfitsOneBatch) {
  Rng rng(11);
  models::MAE mae(tiny_mae(), rng);
  // Smooth, structured images (per-sample phase-shifted waves): a tiny
  // encoder can learn to reconstruct these from visible context.
  Tensor img({4, 3, 16, 16});
  for (i64 b = 0; b < 4; ++b) {
    for (i64 c = 0; c < 3; ++c) {
      for (i64 y = 0; y < 16; ++y) {
        for (i64 x = 0; x < 16; ++x) {
          img.at({b, c, y, x}) = std::sin(0.3f * (x + y) + 0.7f * b + c);
        }
      }
    }
  }
  optim::AdamW opt(mae.parameters(), 5e-3, 0.9, 0.95, 1e-8,
                   /*weight_decay=*/0.0);

  Rng warm(55);
  const float initial = mae.forward(img, warm);
  float final_loss = initial;
  for (int step = 0; step < 150; ++step) {
    Rng mask_rng(55);  // fixed mask: pure optimization test
    opt.zero_grad();
    final_loss = mae.forward(img, mask_rng);
    mae.backward();
    opt.step();
  }
  EXPECT_LT(final_loss, 0.3f * initial)
      << "MAE failed to overfit one batch: " << initial << " -> "
      << final_loss;
}

TEST(Mae, EncodeShapeAndDeterminism) {
  Rng rng(12);
  models::MAE mae(tiny_mae(), rng);
  Tensor img = Tensor::randn({2, 3, 16, 16}, rng);
  Tensor f1 = mae.encode(img);
  Tensor f2 = mae.encode(img);
  EXPECT_EQ(f1.shape(), (std::vector<i64>{2, 16}));
  EXPECT_TRUE(f1.allclose(f2, 0.f, 0.f));
}

TEST(Mae, StageCountCoversEncoderAndDecoder) {
  Rng rng(13);
  MaeConfig cfg = tiny_mae();
  models::MAE mae(cfg, rng);
  EXPECT_EQ(mae.n_stages(), cfg.encoder.depth + cfg.decoder_depth);
  EXPECT_EQ(static_cast<i64>(mae.stage_modules().size()),
            cfg.encoder.depth + cfg.decoder_depth);
  // Stage params + root params == all params.
  i64 stage_params = 0;
  for (nn::Module* m : mae.stage_modules()) stage_params += m->num_params();
  i64 root_params = 0;
  for (nn::Parameter* p : mae.root_parameters()) root_params += p->numel();
  EXPECT_EQ(stage_params + root_params, mae.num_params());
}

}  // namespace
}  // namespace geofm
