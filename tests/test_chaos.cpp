// Chaos engine tests: seeded campaign generation, the data-path fault
// seam (worker death + respawn, hung renders + watchdog takeover,
// poisoned samples + quarantine), record/replay through postmortem
// bundles, and the system invariant checker — including planted
// violations, so a green invariant report is known to be able to turn
// red.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/invariants.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/format.hpp"
#include "ckpt/state.hpp"
#include "comm/fault.hpp"
#include "data/dataloader.hpp"
#include "data/datasets.hpp"
#include "models/mae.hpp"
#include "obs/metrics.hpp"
#include "train/elastic.hpp"

namespace geofm {
namespace {

using comm::FaultEvent;
using comm::FaultPlan;
using data::DataLoader;
namespace fs = std::filesystem;

std::string fresh_root(const std::string& name) {
  const std::string root = "/tmp/" + name;
  fs::remove_all(root);
  ckpt::reset_save_state(root);
  return root;
}

models::MaeConfig chaos_mae_cfg() {
  models::ViTConfig enc{.name = "t", .width = 16, .depth = 3, .mlp_dim = 32,
                        .heads = 2, .img_size = 16, .patch_size = 4,
                        .in_channels = 3};
  return models::mae_for(enc);
}

train::ElasticConfig chaos_elastic_config(const std::string& ckpt_root) {
  train::ElasticConfig cfg;
  cfg.model = chaos_mae_cfg();
  cfg.model_seed = 42;
  cfg.world = 4;
  cfg.fsdp.strategy = parallel::ShardingStrategy::kFullShard;
  cfg.train.steps = 8;
  cfg.train.global_batch = 12;
  cfg.train.lr = 1e-3;
  cfg.train.seed = 5;
  cfg.train.loader_workers = 2;  // the data-path seam needs workers
  cfg.train.verbose = false;
  cfg.train.checkpoint_every_n_steps = 3;
  cfg.train.checkpoint_dir = ckpt_root;
  cfg.train.async_checkpoint = false;
  cfg.train.tolerate_checkpoint_failures = true;
  return cfg;
}

double counter_value(const std::string& name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

/// All batches of one epoch through a loader configured by `tweak`.
std::vector<data::Batch> collect_epoch(const data::SceneDataset& ds,
                                       void (*tweak)(DataLoader::Options&),
                                       comm::FaultInjector* injector) {
  DataLoader::Options opts;
  opts.batch_size = 8;
  opts.n_workers = 2;
  opts.seed = 7;
  opts.fault_injector = injector;
  if (tweak != nullptr) tweak(opts);
  DataLoader loader(ds, data::Split::kTrain, opts);
  loader.start_epoch(0);
  std::vector<data::Batch> out;
  while (auto b = loader.next()) out.push_back(std::move(*b));
  return out;
}

void expect_batches_bitwise(const std::vector<data::Batch>& got,
                            const std::vector<data::Batch>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t b = 0; b < got.size(); ++b) {
    ASSERT_EQ(got[b].sample_indices, want[b].sample_indices) << "batch " << b;
    ASSERT_EQ(got[b].images.numel(), want[b].images.numel()) << "batch " << b;
    const float* g = got[b].images.data();
    const float* w = want[b].images.data();
    for (i64 i = 0; i < got[b].images.numel(); ++i) {
      ASSERT_EQ(g[i], w[i]) << "batch " << b << " element " << i;
    }
  }
}

// ---------------------------------------------------------------- campaigns

TEST(ChaosCampaign, SameSeedSameCampaignBitwise) {
  chaos::CampaignConfig cfg;
  cfg.seed = 0xabcdefULL;
  cfg.bursts = 3;
  cfg.max_faults_per_burst = 4;
  const chaos::Campaign a = chaos::generate_campaign(cfg);
  const chaos::Campaign b = chaos::generate_campaign(cfg);
  EXPECT_EQ(comm::plan_to_json(a.plan), comm::plan_to_json(b.plan));
  EXPECT_EQ(a.overload_steps, b.overload_steps);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_FALSE(a.plan.events.empty());
}

TEST(ChaosCampaign, KillBudgetAndTargetRangesHold) {
  for (u64 seed = 0; seed < 64; ++seed) {
    chaos::CampaignConfig cfg;
    cfg.seed = seed;
    cfg.bursts = 3;
    cfg.max_faults_per_burst = 4;
    cfg.max_kills = 1;
    const chaos::Campaign c = chaos::generate_campaign(cfg);
    int kills = 0;
    for (const FaultEvent& e : c.plan.events) {
      if (e.kind == FaultEvent::Kind::kKill) ++kills;
      EXPECT_LT(e.rank, cfg.world) << "seed " << seed;
      if (e.step >= 0) {
        EXPECT_LT(e.step, cfg.steps) << "seed " << seed;
      }
    }
    EXPECT_LE(kills, cfg.max_kills) << "seed " << seed;
    for (const i64 s : c.overload_steps) {
      EXPECT_GE(s, 0) << "seed " << seed;
      EXPECT_LT(s, cfg.steps) << "seed " << seed;
    }
  }
}

TEST(ChaosCampaign, DisabledSubsystemsDrawNoEvents) {
  for (u64 seed = 0; seed < 32; ++seed) {
    chaos::CampaignConfig cfg;
    cfg.seed = seed;
    cfg.bursts = 3;
    cfg.max_faults_per_burst = 4;
    cfg.comm_faults = false;
    cfg.storage_faults = false;
    cfg.serve_overload = false;
    const chaos::Campaign c = chaos::generate_campaign(cfg);
    EXPECT_TRUE(c.overload_steps.empty()) << "seed " << seed;
    for (const FaultEvent& e : c.plan.events) {
      EXPECT_TRUE(e.is_loader()) << "seed " << seed << ": non-loader event "
                                 << static_cast<int>(e.kind);
    }
  }
}

// ---------------------------------------------------------------- loader seam

TEST(ChaosLoader, WorkerDeathRespawnsAndEpochIsBitwise) {
  auto ds = data::million_aid_pretrain(48, 16);
  const auto baseline = collect_epoch(ds, nullptr, nullptr);

  FaultPlan plan;
  plan.events.push_back(FaultEvent::loader_worker_kill(0, 2));
  comm::FaultInjector injector(plan);
  const double deaths_before = counter_value("loader.worker_deaths");
  const double respawns_before = counter_value("loader.respawns");
  const auto faulted = collect_epoch(ds, nullptr, &injector);

  expect_batches_bitwise(faulted, baseline);
  EXPECT_EQ(counter_value("loader.worker_deaths") - deaths_before, 1.0);
  EXPECT_EQ(counter_value("loader.respawns") - respawns_before, 1.0);
}

TEST(ChaosLoader, WatchdogTakesOverHungRender) {
  auto ds = data::million_aid_pretrain(48, 16);
  const auto baseline = collect_epoch(ds, nullptr, nullptr);

  FaultPlan plan;
  plan.events.push_back(FaultEvent::loader_slow_render(0, 1, 0.6));
  comm::FaultInjector injector(plan);
  const double takeovers_before = counter_value("loader.stall_requeues");
  const auto faulted = collect_epoch(
      ds,
      [](DataLoader::Options& o) {
        o.n_workers = 1;  // the one worker hangs; only the watchdog saves us
        o.watchdog_seconds = 0.05;
      },
      &injector);

  expect_batches_bitwise(faulted, baseline);
  EXPECT_GE(counter_value("loader.stall_requeues") - takeovers_before, 1.0);
}

TEST(ChaosLoader, PoisonedSampleIsQuarantinedNotFatal) {
  auto ds = data::million_aid_pretrain(48, 16);
  const auto baseline = collect_epoch(ds, nullptr, nullptr);

  FaultPlan plan;
  plan.seed = 31337;
  plan.events.push_back(FaultEvent::loader_poison(0, 0));
  comm::FaultInjector injector(plan);
  const double quarantined_before = counter_value("loader.quarantined");

  DataLoader::Options opts;
  opts.batch_size = 8;
  opts.n_workers = 2;
  opts.seed = 7;
  opts.fault_injector = &injector;
  opts.quarantine_poisoned = true;
  DataLoader loader(ds, data::Split::kTrain, opts);
  loader.start_epoch(0);
  std::vector<data::Batch> faulted;
  while (auto b = loader.next()) faulted.push_back(std::move(*b));

  EXPECT_EQ(counter_value("loader.quarantined") - quarantined_before, 1.0);
  const std::vector<i64> quarantined = loader.quarantined_samples();
  ASSERT_EQ(quarantined.size(), 1u);

  // Every surviving value is finite, and the batches match the clean run
  // everywhere except the quarantined sample's row, which is zeroed.
  ASSERT_EQ(faulted.size(), baseline.size());
  i64 zeroed_rows = 0;
  for (size_t b = 0; b < faulted.size(); ++b) {
    const i64 rows = faulted[b].images.dim(0);
    const i64 row_elems = faulted[b].images.numel() / rows;
    const float* g = faulted[b].images.data();
    const float* w = baseline[b].images.data();
    for (i64 r = 0; r < rows; ++r) {
      bool row_equal = true;
      for (i64 i = r * row_elems; i < (r + 1) * row_elems; ++i) {
        ASSERT_TRUE(std::isfinite(g[i]))
            << "non-finite survived quarantine at batch " << b;
        if (g[i] != w[i]) row_equal = false;
      }
      if (row_equal) continue;
      ++zeroed_rows;
      EXPECT_EQ(faulted[b].sample_indices[static_cast<size_t>(r)],
                quarantined[0]);
      for (i64 i = r * row_elems; i < (r + 1) * row_elems; ++i) {
        EXPECT_EQ(g[i], 0.0f);
      }
    }
  }
  EXPECT_EQ(zeroed_rows, 1);
}

// ------------------------------------------------------------ elastic + audit

// A generated mixed campaign (comm + storage + loader) through the full
// elastic supervisor: the run completes, the invariant audit holds, and
// replaying the identical campaign reproduces the identical realized
// fault schedule — the record/replay contract at campaign granularity.
TEST(ChaosElastic, MixedCampaignSurvivesAuditsAndReplaysBitwise) {
  const std::string root = fresh_root("geofm_test_chaos_mixed");
  auto corpus = data::million_aid_pretrain(64, 16);

  chaos::CampaignConfig ccfg;
  ccfg.seed = 806662;  // drawn schedule includes loader faults
  ccfg.world = 4;
  ccfg.steps = 8;
  ccfg.io_ops = 6;
  const chaos::Campaign campaign = chaos::generate_campaign(ccfg);
  ASSERT_FALSE(campaign.plan.events.empty());

  auto cfg = chaos_elastic_config(root);
  cfg.faults = campaign.plan;
  const auto res = train::run_elastic(cfg, corpus);
  ASSERT_TRUE(res.attempts.back().completed);

  chaos::InvariantInputs in;
  in.config = &cfg;
  in.result = &res;
  in.corpus = &corpus;
  in.publish_roots = {root};
  const chaos::InvariantReport report = chaos::check_invariants(in);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(report.checked.size(), 3u);

  // Same campaign, fresh run: the realized schedule is bitwise stable.
  const std::string second_root = fresh_root("geofm_test_chaos_mixed2");
  auto cfg2 = chaos_elastic_config(second_root);
  cfg2.faults = campaign.plan;
  const auto res2 = train::run_elastic(cfg2, corpus);
  EXPECT_EQ(comm::plan_to_json(res2.fired_plan),
            comm::plan_to_json(res.fired_plan));

  fs::remove_all(root);
  fs::remove_all(second_root);
}

// ------------------------------------------------------------- record/replay

TEST(ChaosPostmortem, BundleFiredPlanParsesBackToTheRealizedSchedule) {
  const std::string root = fresh_root("geofm_test_chaos_postmortem");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = chaos_elastic_config(root);
  cfg.faults.seed = 99;
  cfg.faults.events.push_back(FaultEvent::loader_poison(2, 3));
  cfg.faults.events.push_back(FaultEvent::kill_at_step(1, 5));

  const auto res = train::run_elastic(cfg, corpus);
  ASSERT_EQ(res.attempts.size(), 2u);
  const train::ElasticAttempt& aborted = res.attempts.front();
  ASSERT_FALSE(aborted.postmortem.empty());
  ASSERT_TRUE(fs::exists(aborted.postmortem));

  const chaos::Campaign parsed =
      chaos::plan_from_postmortem_file(aborted.postmortem);
  EXPECT_EQ(parsed.seed, cfg.faults.seed);
  ASSERT_EQ(parsed.plan.events.size(),
            static_cast<size_t>(aborted.faults_fired));
  const bool has_kill = std::any_of(
      parsed.plan.events.begin(), parsed.plan.events.end(),
      [](const FaultEvent& e) { return e.kind == FaultEvent::Kind::kKill; });
  const bool has_poison =
      std::any_of(parsed.plan.events.begin(), parsed.plan.events.end(),
                  [](const FaultEvent& e) {
                    return e.kind == FaultEvent::Kind::kLoaderPoison;
                  });
  EXPECT_TRUE(has_kill);
  EXPECT_TRUE(has_poison);
  fs::remove_all(root);
}

TEST(ChaosPostmortem, BarePlanJsonAndGarbageInputs) {
  FaultPlan plan;
  plan.seed = 4242;
  plan.events.push_back(FaultEvent::kill_at_step(1, 5));
  plan.events.push_back(FaultEvent::io_torn_write(0, 1));
  plan.events.push_back(FaultEvent::loader_slow_render(-1, 3, 0.03125, 2));
  const std::string json = comm::plan_to_json(plan);

  const chaos::Campaign parsed = chaos::plan_from_postmortem(json);
  EXPECT_EQ(comm::plan_to_json(parsed.plan), json);

  EXPECT_THROW(chaos::plan_from_postmortem("not json at all"), Error);
  EXPECT_THROW(chaos::plan_from_postmortem("{\"notes\": {}}"), Error);
  EXPECT_THROW(chaos::plan_from_postmortem_file("/nonexistent/bundle.json"),
               Error);
}

// --------------------------------------------------------- planted violations

TEST(ChaosInvariants, PlantedServeViolationsAreFlagged) {
  // A dropped future: 5 issued, 4 resolved.
  chaos::InvariantInputs in;
  in.serve.issued = 5;
  in.serve.resolved = 4;
  in.serve.stats.requests = 3;
  in.serve.stats.shed_overload = 2;
  chaos::InvariantReport rep = chaos::check_invariants(in);
  ASSERT_EQ(rep.checked, std::vector<std::string>{"futures-conserved"});
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.violations[0].invariant, "futures-conserved");

  // Typed accounting that does not add up to the issued count.
  in.serve.resolved = 5;
  in.serve.stats.shed_overload = 1;  // 3 fulfilled + 1 shed != 5 issued
  rep = chaos::check_invariants(in);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.violations[0].invariant, "futures-conserved");

  // And the balanced ledger passes.
  in.serve.stats.shed_overload = 2;
  EXPECT_TRUE(chaos::check_invariants(in).ok());
}

TEST(ChaosInvariants, TornVisiblePublicationIsFlagged) {
  const std::string root = fresh_root("geofm_test_chaos_torn_pub");
  Rng rng(3);
  models::MAE model(chaos_mae_cfg(), rng);
  ckpt::SaveRequest req;
  req.dir = root;
  req.step = 4;
  req.rank = 0;
  req.world = 1;
  req.counters = {{"step", i64{4}}};
  req.state = ckpt::replicated_state(model, nullptr, 0, 1, /*for_save=*/true);
  ckpt::Checkpointer saver(/*async=*/false);
  saver.save(req);

  chaos::InvariantInputs in;
  in.publish_roots = {root};
  EXPECT_TRUE(chaos::check_invariants(in).ok());

  // Corrupt a shard *behind* the published manifest — the exact torn
  // state the publication protocol exists to make impossible.
  const ckpt::PublishedManifest m = ckpt::latest_published_manifest(root);
  ASSERT_TRUE(m.found());
  const ckpt::format::Manifest man = ckpt::format::read_manifest(m.dir);
  ASSERT_FALSE(man.shards.empty());
  const std::string shard = m.dir + "/" + man.shards.front();
  fs::resize_file(shard, fs::file_size(shard) / 2);

  const chaos::InvariantReport rep = chaos::check_invariants(in);
  ASSERT_FALSE(rep.ok());
  for (const auto& v : rep.violations) {
    EXPECT_EQ(v.invariant, "publications-atomic");
  }
  fs::remove_all(root);
}

TEST(ChaosInvariants, PlantedTrainingViolationsAreFlagged) {
  const std::string root = fresh_root("geofm_test_chaos_planted");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = chaos_elastic_config(root);
  cfg.faults.events.push_back(FaultEvent::kill_at_step(1, 5));
  const train::ElasticResult res = train::run_elastic(cfg, corpus);

  chaos::InvariantInputs in;
  in.config = &cfg;
  in.result = &res;
  in.corpus = &corpus;
  in.publish_roots = {root};
  ASSERT_TRUE(chaos::check_invariants(in).ok());

  const auto violated = [&](const train::ElasticResult& bad,
                            const std::string& invariant) {
    chaos::InvariantInputs bin = in;
    bin.result = &bad;
    const chaos::InvariantReport rep = chaos::check_invariants(bin);
    EXPECT_FALSE(rep.ok()) << "expected a " << invariant << " violation";
    return !rep.ok() && rep.violations[0].invariant == invariant;
  };

  // Recovery count over the bound.
  train::ElasticResult over = res;
  over.recoveries = cfg.max_recoveries + 1;
  EXPECT_TRUE(violated(over, "recovery-bounded"));

  // Recovery time over an explicit ceiling.
  {
    chaos::InvariantInputs bin = in;
    bin.max_recovery_seconds = 1e-9;
    const chaos::InvariantReport rep = chaos::check_invariants(bin);
    ASSERT_FALSE(rep.ok());
    EXPECT_EQ(rep.violations[0].invariant, "recovery-bounded");
  }

  // A failed attempt whose postmortem bundle went missing — and one that
  // never archived at all.
  train::ElasticResult missing = res;
  missing.attempts.front().postmortem = "/nonexistent/postmortem.json";
  EXPECT_TRUE(violated(missing, "postmortems-present"));
  train::ElasticResult unarchived = res;
  unarchived.attempts.front().postmortem.clear();
  EXPECT_TRUE(violated(unarchived, "postmortems-present"));

  // Post-recovery losses that do not match the fresh shrunken run.
  train::ElasticResult diverged = res;
  diverged.attempts.back().losses.back() += 1.0f;
  EXPECT_TRUE(violated(diverged, "recovery-bitwise"));

  fs::remove_all(root);
}

}  // namespace
}  // namespace geofm
