// Flight recorder, telemetry sampler, and run-health report tests.
//
// The flight tests drive real elastic runs: a fault-injected failure must
// leave exactly one postmortem bundle per recovery attempt, and the
// bundle's kind/diagnosis/suspects must match what the abort path (fault
// plan or watchdog) actually diagnosed. Atomicity is checked with the
// recorder's torn-write seam: a failed archive must leave nothing behind.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "comm/communicator.hpp"
#include "comm/fault.hpp"
#include "data/datasets.hpp"
#include "models/mae.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "parallel/fsdp.hpp"
#include "train/distributed.hpp"
#include "train/elastic.hpp"
#include "util/thread_context.hpp"

namespace geofm {
namespace {

using comm::Communicator;
using comm::run_ranks;
using obs::FlightRecorder;
using obs::PostmortemBundle;
using obs::TraceEvent;
using obs::TraceRecorder;
using obs::TraceScope;
using parallel::Fsdp;
using parallel::FsdpOptions;
using parallel::ShardingStrategy;
namespace fs = std::filesystem;

/// Enables tracing for one test body and restores the disabled,
/// empty-buffer state on exit so tests compose in any order.
struct TraceSession {
  TraceSession() {
    auto& r = TraceRecorder::instance();
    r.disable();
    r.clear();
    r.enable();
  }
  ~TraceSession() {
    auto& r = TraceRecorder::instance();
    r.disable();
    r.clear();
  }
};

/// Disarms the flight recorder and drops any leftover capture on exit.
struct FlightSession {
  ~FlightSession() {
    FlightRecorder::instance().set_write_fault_for_test(-1);
    FlightRecorder::instance().discard();
    FlightRecorder::instance().disable();
  }
};

models::MaeConfig elastic_mae_cfg() {
  models::ViTConfig enc{.name = "t", .width = 16, .depth = 3, .mlp_dim = 32,
                        .heads = 2, .img_size = 16, .patch_size = 4,
                        .in_channels = 3};
  return models::mae_for(enc);
}

std::string fresh_root(const std::string& name) {
  const std::string root = "/tmp/" + name;
  fs::remove_all(root);
  ckpt::reset_save_state(root);
  return root;
}

train::ElasticConfig base_config(const std::string& ckpt_root) {
  train::ElasticConfig cfg;
  cfg.model = elastic_mae_cfg();
  cfg.model_seed = 42;
  cfg.world = 4;
  cfg.fsdp.strategy = ShardingStrategy::kFullShard;
  cfg.train.steps = 8;
  cfg.train.global_batch = 12;  // divides 4, 3, and 2 — shrink-friendly
  cfg.train.lr = 1e-3;
  cfg.train.seed = 5;
  cfg.train.loader_workers = 0;
  cfg.train.verbose = false;
  cfg.train.checkpoint_every_n_steps = 3;
  cfg.train.checkpoint_dir = ckpt_root;
  cfg.train.async_checkpoint = false;
  return cfg;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Bundle files (postmortem_*.json) in a directory; run_health.json and
/// temp files do not count.
std::vector<std::string> bundle_files(const std::string& dir) {
  std::vector<std::string> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("postmortem_", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".json") {
      out.push_back(entry.path().string());
    }
  }
  return out;
}

bool dir_has_tmp_files(const std::string& dir) {
  if (!fs::exists(dir)) return false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp") != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// The value part of a top-level `"key": <value>` line in a bundle,
/// trailing comma stripped ("" if absent).
std::string json_line_value(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return "";
  auto end = text.find('\n', pos);
  if (end == std::string::npos) end = text.size();
  std::string v = text.substr(pos + needle.size(), end - pos - needle.size());
  while (!v.empty() && (v.back() == ',' || v.back() == '\r')) v.pop_back();
  return v;
}

// Minimal structural JSON check: balanced braces/brackets outside string
// literals, non-empty, object at top level.
void expect_valid_json_structure(const std::string& s) {
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.front(), '{');
  int depth_brace = 0, depth_bracket = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_brace; break;
      case '}': --depth_brace; break;
      case '[': ++depth_bracket; break;
      case ']': --depth_bracket; break;
      default: break;
    }
    EXPECT_GE(depth_brace, 0);
    EXPECT_GE(depth_bracket, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_brace, 0);
  EXPECT_EQ(depth_bracket, 0);
}

// ----- postmortem bundles from real elastic failures -------------------------

TEST(Postmortem, KillLeavesOneBundlePerRecovery) {
  FlightSession flight_session;
  const std::string root = fresh_root("geofm_test_flight_kill");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 5));

  const auto res = train::run_elastic(cfg, corpus);

  ASSERT_EQ(res.attempts.size(), 2u);
  EXPECT_EQ(res.recoveries, 1);

  // One bundle per recovery attempt, next to the checkpoints.
  const std::string pm_dir = root + "/postmortem";
  const auto bundles = bundle_files(pm_dir);
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_FALSE(dir_has_tmp_files(pm_dir));

  // The failed attempt links its bundle; the completing one has none.
  EXPECT_EQ(res.attempts[0].postmortem, bundles[0]);
  EXPECT_TRUE(res.attempts[1].postmortem.empty());

  const std::string text = read_file(bundles[0]);
  expect_valid_json_structure(text);
  EXPECT_EQ(json_line_value(text, "kind"), "\"fault_kill\"");
  EXPECT_NE(text.find("killed by fault plan"), std::string::npos);
  // Archiver notes carry the supervisor's context.
  EXPECT_NE(text.find("\"attempt\": \"0\""), std::string::npos);
  EXPECT_NE(text.find("\"world\": \"4\""), std::string::npos);
  // The bundle froze evidence: spans from multiple ranks plus metrics.
  EXPECT_NE(text.find("\"spans\""), std::string::npos);
  EXPECT_NE(text.find("\"rank\": 0"), std::string::npos);
  EXPECT_NE(text.find("\"metrics\""), std::string::npos);

  // The completing run leaves its health report alongside the bundles.
  EXPECT_TRUE(fs::exists(pm_dir + "/run_health.json"));
  expect_valid_json_structure(read_file(pm_dir + "/run_health.json"));

  fs::remove_all(root);
}

TEST(Postmortem, StallBundleMatchesWatchdogDiagnosis) {
  FlightSession flight_session;
  const std::string root = fresh_root("geofm_test_flight_stall");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 6;
  cfg.train.checkpoint_every_n_steps = 2;
  cfg.faults.events.push_back(comm::FaultEvent::stall_at_step(2, 4, 2.5));
  cfg.watchdog_deadline_seconds = 0.75;

  const auto res = train::run_elastic(cfg, corpus);

  ASSERT_EQ(res.attempts.size(), 2u);
  EXPECT_EQ(res.attempts[0].quarantined, (std::vector<int>{2}));

  const auto bundles = bundle_files(root + "/postmortem");
  ASSERT_EQ(bundles.size(), 1u);
  const std::string text = read_file(bundles[0]);
  expect_valid_json_structure(text);

  // The bundle's diagnosis IS the watchdog's: kind, stalled-rank
  // suspects, and the human-readable stall message all match.
  EXPECT_EQ(json_line_value(text, "kind"), "\"watchdog_abort\"");
  EXPECT_EQ(json_line_value(text, "suspects"), "[2]");
  EXPECT_NE(text.find("stalled in"), std::string::npos);
  EXPECT_NE(res.attempts[0].failure.find("stalled in"), std::string::npos);

  fs::remove_all(root);
}

TEST(Postmortem, SlowRankPastDeadlineDiagnosedAndArchived) {
  FlightSession flight_session;
  const std::string root = fresh_root("geofm_test_flight_slow");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  // Rank 2 sleeps 2.5s before one post — a slow rank, not a dead one.
  // Past the 0.75s deadline that is indistinguishable from a stall, and
  // the watchdog must say so in the bundle.
  cfg.faults.events.push_back(comm::FaultEvent::slow_rank(2, 4, 2.5, 1));
  cfg.watchdog_deadline_seconds = 0.75;

  const auto res = train::run_elastic(cfg, corpus);

  ASSERT_GE(res.attempts.size(), 2u);
  EXPECT_EQ(res.recoveries, 1);
  EXPECT_EQ(res.attempts[0].quarantined, (std::vector<int>{2}));

  const auto bundles = bundle_files(root + "/postmortem");
  ASSERT_EQ(bundles.size(), 1u);
  const std::string text = read_file(bundles[0]);
  EXPECT_EQ(json_line_value(text, "kind"), "\"watchdog_abort\"");
  EXPECT_EQ(json_line_value(text, "suspects"), "[2]");

  fs::remove_all(root);
}

TEST(Postmortem, ReplayedPlanYieldsIdenticalBundleStructure) {
  FlightSession flight_session;
  auto corpus = data::million_aid_pretrain(64, 16);

  const std::string root_a = fresh_root("geofm_test_flight_replay_a");
  auto cfg = base_config(root_a);
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 5));
  const auto res_a = train::run_elastic(cfg, corpus);

  // Replay the realized fault schedule in a fresh root: the failure is
  // deterministic, so the bundle's identity fields must come out equal.
  const std::string root_b = fresh_root("geofm_test_flight_replay_b");
  auto cfg_b = base_config(root_b);
  cfg_b.faults = res_a.fired_plan;
  const auto res_b = train::run_elastic(cfg_b, corpus);

  const auto bundles_a = bundle_files(root_a + "/postmortem");
  const auto bundles_b = bundle_files(root_b + "/postmortem");
  ASSERT_EQ(bundles_a.size(), 1u);
  ASSERT_EQ(bundles_b.size(), 1u);

  const std::string text_a = read_file(bundles_a[0]);
  const std::string text_b = read_file(bundles_b[0]);
  for (const char* key : {"kind", "diagnosis", "suspects"}) {
    EXPECT_EQ(json_line_value(text_a, key), json_line_value(text_b, key))
        << "bundle field `" << key << "` diverged under replay";
  }
  EXPECT_EQ(res_a.attempts[0].failure, res_b.attempts[0].failure);

  fs::remove_all(root_a);
  fs::remove_all(root_b);
}

// ----- flight recorder unit behavior -----------------------------------------

TEST(Postmortem, BundleWriteIsAtomicUnderTornWrite) {
  FlightSession flight_session;
  TraceSession trace_session;
  auto& flight = FlightRecorder::instance();
  flight.discard();
  flight.enable(64);

  const std::string dir = "/tmp/geofm_test_flight_atomic";
  fs::remove_all(dir);

  flight.capture_now("torn-write probe");
  ASSERT_TRUE(flight.has_capture());
  flight.set_write_fault_for_test(48);
  EXPECT_THROW(flight.archive(dir), Error);

  // A torn write must leave NOTHING: no bundle, no temp file.
  EXPECT_TRUE(bundle_files(dir).empty());
  EXPECT_FALSE(dir_has_tmp_files(dir));

  // The seam disarms itself after one shot; the next capture archives.
  flight.capture_now("clean retry");
  const std::string path = flight.archive(dir, {{"note", "ok"}});
  ASSERT_TRUE(fs::exists(path));
  const std::string text = read_file(path);
  expect_valid_json_structure(text);
  EXPECT_EQ(json_line_value(text, "kind"), "\"explicit\"");
  EXPECT_NE(text.find("\"note\": \"ok\""), std::string::npos);
  EXPECT_FALSE(flight.has_capture());

  fs::remove_all(dir);
}

TEST(Postmortem, FirstCaptureWinsAndLastNSpansPerRankCapped) {
  FlightSession flight_session;
  TraceSession trace_session;
  auto& flight = FlightRecorder::instance();
  flight.discard();
  flight.enable(8);
  EXPECT_EQ(flight.last_n_spans(), 8u);

  // Two ranks each emit more spans than the cap keeps.
  for (int rank : {0, 1}) {
    std::thread emitter([rank] {
      set_thread_rank(rank);
      for (int i = 0; i < 30; ++i) {
        TraceScope s("pm.span", "test", "i", i);
      }
    });
    emitter.join();
  }

  flight.capture_now("root cause");
  flight.capture_now("cascade echo");  // must not displace the first

  PostmortemBundle b;
  ASSERT_TRUE(flight.peek(b));
  EXPECT_EQ(b.kind, "explicit");
  EXPECT_EQ(b.diagnosis, "root cause");

  int rank0 = 0, rank1 = 0;
  u64 prev_ts = 0;
  int prev_rank = -2;
  for (const TraceEvent& e : b.spans) {
    if (e.rank == 0) ++rank0;
    if (e.rank == 1) ++rank1;
    // Oldest-first within each rank.
    if (e.rank == prev_rank) {
      EXPECT_GE(e.ts_ns, prev_ts);
    }
    prev_rank = e.rank;
    prev_ts = e.ts_ns;
  }
  EXPECT_EQ(rank0, 8);
  EXPECT_EQ(rank1, 8);
  // The kept spans are the MOST RECENT ones: the last emitted arg index
  // (29) survives, the first (0) does not.
  bool saw_last = false, saw_first = false;
  for (const TraceEvent& e : b.spans) {
    if (e.arg == 29) saw_last = true;
    if (e.arg == 0) saw_first = true;
  }
  EXPECT_TRUE(saw_last);
  EXPECT_FALSE(saw_first);

  flight.discard();
  EXPECT_FALSE(flight.has_capture());
}

// ----- telemetry sampler -----------------------------------------------------

TEST(Telemetry, SamplerEmitsJsonlTimeSeries) {
  TraceSession trace_session;
  const std::string dir = "/tmp/geofm_test_telemetry";
  fs::remove_all(dir);

  obs::telemetry::TelemetryOptions opts;
  opts.dir = dir;
  opts.interval_seconds = 0.02;
  ASSERT_TRUE(obs::telemetry::start(opts));
  EXPECT_FALSE(obs::telemetry::start(opts));  // one sampler per process
  EXPECT_TRUE(obs::telemetry::running());

  auto corpus = data::million_aid_pretrain(64, 16);
  train::DistributedPretrainConfig cfg;
  cfg.steps = 4;
  cfg.global_batch = 8;
  cfg.lr = 1e-3;
  cfg.seed = 3;
  cfg.loader_workers = 0;
  cfg.verbose = false;
  run_ranks(2, [&](Communicator& c) {
    Rng rng(7);
    models::MAE mae(elastic_mae_cfg(), rng);
    FsdpOptions fopts;
    fopts.strategy = ShardingStrategy::kFullShard;
    Fsdp fsdp(mae, c, fopts);
    train::pretrain_mae_distributed(mae, fsdp, c, corpus, cfg);
  });

  obs::telemetry::stop();
  EXPECT_FALSE(obs::telemetry::running());
  obs::telemetry::stop();  // idempotent

  const std::string text = read_file(dir + "/telemetry.jsonl");
  ASSERT_FALSE(text.empty());
  std::istringstream lines(text);
  std::string line;
  int n_lines = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++n_lines;
    expect_valid_json_structure(line);
  }
  // The stop() flush guarantees at least one sample even on a fast run.
  EXPECT_GE(n_lines, 1);
  // Across the series: timestamps, metric deltas, the per-rank step-time
  // breakdown drained from the trace, and process RSS.
  EXPECT_NE(text.find("\"t\""), std::string::npos);
  EXPECT_NE(text.find("\"metrics\""), std::string::npos);
  EXPECT_NE(text.find("\"ranks\""), std::string::npos);
  EXPECT_NE(text.find("\"step\""), std::string::npos);
#ifdef __linux__
  EXPECT_NE(text.find("\"rss_bytes\""), std::string::npos);
#endif
  // The sampler's own cost is visible to the span budget gate.
  bool saw_sample_span = false;
  for (const TraceEvent& e : TraceRecorder::instance().snapshot()) {
    if (e.phase == TraceEvent::Phase::kComplete &&
        std::string(e.name) == "telemetry.sample") {
      saw_sample_span = true;
    }
  }
  EXPECT_TRUE(saw_sample_span);

  fs::remove_all(dir);
}

// ----- run-health report -----------------------------------------------------

TEST(HealthReport, PhaseSumsReconcileWithCommStats) {
  TraceSession trace_session;
  auto corpus = data::million_aid_pretrain(64, 16);
  train::DistributedPretrainConfig cfg;
  cfg.steps = 4;
  cfg.global_batch = 8;
  cfg.lr = 1e-3;
  cfg.seed = 11;
  cfg.loader_workers = 0;
  cfg.verbose = false;

  std::mutex mu;
  std::vector<double> exposed(2, -1.0);
  run_ranks(2, [&](Communicator& c) {
    Rng rng(7);
    models::MAE mae(elastic_mae_cfg(), rng);
    FsdpOptions fopts;
    fopts.strategy = ShardingStrategy::kFullShard;
    Fsdp fsdp(mae, c, fopts);
    auto r = train::pretrain_mae_distributed(mae, fsdp, c, corpus, cfg);
    std::lock_guard<std::mutex> lk(mu);
    exposed[static_cast<size_t>(c.rank())] = r.exposed_wait_seconds;
  });

  const auto report = obs::build_run_health_report();

  ASSERT_EQ(report.ranks.size(), 2u);
  EXPECT_EQ(report.steps, 8);
  EXPECT_GT(report.step_seconds_total, 0.0);
  EXPECT_LE(report.p50_step_seconds, report.p99_step_seconds);

  double step_sum = 0, exposed_sum = 0;
  for (const auto& h : report.ranks) {
    ASSERT_GE(h.rank, 0);
    ASSERT_LT(h.rank, 2);
    EXPECT_EQ(h.steps, 4);
    EXPECT_LE(h.p50_step_seconds, h.p99_step_seconds);
    // The report's per-rank exposed comm wait is the driver's number: the
    // comm.exposed spans wrap the same wait the CommStats accumulator
    // times, so the two differ only by per-wait clock-read overhead.
    EXPECT_NEAR(h.exposed_wait_seconds, exposed[static_cast<size_t>(h.rank)],
                0.05 * exposed[static_cast<size_t>(h.rank)] + 2e-3);
    // Phases partition time measured inside steps: their sum (which
    // includes the overlapping comm.exposed category) stays within a
    // factor of the summed step time.
    double phase_sum = 0;
    for (const auto& [name, sec] : h.phase_seconds) phase_sum += sec;
    EXPECT_GT(phase_sum, 0.0);
    EXPECT_LT(phase_sum, 2.0 * h.step_seconds + 1e-6);
    step_sum += h.step_seconds;
    exposed_sum += h.exposed_wait_seconds;
  }
  EXPECT_NEAR(report.step_seconds_total, step_sum, 1e-9);
  EXPECT_NEAR(report.exposed_wait_seconds_total, exposed_sum, 1e-9);

  // Cross-rank phase totals are the sum of the per-rank maps.
  for (const auto& [name, total] : report.phase_seconds) {
    double by_rank = 0;
    for (const auto& h : report.ranks) {
      auto it = h.phase_seconds.find(name);
      if (it != h.phase_seconds.end()) by_rank += it->second;
    }
    EXPECT_NEAR(total, by_rank, 1e-9) << "phase " << name;
  }
  EXPECT_TRUE(report.phase_seconds.count("step.forward"));
  EXPECT_TRUE(report.phase_seconds.count("step.backward"));
  EXPECT_TRUE(report.phase_seconds.count("comm.exposed"));

  // Both renderings stay structurally sound.
  const std::string json = obs::report_to_json(report);
  expect_valid_json_structure(json);
  const std::string text = obs::report_to_text(report);
  EXPECT_NE(text.find("run health"), std::string::npos);
}

TEST(HealthReport, StragglerAndTimelineFromSyntheticEvents) {
  auto span = [](const char* name, int rank, double start_s, double dur_s) {
    TraceEvent e;
    e.name = name;
    e.cat = "test";
    e.rank = rank;
    e.ts_ns = static_cast<u64>(start_s * 1e9);
    e.dur_ns = static_cast<u64>(dur_s * 1e9);
    e.phase = TraceEvent::Phase::kComplete;
    return e;
  };
  auto instant = [](const char* name, int rank, double at_s) {
    TraceEvent e;
    e.name = name;
    e.cat = "test";
    e.rank = rank;
    e.ts_ns = static_cast<u64>(at_s * 1e9);
    e.phase = TraceEvent::Phase::kInstant;
    return e;
  };

  std::vector<TraceEvent> events;
  // Ranks 0 and 2 step in ~10ms; rank 1 needs 30ms — the straggler.
  for (int i = 0; i < 4; ++i) {
    events.push_back(span("step", 0, i * 0.1, 0.010));
    events.push_back(span("step", 1, i * 0.1, 0.030));
    events.push_back(span("step", 2, i * 0.1, 0.011));
  }
  // A recovery: kill at t=0.42, watchdog abort, detect/reform/reshard,
  // then a checkpoint publication.
  events.push_back(instant("fault.kill", 1, 0.42));
  events.push_back(instant("watchdog.abort", -1, 0.45));
  auto reform = span("recover.reform", -1, 0.50, 0.02);
  reform.arg_name = "world";
  reform.arg = 2;
  events.push_back(span("recover.detect", -1, 0.45, 0.05));
  events.push_back(reform);
  events.push_back(instant("ckpt.published", 0, 0.60));

  const auto report = obs::build_run_health_report(events, /*dropped=*/3);

  EXPECT_EQ(report.straggler_rank, 1);
  EXPECT_NEAR(report.skew_ratio, 0.030 / 0.011, 1e-6);
  EXPECT_EQ(report.trace_dropped, 3u);
  ASSERT_EQ(report.ranks.size(), 3u);
  EXPECT_EQ(report.steps, 12);

  // Timeline: every marker present, ordered by time, world attached to
  // the recover span that carried it.
  ASSERT_EQ(report.recovery_timeline.size(), 5u);
  for (size_t i = 1; i < report.recovery_timeline.size(); ++i) {
    EXPECT_GE(report.recovery_timeline[i].at_seconds,
              report.recovery_timeline[i - 1].at_seconds);
  }
  EXPECT_EQ(report.recovery_timeline[0].name, "fault.kill");
  bool saw_reform = false;
  for (const auto& t : report.recovery_timeline) {
    if (t.name == "recover.reform") {
      saw_reform = true;
      EXPECT_EQ(t.world, 2);
      EXPECT_NEAR(t.dur_seconds, 0.02, 1e-9);
    }
  }
  EXPECT_TRUE(saw_reform);

  const std::string text = obs::report_to_text(report);
  EXPECT_NE(text.find("straggler"), std::string::npos);
  EXPECT_NE(text.find("recover.reform"), std::string::npos);
}

TEST(HealthReport, PrometheusExposition) {
  using obs::MetricSample;
  std::vector<MetricSample> samples;
  MetricSample c;
  c.name = "comm.waits";
  c.kind = MetricSample::Kind::kCounter;
  c.value = 42;
  samples.push_back(c);
  MetricSample g;
  g.name = "recovery.world";
  g.kind = MetricSample::Kind::kGauge;
  g.value = 3;
  samples.push_back(g);
  MetricSample h;
  h.name = "step.seconds";
  h.kind = MetricSample::Kind::kHistogram;
  h.value = 1.5;  // sum
  h.count = 10;
  h.mean = 0.15;
  h.p50 = 0.14;
  h.p90 = 0.2;
  h.p99 = 0.25;
  samples.push_back(h);

  const std::string text = obs::prometheus_text(samples);

  // Names sanitized into the geofm_ namespace, one TYPE line per metric.
  EXPECT_NE(text.find("# TYPE geofm_comm_waits counter"), std::string::npos);
  EXPECT_NE(text.find("geofm_comm_waits 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE geofm_recovery_world gauge"),
            std::string::npos);
  EXPECT_NE(text.find("geofm_recovery_world 3"), std::string::npos);
  // Histograms render as summaries: quantile series plus _sum/_count.
  EXPECT_NE(text.find("# TYPE geofm_step_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("geofm_step_seconds{quantile=\"0.5\"} 0.14"),
            std::string::npos);
  EXPECT_NE(text.find("geofm_step_seconds_sum 1.5"), std::string::npos);
  EXPECT_NE(text.find("geofm_step_seconds_count 10"), std::string::npos);
  // Exposition format: every line is comment or sample, ends in newline.
  EXPECT_EQ(text.back(), '\n');
}

}  // namespace
}  // namespace geofm
