// FaultPlan JSON record/replay. The serialized form is the contract for
// capturing a run's realized fault schedule (`FaultInjector::fired_plan`)
// and replaying it bitwise later: every serializable kind and every
// trigger field must survive the round trip exactly, including doubles
// that are not representable in short decimal.
#include <gtest/gtest.h>

#include <string>

#include "comm/fault.hpp"

namespace geofm {
namespace {

using comm::FaultEvent;
using comm::FaultPlan;
using comm::IoPath;

FaultPlan every_serializable_kind() {
  FaultPlan plan;
  plan.seed = 0xfeedbeefULL;
  plan.events.push_back(FaultEvent::kill_at_step(1, 5));
  plan.events.push_back(FaultEvent::kill_at_post(3, 17));
  plan.events.push_back(FaultEvent::stall_at_step(2, 7, 0.1));
  plan.events.push_back(FaultEvent::slow_rank(0, 3, 2.5, 4));
  plan.events.push_back(FaultEvent::corrupt_at_post(3, 9));
  plan.events.push_back(FaultEvent::io_fail_write(1, 2, 3));
  plan.events.push_back(FaultEvent::io_torn_write(0, 1));
  plan.events.push_back(FaultEvent::io_slow_write(2, 0, 0.015625, 0));
  plan.events.push_back(FaultEvent::io_unreadable_at_restore(-1, 4));
  plan.events.push_back(FaultEvent::io_fail_upload(0, 2));
  plan.events.push_back(FaultEvent::io_torn_upload(1));
  plan.events.push_back(FaultEvent::io_slow_upload(3, 0.2, 1));
  plan.events.push_back(FaultEvent::loader_worker_kill(2, 6));
  plan.events.push_back(FaultEvent::loader_slow_render(-1, 3, 0.03125, 2));
  plan.events.push_back(FaultEvent::loader_poison(0, 11));
  return plan;
}

TEST(FaultTrace, JsonRoundTrip) {
  const FaultPlan plan = every_serializable_kind();
  const std::string json = comm::plan_to_json(plan);
  const FaultPlan parsed = comm::plan_from_json(json);

  // Serializing the parse reproduces the exact byte string: the format is
  // stable and lossless (doubles printed round-trip exact).
  EXPECT_EQ(comm::plan_to_json(parsed), json);

  EXPECT_EQ(parsed.seed, plan.seed);
  ASSERT_EQ(parsed.events.size(), plan.events.size());
  for (size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& want = plan.events[i];
    const FaultEvent& got = parsed.events[i];
    EXPECT_EQ(got.kind, want.kind) << "event " << i;
    EXPECT_EQ(got.rank, want.rank) << "event " << i;
    EXPECT_EQ(got.step, want.step) << "event " << i;
    EXPECT_EQ(got.after_posts, want.after_posts) << "event " << i;
    EXPECT_EQ(got.seconds, want.seconds) << "event " << i;
    EXPECT_EQ(got.posts_affected, want.posts_affected) << "event " << i;
    EXPECT_EQ(got.io_path, want.io_path) << "event " << i;
    EXPECT_EQ(got.after_io, want.after_io) << "event " << i;
    EXPECT_EQ(got.ops_affected, want.ops_affected) << "event " << i;
  }
}

TEST(FaultTrace, CallbackEventsRefuseToSerialize) {
  FaultPlan plan;
  plan.events.push_back(
      FaultEvent::callback_every_step([](comm::Communicator&, i64) {}));
  EXPECT_THROW(comm::plan_to_json(plan), Error);
}

TEST(FaultTrace, MalformedJsonIsRejected) {
  EXPECT_THROW(comm::plan_from_json(""), Error);
  // A plan with no events is valid (an empty realized schedule).
  EXPECT_TRUE(comm::plan_from_json("{\"seed\": 1}").events.empty());
  EXPECT_THROW(
      comm::plan_from_json("{\"seed\": 1, \"events\": [{\"kind\": \"nope\"}]}"),
      Error);
  // Unknown keys are an error, not silently dropped: a replay must never
  // quietly ignore part of the schedule it was handed.
  const std::string unknown =
      "{\"seed\": 1,\n \"events\": [\n  {\"kind\": \"kill\", \"rank\": 0, "
      "\"step\": 1, \"mystery\": 3}\n ]}\n";
  EXPECT_THROW(comm::plan_from_json(unknown), Error);
}

TEST(FaultTrace, FiredPlanCapturesOnlyFiredEvents) {
  FaultPlan plan;
  plan.seed = 11;
  plan.events.push_back(FaultEvent::io_fail_write(0, 0));
  plan.events.push_back(FaultEvent::io_fail_write(0, 99));  // never reached
  comm::FaultInjector injector(plan);
  const auto fault = injector.before_io(IoPath::kWrite, 0);
  EXPECT_TRUE(fault.fail);

  const FaultPlan fired = injector.fired_plan();
  EXPECT_EQ(fired.seed, plan.seed);
  ASSERT_EQ(fired.events.size(), 1u);
  EXPECT_EQ(fired.events[0].after_io, 0);
  // The realized schedule is serializable as-is.
  const FaultPlan replay = comm::plan_from_json(comm::plan_to_json(fired));
  ASSERT_EQ(replay.events.size(), 1u);
  EXPECT_EQ(replay.events[0].kind, FaultEvent::Kind::kIoFail);
}

}  // namespace
}  // namespace geofm
