// Parity suite for the kernel engine (tensor/kernels/): the SIMD
// implementations must agree with the scalar oracle across shapes that
// straddle the vector width — odd/tail rows and columns, empty and size-1
// edges, strided sub-views, batched calls — and the dispatch seam must
// honor GEOFM_KERNELS / set_mode().
//
// GEMM cases call the detail:: implementations directly where noted, so
// shapes small enough for the dispatcher's scalar routing still exercise
// the packed SIMD path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/kernels/detail.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace geofm::kernels {
namespace {

std::vector<float> randv(i64 n, Rng& rng, float stddev = 1.f) {
  std::vector<float> out(static_cast<size_t>(n));
  for (float& v : out) v = static_cast<float>(rng.normal(0.0, stddev));
  return out;
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b,
                  float rtol, float atol, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    const float tol = atol + rtol * std::abs(b[i]);
    ASSERT_NEAR(a[i], b[i], tol) << what << " at index " << i;
  }
}

// Shape sweep that straddles the compiled lane count (and both common lane
// counts, so the sweep is meaningful regardless of the build machine).
std::vector<i64> tail_sizes() {
  const i64 lanes = simd_lanes();
  std::vector<i64> s = {1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 100};
  for (i64 v : {lanes - 1, lanes, lanes + 1, 2 * lanes + 1}) {
    if (v >= 1) s.push_back(v);
  }
  return s;
}

// ----- GEMM ------------------------------------------------------------------

// Runs both implementations on identical inputs, contiguous NN layout.
void check_gemm_nn(i64 m, i64 k, i64 n) {
  Rng rng(static_cast<u64>(m * 1000003 + k * 1009 + n));
  const auto a = randv(m * k, rng);
  const auto b = randv(k * n, rng);
  std::vector<float> cs(static_cast<size_t>(m * n), -42.f);
  std::vector<float> cv(static_cast<size_t>(m * n), 42.f);
  detail::scalar_gemm(1, m, k, n, a.data(), 0, k, 1, b.data(), 0, n, 1,
                      cs.data(), 0, n);
  detail::simd_gemm(1, m, k, n, a.data(), 0, k, 1, b.data(), 0, n, 1,
                    cv.data(), 0, n);
  expect_close(cv, cs, 1e-4f, 1e-5f, "gemm_nn");
}

TEST(KernelParity, GemmNNTailShapes) {
  for (i64 m : {i64{1}, i64{2}, i64{7}, i64{13}}) {
    for (i64 k : tail_sizes()) {
      for (i64 n : tail_sizes()) check_gemm_nn(m, k, n);
    }
  }
}

TEST(KernelParity, GemmNNMicrokernelEdges) {
  // Shapes around the MR=6 / NR=2*lanes / KC/MC blocking edges.
  const i64 nr = 2 * simd_lanes();
  for (i64 m : {i64{5}, i64{6}, i64{7}, i64{95}, i64{96}, i64{97}}) {
    for (i64 n : {nr - 1, nr, nr + 1}) {
      check_gemm_nn(m, 64, n);
    }
  }
  check_gemm_nn(13, 191, 40);  // k just under KC
  check_gemm_nn(13, 192, 40);  // k == KC
  check_gemm_nn(13, 193, 40);  // k panel + tail of 1
}

TEST(KernelParity, GemmNTAndTNTailShapes) {
  const i64 lanes = simd_lanes();
  for (i64 m : {i64{3}, i64{9}}) {
    for (i64 k : {i64{1}, lanes - 1, lanes + 1, i64{33}}) {
      for (i64 n : {i64{1}, lanes, 2 * lanes + 1, i64{29}}) {
        Rng rng(static_cast<u64>(m + 31 * k + 977 * n));
        // NT: B stored [n, k]; b(p, j) = B[j*k + p].
        const auto a = randv(m * k, rng);
        const auto bt = randv(n * k, rng);
        std::vector<float> cs(static_cast<size_t>(m * n));
        std::vector<float> cv(static_cast<size_t>(m * n));
        detail::scalar_gemm(1, m, k, n, a.data(), 0, k, 1, bt.data(), 0, 1, k,
                            cs.data(), 0, n);
        detail::simd_gemm(1, m, k, n, a.data(), 0, k, 1, bt.data(), 0, 1, k,
                          cv.data(), 0, n);
        expect_close(cv, cs, 1e-4f, 1e-5f, "gemm_nt");
        // TN: logical A^T with A stored [k, m]; a(i, p) = A[p*m + i].
        const auto at = randv(k * m, rng);
        const auto b = randv(k * n, rng);
        detail::scalar_gemm(1, m, k, n, at.data(), 0, 1, m, b.data(), 0, n, 1,
                            cs.data(), 0, n);
        detail::simd_gemm(1, m, k, n, at.data(), 0, 1, m, b.data(), 0, n, 1,
                          cv.data(), 0, n);
        expect_close(cv, cs, 1e-4f, 1e-5f, "gemm_tn");
      }
    }
  }
}

TEST(KernelParity, GemmStridedSubviewsLeavePaddingUntouched) {
  // A, B, C live inside larger padded matrices (lda/ldb/ldc > logical
  // cols): strides select the sub-view, and C's padding must survive.
  const i64 m = 11, k = 23, n = 19;
  const i64 lda = k + 5, ldb = n + 3, ldc = n + 7;
  Rng rng(99);
  const auto a = randv(m * lda, rng);
  const auto b = randv(k * ldb, rng);
  std::vector<float> cs(static_cast<size_t>(m * ldc), 7.5f);
  std::vector<float> cv(static_cast<size_t>(m * ldc), 7.5f);
  detail::scalar_gemm(1, m, k, n, a.data(), 0, lda, 1, b.data(), 0, ldb, 1,
                      cs.data(), 0, ldc);
  detail::simd_gemm(1, m, k, n, a.data(), 0, lda, 1, b.data(), 0, ldb, 1,
                    cv.data(), 0, ldc);
  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < ldc; ++j) {
      const size_t idx = static_cast<size_t>(i * ldc + j);
      if (j >= n) {
        ASSERT_EQ(cs[idx], 7.5f) << "scalar wrote padding";
        ASSERT_EQ(cv[idx], 7.5f) << "simd wrote padding";
      } else {
        ASSERT_NEAR(cv[idx], cs[idx], 1e-5f + 1e-4f * std::abs(cs[idx]));
      }
    }
  }
}

TEST(KernelParity, GemmBatchedMatchesPerSlice) {
  const i64 batch = 3, m = 9, k = 33, n = 21;
  Rng rng(7);
  const auto a = randv(batch * m * k, rng);
  const auto b = randv(batch * k * n, rng);
  std::vector<float> cb(static_cast<size_t>(batch * m * n));
  std::vector<float> c1(static_cast<size_t>(batch * m * n));
  detail::simd_gemm(batch, m, k, n, a.data(), m * k, k, 1, b.data(), k * n, n,
                    1, cb.data(), m * n, n);
  for (i64 i = 0; i < batch; ++i) {
    detail::simd_gemm(1, m, k, n, a.data() + i * m * k, 0, k, 1,
                      b.data() + i * k * n, 0, n, 1, c1.data() + i * m * n, 0,
                      n);
  }
  // Identical blocking order per slice: bitwise equal.
  EXPECT_EQ(0, std::memcmp(cb.data(), c1.data(),
                           cb.size() * sizeof(float)));
  std::vector<float> cs(static_cast<size_t>(batch * m * n));
  detail::scalar_gemm(batch, m, k, n, a.data(), m * k, k, 1, b.data(), k * n,
                      n, 1, cs.data(), m * n, n);
  expect_close(cb, cs, 1e-4f, 1e-5f, "batched gemm");
}

TEST(KernelParity, GemmEmptyContractionZeroesC) {
  const i64 m = 5, n = 9;
  std::vector<float> cs(static_cast<size_t>(m * n), 3.f);
  std::vector<float> cv(static_cast<size_t>(m * n), 3.f);
  const float dummy = 0.f;
  detail::scalar_gemm(1, m, 0, n, &dummy, 0, 0, 1, &dummy, 0, n, 1, cs.data(),
                      0, n);
  detail::simd_gemm(1, m, 0, n, &dummy, 0, 0, 1, &dummy, 0, n, 1, cv.data(),
                    0, n);
  for (float v : cs) EXPECT_EQ(v, 0.f);
  for (float v : cv) EXPECT_EQ(v, 0.f);
}

TEST(KernelParity, GemmDeterministicAcrossRepeats) {
  const i64 m = 64, k = 96, n = 80;
  Rng rng(3);
  const auto a = randv(m * k, rng);
  const auto b = randv(k * n, rng);
  std::vector<float> c1(static_cast<size_t>(m * n));
  std::vector<float> c2(static_cast<size_t>(m * n));
  detail::simd_gemm(1, m, k, n, a.data(), 0, k, 1, b.data(), 0, n, 1,
                    c1.data(), 0, n);
  detail::simd_gemm(1, m, k, n, a.data(), 0, k, 1, b.data(), 0, n, 1,
                    c2.data(), 0, n);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)));
}

// ----- layernorm -------------------------------------------------------------

TEST(KernelParity, LayernormForwardTailShapes) {
  for (i64 rows : {i64{1}, i64{4}}) {
    for (i64 cols : tail_sizes()) {
      Rng rng(static_cast<u64>(rows * 131 + cols));
      const auto x = randv(rows * cols, rng, 2.f);
      const auto gamma = randv(cols, rng);
      const auto beta = randv(cols, rng);
      std::vector<float> ys(x.size()), yv(x.size());
      std::vector<float> ms(static_cast<size_t>(rows)), rs(ms), mv(ms),
          rv(ms);
      detail::scalar_layernorm_fwd(rows, cols, x.data(), gamma.data(),
                                   beta.data(), 1e-5f, ys.data(), ms.data(),
                                   rs.data());
      detail::simd_layernorm_fwd(rows, cols, x.data(), gamma.data(),
                                 beta.data(), 1e-5f, yv.data(), mv.data(),
                                 rv.data());
      expect_close(mv, ms, 1e-6f, 1e-7f, "ln mean");
      expect_close(rv, rs, 1e-6f, 1e-7f, "ln rstd");
      expect_close(yv, ys, 1e-5f, 1e-6f, "ln y");
    }
  }
}

TEST(KernelParity, LayernormBackwardAccumulatesIntoSeededGrads) {
  const std::vector<i64> col_sweep = {1, 5, simd_lanes(), 67, 256};
  for (i64 cols : col_sweep) {
    const i64 rows = 6;
    Rng rng(static_cast<u64>(cols) + 17);
    const auto x = randv(rows * cols, rng);
    const auto dy = randv(rows * cols, rng);
    const auto gamma = randv(cols, rng);
    const auto beta = randv(cols, rng);
    std::vector<float> y(x.size());
    std::vector<float> mean(static_cast<size_t>(rows)), rstd(mean);
    detail::scalar_layernorm_fwd(rows, cols, x.data(), gamma.data(),
                                 beta.data(), 1e-5f, y.data(), mean.data(),
                                 rstd.data());
    // Both modes start from the same nonzero dgamma/dbeta: the kernel
    // contract is accumulation, not overwrite.
    const auto seed_g = randv(cols, rng);
    const auto seed_b = randv(cols, rng);
    std::vector<float> dxs(x.size()), dxv(x.size());
    std::vector<float> dgs = seed_g, dgv = seed_g;
    std::vector<float> dbs = seed_b, dbv = seed_b;
    detail::scalar_layernorm_bwd(rows, cols, dy.data(), x.data(),
                                 gamma.data(), mean.data(), rstd.data(),
                                 dxs.data(), dgs.data(), dbs.data());
    detail::simd_layernorm_bwd(rows, cols, dy.data(), x.data(), gamma.data(),
                               mean.data(), rstd.data(), dxv.data(),
                               dgv.data(), dbv.data());
    // The SIMD TU compiles with FMA contraction, so dx deviates from the
    // oracle by ~rstd * ulp(dy*gamma); rstd is 1/sqrt(eps) ~ 316 for the
    // zero-variance cols=1 row, hence the wider absolute tolerance.
    expect_close(dxv, dxs, 1e-4f, 1e-4f, "ln dx");
    expect_close(dgv, dgs, 1e-4f, 1e-5f, "ln dgamma");
    expect_close(dbv, dbs, 1e-4f, 1e-5f, "ln dbeta");
  }
}

// ----- softmax ---------------------------------------------------------------

TEST(KernelParity, SoftmaxForwardTailShapesAndRowSums) {
  for (i64 rows : {i64{1}, i64{5}}) {
    for (i64 cols : tail_sizes()) {
      Rng rng(static_cast<u64>(rows * 37 + cols));
      const auto x = randv(rows * cols, rng, 3.f);
      std::vector<float> ys(x.size()), yv(x.size());
      detail::scalar_softmax_fwd(rows, cols, x.data(), ys.data());
      detail::simd_softmax_fwd(rows, cols, x.data(), yv.data());
      expect_close(yv, ys, 1e-5f, 1e-7f, "softmax y");
      for (i64 r = 0; r < rows; ++r) {
        float sum = 0.f;
        for (i64 c = 0; c < cols; ++c) {
          sum += yv[static_cast<size_t>(r * cols + c)];
        }
        EXPECT_NEAR(sum, 1.f, 1e-5f);
      }
    }
  }
}

TEST(KernelParity, SoftmaxForwardExtremeLogitsStayFinite) {
  // Exercises the vectorized exp over its clamp range: one dominant
  // logit, the rest far below (underflow to 0, never NaN/Inf).
  const i64 cols = 2 * simd_lanes() + 3;
  std::vector<float> x(static_cast<size_t>(cols), -120.f);
  x[3] = 95.f;
  std::vector<float> ys(x.size()), yv(x.size());
  detail::scalar_softmax_fwd(1, cols, x.data(), ys.data());
  detail::simd_softmax_fwd(1, cols, x.data(), yv.data());
  for (i64 c = 0; c < cols; ++c) {
    ASSERT_TRUE(std::isfinite(yv[static_cast<size_t>(c)]));
    ASSERT_NEAR(yv[static_cast<size_t>(c)], ys[static_cast<size_t>(c)],
                1e-6f);
  }
  EXPECT_NEAR(yv[3], 1.f, 1e-6f);
}

TEST(KernelParity, SoftmaxBackwardTailShapes) {
  for (i64 cols : tail_sizes()) {
    const i64 rows = 4;
    Rng rng(static_cast<u64>(cols) * 3 + 1);
    const auto x = randv(rows * cols, rng);
    const auto dy = randv(rows * cols, rng);
    std::vector<float> y(x.size());
    detail::scalar_softmax_fwd(rows, cols, x.data(), y.data());
    std::vector<float> dxs(x.size()), dxv(x.size());
    detail::scalar_softmax_bwd(rows, cols, dy.data(), y.data(), dxs.data());
    detail::simd_softmax_bwd(rows, cols, dy.data(), y.data(), dxv.data());
    expect_close(dxv, dxs, 1e-5f, 1e-6f, "softmax dx");
  }
}

// ----- AdamW -----------------------------------------------------------------

TEST(KernelParity, AdamWMultiStepTrajectoriesAgree) {
  const std::vector<i64> n_sweep = {1, simd_lanes() - 1, simd_lanes(),
                                    3 * simd_lanes() + 5};
  for (i64 n : n_sweep) {
    Rng rng(static_cast<u64>(n) + 5);
    const auto w0 = randv(n, rng);
    std::vector<float> ws = w0, wv = w0;
    std::vector<float> ms(static_cast<size_t>(n), 0.f), mv = ms;
    std::vector<float> vs = ms, vv = ms;
    for (int t = 1; t <= 5; ++t) {
      const auto g = randv(n, rng);
      AdamWConfig cfg;
      cfg.lr = 1e-3;
      cfg.weight_decay = 0.05;
      cfg.bias_c1 = 1.0 - std::pow(cfg.beta1, t);
      cfg.bias_c2 = 1.0 - std::pow(cfg.beta2, t);
      detail::scalar_adamw(n, ws.data(), g.data(), ms.data(), vs.data(), cfg);
      detail::simd_adamw(n, wv.data(), g.data(), mv.data(), vv.data(), cfg);
    }
    expect_close(wv, ws, 1e-5f, 1e-6f, "adamw w");
    expect_close(mv, ms, 1e-5f, 1e-6f, "adamw m");
    expect_close(vv, vs, 1e-5f, 1e-6f, "adamw v");
  }
}

// ----- patchify --------------------------------------------------------------

TEST(KernelParity, PatchifyBitwiseAndRoundTrip) {
  for (i64 patch : {i64{2}, i64{5}, i64{16}}) {
    const i64 b = 2, c = 3, grid = 3;
    const i64 hw = grid * patch;
    Rng rng(static_cast<u64>(patch));
    const auto images = randv(b * c * hw * hw, rng);
    std::vector<float> ps(
        static_cast<size_t>(b * grid * grid * patch * patch * c));
    std::vector<float> pv(ps.size());
    detail::scalar_patchify(b, c, hw, hw, patch, images.data(), ps.data());
    detail::simd_patchify(b, c, hw, hw, patch, images.data(), pv.data());
    ASSERT_EQ(0, std::memcmp(ps.data(), pv.data(),
                             ps.size() * sizeof(float)));
    std::vector<float> back(images.size());
    detail::simd_unpatchify(b, c, grid, patch, pv.data(), back.data());
    ASSERT_EQ(0, std::memcmp(images.data(), back.data(),
                             back.size() * sizeof(float)));
  }
}

TEST(KernelParity, PatchifyNonSquareImage) {
  const i64 b = 1, c = 2, h = 6, w = 10, patch = 2;
  Rng rng(11);
  const auto images = randv(b * c * h * w, rng);
  std::vector<float> ps(static_cast<size_t>(b * c * h * w));
  std::vector<float> pv(ps.size());
  detail::scalar_patchify(b, c, h, w, patch, images.data(), ps.data());
  detail::simd_patchify(b, c, h, w, patch, images.data(), pv.data());
  EXPECT_EQ(0, std::memcmp(ps.data(), pv.data(), ps.size() * sizeof(float)));
}

// ----- dispatch seam ---------------------------------------------------------

TEST(KernelDispatch, ModeGuardRestoresPreviousMode) {
  const Mode before = active_mode();
  {
    ModeGuard guard(Mode::kScalar);
    EXPECT_EQ(active_mode(), Mode::kScalar);
    {
      ModeGuard inner(Mode::kSimd);
      EXPECT_EQ(active_mode(), Mode::kSimd);
    }
    EXPECT_EQ(active_mode(), Mode::kScalar);
  }
  EXPECT_EQ(active_mode(), before);
}

TEST(KernelDispatch, LanesPositiveAndModeNamed) {
  EXPECT_GE(simd_lanes(), 4);
  EXPECT_STREQ(mode_name(Mode::kScalar), "scalar");
  EXPECT_STREQ(mode_name(Mode::kSimd), "simd");
}

TEST(KernelDispatch, PublicGemmAgreesAcrossModes) {
  // Through the public seam (ops::), both modes compute the same matmul
  // within float tolerance — large enough to clear the small-problem
  // scalar routing.
  Rng rng(21);
  Tensor a = Tensor::randn({48, 72}, rng);
  Tensor b = Tensor::randn({72, 56}, rng);
  Tensor c_scalar, c_simd;
  {
    ModeGuard guard(Mode::kScalar);
    c_scalar = ops::matmul(a, b);
  }
  {
    ModeGuard guard(Mode::kSimd);
    c_simd = ops::matmul(a, b);
  }
  EXPECT_TRUE(c_simd.allclose(c_scalar, 1e-4f, 1e-5f));
}

TEST(KernelDispatch, EndToEndBlockForwardBackwardAgreesAcrossModes) {
  // A layernorm -> matmul -> softmax chain plus its backward, run
  // entirely under each mode; the two trajectories must agree within
  // accumulated float tolerance.
  auto run = [](Mode mode) {
    ModeGuard guard(mode);
    Rng rng(4242);
    Tensor x = Tensor::randn({12, 40}, rng);
    Tensor gamma = Tensor::ones({40});
    Tensor beta = Tensor::zeros({40});
    Tensor w = Tensor::randn({40, 24}, rng, 0.1f);
    ops::LayerNormCache cache;
    Tensor h = ops::layernorm(x, gamma, beta, 1e-5f, cache);
    Tensor logits = ops::matmul(h, w);
    Tensor probs = ops::softmax_lastdim(logits);
    // Backward with dProbs = probs (arbitrary but deterministic).
    Tensor dlogits = ops::softmax_backward_lastdim(probs, probs);
    Tensor dh = ops::matmul_nt(dlogits, w);
    Tensor dgamma = Tensor::zeros({40});
    Tensor dbeta = Tensor::zeros({40});
    Tensor dx = ops::layernorm_backward(dh, x, gamma, cache, dgamma, dbeta);
    return std::vector<Tensor>{probs, dx, dgamma, dbeta};
  };
  const auto scalar = run(Mode::kScalar);
  const auto simd = run(Mode::kSimd);
  ASSERT_EQ(scalar.size(), simd.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_TRUE(simd[i].allclose(scalar[i], 1e-3f, 1e-4f)) << "output " << i;
  }
}

}  // namespace
}  // namespace geofm::kernels
