// Cross-module integration tests: full pipelines that chain data ->
// model -> (distributed) training -> checkpoint -> downstream evaluation,
// plus ViT classification under FSDP (the MAE path is covered in
// test_fsdp.cpp).
#include <gtest/gtest.h>

#include <filesystem>

#include "geofm.hpp"
#include "tensor/ops.hpp"

namespace geofm {
namespace {

using comm::Communicator;
using comm::run_ranks;

TEST(Integration, PretrainCheckpointReloadProbe) {
  const std::string path = "/tmp/geofm_integration_ckpt.bin";
  auto cfg = models::mae_for(models::proxy_huge());

  // Pretrain briefly and checkpoint.
  double direct_top1 = 0;
  {
    Rng rng(5);
    models::MAE mae(cfg, rng);
    auto corpus = data::million_aid_pretrain(256, 32);
    train::PretrainConfig pc;
    pc.epochs = 4;
    pc.batch_size = 64;
    pc.base_lr = 3e-3;
    pc.seed = 11;
    auto result = train::pretrain_mae(mae, corpus, pc);
    EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
    train::save_checkpoint(mae, path);

    train::ProbeConfig probe;
    probe.epochs = 10;
    probe.batch_size = 64;
    probe.seed = 3;
    direct_top1 =
        train::linear_probe(mae, data::ucm(32, {.divisor = 7}), probe)
            .final_top1;
  }

  // Reload into a *fresh* model: probing must give identical accuracy.
  {
    Rng rng(999);  // different init; checkpoint must fully determine it
    models::MAE mae(cfg, rng);
    train::load_checkpoint(mae, path);
    train::ProbeConfig probe;
    probe.epochs = 10;
    probe.batch_size = 64;
    probe.seed = 3;
    const double reloaded_top1 =
        train::linear_probe(mae, data::ucm(32, {.divisor = 7}), probe)
            .final_top1;
    EXPECT_NEAR(reloaded_top1, direct_top1, 1e-9);
  }
  std::filesystem::remove(path);
}

TEST(Integration, VitClassifierFsdpMatchesSingleRank) {
  // Supervised ViT classification under FULL_SHARD vs single-rank.
  models::ViTConfig cfg{.name = "t", .width = 16, .depth = 2, .mlp_dim = 32,
                        .heads = 2, .img_size = 16, .patch_size = 8,
                        .in_channels = 3};
  const i64 global_batch = 8;
  Rng data_rng(42);
  Tensor images = Tensor::randn({global_batch, 3, 16, 16}, data_rng, 0.5f);
  std::vector<i64> labels;
  for (i64 i = 0; i < global_batch; ++i) labels.push_back(i % 4);

  auto train_steps = [&](models::ViTEncoder& vit,
                         std::vector<nn::Parameter*> opt_params,
                         parallel::Fsdp* fsdp, const Tensor& batch,
                         const std::vector<i64>& batch_labels) {
    optim::Sgd opt(std::move(opt_params), 0.05);
    for (int s = 0; s < 4; ++s) {
      if (fsdp != nullptr) {
        fsdp->begin_step();
      } else {
        vit.zero_grad();
      }
      Tensor logits = vit.forward(batch);
      auto ce = ops::softmax_cross_entropy(logits, batch_labels);
      vit.backward(ops::softmax_cross_entropy_backward(ce, batch_labels));
      if (fsdp != nullptr) fsdp->end_backward();
      opt.step();
    }
  };

  // Reference.
  std::vector<float> ref;
  {
    Rng rng(7);
    models::ViTEncoder vit(cfg, rng, 4);
    train_steps(vit, vit.parameters(), nullptr, images, labels);
    for (nn::Parameter* p : vit.parameters()) {
      for (i64 i = 0; i < p->numel(); ++i) ref.push_back(p->value[i]);
    }
  }

  // 4-rank FULL_SHARD.
  std::vector<float> sharded;
  std::mutex mu;
  run_ranks(4, [&](Communicator& c) {
    Rng rng(7);
    models::ViTEncoder vit(cfg, rng, 4);
    parallel::FsdpOptions opts;
    opts.strategy = parallel::ShardingStrategy::kFullShard;
    parallel::Fsdp fsdp(vit, c, opts);
    const i64 per = images.numel() / global_batch;
    Tensor mine({2, 3, 16, 16});
    mine.copy_(images.flat_view(c.rank() * 2 * per, 2 * per));
    std::vector<i64> my_labels{labels[static_cast<size_t>(c.rank() * 2)],
                               labels[static_cast<size_t>(c.rank() * 2 + 1)]};
    train_steps(vit, fsdp.optimizer_parameters(), &fsdp, mine, my_labels);
    fsdp.gather_full_parameters();
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      for (nn::Parameter* p : vit.parameters()) {
        for (i64 i = 0; i < p->numel(); ++i) sharded.push_back(p->value[i]);
      }
    }
    c.barrier();
  });

  ASSERT_EQ(ref.size(), sharded.size());
  double max_err = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    max_err = std::max(max_err,
                       static_cast<double>(std::fabs(ref[i] - sharded[i])));
  }
  EXPECT_LT(max_err, 2e-4);
}

TEST(Integration, DataLoaderFeedsPretrainerAcrossEpochBoundaries) {
  // drop_last=false with a non-divisible corpus: the loop must handle the
  // short final batch.
  Rng rng(8);
  models::MAE mae(models::mae_for(models::proxy_base()), rng);
  auto corpus = data::million_aid_pretrain(100, 32);  // 100 % 64 != 0
  train::PretrainConfig pc;
  pc.epochs = 2;
  pc.batch_size = 64;
  pc.seed = 4;
  auto result = train::pretrain_mae(mae, corpus, pc);
  // drop_last in the trainer: 1 batch/epoch.
  EXPECT_EQ(result.step_losses.size(), 2u);
  EXPECT_EQ(result.images_seen, 2 * 64);
}

TEST(Integration, SimulatorAgreesWithFunctionalScheduleCounts) {
  // The simulator's comm-call count for FULL_SHARD must match what the
  // functional FSDP runtime records for the same stage count.
  auto cfg = models::mae_for(models::proxy_base());  // 2 enc + 2 dec stages
  int functional_calls = 0;
  run_ranks(2, [&](Communicator& c) {
    Rng rng(1);
    models::MAE mae(cfg, rng);
    parallel::FsdpOptions opts;
    opts.strategy = parallel::ShardingStrategy::kFullShard;
    parallel::Fsdp fsdp(mae, c, opts);
    Tensor batch = Tensor::randn({2, 3, 32, 32}, rng);
    fsdp.begin_step();
    Rng mask_rng(3);
    mae.forward(batch, mask_rng);
    mae.backward();
    fsdp.end_backward();
    if (c.rank() == 0) {
      for (const auto& e : fsdp.last_schedule()) {
        if (e.type != parallel::FsdpEvent::Type::kReshard) {
          ++functional_calls;
        }
      }
    }
    c.barrier();
  });

  sim::ParallelPlan plan;
  plan.fsdp.strategy = parallel::ShardingStrategy::kFullShard;
  sim::TrainingSimulator simr(sim::mae_step_workload(cfg, 2),
                              sim::frontier(), 1, plan);
  // Same schedule, but the simulator's world is 8 ranks vs functional 2 —
  // call *structure* (not cost) is what must agree.
  EXPECT_EQ(simr.simulate_step().comm_calls, functional_calls);
}

TEST(Integration, ScalingAdvisorPicksFeasibleStrategies) {
  // For every Table I variant there must exist at least one strategy that
  // fits in HBM at 64 nodes (the paper trained all of them).
  const auto machine = sim::frontier();
  for (const auto& cfg : models::table1_variants()) {
    const auto workload = sim::vit_step_workload(cfg, 32);
    bool fits = false;
    for (int g : {1, 2, 4, 8, 16, 32}) {
      sim::ParallelPlan p;
      p.fsdp.strategy = parallel::ShardingStrategy::kHybridShard;
      p.fsdp.hybrid_group_size = g;
      sim::TrainingSimulator simr(workload, machine, 64, p);
      fits |= simr.memory_footprint().total() < machine.gpu.hbm_bytes;
    }
    sim::ParallelPlan fs;
    fs.fsdp.strategy = parallel::ShardingStrategy::kFullShard;
    sim::TrainingSimulator simr(workload, machine, 64, fs);
    fits |= simr.memory_footprint().total() < machine.gpu.hbm_bytes;
    EXPECT_TRUE(fits) << cfg.name;
  }
}

}  // namespace
}  // namespace geofm
