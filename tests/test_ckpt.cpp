// Checkpoint/restart subsystem tests. The load-bearing properties:
//
//   * Parity — save at step k, restore into a fresh process, continue:
//     parameters, optimizer moments, and counters must match an
//     uninterrupted run bitwise, for single-rank, DDP, and every FSDP
//     sharding strategy.
//   * Elasticity — a checkpoint written at world size W / strategy S
//     restores at W' != W or S' != S with bitwise-identical parameters
//     (FSDP<->DDP, 4->2->1 ranks and back).
//   * Fault tolerance — a rank killed mid-step leaves the last complete
//     checkpoint intact; resuming reproduces the uninterrupted loss
//     trajectory.
//   * Integrity — corrupted, truncated, or incomplete checkpoints are
//     rejected with the offending tensor named.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/format.hpp"
#include "ckpt/reshard.hpp"
#include "ckpt/state.hpp"
#include "comm/communicator.hpp"
#include "data/datasets.hpp"
#include "models/mae.hpp"
#include "optim/optimizer.hpp"
#include "parallel/ddp.hpp"
#include "parallel/fsdp.hpp"
#include "train/distributed.hpp"

namespace geofm {
namespace {

namespace fs = std::filesystem;
using comm::Communicator;
using comm::run_ranks;
using parallel::Fsdp;
using parallel::FsdpOptions;
using parallel::ShardingStrategy;

models::MaeConfig ckpt_mae_cfg() {
  models::ViTConfig enc{.name = "t", .width = 16, .depth = 3, .mlp_dim = 32,
                        .heads = 2, .img_size = 16, .patch_size = 4,
                        .in_channels = 3};
  return models::mae_for(enc);
}

Tensor make_batch(i64 n, u64 seed) {
  Rng rng(seed);
  return Tensor::randn({n, 3, 16, 16}, rng, 0.5f);
}

Tensor batch_slice(const Tensor& global, i64 begin, i64 count) {
  const i64 per = global.numel() / global.dim(0);
  Tensor out({count, global.dim(1), global.dim(2), global.dim(3)});
  out.copy_(global.flat_view(begin * per, count * per));
  return out;
}

// A clean per-test checkpoint root: gone from disk AND from the
// in-process save coordinator (tests share one process).
std::string fresh_root(const std::string& name) {
  const std::string root = "/tmp/" + name;
  fs::remove_all(root);
  ckpt::reset_save_state(root);
  return root;
}

std::vector<float> flatten_params(nn::Module& m) {
  std::vector<float> out;
  for (nn::Parameter* p : m.parameters()) {
    for (i64 i = 0; i < p->numel(); ++i) out.push_back(p->value[i]);
  }
  return out;
}

std::vector<float> flatten_slots(optim::Optimizer& opt) {
  std::vector<float> out;
  for (const auto& slot : opt.state_view().slots) {
    for (i64 i = 0; i < slot.tensor.numel(); ++i) out.push_back(slot.tensor[i]);
  }
  return out;
}

// Bitwise equality; reports the count and first index of any divergence.
void expect_exact(const std::vector<float>& got,
                  const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  size_t mismatches = 0;
  size_t first = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      if (mismatches == 0) first = i;
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u) << "first divergence at element " << first << ": "
                            << got[first] << " vs " << want[first];
}

void train_steps(models::MAE& mae, optim::AdamW& opt, const Tensor& batch,
                 int first_step, int n_steps) {
  for (int s = first_step; s < first_step + n_steps; ++s) {
    Rng mask_rng(static_cast<u64>(9000 + s));
    opt.zero_grad();
    mae.forward(batch, mask_rng, /*sample_offset=*/0);
    mae.backward();
    opt.step();
  }
}

// One FSDP training run with optional restore-at-entry and save-after-a-
// step, returning rank 0's gathered full parameters. The recipe matches
// test_fsdp.cpp's so runs are comparable across world sizes/strategies.
std::vector<float> run_fsdp_ckpt(int n_ranks, const FsdpOptions& opts,
                                 i64 global_batch, int train_from,
                                 int train_to,
                                 const std::string& restore_from,
                                 const std::string& save_dir,
                                 int save_after_step, bool async_save) {
  GEOFM_CHECK(global_batch % n_ranks == 0);
  const i64 local = global_batch / n_ranks;
  std::vector<float> rank0_params;
  std::mutex mu;

  run_ranks(n_ranks, [&](Communicator& c) {
    Rng rng(42);
    models::MAE mae(ckpt_mae_cfg(), rng);
    Fsdp fsdp(mae, c, opts);
    optim::AdamW opt(fsdp.optimizer_parameters(), 1e-3, 0.9, 0.95, 1e-8,
                     0.01);
    if (!restore_from.empty()) {
      ckpt::CheckpointReader reader(restore_from);
      fsdp.drop_full_parameters();
      reader.restore(ckpt::fsdp_state(fsdp, &opt));
      ckpt::restore_optimizer_scalars(reader, opt);
    }
    Tensor global = make_batch(global_batch, 777);
    Tensor mine = batch_slice(global, c.rank() * local, local);

    for (int s = train_from; s < train_to; ++s) {
      Rng mask_rng(static_cast<u64>(9000 + s));
      fsdp.begin_step();
      mae.forward(mine, mask_rng, c.rank() * local);
      mae.backward();
      fsdp.end_backward();
      opt.step();
      if (s == save_after_step) {
        ckpt::Checkpointer saver(async_save);
        ckpt::SaveRequest req;
        req.dir = save_dir;
        req.step = s;
        req.rank = c.rank();
        req.world = n_ranks;
        req.state = ckpt::fsdp_state(fsdp, &opt);
        req.counters = {{"step", s}};
        for (const auto& [name, value] : ckpt::optimizer_scalars(opt)) {
          req.counters[name] = value;
        }
        saver.save(req);
        saver.wait_idle();
      }
    }

    fsdp.gather_full_parameters();
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      rank0_params = flatten_params(mae.module());
    }
    c.barrier();
  });
  return rank0_params;
}

// ----- reshard planning -------------------------------------------------------

TEST(PlanReads, SingleExactRange) {
  const auto plan = ckpt::plan_reads({{0, 10}}, 0, 10);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], (ckpt::RangeCopy{0, 0, 0, 10}));
}

TEST(PlanReads, AssemblesWindowAcrossShards) {
  // Two ranks stored [0,10) and [10,20); a resized world wants [5,15).
  const auto plan = ckpt::plan_reads({{0, 10}, {10, 10}}, 5, 10);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0], (ckpt::RangeCopy{0, 5, 0, 5}));
  EXPECT_EQ(plan[1], (ckpt::RangeCopy{1, 0, 5, 5}));
}

TEST(PlanReads, MisalignedStoredPiecesCoverMiddleWindow) {
  const auto plan = ckpt::plan_reads({{0, 7}, {7, 5}, {12, 8}}, 5, 10);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], (ckpt::RangeCopy{0, 5, 0, 2}));
  EXPECT_EQ(plan[1], (ckpt::RangeCopy{1, 0, 2, 5}));
  EXPECT_EQ(plan[2], (ckpt::RangeCopy{2, 0, 7, 3}));
}

TEST(PlanReads, OverlappingRangesPickFurthestExtending) {
  // Hybrid-shard replicas overlap; the longer cover wins in one copy.
  const auto plan = ckpt::plan_reads({{0, 4}, {0, 10}}, 0, 10);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].source, 1u);
  EXPECT_EQ(plan[0].len, 10);
}

TEST(PlanReads, GapIsRejectedWithLocation) {
  try {
    ckpt::plan_reads({{0, 4}, {6, 4}}, 0, 10);
    FAIL() << "gap not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("gap at element 4"),
              std::string::npos)
        << e.what();
  }
}

TEST(PlanReads, EmptyRequestNeedsNoCopies) {
  EXPECT_TRUE(ckpt::plan_reads({{0, 10}}, 3, 0).empty());
}

// ----- shard file format ------------------------------------------------------

TEST(ShardFormat, RoundTripPreservesEverything) {
  const std::string path = "/tmp/geofm_test_shard_roundtrip.bin";
  const std::vector<float> w = {1, 2, 3, 4, 5, 6};
  const std::vector<float> b = {7.5f, -8};

  ckpt::format::ShardData shard;
  shard.rank = 1;
  shard.world = 3;
  shard.counters = {{"step", 41}, {"optim.step", 42}};
  shard.rng_streams = {{"mask_stream", 0xdeadbeefcafe1234ULL}};
  shard.records.push_back({"enc.w", {2, 3}, 0, 6, w.data()});
  shard.records.push_back({"enc.b", {4}, 2, 2, b.data()});
  ckpt::format::write_shard_file(path, shard);

  const auto header = ckpt::format::read_shard_header(path);
  EXPECT_EQ(header.rank, 1);
  EXPECT_EQ(header.world, 3);
  EXPECT_EQ(header.counters.at("step"), 41);
  EXPECT_EQ(header.counters.at("optim.step"), 42);
  EXPECT_EQ(header.rng_streams.at("mask_stream"), 0xdeadbeefcafe1234ULL);
  ASSERT_EQ(header.records.size(), 2u);

  EXPECT_EQ(header.records[0].name, "enc.w");
  EXPECT_EQ(header.records[0].shape, (std::vector<i64>{2, 3}));
  EXPECT_EQ(header.records[0].begin, 0);
  EXPECT_EQ(header.records[0].len, 6);
  EXPECT_EQ(ckpt::format::read_shard_record(path, header.records[0]), w);

  EXPECT_EQ(header.records[1].name, "enc.b");
  EXPECT_EQ(header.records[1].begin, 2);
  EXPECT_EQ(ckpt::format::read_shard_record(path, header.records[1]), b);
  fs::remove(path);
}

TEST(ShardFormat, CorruptedPayloadFailsChecksum) {
  const std::string path = "/tmp/geofm_test_shard_corrupt.bin";
  const std::vector<float> w = {1, 2, 3, 4};
  ckpt::format::ShardData shard;
  shard.records.push_back({"w", {4}, 0, 4, w.data()});
  ckpt::format::write_shard_file(path, shard);

  const auto header = ckpt::format::read_shard_header(path);
  ASSERT_EQ(header.records.size(), 1u);
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(header.records[0].data_offset) + 1,
               SEEK_SET);
    const char flip = 0x5a;
    std::fwrite(&flip, 1, 1, f);
    std::fclose(f);
  }
  try {
    ckpt::format::read_shard_record(path, header.records[0]);
    FAIL() << "corruption not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
  fs::remove(path);
}

TEST(ShardFormat, TruncatedFileRejected) {
  const std::string path = "/tmp/geofm_test_shard_trunc.bin";
  const std::vector<float> w(64, 1.f);
  ckpt::format::ShardData shard;
  shard.records.push_back({"w", {64}, 0, 64, w.data()});
  ckpt::format::write_shard_file(path, shard);

  // Cut into the payload: the header parses but the record read fails.
  const auto header = ckpt::format::read_shard_header(path);
  fs::resize_file(path, header.records[0].data_offset + 8);
  EXPECT_THROW(ckpt::format::read_shard_record(path, header.records[0]),
               Error);

  // Cut into the header: rejected at open.
  fs::resize_file(path, 12);
  EXPECT_THROW(ckpt::format::read_shard_header(path), Error);
  fs::remove(path);
}

TEST(RngState, SaveRestoreContinuesExactSequence) {
  Rng a(123);
  a.next_u64();
  a.next_u64();
  Rng b(7);
  b.set_state(a.state());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

// ----- parity: save / restore / continue == uninterrupted --------------------

TEST(CheckpointParity, SingleRankBitwise) {
  const std::string path = "/tmp/geofm_test_ckpt_single.bin";
  fs::remove(path);
  Tensor batch = make_batch(8, 777);
  const auto cfg = ckpt_mae_cfg();

  // Uninterrupted: 5 steps straight through.
  Rng rng_ref(42);
  models::MAE ref(cfg, rng_ref);
  optim::AdamW ref_opt(ref.parameters(), 1e-3, 0.9, 0.95, 1e-8, 0.01);
  train_steps(ref, ref_opt, batch, 0, 5);

  // Interrupted: 3 steps, save everything, stop.
  Rng rng_a(42);
  models::MAE a(cfg, rng_a);
  optim::AdamW a_opt(a.parameters(), 1e-3, 0.9, 0.95, 1e-8, 0.01);
  train_steps(a, a_opt, batch, 0, 3);
  auto counters = ckpt::optimizer_scalars(a_opt);
  counters["step"] = 2;
  ckpt::save_file(path, ckpt::replicated_state(a, &a_opt, 0, 1, true),
                  counters);

  // Fresh process: different init, restore, continue 2 more steps.
  Rng rng_b(31337);
  models::MAE b(cfg, rng_b);
  optim::AdamW b_opt(b.parameters(), 1e-3, 0.9, 0.95, 1e-8, 0.01);
  ckpt::CheckpointReader reader(path);
  EXPECT_EQ(reader.saved_world(), 1);
  EXPECT_EQ(reader.counter("step", -1), 2);
  reader.restore(ckpt::replicated_state(b, &b_opt, 0, 1, false));
  ckpt::restore_optimizer_scalars(reader, b_opt);

  // Parameters AND optimizer moments restored bitwise...
  expect_exact(flatten_params(b), flatten_params(a));
  expect_exact(flatten_slots(b_opt), flatten_slots(a_opt));
  // ...and the continued trajectory is indistinguishable.
  train_steps(b, b_opt, batch, 3, 2);
  expect_exact(flatten_params(b), flatten_params(ref));
  expect_exact(flatten_slots(b_opt), flatten_slots(ref_opt));
  fs::remove(path);
}

struct CkptStrategyCase {
  ShardingStrategy strategy;
  int hybrid_group;
  bool async_save;
  const char* label;
};

class FsdpCheckpointParity
    : public ::testing::TestWithParam<CkptStrategyCase> {};

INSTANTIATE_TEST_SUITE_P(
    Strategies, FsdpCheckpointParity,
    ::testing::Values(
        CkptStrategyCase{ShardingStrategy::kNoShard, 1, false, "no_shard"},
        CkptStrategyCase{ShardingStrategy::kFullShard, 1, true, "full_shard"},
        CkptStrategyCase{ShardingStrategy::kShardGradOp, 1, false,
                         "shard_grad_op"},
        CkptStrategyCase{ShardingStrategy::kHybridShard, 2, true, "hybrid_2"}),
    [](const auto& info) { return info.param.label; });

TEST_P(FsdpCheckpointParity, SaveRestoreContinueBitwise) {
  const auto& p = GetParam();
  FsdpOptions opts;
  opts.strategy = p.strategy;
  opts.hybrid_group_size = p.hybrid_group;
  const std::string root =
      fresh_root(std::string("geofm_test_ckpt_") + p.label);

  const auto ref = run_fsdp_ckpt(4, opts, 8, 0, 5, "", "", -1, false);
  run_fsdp_ckpt(4, opts, 8, 0, 3, "", root, 2, p.async_save);
  EXPECT_EQ(ckpt::latest_step(root), 2);
  const auto resumed = run_fsdp_ckpt(4, opts, 8, 3, 5, root, "", -1, false);
  expect_exact(resumed, ref);
  fs::remove_all(root);
}

TEST(CheckpointParity, DdpSaveRestoresIntoFsdpAndPlainModule) {
  const std::string root = fresh_root("geofm_test_ckpt_ddp");
  const auto cfg = ckpt_mae_cfg();
  std::vector<float> ddp_params;
  std::vector<float> ddp_moments;
  std::mutex mu;

  // DDP at 2 ranks: memory is replicated but each rank writes only its
  // half-split of every tensor, so the directory checkpoint is sharded.
  run_ranks(2, [&](Communicator& c) {
    Rng rng(42);
    models::MAE mae(cfg, rng);
    parallel::Ddp ddp(mae, c);
    optim::AdamW opt(mae.parameters(), 1e-3, 0.9, 0.95, 1e-8, 0.01);
    Tensor global = make_batch(8, 777);
    Tensor mine = batch_slice(global, c.rank() * 4, 4);
    for (int s = 0; s < 3; ++s) {
      Rng mask_rng(static_cast<u64>(9000 + s));
      opt.zero_grad();
      mae.forward(mine, mask_rng, c.rank() * 4);
      mae.backward();
      ddp.synchronize_gradients();
      opt.step();
    }
    ckpt::Checkpointer saver(/*async=*/true);
    ckpt::SaveRequest req;
    req.dir = root;
    req.step = 2;
    req.rank = c.rank();
    req.world = 2;
    req.state = ckpt::replicated_state(mae.module(), &opt, c.rank(), 2, true);
    req.counters = {{"step", 2}};
    for (const auto& [name, value] : ckpt::optimizer_scalars(opt)) {
      req.counters[name] = value;
    }
    saver.save(req);
    saver.wait_idle();
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      ddp_params = flatten_params(mae.module());
      ddp_moments = flatten_slots(opt);
    }
    c.barrier();
  });
  ASSERT_EQ(ckpt::latest_step(root), 2);

  // DDP -> FSDP FULL_SHARD at world 4: restore-only, gather, compare.
  FsdpOptions full;
  full.strategy = ShardingStrategy::kFullShard;
  const auto fsdp_got = run_fsdp_ckpt(4, full, 8, 3, 3, root, "", -1, false);
  expect_exact(fsdp_got, ddp_params);

  // DDP -> plain single-process module (and its optimizer moments).
  Rng rng(5);
  models::MAE solo(cfg, rng);
  optim::AdamW solo_opt(solo.parameters(), 1e-3, 0.9, 0.95, 1e-8, 0.01);
  ckpt::CheckpointReader reader(root);
  EXPECT_EQ(reader.saved_world(), 2);
  reader.restore(ckpt::replicated_state(solo, &solo_opt, 0, 1, false));
  ckpt::restore_optimizer_scalars(reader, solo_opt);
  expect_exact(flatten_params(solo), ddp_params);
  expect_exact(flatten_slots(solo_opt), ddp_moments);
  fs::remove_all(root);
}

// ----- elasticity: reshard across world sizes --------------------------------

TEST(ElasticReshard, FullShardWorldRoundTripsBitwise) {
  FsdpOptions full;
  full.strategy = ShardingStrategy::kFullShard;

  // Written at world 4 (after 3 training steps), restored at 2 and 1.
  const std::string w4 = fresh_root("geofm_test_reshard_w4");
  const auto ref4 = run_fsdp_ckpt(4, full, 8, 0, 3, "", w4, 2, true);
  expect_exact(run_fsdp_ckpt(2, full, 8, 3, 3, w4, "", -1, false), ref4);
  expect_exact(run_fsdp_ckpt(1, full, 8, 3, 3, w4, "", -1, false), ref4);

  // And the reverse: written at world 1, restored at 4.
  const std::string w1 = fresh_root("geofm_test_reshard_w1");
  const auto ref1 = run_fsdp_ckpt(1, full, 8, 0, 3, "", w1, 2, false);
  expect_exact(run_fsdp_ckpt(4, full, 8, 3, 3, w1, "", -1, false), ref1);
}

// ----- integrity: rejection of damaged checkpoints ---------------------------

// A two-rank directory checkpoint of one 8-element tensor "w", built
// without threads (the save coordinator only needs both arrivals).
std::string build_two_shard_checkpoint(const std::string& name,
                                       const std::vector<float>& values) {
  const std::string root = fresh_root(name);
  GEOFM_CHECK(values.size() == 8);
  Tensor t = Tensor::zeros({static_cast<i64>(values.size())});
  for (size_t i = 0; i < values.size(); ++i) t.data()[i] = values[i];
  for (int rank = 0; rank < 2; ++rank) {
    ckpt::SaveRequest req;
    req.dir = root;
    req.step = 0;
    req.rank = rank;
    req.world = 2;
    ckpt::TensorSlice slice;
    slice.name = "w";
    slice.shape = {4, 2};
    slice.begin = rank * 4;
    slice.data = t.flat_view(rank * 4, 4);
    req.state.slices.push_back(slice);
    ckpt::Checkpointer saver(/*async=*/false);
    saver.save(req);
  }
  return root;
}

ckpt::StateDesc full_tensor_desc(const std::string& name,
                                 std::vector<i64> shape, Tensor& out) {
  ckpt::StateDesc desc;
  ckpt::TensorSlice slice;
  slice.name = name;
  slice.shape = std::move(shape);
  slice.begin = 0;
  slice.data = out;
  desc.slices.push_back(slice);
  return desc;
}

TEST(CheckpointIntegrity, DirectoryRoundTripAssemblesShards) {
  const std::vector<float> values = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::string root =
      build_two_shard_checkpoint("geofm_test_ckpt_dir_ok", values);
  Tensor out = Tensor::zeros({8});
  ckpt::CheckpointReader reader(root);
  reader.restore(full_tensor_desc("w", {4, 2}, out));
  for (i64 i = 0; i < 8; ++i) EXPECT_EQ(out[i], values[i]);
  fs::remove_all(root);
}

TEST(CheckpointIntegrity, CorruptedShardRejected) {
  const std::string root = build_two_shard_checkpoint(
      "geofm_test_ckpt_dir_corrupt", {0, 1, 2, 3, 4, 5, 6, 7});
  const std::string shard1 = ckpt::resolve_checkpoint(root) + "/" +
                             ckpt::format::shard_file_name(1);
  const auto header = ckpt::format::read_shard_header(shard1);
  ASSERT_EQ(header.records.size(), 1u);
  {
    std::FILE* f = std::fopen(shard1.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(header.records[0].data_offset), SEEK_SET);
    const char flip = 0x13;
    std::fwrite(&flip, 1, 1, f);
    std::fclose(f);
  }
  Tensor out = Tensor::zeros({8});
  ckpt::CheckpointReader reader(root);
  try {
    reader.restore(full_tensor_desc("w", {4, 2}, out));
    FAIL() << "corruption not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
  fs::remove_all(root);
}

TEST(CheckpointIntegrity, TruncatedShardRejected) {
  const std::string root = build_two_shard_checkpoint(
      "geofm_test_ckpt_dir_trunc", {0, 1, 2, 3, 4, 5, 6, 7});
  fs::resize_file(ckpt::resolve_checkpoint(root) + "/" +
                      ckpt::format::shard_file_name(0),
                  10);
  EXPECT_THROW(ckpt::CheckpointReader reader(root), Error);
  fs::remove_all(root);
}

TEST(CheckpointIntegrity, MissingAndMismatchedTensorsNamed) {
  const std::string root = build_two_shard_checkpoint(
      "geofm_test_ckpt_dir_meta", {0, 1, 2, 3, 4, 5, 6, 7});
  ckpt::CheckpointReader reader(root);

  Tensor out = Tensor::zeros({8});
  try {
    reader.restore(full_tensor_desc("nope", {4, 2}, out));
    FAIL() << "missing tensor not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos)
        << e.what();
  }
  try {
    // Same element count, different shape — must be rejected by name.
    reader.restore(full_tensor_desc("w", {2, 4}, out));
    FAIL() << "shape mismatch not detected";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shape mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("w"), std::string::npos) << what;
  }
  fs::remove_all(root);
}

TEST(CheckpointIntegrity, IncompleteStepDirectoryIgnored) {
  const std::string root = fresh_root("geofm_test_ckpt_incomplete");
  EXPECT_EQ(ckpt::latest_step(root), -1);
  EXPECT_THROW(ckpt::resolve_checkpoint(root), Error);
  // A step directory without a manifest (crash before publish) is not a
  // checkpoint.
  fs::create_directories(root + "/" + ckpt::format::step_dir_name(4));
  EXPECT_EQ(ckpt::latest_step(root), -1);
  EXPECT_THROW(ckpt::resolve_checkpoint(root), Error);
  fs::remove_all(root);
}

TEST(Checkpointer, AsyncWriteFailureSurfacesOnWaitIdle) {
  // A regular file where the checkpoint root should be: the background
  // writer cannot create the step directory, and the failure must reach
  // the training thread instead of vanishing.
  const std::string root = "/tmp/geofm_test_ckpt_notdir";
  fs::remove_all(root);
  {
    std::FILE* f = std::fopen(root.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  const std::vector<float> w = {1, 2};
  Tensor t = Tensor::zeros({2});
  t.data()[0] = w[0];
  t.data()[1] = w[1];
  ckpt::SaveRequest req;
  req.dir = root;
  req.step = 0;
  req.rank = 0;
  req.world = 1;
  ckpt::TensorSlice slice;
  slice.name = "w";
  slice.shape = {2};
  slice.begin = 0;
  slice.data = t;
  req.state.slices.push_back(slice);

  ckpt::Checkpointer saver(/*async=*/true);
  saver.save(req);
  EXPECT_THROW(saver.wait_idle(), std::exception);
  fs::remove_all(root);
}

// ----- bounded retention -----------------------------------------------------

ckpt::SaveRequest retention_request(const std::string& root, i64 step,
                                    const ckpt::RetentionPolicy& policy) {
  ckpt::SaveRequest req;
  req.dir = root;
  req.step = step;
  req.rank = 0;
  req.world = 1;
  req.counters = {{"step", step}};
  req.retention = policy;
  ckpt::TensorSlice slice;
  slice.name = "w";
  slice.shape = {2};
  slice.begin = 0;
  slice.data = Tensor::full({2}, static_cast<float>(step));
  req.state.slices.push_back(slice);
  return req;
}

// Published step numbers on disk (sorted), plus a scan for leaked GC temps.
std::vector<i64> published_steps(const std::string& root) {
  std::vector<i64> steps;
  for (const auto& entry : fs::directory_iterator(root)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".gc_"), std::string::npos)
        << "leaked GC temp: " << name;
    if (name.rfind("step_", 0) != 0) continue;
    steps.push_back(std::stoll(name.substr(5)));
  }
  std::sort(steps.begin(), steps.end());
  return steps;
}

TEST(Retention, KeepsLastAndEveryNth) {
  const std::string root = fresh_root("geofm_test_retention_basic");
  ckpt::RetentionPolicy policy;
  policy.keep_last = 2;
  policy.keep_multiple_of = 4;
  ckpt::Checkpointer saver(/*async=*/false);
  for (i64 step = 0; step < 10; ++step) {
    saver.save(retention_request(root, step, policy));
  }
  // Survivors: the 2 newest (8, 9) plus every 4th anchor (0, 4, 8).
  EXPECT_EQ(published_steps(root), (std::vector<i64>{0, 4, 8, 9}));
  EXPECT_EQ(ckpt::latest_step(root), 9);
  // The survivors are real checkpoints, not husks.
  ckpt::CheckpointReader reader(root + "/" + ckpt::format::step_dir_name(4));
  EXPECT_EQ(reader.counter("step", -1), 4);
  fs::remove_all(root);
}

TEST(Retention, DisabledPolicyKeepsEverything) {
  const std::string root = fresh_root("geofm_test_retention_off");
  ckpt::Checkpointer saver(/*async=*/false);
  for (i64 step = 0; step < 5; ++step) {
    saver.save(retention_request(root, step, {}));
  }
  EXPECT_EQ(published_steps(root), (std::vector<i64>{0, 1, 2, 3, 4}));
  fs::remove_all(root);
}

TEST(Retention, ApplyRetentionReportsRemovedSteps) {
  const std::string root = fresh_root("geofm_test_retention_apply");
  ckpt::Checkpointer saver(/*async=*/false);
  for (i64 step = 0; step < 8; ++step) {
    saver.save(retention_request(root, step, {}));
  }
  // An unpublished step directory (no manifest) is not a checkpoint:
  // retention must neither count it against keep_last nor touch it.
  fs::create_directories(root + "/" + ckpt::format::step_dir_name(11));
  ckpt::RetentionPolicy policy;
  policy.keep_last = 1;
  policy.keep_multiple_of = 3;
  const auto removed = ckpt::apply_retention(root, policy);
  EXPECT_EQ(removed, (std::vector<i64>{1, 2, 4, 5}));  // keep 0,3,6 + last 7
  EXPECT_EQ(published_steps(root), (std::vector<i64>{0, 3, 6, 7, 11}));
  EXPECT_EQ(ckpt::latest_step(root), 7);
  fs::remove_all(root);
}

TEST(Retention, AppliedByDistributedDriver) {
  const std::string root = fresh_root("geofm_test_retention_driver");
  auto corpus = data::million_aid_pretrain(32, 16);
  train::DistributedPretrainConfig cfg;
  cfg.steps = 6;
  cfg.global_batch = 4;
  cfg.seed = 11;
  cfg.loader_workers = 0;
  cfg.verbose = false;
  cfg.checkpoint_every_n_steps = 1;
  cfg.checkpoint_dir = root;
  cfg.async_checkpoint = false;
  cfg.checkpoint_keep_last = 2;
  run_ranks(1, [&](Communicator& c) {
    Rng rng(42);
    models::MAE mae(ckpt_mae_cfg(), rng);
    FsdpOptions opts;
    Fsdp fsdp(mae, c, opts);
    train::pretrain_mae_distributed(mae, fsdp, c, corpus, cfg);
  });
  EXPECT_EQ(published_steps(root), (std::vector<i64>{4, 5}));
  // ...and what retention left behind is still a valid resume source.
  EXPECT_EQ(ckpt::latest_step(root), 5);
  ckpt::CheckpointReader reader(root);
  EXPECT_EQ(reader.counter("step", -1), 5);
  fs::remove_all(root);
}

// ----- fault tolerance: kill mid-run, resume, match --------------------------

TEST(FaultTolerance, MidRunKillResumesOnUninterruptedTrajectory) {
  const std::string root = fresh_root("geofm_test_fault");
  auto corpus = data::million_aid_pretrain(64, 16);

  train::DistributedPretrainConfig base;
  base.steps = 8;
  base.global_batch = 16;
  base.lr = 1e-3;
  base.seed = 5;
  base.loader_workers = 0;
  base.verbose = false;

  auto run2 = [&](const train::DistributedPretrainConfig& cfg) {
    std::vector<float> losses;
    i64 start = -1;
    std::mutex mu;
    run_ranks(2, [&](Communicator& c) {
      Rng rng(42);
      models::MAE mae(ckpt_mae_cfg(), rng);
      FsdpOptions opts;
      opts.strategy = ShardingStrategy::kFullShard;
      Fsdp fsdp(mae, c, opts);
      auto r = train::pretrain_mae_distributed(mae, fsdp, c, corpus, cfg);
      if (c.rank() == 0) {
        std::lock_guard<std::mutex> lk(mu);
        losses = r.step_losses;
        start = r.start_step;
      }
    });
    return std::make_pair(losses, start);
  };

  // The reference trajectory, never interrupted, never checkpointed.
  const auto [ref_losses, ref_start] = run2(base);
  ASSERT_EQ(ref_start, 0);
  ASSERT_EQ(ref_losses.size(), 8u);

  // Kill rank 1 mid-step-5 (after backward, before the optimizer step),
  // through the comm engine's error propagation so the surviving rank's
  // collectives fail instead of hanging. Checkpoints every 3 steps put
  // the last complete one at step 2; rank 0's own step-5 save can never
  // publish without rank 1's shard.
  auto faulted = base;
  faulted.checkpoint_every_n_steps = 3;
  faulted.checkpoint_dir = root;
  faulted.async_checkpoint = true;
  faulted.fault_hook = [](Communicator& c, i64 step) {
    if (step == 5 && c.rank() == 1) {
      c.abort("injected fault");
      throw Error("injected fault at step 5");
    }
  };
  EXPECT_THROW(run2(faulted), Error);
  EXPECT_EQ(ckpt::latest_step(root), 2);

  // Resume from the wreckage: picks up at step 3 and reproduces the
  // uninterrupted losses step for step.
  auto resume = base;
  resume.checkpoint_every_n_steps = 3;
  resume.checkpoint_dir = root;
  resume.resume_from = root;
  const auto [res_losses, res_start] = run2(resume);
  EXPECT_EQ(res_start, 3);
  ASSERT_EQ(res_losses.size(), 5u);
  for (size_t i = 0; i < res_losses.size(); ++i) {
    EXPECT_NEAR(res_losses[i], ref_losses[3 + i], 1e-6)
        << "diverged at step " << 3 + i;
  }
  // The resumed run's own checkpoints published cleanly over the aborted
  // run's leftover temp directory.
  EXPECT_EQ(ckpt::latest_step(root), 5);
  fs::remove_all(root);
}

}  // namespace
}  // namespace geofm
