// Tests for the ASCII chart renderer used by the figure benches.
#include <gtest/gtest.h>

#include <algorithm>

#include "util/chart.hpp"

namespace geofm {
namespace {

AsciiChart::Options small_opts() {
  AsciiChart::Options o;
  o.width = 24;
  o.height = 8;
  return o;
}

TEST(Chart, RendersAllSeriesGlyphsAndLegend) {
  AsciiChart c(small_opts());
  c.add_series("alpha", {1, 2, 3}, {1, 2, 3});
  c.add_series("beta", {1, 2, 3}, {3, 2, 1});
  const std::string out = c.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(Chart, MonotoneSeriesTopRightCorner) {
  AsciiChart c(small_opts());
  c.add_series("up", {0, 10}, {0, 100});
  const std::string out = c.render();
  // The maximum lands on the first plotted row (top), last column.
  const size_t first_line = out.find('|');
  ASSERT_NE(first_line, std::string::npos);
  const size_t eol = out.find('\n', first_line);
  const std::string top = out.substr(first_line + 1, eol - first_line - 1);
  EXPECT_EQ(top.back(), '*');
}

TEST(Chart, LogAxesAcceptOnlyPositive) {
  AsciiChart::Options o = small_opts();
  o.log_x = true;
  o.log_y = true;
  AsciiChart c(o);
  EXPECT_THROW(c.add_series("bad", {0, 1}, {1, 2}), Error);
  EXPECT_THROW(c.add_series("bad", {1, 2}, {-1, 2}), Error);
  c.add_series("ok", {1, 64}, {10, 640});
  EXPECT_NE(c.render().find("ok"), std::string::npos);
}

TEST(Chart, LogLogLinearScalingIsDiagonal) {
  AsciiChart::Options o;
  o.width = 32;
  o.height = 16;
  o.log_x = o.log_y = true;
  AsciiChart c(o);
  std::vector<double> x, y;
  for (int n = 1; n <= 64; n *= 2) {
    x.push_back(n);
    y.push_back(100.0 * n);  // ideal linear scaling
  }
  c.add_series("ideal", x, y);
  const std::string out = c.render();
  // 7 points, all distinct on a log-log diagonal (count the plot area
  // only — the legend repeats the glyph once).
  const std::string plot = out.substr(0, out.find("legend:"));
  EXPECT_EQ(static_cast<int>(std::count(plot.begin(), plot.end(), '*')), 7);
}

TEST(Chart, RejectsDegenerateInput) {
  AsciiChart c(small_opts());
  EXPECT_THROW(c.render(), Error);  // no series
  EXPECT_THROW(c.add_series("mismatch", {1, 2}, {1}), Error);
  AsciiChart::Options tiny;
  tiny.width = 4;
  tiny.height = 1;
  EXPECT_THROW(AsciiChart{tiny}, Error);
}

TEST(Chart, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart c(small_opts());
  c.add_series("flat", {1, 2, 3}, {5, 5, 5});
  EXPECT_NO_THROW(c.render());
}

}  // namespace
}  // namespace geofm
