// Finite-difference gradient checking harness shared by the nn tests.
//
// Strategy: fix a random weighting tensor w and define the scalar loss
// L = sum(w ⊙ f(x)). The analytic backward pass is seeded with dy = w; the
// numeric gradient of any scalar parameter or input element is estimated
// by central differences. fp32 forward passes limit achievable agreement,
// so tolerances are loose-ish but tight enough to catch any structural
// mistake in a backward formula.
#pragma once

#include <gtest/gtest.h>

#include <functional>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace geofm::testing {

struct GradCheckResult {
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
};

/// Compares the analytic gradient tensor `analytic` for the leaf `leaf`
/// against central differences of `loss_fn` (which must re-run the full
/// forward pass each call). Checks `n_probe` randomly chosen elements.
inline GradCheckResult check_leaf_gradient(
    Tensor& leaf, const Tensor& analytic,
    const std::function<double()>& loss_fn, Rng& rng, int n_probe = 24,
    double eps = 1e-3) {
  GradCheckResult res;
  const i64 n = leaf.numel();
  const int probes = static_cast<int>(std::min<i64>(n_probe, n));
  for (int p = 0; p < probes; ++p) {
    const i64 i = (n <= n_probe) ? p : rng.uniform_int(n);
    const float saved = leaf[i];
    leaf[i] = saved + static_cast<float>(eps);
    const double lp = loss_fn();
    leaf[i] = saved - static_cast<float>(eps);
    const double lm = loss_fn();
    leaf[i] = saved;
    const double numeric = (lp - lm) / (2.0 * eps);
    const double exact = analytic[i];
    const double abs_err = std::abs(numeric - exact);
    const double denom = std::max({std::abs(numeric), std::abs(exact), 1.0});
    res.max_abs_err = std::max(res.max_abs_err, abs_err);
    res.max_rel_err = std::max(res.max_rel_err, abs_err / denom);
  }
  return res;
}

/// Full module gradcheck: runs forward/backward once with dy = w, then
/// probes the input and every parameter.
///
/// `forward` must be re-runnable (pure given current parameter values).
inline void expect_gradients_match(
    nn::Module& module, Tensor& x,
    const std::function<Tensor()>& forward,
    const std::function<Tensor(const Tensor&)>& backward, u64 seed = 1234,
    double tol = 2e-2) {
  Rng rng(seed);
  Tensor y0 = forward();
  Tensor w = Tensor::randn(y0.shape(), rng);
  auto loss_fn = [&]() -> double {
    Tensor y = forward();
    double acc = 0.0;
    for (i64 i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y[i]) * w[i];
    }
    return acc;
  };

  // One analytic pass (forward to refresh caches, then backward with w).
  module.zero_grad();
  (void)forward();
  Tensor dx = backward(w);

  Rng probe_rng(seed ^ 0x9999);
  auto r = check_leaf_gradient(x, dx, loss_fn, probe_rng);
  EXPECT_LT(r.max_rel_err, tol) << "input gradient mismatch (abs "
                                << r.max_abs_err << ")";

  for (nn::Parameter* param : module.parameters()) {
    auto pr =
        check_leaf_gradient(param->value, param->grad, loss_fn, probe_rng);
    EXPECT_LT(pr.max_rel_err, tol)
        << "parameter gradient mismatch for " << param->name << " (abs "
        << pr.max_abs_err << ")";
  }
}

}  // namespace geofm::testing
