// Collective-communication tests across varying rank counts, including
// sub-communicator (split) behaviour that HYBRID_SHARD depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/fault.hpp"
#include "comm/watchdog.hpp"

namespace geofm {
namespace {

using comm::Communicator;
using comm::ReduceOp;
using comm::run_ranks;

class CollectivesAcrossRanks : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesAcrossRanks,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST_P(CollectivesAcrossRanks, AllReduceSum) {
  const int n = GetParam();
  run_ranks(n, [&](Communicator& c) {
    Tensor t = Tensor::full({5}, static_cast<float>(c.rank() + 1));
    c.all_reduce(t, ReduceOp::kSum);
    const float expect = static_cast<float>(n * (n + 1) / 2);
    for (i64 i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(t[i], expect);
  });
}

TEST_P(CollectivesAcrossRanks, AllReduceAvg) {
  const int n = GetParam();
  run_ranks(n, [&](Communicator& c) {
    Tensor t = Tensor::full({3}, static_cast<float>(c.rank()));
    c.all_reduce(t, ReduceOp::kAvg);
    const float expect = static_cast<float>(n - 1) / 2.f;
    for (i64 i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(t[i], expect);
  });
}

TEST_P(CollectivesAcrossRanks, AllReduceMax) {
  const int n = GetParam();
  run_ranks(n, [&](Communicator& c) {
    Tensor t = Tensor::from({static_cast<float>(c.rank()),
                             static_cast<float>(-c.rank())});
    c.all_reduce(t, ReduceOp::kMax);
    EXPECT_FLOAT_EQ(t[0], static_cast<float>(n - 1));
    EXPECT_FLOAT_EQ(t[1], 0.f);
  });
}

TEST_P(CollectivesAcrossRanks, AllGatherPlacesShardsInRankOrder) {
  const int n = GetParam();
  run_ranks(n, [&](Communicator& c) {
    Tensor shard = Tensor::full({4}, static_cast<float>(c.rank() * 10));
    Tensor out({static_cast<i64>(4 * n)});
    c.all_gather(shard, out);
    for (int r = 0; r < n; ++r) {
      for (i64 i = 0; i < 4; ++i) {
        EXPECT_FLOAT_EQ(out[r * 4 + i], static_cast<float>(r * 10));
      }
    }
  });
}

TEST_P(CollectivesAcrossRanks, ReduceScatterSumsOwnChunk) {
  const int n = GetParam();
  run_ranks(n, [&](Communicator& c) {
    // in[r][i] = r + i; chunk k sums to n*(k*chunklen + i) + sum(r).
    Tensor in({static_cast<i64>(2 * n)});
    for (i64 i = 0; i < in.numel(); ++i) {
      in[i] = static_cast<float>(c.rank() + i);
    }
    Tensor shard({2});
    c.reduce_scatter(in, shard, ReduceOp::kSum);
    const float rank_sum = static_cast<float>(n * (n - 1) / 2);
    for (i64 i = 0; i < 2; ++i) {
      const float expect =
          rank_sum + static_cast<float>(n) * (c.rank() * 2 + i);
      EXPECT_FLOAT_EQ(shard[i], expect);
    }
  });
}

TEST_P(CollectivesAcrossRanks, AllGatherThenReduceScatterRoundTrip) {
  const int n = GetParam();
  run_ranks(n, [&](Communicator& c) {
    Tensor shard = Tensor::full({3}, static_cast<float>(c.rank() + 1));
    Tensor full({static_cast<i64>(3 * n)});
    c.all_gather(shard, full);
    Tensor back({3});
    c.reduce_scatter(full, back, ReduceOp::kSum);
    // Every rank contributed the same gathered tensor, so the reduce
    // multiplies each chunk by n; chunk r is rank r's original shard.
    for (i64 i = 0; i < 3; ++i) {
      EXPECT_FLOAT_EQ(back[i], static_cast<float>(n * (c.rank() + 1)));
    }
  });
}

TEST_P(CollectivesAcrossRanks, Broadcast) {
  const int n = GetParam();
  run_ranks(n, [&](Communicator& c) {
    Tensor t = Tensor::full({4}, c.rank() == 0 ? 7.f : -1.f);
    c.broadcast(t, 0);
    for (i64 i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(t[i], 7.f);
  });
}

TEST_P(CollectivesAcrossRanks, BroadcastNonZeroRoot) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  run_ranks(n, [&](Communicator& c) {
    Tensor t = Tensor::full({2}, static_cast<float>(c.rank()));
    c.broadcast(t, n - 1);
    for (i64 i = 0; i < 2; ++i) {
      EXPECT_FLOAT_EQ(t[i], static_cast<float>(n - 1));
    }
  });
}

TEST_P(CollectivesAcrossRanks, ReductionDeterministicAcrossRanks) {
  const int n = GetParam();
  // Awkward floats whose sum depends on order; all ranks must agree bitwise.
  run_ranks(n, [&](Communicator& c) {
    Rng rng(1000 + static_cast<u64>(c.rank()));
    Tensor t = Tensor::randn({64}, rng, 1e3f);
    c.all_reduce(t, ReduceOp::kSum);
    // Gather everyone's result and compare bitwise.
    Tensor all({static_cast<i64>(64 * n)});
    c.all_gather(t, all);
    for (int r = 1; r < n; ++r) {
      for (i64 i = 0; i < 64; ++i) {
        EXPECT_EQ(all[i], all[r * 64 + i]);
      }
    }
  });
}

TEST(Comm, BarrierSeparatesPhases) {
  std::atomic<int> phase1{0};
  run_ranks(4, [&](Communicator& c) {
    phase1.fetch_add(1);
    c.barrier();
    // After the barrier every rank must observe all 4 increments.
    EXPECT_EQ(phase1.load(), 4);
  });
}

TEST(Comm, SequentialCollectivesReuseScratchSafely) {
  run_ranks(3, [&](Communicator& c) {
    for (int iter = 0; iter < 50; ++iter) {
      Tensor t = Tensor::full({8}, static_cast<float>(c.rank() + iter));
      c.all_reduce(t, ReduceOp::kSum);
      const float expect = static_cast<float>(3 * iter + 3);  // 0+1+2 + 3*iter
      EXPECT_FLOAT_EQ(t[0], expect);
    }
  });
}

TEST(Comm, SplitFormsCorrectGroups) {
  // 6 ranks, color = rank % 2 -> two groups of 3 ordered by rank.
  run_ranks(6, [&](Communicator& c) {
    Communicator sub = c.split(c.rank() % 2, c.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // Collective within the subgroup only sums subgroup members.
    Tensor t = Tensor::full({2}, static_cast<float>(c.rank()));
    sub.all_reduce(t, ReduceOp::kSum);
    const float expect = (c.rank() % 2 == 0) ? 0.f + 2.f + 4.f : 1.f + 3.f + 5.f;
    EXPECT_FLOAT_EQ(t[0], expect);
  });
}

TEST(Comm, SplitKeyControlsRankOrder) {
  run_ranks(4, [&](Communicator& c) {
    // Reverse order via descending key.
    Communicator sub = c.split(0, -c.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), 3 - c.rank());
  });
}

TEST(Comm, HierarchicalSplitMirrorsHybridSharding) {
  // 8 ranks = 4 shard groups of 2 (consecutive) x 2 replica groups.
  run_ranks(8, [&](Communicator& c) {
    Communicator shard = c.split(c.rank() / 2, c.rank());
    Communicator replica = c.split(c.rank() % 2, c.rank());
    EXPECT_EQ(shard.size(), 2);
    EXPECT_EQ(replica.size(), 4);

    // reduce_scatter within the shard group, all_reduce across replicas —
    // the exact HYBRID gradient pattern. Everyone contributes ones, so
    // after both phases each rank's chunk is shard_size * replica_size.
    Tensor grad = Tensor::ones({4});
    Tensor chunk({2});
    shard.reduce_scatter(grad, chunk, ReduceOp::kSum);
    replica.all_reduce(chunk, ReduceOp::kSum);
    for (i64 i = 0; i < 2; ++i) EXPECT_FLOAT_EQ(chunk[i], 8.f);
  });
}

TEST(Comm, ConsecutiveSplitsGetDistinctRegistries) {
  run_ranks(4, [&](Communicator& c) {
    Communicator a = c.split(c.rank() / 2, c.rank());
    Communicator b = c.split(c.rank() % 2, c.rank());
    Tensor ta = Tensor::ones({1});
    a.all_reduce(ta, ReduceOp::kSum);
    EXPECT_FLOAT_EQ(ta[0], 2.f);
    Tensor tb = Tensor::ones({1});
    b.all_reduce(tb, ReduceOp::kSum);
    EXPECT_FLOAT_EQ(tb[0], 2.f);
  });
}

TEST(Comm, SingleRankCollectivesAreIdentity) {
  run_ranks(1, [&](Communicator& c) {
    Tensor t = Tensor::from({1.f, 2.f});
    c.all_reduce(t, ReduceOp::kSum);
    EXPECT_FLOAT_EQ(t[0], 1.f);
    Tensor out({2});
    c.all_gather(t, out);
    EXPECT_FLOAT_EQ(out[1], 2.f);
    Tensor shard({2});
    c.reduce_scatter(t, shard, ReduceOp::kSum);
    EXPECT_FLOAT_EQ(shard[0], 1.f);
  });
}

// ----- nonblocking engine ---------------------------------------------------

TEST_P(CollectivesAcrossRanks, NonblockingAllReduceMatchesBlocking) {
  const int n = GetParam();
  run_ranks(n, [&](Communicator& c) {
    Tensor t = Tensor::full({6}, static_cast<float>(c.rank() + 1));
    comm::CollectiveHandle h = c.iall_reduce(t, ReduceOp::kSum);
    EXPECT_TRUE(h.pending());
    h.wait();
    EXPECT_FALSE(h.pending());
    EXPECT_TRUE(h.test());  // empty handle reports complete
    const float expect = static_cast<float>(n * (n + 1) / 2);
    for (i64 i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], expect);
  });
}

TEST(Comm, DefaultHandleIsCompleteAndWaitIsNoop) {
  comm::CollectiveHandle h;
  EXPECT_TRUE(h.test());
  EXPECT_FALSE(h.pending());
  h.wait();  // must not block or throw
}

TEST(Comm, SingleRankNonblockingCompletesInline) {
  run_ranks(1, [&](Communicator& c) {
    Tensor t = Tensor::from({3.f, 4.f});
    comm::CollectiveHandle h = c.iall_reduce(t, ReduceOp::kSum);
    EXPECT_TRUE(h.test());  // no peers to wait for
    h.wait();
    EXPECT_FLOAT_EQ(t[0], 3.f);
  });
}

TEST(Comm, ManyInFlightWaitedInReverseOrder) {
  constexpr int kOps = 32;
  run_ranks(4, [&](Communicator& c) {
    std::vector<Tensor> bufs;
    std::vector<comm::CollectiveHandle> handles;
    bufs.reserve(kOps);
    handles.reserve(kOps);
    for (int k = 0; k < kOps; ++k) {
      bufs.push_back(Tensor::full({8}, static_cast<float>(c.rank() + k)));
      handles.push_back(c.iall_reduce(bufs.back(), ReduceOp::kSum));
    }
    // Drain newest-first: completion order must be independent of wait order.
    for (int k = kOps - 1; k >= 0; --k) {
      handles[static_cast<size_t>(k)].wait();
      const float expect = static_cast<float>(4 * k + 6);  // sum(r) + 4k
      for (i64 i = 0; i < 8; ++i) {
        EXPECT_FLOAT_EQ(bufs[static_cast<size_t>(k)][i], expect);
      }
    }
  });
}

TEST(Comm, MixedKindsInFlightSimultaneously) {
  run_ranks(3, [&](Communicator& c) {
    Tensor red = Tensor::full({4}, static_cast<float>(c.rank()));
    Tensor shard = Tensor::full({2}, static_cast<float>(c.rank() * 10));
    Tensor gathered({6});
    Tensor bcast = Tensor::full({3}, c.rank() == 1 ? 42.f : -1.f);
    auto h1 = c.iall_reduce(red, ReduceOp::kSum);
    auto h2 = c.iall_gather(shard, gathered);
    auto h3 = c.ibroadcast(bcast, 1);
    h3.wait();
    h1.wait();
    h2.wait();
    EXPECT_FLOAT_EQ(red[0], 3.f);
    for (int r = 0; r < 3; ++r) {
      EXPECT_FLOAT_EQ(gathered[r * 2], static_cast<float>(r * 10));
    }
    EXPECT_FLOAT_EQ(bcast[0], 42.f);
  });
}

TEST(Comm, RandomizedStressAcrossSubCommunicators) {
  // Every rank derives the same issue schedule from a shared seed (the MPI
  // matching contract), posts everything nonblocking on a mix of the world
  // communicator and two overlapping sub-communicators, then drains in a
  // rank-private shuffled order.
  constexpr int kWorld = 8;
  constexpr int kOps = 60;
  run_ranks(kWorld, [&](Communicator& world) {
    Communicator evens_odds = world.split(world.rank() % 2, world.rank());
    Communicator pairs = world.split(world.rank() / 2, world.rank());

    struct Issued {
      Tensor buf;
      comm::CollectiveHandle handle;
      float expect;
    };
    std::vector<Issued> ops;
    ops.reserve(kOps);

    Rng schedule(777);  // identical stream on every rank
    for (int k = 0; k < kOps; ++k) {
      Communicator* c = nullptr;
      switch (schedule.uniform_int(3)) {
        case 0: c = &world; break;
        case 1: c = &evens_odds; break;
        default: c = &pairs; break;
      }
      const bool reduce = schedule.uniform_int(2) == 0;
      Issued op{Tensor::full({5}, 1.f), {}, 0.f};
      if (reduce) {
        op.handle = c->iall_reduce(op.buf, ReduceOp::kSum);
        op.expect = static_cast<float>(c->size());
      } else {
        op.handle = c->ibroadcast(op.buf, 0);
        op.expect = 1.f;
      }
      ops.push_back(std::move(op));
    }

    // Per-rank drain order: shuffle indices with a rank-salted stream.
    Rng order(991 + static_cast<u64>(world.rank()));
    std::vector<int> idx(kOps);
    for (int k = 0; k < kOps; ++k) idx[static_cast<size_t>(k)] = k;
    for (int k = kOps - 1; k > 0; --k) {
      std::swap(idx[static_cast<size_t>(k)],
                idx[static_cast<size_t>(order.uniform_int(k + 1))]);
    }
    for (int k : idx) {
      auto& op = ops[static_cast<size_t>(k)];
      op.handle.wait();
      for (i64 i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(op.buf[i], op.expect);
    }
  });
}

TEST(Comm, MismatchedCountsRaiseOnEveryRank) {
  run_ranks(2, [&](Communicator& c) {
    // Ranks disagree on the payload size for the same ticket; both must see
    // the error from wait() instead of deadlocking.
    Tensor t = Tensor::ones({c.rank() == 0 ? 4 : 8});
    EXPECT_THROW(c.all_reduce(t, ReduceOp::kSum), Error);
  });
}

TEST(Comm, MismatchedKindsRaiseOnEveryRank) {
  run_ranks(2, [&](Communicator& c) {
    Tensor t = Tensor::ones({4});
    if (c.rank() == 0) {
      EXPECT_THROW(c.all_reduce(t, ReduceOp::kSum), Error);
    } else {
      Tensor out({8});
      EXPECT_THROW(c.all_gather(t, out), Error);
    }
  });
}

TEST(Comm, WaitStatsCountCompletedBeforeWait) {
  run_ranks(4, [&](Communicator& c) {
    comm::CommStats stats;
    Tensor t = Tensor::ones({16});
    auto h = c.iall_reduce(t, ReduceOp::kSum);
    // After the barrier every rank has posted, so the op has executed and
    // this wait() must be a non-blocking bookkeeping visit.
    c.barrier();
    EXPECT_TRUE(h.test());
    h.wait(&stats);
    EXPECT_EQ(stats.waits, 1);
    EXPECT_EQ(stats.completed_before_wait, 1);
    EXPECT_GE(stats.busy_seconds, 0.0);
    EXPECT_GE(stats.exposed_wait_seconds, 0.0);
    EXPECT_GE(stats.overlapped_seconds(), 0.0);
  });
}

TEST(Comm, RunRanksPropagatesExceptions) {
  EXPECT_THROW(run_ranks(2,
                         [&](Communicator& c) {
                           // Both ranks throw (so nobody blocks in a
                           // collective) — the error must surface.
                           throw Error("rank failure " +
                                       std::to_string(c.rank()));
                         }),
               Error);
}

// ----- abort coverage (barrier gap) + typed errors ---------------------------

TEST(Comm, BarrierObservesAbortInsteadOfDeadlocking) {
  // Rank 1 blocks in a plain barrier; rank 0 never arrives and aborts.
  // Pre-fix this deadlocked forever (the documented barrier() gap).
  std::atomic<int> aborted_count{0};
  run_ranks(2, [&](Communicator& c) {
    if (c.rank() == 1) {
      try {
        c.barrier();
        FAIL() << "barrier completed without both ranks";
      } catch (const comm::Aborted& e) {
        ++aborted_count;
        EXPECT_NE(std::string(e.what()).find("node died"), std::string::npos);
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      c.abort("node died");
      // Post-abort arrivals must throw immediately, not hang.
      EXPECT_THROW(c.barrier(), comm::Aborted);
    }
  });
  EXPECT_EQ(aborted_count.load(), 1);
}

TEST(Comm, AbortedPostsThrowTypedError) {
  run_ranks(2, [&](Communicator& c) {
    if (c.rank() == 0) c.abort("test abort");
    Tensor t = Tensor::ones({4});
    // Both ranks: the group is (or becomes) aborted; every rendezvous
    // surfaces comm::Aborted (which is-a Error, so old catch sites work).
    try {
      for (int i = 0; i < 100; ++i) c.all_reduce(t);
      FAIL() << "collectives on an aborted group must fail";
    } catch (const comm::Aborted&) {
    }
  });
}

TEST(Comm, WaitForTimesOutThenCompletes) {
  run_ranks(2, [&](Communicator& c) {
    Tensor t = Tensor::full({8}, static_cast<float>(c.rank() + 1));
    if (c.rank() == 0) {
      auto h = c.iall_reduce(t);
      // Rank 1 holds back ~200ms, so a 10ms bounded wait must time out
      // and leave the handle pending.
      EXPECT_FALSE(h.wait_for(0.01));
      EXPECT_TRUE(h.pending());
      EXPECT_TRUE(h.wait_for(10.0));
      EXPECT_FALSE(h.pending());
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      c.iall_reduce(t).wait();
    }
    EXPECT_FLOAT_EQ(t[0], 3.0f);
  });
}

// ----- watchdog --------------------------------------------------------------

TEST(Watchdog, DiagnosesStalledRankInCollective) {
  // Rank 2 goes silent past the deadline while 0 and 1 sit in an
  // all_reduce. The watchdog must abort the group naming rank 2, and
  // nobody may deadlock.
  std::atomic<int> aborted_ranks{0};
  std::vector<int> suspects;
  std::string reason;
  std::mutex mu;
  run_ranks(3, [&](Communicator& c) {
    if (c.rank() == 0) {
      comm::WatchdogOptions opts;
      opts.deadline_seconds = 0.3;
      c.start_watchdog(opts);
    }
    c.barrier();  // watchdog armed before anyone posts
    Tensor t = Tensor::ones({16});
    try {
      if (c.rank() == 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1500));
      }
      c.all_reduce(t);
      FAIL() << "rank " << c.rank() << " completed despite the stall";
    } catch (const comm::Aborted&) {
      ++aborted_ranks;
      std::lock_guard<std::mutex> lk(mu);
      if (suspects.empty()) {
        suspects = c.abort_suspects();
        reason = c.abort_reason();
      }
    }
  });
  EXPECT_EQ(aborted_ranks.load(), 3);
  ASSERT_EQ(suspects, (std::vector<int>{2}));
  EXPECT_NE(reason.find("rank 2 stalled in all_reduce"), std::string::npos);
  EXPECT_NE(reason.find("ticket"), std::string::npos);
}

TEST(Watchdog, DiagnosesStalledRankInBarrier) {
  std::atomic<int> aborted_ranks{0};
  std::string reason;
  std::mutex mu;
  run_ranks(3, [&](Communicator& c) {
    if (c.rank() == 0) {
      comm::WatchdogOptions opts;
      opts.deadline_seconds = 0.3;
      c.start_watchdog(opts);
    }
    try {
      if (c.rank() == 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1500));
      }
      c.barrier();
      FAIL() << "barrier completed despite the stall";
    } catch (const comm::Aborted&) {
      ++aborted_ranks;
      std::lock_guard<std::mutex> lk(mu);
      if (reason.empty()) reason = c.abort_reason();
    }
  });
  EXPECT_EQ(aborted_ranks.load(), 3);
  EXPECT_NE(reason.find("stalled in barrier"), std::string::npos);
  EXPECT_NE(reason.find("rank 2"), std::string::npos);
}

TEST(Watchdog, StaysQuietOnHealthyTraffic) {
  // Staggered-but-healthy ranks (skew well under the deadline) must run a
  // long collective sequence without a false-positive abort.
  run_ranks(3, [&](Communicator& c) {
    if (c.rank() == 0) {
      comm::WatchdogOptions opts;
      opts.deadline_seconds = 0.5;
      c.start_watchdog(opts);
    }
    c.barrier();
    Tensor t = Tensor::ones({8});
    for (int i = 0; i < 40; ++i) {
      if (i % 7 == c.rank()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      c.all_reduce(t, ReduceOp::kAvg);
    }
    EXPECT_FALSE(c.aborted());
  });
}

TEST(Watchdog, ScanCoversSubcommunicators) {
  // The stall happens inside a split() subgroup; the root watchdog scan
  // must still see it and name the world rank.
  std::atomic<int> aborted_ranks{0};
  std::string reason;
  std::mutex mu;
  run_ranks(4, [&](Communicator& c) {
    if (c.rank() == 0) {
      comm::WatchdogOptions opts;
      opts.deadline_seconds = 0.3;
      c.start_watchdog(opts);
    }
    Communicator half = c.split(c.rank() / 2, c.rank());
    Tensor t = Tensor::ones({4});
    try {
      if (c.rank() == 3) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1500));
      }
      half.all_reduce(t);
      // The healthy pair (ranks 0,1) completes its subgroup collective;
      // it must then observe the abort on the next root rendezvous.
      c.barrier();
      FAIL() << "rank " << c.rank() << " never observed the abort";
    } catch (const comm::Aborted&) {
      ++aborted_ranks;
      std::lock_guard<std::mutex> lk(mu);
      if (reason.empty()) reason = c.abort_reason();
    }
  });
  EXPECT_EQ(aborted_ranks.load(), 4);
  EXPECT_NE(reason.find("rank 3"), std::string::npos);
}

// ----- fault injection -------------------------------------------------------

TEST(Fault, KillAtPostUnwindsRankAndAbortsPeers) {
  std::atomic<int> killed{0};
  std::atomic<int> aborted{0};
  std::atomic<int> completed_posts{0};
  run_ranks(3, [&](Communicator& c) {
    auto injector = std::make_shared<comm::FaultInjector>(comm::FaultPlan{
        0, {comm::FaultEvent::kill_at_post(1, 2)}});
    if (c.rank() == 0) c.install_fault_injector(injector);
    c.barrier();
    Tensor t = Tensor::ones({4});
    try {
      for (int i = 0; i < 10; ++i) {
        c.all_reduce(t);
        if (c.rank() == 1) ++completed_posts;
      }
      FAIL() << "rank " << c.rank() << " survived the kill plan";
    } catch (const comm::RankKilled& e) {
      EXPECT_EQ(e.global_rank(), 1);
      EXPECT_EQ(c.rank(), 1);
      ++killed;
    } catch (const comm::Aborted&) {
      ++aborted;
    }
  });
  EXPECT_EQ(killed.load(), 1);
  EXPECT_EQ(aborted.load(), 2);
  // The kill triggers on rank 1's third post (after_posts == 2): exactly
  // two collectives completed before it.
  EXPECT_EQ(completed_posts.load(), 2);
}

TEST(Fault, CorruptionIsDeterministicAcrossRuns) {
  auto run_once = [&](bool corrupt) {
    std::vector<float> result(8);
    run_ranks(2, [&](Communicator& c) {
      if (corrupt) {
        auto injector = std::make_shared<comm::FaultInjector>(comm::FaultPlan{
            7, {comm::FaultEvent::corrupt_at_post(0, 1)}});
        if (c.rank() == 0) c.install_fault_injector(injector);
      }
      c.barrier();
      Tensor t = Tensor::full({8}, 1.5f);
      c.all_reduce(t);  // post 0: clean
      c.all_reduce(t);  // post 1: rank 0's contribution corrupted
      if (c.rank() == 0) {
        for (int i = 0; i < 8; ++i) result[static_cast<size_t>(i)] = t[i];
      }
    });
    return result;
  };
  const auto clean = run_once(false);
  const auto faulted1 = run_once(true);
  const auto faulted2 = run_once(true);
  EXPECT_NE(clean, faulted1);     // the corruption changed the result...
  EXPECT_EQ(faulted1, faulted2);  // ...identically on every replay
}

TEST(Fault, SlowRankDelaysWithoutChangingResults) {
  auto run_once = [&](bool slow) {
    std::vector<float> result(4);
    run_ranks(3, [&](Communicator& c) {
      if (slow && c.rank() == 0) {
        auto injector = std::make_shared<comm::FaultInjector>(comm::FaultPlan{
            0, {comm::FaultEvent::slow_rank(2, 1, 0.01, 4)}});
        c.install_fault_injector(injector);
      }
      c.barrier();
      Tensor t = Tensor::full({4}, static_cast<float>(c.rank() + 1));
      for (int i = 0; i < 6; ++i) c.all_reduce(t, ReduceOp::kAvg);
      if (c.rank() == 0) {
        for (int i = 0; i < 4; ++i) result[static_cast<size_t>(i)] = t[i];
      }
    });
    return result;
  };
  // A slow rank stretches wall time but must be bitwise invisible in the
  // data (rank-ordered reductions don't depend on arrival order).
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(Fault, StallAtPostIsCaughtByWatchdog) {
  std::atomic<int> aborted{0};
  std::vector<int> suspects;
  std::mutex mu;
  run_ranks(3, [&](Communicator& c) {
    if (c.rank() == 0) {
      auto injector = std::make_shared<comm::FaultInjector>(comm::FaultPlan{
          0, {comm::FaultEvent::stall_at_post(1, 3, 2.0)}});
      c.install_fault_injector(injector);
      comm::WatchdogOptions opts;
      opts.deadline_seconds = 0.4;
      c.start_watchdog(opts);
    }
    c.barrier();
    Tensor t = Tensor::ones({4});
    try {
      for (int i = 0; i < 10; ++i) c.all_reduce(t);
      FAIL() << "rank " << c.rank() << " completed despite the stall plan";
    } catch (const comm::Aborted&) {
      ++aborted;
      std::lock_guard<std::mutex> lk(mu);
      if (suspects.empty()) suspects = c.abort_suspects();
    }
  });
  EXPECT_EQ(aborted.load(), 3);
  EXPECT_EQ(suspects, (std::vector<int>{1}));
}

TEST(Fault, FiredTracksConsumedEvents) {
  auto injector = std::make_shared<comm::FaultInjector>(comm::FaultPlan{
      0,
      {comm::FaultEvent::corrupt_at_post(0, 0),
       comm::FaultEvent::kill_at_step(1, 99)}});
  run_ranks(2, [&](Communicator& c) {
    if (c.rank() == 0) c.install_fault_injector(injector);
    c.barrier();
    Tensor t = Tensor::ones({4});
    c.all_reduce(t);
  });
  const auto fired = injector->fired();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_TRUE(fired[0]);   // corruption consumed
  EXPECT_FALSE(fired[1]);  // the step-99 kill never triggered
}

}  // namespace
}  // namespace geofm
