// Tests for tensor/: construction, views, in-place ops, reductions.
#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace geofm {
namespace {

TEST(Tensor, ZerosAndShape) {
  Tensor t = Tensor::zeros({2, 3, 4});
  EXPECT_EQ(t.rank(), 3);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 4);
  for (i64 i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({5}, 3.5f);
  for (i64 i = 0; i < 5; ++i) EXPECT_EQ(t[i], 3.5f);
  t.fill_(-1.f);
  EXPECT_EQ(t.sum(), -5.f);
}

TEST(Tensor, AtIndexing) {
  Tensor t = Tensor::arange(6).view({2, 3});
  EXPECT_EQ(t.at({0, 0}), 0.f);
  EXPECT_EQ(t.at({1, 2}), 5.f);
  t.at({1, 0}) = 42.f;
  EXPECT_EQ(t[3], 42.f);
}

TEST(Tensor, CopySharesStorageCloneDoesNot) {
  Tensor a = Tensor::arange(4);
  Tensor alias = a;            // shares
  Tensor deep = a.clone();     // fresh
  a[0] = 99.f;
  EXPECT_EQ(alias[0], 99.f);
  EXPECT_EQ(deep[0], 0.f);
}

TEST(Tensor, ViewSharesStorage) {
  Tensor a = Tensor::arange(12);
  Tensor v = a.view({3, 4});
  v.at({2, 3}) = -7.f;
  EXPECT_EQ(a[11], -7.f);
  EXPECT_THROW(a.view({5, 5}), Error);
}

TEST(Tensor, FlatViewWindows) {
  Tensor a = Tensor::arange(10);
  Tensor w = a.flat_view(3, 4);
  EXPECT_EQ(w.numel(), 4);
  EXPECT_EQ(w[0], 3.f);
  w.fill_(0.f);
  EXPECT_EQ(a[3], 0.f);
  EXPECT_EQ(a[6], 0.f);
  EXPECT_EQ(a[7], 7.f);
  EXPECT_THROW(a.flat_view(8, 5), Error);
}

TEST(Tensor, NestedFlatViewOffsets) {
  Tensor a = Tensor::arange(20);
  Tensor w1 = a.flat_view(5, 10);
  Tensor w2 = w1.flat_view(2, 3);
  EXPECT_EQ(w2[0], 7.f);
  w2[0] = 100.f;
  EXPECT_EQ(a[7], 100.f);
}

TEST(Tensor, InplaceArithmetic) {
  Tensor a = Tensor::ones({4});
  Tensor b = Tensor::arange(4);
  a.add_(b, 2.f);
  EXPECT_EQ(a[3], 7.f);
  a.scale_(0.5f);
  EXPECT_EQ(a[3], 3.5f);
  a.mul_(b);
  EXPECT_EQ(a[0], 0.f);
  EXPECT_EQ(a[3], 10.5f);
  a.add_scalar_(1.f);
  EXPECT_EQ(a[0], 1.f);
}

TEST(Tensor, Reductions) {
  Tensor a = Tensor::from({1.f, -2.f, 3.f, -4.f});
  EXPECT_FLOAT_EQ(a.sum(), -2.f);
  EXPECT_FLOAT_EQ(a.mean(), -0.5f);
  EXPECT_FLOAT_EQ(a.abs_max(), 4.f);
  EXPECT_FLOAT_EQ(a.norm(), std::sqrt(30.f));
}

TEST(Tensor, AllClose) {
  Tensor a = Tensor::from({1.f, 2.f});
  Tensor b = Tensor::from({1.f + 1e-7f, 2.f});
  EXPECT_TRUE(a.allclose(b));
  Tensor c = Tensor::from({1.1f, 2.f});
  EXPECT_FALSE(a.allclose(c));
  Tensor d = Tensor::from({1.f, 2.f, 3.f});
  EXPECT_FALSE(a.allclose(d));
}

TEST(Tensor, RandnDeterministicPerSeed) {
  Rng r1(9), r2(9);
  Tensor a = Tensor::randn({100}, r1);
  Tensor b = Tensor::randn({100}, r2);
  EXPECT_TRUE(a.allclose(b, 0.f, 0.f));
}

TEST(Tensor, RandnStatistics) {
  Rng rng(123);
  Tensor a = Tensor::randn({20000}, rng, 2.f, 1.f);
  EXPECT_NEAR(a.mean(), 1.f, 0.1f);
  double var = 0;
  for (i64 i = 0; i < a.numel(); ++i) {
    var += (a[i] - a.mean()) * (a[i] - a.mean());
  }
  var /= static_cast<double>(a.numel());
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Tensor, ErrorsOnShapeMisuse) {
  Tensor a = Tensor::zeros({2, 2});
  Tensor b = Tensor::zeros({3});
  EXPECT_THROW(a.add_(b), Error);
  EXPECT_THROW(a.copy_(b), Error);
  EXPECT_THROW(a.at({0}), Error);
  EXPECT_THROW(a.at({0, 5}), Error);
  EXPECT_THROW(a.dim(5), Error);
}

TEST(Tensor, UndefinedTensorBehaviour) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_THROW(t.data(), Error);
}

}  // namespace
}  // namespace geofm
