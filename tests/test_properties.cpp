// Property-style parameterized sweeps: the same invariant checked across
// a grid of configurations (architectures, rank counts, strategies).
#include <gtest/gtest.h>

#include <tuple>

#include "comm/communicator.hpp"
#include "gradcheck.hpp"
#include "models/mae.hpp"
#include "nn/attention.hpp"
#include "nn/block.hpp"
#include "optim/optimizer.hpp"
#include "parallel/fsdp.hpp"
#include "sim/simulator.hpp"

namespace geofm {
namespace {

using comm::Communicator;
using comm::run_ranks;

// ----- attention gradcheck across (dim, heads, seq) ---------------------------

class AttentionGrid
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, AttentionGrid,
    ::testing::Values(std::tuple{8, 1, 3}, std::tuple{8, 2, 5},
                      std::tuple{16, 4, 4}, std::tuple{24, 3, 2},
                      std::tuple{32, 8, 6}));

TEST_P(AttentionGrid, GradCheck) {
  const auto [dim, heads, seq] = GetParam();
  Rng rng(static_cast<u64>(dim * 131 + heads * 17 + seq));
  nn::MultiHeadSelfAttention attn("a", dim, heads, rng);
  Tensor x = Tensor::randn({2, seq, dim}, rng, 0.5f);
  testing::expect_gradients_match(
      attn, x, [&] { return attn.forward(x); },
      [&](const Tensor& dy) { return attn.backward(dy); },
      /*seed=*/static_cast<u64>(dim + seq), /*tol=*/3e-2);
}

// ----- transformer block gradcheck across widths --------------------------------

class BlockGrid : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Widths, BlockGrid, ::testing::Values(8, 16, 24));

TEST_P(BlockGrid, GradCheck) {
  const int width = GetParam();
  Rng rng(static_cast<u64>(width));
  nn::TransformerBlock blk("b", width, width / 8, 2 * width, rng);
  Tensor x = Tensor::randn({2, 4, width}, rng, 0.5f);
  testing::expect_gradients_match(
      blk, x, [&] { return blk.forward(x); },
      [&](const Tensor& dy) { return blk.backward(dy); },
      /*seed=*/static_cast<u64>(width * 7), /*tol=*/3e-2);
}

// ----- collectives: all-reduce equals serial reduction, random payloads ---------

class AllReduceGrid
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    RanksBySize, AllReduceGrid,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(1, 17, 1024)));

TEST_P(AllReduceGrid, MatchesSerialSum) {
  const auto [ranks, elems] = GetParam();
  // Build per-rank payloads up front and the expected serial reduction.
  std::vector<Tensor> payloads;
  Tensor expect = Tensor::zeros({elems});
  for (int r = 0; r < ranks; ++r) {
    Rng rng(static_cast<u64>(1000 + r * 31 + elems));
    payloads.push_back(Tensor::randn({elems}, rng));
    expect.add_(payloads.back());
  }
  run_ranks(ranks, [&](Communicator& c) {
    Tensor mine = payloads[static_cast<size_t>(c.rank())].clone();
    c.all_reduce(mine, comm::ReduceOp::kSum);
    EXPECT_TRUE(mine.allclose(expect, 1e-5f, 1e-6f));
  });
}

// ----- optimizers: all converge on random strongly-convex quadratics -------------

enum class OptKind { kSgd, kSgdMomentum, kAdamW, kLars };

class OptimizerGrid : public ::testing::TestWithParam<OptKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, OptimizerGrid,
                         ::testing::Values(OptKind::kSgd,
                                           OptKind::kSgdMomentum,
                                           OptKind::kAdamW, OptKind::kLars));

TEST_P(OptimizerGrid, DecreasesRandomQuadratic) {
  Rng rng(17);
  nn::Parameter p;
  p.name = "w";
  p.value = Tensor::randn({32}, rng, 2.f);
  p.ensure_grad();
  Tensor target = Tensor::randn({32}, rng);
  // Positive per-coordinate curvature in [0.5, 2].
  Tensor curv = Tensor::rand({32}, rng, 0.5f, 2.f);

  std::unique_ptr<optim::Optimizer> opt;
  switch (GetParam()) {
    case OptKind::kSgd:
      opt = std::make_unique<optim::Sgd>(std::vector{&p}, 0.1);
      break;
    case OptKind::kSgdMomentum:
      opt = std::make_unique<optim::Sgd>(std::vector{&p}, 0.05, 0.9);
      break;
    case OptKind::kAdamW:
      opt = std::make_unique<optim::AdamW>(std::vector{&p}, 0.1, 0.9, 0.999,
                                           1e-8, 0.0);
      break;
    case OptKind::kLars:
      opt = std::make_unique<optim::Lars>(std::vector{&p}, 1.0, 0.9, 0.0,
                                          0.05);
      break;
  }

  auto loss = [&] {
    double acc = 0;
    for (i64 i = 0; i < 32; ++i) {
      const double d = p.value[i] - target[i];
      acc += 0.5 * curv[i] * d * d;
    }
    return acc;
  };
  const double initial = loss();
  for (int s = 0; s < 120; ++s) {
    opt->zero_grad();
    for (i64 i = 0; i < 32; ++i) {
      p.grad[i] = curv[i] * (p.value[i] - target[i]);
    }
    opt->step();
  }
  EXPECT_LT(loss(), 0.05 * initial);
}

// ----- FSDP: invariants across every (strategy, prefetch) combination ------------

struct FsdpGridCase {
  parallel::ShardingStrategy strategy;
  int group;
  parallel::BackwardPrefetch prefetch;
};

class FsdpGrid : public ::testing::TestWithParam<FsdpGridCase> {};

INSTANTIATE_TEST_SUITE_P(
    StrategyByPrefetch, FsdpGrid,
    ::testing::Values(
        FsdpGridCase{parallel::ShardingStrategy::kNoShard, 1,
                     parallel::BackwardPrefetch::kBackwardPre},
        FsdpGridCase{parallel::ShardingStrategy::kFullShard, 1,
                     parallel::BackwardPrefetch::kNone},
        FsdpGridCase{parallel::ShardingStrategy::kFullShard, 1,
                     parallel::BackwardPrefetch::kBackwardPost},
        FsdpGridCase{parallel::ShardingStrategy::kFullShard, 1,
                     parallel::BackwardPrefetch::kBackwardPre},
        FsdpGridCase{parallel::ShardingStrategy::kShardGradOp, 1,
                     parallel::BackwardPrefetch::kBackwardPre},
        FsdpGridCase{parallel::ShardingStrategy::kHybridShard, 2,
                     parallel::BackwardPrefetch::kBackwardPre},
        FsdpGridCase{parallel::ShardingStrategy::kHybridShard, 4,
                     parallel::BackwardPrefetch::kNone}));

TEST_P(FsdpGrid, StepInvariants) {
  const auto param = GetParam();
  models::ViTConfig enc{.name = "t", .width = 16, .depth = 3, .mlp_dim = 32,
                        .heads = 2, .img_size = 16, .patch_size = 4,
                        .in_channels = 3};
  run_ranks(4, [&](Communicator& c) {
    Rng rng(1);
    models::MAE mae(models::mae_for(enc), rng);
    parallel::FsdpOptions opts;
    opts.strategy = param.strategy;
    opts.hybrid_group_size = param.group;
    opts.prefetch = param.prefetch;
    parallel::Fsdp fsdp(mae, c, opts);
    optim::AdamW opt(fsdp.optimizer_parameters(), 1e-3);

    Rng drng(2);
    Tensor batch = Tensor::randn({2, 3, 16, 16}, drng, 0.5f);
    for (int s = 0; s < 2; ++s) {
      fsdp.begin_step();
      Rng mask_rng(static_cast<u64>(s));
      const float loss = mae.forward(batch, mask_rng, c.rank() * 2);
      EXPECT_TRUE(std::isfinite(loss));
      mae.backward();
      fsdp.end_backward();
      opt.step();

      // Invariant: every unit's gradient is reduced exactly once per step
      // (one reduce-scatter or replica all-reduce chain per unit).
      int reduces = 0;
      for (const auto& e : fsdp.last_schedule()) {
        reduces += (e.type == parallel::FsdpEvent::Type::kReduceScatter);
      }
      if (fsdp.shard_group_size() > 1) {
        EXPECT_EQ(reduces, fsdp.n_units() + 1);  // stages + root
      } else {
        EXPECT_EQ(reduces, 0);
      }
    }

    // Invariant: materialized parameters are finite (no NaN poison leaks).
    fsdp.gather_full_parameters();
    for (nn::Parameter* p : mae.module().parameters()) {
      EXPECT_TRUE(std::isfinite(p->value.sum())) << p->name;
    }
    c.barrier();
  });
}

// ----- simulator: monotonicity in nodes for every strategy ----------------------

class SimStrategyGrid
    : public ::testing::TestWithParam<parallel::ShardingStrategy> {};

INSTANTIATE_TEST_SUITE_P(
    Strategies, SimStrategyGrid,
    ::testing::Values(parallel::ShardingStrategy::kNoShard,
                      parallel::ShardingStrategy::kFullShard,
                      parallel::ShardingStrategy::kShardGradOp,
                      parallel::ShardingStrategy::kHybridShard));

TEST_P(SimStrategyGrid, TotalThroughputMonotoneInNodes) {
  sim::ParallelPlan plan;
  plan.fsdp.strategy = GetParam();
  plan.fsdp.hybrid_group_size =
      GetParam() == parallel::ShardingStrategy::kHybridShard ? 4 : 1;
  const auto workload = sim::vit_step_workload(models::vit_1b(), 32);
  double prev = 0;
  for (int nodes : {1, 2, 4, 8, 16, 32, 64}) {
    sim::TrainingSimulator s(workload, sim::frontier(), nodes, plan);
    const auto step = s.simulate_step();
    EXPECT_GT(step.images_per_second_total, prev) << "nodes " << nodes;
    EXPECT_GE(step.exposed_comm_seconds, 0.0);
    EXPECT_LE(step.images_per_second_per_rank,
              workload.images_per_step /
                  (workload.stages[0].fwd_flops * 3 *
                   static_cast<double>(workload.stages.size()) /
                   sim::frontier().gpu.sustained_flops));
    prev = step.images_per_second_total;
  }
}

}  // namespace
}  // namespace geofm
