// Storage-path robustness: the retrying checkpoint uploader and the
// io-fault seams in the save/restore path.
//
// The load-bearing properties:
//   * Mirroring — every published checkpoint lands verified at the
//     secondary location; failures retry with backoff and give up
//     gracefully (training is never blocked, the gap is loud).
//   * GC safety — retention never deletes a step that is queued,
//     mid-upload, or the newest one the secondary location holds.
//   * Write-path integrity — a torn primary write can never publish;
//     tolerated write failures skip the checkpoint and training goes on.
//   * Restore loudness — an unreadable shard at restore throws with the
//     offending file named, never silently zero-fills.
#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/format.hpp"
#include "ckpt/io_fault.hpp"
#include "ckpt/state.hpp"
#include "ckpt/uploader.hpp"
#include "comm/communicator.hpp"
#include "comm/fault.hpp"
#include "data/datasets.hpp"
#include "models/mae.hpp"
#include "obs/metrics.hpp"
#include "parallel/fsdp.hpp"
#include "train/distributed.hpp"
#include "util/thread_context.hpp"

namespace geofm {
namespace {

namespace fs = std::filesystem;
using comm::Communicator;
using comm::FaultEvent;
using comm::FaultPlan;
using comm::run_ranks;
using parallel::Fsdp;
using parallel::FsdpOptions;
using parallel::ShardingStrategy;

// The io-fault injector slot is process-global; every test that installs
// one must clear it on exit so later tests see clean counters.
struct InjectorGuard {
  explicit InjectorGuard(FaultPlan plan) {
    ckpt::install_io_fault_injector(
        std::make_shared<comm::FaultInjector>(std::move(plan)));
  }
  ~InjectorGuard() { ckpt::install_io_fault_injector(nullptr); }
};

std::string fresh_root(const std::string& name) {
  const std::string root = "/tmp/" + name;
  fs::remove_all(root);
  ckpt::reset_save_state(root);
  return root;
}

// One complete single-rank checkpoint at `step` under `root`.
void save_step(const std::string& root, i64 step) {
  ckpt::SaveRequest req;
  req.dir = root;
  req.step = step;
  req.rank = 0;
  req.world = 1;
  req.counters = {{"step", step}};
  ckpt::TensorSlice slice;
  slice.name = "w";
  slice.shape = {64};
  slice.begin = 0;
  slice.data = Tensor::full({64}, static_cast<float>(step));
  req.state.slices.push_back(slice);
  ckpt::Checkpointer saver(/*async=*/false);
  saver.save(req);
}

std::vector<i64> published_steps(const std::string& root) {
  std::vector<i64> steps;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return steps;
  for (const auto& entry : fs::directory_iterator(root)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("step_", 0) != 0) continue;
    if (!fs::exists(entry.path() / "manifest.txt")) continue;
    steps.push_back(std::stoll(name.substr(5)));
  }
  std::sort(steps.begin(), steps.end());
  return steps;
}

models::MaeConfig upl_mae_cfg() {
  models::ViTConfig enc{.name = "t", .width = 16, .depth = 3, .mlp_dim = 32,
                        .heads = 2, .img_size = 16, .patch_size = 4,
                        .in_channels = 3};
  return models::mae_for(enc);
}

ckpt::UploaderOptions fast_uploader(const std::string& src,
                                    const std::string& dst) {
  ckpt::UploaderOptions uo;
  uo.source = src;
  uo.destination = dst;
  uo.max_retries = 4;
  uo.initial_backoff_seconds = 0.005;
  uo.max_backoff_seconds = 0.02;
  return uo;
}

// ----- uploader: mirror, retry, give up --------------------------------------

TEST(Uploader, MirrorsPublishedCheckpoints) {
  const std::string root = fresh_root("geofm_test_upl_mirror_src");
  const std::string dst = fresh_root("geofm_test_upl_mirror_dst");
  {
    ckpt::Uploader up(fast_uploader(root, dst));
    // Publication notifies the registered uploader; no manual enqueue.
    for (i64 step = 0; step < 3; ++step) save_step(root, step);
    up.drain();
    const auto st = up.stats();
    EXPECT_EQ(st.uploaded, 3);
    EXPECT_EQ(st.failures, 0);
    EXPECT_EQ(st.retries, 0);
    EXPECT_EQ(st.newest_uploaded_step, 2);
    // The newest mirrored step is the recovery anchor; older mirrored
    // steps are not GC-protected.
    EXPECT_TRUE(up.protects(2));
    EXPECT_FALSE(up.protects(1));
    EXPECT_TRUE(ckpt::uploader_protects(root, 2));
  }
  // The mirror is a real checkpoint tree: resolvable, readable, current.
  EXPECT_EQ(published_steps(dst), (std::vector<i64>{0, 1, 2}));
  EXPECT_EQ(ckpt::latest_step(dst), 2);
  ckpt::CheckpointReader reader(dst);
  EXPECT_EQ(reader.counter("step", -1), 2);
  // After the uploader is gone its protection is too.
  EXPECT_FALSE(ckpt::uploader_protects(root, 2));
  fs::remove_all(root);
  fs::remove_all(dst);
}

TEST(Uploader, RetriesWithBackoffUnderInjectedFaults) {
  const std::string root = fresh_root("geofm_test_upl_retry_src");
  const std::string dst = fresh_root("geofm_test_upl_retry_dst");
  // Attempt 1 dies on its first copy; attempt 2 lands a torn copy (which
  // must fail the attempt, not the verify later); attempt 3 succeeds.
  FaultPlan plan;
  plan.events.push_back(FaultEvent::io_fail_upload(0));
  plan.events.push_back(FaultEvent::io_torn_upload(1));
  InjectorGuard guard(std::move(plan));
  {
    ckpt::Uploader up(fast_uploader(root, dst));
    save_step(root, 0);
    up.drain();
    const auto st = up.stats();
    EXPECT_EQ(st.uploaded, 1);
    EXPECT_EQ(st.attempts, 3);
    EXPECT_EQ(st.retries, 2);
    EXPECT_EQ(st.failures, 2);
    EXPECT_EQ(st.gave_up, 0);
  }
  // What arrived is whole and checksum-verified, and no temp dirs leak.
  EXPECT_EQ(published_steps(dst), (std::vector<i64>{0}));
  for (const auto& entry : fs::directory_iterator(dst)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp"),
              std::string::npos);
  }
  ckpt::CheckpointReader reader(dst);
  EXPECT_EQ(reader.counter("step", -1), 0);
  fs::remove_all(root);
  fs::remove_all(dst);
}

TEST(Uploader, GivesUpGracefullyAndMovesOn) {
  const std::string root = fresh_root("geofm_test_upl_giveup_src");
  const std::string dst = fresh_root("geofm_test_upl_giveup_dst");
  auto& gave_up_metric =
      obs::MetricsRegistry::instance().counter("upload.gave_up");
  const double gave_up_before = gave_up_metric.value();
  {
    ckpt::Uploader up(fast_uploader(root, dst));
    {
      // ops_affected = 0: every upload op fails, all retries exhausted.
      FaultPlan plan;
      plan.events.push_back(FaultEvent::io_fail_upload(0, /*ops=*/0));
      InjectorGuard guard(std::move(plan));
      save_step(root, 0);
      up.drain();
    }
    auto st = up.stats();
    EXPECT_EQ(st.uploaded, 0);
    EXPECT_EQ(st.gave_up, 1);
    EXPECT_EQ(st.failures, 4);  // == max_retries
    EXPECT_EQ(st.newest_uploaded_step, -1);
    EXPECT_FALSE(up.protects(0));  // an abandoned step is not protected
    EXPECT_GE(gave_up_metric.value(), gave_up_before + 1);

    // The next publication gets a fresh set of attempts (injector gone).
    save_step(root, 1);
    up.drain();
    st = up.stats();
    EXPECT_EQ(st.uploaded, 1);
    EXPECT_EQ(st.gave_up, 1);
    EXPECT_EQ(st.newest_uploaded_step, 1);
  }
  EXPECT_EQ(published_steps(dst), (std::vector<i64>{1}));
  fs::remove_all(root);
  fs::remove_all(dst);
}

// ----- uploader vs retention GC ---------------------------------------------

TEST(Uploader, GcSkipsInFlightAndNewestUploadedAnchor) {
  const std::string root = fresh_root("geofm_test_upl_gc_src");
  const std::string dst = fresh_root("geofm_test_upl_gc_dst");
  for (i64 step = 0; step < 4; ++step) save_step(root, step);

  ckpt::RetentionPolicy policy;
  policy.keep_last = 1;
  {
    // The first copy of step 0 crawls for 1.5s: the GC pass below runs
    // while step 0 is mid-upload and 1..3 are still queued.
    FaultPlan slow;
    slow.events.push_back(FaultEvent::io_slow_upload(0, 1.5, 1));
    InjectorGuard guard(std::move(slow));
    ckpt::Uploader up(fast_uploader(root, dst));
    for (i64 step = 0; step < 4; ++step) up.enqueue(step);

    // keep_last=1 would doom steps 0..2, but all of them are in the
    // uploader's hands: GC must touch nothing.
    EXPECT_TRUE(ckpt::apply_retention(root, policy).empty());
    EXPECT_EQ(published_steps(root), (std::vector<i64>{0, 1, 2, 3}));

    up.drain();
    EXPECT_EQ(up.stats().uploaded, 4);
    EXPECT_EQ(up.newest_uploaded_step(), 3);

    // A newer checkpoint whose upload permanently fails: the mirror's
    // anchor stays at 3, and GC must keep it even though keep_last only
    // covers 4.
    {
      FaultPlan always_fail;
      always_fail.events.push_back(FaultEvent::io_fail_upload(0, /*ops=*/0));
      InjectorGuard fail_guard(std::move(always_fail));
      save_step(root, 4);
      up.drain();
    }
    EXPECT_EQ(up.stats().gave_up, 1);
    EXPECT_EQ(up.newest_uploaded_step(), 3);

    const auto removed = ckpt::apply_retention(root, policy);
    EXPECT_EQ(removed, (std::vector<i64>{0, 1, 2}));
    EXPECT_EQ(published_steps(root), (std::vector<i64>{3, 4}));
  }
  fs::remove_all(root);
  fs::remove_all(dst);
}

// ----- uploader wired through the distributed driver -------------------------

TEST(Uploader, DriverMirrorsAndReportsStats) {
  const std::string root = fresh_root("geofm_test_upl_driver_src");
  const std::string dst = fresh_root("geofm_test_upl_driver_dst");
  auto corpus = data::million_aid_pretrain(32, 16);
  train::DistributedPretrainConfig cfg;
  cfg.steps = 4;
  cfg.global_batch = 8;
  cfg.seed = 3;
  cfg.loader_workers = 0;
  cfg.checkpoint_every_n_steps = 2;  // publishes steps 1 and 3
  cfg.checkpoint_dir = root;
  cfg.async_checkpoint = false;
  cfg.upload.destination = dst;
  cfg.upload.initial_backoff_seconds = 0.005;

  train::DistributedPretrainResult rank0;
  std::mutex mu;
  run_ranks(2, [&](Communicator& c) {
    Rng rng(42);
    models::MAE mae(upl_mae_cfg(), rng);
    FsdpOptions opts;
    opts.strategy = ShardingStrategy::kFullShard;
    Fsdp fsdp(mae, c, opts);
    auto r = train::pretrain_mae_distributed(mae, fsdp, c, corpus, cfg);
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      rank0 = r;
    }
  });

  EXPECT_EQ(rank0.checkpoints_uploaded, 2);
  EXPECT_EQ(rank0.upload_failures, 0);
  EXPECT_EQ(rank0.upload_gave_up, 0);
  EXPECT_EQ(published_steps(dst), (std::vector<i64>{1, 3}));
  // The mirror restores like the primary: both shards, all counters.
  ckpt::CheckpointReader reader(dst);
  EXPECT_EQ(reader.counter("step", -1), 3);
  fs::remove_all(root);
  fs::remove_all(dst);
}

// ----- storage faults on the primary write/restore path ----------------------

TEST(StorageFaults, TornPrimaryWriteNeverPublishes) {
  const std::string root = fresh_root("geofm_test_sf_torn");
  auto corpus = data::million_aid_pretrain(32, 16);
  train::DistributedPretrainConfig cfg;
  cfg.steps = 4;
  cfg.global_batch = 4;
  cfg.seed = 3;
  cfg.checkpoint_every_n_steps = 2;  // would publish steps 1 and 3
  cfg.checkpoint_dir = root;
  cfg.async_checkpoint = false;
  cfg.tolerate_checkpoint_failures = true;
  FaultPlan plan;
  plan.events.push_back(FaultEvent::io_torn_write(0, 0));
  cfg.fault_injector = std::make_shared<comm::FaultInjector>(plan);
  struct ClearInjector {
    ~ClearInjector() { ckpt::install_io_fault_injector(nullptr); }
  } clear;

  const double failures_before =
      obs::MetricsRegistry::instance().counter("ckpt.save_failures").value();
  std::vector<float> losses;
  std::mutex mu;
  run_ranks(1, [&](Communicator& c) {
    Rng rng(42);
    models::MAE mae(upl_mae_cfg(), rng);
    FsdpOptions opts;
    Fsdp fsdp(mae, c, opts);
    auto r = train::pretrain_mae_distributed(mae, fsdp, c, corpus, cfg);
    std::lock_guard<std::mutex> lk(mu);
    losses = r.step_losses;
  });

  // Training survived the torn save; only the clean step published.
  EXPECT_EQ(losses.size(), 4u);
  EXPECT_EQ(published_steps(root), (std::vector<i64>{3}));
  EXPECT_EQ(ckpt::latest_step(root), 3);
  EXPECT_FALSE(fs::exists(root + "/step_00000001"));
  EXPECT_GE(
      obs::MetricsRegistry::instance().counter("ckpt.save_failures").value(),
      failures_before + 1);

  // The torn bytes really landed — truncated, in the hidden temp dir,
  // where no reader will ever trust them.
  const std::string torn = root + "/.step_00000001.tmp/" +
                           ckpt::format::shard_file_name(0);
  ASSERT_TRUE(fs::exists(torn));
  bool rejected = false;
  try {
    const auto header = ckpt::format::read_shard_header(torn);
    for (const auto& entry : header.records) {
      ckpt::format::read_shard_record(torn, entry);
    }
  } catch (const std::exception&) {
    rejected = true;
  }
  EXPECT_TRUE(rejected);
  fs::remove_all(root);
}

TEST(StorageFaults, WriteFailureOnOneRankSkipsTheCheckpoint) {
  const std::string root = fresh_root("geofm_test_sf_fail_rank");
  auto corpus = data::million_aid_pretrain(32, 16);
  train::DistributedPretrainConfig cfg;
  cfg.steps = 4;
  cfg.global_batch = 8;
  cfg.seed = 3;
  cfg.checkpoint_every_n_steps = 2;
  cfg.checkpoint_dir = root;
  cfg.async_checkpoint = false;
  cfg.tolerate_checkpoint_failures = true;
  FaultPlan plan;
  plan.events.push_back(FaultEvent::io_fail_write(1, 0));
  cfg.fault_injector = std::make_shared<comm::FaultInjector>(plan);
  struct ClearInjector {
    ~ClearInjector() { ckpt::install_io_fault_injector(nullptr); }
  } clear;

  auto run2 = [&](const train::DistributedPretrainConfig& c2) {
    std::vector<float> losses;
    std::mutex mu;
    run_ranks(2, [&](Communicator& c) {
      Rng rng(42);
      models::MAE mae(upl_mae_cfg(), rng);
      FsdpOptions opts;
      opts.strategy = ShardingStrategy::kFullShard;
      Fsdp fsdp(mae, c, opts);
      auto r = train::pretrain_mae_distributed(mae, fsdp, c, corpus, c2);
      if (c.rank() == 0) {
        std::lock_guard<std::mutex> lk(mu);
        losses = r.step_losses;
      }
    });
    return losses;
  };
  const auto faulted_losses = run2(cfg);

  // Rank 1's shard never landed, so step 1 never published; step 3 did.
  EXPECT_EQ(published_steps(root), (std::vector<i64>{3}));

  // The storage fault is invisible to the training math.
  ckpt::install_io_fault_injector(nullptr);
  auto clean = cfg;
  clean.checkpoint_every_n_steps = 0;
  clean.checkpoint_dir.clear();
  clean.fault_injector = nullptr;
  clean.tolerate_checkpoint_failures = false;
  const auto clean_losses = run2(clean);
  ASSERT_EQ(faulted_losses.size(), clean_losses.size());
  for (size_t i = 0; i < clean_losses.size(); ++i) {
    EXPECT_EQ(faulted_losses[i], clean_losses[i]) << "step " << i;
  }
  fs::remove_all(root);
}

TEST(StorageFaults, TrainingContinuesUnderRepeatedWriteFaults) {
  const std::string root = fresh_root("geofm_test_sf_repeat");
  auto corpus = data::million_aid_pretrain(32, 16);
  train::DistributedPretrainConfig cfg;
  cfg.steps = 6;
  cfg.global_batch = 4;
  cfg.seed = 3;
  cfg.checkpoint_every_n_steps = 2;  // tries steps 1, 3, 5
  cfg.checkpoint_dir = root;
  cfg.async_checkpoint = true;  // failures surface on the writer thread
  cfg.tolerate_checkpoint_failures = true;
  FaultPlan plan;
  plan.events.push_back(FaultEvent::io_fail_write(0, 0, /*ops=*/2));
  cfg.fault_injector = std::make_shared<comm::FaultInjector>(plan);
  struct ClearInjector {
    ~ClearInjector() { ckpt::install_io_fault_injector(nullptr); }
  } clear;

  auto run1 = [&](const train::DistributedPretrainConfig& c1) {
    std::vector<float> losses;
    i64 start = -1;
    std::mutex mu;
    run_ranks(1, [&](Communicator& c) {
      Rng rng(42);
      models::MAE mae(upl_mae_cfg(), rng);
      FsdpOptions opts;
      Fsdp fsdp(mae, c, opts);
      auto r = train::pretrain_mae_distributed(mae, fsdp, c, corpus, c1);
      std::lock_guard<std::mutex> lk(mu);
      losses = r.step_losses;
      start = r.start_step;
    });
    return std::make_pair(losses, start);
  };
  const auto [losses, start] = run1(cfg);
  EXPECT_EQ(start, 0);
  EXPECT_EQ(losses.size(), 6u);
  // The first two saves were swallowed; the third published.
  EXPECT_EQ(published_steps(root), (std::vector<i64>{5}));

  // What survived is a working resume source.
  ckpt::install_io_fault_injector(nullptr);
  auto resume = cfg;
  resume.steps = 8;
  resume.fault_injector = nullptr;
  resume.resume_from = root;
  const auto [resumed_losses, resumed_start] = run1(resume);
  EXPECT_EQ(resumed_start, 6);
  EXPECT_EQ(resumed_losses.size(), 2u);
  fs::remove_all(root);
}

TEST(StorageFaults, UnreadableShardAtRestoreIsLoud) {
  const std::string root = fresh_root("geofm_test_sf_unreadable");
  save_step(root, 0);
  FaultPlan plan;
  plan.events.push_back(FaultEvent::io_unreadable_at_restore(-1, 0));
  InjectorGuard guard(std::move(plan));

  ckpt::CheckpointReader reader(root);
  Tensor target = Tensor::zeros({64});
  ckpt::StateDesc desc;
  ckpt::TensorSlice slice;
  slice.name = "w";
  slice.shape = {64};
  slice.begin = 0;
  slice.data = target;
  desc.slices.push_back(slice);
  try {
    reader.restore(desc);
    FAIL() << "restore through an unreadable shard must throw";
  } catch (const Error& e) {
    // Loud and located: the injected reason plus the shard path.
    EXPECT_NE(std::string(e.what()).find("unreadable"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("shard_"), std::string::npos);
  }
  fs::remove_all(root);
}

// ----- uploader: bandwidth cap -----------------------------------------------

// The bytes/sec cap paces mirror copies: a throttled upload takes at
// least bytes/rate wall time, the slept time is accounted in
// stats().throttled_seconds and the upload.throttled_seconds metric,
// and the mirrored bytes are untouched (same verified publication).
TEST(Uploader, BandwidthCapThrottlesAndAccounts) {
  const std::string root = fresh_root("geofm_test_upl_throttle_src");
  const std::string dst = fresh_root("geofm_test_upl_throttle_dst");
  save_step(root, 0);

  // How many shard bytes the attempt will move (manifest excluded — the
  // throttle paces shard copies).
  const std::string step_dir =
      root + "/" + ckpt::format::step_dir_name(0);
  const ckpt::format::Manifest man = ckpt::format::read_manifest(step_dir);
  i64 shard_bytes = 0;
  for (const std::string& shard : man.shards) {
    shard_bytes += static_cast<i64>(fs::file_size(step_dir + "/" + shard));
  }
  ASSERT_GT(shard_bytes, 0);

  auto& throttled_m =
      obs::MetricsRegistry::instance().counter("upload.throttled_seconds");
  const double metric_before = throttled_m.value();

  // Control: unthrottled mirroring sleeps zero seconds.
  {
    ckpt::Uploader up(fast_uploader(root, dst));
    up.enqueue(0);
    up.drain();
    EXPECT_EQ(up.stats().throttled_seconds, 0.0);
  }
  fs::remove_all(dst);
  fs::create_directories(dst);

  // Cap sized so the attempt must stretch to ~150ms.
  const double target_seconds = 0.15;
  ckpt::UploaderOptions uo = fast_uploader(root, dst);
  uo.max_bytes_per_second = static_cast<double>(shard_bytes) / target_seconds;
  const double t0 = monotonic_seconds();
  double throttled = 0;
  {
    ckpt::Uploader up(uo);
    up.enqueue(0);
    up.drain();
    const auto st = up.stats();
    EXPECT_EQ(st.uploaded, 1);
    EXPECT_EQ(st.failures, 0);
    throttled = st.throttled_seconds;
  }
  const double elapsed = monotonic_seconds() - t0;
  EXPECT_GE(elapsed, target_seconds * 0.5);  // pacing actually happened
  EXPECT_GT(throttled, 0.0);
  EXPECT_LE(throttled, elapsed);
  EXPECT_GE(throttled_m.value() - metric_before, throttled * 0.5);
  // The cap slows the copy; it must not change what lands.
  EXPECT_EQ(published_steps(dst), std::vector<i64>{0});
  ckpt::verify_checkpoint_dir(dst + "/" + ckpt::format::step_dir_name(0));
  fs::remove_all(root);
  fs::remove_all(dst);
}

// ----- multi-source discovery + verification ---------------------------------

// published_sources: newest step first across all roots; on a step tie
// the earlier (more trusted) source wins; missing/empty roots are
// skipped. verify_checkpoint_dir: a complete publication passes, a
// truncated shard behind a published manifest is rejected.
TEST(Uploader, PublishedSourcesOrderAndVerification) {
  const std::string a = fresh_root("geofm_test_upl_sources_a");
  const std::string b = fresh_root("geofm_test_upl_sources_b");
  save_step(a, 3);
  save_step(b, 3);  // tie with a's step 3
  save_step(b, 7);  // newest overall

  // One candidate per source: each root's newest published step.
  const auto found =
      ckpt::published_sources({a, b, "/tmp/geofm_upl_sources_missing"});
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].step, 7);
  EXPECT_EQ(found[0].source, 1u);
  EXPECT_EQ(found[1].step, 3);
  EXPECT_EQ(found[1].source, 0u);
  // Step tie across sources: the earlier (more trusted) source wins.
  const auto tied = ckpt::published_sources({b, a});
  ASSERT_EQ(tied.size(), 2u);
  EXPECT_EQ(tied[0].step, 7);
  const auto tie_only = ckpt::published_sources({a, a});
  ASSERT_EQ(tie_only.size(), 2u);
  EXPECT_EQ(tie_only[0].source, 0u);
  EXPECT_TRUE(ckpt::published_sources({}).empty());

  const std::string good = b + "/" + ckpt::format::step_dir_name(7);
  ckpt::verify_checkpoint_dir(good);  // complete: no throw

  const ckpt::format::Manifest man = ckpt::format::read_manifest(good);
  ASSERT_FALSE(man.shards.empty());
  const std::string shard = good + "/" + man.shards.front();
  fs::resize_file(shard, fs::file_size(shard) / 2);
  EXPECT_THROW(ckpt::verify_checkpoint_dir(good), Error);
  fs::remove_all(a);
  fs::remove_all(b);
}

}  // namespace
}  // namespace geofm
