// Optimizer tests: hand-checked update rules, convergence on quadratics,
// LARS trust-ratio behaviour, and the cosine-warmup schedule.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.hpp"
#include "optim/optimizer.hpp"
#include "tensor/ops.hpp"

namespace geofm {
namespace {

using nn::Parameter;

Parameter make_param(std::vector<float> v) {
  Parameter p;
  p.name = "p";
  p.value = Tensor::from(std::move(v));
  p.ensure_grad();
  return p;
}

// Minimizes f(w) = 0.5 * ||w - target||^2 with the given optimizer.
template <typename Opt>
float run_quadratic(Opt& opt, Parameter& p, const Tensor& target, int steps) {
  for (int s = 0; s < steps; ++s) {
    opt.zero_grad();
    for (i64 i = 0; i < p.numel(); ++i) {
      p.grad[i] = p.value[i] - target[i];
    }
    opt.step();
  }
  Tensor diff = p.value.clone();
  diff.add_(target, -1.f);
  return diff.norm();
}

TEST(Sgd, PlainUpdateRule) {
  Parameter p = make_param({1.f, 2.f});
  p.grad[0] = 0.5f;
  p.grad[1] = -1.f;
  optim::Sgd opt({&p}, 0.1);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value[1], 2.f + 0.1f);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p = make_param({0.f});
  optim::Sgd opt({&p}, 1.0, /*momentum=*/0.5);
  p.grad[0] = 1.f;
  opt.step();  // v = 1, w = -1
  EXPECT_FLOAT_EQ(p.value[0], -1.f);
  p.grad[0] = 1.f;
  opt.step();  // v = 1.5, w = -2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Rng rng(1);
  Parameter p = make_param({5.f, -3.f, 2.f});
  Tensor target = Tensor::from({1.f, 1.f, 1.f});
  optim::Sgd opt({&p}, 0.3);
  EXPECT_LT(run_quadratic(opt, p, target, 50), 1e-3f);
}

TEST(Sgd, SkipsFrozenParams) {
  Parameter p = make_param({1.f});
  p.requires_grad = false;
  p.grad[0] = 10.f;
  optim::Sgd opt({&p}, 1.0);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.f);
}

TEST(AdamW, FirstStepMagnitudeIsLr) {
  // With bias correction, the first Adam step is ~lr * sign(g).
  Parameter p = make_param({0.f});
  p.grad[0] = 3.f;
  optim::AdamW opt({&p}, 0.01, 0.9, 0.999, 1e-8, /*weight_decay=*/0.0);
  opt.step();
  EXPECT_NEAR(p.value[0], -0.01, 1e-5);
}

TEST(AdamW, DecoupledWeightDecayActsWithoutGradient) {
  Parameter p = make_param({2.f});
  p.grad[0] = 0.f;
  optim::AdamW opt({&p}, 0.1, 0.9, 0.999, 1e-8, /*weight_decay=*/0.5);
  opt.step();
  // Pure decay: w -= lr * wd * w = 2 - 0.1*0.5*2 = 1.9 (Adam term ~0).
  EXPECT_NEAR(p.value[0], 1.9f, 1e-4);
}

TEST(AdamW, ConvergesOnQuadratic) {
  Parameter p = make_param({4.f, -4.f});
  Tensor target = Tensor::from({1.f, 2.f});
  optim::AdamW opt({&p}, 0.1, 0.9, 0.999, 1e-8, 0.0);
  EXPECT_LT(run_quadratic(opt, p, target, 300), 1e-2f);
}

TEST(AdamW, StateBytesForMemoryModel) {
  Parameter p = make_param({0.f});
  optim::AdamW adam({&p}, 0.1);
  EXPECT_EQ(adam.state_bytes_per_element(), 8);  // two fp32 moments
  optim::Sgd sgd_plain({&p}, 0.1);
  EXPECT_EQ(sgd_plain.state_bytes_per_element(), 0);
  optim::Sgd sgd_mom({&p}, 0.1, 0.9);
  EXPECT_EQ(sgd_mom.state_bytes_per_element(), 4);
}

TEST(Lars, TrustRatioScalesUpdate) {
  // Two parameters with identical gradients but different weight norms
  // must receive different update magnitudes (layer-wise adaptation).
  Parameter small = make_param({0.01f});
  Parameter large = make_param({10.f});
  small.grad[0] = 1.f;
  large.grad[0] = 1.f;
  optim::Lars opt({&small, &large}, 1.0, /*momentum=*/0.0,
                  /*weight_decay=*/0.0, /*trust=*/0.001);
  const float s0 = small.value[0], l0 = large.value[0];
  opt.step();
  const float ds = std::abs(small.value[0] - s0);
  const float dl = std::abs(large.value[0] - l0);
  EXPECT_GT(dl, ds * 100.f);
}

TEST(Lars, TrainsLinearClassifierOnBlobs) {
  // Two well-separated Gaussian blobs; a LARS-trained linear layer must
  // reach high accuracy (this is the linear-probing optimizer).
  Rng rng(7);
  const int n = 128, dim = 8;
  Tensor x({n, dim});
  std::vector<i64> labels(n);
  for (int i = 0; i < n; ++i) {
    const i64 y = i % 2;
    labels[static_cast<size_t>(i)] = y;
    for (int d = 0; d < dim; ++d) {
      x.at({i, d}) = static_cast<float>(rng.normal((y == 0 ? -1.0 : 1.0), 0.5));
    }
  }
  nn::Linear clf("clf", dim, 2, rng);
  optim::Lars opt(clf.parameters(), 0.1, 0.9, 0.0, 0.01);
  for (int epoch = 0; epoch < 60; ++epoch) {
    opt.zero_grad();
    Tensor logits = clf.forward(x);
    auto ce = ops::softmax_cross_entropy(logits, labels);
    clf.backward(ops::softmax_cross_entropy_backward(ce, labels));
    opt.step();
  }
  Tensor logits = clf.forward(x);
  EXPECT_GT(ops::topk_accuracy(logits, labels, 1), 0.95);
}

TEST(Schedule, WarmupRampsLinearly) {
  const double base = 1.0;
  EXPECT_NEAR(optim::cosine_warmup_lr(base, 0, 10, 100), 0.1, 1e-9);
  EXPECT_NEAR(optim::cosine_warmup_lr(base, 4, 10, 100), 0.5, 1e-9);
  EXPECT_NEAR(optim::cosine_warmup_lr(base, 9, 10, 100), 1.0, 1e-9);
}

TEST(Schedule, CosineDecaysToMinLr) {
  const double base = 1.0, min_lr = 0.05;
  EXPECT_NEAR(optim::cosine_warmup_lr(base, 10, 10, 110, min_lr), base, 1e-9);
  EXPECT_NEAR(optim::cosine_warmup_lr(base, 110, 10, 110, min_lr), min_lr,
              1e-9);
  // Monotone decreasing after warmup.
  double prev = base + 1;
  for (i64 s = 10; s <= 110; s += 10) {
    const double lr = optim::cosine_warmup_lr(base, s, 10, 110, min_lr);
    EXPECT_LT(lr, prev + 1e-12);
    prev = lr;
  }
}

TEST(Schedule, NoWarmupStartsAtBase) {
  EXPECT_NEAR(optim::cosine_warmup_lr(2.0, 0, 0, 100), 2.0, 1e-9);
}

}  // namespace
}  // namespace geofm
