// Elastic in-run failure recovery: shrink-and-continue supervisor tests.
//
// The load-bearing acceptance check is *bitwise* trajectory equality: a
// 4-rank run that loses a rank mid-flight must continue at world 3 with
// exactly the losses a fresh 3-rank run resumed from the same checkpoint
// would produce. Everything the supervisor does — quarantine, re-form,
// reshard-restore, loader rescale — is behind that one float comparison.
#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "comm/communicator.hpp"
#include "comm/fault.hpp"
#include "data/datasets.hpp"
#include "models/mae.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/fsdp.hpp"
#include "train/distributed.hpp"
#include "train/elastic.hpp"

namespace geofm {
namespace {

using comm::Communicator;
using comm::run_ranks;
using parallel::Fsdp;
using parallel::FsdpOptions;
using parallel::ShardingStrategy;
namespace fs = std::filesystem;

models::MaeConfig elastic_mae_cfg() {
  models::ViTConfig enc{.name = "t", .width = 16, .depth = 3, .mlp_dim = 32,
                        .heads = 2, .img_size = 16, .patch_size = 4,
                        .in_channels = 3};
  return models::mae_for(enc);
}

std::string fresh_root(const std::string& name) {
  const std::string root = "/tmp/" + name;
  fs::remove_all(root);
  ckpt::reset_save_state(root);
  return root;
}

train::ElasticConfig base_config(const std::string& ckpt_root) {
  train::ElasticConfig cfg;
  cfg.model = elastic_mae_cfg();
  cfg.model_seed = 42;
  cfg.world = 4;
  cfg.fsdp.strategy = ShardingStrategy::kFullShard;
  cfg.train.steps = 8;
  cfg.train.global_batch = 12;  // divides 4, 3, and 2 — shrink-friendly
  cfg.train.lr = 1e-3;
  cfg.train.seed = 5;
  cfg.train.loader_workers = 0;
  cfg.train.verbose = false;
  cfg.train.checkpoint_every_n_steps = 3;
  cfg.train.checkpoint_dir = ckpt_root;
  cfg.train.async_checkpoint = false;  // saves land before the next fault
  return cfg;
}

// The supervisor's determinism claim, checked from the outside: a fresh
// `world`-rank run resumed from `from` (no supervisor, no faults, no
// saves) — the trajectory the post-recovery attempt must equal bitwise.
std::vector<float> fresh_resumed_losses(int world, const std::string& from,
                                        const train::ElasticConfig& ecfg,
                                        const data::SceneDataset& corpus) {
  std::vector<float> losses;
  std::mutex mu;
  run_ranks(world, [&](Communicator& c) {
    Rng rng(ecfg.model_seed);
    models::MAE mae(ecfg.model, rng);
    Fsdp fsdp(mae, c, ecfg.fsdp);
    auto tc = ecfg.train;
    tc.checkpoint_every_n_steps = 0;
    tc.checkpoint_dir.clear();
    tc.resume_from = from;
    auto r = train::pretrain_mae_distributed(mae, fsdp, c, corpus, tc);
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      losses = r.step_losses;
    }
  });
  return losses;
}

void expect_bitwise(const std::vector<float>& got,
                    const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "diverged at post-recovery step " << i;
  }
}

// ----- the acceptance scenario: kill one rank, shrink 4 -> 3 -----------------

TEST(ElasticRecovery, KillMidStepShrinksAndContinues) {
  const std::string root = fresh_root("geofm_test_elastic_kill");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  // Saves publish after steps 2 and 5; the kill fires at step 5's fault
  // point (before its save), so recovery resumes from step 2's snapshot.
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 5));

  obs::TraceRecorder::instance().enable();
  auto& registry = obs::MetricsRegistry::instance();
  const double count_before = registry.counter("recovery.count").value();

  const auto res = train::run_elastic(cfg, corpus);

  ASSERT_EQ(res.attempts.size(), 2u);
  EXPECT_EQ(res.recoveries, 1);
  EXPECT_GT(res.recovery_seconds, 0.0);

  const auto& a0 = res.attempts[0];
  EXPECT_EQ(a0.world, 4);
  EXPECT_FALSE(a0.completed);
  EXPECT_EQ(a0.quarantined, (std::vector<int>{1}));
  EXPECT_EQ(a0.faults_fired, 1);
  EXPECT_NE(a0.failure.find("killed by fault plan"), std::string::npos);

  const auto& a1 = res.attempts[1];
  EXPECT_EQ(a1.world, 3);
  EXPECT_TRUE(a1.completed);
  EXPECT_EQ(a1.start_step, 3);
  ASSERT_EQ(a1.losses.size(), 5u);
  ASSERT_FALSE(a1.resumed_from.empty());
  EXPECT_EQ(res.final_identities, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(res.final_result.start_step, 3);

  // The heart of the feature: post-recovery losses are bitwise the
  // trajectory of a fresh 3-rank run resumed from the same checkpoint.
  expect_bitwise(a1.losses,
                 fresh_resumed_losses(3, a1.resumed_from, cfg, corpus));

  // Recovery is observable: metrics counted and recover.* spans recorded.
  EXPECT_GE(registry.counter("recovery.count").value(), count_before + 1);
  bool saw_detect = false, saw_reform = false, saw_reshard = false;
  for (const auto& e : obs::TraceRecorder::instance().snapshot()) {
    const std::string name = e.name ? e.name : "";
    saw_detect |= name == "recover.detect";
    saw_reform |= name == "recover.reform";
    saw_reshard |= name == "recover.reshard";
  }
  EXPECT_TRUE(saw_detect);
  EXPECT_TRUE(saw_reform);
  EXPECT_TRUE(saw_reshard);
  fs::remove_all(root);
}

// ----- two faults in one run: 4 -> 3 -> 2 ------------------------------------

TEST(ElasticRecovery, TwoFaultsShrinkTwice) {
  const std::string root = fresh_root("geofm_test_elastic_two");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 9;
  cfg.train.checkpoint_every_n_steps = 2;  // saves after steps 1,3,5,7
  // Identity 2 dies at step 3 (before that step's save -> resume at 2);
  // identity 0 dies at step 6 in the shrunken world (latest save then is
  // step 5 -> resume at 6). Unfired events carry across attempts.
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(2, 3));
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(0, 6));

  const auto res = train::run_elastic(cfg, corpus);

  ASSERT_EQ(res.attempts.size(), 3u);
  EXPECT_EQ(res.recoveries, 2);
  EXPECT_EQ(res.attempts[0].world, 4);
  EXPECT_EQ(res.attempts[0].quarantined, (std::vector<int>{2}));
  EXPECT_EQ(res.attempts[1].world, 3);
  // start_step is only recorded for completing attempts; the middle
  // attempt's provenance shows in what it resumed from (step 1 -> step 2).
  EXPECT_NE(res.attempts[1].resumed_from.find("step_00000001"),
            std::string::npos);
  EXPECT_FALSE(res.attempts[1].completed);
  EXPECT_EQ(res.attempts[1].quarantined, (std::vector<int>{0}));

  const auto& last = res.attempts[2];
  EXPECT_EQ(last.world, 2);
  EXPECT_TRUE(last.completed);
  EXPECT_EQ(last.start_step, 6);
  ASSERT_EQ(last.losses.size(), 3u);
  EXPECT_EQ(res.final_identities, (std::vector<int>{1, 3}));

  expect_bitwise(last.losses,
                 fresh_resumed_losses(2, last.resumed_from, cfg, corpus));
  fs::remove_all(root);
}

// ----- a stall (not a crash) is diagnosed and quarantined --------------------

TEST(ElasticRecovery, StallQuarantinedByWatchdog) {
  const std::string root = fresh_root("geofm_test_elastic_stall");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 6;
  cfg.train.checkpoint_every_n_steps = 2;
  // Rank 2 goes silent for 2.5s mid-step-4; nobody crashes. Without the
  // watchdog this deadlocks — with it, the stall becomes a diagnosed
  // abort and rank 2 is quarantined like a dead rank.
  cfg.faults.events.push_back(comm::FaultEvent::stall_at_step(2, 4, 2.5));
  cfg.watchdog_deadline_seconds = 0.75;

  const auto res = train::run_elastic(cfg, corpus);

  ASSERT_EQ(res.attempts.size(), 2u);
  EXPECT_EQ(res.attempts[0].quarantined, (std::vector<int>{2}));
  EXPECT_NE(res.attempts[0].failure.find("stalled"), std::string::npos);
  EXPECT_EQ(res.attempts[1].world, 3);
  EXPECT_TRUE(res.attempts[1].completed);
  EXPECT_EQ(res.attempts[1].start_step, 4);
  expect_bitwise(
      res.attempts[1].losses,
      fresh_resumed_losses(3, res.attempts[1].resumed_from, cfg, corpus));
  fs::remove_all(root);
}

// ----- fault matrix: every FaultPlan kind x sharding strategy ----------------

struct MatrixCase {
  const char* label;
  comm::FaultEvent::Kind kind;
  ShardingStrategy strategy;
};

class ElasticFaultMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ElasticFaultMatrix, RunsToCompletion) {
  const auto p = GetParam();
  const std::string root =
      fresh_root(std::string("geofm_test_elastic_matrix_") + p.label);
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 6;
  cfg.train.checkpoint_every_n_steps = 2;
  cfg.fsdp.strategy = p.strategy;
  cfg.watchdog_deadline_seconds = 0.75;

  switch (p.kind) {
    case comm::FaultEvent::Kind::kKill:
      cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 3));
      break;
    case comm::FaultEvent::Kind::kStall:
      cfg.faults.events.push_back(comm::FaultEvent::stall_at_step(1, 3, 2.5));
      break;
    case comm::FaultEvent::Kind::kSlowRank:
      // Latency, not death: the run must complete at full world with no
      // watchdog false positive (delays stay far under the deadline).
      cfg.faults.events.push_back(comm::FaultEvent::slow_rank(2, 2, 0.005, 6));
      break;
    case comm::FaultEvent::Kind::kCorrupt:
      cfg.faults.seed = 7;
      cfg.faults.events.push_back(comm::FaultEvent::corrupt_at_post(1, 3));
      break;
    case comm::FaultEvent::Kind::kCallback:
      break;  // not part of the matrix (covered by the fault_hook shim test)
  }

  const auto res = train::run_elastic(cfg, corpus);

  const bool lethal = p.kind == comm::FaultEvent::Kind::kKill ||
                      p.kind == comm::FaultEvent::Kind::kStall;
  if (lethal) {
    ASSERT_EQ(res.attempts.size(), 2u);
    EXPECT_EQ(res.recoveries, 1);
    EXPECT_EQ(res.attempts[0].quarantined, (std::vector<int>{1}));
    EXPECT_EQ(res.attempts[1].world, 3);
    EXPECT_TRUE(res.attempts[1].completed);
  } else {
    // Non-lethal faults degrade or perturb the run but never shrink it.
    ASSERT_EQ(res.attempts.size(), 1u);
    EXPECT_EQ(res.recoveries, 0);
    EXPECT_EQ(res.attempts[0].world, 4);
    EXPECT_TRUE(res.attempts[0].completed);
    EXPECT_EQ(res.attempts[0].faults_fired, 1);
    EXPECT_EQ(res.final_result.step_losses.size(), 6u);
  }
  fs::remove_all(root);
}

INSTANTIATE_TEST_SUITE_P(
    KindsByStrategy, ElasticFaultMatrix,
    ::testing::Values(
        MatrixCase{"kill_ddp", comm::FaultEvent::Kind::kKill,
                   ShardingStrategy::kNoShard},
        MatrixCase{"kill_fsdp", comm::FaultEvent::Kind::kKill,
                   ShardingStrategy::kFullShard},
        MatrixCase{"stall_ddp", comm::FaultEvent::Kind::kStall,
                   ShardingStrategy::kNoShard},
        MatrixCase{"stall_fsdp", comm::FaultEvent::Kind::kStall,
                   ShardingStrategy::kFullShard},
        MatrixCase{"slow_ddp", comm::FaultEvent::Kind::kSlowRank,
                   ShardingStrategy::kNoShard},
        MatrixCase{"slow_fsdp", comm::FaultEvent::Kind::kSlowRank,
                   ShardingStrategy::kFullShard},
        MatrixCase{"corrupt_ddp", comm::FaultEvent::Kind::kCorrupt,
                   ShardingStrategy::kNoShard},
        MatrixCase{"corrupt_fsdp", comm::FaultEvent::Kind::kCorrupt,
                   ShardingStrategy::kFullShard}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return info.param.label;
    });

// ----- supervisor edge cases -------------------------------------------------

TEST(ElasticRecovery, NoFaultsIsAPlainRun) {
  const std::string root = fresh_root("geofm_test_elastic_clean");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 4;

  const auto res = train::run_elastic(cfg, corpus);
  ASSERT_EQ(res.attempts.size(), 1u);
  EXPECT_EQ(res.recoveries, 0);
  EXPECT_TRUE(res.attempts[0].completed);
  EXPECT_TRUE(res.attempts[0].resumed_from.empty());
  EXPECT_EQ(res.final_identities, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(res.final_result.step_losses.size(), 4u);
  fs::remove_all(root);
}

TEST(ElasticRecovery, GivesUpBelowMinWorld) {
  const std::string root = fresh_root("geofm_test_elastic_minworld");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 6;
  cfg.min_world = 4;  // any quarantine drops below this
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(3, 2));
  EXPECT_THROW(train::run_elastic(cfg, corpus), Error);
  fs::remove_all(root);
}

TEST(ElasticRecovery, FaultBeforeFirstSaveRestartsFromScratch) {
  const std::string root = fresh_root("geofm_test_elastic_nosave");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 5;
  cfg.train.checkpoint_every_n_steps = 3;  // first save after step 2...
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(0, 1));  // ...dies first

  const auto res = train::run_elastic(cfg, corpus);
  ASSERT_EQ(res.attempts.size(), 2u);
  EXPECT_TRUE(res.attempts[1].resumed_from.empty());
  EXPECT_EQ(res.attempts[1].start_step, 0);
  EXPECT_EQ(res.attempts[1].world, 3);
  EXPECT_TRUE(res.attempts[1].completed);
  EXPECT_EQ(res.final_result.step_losses.size(), 5u);
  fs::remove_all(root);
}

}  // namespace
}  // namespace geofm
