// Elastic in-run failure recovery: shrink-and-continue supervisor tests.
//
// The load-bearing acceptance check is *bitwise* trajectory equality: a
// 4-rank run that loses a rank mid-flight must continue at world 3 with
// exactly the losses a fresh 3-rank run resumed from the same checkpoint
// would produce. Everything the supervisor does — quarantine, re-form,
// reshard-restore, loader rescale — is behind that one float comparison.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "comm/communicator.hpp"
#include "comm/fault.hpp"
#include "data/datasets.hpp"
#include "models/mae.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/fsdp.hpp"
#include "train/distributed.hpp"
#include "train/elastic.hpp"

namespace geofm {
namespace {

using comm::Communicator;
using comm::run_ranks;
using parallel::Fsdp;
using parallel::FsdpOptions;
using parallel::ShardingStrategy;
namespace fs = std::filesystem;

models::MaeConfig elastic_mae_cfg() {
  models::ViTConfig enc{.name = "t", .width = 16, .depth = 3, .mlp_dim = 32,
                        .heads = 2, .img_size = 16, .patch_size = 4,
                        .in_channels = 3};
  return models::mae_for(enc);
}

std::string fresh_root(const std::string& name) {
  const std::string root = "/tmp/" + name;
  fs::remove_all(root);
  ckpt::reset_save_state(root);
  return root;
}

train::ElasticConfig base_config(const std::string& ckpt_root) {
  train::ElasticConfig cfg;
  cfg.model = elastic_mae_cfg();
  cfg.model_seed = 42;
  cfg.world = 4;
  cfg.fsdp.strategy = ShardingStrategy::kFullShard;
  cfg.train.steps = 8;
  cfg.train.global_batch = 12;  // divides 4, 3, and 2 — shrink-friendly
  cfg.train.lr = 1e-3;
  cfg.train.seed = 5;
  cfg.train.loader_workers = 0;
  cfg.train.verbose = false;
  cfg.train.checkpoint_every_n_steps = 3;
  cfg.train.checkpoint_dir = ckpt_root;
  cfg.train.async_checkpoint = false;  // saves land before the next fault
  return cfg;
}

// The supervisor's determinism claim, checked from the outside: a fresh
// `world`-rank run resumed from `from` (no supervisor, no faults, no
// saves) — the trajectory the post-recovery attempt must equal bitwise.
std::vector<float> fresh_resumed_losses(int world, const std::string& from,
                                        const train::ElasticConfig& ecfg,
                                        const data::SceneDataset& corpus) {
  std::vector<float> losses;
  std::mutex mu;
  run_ranks(world, [&](Communicator& c) {
    Rng rng(ecfg.model_seed);
    models::MAE mae(ecfg.model, rng);
    Fsdp fsdp(mae, c, ecfg.fsdp);
    auto tc = ecfg.train;
    tc.checkpoint_every_n_steps = 0;
    tc.checkpoint_dir.clear();
    tc.resume_from = from;
    auto r = train::pretrain_mae_distributed(mae, fsdp, c, corpus, tc);
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      losses = r.step_losses;
    }
  });
  return losses;
}

void expect_bitwise(const std::vector<float>& got,
                    const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "diverged at post-recovery step " << i;
  }
}

// ----- the acceptance scenario: kill one rank, shrink 4 -> 3 -----------------

TEST(ElasticRecovery, KillMidStepShrinksAndContinues) {
  const std::string root = fresh_root("geofm_test_elastic_kill");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  // Saves publish after steps 2 and 5; the kill fires at step 5's fault
  // point (before its save), so recovery resumes from step 2's snapshot.
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 5));

  obs::TraceRecorder::instance().enable();
  auto& registry = obs::MetricsRegistry::instance();
  const double count_before = registry.counter("recovery.count").value();

  const auto res = train::run_elastic(cfg, corpus);

  ASSERT_EQ(res.attempts.size(), 2u);
  EXPECT_EQ(res.recoveries, 1);
  EXPECT_GT(res.recovery_seconds, 0.0);

  const auto& a0 = res.attempts[0];
  EXPECT_EQ(a0.world, 4);
  EXPECT_FALSE(a0.completed);
  EXPECT_EQ(a0.quarantined, (std::vector<int>{1}));
  EXPECT_EQ(a0.faults_fired, 1);
  EXPECT_NE(a0.failure.find("killed by fault plan"), std::string::npos);

  const auto& a1 = res.attempts[1];
  EXPECT_EQ(a1.world, 3);
  EXPECT_TRUE(a1.completed);
  EXPECT_EQ(a1.start_step, 3);
  ASSERT_EQ(a1.losses.size(), 5u);
  ASSERT_FALSE(a1.resumed_from.empty());
  EXPECT_EQ(res.final_identities, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(res.final_result.start_step, 3);

  // The heart of the feature: post-recovery losses are bitwise the
  // trajectory of a fresh 3-rank run resumed from the same checkpoint.
  expect_bitwise(a1.losses,
                 fresh_resumed_losses(3, a1.resumed_from, cfg, corpus));

  // Recovery is observable: metrics counted and recover.* spans recorded.
  EXPECT_GE(registry.counter("recovery.count").value(), count_before + 1);
  bool saw_detect = false, saw_reform = false, saw_reshard = false;
  for (const auto& e : obs::TraceRecorder::instance().snapshot()) {
    const std::string name = e.name ? e.name : "";
    saw_detect |= name == "recover.detect";
    saw_reform |= name == "recover.reform";
    saw_reshard |= name == "recover.reshard";
  }
  EXPECT_TRUE(saw_detect);
  EXPECT_TRUE(saw_reform);
  EXPECT_TRUE(saw_reshard);
  fs::remove_all(root);
}

// ----- two faults in one run: 4 -> 3 -> 2 ------------------------------------

TEST(ElasticRecovery, TwoFaultsShrinkTwice) {
  const std::string root = fresh_root("geofm_test_elastic_two");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 9;
  cfg.train.checkpoint_every_n_steps = 2;  // saves after steps 1,3,5,7
  // Identity 2 dies at step 3 (before that step's save -> resume at 2);
  // identity 0 dies at step 6 in the shrunken world (latest save then is
  // step 5 -> resume at 6). Unfired events carry across attempts.
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(2, 3));
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(0, 6));

  const auto res = train::run_elastic(cfg, corpus);

  ASSERT_EQ(res.attempts.size(), 3u);
  EXPECT_EQ(res.recoveries, 2);
  EXPECT_EQ(res.attempts[0].world, 4);
  EXPECT_EQ(res.attempts[0].quarantined, (std::vector<int>{2}));
  EXPECT_EQ(res.attempts[1].world, 3);
  // start_step is only recorded for completing attempts; the middle
  // attempt's provenance shows in what it resumed from (step 1 -> step 2).
  EXPECT_NE(res.attempts[1].resumed_from.find("step_00000001"),
            std::string::npos);
  EXPECT_FALSE(res.attempts[1].completed);
  EXPECT_EQ(res.attempts[1].quarantined, (std::vector<int>{0}));

  const auto& last = res.attempts[2];
  EXPECT_EQ(last.world, 2);
  EXPECT_TRUE(last.completed);
  EXPECT_EQ(last.start_step, 6);
  ASSERT_EQ(last.losses.size(), 3u);
  EXPECT_EQ(res.final_identities, (std::vector<int>{1, 3}));

  expect_bitwise(last.losses,
                 fresh_resumed_losses(2, last.resumed_from, cfg, corpus));
  fs::remove_all(root);
}

// ----- a stall (not a crash) is diagnosed and quarantined --------------------

TEST(ElasticRecovery, StallQuarantinedByWatchdog) {
  const std::string root = fresh_root("geofm_test_elastic_stall");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 6;
  cfg.train.checkpoint_every_n_steps = 2;
  // Rank 2 goes silent for 2.5s mid-step-4; nobody crashes. Without the
  // watchdog this deadlocks — with it, the stall becomes a diagnosed
  // abort and rank 2 is quarantined like a dead rank.
  cfg.faults.events.push_back(comm::FaultEvent::stall_at_step(2, 4, 2.5));
  cfg.watchdog_deadline_seconds = 0.75;

  const auto res = train::run_elastic(cfg, corpus);

  ASSERT_EQ(res.attempts.size(), 2u);
  EXPECT_EQ(res.attempts[0].quarantined, (std::vector<int>{2}));
  EXPECT_NE(res.attempts[0].failure.find("stalled"), std::string::npos);
  EXPECT_EQ(res.attempts[1].world, 3);
  EXPECT_TRUE(res.attempts[1].completed);
  EXPECT_EQ(res.attempts[1].start_step, 4);
  expect_bitwise(
      res.attempts[1].losses,
      fresh_resumed_losses(3, res.attempts[1].resumed_from, cfg, corpus));
  fs::remove_all(root);
}

// ----- fault matrix: every FaultPlan kind x sharding strategy ----------------

struct MatrixCase {
  const char* label;
  comm::FaultEvent::Kind kind;
  ShardingStrategy strategy;
};

class ElasticFaultMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ElasticFaultMatrix, RunsToCompletion) {
  const auto p = GetParam();
  const std::string root =
      fresh_root(std::string("geofm_test_elastic_matrix_") + p.label);
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 6;
  cfg.train.checkpoint_every_n_steps = 2;
  cfg.fsdp.strategy = p.strategy;
  cfg.watchdog_deadline_seconds = 0.75;

  switch (p.kind) {
    case comm::FaultEvent::Kind::kKill:
      cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 3));
      break;
    case comm::FaultEvent::Kind::kStall:
      cfg.faults.events.push_back(comm::FaultEvent::stall_at_step(1, 3, 2.5));
      break;
    case comm::FaultEvent::Kind::kSlowRank:
      // Latency, not death: the run must complete at full world with no
      // watchdog false positive (delays stay far under the deadline).
      cfg.faults.events.push_back(comm::FaultEvent::slow_rank(2, 2, 0.005, 6));
      break;
    case comm::FaultEvent::Kind::kCorrupt:
      cfg.faults.seed = 7;
      cfg.faults.events.push_back(comm::FaultEvent::corrupt_at_post(1, 3));
      break;
    case comm::FaultEvent::Kind::kCallback:
    default:  // IO kinds: covered by the StorageFaults suite, not here
      break;
  }

  const auto res = train::run_elastic(cfg, corpus);

  const bool lethal = p.kind == comm::FaultEvent::Kind::kKill ||
                      p.kind == comm::FaultEvent::Kind::kStall;
  if (lethal) {
    ASSERT_EQ(res.attempts.size(), 2u);
    EXPECT_EQ(res.recoveries, 1);
    EXPECT_EQ(res.attempts[0].quarantined, (std::vector<int>{1}));
    EXPECT_EQ(res.attempts[1].world, 3);
    EXPECT_TRUE(res.attempts[1].completed);
  } else {
    // Non-lethal faults degrade or perturb the run but never shrink it.
    ASSERT_EQ(res.attempts.size(), 1u);
    EXPECT_EQ(res.recoveries, 0);
    EXPECT_EQ(res.attempts[0].world, 4);
    EXPECT_TRUE(res.attempts[0].completed);
    EXPECT_EQ(res.attempts[0].faults_fired, 1);
    EXPECT_EQ(res.final_result.step_losses.size(), 6u);
  }
  fs::remove_all(root);
}

INSTANTIATE_TEST_SUITE_P(
    KindsByStrategy, ElasticFaultMatrix,
    ::testing::Values(
        MatrixCase{"kill_ddp", comm::FaultEvent::Kind::kKill,
                   ShardingStrategy::kNoShard},
        MatrixCase{"kill_fsdp", comm::FaultEvent::Kind::kKill,
                   ShardingStrategy::kFullShard},
        MatrixCase{"stall_ddp", comm::FaultEvent::Kind::kStall,
                   ShardingStrategy::kNoShard},
        MatrixCase{"stall_fsdp", comm::FaultEvent::Kind::kStall,
                   ShardingStrategy::kFullShard},
        MatrixCase{"slow_ddp", comm::FaultEvent::Kind::kSlowRank,
                   ShardingStrategy::kNoShard},
        MatrixCase{"slow_fsdp", comm::FaultEvent::Kind::kSlowRank,
                   ShardingStrategy::kFullShard},
        MatrixCase{"corrupt_ddp", comm::FaultEvent::Kind::kCorrupt,
                   ShardingStrategy::kNoShard},
        MatrixCase{"corrupt_fsdp", comm::FaultEvent::Kind::kCorrupt,
                   ShardingStrategy::kFullShard}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return info.param.label;
    });

// ----- supervisor edge cases -------------------------------------------------

TEST(ElasticRecovery, NoFaultsIsAPlainRun) {
  const std::string root = fresh_root("geofm_test_elastic_clean");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 4;

  const auto res = train::run_elastic(cfg, corpus);
  ASSERT_EQ(res.attempts.size(), 1u);
  EXPECT_EQ(res.recoveries, 0);
  EXPECT_TRUE(res.attempts[0].completed);
  EXPECT_TRUE(res.attempts[0].resumed_from.empty());
  EXPECT_EQ(res.final_identities, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(res.final_result.step_losses.size(), 4u);
  fs::remove_all(root);
}

TEST(ElasticRecovery, GivesUpBelowMinWorld) {
  const std::string root = fresh_root("geofm_test_elastic_minworld");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 6;
  cfg.min_world = 4;  // any quarantine drops below this
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(3, 2));
  EXPECT_THROW(train::run_elastic(cfg, corpus), Error);
  fs::remove_all(root);
}

TEST(ElasticRecovery, FaultBeforeFirstSaveRestartsFromScratch) {
  const std::string root = fresh_root("geofm_test_elastic_nosave");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 5;
  cfg.train.checkpoint_every_n_steps = 3;  // first save after step 2...
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(0, 1));  // ...dies first

  const auto res = train::run_elastic(cfg, corpus);
  ASSERT_EQ(res.attempts.size(), 2u);
  EXPECT_TRUE(res.attempts[1].resumed_from.empty());
  EXPECT_EQ(res.attempts[1].start_step, 0);
  EXPECT_EQ(res.attempts[1].world, 3);
  EXPECT_TRUE(res.attempts[1].completed);
  EXPECT_EQ(res.final_result.step_losses.size(), 5u);
  fs::remove_all(root);
}

// ----- grow-back: re-admission at checkpoint boundaries ----------------------

// Like expect_bitwise, but `got` is a truncated attempt: compare against
// the leading steps of the reference trajectory.
void expect_bitwise_prefix(const std::vector<float>& got,
                           const std::vector<float>& want) {
  ASSERT_LE(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "diverged at step " << i;
  }
}

class ElasticGrowBack : public ::testing::TestWithParam<ShardingStrategy> {};

// The acceptance scenario: a kill plus divisibility trimming shrink
// 4 -> 2; at the next checkpoint boundary both quarantined identities
// pass probation and the run grows back to 4. The grown attempt must be
// bitwise the trajectory of a fresh 4-rank run resumed from the boundary
// checkpoint, and the armed watchdog must never flag the parked ranks.
TEST_P(ElasticGrowBack, ShrinkThenGrowBackBitwise) {
  const bool fsdp = GetParam() == ShardingStrategy::kFullShard;
  const std::string root = fresh_root(
      std::string("geofm_test_growback_") + (fsdp ? "fsdp" : "ddp"));
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.fsdp.strategy = GetParam();
  cfg.train.steps = 9;
  cfg.train.global_batch = 8;  // divides 4 and 2 but not 3: the kill of
                               // identity 1 trims identity 3 too (4 -> 2)
  cfg.train.loader_workers = 1;  // resume overlaps restore with prefetch
  cfg.watchdog_deadline_seconds = 0.75;
  cfg.readmission.readmit_quarantined = true;
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 4));

  obs::TraceRecorder::instance().enable();
  auto& registry = obs::MetricsRegistry::instance();
  const double readmits_before = registry.counter("readmit.count").value();

  const auto res = train::run_elastic(cfg, corpus);

  ASSERT_EQ(res.attempts.size(), 3u);
  EXPECT_EQ(res.recoveries, 1);
  EXPECT_EQ(res.readmissions, 1);
  EXPECT_TRUE(res.probation_rejected.empty());

  const auto& a0 = res.attempts[0];
  EXPECT_EQ(a0.world, 4);
  EXPECT_FALSE(a0.completed);
  EXPECT_EQ(a0.quarantined, (std::vector<int>{1, 3}));

  // The shrunken attempt stops at the boundary the driver checkpoints
  // (step 6 = next multiple of checkpoint_every_n_steps past resume).
  const auto& a1 = res.attempts[1];
  EXPECT_EQ(a1.world, 2);
  EXPECT_TRUE(a1.completed);
  EXPECT_TRUE(a1.truncated_for_growth);
  EXPECT_EQ(a1.start_step, 3);
  ASSERT_EQ(a1.losses.size(), 3u);
  EXPECT_NE(a1.resumed_from.find("step_00000002"), std::string::npos);

  const auto& a2 = res.attempts[2];
  EXPECT_EQ(a2.world, 4);
  EXPECT_TRUE(a2.completed);
  EXPECT_FALSE(a2.truncated_for_growth);
  EXPECT_EQ(a2.readmitted, (std::vector<int>{1, 3}));
  EXPECT_EQ(a2.start_step, 6);
  ASSERT_EQ(a2.losses.size(), 3u);
  EXPECT_NE(a2.resumed_from.find("step_00000005"), std::string::npos);
  EXPECT_EQ(res.final_identities, (std::vector<int>{0, 1, 2, 3}));

  // Bitwise parity on both sides of the boundary: the shrunken prefix
  // equals a fresh 2-rank resume, the grown tail a fresh 4-rank resume.
  expect_bitwise_prefix(
      a1.losses, fresh_resumed_losses(2, a1.resumed_from, cfg, corpus));
  expect_bitwise(a2.losses,
                 fresh_resumed_losses(4, a2.resumed_from, cfg, corpus));

  EXPECT_GE(registry.counter("readmit.count").value(), readmits_before + 1);
  bool saw_readmit = false, saw_overlap_arg = false;
  for (const auto& e : obs::TraceRecorder::instance().snapshot()) {
    const std::string name = e.name ? e.name : "";
    saw_readmit |= name == "recover.readmit";
    // Restore/fetch overlap is accounted on the reshard span: with
    // loader workers the resume primes the epoch before restoring.
    if (name == "recover.reshard" && e.arg_name != nullptr &&
        std::string(e.arg_name) == "loader_overlap" && e.arg == 1) {
      saw_overlap_arg = true;
    }
  }
  EXPECT_TRUE(saw_readmit);
  EXPECT_TRUE(saw_overlap_arg);
  fs::remove_all(root);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ElasticGrowBack,
    ::testing::Values(ShardingStrategy::kNoShard,
                      ShardingStrategy::kFullShard),
    [](const ::testing::TestParamInfo<ShardingStrategy>& info) {
      return info.param == ShardingStrategy::kFullShard ? "full_shard"
                                                        : "ddp";
    });

// A spare identity that was never in the initial world joins at the
// boundary (replacement node), and the grown run is still bitwise a
// fresh 4-rank resume.
TEST(ElasticGrowBackScenarios, ReplacementIdentityJoins) {
  const std::string root = fresh_root("geofm_test_growback_spare");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 9;
  cfg.readmission.spare_identities = 1;  // identity 4, parked from launch
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 4));

  const auto res = train::run_elastic(cfg, corpus);

  ASSERT_EQ(res.attempts.size(), 3u);
  EXPECT_EQ(res.attempts[0].quarantined, (std::vector<int>{1}));
  EXPECT_EQ(res.attempts[1].world, 3);
  EXPECT_TRUE(res.attempts[1].truncated_for_growth);
  const auto& last = res.attempts[2];
  EXPECT_EQ(last.world, 4);
  EXPECT_EQ(last.readmitted, (std::vector<int>{4}));
  EXPECT_TRUE(last.completed);
  // The dead identity stays retired; the spare takes its slot.
  EXPECT_EQ(res.final_identities, (std::vector<int>{0, 2, 3, 4}));
  expect_bitwise(last.losses,
                 fresh_resumed_losses(4, last.resumed_from, cfg, corpus));
  fs::remove_all(root);
}

// A returning rank that hangs in its health check is re-quarantined by
// the probation watchdog instead of stalling the run; training finishes
// at the shrunken world.
TEST(ElasticGrowBackScenarios, FlakyReturningRankRequarantined) {
  const std::string root = fresh_root("geofm_test_growback_flaky");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 9;
  cfg.readmission.readmit_quarantined = true;
  cfg.readmission.probation_deadline_seconds = 0.75;
  cfg.readmission.probation_hook = [](int identity) {
    if (identity == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2500));
    }
  };
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 4));

  const auto res = train::run_elastic(cfg, corpus);

  ASSERT_EQ(res.attempts.size(), 3u);
  EXPECT_EQ(res.readmissions, 0);
  EXPECT_EQ(res.probation_rejected, (std::vector<int>{1}));
  EXPECT_TRUE(res.attempts[1].truncated_for_growth);
  const auto& last = res.attempts[2];
  EXPECT_EQ(last.world, 3);  // nobody joined; the run stays shrunken
  EXPECT_TRUE(last.readmitted.empty());
  EXPECT_TRUE(last.completed);
  EXPECT_EQ(res.final_identities, (std::vector<int>{0, 2, 3}));
  expect_bitwise(last.losses,
                 fresh_resumed_losses(3, last.resumed_from, cfg, corpus));
  fs::remove_all(root);
}

// Regression: plan events targeting an identity outside the current
// attempt are held back, not dropped — a re-admitted identity's later
// faults must still fire. Identity 1 dies, rejoins, and dies again.
TEST(ElasticGrowBackScenarios, ReadmittedIdentityFaultsFireAgain) {
  const std::string root = fresh_root("geofm_test_growback_refault");
  auto corpus = data::million_aid_pretrain(64, 16);
  auto cfg = base_config(root);
  cfg.train.steps = 10;
  cfg.train.checkpoint_every_n_steps = 2;
  cfg.readmission.readmit_quarantined = true;
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 4));
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 7));

  const auto res = train::run_elastic(cfg, corpus);

  // kill -> boundary stop -> grow -> kill again -> boundary stop -> grow.
  ASSERT_EQ(res.attempts.size(), 5u);
  EXPECT_EQ(res.recoveries, 2);
  EXPECT_EQ(res.readmissions, 2);
  EXPECT_EQ(res.attempts[0].quarantined, (std::vector<int>{1}));
  EXPECT_EQ(res.attempts[2].readmitted, (std::vector<int>{1}));
  // The second event survived the attempt where identity 1 was absent
  // and fired after re-admission.
  EXPECT_EQ(res.attempts[2].quarantined, (std::vector<int>{1}));
  EXPECT_EQ(res.attempts[2].faults_fired, 1);
  EXPECT_EQ(res.attempts[4].readmitted, (std::vector<int>{1}));
  ASSERT_EQ(res.fired_plan.events.size(), 2u);
  EXPECT_EQ(res.fired_plan.events[0].rank, 1);
  EXPECT_EQ(res.fired_plan.events[1].rank, 1);
  EXPECT_TRUE(res.attempts[4].completed);
  EXPECT_EQ(res.final_identities, (std::vector<int>{0, 1, 2, 3}));
  expect_bitwise(
      res.attempts[4].losses,
      fresh_resumed_losses(4, res.attempts[4].resumed_from, cfg, corpus));
  fs::remove_all(root);
}

// ----- FaultPlan record/replay: the realized schedule re-runs bitwise --------

TEST(FaultTrace, ElasticRunReplaysBitwise) {
  auto corpus = data::million_aid_pretrain(64, 16);
  const std::string root1 = fresh_root("geofm_test_replay_record");
  auto cfg = base_config(root1);
  cfg.faults.seed = 21;
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(1, 5));
  // An event that never fires (step past the end) must not appear in the
  // recorded plan.
  cfg.faults.events.push_back(comm::FaultEvent::kill_at_step(2, 99));
  const auto recorded = train::run_elastic(cfg, corpus);
  ASSERT_EQ(recorded.fired_plan.events.size(), 1u);
  EXPECT_EQ(recorded.fired_plan.seed, 21u);

  // Round-trip the realized schedule through JSON and drive a second run
  // with it: every attempt must replay bitwise.
  const std::string json = comm::plan_to_json(recorded.fired_plan);
  const std::string root2 = fresh_root("geofm_test_replay_play");
  auto cfg2 = base_config(root2);
  cfg2.faults = comm::plan_from_json(json);
  const auto replayed = train::run_elastic(cfg2, corpus);

  ASSERT_EQ(replayed.attempts.size(), recorded.attempts.size());
  for (size_t i = 0; i < recorded.attempts.size(); ++i) {
    const auto& want = recorded.attempts[i];
    const auto& got = replayed.attempts[i];
    EXPECT_EQ(got.world, want.world) << "attempt " << i;
    EXPECT_EQ(got.quarantined, want.quarantined) << "attempt " << i;
    expect_bitwise(got.losses, want.losses);
  }
  EXPECT_EQ(replayed.final_identities, recorded.final_identities);
  fs::remove_all(root1);
  fs::remove_all(root2);
}

}  // namespace
}  // namespace geofm
