// Tests for the augmentation transforms and their DataLoader integration.
#include <gtest/gtest.h>

#include "data/dataloader.hpp"
#include "data/transforms.hpp"

namespace geofm {
namespace {

Tensor seq_image(i64 c, i64 h, i64 w) {
  return Tensor::arange(c * h * w).view({c, h, w});
}

TEST(Transforms, HFlipIsInvolution) {
  Rng rng(1);
  Tensor img = Tensor::randn({3, 5, 7}, rng);
  Tensor once = data::hflip(img);
  EXPECT_FALSE(once.allclose(img, 1e-6f, 1e-6f));
  EXPECT_TRUE(data::hflip(once).allclose(img, 0.f, 0.f));
}

TEST(Transforms, VFlipIsInvolution) {
  Rng rng(2);
  Tensor img = Tensor::randn({3, 6, 4}, rng);
  EXPECT_TRUE(data::vflip(data::vflip(img)).allclose(img, 0.f, 0.f));
}

TEST(Transforms, HFlipMovesColumns) {
  Tensor img = seq_image(1, 2, 3);
  Tensor f = data::hflip(img);
  EXPECT_FLOAT_EQ(f.at({0, 0, 0}), 2.f);
  EXPECT_FLOAT_EQ(f.at({0, 0, 2}), 0.f);
  EXPECT_FLOAT_EQ(f.at({0, 1, 1}), 4.f);
}

TEST(Transforms, Rot90FourTimesIsIdentity) {
  Rng rng(3);
  Tensor img = Tensor::randn({3, 8, 8}, rng);
  Tensor r = img.clone();
  for (int i = 0; i < 4; ++i) r = data::rot90(r, 1);
  EXPECT_TRUE(r.allclose(img, 0.f, 0.f));
  // rot90(k=2) == hflip(vflip).
  EXPECT_TRUE(
      data::rot90(img, 2).allclose(data::hflip(data::vflip(img)), 0.f, 0.f));
  // Negative k normalizes.
  EXPECT_TRUE(data::rot90(img, -1).allclose(data::rot90(img, 3), 0.f, 0.f));
}

TEST(Transforms, Rot90RejectsNonSquareQuarterTurn) {
  Tensor img = Tensor::zeros({1, 2, 3});
  EXPECT_THROW(data::rot90(img, 1), Error);
  EXPECT_NO_THROW(data::rot90(img, 2));
}

TEST(Transforms, CropExtractsWindow) {
  Tensor img = seq_image(2, 4, 4);
  Tensor c = data::crop(img, 1, 2, 2, 2);
  EXPECT_EQ(c.shape(), (std::vector<i64>{2, 2, 2}));
  EXPECT_FLOAT_EQ(c.at({0, 0, 0}), img.at({0, 1, 2}));
  EXPECT_FLOAT_EQ(c.at({1, 1, 1}), img.at({1, 2, 3}));
  EXPECT_THROW(data::crop(img, 3, 3, 2, 2), Error);
}

TEST(Transforms, AugmentDeterministicPerRngStream) {
  Rng rng(4);
  Tensor img = Tensor::randn({3, 8, 8}, rng);
  data::AugmentOptions opts;
  opts.max_shift = 2;
  Rng a(42), b(42), c(43);
  Tensor r1 = data::augment(img, opts, a);
  Tensor r2 = data::augment(img, opts, b);
  EXPECT_TRUE(r1.allclose(r2, 0.f, 0.f));
  // A different stream almost surely differs.
  Tensor r3 = data::augment(img, opts, c);
  EXPECT_EQ(r1.shape(), r3.shape());
}

TEST(Transforms, AugmentPreservesShapeAndFiniteness) {
  Rng rng(5);
  Tensor img = Tensor::randn({3, 16, 16}, rng);
  data::AugmentOptions opts;
  opts.max_shift = 3;
  for (int i = 0; i < 20; ++i) {
    Rng r(static_cast<u64>(i));
    Tensor out = data::augment(img, opts, r);
    ASSERT_EQ(out.shape(), img.shape());
    ASSERT_TRUE(std::isfinite(out.sum()));
    // Flips/rotations preserve the multiset of values; with shift-reflect
    // the energy stays comparable.
    EXPECT_NEAR(out.norm(), img.norm(), 0.35f * img.norm());
  }
}

TEST(Transforms, DataLoaderAugmentationIsSchedulingInvariant) {
  auto ds = data::ucm(16, {.divisor = 10});
  auto collect = [&](int workers) {
    data::DataLoader::Options opts;
    opts.batch_size = 16;
    opts.n_workers = workers;
    opts.seed = 3;
    opts.enable_augment = true;
    opts.augment.max_shift = 1;
    data::DataLoader loader(ds, data::Split::kTrain, opts);
    loader.start_epoch(1);
    std::vector<float> pixels;
    while (auto b = loader.next()) {
      for (i64 i = 0; i < b->images.numel(); i += 97) {
        pixels.push_back(b->images[i]);
      }
    }
    return pixels;
  };
  EXPECT_EQ(collect(0), collect(3));
}

TEST(Transforms, DataLoaderAugmentationVariesByEpoch) {
  auto ds = data::ucm(16, {.divisor = 10});
  data::DataLoader::Options opts;
  opts.batch_size = 16;
  opts.n_workers = 0;
  opts.seed = 3;
  opts.shuffle = false;
  opts.enable_augment = true;
  data::DataLoader loader(ds, data::Split::kTrain, opts);

  auto first_batch = [&](i64 epoch) {
    loader.start_epoch(epoch);
    auto b = loader.next();
    return b->images.clone();
  };
  Tensor e0 = first_batch(0);
  Tensor e1 = first_batch(1);
  EXPECT_FALSE(e0.allclose(e1, 1e-6f, 1e-6f));
}

}  // namespace
}  // namespace geofm
