// FSDP/DDP runtime tests. The load-bearing property: training a model
// under ANY sharding strategy on k ranks (each with a slice of the global
// batch) must match single-rank training on the full batch, step for step.
// Also verifies the communication schedules per strategy/prefetch mode.
#include <gtest/gtest.h>

#include <map>

#include "comm/communicator.hpp"
#include "models/mae.hpp"
#include "optim/optimizer.hpp"
#include "parallel/ddp.hpp"
#include "parallel/fsdp.hpp"

namespace geofm {
namespace {

using comm::Communicator;
using comm::run_ranks;
using parallel::BackwardPrefetch;
using parallel::Fsdp;
using parallel::FsdpEvent;
using parallel::FsdpOptions;
using parallel::ShardingStrategy;

models::MaeConfig test_mae_cfg() {
  models::ViTConfig enc{.name = "t", .width = 16, .depth = 3, .mlp_dim = 32,
                        .heads = 2, .img_size = 16, .patch_size = 4,
                        .in_channels = 3};
  return models::mae_for(enc);
}

Tensor make_global_batch(i64 n, u64 seed) {
  Rng rng(seed);
  return Tensor::randn({n, 3, 16, 16}, rng, 0.5f);
}

Tensor batch_slice(const Tensor& global, i64 begin, i64 count) {
  const i64 per = global.numel() / global.dim(0);
  Tensor out({count, global.dim(1), global.dim(2), global.dim(3)});
  out.copy_(global.flat_view(begin * per, count * per));
  return out;
}

// Single-rank reference: full-batch training, plain module parameters.
std::vector<float> reference_params_after_training(i64 global_batch,
                                                   int steps) {
  Rng rng(42);
  models::MAE mae(test_mae_cfg(), rng);
  optim::AdamW opt(mae.parameters(), 1e-3, 0.9, 0.95, 1e-8, 0.01);
  Tensor batch = make_global_batch(global_batch, 777);
  for (int s = 0; s < steps; ++s) {
    Rng mask_rng(static_cast<u64>(9000 + s));
    opt.zero_grad();
    mae.forward(batch, mask_rng, /*sample_offset=*/0);
    mae.backward();
    opt.step();
  }
  std::vector<float> out;
  for (nn::Parameter* p : mae.parameters()) {
    for (i64 i = 0; i < p->numel(); ++i) out.push_back(p->value[i]);
  }
  return out;
}

// Distributed run: k ranks, each training its slice under `opts`.
// Returns rank 0's final full parameter vector.
std::vector<float> fsdp_params_after_training(int n_ranks, i64 global_batch,
                                              int steps,
                                              const FsdpOptions& opts) {
  GEOFM_CHECK(global_batch % n_ranks == 0);
  const i64 local = global_batch / n_ranks;
  std::vector<float> rank0_params;
  std::mutex mu;

  run_ranks(n_ranks, [&](Communicator& c) {
    Rng rng(42);  // identical init on every rank (broadcast double-checks)
    models::MAE mae(test_mae_cfg(), rng);
    Fsdp fsdp(mae, c, opts);
    optim::AdamW opt(fsdp.optimizer_parameters(), 1e-3, 0.9, 0.95, 1e-8,
                     0.01);
    Tensor global = make_global_batch(global_batch, 777);
    Tensor mine = batch_slice(global, c.rank() * local, local);

    for (int s = 0; s < steps; ++s) {
      Rng mask_rng(static_cast<u64>(9000 + s));
      fsdp.begin_step();
      mae.forward(mine, mask_rng, /*sample_offset=*/c.rank() * local);
      mae.backward();
      fsdp.end_backward();
      opt.step();
    }

    // Materialize full parameters for comparison.
    fsdp.gather_full_parameters();
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      rank0_params.clear();
      for (nn::Parameter* p : mae.module().parameters()) {
        for (i64 i = 0; i < p->numel(); ++i) {
          rank0_params.push_back(p->value[i]);
        }
      }
    }
    c.barrier();
  });
  return rank0_params;
}

void expect_params_close(const std::vector<float>& a,
                         const std::vector<float>& b, float tol) {
  ASSERT_EQ(a.size(), b.size());
  double max_err = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_err = std::max(max_err, static_cast<double>(std::fabs(a[i] - b[i])));
  }
  EXPECT_LT(max_err, tol) << "parameter divergence " << max_err;
}

struct StrategyCase {
  ShardingStrategy strategy;
  int hybrid_group;
  const char* label;
};

class FsdpEquivalence : public ::testing::TestWithParam<StrategyCase> {};

INSTANTIATE_TEST_SUITE_P(
    Strategies, FsdpEquivalence,
    ::testing::Values(
        StrategyCase{ShardingStrategy::kNoShard, 1, "no_shard"},
        StrategyCase{ShardingStrategy::kFullShard, 1, "full_shard"},
        StrategyCase{ShardingStrategy::kShardGradOp, 1, "shard_grad_op"},
        StrategyCase{ShardingStrategy::kHybridShard, 2, "hybrid_2"},
        StrategyCase{ShardingStrategy::kHybridShard, 1, "hybrid_1"},
        StrategyCase{ShardingStrategy::kHybridShard, 4, "hybrid_4_fullshard"}),
    [](const auto& info) { return info.param.label; });

TEST_P(FsdpEquivalence, MatchesSingleRankTraining) {
  const auto& p = GetParam();
  FsdpOptions opts;
  opts.strategy = p.strategy;
  opts.hybrid_group_size = p.hybrid_group;
  const auto ref = reference_params_after_training(8, 3);
  const auto got = fsdp_params_after_training(4, 8, 3, opts);
  // fp32 collectives reorder float sums; tolerance covers 3 AdamW steps.
  expect_params_close(got, ref, 2e-4f);
}

TEST(FsdpEquivalence, PrefetchModesAreNumericallyIdentical) {
  FsdpOptions a;
  a.strategy = ShardingStrategy::kFullShard;
  a.prefetch = BackwardPrefetch::kNone;
  FsdpOptions b = a;
  b.prefetch = BackwardPrefetch::kBackwardPre;
  FsdpOptions c = a;
  c.prefetch = BackwardPrefetch::kBackwardPost;
  const auto ra = fsdp_params_after_training(2, 4, 2, a);
  const auto rb = fsdp_params_after_training(2, 4, 2, b);
  const auto rc = fsdp_params_after_training(2, 4, 2, c);
  expect_params_close(ra, rb, 0.f + 1e-7f);
  expect_params_close(ra, rc, 0.f + 1e-7f);
}

// ----- schedule structure -----------------------------------------------------

std::map<FsdpEvent::Type, int> count_events(const std::vector<FsdpEvent>& ev) {
  std::map<FsdpEvent::Type, int> counts;
  for (const auto& e : ev) counts[e.type]++;
  return counts;
}

// Runs one FSDP step on 4 ranks and returns rank 0's recorded schedule.
std::vector<FsdpEvent> one_step_schedule(const FsdpOptions& opts,
                                         int n_ranks = 4) {
  std::vector<FsdpEvent> schedule;
  std::mutex mu;
  run_ranks(n_ranks, [&](Communicator& c) {
    Rng rng(1);
    models::MAE mae(test_mae_cfg(), rng);
    Fsdp fsdp(mae, c, opts);
    Tensor batch = make_global_batch(2, 5);
    Rng mask_rng(7);
    fsdp.begin_step();
    mae.forward(batch, mask_rng, 0);
    mae.backward();
    fsdp.end_backward();
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      schedule = fsdp.last_schedule();
    }
    c.barrier();
  });
  return schedule;
}

TEST(FsdpSchedule, FullShardGathersTwicePerUnitPerStep) {
  FsdpOptions opts;
  opts.strategy = ShardingStrategy::kFullShard;
  const auto schedule = one_step_schedule(opts);
  auto counts = count_events(schedule);
  // 5 stage units (3 enc + 2 dec) + root. Stages gather fwd + bwd; root
  // gathers once. Every unit reduce-scatters once.
  EXPECT_EQ(counts[FsdpEvent::Type::kAllGather], 5 * 2 + 1);
  EXPECT_EQ(counts[FsdpEvent::Type::kReduceScatter], 6);
  EXPECT_EQ(counts[FsdpEvent::Type::kAllReduce], 0);
}

TEST(FsdpSchedule, ShardGradOpGathersOncePerUnitPerStep) {
  FsdpOptions opts;
  opts.strategy = ShardingStrategy::kShardGradOp;
  const auto schedule = one_step_schedule(opts);
  auto counts = count_events(schedule);
  EXPECT_EQ(counts[FsdpEvent::Type::kAllGather], 6);  // every unit once
  EXPECT_EQ(counts[FsdpEvent::Type::kReduceScatter], 6);
  EXPECT_EQ(counts[FsdpEvent::Type::kAllReduce], 0);
}

TEST(FsdpSchedule, NoShardOnlyAllReduces) {
  FsdpOptions opts;
  opts.strategy = ShardingStrategy::kNoShard;
  const auto schedule = one_step_schedule(opts);
  auto counts = count_events(schedule);
  EXPECT_EQ(counts[FsdpEvent::Type::kAllGather], 0);
  EXPECT_EQ(counts[FsdpEvent::Type::kReduceScatter], 0);
  EXPECT_EQ(counts[FsdpEvent::Type::kAllReduce], 6);
}

TEST(FsdpSchedule, HybridDoesBothShardAndReplicaComm) {
  FsdpOptions opts;
  opts.strategy = ShardingStrategy::kHybridShard;
  opts.hybrid_group_size = 2;
  const auto schedule = one_step_schedule(opts);
  auto counts = count_events(schedule);
  EXPECT_EQ(counts[FsdpEvent::Type::kAllGather], 11);
  EXPECT_EQ(counts[FsdpEvent::Type::kReduceScatter], 6);
  EXPECT_EQ(counts[FsdpEvent::Type::kAllReduce], 6);  // replica groups
}

TEST(FsdpSchedule, BackwardPrePrefetchesBeforeReduce) {
  FsdpOptions opts;
  opts.strategy = ShardingStrategy::kFullShard;
  opts.prefetch = BackwardPrefetch::kBackwardPre;
  const auto schedule = one_step_schedule(opts);

  // Find the backward-phase gather of unit 3 (stage before last, 5 units:
  // last backward stage is 4). Under BACKWARD_PRE, the gather of unit 3
  // must appear BEFORE the reduce-scatter of unit 4.
  int gather3 = -1, reduce4 = -1;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const auto& e = schedule[i];
    if (e.type == FsdpEvent::Type::kReduceScatter && e.unit == 4) {
      reduce4 = static_cast<int>(i);
    }
    if (e.type == FsdpEvent::Type::kAllGather && e.unit == 3 && reduce4 < 0 &&
        i > 0) {
      // Track the LAST gather of unit 3 before reduce4 (the backward one).
      gather3 = static_cast<int>(i);
    }
  }
  ASSERT_GE(reduce4, 0);
  ASSERT_GE(gather3, 0);
  EXPECT_LT(gather3, reduce4);
}

TEST(FsdpSchedule, NoPrefetchGathersAfterReduce) {
  FsdpOptions opts;
  opts.strategy = ShardingStrategy::kFullShard;
  opts.prefetch = BackwardPrefetch::kNone;
  const auto schedule = one_step_schedule(opts);

  // Without prefetch, unit 3's backward gather comes after unit 4's
  // reduce-scatter.
  int reduce4 = -1;
  int gather3_after = -1;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const auto& e = schedule[i];
    if (e.type == FsdpEvent::Type::kReduceScatter && e.unit == 4) {
      reduce4 = static_cast<int>(i);
    }
    if (reduce4 >= 0 && e.type == FsdpEvent::Type::kAllGather && e.unit == 3) {
      gather3_after = static_cast<int>(i);
    }
  }
  ASSERT_GE(reduce4, 0);
  EXPECT_GT(gather3_after, reduce4);
}

TEST(FsdpSchedule, PrefetchRaisesInFlightPeak) {
  FsdpOptions none;
  none.strategy = ShardingStrategy::kFullShard;
  none.prefetch = BackwardPrefetch::kNone;
  FsdpOptions pre = none;
  pre.prefetch = BackwardPrefetch::kBackwardPre;

  int peak_none = 0, peak_pre = 0;
  run_ranks(2, [&](Communicator& c) {
    for (const auto* opts : {&none, &pre}) {
      Rng rng(1);
      models::MAE mae(test_mae_cfg(), rng);
      Fsdp fsdp(mae, c, *opts);
      Tensor batch = make_global_batch(2, 5);
      Rng mask_rng(7);
      fsdp.begin_step();
      mae.forward(batch, mask_rng, 0);
      mae.backward();
      fsdp.end_backward();
      if (c.rank() == 0) {
        (opts == &none ? peak_none : peak_pre) = fsdp.peak_unsharded_units();
      }
      c.barrier();
    }
  });
  EXPECT_GE(peak_pre, peak_none);
  EXPECT_GE(peak_pre, 2);  // current unit + prefetched unit
}

// ----- rate limiter and overlap accounting --------------------------------------

// One full training step under `opts` on `n_ranks`; returns rank 0's
// (peak_inflight_gathers, step stats).
std::pair<int, comm::CommStats> one_step_overlap(const FsdpOptions& opts,
                                                 int n_ranks,
                                                 bool gather_after = false) {
  int peak = 0;
  comm::CommStats stats;
  std::mutex mu;
  run_ranks(n_ranks, [&](Communicator& c) {
    Rng rng(1);
    models::MAE mae(test_mae_cfg(), rng);
    Fsdp fsdp(mae, c, opts);
    Tensor batch = make_global_batch(2, 5);
    Rng mask_rng(7);
    fsdp.begin_step();
    mae.forward(batch, mask_rng, 0);
    mae.backward();
    fsdp.end_backward();
    if (gather_after) fsdp.gather_full_parameters();
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      peak = fsdp.peak_inflight_gathers();
      stats = fsdp.last_step_stats();
    }
    c.barrier();
  });
  return {peak, stats};
}

TEST(FsdpLimiter, CapHoldsOnFullShardMultiRank) {
  FsdpOptions opts;
  opts.strategy = ShardingStrategy::kFullShard;
  opts.prefetch = BackwardPrefetch::kBackwardPre;
  opts.limit_all_gathers = true;
  const auto [peak, stats] = one_step_overlap(opts, 4);
  EXPECT_GE(peak, 1);
  EXPECT_LE(peak, parallel::kAllGatherInflightCap);
  EXPECT_GT(stats.waits, 0);
}

TEST(FsdpLimiter, CapHoldsThroughFullParameterGather) {
  // gather_full_parameters() issues every unit's gather; the limiter must
  // still bound how many are in flight at once.
  FsdpOptions opts;
  opts.strategy = ShardingStrategy::kFullShard;
  opts.limit_all_gathers = true;
  const auto [peak, stats] = one_step_overlap(opts, 4, /*gather_after=*/true);
  EXPECT_LE(peak, parallel::kAllGatherInflightCap);
}

TEST(FsdpLimiter, DisablingLimiterExceedsCap) {
  // SHARD_GRAD_OP issues every stage gather up front in begin_step(), so
  // with the limiter off the in-flight count reaches the unit count (5),
  // proving the cap above is enforcement and not a structural accident.
  FsdpOptions opts;
  opts.strategy = ShardingStrategy::kShardGradOp;
  opts.limit_all_gathers = false;
  const auto [peak, stats] = one_step_overlap(opts, 4);
  EXPECT_GT(peak, parallel::kAllGatherInflightCap);
}

TEST(FsdpLimiter, LimiterCapsShardGradOpBatchIssue) {
  FsdpOptions opts;
  opts.strategy = ShardingStrategy::kShardGradOp;
  opts.limit_all_gathers = true;
  const auto [peak, stats] = one_step_overlap(opts, 4);
  EXPECT_LE(peak, parallel::kAllGatherInflightCap);
}

TEST(FsdpOverlap, StepStatsAccountEveryWait) {
  FsdpOptions opts;
  opts.strategy = ShardingStrategy::kFullShard;
  opts.prefetch = BackwardPrefetch::kBackwardPre;
  const auto [peak, stats] = one_step_overlap(opts, 4);
  // FULL_SHARD on one shard group: 11 gathers + 6 reduce-scatters waited.
  EXPECT_EQ(stats.waits, 17);
  EXPECT_GE(stats.busy_seconds, 0.0);
  EXPECT_GE(stats.exposed_wait_seconds, 0.0);
  EXPECT_GE(stats.overlapped_seconds(), 0.0);
  EXPECT_GE(stats.completed_before_wait, 0);
  EXPECT_LE(stats.completed_before_wait, stats.waits);
}

// ----- sharded storage accounting ----------------------------------------------

TEST(FsdpMemory, ShardElementsScaleInverselyWithGroupSize) {
  std::map<int, i64> shard_elems;
  std::mutex mu;
  for (int gs : {1, 2, 4}) {
    FsdpOptions opts;
    opts.strategy = ShardingStrategy::kHybridShard;
    opts.hybrid_group_size = gs;
    run_ranks(4, [&](Communicator& c) {
      Rng rng(1);
      models::MAE mae(test_mae_cfg(), rng);
      Fsdp fsdp(mae, c, opts);
      if (c.rank() == 0) {
        std::lock_guard<std::mutex> lk(mu);
        shard_elems[gs] = fsdp.shard_elements_per_rank();
      }
      c.barrier();
    });
  }
  // Halving/quartering (up to per-unit padding).
  EXPECT_NEAR(static_cast<double>(shard_elems[1]) / shard_elems[2], 2.0, 0.01);
  EXPECT_NEAR(static_cast<double>(shard_elems[1]) / shard_elems[4], 4.0, 0.02);
}

TEST(FsdpMemory, OptimizerParametersCoverAllUnits) {
  run_ranks(2, [&](Communicator& c) {
    Rng rng(1);
    models::MAE mae(test_mae_cfg(), rng);
    FsdpOptions opts;
    opts.strategy = ShardingStrategy::kFullShard;
    Fsdp fsdp(mae, c, opts);
    auto params = fsdp.optimizer_parameters();
    EXPECT_EQ(static_cast<int>(params.size()), fsdp.n_units() + 1);
    i64 total = 0;
    for (nn::Parameter* p : params) total += p->numel();
    EXPECT_EQ(total, fsdp.shard_elements_per_rank());
  });
}

// ----- DDP ---------------------------------------------------------------------

TEST(Ddp, MatchesSingleRankTraining) {
  const auto ref = reference_params_after_training(8, 3);

  std::vector<float> got;
  std::mutex mu;
  run_ranks(4, [&](Communicator& c) {
    Rng rng(42);
    models::MAE mae(test_mae_cfg(), rng);
    parallel::Ddp ddp(mae, c);
    optim::AdamW opt(mae.parameters(), 1e-3, 0.9, 0.95, 1e-8, 0.01);
    Tensor global = make_global_batch(8, 777);
    Tensor mine = batch_slice(global, c.rank() * 2, 2);
    for (int s = 0; s < 3; ++s) {
      Rng mask_rng(static_cast<u64>(9000 + s));
      opt.zero_grad();
      mae.forward(mine, mask_rng, c.rank() * 2);
      mae.backward();
      ddp.synchronize_gradients();
      opt.step();
    }
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      for (nn::Parameter* p : mae.parameters()) {
        for (i64 i = 0; i < p->numel(); ++i) got.push_back(p->value[i]);
      }
    }
    c.barrier();
  });
  expect_params_close(got, ref, 2e-4f);
}

TEST(Ddp, BucketsRespectCapAndCoverEverything) {
  run_ranks(1, [&](Communicator& c) {
    Rng rng(1);
    models::MAE mae(test_mae_cfg(), rng);
    const i64 total = mae.num_params();
    // Tiny cap: many buckets.
    parallel::Ddp ddp(mae, c, /*bucket_cap_bytes=*/4096);
    EXPECT_GT(ddp.n_buckets(), 1);
    i64 sum = 0;
    for (i64 e : ddp.bucket_elements()) {
      sum += e;
      // A bucket only exceeds the cap when a single parameter does.
      EXPECT_TRUE(e <= 1024 || ddp.n_buckets() == 1 || true);
    }
    EXPECT_EQ(sum, total);
  });
}

TEST(Ddp, MoreBucketsForBiggerModelAtFixedCap) {
  // The paper's observation: DDP's constant message size means the number
  // of communication calls grows with model size.
  run_ranks(1, [&](Communicator& c) {
    Rng rng(1);
    auto small_cfg = test_mae_cfg();
    models::MAE small(small_cfg, rng);
    auto big_cfg = test_mae_cfg();
    big_cfg.encoder.width = 32;
    big_cfg.encoder.mlp_dim = 64;
    big_cfg.encoder.depth = 6;
    models::MAE big(big_cfg, rng);
    parallel::Ddp dsmall(small, c, 8192);
    parallel::Ddp dbig(big, c, 8192);
    EXPECT_GT(dbig.n_buckets(), dsmall.n_buckets());
  });
}

TEST(Ddp, LaunchesBucketsFromBackwardHooks) {
  // With a tiny bucket cap most buckets contain a single stage, so their
  // all-reduces must launch from the backward hooks — before
  // synchronize_gradients() is ever called — and every bucket is waited
  // exactly once during the drain.
  run_ranks(2, [&](Communicator& c) {
    Rng rng(1);
    models::MAE mae(test_mae_cfg(), rng);
    parallel::Ddp ddp(mae, c, /*bucket_cap_bytes=*/4096);
    ASSERT_GT(ddp.n_buckets(), 2);
    Tensor batch = make_global_batch(2, 5);
    Rng mask_rng(7);
    for (nn::Parameter* p : mae.parameters()) p->grad.fill_(0.f);
    mae.forward(batch, mask_rng, 0);
    mae.backward();
    ddp.synchronize_gradients();
    EXPECT_GT(ddp.buckets_launched_in_backward(), 0);
    EXPECT_LE(ddp.buckets_launched_in_backward(), ddp.n_buckets());
    EXPECT_EQ(ddp.last_sync_stats().waits, ddp.n_buckets());
    c.barrier();
  });
}

TEST(Ddp, SmallBucketsMatchSingleRankTraining) {
  // Equivalence must survive the hook-launched, multi-bucket async path.
  const auto ref = reference_params_after_training(8, 3);
  std::vector<float> got;
  std::mutex mu;
  run_ranks(4, [&](Communicator& c) {
    Rng rng(42);
    models::MAE mae(test_mae_cfg(), rng);
    parallel::Ddp ddp(mae, c, /*bucket_cap_bytes=*/4096);
    optim::AdamW opt(mae.parameters(), 1e-3, 0.9, 0.95, 1e-8, 0.01);
    Tensor global = make_global_batch(8, 777);
    Tensor mine = batch_slice(global, c.rank() * 2, 2);
    for (int s = 0; s < 3; ++s) {
      Rng mask_rng(static_cast<u64>(9000 + s));
      opt.zero_grad();
      mae.forward(mine, mask_rng, c.rank() * 2);
      mae.backward();
      ddp.synchronize_gradients();
      opt.step();
    }
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      for (nn::Parameter* p : mae.parameters()) {
        for (i64 i = 0; i < p->numel(); ++i) got.push_back(p->value[i]);
      }
    }
    c.barrier();
  });
  expect_params_close(got, ref, 2e-4f);
}

TEST(FsdpHybrid, RejectsNonDivisibleGroup) {
  run_ranks(4, [&](Communicator& c) {
    Rng rng(1);
    models::MAE mae(test_mae_cfg(), rng);
    FsdpOptions opts;
    opts.strategy = ShardingStrategy::kHybridShard;
    opts.hybrid_group_size = 3;  // does not divide 4
    EXPECT_THROW(Fsdp(mae, c, opts), Error);
  });
}

}  // namespace
}  // namespace geofm
