// Tests for util/: RNG determinism, thread pool, table formatting.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace geofm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng root(7);
  Rng a1 = root.split(0), a2 = root.split(0), b = root.split(1);
  EXPECT_EQ(a1.next_u64(), a2.next_u64());
  Rng c1 = root.split(0);
  EXPECT_NE(c1.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(5);
  std::set<i64> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, HashNameDistinct) {
  EXPECT_NE(hash_name("weights"), hash_name("bias"));
  EXPECT_EQ(hash_name("x"), hash_name("x"));
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(10000, [&](i64 b, i64 e) {
    for (i64 i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  i64 total = 0;
  pool.parallel_for(100, [&](i64 b, i64 e) { total += e - b; });
  EXPECT_EQ(total, 100);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](i64, i64) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(10000,
                        [&](i64 b, i64) {
                          if (b == 0) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, ConcurrentCallersDegradeGracefully) {
  // Two threads hammer the global pool simultaneously; each call must
  // still cover its range exactly.
  std::atomic<i64> total{0};
  auto work = [&] {
    for (int rep = 0; rep < 20; ++rep) {
      parallel_for(5000, [&](i64 b, i64 e) { total += e - b; });
    }
  };
  std::thread t1(work), t2(work);
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 2 * 20 * 5000);
}

TEST(ThreadPool, GrainAtLeastRangeTakesSingleChunkBypass) {
  // grain >= n must run inline on the caller thread as one chunk, even
  // when workers are available (no dispatch lock, no fan-out).
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  i64 got_b = -1, got_e = -1;
  std::thread::id ran_on;
  pool.parallel_for(
      1000,
      [&](i64 b, i64 e) {
        ++calls;
        got_b = b;
        got_e = e;
        ran_on = std::this_thread::get_id();
      },
      /*grain=*/1000);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(got_b, 0);
  EXPECT_EQ(got_e, 1000);
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, GrainBoundsChunkSizeFromBelow) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<i64, i64>> chunks;
  pool.parallel_for(
      10000,
      [&](i64 b, i64 e) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(b, e);
      },
      /*grain=*/2500);
  // Exact coverage, and no chunk smaller than the grain except the tail.
  std::sort(chunks.begin(), chunks.end());
  i64 covered = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, covered);
    covered = chunks[i].second;
    if (i + 1 < chunks.size()) {
      EXPECT_GE(chunks[i].second - chunks[i].first, 2500);
    }
  }
  EXPECT_EQ(covered, 10000);
  EXPECT_LE(chunks.size(), 4u);
}

TEST(ThreadPool, GrainZeroKeepsLegacySmallRangeInline) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(511, [&](i64, i64) { ++calls; }, /*grain=*/0);
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, GrainRejectsNegative) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(10, [&](i64, i64) {}, /*grain=*/-1), Error);
}

TEST(Check, ThrowsGeofmError) {
  EXPECT_THROW(GEOFM_CHECK(false, "context " << 42), Error);
  EXPECT_NO_THROW(GEOFM_CHECK(true));
}

TEST(Table, FormatsAndCounts) {
  TextTable t({"model", "ips"});
  t.add_row({"ViT-3B", fmt_f(123.456, 1)});
  EXPECT_EQ(t.n_rows(), 1u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("ViT-3B"), std::string::npos);
  EXPECT_NE(s.find("123.5"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Table, CsvEscaping) {
  TextTable t({"name", "v"});
  t.add_row({"a,b", "x\"y"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"x\"\"y\""), std::string::npos);
}

TEST(Fmt, Bytes) {
  EXPECT_EQ(fmt_bytes(512.0), "512.0 B");
  EXPECT_EQ(fmt_bytes(2048.0), "2.0 KB");
  EXPECT_EQ(fmt_bytes(3.5 * 1024.0 * 1024.0 * 1024.0), "3.5 GB");
}

}  // namespace
}  // namespace geofm
