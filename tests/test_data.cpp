// Data layer tests: generator determinism, Table II facades, loader
// ordering/coverage/determinism.
#include <gtest/gtest.h>

#include <set>

#include "data/dataloader.hpp"
#include "data/datasets.hpp"
#include "obs/metrics.hpp"

namespace geofm {
namespace {

using data::DataLoader;
using data::SceneDataset;
using data::SceneGenerator;
using data::Split;

TEST(SceneGenerator, DeterministicPerClassAndKey) {
  SceneGenerator gen(16, 3, 10, 42);
  Tensor a = gen.render(3, 100);
  Tensor b = gen.render(3, 100);
  EXPECT_TRUE(a.allclose(b, 0.f, 0.f));
  Tensor c = gen.render(3, 101);
  EXPECT_FALSE(a.allclose(c, 1e-3f, 1e-3f));
  Tensor d = gen.render(4, 100);
  EXPECT_FALSE(a.allclose(d, 1e-3f, 1e-3f));
}

TEST(SceneGenerator, OutputShapeAndRange) {
  SceneGenerator gen(24, 3, 51, 7);
  Tensor img = gen.render(50, 1);
  EXPECT_EQ(img.shape(), (std::vector<i64>{3, 24, 24}));
  EXPECT_TRUE(std::isfinite(img.sum()));
  EXPECT_LE(img.abs_max(), 5.f);  // sensor-normalized-ish range
}

TEST(SceneGenerator, ClassesAreVisuallyDistinct) {
  // Within-class distance (different samples) should on average be smaller
  // than between-class distance, else the probing task is unlearnable.
  SceneGenerator gen(16, 3, 12, 9);
  double within = 0, between = 0;
  int n = 0;
  for (int cls = 0; cls < 12; ++cls) {
    Tensor a = gen.render(cls, 1);
    Tensor b = gen.render(cls, 2);
    Tensor c = gen.render((cls + 5) % 12, 1);
    Tensor dab = a.clone();
    dab.add_(b, -1.f);
    Tensor dac = a.clone();
    dac.add_(c, -1.f);
    within += dab.norm();
    between += dac.norm();
    ++n;
  }
  EXPECT_LT(within / n, between / n);
}

TEST(SceneGenerator, RejectsBadClass) {
  SceneGenerator gen(8, 3, 4, 1);
  EXPECT_THROW(gen.render(4, 0), Error);
  EXPECT_THROW(gen.render(-1, 0), Error);
}

TEST(Datasets, TableTwoSizesAndClasses) {
  auto ma = data::million_aid();
  EXPECT_EQ(ma.size(Split::kTrain), 1000);
  EXPECT_EQ(ma.size(Split::kTest), 9000);
  EXPECT_EQ(ma.n_classes(), 51);

  auto u = data::ucm();
  EXPECT_EQ(u.size(Split::kTrain), 1050);
  EXPECT_EQ(u.size(Split::kTest), 1050);
  EXPECT_EQ(u.n_classes(), 21);

  auto a = data::aid();
  EXPECT_EQ(a.size(Split::kTrain), 2000);
  EXPECT_EQ(a.size(Split::kTest), 8000);
  EXPECT_EQ(a.n_classes(), 30);

  auto n = data::nwpu();
  EXPECT_EQ(n.size(Split::kTrain), 3150);
  EXPECT_EQ(n.size(Split::kTest), 28350);
  EXPECT_EQ(n.n_classes(), 45);

  auto pre = data::million_aid_pretrain(4096);
  EXPECT_EQ(pre.size(Split::kTrain), 4096);
}

TEST(Datasets, ScaleDividesSplits) {
  auto n = data::nwpu(32, {.divisor = 9});
  EXPECT_EQ(n.size(Split::kTrain), 350);
  EXPECT_EQ(n.size(Split::kTest), 3150);
  EXPECT_EQ(n.n_classes(), 45);  // class count unaffected
}

TEST(Datasets, LabelsBalancedAndInRange) {
  auto u = data::ucm();
  std::vector<int> counts(static_cast<size_t>(u.n_classes()), 0);
  for (i64 i = 0; i < u.size(Split::kTrain); ++i) {
    const i64 y = u.label_of(Split::kTrain, i);
    ASSERT_GE(y, 0);
    ASSERT_LT(y, u.n_classes());
    counts[static_cast<size_t>(y)]++;
  }
  // 1050 / 21 = 50 exactly.
  for (int c : counts) EXPECT_EQ(c, 50);
}

TEST(Datasets, TrainTestSamplesDiffer) {
  auto u = data::ucm();
  // Same label, same index, different splits: must be different scenes.
  data::Sample tr = u.get(Split::kTrain, 0);
  i64 test_idx = -1;
  for (i64 i = 0; i < u.size(Split::kTest); ++i) {
    if (u.label_of(Split::kTest, i) == tr.label) {
      test_idx = i;
      break;
    }
  }
  ASSERT_GE(test_idx, 0);
  data::Sample te = u.get(Split::kTest, test_idx);
  EXPECT_EQ(te.label, tr.label);
  EXPECT_FALSE(tr.image.allclose(te.image, 1e-3f, 1e-3f));
}

TEST(Datasets, MakeBatchStacksCorrectly) {
  auto u = data::ucm(16);
  auto [images, labels] = u.make_batch(Split::kTrain, {0, 5, 10});
  EXPECT_EQ(images.shape(), (std::vector<i64>{3, 3, 16, 16}));
  ASSERT_EQ(labels.size(), 3u);
  data::Sample s5 = u.get(Split::kTrain, 5);
  Tensor row1({3, 16, 16});
  row1.copy_(images.flat_view(3 * 16 * 16, 3 * 16 * 16));
  EXPECT_TRUE(row1.allclose(s5.image, 0.f, 0.f));
  EXPECT_EQ(labels[1], s5.label);
}

TEST(DataLoader, EpochCoversEveryIndexOnce) {
  auto ds = data::ucm(16, {.divisor = 5});  // 210 train samples
  DataLoader::Options opts;
  opts.batch_size = 32;
  opts.n_workers = 3;
  opts.drop_last = false;
  opts.seed = 11;
  DataLoader loader(ds, Split::kTrain, opts);
  loader.start_epoch(0);
  std::set<i64> seen;
  i64 batches = 0;
  while (auto b = loader.next()) {
    for (i64 i : b->sample_indices) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
    }
    ++batches;
  }
  EXPECT_EQ(static_cast<i64>(seen.size()), ds.size(Split::kTrain));
  EXPECT_EQ(batches, loader.batches_per_epoch());
}

TEST(DataLoader, DropLastTruncates) {
  auto ds = data::ucm(16, {.divisor = 5});  // 210 train samples
  DataLoader::Options opts;
  opts.batch_size = 100;
  opts.n_workers = 0;
  opts.drop_last = true;
  DataLoader loader(ds, Split::kTrain, opts);
  EXPECT_EQ(loader.batches_per_epoch(), 2);
  loader.start_epoch(0);
  i64 total = 0;
  while (auto b = loader.next()) total += b->images.dim(0);
  EXPECT_EQ(total, 200);
}

TEST(DataLoader, DeterministicAcrossInstancesAndWorkerCounts) {
  auto ds = data::aid(16, {.divisor = 20});
  auto collect = [&](int workers) {
    DataLoader::Options opts;
    opts.batch_size = 16;
    opts.n_workers = workers;
    opts.seed = 99;
    DataLoader loader(ds, Split::kTrain, opts);
    loader.start_epoch(3);
    std::vector<i64> order;
    while (auto b = loader.next()) {
      for (i64 i : b->sample_indices) order.push_back(i);
    }
    return order;
  };
  const auto with_workers = collect(4);
  const auto without = collect(0);
  EXPECT_EQ(with_workers, without);
  EXPECT_FALSE(with_workers.empty());
}

TEST(DataLoader, ShuffleVariesByEpochButNotBySeedReplay) {
  auto ds = data::aid(16, {.divisor = 20});
  DataLoader::Options opts;
  opts.batch_size = 16;
  opts.n_workers = 2;
  opts.seed = 5;
  DataLoader loader(ds, Split::kTrain, opts);

  auto epoch_order = [&](i64 epoch) {
    loader.start_epoch(epoch);
    std::vector<i64> order;
    while (auto b = loader.next()) {
      for (i64 i : b->sample_indices) order.push_back(i);
    }
    return order;
  };
  const auto e0 = epoch_order(0);
  const auto e1 = epoch_order(1);
  const auto e0_again = epoch_order(0);
  EXPECT_NE(e0, e1);
  EXPECT_EQ(e0, e0_again);
}

TEST(DataLoader, BatchImagesMatchDataset) {
  auto ds = data::ucm(16, {.divisor = 10});
  DataLoader::Options opts;
  opts.batch_size = 8;
  opts.n_workers = 2;
  opts.shuffle = false;
  DataLoader loader(ds, Split::kTest, opts);
  loader.start_epoch(0);
  auto b = loader.next();
  ASSERT_TRUE(b.has_value());
  data::Sample s0 = ds.get(Split::kTest, 0);
  Tensor first({3, 16, 16});
  first.copy_(b->images.flat_view(0, 3 * 16 * 16));
  EXPECT_TRUE(first.allclose(s0.image, 0.f, 0.f));
  EXPECT_EQ(b->labels[0], s0.label);
}

// ----- worker-side batch slicing (distributed input pipeline) ----------------

double samples_rendered_total() {
  for (const auto& s : obs::MetricsRegistry::instance().snapshot()) {
    if (s.name == "loader.samples_rendered") return s.value;
  }
  return 0;
}

TEST(DataLoader, SliceMatchesSameRowsOfFullBatch) {
  auto ds = data::million_aid_pretrain(48, 16);
  DataLoader::Options opts;
  opts.batch_size = 12;
  opts.n_workers = 2;
  opts.shuffle = true;
  opts.seed = 21;
  auto sliced_opts = opts;
  sliced_opts.slice_offset = 4;  // rank 1 of 3
  sliced_opts.slice_count = 4;
  DataLoader full(ds, Split::kTrain, opts);
  DataLoader sliced(ds, Split::kTrain, sliced_opts);
  full.start_epoch(1);
  sliced.start_epoch(1);

  i64 batches = 0;
  while (auto fb = full.next()) {
    auto sb = sliced.next();
    ASSERT_TRUE(sb.has_value());
    ASSERT_EQ(sb->images.dim(0), 4);
    ASSERT_EQ(std::vector<i64>(fb->sample_indices.begin() + 4,
                               fb->sample_indices.begin() + 8),
              sb->sample_indices);
    // Bitwise: slicing must not perturb the rendered pixels (per-sample
    // rendering and per-sample-keyed augmentation).
    const i64 per = fb->images.numel() / fb->images.dim(0);
    i64 mismatches = 0;
    for (i64 i = 0; i < 4 * per; ++i) {
      if (sb->images[i] != fb->images[4 * per + i]) ++mismatches;
    }
    EXPECT_EQ(mismatches, 0);
    ++batches;
  }
  EXPECT_FALSE(sliced.next().has_value());
  EXPECT_GT(batches, 0);
}

TEST(DataLoader, SliceCutsRenderWorkByWorldSize) {
  auto ds = data::million_aid_pretrain(48, 16);
  DataLoader::Options opts;
  opts.batch_size = 12;
  opts.n_workers = 0;  // render in next(): exact metric accounting
  opts.shuffle = true;
  opts.seed = 3;
  opts.slice_offset = 8;
  opts.slice_count = 4;
  DataLoader loader(ds, Split::kTrain, opts);
  const double before = samples_rendered_total();
  loader.start_epoch(0);
  i64 batches = 0;
  i64 rows = 0;
  while (auto b = loader.next()) {
    rows += b->images.dim(0);
    ++batches;
  }
  ASSERT_GT(batches, 0);
  EXPECT_EQ(rows, 4 * batches);
  // Only the slice was rendered — a third of each global batch's work.
  EXPECT_EQ(samples_rendered_total() - before, static_cast<double>(rows));
}

TEST(DataLoader, StartEpochFastForwardReplaysExactBatches) {
  auto ds = data::million_aid_pretrain(48, 16);
  DataLoader::Options opts;
  opts.batch_size = 8;
  opts.n_workers = 0;
  opts.shuffle = true;
  opts.seed = 13;
  DataLoader a(ds, Split::kTrain, opts);
  a.start_epoch(2);
  a.next();
  a.next();
  auto want = a.next();  // batch 2 of epoch 2
  ASSERT_TRUE(want.has_value());

  // The resume path: jump straight to batch 2 without rendering 0 and 1.
  const double before = samples_rendered_total();
  DataLoader b(ds, Split::kTrain, opts);
  b.start_epoch(2, /*first_batch=*/2);
  auto got = b.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(samples_rendered_total() - before,
            static_cast<double>(got->images.dim(0)));
  ASSERT_EQ(got->sample_indices, want->sample_indices);
  i64 mismatches = 0;
  for (i64 i = 0; i < got->images.numel(); ++i) {
    if (got->images[i] != want->images[i]) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
}

}  // namespace
}  // namespace geofm
