// Performance-simulator tests: cost-model sanity, collective-model limits,
// and the paper's qualitative findings as executable invariants.
#include <gtest/gtest.h>

#include "models/config.hpp"
#include "sim/simulator.hpp"

namespace geofm {
namespace {

using parallel::BackwardPrefetch;
using parallel::ShardingStrategy;
using namespace geofm::sim;

ParallelPlan plan_fsdp(ShardingStrategy s, int group = 1) {
  ParallelPlan p;
  p.fsdp.strategy = s;
  p.fsdp.hybrid_group_size = group;
  return p;
}

double ips(const models::ViTConfig& cfg, int nodes, const ParallelPlan& p,
           i64 batch = 32) {
  TrainingSimulator sim(vit_step_workload(cfg, batch), frontier(), nodes, p);
  return sim.simulate_step().images_per_second_total;
}

TEST(SimWorkload, FlopsScaleWithArchitecture) {
  auto base = vit_step_workload(models::vit_base(), 32);
  auto huge = vit_step_workload(models::vit_huge(), 32);
  ASSERT_FALSE(base.stages.empty());
  EXPECT_GT(huge.stages[0].fwd_flops, base.stages[0].fwd_flops);
  EXPECT_GT(huge.stages.size(), base.stages.size());
  for (const auto& s : base.stages) {
    EXPECT_NEAR(s.bwd_flops / s.fwd_flops, 2.0, 1e-9);
  }
  EXPECT_EQ(base.total_param_elements, models::vit_base().param_count());
}

TEST(SimWorkload, MaeEncoderSeesOnlyVisibleTokens) {
  // MAE stage flops must be well below a full-sequence ViT of the same
  // encoder (75% of tokens are masked out of the encoder).
  auto enc = models::vit_3b();
  enc.img_size = 512;
  enc.patch_size = 16;
  auto mae = mae_step_workload(models::mae_for(enc), 32);
  auto vit = vit_step_workload(enc, 32);
  EXPECT_LT(mae.stages[0].fwd_flops, 0.5 * vit.stages[0].fwd_flops);
  // Decoder stages appended after encoder stages.
  EXPECT_EQ(static_cast<i64>(mae.stages.size()), enc.depth + 8);
}

TEST(SimCollective, DegenerateGroupsFree) {
  auto m = frontier();
  auto g1 = shard_group_shape(1, 8);
  EXPECT_EQ(all_gather_seconds(1e9, g1, m), 0.0);
  EXPECT_EQ(all_reduce_seconds(1e9, g1, m), 0.0);
}

TEST(SimCollective, IntraNodeFasterThanInterNode) {
  auto m = frontier();
  auto intra = shard_group_shape(8, 8);       // one node
  auto inter = shard_group_shape(64, 8);      // 8 nodes
  EXPECT_LT(all_gather_seconds(1e8, intra, m),
            all_gather_seconds(1e8, inter, m));
}

TEST(SimCollective, SmallMessagesLatencyBound) {
  // For a tiny payload over many ranks, halving the payload barely
  // changes the time (latency terms dominate).
  auto m = frontier();
  auto g = replica_group_shape(512, 1, 8);
  const double t1 = all_reduce_seconds(1e4, g, m);
  const double t2 = all_reduce_seconds(5e3, g, m);
  EXPECT_LT((t1 - t2) / t1, 0.10);
  // For a huge payload it is bandwidth bound: halving ~halves.
  const double b1 = all_reduce_seconds(1e9, g, m);
  const double b2 = all_reduce_seconds(5e8, g, m);
  EXPECT_NEAR(b2 / b1, 0.5, 0.1);
}

TEST(SimCollective, JitterGrowsWithNodes) {
  auto m = frontier();
  auto few = shard_group_shape(16, 8);   // 2 nodes
  auto many = shard_group_shape(512, 8); // 64 nodes
  // Same per-rank shard: more hops AND more jitter.
  const double t_few = all_gather_seconds(1e6, few, m) / (16 - 1);
  const double t_many = all_gather_seconds(1e6, many, m) / (512 - 1);
  EXPECT_GT(t_many, t_few);
}

// ----- paper shape invariants ---------------------------------------------------

TEST(SimShapes, HybridOneEquivalentOrBetterThanNoShard) {
  // HYBRID_1GPU >= NO_SHARD (paper attributes the gap to implementation).
  for (int nodes : {4, 16, 64}) {
    EXPECT_GE(ips(models::vit_3b(), nodes,
                  plan_fsdp(ShardingStrategy::kHybridShard, 1)),
              ips(models::vit_3b(), nodes,
                  plan_fsdp(ShardingStrategy::kNoShard)));
  }
}

TEST(SimShapes, NoShardBeatsHybridTwoForSingleGpuModels) {
  for (const auto& cfg : {models::vit_base(), models::vit_3b()}) {
    for (int nodes : {4, 16, 64}) {
      EXPECT_GT(ips(cfg, nodes, plan_fsdp(ShardingStrategy::kNoShard)),
                ips(cfg, nodes,
                    plan_fsdp(ShardingStrategy::kHybridShard, 2)))
          << cfg.name << " nodes " << nodes;
    }
  }
}

TEST(SimShapes, DdpFsdpGapGrowsWithModelSize) {
  ParallelPlan ddp;
  ddp.kind = ParallelPlan::Kind::kDdp;
  const double gap_base =
      ips(models::vit_base(), 64, plan_fsdp(ShardingStrategy::kNoShard)) /
      ips(models::vit_base(), 64, ddp);
  const double gap_3b =
      ips(models::vit_3b(), 64, plan_fsdp(ShardingStrategy::kNoShard)) /
      ips(models::vit_3b(), 64, ddp);
  EXPECT_GT(gap_base, 1.0);
  EXPECT_GT(gap_3b, gap_base);
}

TEST(SimShapes, FullShardDegradesAtScaleAndSmallModelsFlattenEarlier) {
  auto efficiency = [&](const models::ViTConfig& cfg, int nodes) {
    const double one = ips(cfg, 1, plan_fsdp(ShardingStrategy::kFullShard));
    return ips(cfg, nodes, plan_fsdp(ShardingStrategy::kFullShard)) /
           (one * nodes);
  };
  // Efficiency decays with node count...
  EXPECT_GT(efficiency(models::vit_base(), 4),
            efficiency(models::vit_base(), 64));
  // ...and decays faster for the smaller (lower-compute) model.
  EXPECT_LT(efficiency(models::vit_base(), 64),
            efficiency(models::vit_3b(), 64));
}

TEST(SimShapes, PrefetchOrderingBackwardPreBest) {
  // ViT-5B on 8 nodes, FULL_SHARD (Fig 2's setting).
  auto run = [&](BackwardPrefetch p, bool limit) {
    ParallelPlan plan = plan_fsdp(ShardingStrategy::kFullShard);
    plan.fsdp.prefetch = p;
    plan.fsdp.limit_all_gathers = limit;
    return ips(models::vit_5b(), 8, plan);
  };
  EXPECT_GE(run(BackwardPrefetch::kBackwardPre, true),
            run(BackwardPrefetch::kBackwardPost, true));
  EXPECT_GE(run(BackwardPrefetch::kBackwardPost, true),
            run(BackwardPrefetch::kNone, true));
  // The all-gather rate limiter helps (paper Fig 2).
  EXPECT_GE(run(BackwardPrefetch::kBackwardPre, true),
            run(BackwardPrefetch::kBackwardPre, false));
}

TEST(SimShapes, HybridEightOrSixteenBeatTwoForFiveB) {
  const double h2 =
      ips(models::vit_5b(), 32, plan_fsdp(ShardingStrategy::kHybridShard, 2));
  const double h8 =
      ips(models::vit_5b(), 32, plan_fsdp(ShardingStrategy::kHybridShard, 8));
  const double h16 = ips(models::vit_5b(), 32,
                         plan_fsdp(ShardingStrategy::kHybridShard, 16));
  EXPECT_GT(h8, h2);
  EXPECT_GT(h16, h2);
}

TEST(SimShapes, ShardGradOpScalesBestForFifteenB) {
  for (int nodes : {8, 32}) {
    const double sgo = ips(models::vit_15b(), nodes,
                           plan_fsdp(ShardingStrategy::kShardGradOp));
    const double full = ips(models::vit_15b(), nodes,
                            plan_fsdp(ShardingStrategy::kFullShard));
    const double h4 = ips(models::vit_15b(), nodes,
                          plan_fsdp(ShardingStrategy::kHybridShard, 4));
    EXPECT_GT(sgo, full);
    EXPECT_GT(sgo, h4);
  }
}

// ----- memory model -----------------------------------------------------------

TEST(SimMemory, NoShardThreeBExceedsSixtyGB) {
  TrainingSimulator sim(vit_step_workload(models::vit_3b(), 32), frontier(),
                        1, plan_fsdp(ShardingStrategy::kNoShard));
  // Paper: ViT-3B uses > 60 GB/GPU with NO_SHARD; fits in 64 GB.
  const double gb = sim.memory_footprint().total() / double(1ull << 30);
  EXPECT_GT(gb, 45.0);
  EXPECT_LT(gb, 64.0);
}

TEST(SimMemory, HybridTwoRoughlyHalvesShardedState) {
  auto w = vit_step_workload(models::vit_3b(), 32);
  TrainingSimulator ns(w, frontier(), 4, plan_fsdp(ShardingStrategy::kNoShard));
  TrainingSimulator h2(w, frontier(), 4,
                       plan_fsdp(ShardingStrategy::kHybridShard, 2));
  const auto mn = ns.memory_footprint();
  const auto mh = h2.memory_footprint();
  EXPECT_NEAR((mh.params + mh.grads + mh.optimizer) /
                  (mn.params + mn.grads + mn.optimizer),
              0.5, 0.02);
}

TEST(SimMemory, FullShardDropsWithWorldSize) {
  auto w = vit_step_workload(models::vit_3b(), 32);
  double prev = 1e18;
  for (int nodes : {1, 4, 16, 64}) {
    TrainingSimulator sim(w, frontier(), nodes,
                          plan_fsdp(ShardingStrategy::kFullShard));
    const double total = sim.memory_footprint().total();
    EXPECT_LT(total, prev);
    prev = total;
  }
  // Paper: down to a few GB at scale.
  EXPECT_LT(prev / double(1ull << 30), 8.0);
}

TEST(SimMemory, ShardGradOpBetweenFullAndNoShard) {
  auto w = vit_step_workload(models::vit_5b(), 32);
  TrainingSimulator full(w, frontier(), 8,
                         plan_fsdp(ShardingStrategy::kFullShard));
  TrainingSimulator sgo(w, frontier(), 8,
                        plan_fsdp(ShardingStrategy::kShardGradOp));
  EXPECT_GT(sgo.memory_footprint().total(), full.memory_footprint().total());
}

// ----- power, IO, weak scaling --------------------------------------------------

TEST(SimPower, HigherThroughputStrategyDrawsMorePower) {
  auto w = vit_step_workload(models::vit_5b(), 32);
  TrainingSimulator sgo(w, frontier(), 32,
                        plan_fsdp(ShardingStrategy::kShardGradOp));
  TrainingSimulator full(w, frontier(), 32,
                         plan_fsdp(ShardingStrategy::kFullShard));
  // SGO's higher ips comes with higher utilization => higher power
  // (paper's rocm-smi trace observation).
  EXPECT_GT(sgo.simulate_step().images_per_second_total,
            full.simulate_step().images_per_second_total);
  EXPECT_GT(sgo.power_draw().average_watts, full.power_draw().average_watts);
  EXPECT_LT(sgo.power_draw().average_watts,
            frontier().idle_power_w + frontier().compute_power_w +
                frontier().comm_power_w + 1.0);
}

TEST(SimIo, LinearInNodesAndAboveSynthetic) {
  auto enc = models::vit_3b();
  enc.img_size = 512;
  enc.patch_size = 16;
  auto w = mae_step_workload(models::mae_for(enc), 32);
  auto points = weak_scaling(w, frontier(), {1, 2, 4, 8, 16, 32, 64},
                             plan_fsdp(ShardingStrategy::kNoShard));
  ASSERT_EQ(points.size(), 7u);
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    // Paper Fig 1: IO above synthetic at every scale.
    EXPECT_GT(p.io_ips, p.syn_ips) << "nodes " << p.nodes;
    EXPECT_GE(p.syn_no_comm_ips, p.syn_ips);
    EXPECT_LE(p.real_ips, p.syn_ips);
    if (i > 0) {
      // IO linear; the IO-syn gap widens with scale.
      EXPECT_NEAR(p.io_ips / points[0].io_ips, p.nodes, 1e-6);
      EXPECT_GT(p.io_ips - p.syn_ips,
                points[i - 1].io_ips - points[i - 1].syn_ips);
    }
  }
  // Comm share grows toward the paper's ~20% at 64 nodes.
  EXPECT_GT(points.back().comm_fraction, 0.15);
  EXPECT_LT(points.back().comm_fraction, 0.30);
  EXPECT_GT(points.back().comm_fraction, points.front().comm_fraction);
}

TEST(SimWeakScaling, NeverExceedsIdeal) {
  auto w = vit_step_workload(models::vit_1b(), 32);
  auto points = weak_scaling(w, frontier(), {1, 4, 16, 64},
                             plan_fsdp(ShardingStrategy::kNoShard));
  for (const auto& p : points) {
    EXPECT_LE(p.real_ips, p.ideal_ips * 1.0001);
  }
}

TEST(SimShapes, CommCallCountsMatchStrategy) {
  auto w = vit_step_workload(models::vit_base(), 32);
  TrainingSimulator ns(w, frontier(), 4, plan_fsdp(ShardingStrategy::kNoShard));
  TrainingSimulator fs(w, frontier(), 4,
                       plan_fsdp(ShardingStrategy::kFullShard));
  // NO_SHARD: one all-reduce per unit (12 blocks + root).
  EXPECT_EQ(ns.simulate_step().comm_calls, 13);
  // FULL_SHARD: 2 gathers per block + 1 root gather + 13 reduce-scatters.
  EXPECT_EQ(fs.simulate_step().comm_calls, 12 * 2 + 1 + 13);
}

TEST(SimShapes, DisableCommIsUpperBound) {
  auto w = vit_step_workload(models::vit_3b(), 32);
  ParallelPlan with = plan_fsdp(ShardingStrategy::kNoShard);
  ParallelPlan without = with;
  without.disable_comm = true;
  TrainingSimulator a(w, frontier(), 16, with);
  TrainingSimulator b(w, frontier(), 16, without);
  EXPECT_GT(b.simulate_step().images_per_second_total,
            a.simulate_step().images_per_second_total);
}

TEST(SimEstimate, PretrainingCampaignArithmetic) {
  auto enc = models::vit_3b();
  enc.img_size = 512;
  enc.patch_size = 16;
  const auto w = mae_step_workload(models::mae_for(enc), 32);
  ParallelPlan plan;
  plan.fsdp.strategy = ShardingStrategy::kNoShard;
  const auto est =
      estimate_pretraining(w, frontier(), 8, plan, 990848, 100);
  // Global batch 2048 (paper Sec. V-B): 483 steps/epoch x 100.
  EXPECT_EQ(est.steps, (990848 / 2048) * 100);
  EXPECT_GT(est.wall_hours, 1.0);
  EXPECT_LT(est.wall_hours, 1000.0);
  EXPECT_NEAR(est.node_hours, est.wall_hours * 8, 1e-9);
  EXPECT_GT(est.energy_mwh, 0.0);

  // More nodes: less wall time, roughly constant-or-higher node-hours.
  const auto est64 =
      estimate_pretraining(w, frontier(), 64, plan, 990848, 100);
  EXPECT_LT(est64.wall_hours, est.wall_hours);
  EXPECT_GE(est64.node_hours, 0.9 * est.node_hours);
}

TEST(SimShapes, HybridGroupMustDivideWorld) {
  auto w = vit_step_workload(models::vit_base(), 32);
  EXPECT_THROW(TrainingSimulator(w, frontier(), 1,
                                 plan_fsdp(ShardingStrategy::kHybridShard, 3)),
               Error);
}

}  // namespace
}  // namespace geofm
