// Serving-tier tests. The load-bearing properties:
//
//   * Batching parity — results of a coalesced batched encoder forward
//     are bitwise identical to one-at-a-time forwards, under concurrent
//     submitters.
//   * Hot reload — the server picks up newly published checkpoints, and
//     a failed reload (unreadable shard, torn publication) leaves it
//     serving the old weights; no request ever observes mixed weights.
//   * Cache — LRU eviction, hit accounting, and the epoch tag that keeps
//     a pre-swap embedding from being served as post-swap.
//   * Heads — per-tenant linear-probe heads round-trip through the
//     train::save_checkpoint format and hot-swap atomically.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/io_fault.hpp"
#include "ckpt/state.hpp"
#include "ckpt/uploader.hpp"
#include "comm/fault.hpp"
#include "models/mae.hpp"
#include "nn/linear.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/heads.hpp"
#include "serve/server.hpp"
#include "train/checkpoint.hpp"

namespace geofm {
namespace {

namespace fs = std::filesystem;
using comm::FaultEvent;
using comm::FaultPlan;

models::MaeConfig serve_mae_cfg() {
  models::ViTConfig enc{.name = "t", .width = 16, .depth = 3, .mlp_dim = 32,
                        .heads = 2, .img_size = 16, .patch_size = 4,
                        .in_channels = 3};
  return models::mae_for(enc);
}

std::string fresh_root(const std::string& name) {
  const std::string root = "/tmp/" + name;
  fs::remove_all(root);
  ckpt::reset_save_state(root);
  return root;
}

// Publishes `model`'s full state as a complete world-1 checkpoint at
// `step` — exactly what a single-rank training run would leave behind.
void publish_model(const std::string& root, i64 step, models::MAE& model) {
  ckpt::SaveRequest req;
  req.dir = root;
  req.step = step;
  req.rank = 0;
  req.world = 1;
  req.counters = {{"step", step}};
  req.state = ckpt::replicated_state(model, nullptr, 0, 1, /*for_save=*/true);
  ckpt::Checkpointer saver(/*async=*/false);
  saver.save(req);
}

// One deterministic [C,H,W] scene per id.
Tensor scene_image(const models::MaeConfig& cfg, u64 id) {
  const auto& e = cfg.encoder;
  Rng rng(0xabcd0000ULL + id);
  return Tensor::randn({e.in_channels, e.img_size, e.img_size}, rng, 0.5f);
}

// Reference embedding: a direct single-image forward through `model`.
Tensor direct_embed(models::MAE& model, const Tensor& image,
                    models::MAE::Pool pool = models::MAE::Pool::kGap) {
  const auto& e = model.config().encoder;
  Tensor batch({1, e.in_channels, e.img_size, e.img_size});
  batch.copy_(image.flat_view(0, image.numel()));
  return model.encode(batch, pool).view({e.width});
}

void expect_bitwise(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.numel(), want.numel());
  const float* g = got.data();
  const float* w = want.data();
  size_t mismatches = 0;
  size_t first = 0;
  for (i64 i = 0; i < got.numel(); ++i) {
    if (g[i] != w[i]) {
      if (mismatches == 0) first = static_cast<size_t>(i);
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u) << "first divergence at element " << first << ": "
                            << g[first] << " vs " << w[first];
}

// The io-fault injector slot is process-global; every test that installs
// one must clear it on exit so later tests see clean counters.
struct InjectorGuard {
  explicit InjectorGuard(FaultPlan plan) {
    ckpt::install_io_fault_injector(
        std::make_shared<comm::FaultInjector>(std::move(plan)));
  }
  ~InjectorGuard() { ckpt::install_io_fault_injector(nullptr); }
};

// ---------------------------------------------------------------- manifest

TEST(ServeManifest, LatestPublishedManifestFindsNewestCompleteStep) {
  const std::string root = fresh_root("geofm_serve_manifest");
  EXPECT_FALSE(ckpt::latest_published_manifest(root).found());
  EXPECT_FALSE(ckpt::latest_published_manifest(root + "_missing").found());

  Rng rng(1);
  models::MAE model(serve_mae_cfg(), rng);
  publish_model(root, 3, model);
  publish_model(root, 7, model);
  // An incomplete publication (no manifest.txt) must be invisible.
  fs::create_directories(root + "/step_00000009");

  const ckpt::PublishedManifest latest = ckpt::latest_published_manifest(root);
  ASSERT_TRUE(latest.found());
  EXPECT_EQ(latest.step, 7);
  EXPECT_EQ(latest.dir, root + "/" + ckpt::format::step_dir_name(7));
  EXPECT_EQ(ckpt::latest_step(root), 7);
  fs::remove_all(root);
}

// ---------------------------------------------------------------- batcher

TEST(ServeBatcher, CoalescesUpToMaxBatch) {
  serve::RequestBatcher b({/*max_batch=*/3, /*max_delay_us=*/200000});
  std::vector<std::future<serve::EmbedResult>> futs;
  for (int i = 0; i < 5; ++i) {
    serve::EmbedRequest req;
    req.key = "k" + std::to_string(i);
    futs.push_back(b.submit(std::move(req)));
  }
  // A full batch ships immediately (no delay wait); the remainder ships
  // once its oldest request's window elapses — irrelevant here because
  // two requests are already queued when next_batch is called again.
  std::vector<serve::PendingRequest> first = b.next_batch();
  EXPECT_EQ(first.size(), 3u);
  EXPECT_EQ(b.pending(), 2);
  b.close();
  std::vector<serve::PendingRequest> second = b.next_batch();
  EXPECT_EQ(second.size(), 2u);
  EXPECT_TRUE(b.next_batch().empty());  // closed and drained
  // Submitting after close is not an exception at the call site — the
  // future resolves immediately with the typed shutdown error.
  std::future<serve::EmbedResult> rejected = b.submit(serve::EmbedRequest{});
  EXPECT_THROW(rejected.get(), serve::ShutdownError);
  for (auto& p : first) p.promise.set_value({});
  for (auto& p : second) p.promise.set_value({});
}

TEST(ServeBatcher, MaxDelayShipsPartialBatch) {
  serve::RequestBatcher b({/*max_batch=*/64, /*max_delay_us=*/2000});
  std::future<serve::EmbedResult> fut = b.submit(serve::EmbedRequest{});
  (void)fut;
  std::vector<serve::PendingRequest> batch = b.next_batch();
  EXPECT_EQ(batch.size(), 1u);  // shipped by the delay, not by fullness
  batch[0].promise.set_value({});
  b.close();
  EXPECT_TRUE(b.next_batch().empty());
}

// Batched-forward results must be bitwise equal to one-at-a-time
// forwards, with requests arriving from concurrent submitters — the
// core correctness contract of coalescing.
TEST(ServeBatcher, BatchedForwardBitwiseEqualsSingles) {
  const std::string root = fresh_root("geofm_serve_batch_parity");
  const auto cfg = serve_mae_cfg();
  Rng rng(11);
  models::MAE reference(cfg, rng);
  publish_model(root, 1, reference);

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.model = cfg;
  scfg.max_batch = 4;
  scfg.max_delay_us = 20000;  // hold the door so batches actually form
  scfg.cache_capacity = 0;   // every request must ride an encoder batch
  scfg.poll_interval_seconds = 0;
  serve::ModelServer server(scfg);

  constexpr int kScenes = 12;
  std::vector<Tensor> images;
  std::vector<Tensor> want;
  for (int i = 0; i < kScenes; ++i) {
    images.push_back(scene_image(cfg, static_cast<u64>(i)));
    want.push_back(direct_embed(reference, images.back()));
  }

  std::vector<serve::EmbedResult> results(kScenes);
  std::atomic<int> next{0};
  std::vector<std::thread> clients;
  bool saw_multi_request_batch = false;
  std::mutex seen_mu;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      for (int i = next.fetch_add(1); i < kScenes; i = next.fetch_add(1)) {
        serve::EmbedRequest req;
        req.image = images[static_cast<size_t>(i)];
        serve::EmbedResult r = server.embed(std::move(req));
        {
          std::lock_guard<std::mutex> lk(seen_mu);
          if (r.batch_size > 1) saw_multi_request_batch = true;
          results[static_cast<size_t>(i)] = std::move(r);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  server.stop();

  for (int i = 0; i < kScenes; ++i) {
    expect_bitwise(results[static_cast<size_t>(i)].embedding,
                   want[static_cast<size_t>(i)]);
  }
  // With 3 concurrent submitters and a 2ms door, at least one batch must
  // have coalesced >1 request — otherwise this test regressed into the
  // trivial one-request-per-batch case and proves nothing about batching.
  EXPECT_TRUE(saw_multi_request_batch);
  fs::remove_all(root);
}

// ---------------------------------------------------------------- cache

TEST(ServeCache, LruEvictsOldestAndCountsHits) {
  serve::EmbeddingCache cache(2);
  auto entry = [](float v, i64 epoch) {
    serve::CachedEmbedding e;
    e.embedding = Tensor::full({4}, v);
    e.model_step = 1;
    e.model_epoch = epoch;
    return e;
  };
  cache.insert("a", entry(1.f, 1));
  cache.insert("b", entry(2.f, 1));

  serve::CachedEmbedding out;
  EXPECT_TRUE(cache.lookup("a", 1, &out));  // refreshes a's recency
  EXPECT_FLOAT_EQ(out.embedding[0], 1.f);
  cache.insert("c", entry(3.f, 1));  // evicts b (LRU), not a
  EXPECT_FALSE(cache.lookup("b", 1, &out));
  EXPECT_TRUE(cache.lookup("a", 1, &out));
  EXPECT_TRUE(cache.lookup("c", 1, &out));
  EXPECT_EQ(cache.size(), 2);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.evictions, 1);
}

TEST(ServeCache, EpochMismatchIsStaleNotHit) {
  serve::EmbeddingCache cache(8);
  serve::CachedEmbedding e;
  e.embedding = Tensor::full({4}, 1.f);
  e.model_epoch = 1;
  cache.insert("k", std::move(e));

  serve::CachedEmbedding out;
  // A post-swap lookup must not see the pre-swap embedding.
  EXPECT_FALSE(cache.lookup("k", 2, &out));
  EXPECT_EQ(cache.stats().stale, 1);
  EXPECT_EQ(cache.size(), 0);  // stale entries are dropped on sight

  serve::CachedEmbedding e1;
  e1.embedding = Tensor::full({4}, 1.f);
  e1.model_epoch = 1;
  cache.insert("k1", std::move(e1));
  serve::CachedEmbedding e2;
  e2.embedding = Tensor::full({4}, 2.f);
  e2.model_epoch = 2;
  cache.insert("k2", std::move(e2));
  EXPECT_EQ(cache.invalidate_older_than(2), 1);
  EXPECT_FALSE(cache.lookup("k1", 1, &out));
  EXPECT_TRUE(cache.lookup("k2", 2, &out));
}

TEST(ServeCache, ZeroCapacityDisables) {
  serve::EmbeddingCache cache(0);
  EXPECT_FALSE(cache.enabled());
  serve::CachedEmbedding e;
  e.embedding = Tensor::full({4}, 1.f);
  e.model_epoch = 1;
  cache.insert("k", std::move(e));
  serve::CachedEmbedding out;
  EXPECT_FALSE(cache.lookup("k", 1, &out));
  EXPECT_EQ(cache.size(), 0);
}

// ---------------------------------------------------------------- heads

TEST(ServeHeads, ProbeCheckpointRoundTripsAndHotSwaps) {
  const std::string path = "/tmp/geofm_serve_head.ckpt";
  fs::remove(path);
  constexpr i64 kWidth = 16;
  constexpr i64 kClasses = 5;
  Rng rng(3);
  nn::Linear probe("probe.head", kWidth, kClasses, rng);
  for (i64 i = 0; i < probe.weight.numel(); ++i) {
    probe.weight.value[i] = 0.01f * static_cast<float>(i % 37);
  }
  train::save_checkpoint(probe, path);

  serve::HeadRegistry reg;
  reg.load("tenant-a", path, /*expect_width=*/kWidth);
  EXPECT_EQ(reg.size(), 1);

  auto head = reg.find("tenant-a");
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->version, 1);
  EXPECT_EQ(head->source, path);

  Rng frng(4);
  Tensor features = Tensor::randn({1, kWidth}, frng, 1.f);
  expect_bitwise(head->head->forward(features), probe.forward(features));

  // Hot swap: a new head replaces the entry; the resolved old head stays
  // usable (shared_ptr discipline) and the version advances.
  Rng rng2(5);
  auto fresh = std::make_unique<nn::Linear>("probe.head", kWidth, kClasses,
                                            rng2);
  reg.put("tenant-a", std::move(fresh));
  auto swapped = reg.find("tenant-a");
  EXPECT_EQ(swapped->version, 2);
  EXPECT_NE(swapped.get(), head.get());
  EXPECT_EQ(head->head->forward(features).numel(), kClasses);  // old still ok

  // A width mismatch is rejected and the registered head survives.
  EXPECT_THROW(reg.load("tenant-a", path, /*expect_width=*/kWidth + 1), Error);
  EXPECT_EQ(reg.find("tenant-a")->version, 2);
  EXPECT_TRUE(reg.remove("tenant-a"));
  EXPECT_FALSE(reg.remove("tenant-a"));
  fs::remove(path);
}

TEST(ServeHeads, ServerAppliesTenantHead) {
  const std::string root = fresh_root("geofm_serve_tenant");
  const auto cfg = serve_mae_cfg();
  Rng rng(21);
  models::MAE reference(cfg, rng);
  publish_model(root, 1, reference);

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.model = cfg;
  scfg.poll_interval_seconds = 0;
  serve::ModelServer server(scfg);

  Rng hrng(22);
  auto head = std::make_unique<nn::Linear>("probe.head",
                                           cfg.encoder.width, 7, hrng);
  nn::Linear head_copy("probe.head", cfg.encoder.width, 7, hrng);
  head_copy.weight.value.copy_(
      head->weight.value.flat_view(0, head->weight.numel()));
  head_copy.bias.value.copy_(head->bias.value.flat_view(0, 7));
  server.heads().put("t0", std::move(head));

  const Tensor image = scene_image(cfg, 99);
  serve::EmbedRequest req;
  req.tenant = "t0";
  req.image = image;
  serve::EmbedResult r = server.embed(std::move(req));
  ASSERT_TRUE(r.logits.defined());
  EXPECT_EQ(r.logits.numel(), 7);
  const Tensor want_emb = direct_embed(reference, image);
  expect_bitwise(r.embedding, want_emb);
  expect_bitwise(r.logits.view({1, 7}),
                 head_copy.forward(want_emb.view({1, cfg.encoder.width})));

  // An unknown tenant fails that request only; the server keeps serving.
  serve::EmbedRequest bad;
  bad.tenant = "nobody";
  bad.image = image;
  auto fut = server.submit(std::move(bad));
  EXPECT_THROW(fut.get(), Error);
  serve::EmbedRequest ok;
  ok.image = image;
  EXPECT_EQ(server.embed(std::move(ok)).model_step, 1);
  server.stop();
  fs::remove_all(root);
}

// ---------------------------------------------------------------- reload

TEST(ServeReload, PicksUpNewerPublishedCheckpoint) {
  const std::string root = fresh_root("geofm_serve_reload");
  const auto cfg = serve_mae_cfg();
  Rng rng_a(31);
  models::MAE model_a(cfg, rng_a);
  publish_model(root, 1, model_a);

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.model = cfg;
  scfg.poll_interval_seconds = 0;  // reloads driven explicitly
  serve::ModelServer server(scfg);
  EXPECT_EQ(server.model_step(), 1);
  EXPECT_FALSE(server.reload_now());  // nothing newer

  const Tensor image = scene_image(cfg, 7);
  expect_bitwise(server.embed({.key = "", .image = image, .tenant = ""})
                     .embedding,
                 direct_embed(model_a, image));

  Rng rng_b(32);
  models::MAE model_b(cfg, rng_b);
  publish_model(root, 2, model_b);
  EXPECT_TRUE(server.reload_now());
  EXPECT_EQ(server.model_step(), 2);
  EXPECT_EQ(server.model_epoch(), 2);
  expect_bitwise(server.embed({.key = "", .image = image, .tenant = ""})
                     .embedding,
                 direct_embed(model_b, image));
  server.stop();
  fs::remove_all(root);
}

TEST(ServeReload, PollerPicksUpNewCheckpointWithoutExplicitReload) {
  const std::string root = fresh_root("geofm_serve_poller");
  const auto cfg = serve_mae_cfg();
  Rng rng_a(41);
  models::MAE model_a(cfg, rng_a);
  publish_model(root, 1, model_a);

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.model = cfg;
  scfg.poll_interval_seconds = 0.005;
  serve::ModelServer server(scfg);

  Rng rng_b(42);
  models::MAE model_b(cfg, rng_b);
  publish_model(root, 5, model_b);
  // The poller must observe step 5 within a generous deadline.
  for (int i = 0; i < 2000 && server.model_step() != 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.model_step(), 5);
  server.stop();
  fs::remove_all(root);
}

// A reload that cannot read the new shard keeps the server on the old
// weights — serving never goes down because publication went wrong.
TEST(ServeReload, UnreadableNewCheckpointKeepsServingOldWeights) {
  const std::string root = fresh_root("geofm_serve_unreadable");
  const auto cfg = serve_mae_cfg();
  Rng rng_a(51);
  models::MAE model_a(cfg, rng_a);
  publish_model(root, 1, model_a);

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.model = cfg;
  scfg.poll_interval_seconds = 0;
  serve::ModelServer server(scfg);

  Rng rng_b(52);
  models::MAE model_b(cfg, rng_b);
  publish_model(root, 2, model_b);

  const Tensor image = scene_image(cfg, 13);
  {
    // The next restore read fails (any thread, first read op).
    FaultPlan plan;
    plan.events.push_back(FaultEvent::io_unreadable_at_restore(-1, 0));
    InjectorGuard guard(std::move(plan));
    EXPECT_FALSE(server.reload_now());
    EXPECT_EQ(server.model_step(), 1);
    EXPECT_GE(server.stats().reload_failures, 1);
    // Still serving, still on A's weights.
    expect_bitwise(server.embed({.key = "", .image = image, .tenant = ""})
                       .embedding,
                   direct_embed(model_a, image));
  }
  // Fault cleared: the retry (what the next poll tick does) succeeds.
  EXPECT_TRUE(server.reload_now());
  EXPECT_EQ(server.model_step(), 2);
  expect_bitwise(server.embed({.key = "", .image = image, .tenant = ""})
                     .embedding,
                 direct_embed(model_b, image));
  server.stop();
  fs::remove_all(root);
}

// A torn primary write never publishes a manifest, so the server never
// even attempts the bad step — the publication protocol is the first
// line of defense, the reload failure path the second.
TEST(ServeReload, TornPublicationIsInvisibleToServer) {
  const std::string root = fresh_root("geofm_serve_torn");
  const auto cfg = serve_mae_cfg();
  Rng rng_a(61);
  models::MAE model_a(cfg, rng_a);
  publish_model(root, 1, model_a);

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.model = cfg;
  scfg.poll_interval_seconds = 0;
  serve::ModelServer server(scfg);

  {
    FaultPlan plan;
    plan.events.push_back(FaultEvent::io_torn_write(0, 0));
    InjectorGuard guard(std::move(plan));
    Rng rng_b(62);
    models::MAE model_b(cfg, rng_b);
    ckpt::SaveRequest req;
    req.dir = root;
    req.step = 2;
    req.rank = 0;
    req.world = 1;
    req.state = ckpt::replicated_state(model_b, nullptr, 0, 1,
                                       /*for_save=*/true);
    req.tolerate_failures = true;  // degrade: the step simply never lands
    ckpt::Checkpointer saver(/*async=*/false);
    saver.save(req);
  }
  EXPECT_EQ(ckpt::latest_step(root), 1);  // step 2 never published
  EXPECT_FALSE(server.reload_now());
  EXPECT_EQ(server.model_step(), 1);
  EXPECT_EQ(server.stats().reload_failures, 0);  // nothing to even try
  server.stop();
  fs::remove_all(root);
}

// ---------------------------------------------------------------- report

// serve.* spans come from unranked server threads; the run-health report
// must still aggregate them into the serving SLO section (they would be
// dropped by the per-rank filter otherwise).
TEST(ServeReport, HealthReportRendersServeSloLines) {
  auto span = [](const char* name, double dur_s) {
    obs::TraceEvent e;
    e.name = name;
    e.cat = "serve";
    e.rank = -1;  // server threads carry no rank
    e.dur_ns = static_cast<u64>(dur_s * 1e9);
    e.phase = obs::TraceEvent::Phase::kComplete;
    return e;
  };
  std::vector<obs::TraceEvent> events;
  for (int i = 1; i <= 100; ++i) {
    events.push_back(span("serve.request", 0.001 * i));
  }
  events.push_back(span("serve.encode", 0.005));
  events.push_back(span("serve.reload", 0.250));

  const obs::RunHealthReport r = obs::build_run_health_report(events);
  ASSERT_EQ(r.serve_spans.size(), 3u);
  const obs::ServeSpanStats& req = r.serve_spans.at("serve.request");
  EXPECT_EQ(req.count, 100);
  EXPECT_NEAR(req.p50_seconds, 0.050, 1e-9);
  EXPECT_NEAR(req.p99_seconds, 0.099, 1e-9);
  EXPECT_NEAR(req.total_seconds, 5.050, 1e-6);
  EXPECT_EQ(r.serve_spans.at("serve.reload").count, 1);

  const std::string text = obs::report_to_text(r);
  EXPECT_NE(text.find("serving SLO"), std::string::npos);
  EXPECT_NE(text.find("serve.request"), std::string::npos);
  const std::string json = obs::report_to_json(r);
  EXPECT_NE(json.find("\"serve\""), std::string::npos);
  EXPECT_NE(json.find("\"serve.encode\""), std::string::npos);

  // A serving-free run renders no serving section.
  const obs::RunHealthReport empty = obs::build_run_health_report({});
  EXPECT_TRUE(empty.serve_spans.empty());
  EXPECT_EQ(obs::report_to_text(empty).find("serving SLO"),
            std::string::npos);
}

// ---------------------------------------------------------------- E2E

// The acceptance scenario: serve checkpoint A under concurrent load,
// publish checkpoint B mid-stream, hot-swap. (a) no request fails or
// observes mixed weights — every embedding matches the direct forward of
// the step it claims; (b) post-swap requests match B exactly; (c) cache
// hits skip the encoder (serve.encode span count < request count).
TEST(ServeE2E, HotSwapUnderConcurrentLoad) {
  const std::string root = fresh_root("geofm_serve_e2e");
  const auto cfg = serve_mae_cfg();
  Rng rng_a(71);
  models::MAE model_a(cfg, rng_a);
  publish_model(root, 1, model_a);
  Rng rng_b(72);
  models::MAE model_b(cfg, rng_b);

  constexpr int kScenes = 6;
  std::vector<Tensor> images;
  std::vector<Tensor> ref_a;
  std::vector<Tensor> ref_b;
  for (int i = 0; i < kScenes; ++i) {
    images.push_back(scene_image(cfg, static_cast<u64>(i)));
    ref_a.push_back(direct_embed(model_a, images.back()));
    ref_b.push_back(direct_embed(model_b, images.back()));
  }

  auto& recorder = obs::TraceRecorder::instance();
  recorder.enable();
  recorder.clear();

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.model = cfg;
  scfg.max_batch = 4;
  scfg.max_delay_us = 500;
  scfg.cache_capacity = 64;
  scfg.poll_interval_seconds = 0.002;
  serve::ModelServer server(scfg);

  constexpr int kClientThreads = 3;
  constexpr int kPerThread = 40;
  std::atomic<int> failures{0};
  std::atomic<int> mixed{0};
  std::atomic<int> pre_swap{0};
  std::atomic<int> post_swap{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int scene = (t * kPerThread + i) % kScenes;
        serve::EmbedRequest req;
        req.key = "scene_" + std::to_string(scene);
        req.image = images[static_cast<size_t>(scene)];
        serve::EmbedResult r;
        try {
          r = server.embed(std::move(req));
        } catch (const std::exception&) {
          failures.fetch_add(1);
          continue;
        }
        // Every result must be exactly A's or exactly B's output for the
        // step it claims — anything else is a mixed-weights observation.
        const Tensor& want = r.model_step == 1
                                 ? ref_a[static_cast<size_t>(scene)]
                                 : ref_b[static_cast<size_t>(scene)];
        bool exact = r.embedding.numel() == want.numel();
        for (i64 j = 0; exact && j < want.numel(); ++j) {
          if (r.embedding.data()[j] != want.data()[j]) exact = false;
        }
        if (!exact) {
          mixed.fetch_add(1);
        } else if (r.model_step == 1) {
          pre_swap.fetch_add(1);
        } else {
          post_swap.fetch_add(1);
        }
        if (t == 0 && i == kPerThread / 2) {
          publish_model(root, 2, model_b);  // mid-stream publication
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  // The poller must land the swap; late requests then serve B.
  for (int i = 0; i < 2000 && server.model_step() != 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.model_step(), 2);
  EXPECT_EQ(server.model_epoch(), 2);
  serve::EmbedRequest last;
  last.key = "scene_0";
  last.image = images[0];
  serve::EmbedResult after = server.embed(std::move(last));
  EXPECT_EQ(after.model_step, 2);
  expect_bitwise(after.embedding, ref_b[0]);
  server.stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mixed.load(), 0);
  EXPECT_GT(pre_swap.load(), 0);   // some requests rode A's weights...
  EXPECT_GT(post_swap.load(), 0);  // ...and some B's; none in between

  const serve::ServerStats stats = server.stats();
  // With 6 distinct scenes and 121 requests the cache must have hit.
  EXPECT_GT(stats.cache_hits, 0);

  // (c) cache hits skip the encoder: far fewer encode spans than
  // requests, and the span set shows the reload instrumentation fired.
  i64 encode_spans = 0;
  i64 reload_spans = 0;
  for (const auto& e : recorder.snapshot()) {
    if (e.phase != obs::TraceEvent::Phase::kComplete || e.name == nullptr) {
      continue;
    }
    if (std::strcmp(e.name, "serve.encode") == 0) ++encode_spans;
    if (std::strcmp(e.name, "serve.reload") == 0) ++reload_spans;
  }
  const i64 total_requests = kClientThreads * kPerThread + 1;
  EXPECT_GT(encode_spans, 0);
  EXPECT_LT(encode_spans, total_requests);
  EXPECT_GE(reload_spans, 2);  // initial load + at least the hot swap
  recorder.disable();
  fs::remove_all(root);
}

// ---------------------------------------------------------------- overload

// Bounded admission: with the queue full and no worker draining, the
// next submit resolves immediately with a typed Overloaded error — it
// neither blocks nor throws at the call site.
TEST(ServeOverload, FullQueueShedsWithTypedError) {
  serve::RequestBatcher b(
      {/*max_batch=*/4, /*max_delay_us=*/1000, /*max_queue=*/3});
  std::vector<std::future<serve::EmbedResult>> admitted;
  for (int i = 0; i < 3; ++i) {
    admitted.push_back(b.submit(serve::EmbedRequest{}));
  }
  std::future<serve::EmbedResult> shed = b.submit(serve::EmbedRequest{});
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);  // fail-fast, not queued
  EXPECT_THROW(shed.get(), serve::Overloaded);
  const serve::BatcherStats stats = b.stats();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.shed_overload, 1);
  EXPECT_EQ(b.pending(), 3);
  auto batch = b.next_batch();
  for (auto& p : batch) p.promise.set_value({});
}

// Priority lanes: when the queue is full, an interactive arrival takes
// the youngest bulk request's slot (that one sheds Overloaded), and
// next_batch drains the interactive lane first.
TEST(ServeOverload, InteractiveDisplacesYoungestBulk) {
  serve::RequestBatcher b(
      {/*max_batch=*/8, /*max_delay_us=*/0, /*max_queue=*/2});
  serve::EmbedRequest bulk_old;
  bulk_old.key = "bulk_old";
  serve::EmbedRequest bulk_young;
  bulk_young.key = "bulk_young";
  auto fut_old = b.submit(std::move(bulk_old));
  auto fut_young = b.submit(std::move(bulk_young));

  serve::EmbedRequest interactive;
  interactive.key = "interactive";
  interactive.lane = serve::Lane::kInteractive;
  auto fut_inter = b.submit(std::move(interactive));

  // The youngest bulk request yielded its slot.
  ASSERT_EQ(fut_young.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_THROW(fut_young.get(), serve::Overloaded);
  EXPECT_EQ(b.stats().shed_overload, 1);

  std::vector<serve::PendingRequest> batch = b.next_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.key, "interactive");  // priority drains first
  EXPECT_EQ(batch[1].request.key, "bulk_old");
  for (auto& p : batch) p.promise.set_value({});
  (void)fut_old.get();
  (void)fut_inter.get();
}

// A request that expires while queued resolves with DeadlineExceeded at
// the next queue touch and never reaches the worker's batch.
TEST(ServeOverload, ExpiredRequestIsShedNotBatched) {
  serve::RequestBatcher b({/*max_batch=*/4, /*max_delay_us=*/0});
  serve::EmbedRequest doomed;
  doomed.key = "doomed";
  doomed.deadline_us = 1;  // expires essentially immediately
  auto fut_doomed = b.submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  serve::EmbedRequest fine;
  fine.key = "fine";
  auto fut_fine = b.submit(std::move(fine));

  std::vector<serve::PendingRequest> batch = b.next_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.key, "fine");
  EXPECT_THROW(fut_doomed.get(), serve::DeadlineExceeded);
  EXPECT_EQ(b.stats().shed_deadline, 1);
  batch[0].promise.set_value({});
  (void)fut_fine.get();
}

// Deadline-aware admission: once the EWMA of batch service time says the
// queued work exceeds a request's whole budget, the request fails fast
// at submit instead of queueing up to expire.
TEST(ServeOverload, HopelessDeadlineFailsFastAtAdmission) {
  serve::RequestBatcher b({/*max_batch=*/2, /*max_delay_us=*/0});
  b.record_batch_seconds(0.050);  // recent batches take ~50ms

  serve::EmbedRequest hopeless;
  hopeless.deadline_us = 1000;  // 1ms budget against ~50ms of service
  auto fut = b.submit(std::move(hopeless));
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_THROW(fut.get(), serve::DeadlineExceeded);
  EXPECT_EQ(b.pending(), 0);
  EXPECT_EQ(b.stats().shed_deadline, 1);

  // A generous budget still passes the same gate.
  serve::EmbedRequest fine;
  fine.deadline_us = 10'000'000;
  auto fut_fine = b.submit(std::move(fine));
  EXPECT_EQ(b.pending(), 1);
  auto batch = b.next_batch();
  ASSERT_EQ(batch.size(), 1u);
  batch[0].promise.set_value({});
  (void)fut_fine.get();
}

// Shutdown regression: submitters race close() and destruction with
// requests still queued. Every future an accepted submit returned must
// resolve — with a value or a typed ShutdownError, never a broken
// promise and never a hang.
TEST(ServeShutdown, DestructionResolvesEveryQueuedFuture) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  auto b = std::make_unique<serve::RequestBatcher>(
      serve::BatcherOptions{/*max_batch=*/8, /*max_delay_us=*/50000});
  std::mutex futs_mu;
  std::vector<std::future<serve::EmbedResult>> futs;
  std::atomic<bool> go{false};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        auto fut = b->submit(serve::EmbedRequest{});
        std::lock_guard<std::mutex> lk(futs_mu);
        futs.push_back(std::move(fut));
      }
    });
  }
  go.store(true);
  std::this_thread::sleep_for(std::chrono::microseconds(200));
  b->close();  // races the submitters
  for (auto& t : submitters) t.join();

  // Drain one batch the way a worker would, then destroy with the rest
  // still queued: the destructor must complete them, not drop them.
  std::vector<serve::PendingRequest> drained = b->next_batch();
  for (auto& p : drained) p.promise.set_value({});
  b.reset();

  int fulfilled = 0;
  int shutdown = 0;
  int unexpected = 0;
  for (auto& f : futs) {
    try {
      (void)f.get();
      ++fulfilled;
    } catch (const serve::ShutdownError&) {
      ++shutdown;
    } catch (...) {
      ++unexpected;  // broken promise or a mistyped error
    }
  }
  EXPECT_EQ(fulfilled + shutdown, kThreads * kPerThread);
  EXPECT_EQ(unexpected, 0);
  EXPECT_EQ(fulfilled, static_cast<int>(drained.size()));
}

// End-to-end overload: a server with a tiny admission queue under a
// burst far beyond capacity. Some requests are served, the excess sheds
// with typed errors, the books balance, and nothing hangs.
TEST(ServeOverload, ServerShedsExcessAndServesTheRest) {
  const std::string root = fresh_root("geofm_serve_overload");
  const auto cfg = serve_mae_cfg();
  Rng rng(81);
  models::MAE model(cfg, rng);
  publish_model(root, 1, model);

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.model = cfg;
  scfg.max_batch = 2;
  scfg.max_delay_us = 0;
  scfg.max_queue = 4;
  scfg.cache_capacity = 0;  // force every request through the encoder
  scfg.poll_interval_seconds = 0;
  serve::ModelServer server(scfg);

  constexpr int kBurst = 64;
  std::vector<std::future<serve::EmbedResult>> futs;
  for (int i = 0; i < kBurst; ++i) {
    serve::EmbedRequest req;
    req.image = scene_image(cfg, static_cast<u64>(i % 4));
    futs.push_back(server.submit(std::move(req)));
  }
  int served = 0;
  int shed = 0;
  int unexpected = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);  // bounded: nothing hangs
    try {
      (void)f.get();
      ++served;
    } catch (const serve::Overloaded&) {
      ++shed;
    } catch (const serve::DeadlineExceeded&) {
      ++shed;
    } catch (...) {
      ++unexpected;
    }
  }
  EXPECT_EQ(served + shed, kBurst);
  EXPECT_EQ(unexpected, 0);
  EXPECT_GT(served, 0);  // capacity was not zero...
  EXPECT_GT(shed, 0);    // ...and the burst exceeded it
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, served);
  EXPECT_EQ(stats.shed_overload, shed);
  server.stop();
  fs::remove_all(root);
}

// ---------------------------------------------------------------- failover

// Copies `root/step_dir` to `mirror/step_dir` through the real Uploader
// (bitwise copy + destination-side verification).
void mirror_step(const std::string& root, const std::string& mirror,
                 i64 step) {
  ckpt::UploaderOptions uo;
  uo.source = root;
  uo.destination = mirror;
  uo.max_retries = 1;
  ckpt::Uploader uploader(uo);
  uploader.enqueue(step);
  uploader.drain();
  ASSERT_EQ(uploader.newest_uploaded_step(), step);
}

// Primary deleted mid-serve: the next reload fails over to the uploader
// mirror and the served embeddings are bitwise-equal to what the primary
// weights produced. Restoring a newer primary fails back.
TEST(ServeFailover, MirrorServesWhenPrimaryDisappears) {
  const std::string root = fresh_root("geofm_serve_failover");
  const std::string mirror = "/tmp/geofm_serve_failover_mirror";
  fs::remove_all(mirror);
  fs::create_directories(mirror);
  const auto cfg = serve_mae_cfg();
  Rng rng_a(91);
  models::MAE model_a(cfg, rng_a);
  publish_model(root, 1, model_a);
  Rng rng_b(92);
  models::MAE model_b(cfg, rng_b);
  publish_model(root, 2, model_b);
  mirror_step(root, mirror, 2);

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.checkpoint_sources = {root, mirror};
  scfg.model = cfg;
  scfg.poll_interval_seconds = 0;
  serve::ModelServer server(scfg);
  EXPECT_EQ(server.model_step(), 2);
  EXPECT_EQ(server.degraded_mode(), serve::DegradedMode::kHealthy);

  // Roll the primary forward then wipe it before the server reloads:
  // only the mirror still holds a loadable checkpoint (step 2 — older
  // than nothing, newer than nothing; the server is already on 2, so
  // publish 3 to the mirror to give it something newer to take).
  publish_model(root, 3, model_b);
  mirror_step(root, mirror, 3);
  fs::remove_all(root);
  EXPECT_TRUE(server.reload_now());
  EXPECT_EQ(server.model_step(), 3);
  EXPECT_EQ(server.degraded_mode(), serve::DegradedMode::kMirror);
  EXPECT_GE(server.stats().failovers, 1);

  // Bitwise parity with the weights the primary published.
  const Tensor image = scene_image(cfg, 17);
  expect_bitwise(
      server.embed({.key = "", .image = image, .tenant = ""}).embedding,
      direct_embed(model_b, image));

  // Primary comes back with a newer step: served from source 0 again.
  ckpt::reset_save_state(root);
  Rng rng_c(93);
  models::MAE model_c(cfg, rng_c);
  publish_model(root, 4, model_c);
  EXPECT_TRUE(server.reload_now());
  EXPECT_EQ(server.model_step(), 4);
  EXPECT_EQ(server.degraded_mode(), serve::DegradedMode::kHealthy);
  expect_bitwise(
      server.embed({.key = "", .image = image, .tenant = ""}).embedding,
      direct_embed(model_c, image));
  server.stop();
  fs::remove_all(root);
  fs::remove_all(mirror);
}

// A torn mirror copy (truncated shard behind a published manifest) must
// not be trusted: verification rejects it, the old weights keep serving,
// and repeated failing ticks trip the reload circuit breaker, which
// then suppresses the poller until its backoff expires.
TEST(ServeBreaker, TornMirrorTripsBreakerOldWeightsServe) {
  const std::string root = fresh_root("geofm_serve_breaker");
  const std::string mirror = "/tmp/geofm_serve_breaker_mirror";
  fs::remove_all(mirror);
  fs::create_directories(mirror);
  const auto cfg = serve_mae_cfg();
  Rng rng_a(101);
  models::MAE model_a(cfg, rng_a);
  publish_model(root, 1, model_a);
  Rng rng_b(102);
  models::MAE model_b(cfg, rng_b);
  publish_model(root, 2, model_b);
  mirror_step(root, mirror, 2);

  // Tear the mirror copy of step 2 after the fact: halve its first
  // shard. The manifest still publishes it, so only checksum
  // verification stands between the server and garbage weights.
  const std::string step_dir = mirror + "/" + ckpt::format::step_dir_name(2);
  const ckpt::format::Manifest man = ckpt::format::read_manifest(step_dir);
  ASSERT_FALSE(man.shards.empty());
  const std::string shard = step_dir + "/" + man.shards.front();
  fs::resize_file(shard, fs::file_size(shard) / 2);
  // And the primary loses step 2 entirely: the mirror is the only
  // candidate newer than the served step 1... once the server loads 1.
  fs::remove_all(root + "/" + ckpt::format::step_dir_name(2));

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.checkpoint_sources = {root, mirror};
  scfg.model = cfg;
  scfg.poll_interval_seconds = 0.002;
  scfg.breaker_threshold = 2;
  // Big, escalating backoff so the open breaker is observable.
  scfg.breaker_backoff = {/*initial_seconds=*/5.0, /*max_seconds=*/30.0,
                          /*jitter=*/0.5, /*seed=*/7};
  serve::ModelServer server(scfg);
  EXPECT_EQ(server.model_step(), 1);

  // The poller keeps finding the torn mirror candidate and failing; at
  // the threshold the breaker must trip.
  for (int i = 0; i < 4000 && server.stats().breaker_trips == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.stats().breaker_trips, 1);
  EXPECT_EQ(server.degraded_mode(), serve::DegradedMode::kBreakerOpen);
  EXPECT_EQ(server.model_step(), 1);  // never swapped to garbage

  // Open breaker: the poller stops hammering the torn publication. The
  // jittered backoff is >= 2.5s, so failures must freeze well beyond the
  // 2ms poll interval (one in-flight tick of slack).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const i64 failures_at_trip = server.stats().reload_failures;
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LE(server.stats().reload_failures, failures_at_trip + 1);

  // Old weights keep serving, bitwise.
  const Tensor image = scene_image(cfg, 23);
  expect_bitwise(
      server.embed({.key = "", .image = image, .tenant = ""}).embedding,
      direct_embed(model_a, image));

  // Operator override: a good primary publication + reload_now() loads
  // despite the open breaker and closes it.
  Rng rng_c(103);
  models::MAE model_c(cfg, rng_c);
  publish_model(root, 5, model_c);
  EXPECT_TRUE(server.reload_now());
  EXPECT_EQ(server.model_step(), 5);
  EXPECT_EQ(server.degraded_mode(), serve::DegradedMode::kHealthy);
  server.stop();
  fs::remove_all(root);
  fs::remove_all(mirror);
}

// Tenant fair-share: one tenant's flood cannot monopolize a full queue
// against a lighter tenant's trickle. Weights A:3 / B:1 over max_queue 8
// settle at 6 A slots + 2 B slots: B displaces A's youngest while B is
// under its share ((b+1)/1 < a/3), then B's own arrivals are rejected —
// so of 8 A + 8 B submissions exactly 2 sheds are fair-share
// displacements and the drained queue splits 6/2.
TEST(ServeOverload, TenantFairShareDisplacesFloodingTenant) {
  serve::RequestBatcher b({/*max_batch=*/8, /*max_delay_us=*/0,
                           /*max_queue=*/8,
                           /*tenant_weights=*/{{"A", 3.0}, {"B", 1.0}}});
  const double fair_share_metric_before =
      obs::MetricsRegistry::instance().counter("serve.shed_fair_share").value();

  std::vector<std::future<serve::EmbedResult>> a_futs;
  std::vector<std::future<serve::EmbedResult>> b_futs;
  for (int i = 0; i < 8; ++i) {
    serve::EmbedRequest req;
    req.key = "A" + std::to_string(i);
    req.tenant = "A";
    a_futs.push_back(b.submit(std::move(req)));
  }
  for (int i = 0; i < 8; ++i) {
    serve::EmbedRequest req;
    req.key = "B" + std::to_string(i);
    req.tenant = "B";
    b_futs.push_back(b.submit(std::move(req)));
  }

  const serve::BatcherStats stats = b.stats();
  EXPECT_EQ(stats.shed_overload, 8);    // 2 displaced A + 6 rejected B
  EXPECT_EQ(stats.shed_fair_share, 2);  // only the displacements
  EXPECT_EQ(b.pending(), 8);
  EXPECT_EQ(obs::MetricsRegistry::instance()
                    .counter("serve.shed_fair_share")
                    .value() -
                fair_share_metric_before,
            2.0);

  // The displaced A requests (youngest first) and the rejected B
  // requests all shed with the typed Overloaded error, immediately.
  int a_shed = 0;
  int b_shed = 0;
  const auto count_shed = [](std::vector<std::future<serve::EmbedResult>>& fs,
                             int* shed) {
    for (auto& f : fs) {
      if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
        continue;  // still queued
      }
      EXPECT_THROW(f.get(), serve::Overloaded);
      *shed += 1;
    }
  };
  count_shed(a_futs, &a_shed);
  count_shed(b_futs, &b_shed);
  EXPECT_EQ(a_shed, 2);
  EXPECT_EQ(b_shed, 6);

  // The queue drains 6 A + 2 B.
  std::vector<serve::PendingRequest> batch = b.next_batch();
  int a_left = 0;
  int b_left = 0;
  for (auto& p : batch) {
    (p.request.tenant == "A" ? a_left : b_left) += 1;
    p.promise.set_value({});
  }
  EXPECT_EQ(a_left, 6);
  EXPECT_EQ(b_left, 2);
}

// The breaker's *current* state (not just the trip counter) and the
// degraded mode are live gauges in the Prometheus exposition, and
// ServerStats mirrors them — the PR 9 alerting leftover.
TEST(ServeBreaker, BreakerStateAndDegradedModeAreGauges) {
  const std::string root = fresh_root("geofm_serve_breaker_gauge");
  const std::string mirror = "/tmp/geofm_serve_breaker_gauge_mirror";
  fs::remove_all(mirror);
  fs::create_directories(mirror);
  const auto cfg = serve_mae_cfg();
  Rng rng_a(111);
  models::MAE model_a(cfg, rng_a);
  publish_model(root, 1, model_a);
  Rng rng_b(112);
  models::MAE model_b(cfg, rng_b);
  publish_model(root, 2, model_b);
  mirror_step(root, mirror, 2);
  // Tear the mirror's step 2 and delete the primary's: every reload tick
  // now finds only the torn candidate and fails (same shape as
  // TornMirrorTripsBreakerOldWeightsServe above).
  const std::string step_dir = mirror + "/" + ckpt::format::step_dir_name(2);
  const ckpt::format::Manifest man = ckpt::format::read_manifest(step_dir);
  ASSERT_FALSE(man.shards.empty());
  const std::string shard = step_dir + "/" + man.shards.front();
  fs::resize_file(shard, fs::file_size(shard) / 2);
  fs::remove_all(root + "/" + ckpt::format::step_dir_name(2));

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.checkpoint_sources = {root, mirror};
  scfg.model = cfg;
  scfg.poll_interval_seconds = 0.002;
  scfg.breaker_threshold = 2;
  scfg.breaker_backoff = {/*initial_seconds=*/5.0, /*max_seconds=*/30.0,
                          /*jitter=*/0.5, /*seed=*/7};
  serve::ModelServer server(scfg);
  EXPECT_FALSE(server.stats().breaker_open);

  for (int i = 0; i < 4000 && !server.stats().breaker_open; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server.stats().breaker_open);
  std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("# TYPE geofm_serve_breaker gauge"), std::string::npos);
  EXPECT_NE(text.find("geofm_serve_breaker 1\n"), std::string::npos);
  // DegradedMode::kBreakerOpen == 1 on the serve.degraded gauge.
  EXPECT_NE(text.find("geofm_serve_degraded 1\n"), std::string::npos);

  // A good publication + operator reload closes the breaker; both gauges
  // drop back to healthy.
  Rng rng_c(113);
  models::MAE model_c(cfg, rng_c);
  publish_model(root, 5, model_c);
  EXPECT_TRUE(server.reload_now());
  EXPECT_FALSE(server.stats().breaker_open);
  text = obs::prometheus_text();
  EXPECT_NE(text.find("geofm_serve_breaker 0\n"), std::string::npos);
  EXPECT_NE(text.find("geofm_serve_degraded 0\n"), std::string::npos);
  server.stop();
  fs::remove_all(root);
  fs::remove_all(mirror);
}

// Every source gone: with unload_on_sourceless the server drops to
// cache-only mode — epoch-pinned cache hits still answer (flagged
// degraded), misses shed with the typed Degraded error — and the next
// publication restores full service.
TEST(ServeFailover, AllSourcesGoneServesCacheOnly) {
  const std::string root = fresh_root("geofm_serve_cacheonly");
  const auto cfg = serve_mae_cfg();
  Rng rng_a(111);
  models::MAE model_a(cfg, rng_a);
  publish_model(root, 1, model_a);

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.model = cfg;
  scfg.cache_capacity = 16;
  scfg.poll_interval_seconds = 0;
  scfg.unload_on_sourceless = true;
  serve::ModelServer server(scfg);

  // Warm the cache with one keyed scene.
  const Tensor image = scene_image(cfg, 29);
  const serve::EmbedResult warm =
      server.embed({.key = "scene", .image = image, .tenant = ""});
  EXPECT_FALSE(warm.degraded);

  fs::remove_all(root);
  EXPECT_FALSE(server.reload_now());  // nothing loadable -> unload
  EXPECT_EQ(server.degraded_mode(), serve::DegradedMode::kCacheOnly);

  // The cached key still answers — same epoch, same bits — and says so.
  const serve::EmbedResult hit =
      server.embed({.key = "scene", .image = image, .tenant = ""});
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_TRUE(hit.degraded);
  expect_bitwise(hit.embedding, warm.embedding);

  // A miss cannot be computed without weights: typed shed.
  EXPECT_THROW(server.embed({.key = "other",
                             .image = scene_image(cfg, 31),
                             .tenant = ""}),
               serve::Degraded);
  EXPECT_GE(server.stats().shed_degraded, 1);

  // Re-publication restores full service (fresh epoch: the old cache
  // entries are invalidated, new encodes flow).
  ckpt::reset_save_state(root);
  Rng rng_b(112);
  models::MAE model_b(cfg, rng_b);
  publish_model(root, 2, model_b);
  EXPECT_TRUE(server.reload_now());
  EXPECT_EQ(server.degraded_mode(), serve::DegradedMode::kHealthy);
  const serve::EmbedResult back =
      server.embed({.key = "other", .image = scene_image(cfg, 31),
                    .tenant = ""});
  EXPECT_FALSE(back.degraded);
  expect_bitwise(back.embedding,
                 direct_embed(model_b, scene_image(cfg, 31)));
  server.stop();
  fs::remove_all(root);
}

// allow_degraded_start: constructing against a root with nothing
// loadable starts cache-only instead of throwing; the first publication
// brings the server up.
TEST(ServeFailover, DegradedStartRecoversOnFirstPublication) {
  const std::string root = fresh_root("geofm_serve_degraded_start");
  const auto cfg = serve_mae_cfg();

  serve::ServerConfig scfg;
  scfg.checkpoint_root = root;
  scfg.model = cfg;
  scfg.poll_interval_seconds = 0;
  // Without the opt-in this is a construction error.
  EXPECT_THROW(serve::ModelServer{scfg}, Error);

  scfg.allow_degraded_start = true;
  serve::ModelServer server(scfg);
  EXPECT_EQ(server.degraded_mode(), serve::DegradedMode::kCacheOnly);
  EXPECT_THROW(server.embed({.key = "k",
                             .image = scene_image(cfg, 1),
                             .tenant = ""}),
               serve::Degraded);

  Rng rng(121);
  models::MAE model(cfg, rng);
  publish_model(root, 1, model);
  EXPECT_TRUE(server.reload_now());
  EXPECT_EQ(server.degraded_mode(), serve::DegradedMode::kHealthy);
  EXPECT_EQ(server.model_epoch(), 1);
  expect_bitwise(server.embed({.key = "k",
                               .image = scene_image(cfg, 1),
                               .tenant = ""})
                     .embedding,
                 direct_embed(model, scene_image(cfg, 1)));
  server.stop();
  fs::remove_all(root);
}

// Resilience accounting in the run-health report: serve.* instants are
// tallied, and the low-frequency mode transitions land in the recovery
// timeline while per-request sheds stay aggregate-only.
TEST(ServeReport, ResilienceInstantsAreCountedAndRendered) {
  auto instant = [](const char* name) {
    obs::TraceEvent e;
    e.name = name;
    e.cat = "serve";
    e.rank = -1;
    e.phase = obs::TraceEvent::Phase::kInstant;
    return e;
  };
  std::vector<obs::TraceEvent> events;
  for (int i = 0; i < 5; ++i) events.push_back(instant("serve.shed_overload"));
  for (int i = 0; i < 3; ++i) events.push_back(instant("serve.shed_deadline"));
  events.push_back(instant("serve.shed_degraded"));
  events.push_back(instant("serve.breaker_open"));
  events.push_back(instant("serve.failover"));
  events.push_back(instant("serve.cache_only"));

  const obs::RunHealthReport r = obs::build_run_health_report(events);
  EXPECT_EQ(r.serve_resilience.shed_overload, 5);
  EXPECT_EQ(r.serve_resilience.shed_deadline, 3);
  EXPECT_EQ(r.serve_resilience.shed_degraded, 1);
  EXPECT_EQ(r.serve_resilience.breaker_trips, 1);
  EXPECT_EQ(r.serve_resilience.failovers, 1);
  EXPECT_EQ(r.serve_resilience.cache_only_entries, 1);

  // Timeline: mode transitions only, not the per-request sheds.
  size_t timeline_serve = 0;
  for (const auto& t : r.recovery_timeline) {
    if (t.name.rfind("serve.", 0) == 0) ++timeline_serve;
    EXPECT_EQ(t.name.find("serve.shed"), std::string::npos);
  }
  EXPECT_EQ(timeline_serve, 3u);

  const std::string text = obs::report_to_text(r);
  EXPECT_NE(text.find("serving resilience"), std::string::npos);
  EXPECT_NE(text.find("1 breaker trip"), std::string::npos);
  const std::string json = obs::report_to_json(r);
  EXPECT_NE(json.find("\"serve_resilience\""), std::string::npos);
  EXPECT_NE(json.find("\"shed_overload\": 5"), std::string::npos);

  // A calm run renders no resilience line.
  const obs::RunHealthReport calm = obs::build_run_health_report({});
  EXPECT_FALSE(calm.serve_resilience.any());
  EXPECT_EQ(obs::report_to_text(calm).find("serving resilience"),
            std::string::npos);
}

}  // namespace
}  // namespace geofm
