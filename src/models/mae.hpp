// Masked Autoencoder (He et al.) for ViT pretraining, as adopted by the
// paper: random 75% patch masking, ViT encoder over visible patches only,
// a lightweight transformer decoder that reconstructs all patches, and an
// MSE loss on per-patch-normalized pixels of the masked patches.
#pragma once

#include <memory>
#include <vector>

#include "models/config.hpp"
#include "nn/block.hpp"
#include "nn/hooks.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/patch_embed.hpp"
#include "nn/staged_model.hpp"

namespace geofm::models {

class MAE : public nn::Module, public nn::StagedModel {
 public:
  MAE(const MaeConfig& cfg, Rng& rng);

  /// Runs the full masked-autoencoding step on a batch and returns the
  /// masked-reconstruction loss. Sample `bi`'s mask is drawn from the
  /// stream mask_rng.split(sample_offset + bi), so masking is a pure
  /// function of (step rng, global sample index) — data-parallel ranks
  /// processing a slice of a global batch pass their slice offset and
  /// reproduce exactly the masks a single-rank run would generate.
  float forward(const Tensor& images, Rng& mask_rng, i64 sample_offset = 0);

  /// Backpropagates the loss from the last forward; accumulates all
  /// parameter gradients. Returns d(images) (rarely used).
  Tensor backward();

  /// How downstream features are read out of the encoder.
  enum class Pool {
    kGap,  // mean of patch tokens after the encoder norm (default)
    kCls,  // class-token feature
  };

  /// Feature extraction for downstream adaptation: runs the *unmasked*
  /// full patch sequence through the encoder and returns per-image
  /// features [B, encoder width]. Inference only (no activation caching
  /// is preserved for backward).
  Tensor encode(const Tensor& images, Pool pool = Pool::kGap);

  std::vector<nn::Parameter*> parameters() override;

  /// The encoder-only parameter subset (patch embed, cls token, encoder
  /// blocks, encoder norm) — exactly what encode() reads. The serving
  /// tier restores just these from full MAE checkpoints, skipping the
  /// decoder weights a frozen-encoder service never runs.
  std::vector<nn::Parameter*> encoder_parameters();

  const MaeConfig& config() const { return cfg_; }
  /// Number of visible (kept) patches per sample.
  i64 n_keep() const { return n_keep_; }

  /// Reconstruction of the last forward, [B, N, patch_dim] in normalized-
  /// pixel space (for visualization/examples).
  const Tensor& last_prediction() const { return pred_; }
  /// 1 = masked (reconstructed & scored), 0 = visible; length B*N.
  const std::vector<u32>& last_mask() const { return mask_; }

  // ----- FSDP integration: stages = encoder blocks then decoder blocks -----
  int n_stages() const override {
    return static_cast<int>(enc_blocks_.size() + dec_blocks_.size());
  }
  std::vector<nn::Module*> stage_modules();
  std::vector<nn::Parameter*> root_parameters();
  void set_stage_hooks(const nn::StageHooks* hooks) { hooks_ = hooks; }

  std::vector<nn::Module*> stages() override { return stage_modules(); }
  std::vector<nn::Parameter*> root_params() override {
    return root_parameters();
  }
  void install_stage_hooks(const nn::StageHooks* hooks) override {
    set_stage_hooks(hooks);
  }
  nn::Module& module() override { return *this; }

  // Encoder
  nn::PatchEmbed patch_embed;
  nn::Parameter cls_token;
  nn::LayerNorm enc_norm;
  // Decoder
  nn::Linear dec_embed;    // enc width -> dec width
  nn::Parameter mask_token;  // [1, dec width]
  nn::LayerNorm dec_norm;
  nn::Linear pred;  // dec width -> patch_dim

 private:
  MaeConfig cfg_;
  i64 n_keep_;
  Tensor enc_pos_;  // [N+1, enc width]
  Tensor dec_pos_;  // [N+1, dec width]
  std::vector<std::unique_ptr<nn::TransformerBlock>> enc_blocks_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> dec_blocks_;
  const nn::StageHooks* hooks_ = nullptr;

  // Forward cache for the backward pass.
  i64 batch_ = 0;
  std::vector<i64> keep_index_;  // flat gather index into [B*N] rows
  std::vector<u32> mask_;        // per (b, patch): 1 if masked
  Tensor pred_;                  // [B, N, patch_dim]
  Tensor dpred_;                 // d(loss)/d(pred), [B*N, patch_dim]
};

}  // namespace geofm::models
