#include "models/config.hpp"

namespace geofm::models {
namespace {

// Parameters of one pre-norm transformer block of width w, MLP hidden m.
i64 block_params(i64 w, i64 m) {
  const i64 ln = 2 * w;                 // gamma + beta
  const i64 qkv = w * 3 * w + 3 * w;    // fused QKV with bias
  const i64 proj = w * w + w;
  const i64 fc1 = w * m + m;
  const i64 fc2 = m * w + w;
  return 2 * ln + qkv + proj + fc1 + fc2;
}

}  // namespace

i64 ViTConfig::param_count() const {
  const i64 patch_embed = patch_dim() * width + width;
  const i64 cls = width;
  const i64 blocks = depth * block_params(width, mlp_dim);
  const i64 final_ln = 2 * width;
  return patch_embed + cls + blocks + final_ln;
}

i64 MaeConfig::param_count() const {
  const i64 dw = decoder_width;
  const i64 pdim = encoder.patch_dim();
  const i64 embed = encoder.width * dw + dw;
  const i64 mask_token = dw;
  const i64 blocks = decoder_depth * block_params(dw, 4 * dw);
  const i64 final_ln = 2 * dw;
  const i64 pred = dw * pdim + pdim;
  return encoder.param_count() + embed + mask_token + blocks + final_ln + pred;
}

ViTConfig vit_base() {
  return {.name = "ViT-Base", .width = 768, .depth = 12, .mlp_dim = 3072,
          .heads = 12, .img_size = 224, .patch_size = 16, .in_channels = 3};
}

ViTConfig vit_huge() {
  return {.name = "ViT-Huge", .width = 1280, .depth = 32, .mlp_dim = 5120,
          .heads = 16, .img_size = 224, .patch_size = 14, .in_channels = 3};
}

ViTConfig vit_1b() {
  return {.name = "ViT-1B", .width = 1536, .depth = 32, .mlp_dim = 6144,
          .heads = 16, .img_size = 224, .patch_size = 14, .in_channels = 3};
}

ViTConfig vit_3b() {
  return {.name = "ViT-3B", .width = 2816, .depth = 32, .mlp_dim = 11264,
          .heads = 32, .img_size = 224, .patch_size = 14, .in_channels = 3};
}

ViTConfig vit_5b() {
  return {.name = "ViT-5B", .width = 1792, .depth = 56, .mlp_dim = 15360,
          .heads = 16, .img_size = 224, .patch_size = 14, .in_channels = 3};
}

ViTConfig vit_15b() {
  return {.name = "ViT-15B", .width = 5040, .depth = 48, .mlp_dim = 20160,
          .heads = 48, .img_size = 224, .patch_size = 14, .in_channels = 3};
}

std::vector<ViTConfig> table1_variants() {
  return {vit_base(), vit_huge(), vit_1b(), vit_3b(), vit_5b(), vit_15b()};
}

// Proxy widths keep Table I's relative ordering (and head dim 8) while
// shrinking compute by ~3 orders of magnitude. 32x32 inputs, 8x8 patches.
// This ladder (w8/16/24/32) is the regime where downstream accuracy scales
// monotonically with capacity under the paper's shared-hyperparameter
// protocol on our CPU budget; wider proxies need more pretraining steps
// than a laptop-scale run affords (see EXPERIMENTS.md).
ViTConfig proxy_base() {
  return {.name = "ViT-Base-proxy", .width = 8, .depth = 2, .mlp_dim = 32,
          .heads = 1, .img_size = 32, .patch_size = 8, .in_channels = 3};
}

ViTConfig proxy_huge() {
  return {.name = "ViT-Huge-proxy", .width = 16, .depth = 3, .mlp_dim = 64,
          .heads = 2, .img_size = 32, .patch_size = 8, .in_channels = 3};
}

ViTConfig proxy_1b() {
  return {.name = "ViT-1B-proxy", .width = 24, .depth = 4, .mlp_dim = 96,
          .heads = 3, .img_size = 32, .patch_size = 8, .in_channels = 3};
}

ViTConfig proxy_3b() {
  return {.name = "ViT-3B-proxy", .width = 32, .depth = 4, .mlp_dim = 128,
          .heads = 4, .img_size = 32, .patch_size = 8, .in_channels = 3};
}

std::vector<ViTConfig> proxy_variants() {
  return {proxy_base(), proxy_huge(), proxy_1b(), proxy_3b()};
}

MaeConfig mae_for(const ViTConfig& encoder) {
  MaeConfig cfg;
  cfg.encoder = encoder;
  if (encoder.width <= 128) {
    // Proxy scale: a fixed lightweight decoder shared by all encoder
    // sizes, as in the paper (512x8 there). Wide enough that the decoder
    // is never the reconstruction bottleneck — encoder capacity must be
    // what differentiates the models.
    cfg.decoder_width = 32;
    cfg.decoder_depth = 2;
    cfg.decoder_heads = 4;
  }
  return cfg;
}

}  // namespace geofm::models
