// Model architecture configurations (paper Table I) plus the scaled-down
// "proxy" variants used for functional pretraining experiments (Figs 5/6).
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace geofm::models {

/// A ViT encoder architecture. Matches paper Table I columns.
struct ViTConfig {
  std::string name;
  i64 width = 0;     // embedding size
  i64 depth = 0;     // number of encoder blocks
  i64 mlp_dim = 0;   // MLP hidden width
  i64 heads = 0;     // attention heads per layer
  i64 img_size = 224;
  i64 patch_size = 16;
  i64 in_channels = 3;

  i64 n_patches() const {
    return (img_size / patch_size) * (img_size / patch_size);
  }
  i64 seq_len() const { return n_patches() + 1; }  // + cls token
  i64 patch_dim() const { return patch_size * patch_size * in_channels; }

  /// Analytic learnable-parameter count of the encoder (patch embed + cls
  /// token + blocks + final norm), matching what the model will allocate.
  i64 param_count() const;
};

/// MAE = ViT encoder + lightweight decoder. The paper adopts the MAE
/// default decoder: 8 blocks, width 512, 16 heads.
struct MaeConfig {
  ViTConfig encoder;
  i64 decoder_width = 512;
  i64 decoder_depth = 8;
  i64 decoder_heads = 16;
  double mask_ratio = 0.75;

  i64 param_count() const;
};

// ----- Paper Table I variants (patch 16 for Base, 14 for larger) -----------

ViTConfig vit_base();   //  87M
ViTConfig vit_huge();   // 635M
ViTConfig vit_1b();     // 914M
ViTConfig vit_3b();     // 3067M
ViTConfig vit_5b();     // 5349M (paper; see note in EXPERIMENTS.md)
ViTConfig vit_15b();    // 14720M

/// All six Table I variants in paper order.
std::vector<ViTConfig> table1_variants();

// ----- Proxy variants for functional (CPU-trainable) experiments ------------
//
// Same depth progression and width *ratios* as Table I, shrunk ~48x in
// width and to 32x32 inputs so that four MAE pretrainings plus sixteen
// linear probes finish in CPU minutes. Used by Figs 5/6 and Table III.

ViTConfig proxy_base();
ViTConfig proxy_huge();
ViTConfig proxy_1b();
ViTConfig proxy_3b();
std::vector<ViTConfig> proxy_variants();

/// MAE wrapper for any encoder config; the decoder shrinks proportionally
/// for proxy-sized encoders (width <= 128).
MaeConfig mae_for(const ViTConfig& encoder);

}  // namespace geofm::models
