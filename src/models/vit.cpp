#include "models/vit.hpp"

#include "nn/pos_embed.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace geofm::models {
namespace {

// Prepends a broadcast class-token row to [B,N,C] -> [B,N+1,C].
Tensor prepend_cls(const Tensor& tokens, const Tensor& cls) {
  const i64 b = tokens.dim(0), n = tokens.dim(1), c = tokens.dim(2);
  Tensor out({b, n + 1, c});
  const float* tp = tokens.data();
  const float* cp = cls.data();
  float* op = out.data();
  parallel_for(b, [&](i64 b0, i64 b1) {
    for (i64 bi = b0; bi < b1; ++bi) {
      float* row = op + bi * (n + 1) * c;
      for (i64 j = 0; j < c; ++j) row[j] = cp[j];
      std::copy_n(tp + bi * n * c, n * c, row + c);
    }
  });
  return out;
}

// Adds a [T, C] table to every batch element of [B, T, C].
void add_pos(Tensor& x, const Tensor& pos) {
  const i64 b = x.dim(0), t = x.dim(1), c = x.dim(2);
  GEOFM_CHECK(pos.numel() == t * c, "pos table size mismatch");
  float* xp = x.data();
  const float* pp = pos.data();
  parallel_for(b, [&](i64 b0, i64 b1) {
    for (i64 bi = b0; bi < b1; ++bi) {
      float* base = xp + bi * t * c;
      for (i64 i = 0; i < t * c; ++i) base[i] += pp[i];
    }
  });
}

}  // namespace

ViTEncoder::ViTEncoder(const ViTConfig& cfg, Rng& rng, i64 num_classes)
    : patch_embed("vit.patch_embed", cfg.img_size, cfg.patch_size,
                  cfg.in_channels, cfg.width, rng),
      norm("vit.norm", cfg.width),
      cfg_(cfg) {
  GEOFM_CHECK(cfg.width % cfg.heads == 0, "width not divisible by heads");
  cls_token.name = "vit.cls_token";
  cls_token.value = Tensor({1, cfg.width});
  nn::trunc_normal_(cls_token.value, rng);

  const i64 grid = cfg.img_size / cfg.patch_size;
  pos_embed_ = nn::sincos_pos_embed_2d(cfg.width, grid, /*with_cls_token=*/true);

  blocks_.reserve(static_cast<size_t>(cfg.depth));
  for (i64 i = 0; i < cfg.depth; ++i) {
    blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        "vit.block" + std::to_string(i), cfg.width, cfg.heads, cfg.mlp_dim,
        rng));
  }
  if (num_classes > 0) {
    head_ = std::make_unique<nn::Linear>("vit.head", cfg.width, num_classes,
                                         rng);
    // Linear-probing convention: near-zero head init.
    head_->weight.value.scale_(0.01f);
  }
}

Tensor ViTEncoder::forward(const Tensor& images) {
  cached_batch_ = images.dim(0);
  Tensor tokens = patch_embed.forward(images);  // [B,N,w]
  // Patch tokens take pos rows 1..N (row 0 is the cls slot).
  Tensor patch_pos = pos_embed_.flat_view(cfg_.width,
                                          cfg_.n_patches() * cfg_.width);
  add_pos(tokens, patch_pos);

  Tensor x = prepend_cls(tokens, cls_token.value);
  // The cls row gets pos row 0 (zeros by construction, kept for fidelity).

  for (size_t i = 0; i < blocks_.size(); ++i) {
    const int stage = static_cast<int>(i);
    if (hooks_ != nullptr) hooks_->fire_before_forward(stage);
    {
      obs::TraceScope span("stage.forward", "compute", "stage", stage);
      x = blocks_[i]->forward(x);
    }
    if (hooks_ != nullptr) hooks_->fire_after_forward(stage);
  }
  x = norm.forward(x);

  // Class-token readout.
  const i64 b = x.dim(0), t = x.dim(1), c = x.dim(2);
  Tensor cls_feat({b, c});
  for (i64 bi = 0; bi < b; ++bi) {
    std::copy_n(x.data() + bi * t * c, c, cls_feat.data() + bi * c);
  }
  if (head_ != nullptr) return head_->forward(cls_feat);
  return cls_feat;
}

Tensor ViTEncoder::backward(const Tensor& dy) {
  GEOFM_CHECK(cached_batch_ > 0, "ViT backward before forward");
  const i64 b = cached_batch_;
  const i64 t = cfg_.seq_len();
  const i64 c = cfg_.width;

  Tensor dcls = (head_ != nullptr) ? head_->backward(dy) : dy;
  GEOFM_CHECK(dcls.dim(0) == b && dcls.dim(-1) == c);

  // Only the cls row receives upstream gradient.
  Tensor dx = Tensor::zeros({b, t, c});
  for (i64 bi = 0; bi < b; ++bi) {
    std::copy_n(dcls.data() + bi * c, c, dx.data() + bi * t * c);
  }

  dx = norm.backward(dx);
  for (int i = static_cast<int>(blocks_.size()) - 1; i >= 0; --i) {
    if (hooks_ != nullptr) hooks_->fire_before_backward(i);
    {
      obs::TraceScope span("stage.backward", "compute", "stage", i);
      dx = blocks_[static_cast<size_t>(i)]->backward(dx);
    }
    if (hooks_ != nullptr) hooks_->fire_after_backward(i);
  }

  // Split gradient into the cls parameter and the patch tokens.
  if (cls_token.requires_grad) {
    cls_token.ensure_grad();
    float* cg = cls_token.grad.data();
    for (i64 bi = 0; bi < b; ++bi) {
      const float* row = dx.data() + bi * t * c;
      for (i64 j = 0; j < c; ++j) cg[j] += row[j];
    }
  }
  Tensor dtokens({b, t - 1, c});
  for (i64 bi = 0; bi < b; ++bi) {
    std::copy_n(dx.data() + bi * t * c + c, (t - 1) * c,
                dtokens.data() + bi * (t - 1) * c);
  }
  // Positional table is fixed (non-learned): gradient passes through.
  return patch_embed.backward(dtokens);
}

std::vector<nn::Parameter*> ViTEncoder::parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Parameter* p : patch_embed.parameters()) out.push_back(p);
  out.push_back(&cls_token);
  for (auto& blk : blocks_) {
    for (nn::Parameter* p : blk->parameters()) out.push_back(p);
  }
  for (nn::Parameter* p : norm.parameters()) out.push_back(p);
  if (head_ != nullptr) {
    for (nn::Parameter* p : head_->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<nn::Module*> ViTEncoder::stage_modules() {
  std::vector<nn::Module*> out;
  out.reserve(blocks_.size());
  for (auto& blk : blocks_) out.push_back(blk.get());
  return out;
}

std::vector<nn::Parameter*> ViTEncoder::root_parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Parameter* p : patch_embed.parameters()) out.push_back(p);
  out.push_back(&cls_token);
  for (nn::Parameter* p : norm.parameters()) out.push_back(p);
  if (head_ != nullptr) {
    for (nn::Parameter* p : head_->parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace geofm::models
