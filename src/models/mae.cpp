#include "models/mae.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/pos_embed.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace geofm::models {
namespace {

// Adds a [T, C] table to every batch element of [B, T, C].
void add_pos(Tensor& x, const Tensor& pos, i64 first_row) {
  const i64 b = x.dim(0), t = x.dim(1), c = x.dim(2);
  const float* pp = pos.data() + first_row * c;
  float* xp = x.data();
  for (i64 bi = 0; bi < b; ++bi) {
    float* base = xp + bi * t * c;
    for (i64 i = 0; i < t * c; ++i) base[i] += pp[i];
  }
}

// Adds pos rows selected by an index per token (for the gathered visible
// set, whose positions are non-contiguous).
void add_pos_gathered(Tensor& x, const Tensor& pos,
                      const std::vector<i64>& patch_of_token) {
  const i64 rows = x.dim(0) * x.dim(1);
  const i64 c = x.dim(2);
  GEOFM_CHECK(static_cast<i64>(patch_of_token.size()) == rows);
  float* xp = x.data();
  const float* pp = pos.data();
  for (i64 r = 0; r < rows; ++r) {
    const float* src = pp + patch_of_token[static_cast<size_t>(r)] * c;
    float* dst = xp + r * c;
    for (i64 j = 0; j < c; ++j) dst[j] += src[j];
  }
}

Tensor prepend_cls(const Tensor& tokens, const Tensor& cls) {
  const i64 b = tokens.dim(0), n = tokens.dim(1), c = tokens.dim(2);
  Tensor out({b, n + 1, c});
  for (i64 bi = 0; bi < b; ++bi) {
    float* row = out.data() + bi * (n + 1) * c;
    std::copy_n(cls.data(), c, row);
    std::copy_n(tokens.data() + bi * n * c, n * c, row + c);
  }
  return out;
}

// Per-patch pixel normalization of targets, as in the MAE paper
// (norm_pix_loss=True): each patch row is standardized independently.
Tensor normalize_patches(const Tensor& patches) {
  const i64 rows = patches.dim(0) * patches.dim(1);
  const i64 c = patches.dim(2);
  Tensor out(patches.shape());
  const float* pp = patches.data();
  float* op = out.data();
  for (i64 r = 0; r < rows; ++r) {
    const float* src = pp + r * c;
    float* dst = op + r * c;
    double mean = 0;
    for (i64 j = 0; j < c; ++j) mean += src[j];
    mean /= static_cast<double>(c);
    double var = 0;
    for (i64 j = 0; j < c; ++j) var += (src[j] - mean) * (src[j] - mean);
    var /= static_cast<double>(c);
    const float rstd = static_cast<float>(1.0 / std::sqrt(var + 1e-6));
    for (i64 j = 0; j < c; ++j) {
      dst[j] = (src[j] - static_cast<float>(mean)) * rstd;
    }
  }
  return out;
}

}  // namespace

MAE::MAE(const MaeConfig& cfg, Rng& rng)
    : patch_embed("mae.patch_embed", cfg.encoder.img_size,
                  cfg.encoder.patch_size, cfg.encoder.in_channels,
                  cfg.encoder.width, rng),
      enc_norm("mae.enc_norm", cfg.encoder.width),
      dec_embed("mae.dec_embed", cfg.encoder.width, cfg.decoder_width, rng),
      dec_norm("mae.dec_norm", cfg.decoder_width),
      pred("mae.pred", cfg.decoder_width, cfg.encoder.patch_dim(), rng),
      cfg_(cfg) {
  GEOFM_CHECK(cfg.mask_ratio > 0.0 && cfg.mask_ratio < 1.0,
              "mask ratio must be in (0,1)");
  const i64 n = cfg.encoder.n_patches();
  n_keep_ = std::max<i64>(1, static_cast<i64>(
                                 std::llround(n * (1.0 - cfg.mask_ratio))));
  GEOFM_CHECK(n_keep_ < n, "mask ratio leaves no masked patches");

  cls_token.name = "mae.cls_token";
  cls_token.value = Tensor({1, cfg.encoder.width});
  nn::trunc_normal_(cls_token.value, rng);
  mask_token.name = "mae.mask_token";
  mask_token.value = Tensor({1, cfg.decoder_width});
  nn::trunc_normal_(mask_token.value, rng);

  const i64 grid = cfg.encoder.img_size / cfg.encoder.patch_size;
  enc_pos_ = nn::sincos_pos_embed_2d(cfg.encoder.width, grid, true);
  dec_pos_ = nn::sincos_pos_embed_2d(cfg.decoder_width, grid, true);

  for (i64 i = 0; i < cfg.encoder.depth; ++i) {
    enc_blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        "mae.enc_block" + std::to_string(i), cfg.encoder.width,
        cfg.encoder.heads, cfg.encoder.mlp_dim, rng));
  }
  for (i64 i = 0; i < cfg.decoder_depth; ++i) {
    dec_blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        "mae.dec_block" + std::to_string(i), cfg.decoder_width,
        cfg.decoder_heads, 4 * cfg.decoder_width, rng));
  }
}

float MAE::forward(const Tensor& images, Rng& mask_rng, i64 sample_offset) {
  obs::TraceScope trace_span("mae.forward", "compute", "batch", images.dim(0));
  const i64 b = images.dim(0);
  const i64 n = cfg_.encoder.n_patches();
  const i64 we = cfg_.encoder.width;
  const i64 wd = cfg_.decoder_width;
  const i64 keep = n_keep_;
  batch_ = b;

  // ---- random masking: per-sample argsort of uniform noise --------------
  keep_index_.assign(static_cast<size_t>(b * keep), 0);
  mask_.assign(static_cast<size_t>(b * n), 1);
  std::vector<std::pair<double, i64>> noise(static_cast<size_t>(n));
  for (i64 bi = 0; bi < b; ++bi) {
    Rng sample_rng = mask_rng.split(static_cast<u64>(sample_offset + bi));
    for (i64 p = 0; p < n; ++p) {
      noise[static_cast<size_t>(p)] = {sample_rng.uniform(), p};
    }
    std::sort(noise.begin(), noise.end());
    for (i64 j = 0; j < keep; ++j) {
      const i64 p = noise[static_cast<size_t>(j)].second;
      keep_index_[static_cast<size_t>(bi * keep + j)] = bi * n + p;
      mask_[static_cast<size_t>(bi * n + p)] = 0;
    }
  }

  // ---- encoder ------------------------------------------------------------
  Tensor tokens = patch_embed.forward(images);  // [B,N,we]
  // Gather the visible tokens, then add their positional rows.
  Tensor visible =
      ops::gather_rows(tokens.view({b * n, we}), keep_index_).view({b, keep, we});
  std::vector<i64> patch_of_token(static_cast<size_t>(b * keep));
  for (i64 r = 0; r < b * keep; ++r) {
    // +1: pos row 0 belongs to the cls token.
    patch_of_token[static_cast<size_t>(r)] =
        keep_index_[static_cast<size_t>(r)] % n + 1;
  }
  add_pos_gathered(visible, enc_pos_, patch_of_token);

  Tensor x = prepend_cls(visible, cls_token.value);  // [B,keep+1,we]
  for (size_t i = 0; i < enc_blocks_.size(); ++i) {
    const int stage = static_cast<int>(i);
    if (hooks_ != nullptr) hooks_->fire_before_forward(stage);
    {
      // The span covers the stage's compute only; hook-driven gathers and
      // reshards trace under their own fsdp/comm spans.
      obs::TraceScope span("stage.forward", "compute", "stage", stage);
      x = enc_blocks_[i]->forward(x);
    }
    if (hooks_ != nullptr) hooks_->fire_after_forward(stage);
  }
  x = enc_norm.forward(x);  // latent [B,keep+1,we]

  // ---- decoder ------------------------------------------------------------
  Tensor y = dec_embed.forward(x);  // [B,keep+1,wd]
  // Reassemble the full token sequence: cls + visible-at-position + mask
  // tokens at masked positions.
  Tensor full = Tensor::zeros({b, n + 1, wd});
  {
    const float* mt = mask_token.value.data();
    for (i64 bi = 0; bi < b; ++bi) {
      float* base = full.data() + bi * (n + 1) * wd;
      // cls row.
      std::copy_n(y.data() + bi * (keep + 1) * wd, wd, base);
      // default every patch row to the mask token...
      for (i64 p = 0; p < n; ++p) {
        std::copy_n(mt, wd, base + (1 + p) * wd);
      }
      // ...then place the visible tokens at their original positions.
      for (i64 j = 0; j < keep; ++j) {
        const i64 p = keep_index_[static_cast<size_t>(bi * keep + j)] % n;
        std::copy_n(y.data() + (bi * (keep + 1) + 1 + j) * wd, wd,
                    base + (1 + p) * wd);
      }
    }
  }
  add_pos(full, dec_pos_, 0);

  Tensor d = full;
  for (size_t i = 0; i < dec_blocks_.size(); ++i) {
    const int stage = static_cast<int>(enc_blocks_.size() + i);
    if (hooks_ != nullptr) hooks_->fire_before_forward(stage);
    {
      obs::TraceScope span("stage.forward", "compute", "stage", stage);
      d = dec_blocks_[i]->forward(d);
    }
    if (hooks_ != nullptr) hooks_->fire_after_forward(stage);
  }
  d = dec_norm.forward(d);
  Tensor out = pred.forward(d);  // [B,N+1,pdim]

  // Drop the cls row.
  const i64 pdim = cfg_.encoder.patch_dim();
  pred_ = Tensor({b, n, pdim});
  for (i64 bi = 0; bi < b; ++bi) {
    std::copy_n(out.data() + (bi * (n + 1) + 1) * pdim, n * pdim,
                pred_.data() + bi * n * pdim);
  }

  // ---- loss: normalized-pixel MSE on masked patches ----------------------
  Tensor target = normalize_patches(ops::patchify(images, cfg_.encoder.patch_size));
  const float loss = ops::masked_mse(pred_.view({b * n, pdim}),
                                     target.view({b * n, pdim}), mask_,
                                     &dpred_);
  return loss;
}

Tensor MAE::backward() {
  obs::TraceScope trace_span("mae.backward", "compute", "batch", batch_);
  GEOFM_CHECK(dpred_.defined(), "MAE backward before forward");
  const i64 b = batch_;
  const i64 n = cfg_.encoder.n_patches();
  const i64 we = cfg_.encoder.width;
  const i64 wd = cfg_.decoder_width;
  const i64 keep = n_keep_;
  const i64 pdim = cfg_.encoder.patch_dim();

  // Re-attach the (gradient-free) cls row dropped after `pred`.
  Tensor dout = Tensor::zeros({b, n + 1, pdim});
  for (i64 bi = 0; bi < b; ++bi) {
    std::copy_n(dpred_.data() + bi * n * pdim, n * pdim,
                dout.data() + (bi * (n + 1) + 1) * pdim);
  }

  Tensor dd = pred.backward(dout);
  dd = dec_norm.backward(dd);
  for (int i = static_cast<int>(dec_blocks_.size()) - 1; i >= 0; --i) {
    const int stage = static_cast<int>(enc_blocks_.size()) + i;
    if (hooks_ != nullptr) hooks_->fire_before_backward(stage);
    {
      obs::TraceScope span("stage.backward", "compute", "stage", stage);
      dd = dec_blocks_[static_cast<size_t>(i)]->backward(dd);
    }
    if (hooks_ != nullptr) hooks_->fire_after_backward(stage);
  }
  // Positional table is fixed; gradient passes through unchanged.

  // Un-assemble: route gradients back to (cls|visible) rows of `y` and to
  // the mask token parameter.
  Tensor dy = Tensor::zeros({b, keep + 1, wd});
  if (mask_token.requires_grad) mask_token.ensure_grad();
  for (i64 bi = 0; bi < b; ++bi) {
    const float* base = dd.data() + bi * (n + 1) * wd;
    // cls row.
    std::copy_n(base, wd, dy.data() + bi * (keep + 1) * wd);
    // visible rows.
    std::vector<bool> visible(static_cast<size_t>(n), false);
    for (i64 j = 0; j < keep; ++j) {
      const i64 p = keep_index_[static_cast<size_t>(bi * keep + j)] % n;
      visible[static_cast<size_t>(p)] = true;
      std::copy_n(base + (1 + p) * wd, wd,
                  dy.data() + (bi * (keep + 1) + 1 + j) * wd);
    }
    // masked rows accumulate into the mask token.
    if (mask_token.requires_grad) {
      float* mg = mask_token.grad.data();
      for (i64 p = 0; p < n; ++p) {
        if (visible[static_cast<size_t>(p)]) continue;
        const float* src = base + (1 + p) * wd;
        for (i64 j = 0; j < wd; ++j) mg[j] += src[j];
      }
    }
  }

  Tensor dlatent = dec_embed.backward(dy);        // [B,keep+1,we]
  dlatent = enc_norm.backward(dlatent);
  for (int i = static_cast<int>(enc_blocks_.size()) - 1; i >= 0; --i) {
    if (hooks_ != nullptr) hooks_->fire_before_backward(i);
    {
      obs::TraceScope span("stage.backward", "compute", "stage", i);
      dlatent = enc_blocks_[static_cast<size_t>(i)]->backward(dlatent);
    }
    if (hooks_ != nullptr) hooks_->fire_after_backward(i);
  }

  // Split cls gradient from visible-token gradients.
  if (cls_token.requires_grad) {
    cls_token.ensure_grad();
    float* cg = cls_token.grad.data();
    for (i64 bi = 0; bi < b; ++bi) {
      const float* row = dlatent.data() + bi * (keep + 1) * we;
      for (i64 j = 0; j < we; ++j) cg[j] += row[j];
    }
  }
  Tensor dvisible({b, keep, we});
  for (i64 bi = 0; bi < b; ++bi) {
    std::copy_n(dlatent.data() + (bi * (keep + 1) + 1) * we, keep * we,
                dvisible.data() + bi * keep * we);
  }

  // Scatter the visible-token gradients back into the full patch grid.
  Tensor dtokens = Tensor::zeros({b * n, we});
  ops::scatter_rows_add(dvisible.view({b * keep, we}), keep_index_, dtokens);
  return patch_embed.backward(dtokens.view({b, n, we}));
}

Tensor MAE::encode(const Tensor& images, Pool pool) {
  const i64 b = images.dim(0);
  const i64 n = cfg_.encoder.n_patches();
  const i64 we = cfg_.encoder.width;

  Tensor tokens = patch_embed.forward(images);  // [B,N,we]
  add_pos(tokens, enc_pos_, /*first_row=*/1);
  Tensor x = prepend_cls(tokens, cls_token.value);
  for (auto& blk : enc_blocks_) x = blk->forward(x);
  x = enc_norm.forward(x);

  Tensor feat = Tensor::zeros({b, we});
  if (pool == Pool::kCls) {
    for (i64 bi = 0; bi < b; ++bi) {
      std::copy_n(x.data() + bi * (n + 1) * we, we, feat.data() + bi * we);
    }
  } else {
    const float inv = 1.f / static_cast<float>(n);
    for (i64 bi = 0; bi < b; ++bi) {
      float* dst = feat.data() + bi * we;
      for (i64 t = 1; t <= n; ++t) {
        const float* src = x.data() + (bi * (n + 1) + t) * we;
        for (i64 j = 0; j < we; ++j) dst[j] += src[j];
      }
      for (i64 j = 0; j < we; ++j) dst[j] *= inv;
    }
  }
  return feat;
}

std::vector<nn::Parameter*> MAE::parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Parameter* p : patch_embed.parameters()) out.push_back(p);
  out.push_back(&cls_token);
  for (auto& blk : enc_blocks_) {
    for (nn::Parameter* p : blk->parameters()) out.push_back(p);
  }
  for (nn::Parameter* p : enc_norm.parameters()) out.push_back(p);
  for (nn::Parameter* p : dec_embed.parameters()) out.push_back(p);
  out.push_back(&mask_token);
  for (auto& blk : dec_blocks_) {
    for (nn::Parameter* p : blk->parameters()) out.push_back(p);
  }
  for (nn::Parameter* p : dec_norm.parameters()) out.push_back(p);
  for (nn::Parameter* p : pred.parameters()) out.push_back(p);
  return out;
}

std::vector<nn::Parameter*> MAE::encoder_parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Parameter* p : patch_embed.parameters()) out.push_back(p);
  out.push_back(&cls_token);
  for (auto& blk : enc_blocks_) {
    for (nn::Parameter* p : blk->parameters()) out.push_back(p);
  }
  for (nn::Parameter* p : enc_norm.parameters()) out.push_back(p);
  return out;
}

std::vector<nn::Module*> MAE::stage_modules() {
  std::vector<nn::Module*> out;
  for (auto& blk : enc_blocks_) out.push_back(blk.get());
  for (auto& blk : dec_blocks_) out.push_back(blk.get());
  return out;
}

std::vector<nn::Parameter*> MAE::root_parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Parameter* p : patch_embed.parameters()) out.push_back(p);
  out.push_back(&cls_token);
  for (nn::Parameter* p : enc_norm.parameters()) out.push_back(p);
  for (nn::Parameter* p : dec_embed.parameters()) out.push_back(p);
  out.push_back(&mask_token);
  for (nn::Parameter* p : dec_norm.parameters()) out.push_back(p);
  for (nn::Parameter* p : pred.parameters()) out.push_back(p);
  return out;
}

}  // namespace geofm::models
