// Vision Transformer encoder with optional classification head.
//
// Forward: patchify+project, add fixed 2-D sin-cos positional embeddings,
// prepend a learned class token, run `depth` pre-norm transformer blocks,
// layer-norm, and read out the class-token feature (optionally through a
// linear head). This is the backbone whose scaling the paper studies.
#pragma once

#include <memory>
#include <vector>

#include "models/config.hpp"
#include "nn/block.hpp"
#include "nn/hooks.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/patch_embed.hpp"
#include "nn/staged_model.hpp"

namespace geofm::models {

class ViTEncoder : public nn::Module, public nn::StagedModel {
 public:
  /// num_classes == 0 builds a headless feature extractor.
  ViTEncoder(const ViTConfig& cfg, Rng& rng, i64 num_classes = 0);

  /// images [B,C,H,W] -> logits [B,num_classes] (with head) or class-token
  /// features [B,width] (headless).
  Tensor forward(const Tensor& images);
  /// dy matching forward's output; returns d(images).
  Tensor backward(const Tensor& dy);

  std::vector<nn::Parameter*> parameters() override;

  const ViTConfig& config() const { return cfg_; }
  bool has_head() const { return head_ != nullptr; }

  // ----- FSDP integration (StagedModel) -------------------------------------
  /// One stage per transformer block.
  int n_stages() const override { return static_cast<int>(blocks_.size()); }
  /// Blocks as modules, in execution order (stage i == blocks_[i]).
  std::vector<nn::Module*> stage_modules();
  /// Parameters outside any stage (patch embed, cls, final norm, head).
  std::vector<nn::Parameter*> root_parameters();
  /// Hooks fired around each stage; pass nullptr to clear.
  void set_stage_hooks(const nn::StageHooks* hooks) { hooks_ = hooks; }

  std::vector<nn::Module*> stages() override { return stage_modules(); }
  std::vector<nn::Parameter*> root_params() override {
    return root_parameters();
  }
  void install_stage_hooks(const nn::StageHooks* hooks) override {
    set_stage_hooks(hooks);
  }
  nn::Module& module() override { return *this; }

  nn::PatchEmbed patch_embed;
  nn::Parameter cls_token;  // [1, width]
  nn::LayerNorm norm;

 private:
  ViTConfig cfg_;
  Tensor pos_embed_;  // fixed [N+1, width] sin-cos table
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  std::unique_ptr<nn::Linear> head_;
  const nn::StageHooks* hooks_ = nullptr;

  i64 cached_batch_ = 0;
};

}  // namespace geofm::models
