// Per-tenant head registry: thousands of tiny linear-probe heads over one
// shared frozen encoder.
//
// The linear-probe protocol (train/linear_probe.hpp) produces a single
// nn::Linear per downstream task — a few KB of weights against a shared
// multi-GB encoder, which is why one server can carry every tenant. A
// head is registered programmatically (put) or loaded from a probe-head
// checkpoint written with train::save_checkpoint (load): the shard's
// "probe.head.weight" record names the [classes, width] shape, so the
// registry reconstructs the layer without out-of-band metadata.
//
// Hot swap: put()/load() on a registered tenant atomically replaces the
// entry. Lookups hand out the shared_ptr, so a batch that resolved the
// old head before the swap finishes on it — the same epoch/refcount
// discipline the encoder swap uses, per entry. Only the server's batch
// worker may call forward() on a resolved head (nn layers cache
// activations and are not reentrant).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/linear.hpp"
#include "util/common.hpp"

namespace geofm::serve {

/// One tenant's head plus provenance. `version` counts swaps for this
/// tenant (1 = first registration).
struct TenantHead {
  std::unique_ptr<nn::Linear> head;
  i64 version = 0;
  std::string source;  // checkpoint path when loaded from disk
};

class HeadRegistry {
 public:
  /// Registers or hot-swaps `tenant`'s head. `head` must map the served
  /// encoder width to the tenant's class count.
  void put(const std::string& tenant, std::unique_ptr<nn::Linear> head,
           std::string source = "");

  /// Loads a probe-head checkpoint (train::save_checkpoint of the probe's
  /// nn::Linear, parameters "probe.head.weight"/"probe.head.bias") and
  /// registers it. `expect_width` != 0 verifies the head matches the
  /// served encoder width. Throws geofm::Error on a malformed file or a
  /// width mismatch; the previous head (if any) stays registered.
  void load(const std::string& tenant, const std::string& path,
            i64 expect_width = 0);

  /// The tenant's current head, or nullptr. Callers keep the shared_ptr
  /// for the duration of use; a concurrent swap does not invalidate it.
  std::shared_ptr<TenantHead> find(const std::string& tenant) const;

  /// Removes the tenant. Returns false if it was not registered.
  bool remove(const std::string& tenant);

  i64 size() const;
  std::vector<std::string> tenants() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<TenantHead>> heads_;
  std::map<std::string, i64> versions_;
};

}  // namespace geofm::serve
