// Frozen-encoder embedding service: checkpoint hot-reload, dynamic
// batching, embedding cache, per-tenant heads.
//
// A ModelServer turns a checkpoint root — the directory the training
// Checkpointer publishes into, or the uploader's mirror of it — into a
// model *distribution* tier: a poller thread watches the manifest
// directory (ckpt::latest_published_manifest) and, when a newer step
// publishes, restores a fresh encoder off-thread through the elastic
// reshard-to-world-1 path (any saved world size / sharding strategy loads
// into the single serving replica) and swaps it in atomically.
//
// Swap protocol (epoch/refcount): the live model is a
// shared_ptr<LoadedModel> guarded by a mutex. The batch worker pins one
// reference per batch, so a swap never frees weights under an in-flight
// forward — old weights die when the last pinned batch completes. Each
// swap bumps a monotonically increasing *epoch*; embeddings are tagged
// with it, and the cache only serves entries whose epoch matches the
// pinned model's, so one request can never observe mixed weights and a
// pre-swap embedding is never served as post-swap.
//
// Request path: submit() queues into the dynamic batcher (futures);
// the single batch worker forms a batch (max_batch / max_delay_us),
// serves cache hits without touching the encoder, runs ONE batched
// encoder forward for the misses (`serve.encode`), applies the requested
// per-tenant heads, and fulfills every promise. Batched results are
// bitwise identical to one-at-a-time forwards (the kernel engine's
// row-independent accumulation; tested in test_serve.cpp).
//
// Failure model: a reload that fails for any reason — unreadable shard,
// torn file, injected IO fault — is counted (`serve.reload_failures`),
// logged, and *dropped*: the server keeps serving on the current weights
// and retries at the next poll. Serving never goes down because
// publication went wrong.
//
// Instrumentation: `serve.request` (blocking API, caller thread),
// `serve.batch` / `serve.encode` (worker), `serve.reload` (poller) trace
// spans; `serve.*` counters/histograms (requests, batch_size,
// request_seconds, encode_seconds, reload_seconds, cache_*); the
// run-health report renders p50/p99 SLO lines from the spans and the span
// budget gate enforces `serve.encode` / `serve.reload` shares.
#pragma once

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "models/mae.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/heads.hpp"
#include "util/common.hpp"

namespace geofm::serve {

struct ServerConfig {
  std::string checkpoint_root;  // manifest directory to serve + poll
  models::MaeConfig model;      // architecture the checkpoints hold
  i64 max_batch = 8;
  i64 max_delay_us = 1000;
  i64 cache_capacity = 1024;  // embedding-cache entries; 0 disables
  double poll_interval_seconds = 0.05;  // <= 0 disables the poller thread
  models::MAE::Pool pool = models::MAE::Pool::kGap;
  // Restore only the encoder subset (patch embed, cls token, encoder
  // blocks, encoder norm) from full MAE checkpoints: the decoder never
  // runs in serving, so skipping it roughly halves reload IO.
  bool encoder_only_restore = true;
};

struct ServerStats {
  i64 requests = 0;   // fulfilled requests
  i64 batches = 0;    // batches formed
  i64 encodes = 0;    // batched encoder forwards (cache hits skip these)
  i64 encoded_images = 0;
  i64 cache_hits = 0;
  i64 cache_misses = 0;
  i64 reloads = 0;          // successful swaps, including the initial load
  i64 reload_failures = 0;  // failed attempts (server kept old weights)
  i64 model_step = -1;      // checkpoint step currently served
  i64 model_epoch = 0;      // swap generation (1 = initial load)
};

class ModelServer {
 public:
  /// Loads the newest published checkpoint under cfg.checkpoint_root
  /// synchronously (throws geofm::Error if none exists) and starts the
  /// batch worker plus, if poll_interval_seconds > 0, the reload poller.
  explicit ModelServer(ServerConfig cfg);
  /// stop(): drains accepted requests, then joins both threads.
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Queues a request; the future resolves when its batch completes.
  /// Throws geofm::Error on a shape mismatch or after stop().
  std::future<EmbedResult> submit(EmbedRequest req);

  /// Blocking convenience: submit + wait, wrapped in a `serve.request`
  /// span on the calling thread.
  EmbedResult embed(EmbedRequest req);

  /// One synchronous reload check (what the poller does each tick).
  /// Returns true iff a newer checkpoint was loaded and swapped in.
  bool reload_now();

  i64 model_step() const;
  i64 model_epoch() const;
  ServerStats stats() const;

  HeadRegistry& heads() { return heads_; }
  const ServerConfig& config() const { return cfg_; }

  /// Stops admission, drains the queue, joins worker + poller. Idempotent;
  /// called by the destructor.
  void stop();

 private:
  struct LoadedModel {
    std::unique_ptr<models::MAE> model;
    i64 step = -1;
    i64 epoch = 0;
    std::string source;  // step directory restored from
  };

  std::shared_ptr<LoadedModel> current() const;
  /// Builds a fresh model from `dir` (throws on any load failure).
  std::shared_ptr<LoadedModel> load_model(i64 step, const std::string& dir,
                                          i64 epoch);
  bool try_reload();
  void worker_loop();
  void poller_loop();
  void process_batch(std::vector<PendingRequest>& batch);

  const ServerConfig cfg_;
  RequestBatcher batcher_;
  EmbeddingCache cache_;
  HeadRegistry heads_;

  mutable std::mutex model_mu_;
  std::shared_ptr<LoadedModel> current_;

  std::mutex reload_mu_;  // serializes poller ticks and reload_now()

  std::mutex poll_mu_;
  std::condition_variable poll_cv_;
  bool stop_poller_ = false;

  std::thread worker_;
  std::thread poller_;
  std::atomic<bool> stopped_{false};

  std::atomic<i64> requests_{0};
  std::atomic<i64> batches_{0};
  std::atomic<i64> encodes_{0};
  std::atomic<i64> encoded_images_{0};
  std::atomic<i64> reloads_{0};
  std::atomic<i64> reload_failures_{0};
};

}  // namespace geofm::serve
