// Frozen-encoder embedding service: checkpoint hot-reload, dynamic
// batching, embedding cache, per-tenant heads — and the overload /
// failure discipline that keeps all of it answering when the world
// around it degrades.
//
// A ModelServer turns an *ordered list* of checkpoint sources — the
// directory the training Checkpointer publishes into, then the
// uploader's mirror of it — into a model distribution tier: a poller
// thread watches the sources (ckpt::published_sources) and, when a
// newer step publishes under any of them, restores a fresh encoder
// off-thread through the elastic reshard-to-world-1 path and swaps it
// in atomically. A mirror candidate is checksum-verified in full
// before its manifest is trusted (ckpt::verify_checkpoint_dir): the
// primary's publication protocol guarantees completeness, a mirror may
// hold an interrupted copy.
//
// Swap protocol (epoch/refcount): the live model is a
// shared_ptr<LoadedModel> guarded by a mutex. The batch worker pins one
// reference per batch, so a swap never frees weights under an in-flight
// forward — old weights die when the last pinned batch completes. Each
// swap bumps a monotonically increasing *epoch*; embeddings are tagged
// with it, and the cache only serves entries whose epoch matches the
// pinned model's, so one request can never observe mixed weights and a
// pre-swap embedding is never served as post-swap.
//
// Request path: submit() queues into the dynamic batcher (futures) with
// bounded admission, per-request deadlines, and priority lanes (see
// batcher.hpp — shed requests resolve immediately with typed
// Overloaded/DeadlineExceeded errors, they never block or hang); the
// single batch worker forms a batch, serves cache hits without touching
// the encoder, runs ONE batched encoder forward for the misses
// (`serve.encode`), applies the requested per-tenant heads, and
// fulfills every promise.
//
// Failure model — detect, degrade, recover:
//   * A reload that fails for any reason — unreadable shard, torn
//     mirror copy, injected IO fault — is counted
//     (`serve.reload_failures`), logged, and dropped: the server keeps
//     serving the current weights. After `breaker_threshold` consecutive
//     failing reload ticks a *circuit breaker* trips: the poller stops
//     hammering the torn publication and backs off exponentially with
//     seeded jitter (util/backoff — the uploader's retry shape), the
//     `serve.degraded` gauge reports breaker-open, and a half-open
//     probe retries when the backoff expires (successive trips escalate
//     the backoff; a success closes the breaker). reload_now() is the
//     operator override: it ignores an open breaker.
//   * When the primary root is missing or its newest step is corrupt,
//     the next reload *fails over*: the freshest verifiable candidate
//     across the remaining sources is restored instead
//     (`serve.failovers`, degraded mode kMirror while the served step
//     came from a non-primary source).
//   * When NO source holds a complete checkpoint and
//     `unload_on_sourceless` is set (operator opt-in: treat a wiped
//     publication as a recall), the server drops its weights and enters
//     *cache-only* mode: epoch-pinned cache hits are still answered
//     (flagged `degraded`), everything else is shed with a typed
//     `Degraded` error, and the first re-published checkpoint restores
//     full service. `allow_degraded_start` starts a server in this mode
//     when nothing is loadable at construction instead of throwing.
//
// Instrumentation: `serve.request` (blocking API, caller thread),
// `serve.batch` / `serve.encode` (worker), `serve.reload` (poller)
// trace spans; `serve.*` counters/histograms including the shed/breaker
// family (shed_overload, shed_deadline, shed_degraded, breaker_trips,
// failovers) and the `serve.degraded` mode gauge; `serve.breaker_open`
// and `serve.failover` instants land in the run-health report's
// recovery timeline and the shed counts in its serving SLO section.
#pragma once

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "models/mae.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/heads.hpp"
#include "util/backoff.hpp"
#include "util/common.hpp"

namespace geofm::serve {

/// What the server is degraded to, if anything. Reported by stats() and
/// the `serve.degraded` gauge (as the numeric value).
enum class DegradedMode : int {
  kHealthy = 0,     // serving the primary source, breaker closed
  kBreakerOpen = 1, // reloads suspended behind the circuit breaker
  kMirror = 2,      // served weights came from a non-primary source
  kCacheOnly = 3,   // no weights loadable: hits answered, misses shed
};

struct ServerConfig {
  std::string checkpoint_root;  // primary manifest directory
  // Ordered failover list scanned by every (re)load: entry 0 is the
  // most trusted. Empty = {checkpoint_root}. Typical: {publish dir,
  // uploader mirror}. Non-primary candidates are checksum-verified
  // before their manifest is trusted (see verify_mirror_checksums).
  std::vector<std::string> checkpoint_sources;
  models::MaeConfig model;      // architecture the checkpoints hold
  i64 max_batch = 8;
  i64 max_delay_us = 1000;
  i64 max_queue = 1024;       // bounded admission; 0 = unbounded (no shed)
  i64 default_deadline_us = 0;  // applied when a request carries none
  // Promote cache-hit-eligible (non-empty key) and tenant-head requests
  // to the interactive lane automatically, so they are not starved
  // behind bulk encodes. Explicit EmbedRequest::lane always wins.
  bool auto_priority = false;
  i64 cache_capacity = 1024;  // embedding-cache entries; 0 disables
  double poll_interval_seconds = 0.05;  // <= 0 disables the poller thread
  models::MAE::Pool pool = models::MAE::Pool::kGap;
  // Restore only the encoder subset (patch embed, cls token, encoder
  // blocks, encoder norm) from full MAE checkpoints: the decoder never
  // runs in serving, so skipping it roughly halves reload IO.
  bool encoder_only_restore = true;
  // ----- resilience knobs ------------------------------------------------
  int breaker_threshold = 3;  // consecutive failing reload ticks to trip
  BackoffPolicy breaker_backoff{/*initial_seconds=*/0.5,
                                /*max_seconds=*/30.0,
                                /*jitter=*/0.5,
                                /*seed=*/0xb1eaULL};
  bool verify_mirror_checksums = true;  // full pass before trusting a mirror
  bool allow_degraded_start = false;    // cache-only instead of ctor throw
  bool unload_on_sourceless = false;    // drop weights when all sources die
  /// Per-tenant admission weights, passed through to the batcher's
  /// fair-share shedding (see BatcherOptions::tenant_weights). Empty =
  /// lanes only, no tenant arbitration.
  std::map<std::string, double> tenant_weights;
};

struct ServerStats {
  i64 requests = 0;   // fulfilled requests
  i64 batches = 0;    // batches formed
  i64 encodes = 0;    // batched encoder forwards (cache hits skip these)
  i64 encoded_images = 0;
  i64 cache_hits = 0;
  i64 cache_misses = 0;
  i64 reloads = 0;          // successful swaps, including the initial load
  i64 reload_failures = 0;  // failed attempts (server kept old weights)
  i64 shed_overload = 0;    // typed sheds: queue full / displaced
  i64 shed_deadline = 0;    // typed sheds: deadline missed or hopeless
  i64 shed_shutdown = 0;    // typed sheds: completed at shutdown
  i64 shed_degraded = 0;    // typed sheds: cache-only misses
  i64 breaker_trips = 0;    // circuit-breaker opens
  i64 shed_fair_share = 0;  // of shed_overload: tenant fair-share bumps
  i64 failovers = 0;        // swaps restored from a non-primary source
  bool breaker_open = false;  // reload circuit breaker currently open
  DegradedMode degraded = DegradedMode::kHealthy;
  i64 model_step = -1;      // checkpoint step currently served
  i64 model_epoch = 0;      // swap generation (1 = initial load)
  std::size_t model_source = 0;  // index into the source list
};

class ModelServer {
 public:
  /// Loads the newest verifiable checkpoint across the configured
  /// sources synchronously and starts the batch worker plus, if
  /// poll_interval_seconds > 0, the reload poller. Throws geofm::Error
  /// if nothing is loadable — unless allow_degraded_start, which starts
  /// in cache-only mode instead.
  explicit ModelServer(ServerConfig cfg);
  /// stop(): drains accepted requests, then joins both threads.
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Queues a request; the future resolves when its batch completes —
  /// or immediately with a typed Overloaded / DeadlineExceeded /
  /// ShutdownError / Degraded error when the request is shed. Throws
  /// geofm::Error only on a shape mismatch (a caller bug, not load).
  std::future<EmbedResult> submit(EmbedRequest req);

  /// Blocking convenience: submit + wait, wrapped in a `serve.request`
  /// span on the calling thread. Shed errors surface as the typed
  /// exceptions above.
  EmbedResult embed(EmbedRequest req);

  /// One synchronous reload check across the sources (what the poller
  /// does each tick) — but ignoring an open circuit breaker: this is
  /// the operator's manual override. Returns true iff a checkpoint was
  /// loaded and swapped in.
  bool reload_now();

  i64 model_step() const;
  i64 model_epoch() const;
  DegradedMode degraded_mode() const;
  ServerStats stats() const;

  HeadRegistry& heads() { return heads_; }
  const ServerConfig& config() const { return cfg_; }

  /// Stops admission, drains the queue, joins worker + poller. Idempotent;
  /// called by the destructor.
  void stop();

 private:
  struct LoadedModel {
    std::unique_ptr<models::MAE> model;  // nullptr = cache-only sentinel
    i64 step = -1;
    i64 epoch = 0;
    std::string source;  // step directory restored from
    std::size_t source_index = 0;  // which configured source it came from
  };

  std::shared_ptr<LoadedModel> current() const;
  /// Builds a fresh model from `dir` (throws on any load failure).
  std::shared_ptr<LoadedModel> load_model(i64 step, const std::string& dir,
                                          i64 epoch, std::size_t source);
  const std::vector<std::string>& sources() const;
  /// One reload pass over the sources. `force` = ignore an open breaker.
  bool try_reload(bool force);
  void install(std::shared_ptr<LoadedModel> fresh);
  void set_degraded(DegradedMode mode);
  void worker_loop();
  void poller_loop();
  void process_batch(std::vector<PendingRequest>& batch);

  const ServerConfig cfg_;
  const std::vector<std::string> sources_;
  RequestBatcher batcher_;
  EmbeddingCache cache_;
  HeadRegistry heads_;

  mutable std::mutex model_mu_;
  std::shared_ptr<LoadedModel> current_;

  std::mutex reload_mu_;  // serializes poller ticks and reload_now(),
                          // and guards the breaker state below
  int consecutive_failed_ticks_ = 0;
  int breaker_attempt_ = 0;          // escalation count while failing
  double breaker_open_until_ = 0;    // monotonic_seconds; 0 = closed

  std::mutex poll_mu_;
  std::condition_variable poll_cv_;
  bool stop_poller_ = false;

  std::thread worker_;
  std::thread poller_;
  std::atomic<bool> stopped_{false};
  std::atomic<int> degraded_{0};  // DegradedMode, readable without locks
  // Breaker state mirrored out of reload_mu_ for stats() and the
  // `serve.breaker` gauge (prometheus_text renders every gauge).
  std::atomic<bool> breaker_open_{false};

  std::atomic<i64> requests_{0};
  std::atomic<i64> batches_{0};
  std::atomic<i64> encodes_{0};
  std::atomic<i64> encoded_images_{0};
  std::atomic<i64> reloads_{0};
  std::atomic<i64> reload_failures_{0};
  std::atomic<i64> shed_degraded_{0};
  std::atomic<i64> breaker_trips_{0};
  std::atomic<i64> failovers_{0};
};

}  // namespace geofm::serve
