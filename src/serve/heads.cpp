#include "serve/heads.hpp"

#include "ckpt/format.hpp"
#include "obs/metrics.hpp"
#include "train/checkpoint.hpp"
#include "util/log.hpp"

namespace geofm::serve {

namespace {

void note_swap(const std::string& tenant, i64 version, i64 registry_size) {
  auto& reg = obs::MetricsRegistry::instance();
  static auto& swaps = reg.counter("serve.head_swaps");
  static auto& tenants = reg.gauge("serve.tenants");
  swaps.add(1);
  tenants.set(static_cast<double>(registry_size));
  GEOFM_DEBUG("serve: head for tenant '" << tenant << "' now at version "
                                         << version);
}

}  // namespace

void HeadRegistry::put(const std::string& tenant,
                       std::unique_ptr<nn::Linear> head, std::string source) {
  GEOFM_CHECK(head != nullptr, "HeadRegistry::put: null head");
  auto entry = std::make_shared<TenantHead>();
  entry->head = std::move(head);
  entry->source = std::move(source);
  i64 version = 0;
  i64 size = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    version = ++versions_[tenant];
    entry->version = version;
    heads_[tenant] = std::move(entry);
    size = static_cast<i64>(heads_.size());
  }
  note_swap(tenant, version, size);
}

void HeadRegistry::load(const std::string& tenant, const std::string& path,
                        i64 expect_width) {
  // The weight record's shape is the head's full description:
  // [classes, width] in nn::Linear's (PyTorch) layout, bias present iff
  // the probe saved one.
  const ckpt::format::ShardHeader header =
      ckpt::format::read_shard_header(path);
  const ckpt::format::ShardIndexEntry* weight = nullptr;
  bool has_bias = false;
  for (const auto& rec : header.records) {
    if (rec.name == "probe.head.weight") weight = &rec;
    if (rec.name == "probe.head.bias") has_bias = true;
  }
  if (weight == nullptr || weight->shape.size() != 2) {
    throw Error("not a probe-head checkpoint (no 2-D probe.head.weight): " +
                path);
  }
  const i64 classes = weight->shape[0];
  const i64 width = weight->shape[1];
  if (expect_width != 0 && width != expect_width) {
    throw Error("probe head " + path + " has width " + std::to_string(width) +
                ", served encoder width is " + std::to_string(expect_width));
  }
  // Freshly initialized weights are overwritten in full by the load.
  Rng rng(0);
  auto head =
      std::make_unique<nn::Linear>("probe.head", width, classes, rng, has_bias);
  train::load_checkpoint(*head, path);
  put(tenant, std::move(head), path);
}

std::shared_ptr<TenantHead> HeadRegistry::find(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = heads_.find(tenant);
  return it == heads_.end() ? nullptr : it->second;
}

bool HeadRegistry::remove(const std::string& tenant) {
  i64 size = 0;
  bool removed = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    removed = heads_.erase(tenant) > 0;
    size = static_cast<i64>(heads_.size());
  }
  if (removed) {
    static auto& tenants =
        obs::MetricsRegistry::instance().gauge("serve.tenants");
    tenants.set(static_cast<double>(size));
  }
  return removed;
}

i64 HeadRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<i64>(heads_.size());
}

std::vector<std::string> HeadRegistry::tenants() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(heads_.size());
  for (const auto& [name, entry] : heads_) out.push_back(name);
  return out;
}

}  // namespace geofm::serve
