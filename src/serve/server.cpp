#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "ckpt/checkpoint.hpp"
#include "ckpt/state.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/thread_context.hpp"

namespace geofm::serve {

namespace {

/// Full-tensor slices for an explicit parameter subset — the serving-side
/// restore description (a replica wants whole tensors, like
/// ckpt::replicated_state with world 1, but over the encoder subset).
ckpt::StateDesc full_tensor_state(const std::vector<nn::Parameter*>& params) {
  ckpt::StateDesc desc;
  desc.slices.reserve(params.size());
  for (nn::Parameter* p : params) {
    ckpt::TensorSlice slice;
    slice.name = p->name;
    slice.shape = p->value.shape();
    slice.begin = 0;
    slice.data = p->value.flat_view(0, p->value.numel());
    desc.slices.push_back(std::move(slice));
  }
  return desc;
}

std::vector<std::string> resolve_sources(const ServerConfig& cfg) {
  if (!cfg.checkpoint_sources.empty()) return cfg.checkpoint_sources;
  return {cfg.checkpoint_root};
}

/// 1 while the reload circuit breaker is open, 0 once a reload succeeds.
/// A gauge (not just the serve.breaker_trips counter) so the Prometheus
/// exposition shows the breaker's *current* state, alertable directly.
obs::Gauge& breaker_gauge() {
  static auto& gauge =
      obs::MetricsRegistry::instance().gauge("serve.breaker");
  return gauge;
}

}  // namespace

ModelServer::ModelServer(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      sources_(resolve_sources(cfg_)),
      batcher_({cfg_.max_batch, cfg_.max_delay_us, cfg_.max_queue,
                cfg_.tenant_weights}),
      cache_(cfg_.cache_capacity) {
  GEOFM_CHECK(!sources_.empty() && !sources_.front().empty(),
              "ModelServer needs at least one checkpoint source");
  breaker_gauge().set(0);  // present in the exposition from the start
  // Initial load walks the same failover order as every reload: newest
  // step first, primary wins ties, mirrors verified before trusted.
  const auto candidates = ckpt::published_sources(sources_);
  for (const ckpt::PublishedSource& cand : candidates) {
    try {
      if (cand.source > 0 && cfg_.verify_mirror_checksums) {
        ckpt::verify_checkpoint_dir(cand.dir);
      }
      current_ = load_model(cand.step, cand.dir, /*epoch=*/1, cand.source);
      break;
    } catch (const std::exception& e) {
      reload_failures_.fetch_add(1, std::memory_order_relaxed);
      GEOFM_WARN("serve: initial load of step "
                 << cand.step << " from " << cand.dir << " failed: "
                 << e.what());
    }
  }
  if (current_ == nullptr) {
    if (!cfg_.allow_degraded_start) {
      throw Error("ModelServer: no loadable checkpoint under any of " +
                  std::to_string(sources_.size()) + " source(s), first: " +
                  sources_.front());
    }
    // Cache-only start: epoch 0 so the first successful load gets epoch 1.
    current_ = std::make_shared<LoadedModel>();
    GEOFM_WARN("serve: starting in cache-only degraded mode (no loadable "
               "checkpoint); misses will be shed until one publishes");
    set_degraded(DegradedMode::kCacheOnly);
  } else {
    reloads_.fetch_add(1, std::memory_order_relaxed);
    static auto& reloads =
        obs::MetricsRegistry::instance().counter("serve.reloads");
    reloads.add(1);
    if (current_->source_index > 0) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      static auto& failover_m =
          obs::MetricsRegistry::instance().counter("serve.failovers");
      failover_m.add(1);
      obs::trace_instant("serve.failover", "serve");
    }
    set_degraded(current_->source_index > 0 ? DegradedMode::kMirror
                                            : DegradedMode::kHealthy);
    GEOFM_INFO("serve: serving step " << current_->step << " from "
                                      << current_->source);
  }

  worker_ = std::thread([this] { worker_loop(); });
  if (cfg_.poll_interval_seconds > 0) {
    poller_ = std::thread([this] { poller_loop(); });
  }
}

ModelServer::~ModelServer() { stop(); }

void ModelServer::stop() {
  if (stopped_.exchange(true)) return;
  batcher_.close();
  {
    std::lock_guard<std::mutex> lk(poll_mu_);
    stop_poller_ = true;
  }
  poll_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  if (poller_.joinable()) poller_.join();
}

std::future<EmbedResult> ModelServer::submit(EmbedRequest req) {
  const auto& m = cfg_.model.encoder;
  const i64 expect = m.in_channels * m.img_size * m.img_size;
  if (!req.image.defined() || req.image.numel() != expect) {
    throw Error("ModelServer: image has " +
                std::to_string(req.image.defined() ? req.image.numel() : 0) +
                " elements, served model expects " + std::to_string(expect));
  }
  if (req.deadline_us <= 0) req.deadline_us = cfg_.default_deadline_us;
  if (cfg_.auto_priority && req.lane == Lane::kBulk &&
      (!req.key.empty() || !req.tenant.empty())) {
    req.lane = Lane::kInteractive;
  }
  return batcher_.submit(std::move(req));
}

EmbedResult ModelServer::embed(EmbedRequest req) {
  obs::TraceScope span("serve.request", "serve");
  return submit(std::move(req)).get();
}

std::shared_ptr<ModelServer::LoadedModel> ModelServer::current() const {
  std::lock_guard<std::mutex> lk(model_mu_);
  return current_;
}

const std::vector<std::string>& ModelServer::sources() const {
  return sources_;
}

i64 ModelServer::model_step() const { return current()->step; }
i64 ModelServer::model_epoch() const { return current()->epoch; }

DegradedMode ModelServer::degraded_mode() const {
  return static_cast<DegradedMode>(degraded_.load(std::memory_order_relaxed));
}

void ModelServer::set_degraded(DegradedMode mode) {
  degraded_.store(static_cast<int>(mode), std::memory_order_relaxed);
  static auto& gauge =
      obs::MetricsRegistry::instance().gauge("serve.degraded");
  gauge.set(static_cast<double>(static_cast<int>(mode)));
}

std::shared_ptr<ModelServer::LoadedModel> ModelServer::load_model(
    i64 step, const std::string& dir, i64 epoch, std::size_t source) {
  obs::TraceScope span("serve.reload", "serve", "step", step);
  const double t0 = monotonic_seconds();
  auto loaded = std::make_shared<LoadedModel>();
  // Construction seeds are irrelevant: every served weight is overwritten
  // by the restore (decoder weights stay at init under encoder-only
  // restore — the decoder never runs in serving).
  Rng rng(0x5e7eULL);
  loaded->model = std::make_unique<models::MAE>(cfg_.model, rng);
  ckpt::CheckpointReader reader(dir);
  reader.restore(full_tensor_state(cfg_.encoder_only_restore
                                       ? loaded->model->encoder_parameters()
                                       : loaded->model->parameters()));
  loaded->step = step;
  loaded->epoch = epoch;
  loaded->source = reader.location();
  loaded->source_index = source;
  static auto& reload_s =
      obs::MetricsRegistry::instance().histogram("serve.reload_seconds");
  reload_s.observe(monotonic_seconds() - t0);
  return loaded;
}

void ModelServer::install(std::shared_ptr<LoadedModel> fresh) {
  {
    std::lock_guard<std::mutex> lk(model_mu_);
    current_ = std::move(fresh);  // in-flight batches hold their pin
  }
  const auto cur = current();
  cache_.invalidate_older_than(cur->epoch);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  auto& reg = obs::MetricsRegistry::instance();
  static auto& reloads = reg.counter("serve.reloads");
  static auto& step_gauge = reg.gauge("serve.model_step");
  reloads.add(1);
  step_gauge.set(static_cast<double>(cur->step));
  GEOFM_INFO("serve: hot-swapped to step "
             << cur->step << " (epoch " << cur->epoch << ") from "
             << cur->source);
}

bool ModelServer::try_reload(bool force) {
  std::lock_guard<std::mutex> reload_lk(reload_mu_);
  if (!force && breaker_open_until_ > 0 &&
      monotonic_seconds() < breaker_open_until_) {
    return false;  // breaker open: skip this tick, retry when it expires
  }
  const auto cur = current();
  const bool cache_only = cur->model == nullptr;
  const auto candidates = ckpt::published_sources(sources_);

  std::shared_ptr<LoadedModel> fresh;
  std::size_t fresh_source = 0;
  bool attempted = false;
  for (const ckpt::PublishedSource& cand : candidates) {
    // Normally only a strictly newer step is worth a swap; in cache-only
    // mode any loadable checkpoint restores service (the step we used to
    // serve may be the one that comes back).
    if (!cache_only && cand.step <= cur->step) continue;
    attempted = true;
    try {
      if (cand.source > 0 && cfg_.verify_mirror_checksums) {
        ckpt::verify_checkpoint_dir(cand.dir);
      }
      fresh = load_model(cand.step, cand.dir, cur->epoch + 1, cand.source);
      fresh_source = cand.source;
      break;
    } catch (const std::exception& e) {
      // Keep serving on the current weights; try the next candidate (a
      // torn primary publication fails over to the mirror right here).
      reload_failures_.fetch_add(1, std::memory_order_relaxed);
      static auto& failures =
          obs::MetricsRegistry::instance().counter("serve.reload_failures");
      failures.add(1);
      GEOFM_WARN("serve: reload of step "
                 << cand.step << " from " << cand.dir << " failed ("
                 << e.what() << "); still serving step " << cur->step);
    }
  }

  if (fresh != nullptr) {
    install(fresh);
    if (fresh_source > 0) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      static auto& failover_m =
          obs::MetricsRegistry::instance().counter("serve.failovers");
      failover_m.add(1);
      obs::trace_instant("serve.failover", "serve");
      GEOFM_WARN("serve: failed over to source " << fresh_source << " ("
                                                 << fresh->source << ")");
    }
    // Success closes the breaker and resets its escalation.
    consecutive_failed_ticks_ = 0;
    breaker_attempt_ = 0;
    breaker_open_until_ = 0;
    breaker_open_.store(false, std::memory_order_relaxed);
    breaker_gauge().set(0);
    set_degraded(fresh_source > 0 ? DegradedMode::kMirror
                                  : DegradedMode::kHealthy);
    return true;
  }

  if (attempted) {
    // Every candidate this tick failed to verify or load. Count the tick
    // toward the breaker; at the threshold, open it with escalating
    // backoff so the poller stops hammering a torn publication. Once the
    // breaker has tripped, a failed half-open probe re-trips immediately
    // (escalated) instead of waiting out another threshold window.
    consecutive_failed_ticks_ += 1;
    if (breaker_attempt_ > 0 ||
        consecutive_failed_ticks_ >= cfg_.breaker_threshold) {
      breaker_attempt_ += 1;
      const double open_for =
          backoff_seconds(cfg_.breaker_backoff, /*key=*/0, breaker_attempt_);
      breaker_open_until_ = monotonic_seconds() + open_for;
      consecutive_failed_ticks_ = 0;  // the next window starts after probe
      breaker_trips_.fetch_add(1, std::memory_order_relaxed);
      breaker_open_.store(true, std::memory_order_relaxed);
      breaker_gauge().set(1);
      static auto& trips_m =
          obs::MetricsRegistry::instance().counter("serve.breaker_trips");
      trips_m.add(1);
      obs::trace_instant("serve.breaker_open", "serve");
      GEOFM_WARN("serve: reload circuit breaker open for "
                 << open_for << "s (trip " << breaker_attempt_ << ")");
      set_degraded(cache_only ? DegradedMode::kCacheOnly
                              : DegradedMode::kBreakerOpen);
    }
  } else if (candidates.empty() && !cache_only && cfg_.unload_on_sourceless) {
    // Every source vanished (a recall, not a torn write). Drop the
    // weights but keep step/epoch so epoch-pinned cache hits still
    // answer; everything else sheds with `Degraded` until a checkpoint
    // republishes.
    auto sentinel = std::make_shared<LoadedModel>();
    sentinel->step = cur->step;
    sentinel->epoch = cur->epoch;
    sentinel->source = cur->source;
    sentinel->source_index = cur->source_index;
    {
      std::lock_guard<std::mutex> lk(model_mu_);
      current_ = std::move(sentinel);
    }
    obs::trace_instant("serve.cache_only", "serve");
    GEOFM_WARN("serve: all " << sources_.size()
                             << " checkpoint source(s) are gone; entering "
                                "cache-only degraded mode at step "
                             << cur->step);
    set_degraded(DegradedMode::kCacheOnly);
  }
  return false;
}

bool ModelServer::reload_now() { return try_reload(/*force=*/true); }

void ModelServer::poller_loop() {
  obs::set_thread_label("serve.poller");
  const auto interval = std::chrono::duration<double>(
      cfg_.poll_interval_seconds);
  std::unique_lock<std::mutex> lk(poll_mu_);
  while (!stop_poller_) {
    if (poll_cv_.wait_for(lk, interval, [&] { return stop_poller_; })) {
      return;
    }
    lk.unlock();
    try_reload(/*force=*/false);
    lk.lock();
  }
}

void ModelServer::worker_loop() {
  obs::set_thread_label("serve.worker");
  for (;;) {
    std::vector<PendingRequest> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained
    process_batch(batch);
  }
}

void ModelServer::process_batch(std::vector<PendingRequest>& batch) {
  // Pin the model once per batch: every request in the batch is answered
  // by exactly these weights, and the pin keeps them alive across a
  // concurrent swap.
  const std::shared_ptr<LoadedModel> model = current();
  obs::TraceScope span("serve.batch", "serve", "size",
                       static_cast<i64>(batch.size()), "step", model->step);
  const double batch_t0 = monotonic_seconds();

  auto& reg = obs::MetricsRegistry::instance();
  static auto& requests_metric = reg.counter("serve.requests");
  static auto& batches_metric = reg.counter("serve.batches");
  static auto& encodes_metric = reg.counter("serve.encodes");
  static auto& batch_size_h = reg.histogram("serve.batch_size");
  static auto& request_s = reg.histogram("serve.request_seconds");
  static auto& encode_s = reg.histogram("serve.encode_seconds");

  batches_.fetch_add(1, std::memory_order_relaxed);
  batches_metric.add(1);
  batch_size_h.observe(static_cast<double>(batch.size()));

  // Cache pass: hits skip the encoder entirely.
  const std::size_t n = batch.size();
  std::vector<CachedEmbedding> hit(n);
  std::vector<bool> is_hit(n, false);
  std::vector<std::size_t> miss;
  miss.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& key = batch[i].request.key;
    if (!key.empty() && cache_.enabled() &&
        cache_.lookup(key, model->epoch, &hit[i])) {
      is_hit[i] = true;
    } else {
      miss.push_back(i);
    }
  }

  // Cache-only degraded mode: no weights in memory. Hits are still valid
  // (epoch-pinned) and answered, flagged `degraded`; misses cannot be
  // computed and are shed with a typed error — never left hanging.
  if (model->model == nullptr && !miss.empty()) {
    static auto& shed_degraded_m = reg.counter("serve.shed_degraded");
    shed_degraded_m.add(static_cast<double>(miss.size()));
    shed_degraded_.fetch_add(static_cast<i64>(miss.size()),
                             std::memory_order_relaxed);
    for (std::size_t i = 0; i < miss.size(); ++i) {
      obs::trace_instant("serve.shed_degraded", "serve");
    }
    auto error = std::make_exception_ptr(
        Degraded("serving degraded: no model weights loadable (cache-only "
                 "mode); only cached embeddings are served"));
    for (std::size_t m : miss) batch[m].promise.set_exception(error);
    // Compact the batch down to the hits and fall through to fulfillment.
    miss.clear();
  }

  // One batched encoder forward for every miss.
  const auto& enc = cfg_.model.encoder;
  const i64 per_image = enc.in_channels * enc.img_size * enc.img_size;
  Tensor features;
  if (!miss.empty()) {
    Tensor images({static_cast<i64>(miss.size()), enc.in_channels,
                   enc.img_size, enc.img_size});
    for (std::size_t m = 0; m < miss.size(); ++m) {
      images.flat_view(static_cast<i64>(m) * per_image, per_image)
          .copy_(batch[miss[m]].request.image);
    }
    {
      obs::TraceScope enc_span("serve.encode", "serve", "batch",
                               static_cast<i64>(miss.size()));
      const double t0 = monotonic_seconds();
      features = model->model->encode(images, cfg_.pool);
      encode_s.observe(monotonic_seconds() - t0);
    }
    encodes_.fetch_add(1, std::memory_order_relaxed);
    encoded_images_.fetch_add(static_cast<i64>(miss.size()),
                              std::memory_order_relaxed);
    encodes_metric.add(1);
    const i64 width = enc.width;
    for (std::size_t m = 0; m < miss.size(); ++m) {
      const std::string& key = batch[miss[m]].request.key;
      if (key.empty() || !cache_.enabled()) continue;
      CachedEmbedding entry;
      entry.embedding = Tensor({width});
      entry.embedding.copy_(
          features.flat_view(static_cast<i64>(m) * width, width));
      entry.model_step = model->step;
      entry.model_epoch = model->epoch;
      cache_.insert(key, std::move(entry));
    }
  }

  // Fulfillment: embeddings, per-tenant heads, latency accounting.
  const i64 width = enc.width;
  const bool degraded_serving = model->model == nullptr;
  std::size_t next_miss = 0;
  for (std::size_t i = 0; i < n; ++i) {
    PendingRequest& p = batch[i];
    if (!is_hit[i] && degraded_serving) continue;  // already shed above
    try {
      EmbedResult r;
      r.model_step = model->step;
      r.model_epoch = model->epoch;
      r.cache_hit = is_hit[i];
      r.degraded = degraded_serving;
      if (is_hit[i]) {
        r.embedding = std::move(hit[i].embedding);
        r.batch_size = 0;
      } else {
        const std::size_t m = next_miss++;
        r.embedding = Tensor({width});
        r.embedding.copy_(
            features.flat_view(static_cast<i64>(m) * width, width));
        r.batch_size = static_cast<i64>(miss.size());
      }
      if (!p.request.tenant.empty()) {
        const std::shared_ptr<TenantHead> head =
            heads_.find(p.request.tenant);
        if (head == nullptr) {
          throw Error("ModelServer: no head registered for tenant '" +
                      p.request.tenant + "'");
        }
        // Only this worker thread ever runs forward on a resolved head.
        r.logits = head->head->forward(r.embedding.view({1, width}))
                       .view({head->head->out_features()});
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      requests_metric.add(1);
      request_s.observe(static_cast<double>(monotonic_ns() - p.submitted_ns) *
                        1e-9);
      p.promise.set_value(std::move(r));
    } catch (...) {
      p.promise.set_exception(std::current_exception());
    }
  }

  // Feed the admission estimator with real service time so the deadline
  // gate tracks the currently served model. Cache-only batches are
  // excluded: they never touch the encoder and would drag the EWMA to
  // near zero, letting hopeless requests through once weights return.
  if (!degraded_serving) {
    batcher_.record_batch_seconds(monotonic_seconds() - batch_t0);
  }
}

ServerStats ModelServer::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.encodes = encodes_.load(std::memory_order_relaxed);
  s.encoded_images = encoded_images_.load(std::memory_order_relaxed);
  const EmbeddingCache::Stats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  const BatcherStats bs = batcher_.stats();
  s.shed_overload = bs.shed_overload;
  s.shed_deadline = bs.shed_deadline;
  s.shed_shutdown = bs.shed_shutdown;
  s.shed_fair_share = bs.shed_fair_share;
  s.shed_degraded = shed_degraded_.load(std::memory_order_relaxed);
  s.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  s.breaker_open = breaker_open_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.degraded = degraded_mode();
  const auto cur = current();
  s.model_step = cur->step;
  s.model_epoch = cur->epoch;
  s.model_source = cur->source_index;
  return s;
}

}  // namespace geofm::serve
