#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "ckpt/checkpoint.hpp"
#include "ckpt/state.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/thread_context.hpp"

namespace geofm::serve {

namespace {

/// Full-tensor slices for an explicit parameter subset — the serving-side
/// restore description (a replica wants whole tensors, like
/// ckpt::replicated_state with world 1, but over the encoder subset).
ckpt::StateDesc full_tensor_state(const std::vector<nn::Parameter*>& params) {
  ckpt::StateDesc desc;
  desc.slices.reserve(params.size());
  for (nn::Parameter* p : params) {
    ckpt::TensorSlice slice;
    slice.name = p->name;
    slice.shape = p->value.shape();
    slice.begin = 0;
    slice.data = p->value.flat_view(0, p->value.numel());
    desc.slices.push_back(std::move(slice));
  }
  return desc;
}

}  // namespace

ModelServer::ModelServer(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      batcher_({cfg_.max_batch, cfg_.max_delay_us}),
      cache_(cfg_.cache_capacity) {
  const auto latest = ckpt::latest_published_manifest(cfg_.checkpoint_root);
  if (!latest.found()) {
    throw Error("ModelServer: no published checkpoint under " +
                cfg_.checkpoint_root);
  }
  current_ = load_model(latest.step, latest.dir, /*epoch=*/1);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  static auto& reloads = obs::MetricsRegistry::instance().counter(
      "serve.reloads");
  reloads.add(1);
  GEOFM_INFO("serve: serving step " << latest.step << " from " << latest.dir);

  worker_ = std::thread([this] { worker_loop(); });
  if (cfg_.poll_interval_seconds > 0) {
    poller_ = std::thread([this] { poller_loop(); });
  }
}

ModelServer::~ModelServer() { stop(); }

void ModelServer::stop() {
  if (stopped_.exchange(true)) return;
  batcher_.close();
  {
    std::lock_guard<std::mutex> lk(poll_mu_);
    stop_poller_ = true;
  }
  poll_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  if (poller_.joinable()) poller_.join();
}

std::future<EmbedResult> ModelServer::submit(EmbedRequest req) {
  const auto& m = cfg_.model.encoder;
  const i64 expect = m.in_channels * m.img_size * m.img_size;
  if (!req.image.defined() || req.image.numel() != expect) {
    throw Error("ModelServer: image has " +
                std::to_string(req.image.defined() ? req.image.numel() : 0) +
                " elements, served model expects " + std::to_string(expect));
  }
  return batcher_.submit(std::move(req));
}

EmbedResult ModelServer::embed(EmbedRequest req) {
  obs::TraceScope span("serve.request", "serve");
  return submit(std::move(req)).get();
}

std::shared_ptr<ModelServer::LoadedModel> ModelServer::current() const {
  std::lock_guard<std::mutex> lk(model_mu_);
  return current_;
}

i64 ModelServer::model_step() const { return current()->step; }
i64 ModelServer::model_epoch() const { return current()->epoch; }

std::shared_ptr<ModelServer::LoadedModel> ModelServer::load_model(
    i64 step, const std::string& dir, i64 epoch) {
  obs::TraceScope span("serve.reload", "serve", "step", step);
  const double t0 = monotonic_seconds();
  auto loaded = std::make_shared<LoadedModel>();
  // Construction seeds are irrelevant: every served weight is overwritten
  // by the restore (decoder weights stay at init under encoder-only
  // restore — the decoder never runs in serving).
  Rng rng(0x5e7eULL);
  loaded->model = std::make_unique<models::MAE>(cfg_.model, rng);
  ckpt::CheckpointReader reader(dir);
  reader.restore(full_tensor_state(cfg_.encoder_only_restore
                                       ? loaded->model->encoder_parameters()
                                       : loaded->model->parameters()));
  loaded->step = step;
  loaded->epoch = epoch;
  loaded->source = reader.location();
  static auto& reload_s =
      obs::MetricsRegistry::instance().histogram("serve.reload_seconds");
  reload_s.observe(monotonic_seconds() - t0);
  return loaded;
}

bool ModelServer::try_reload() {
  std::lock_guard<std::mutex> reload_lk(reload_mu_);
  const auto latest = ckpt::latest_published_manifest(cfg_.checkpoint_root);
  const auto cur = current();
  if (!latest.found() || latest.step <= cur->step) return false;
  std::shared_ptr<LoadedModel> fresh;
  try {
    fresh = load_model(latest.step, latest.dir, cur->epoch + 1);
  } catch (const std::exception& e) {
    // Keep serving on the current weights; the next poll retries (the
    // publication may also be superseded by a newer good one by then).
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    static auto& failures =
        obs::MetricsRegistry::instance().counter("serve.reload_failures");
    failures.add(1);
    GEOFM_WARN("serve: reload of step " << latest.step << " failed ("
                                        << e.what()
                                        << "); still serving step "
                                        << cur->step);
    return false;
  }
  {
    std::lock_guard<std::mutex> lk(model_mu_);
    current_ = fresh;  // in-flight batches hold their pinned reference
  }
  cache_.invalidate_older_than(fresh->epoch);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  auto& reg = obs::MetricsRegistry::instance();
  static auto& reloads = reg.counter("serve.reloads");
  static auto& step_gauge = reg.gauge("serve.model_step");
  reloads.add(1);
  step_gauge.set(static_cast<double>(fresh->step));
  GEOFM_INFO("serve: hot-swapped to step " << fresh->step << " (epoch "
                                           << fresh->epoch << ")");
  return true;
}

bool ModelServer::reload_now() { return try_reload(); }

void ModelServer::poller_loop() {
  obs::set_thread_label("serve.poller");
  const auto interval = std::chrono::duration<double>(
      cfg_.poll_interval_seconds);
  std::unique_lock<std::mutex> lk(poll_mu_);
  while (!stop_poller_) {
    if (poll_cv_.wait_for(lk, interval, [&] { return stop_poller_; })) {
      return;
    }
    lk.unlock();
    try_reload();
    lk.lock();
  }
}

void ModelServer::worker_loop() {
  obs::set_thread_label("serve.worker");
  for (;;) {
    std::vector<PendingRequest> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained
    process_batch(batch);
  }
}

void ModelServer::process_batch(std::vector<PendingRequest>& batch) {
  // Pin the model once per batch: every request in the batch is answered
  // by exactly these weights, and the pin keeps them alive across a
  // concurrent swap.
  const std::shared_ptr<LoadedModel> model = current();
  obs::TraceScope span("serve.batch", "serve", "size",
                       static_cast<i64>(batch.size()), "step", model->step);

  auto& reg = obs::MetricsRegistry::instance();
  static auto& requests_metric = reg.counter("serve.requests");
  static auto& batches_metric = reg.counter("serve.batches");
  static auto& encodes_metric = reg.counter("serve.encodes");
  static auto& batch_size_h = reg.histogram("serve.batch_size");
  static auto& request_s = reg.histogram("serve.request_seconds");
  static auto& encode_s = reg.histogram("serve.encode_seconds");

  batches_.fetch_add(1, std::memory_order_relaxed);
  batches_metric.add(1);
  batch_size_h.observe(static_cast<double>(batch.size()));

  // Cache pass: hits skip the encoder entirely.
  const std::size_t n = batch.size();
  std::vector<CachedEmbedding> hit(n);
  std::vector<bool> is_hit(n, false);
  std::vector<std::size_t> miss;
  miss.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& key = batch[i].request.key;
    if (!key.empty() && cache_.enabled() &&
        cache_.lookup(key, model->epoch, &hit[i])) {
      is_hit[i] = true;
    } else {
      miss.push_back(i);
    }
  }

  // One batched encoder forward for every miss.
  const auto& enc = cfg_.model.encoder;
  const i64 per_image = enc.in_channels * enc.img_size * enc.img_size;
  Tensor features;
  if (!miss.empty()) {
    Tensor images({static_cast<i64>(miss.size()), enc.in_channels,
                   enc.img_size, enc.img_size});
    for (std::size_t m = 0; m < miss.size(); ++m) {
      images.flat_view(static_cast<i64>(m) * per_image, per_image)
          .copy_(batch[miss[m]].request.image);
    }
    {
      obs::TraceScope enc_span("serve.encode", "serve", "batch",
                               static_cast<i64>(miss.size()));
      const double t0 = monotonic_seconds();
      features = model->model->encode(images, cfg_.pool);
      encode_s.observe(monotonic_seconds() - t0);
    }
    encodes_.fetch_add(1, std::memory_order_relaxed);
    encoded_images_.fetch_add(static_cast<i64>(miss.size()),
                              std::memory_order_relaxed);
    encodes_metric.add(1);
    const i64 width = enc.width;
    for (std::size_t m = 0; m < miss.size(); ++m) {
      const std::string& key = batch[miss[m]].request.key;
      if (key.empty() || !cache_.enabled()) continue;
      CachedEmbedding entry;
      entry.embedding = Tensor({width});
      entry.embedding.copy_(
          features.flat_view(static_cast<i64>(m) * width, width));
      entry.model_step = model->step;
      entry.model_epoch = model->epoch;
      cache_.insert(key, std::move(entry));
    }
  }

  // Fulfillment: embeddings, per-tenant heads, latency accounting.
  const i64 width = enc.width;
  std::size_t next_miss = 0;
  for (std::size_t i = 0; i < n; ++i) {
    PendingRequest& p = batch[i];
    try {
      EmbedResult r;
      r.model_step = model->step;
      r.model_epoch = model->epoch;
      r.cache_hit = is_hit[i];
      if (is_hit[i]) {
        r.embedding = std::move(hit[i].embedding);
        r.batch_size = 0;
      } else {
        const std::size_t m = next_miss++;
        r.embedding = Tensor({width});
        r.embedding.copy_(
            features.flat_view(static_cast<i64>(m) * width, width));
        r.batch_size = static_cast<i64>(miss.size());
      }
      if (!p.request.tenant.empty()) {
        const std::shared_ptr<TenantHead> head =
            heads_.find(p.request.tenant);
        if (head == nullptr) {
          throw Error("ModelServer: no head registered for tenant '" +
                      p.request.tenant + "'");
        }
        // Only this worker thread ever runs forward on a resolved head.
        r.logits = head->head->forward(r.embedding.view({1, width}))
                       .view({head->head->out_features()});
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      requests_metric.add(1);
      request_s.observe(static_cast<double>(monotonic_ns() - p.submitted_ns) *
                        1e-9);
      p.promise.set_value(std::move(r));
    } catch (...) {
      p.promise.set_exception(std::current_exception());
    }
  }
}

ServerStats ModelServer::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.encodes = encodes_.load(std::memory_order_relaxed);
  s.encoded_images = encoded_images_.load(std::memory_order_relaxed);
  const EmbeddingCache::Stats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  const auto cur = current();
  s.model_step = cur->step;
  s.model_epoch = cur->epoch;
  return s;
}

}  // namespace geofm::serve
