// Embedding cache: LRU over request-identity keys, epoch-tagged.
//
// The serving tier computes one embedding per (scene, encoder weights);
// repeated requests for the same scene must not pay the encoder again.
// Entries are tagged with the *model epoch* (the hot-reload swap
// generation) that produced them: a lookup only hits when the caller's
// pinned epoch matches, so an embedding computed on pre-swap weights can
// never be served as if the new checkpoint produced it — even in the
// window where the batch worker is still finishing a batch it pinned
// before the swap. Stale entries are purged eagerly on swap
// (`invalidate_older_than`) and lazily on mismatching lookups.
//
// Thread-safe (one internal mutex); the hit path copies one embedding row
// ([width] floats), so the lock is held for microseconds. Hit/miss/
// eviction counts feed the `serve.cache_*` metrics.
#pragma once

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "tensor/tensor.hpp"
#include "util/common.hpp"

namespace geofm::serve {

/// A cached embedding plus the identity of the weights that produced it.
struct CachedEmbedding {
  Tensor embedding;     // [width]; the cache owns this storage
  i64 model_step = -1;  // checkpoint step of the producing weights
  i64 model_epoch = 0;  // swap generation of the producing weights
};

class EmbeddingCache {
 public:
  /// `capacity` = max entries; 0 disables the cache entirely.
  explicit EmbeddingCache(i64 capacity);

  bool enabled() const { return capacity_ > 0; }
  i64 capacity() const { return capacity_; }

  /// True (and fills `out` with a deep copy) iff `key` is present and its
  /// entry was produced at exactly `epoch`. A present-but-stale entry is
  /// dropped, counted as stale, and reported as a miss.
  bool lookup(const std::string& key, i64 epoch, CachedEmbedding* out);

  /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
  /// when full. The embedding tensor is stored as-is; callers pass an
  /// owned copy (the server clones the batch row).
  void insert(const std::string& key, CachedEmbedding entry);

  /// Drops every entry produced before `epoch` (the post-swap purge).
  /// Returns the number removed.
  i64 invalidate_older_than(i64 epoch);

  i64 size() const;

  struct Stats {
    i64 hits = 0;
    i64 misses = 0;
    i64 stale = 0;      // present but produced under an older epoch
    i64 evictions = 0;  // LRU evictions (stale drops are not evictions)
  };
  Stats stats() const;

 private:
  using LruList = std::list<std::pair<std::string, CachedEmbedding>>;

  const i64 capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  Stats stats_;
};

}  // namespace geofm::serve
