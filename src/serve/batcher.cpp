#include "serve/batcher.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "util/thread_context.hpp"

namespace geofm::serve {

RequestBatcher::RequestBatcher(BatcherOptions opts) : opts_(opts) {
  GEOFM_CHECK(opts.max_batch >= 1, "max_batch must be >= 1");
  GEOFM_CHECK(opts.max_delay_us >= 0, "max_delay_us must be >= 0");
}

std::future<EmbedResult> RequestBatcher::submit(EmbedRequest req) {
  PendingRequest pending;
  pending.request = std::move(req);
  pending.submitted_ns = monotonic_ns();
  std::future<EmbedResult> fut = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) throw Error("RequestBatcher: submit after close()");
    queue_.push_back(std::move(pending));
  }
  static auto& submitted =
      obs::MetricsRegistry::instance().counter("serve.submitted");
  submitted.add(1);
  cv_.notify_all();
  return fut;
}

std::vector<PendingRequest> RequestBatcher::next_batch() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return {};  // closed and drained

  // The oldest queued request anchors the delay window: ship as soon as
  // the batch is full, or when that request has waited long enough.
  const u64 deadline_ns =
      queue_.front().submitted_ns +
      static_cast<u64>(opts_.max_delay_us) * 1000ULL;
  while (static_cast<i64>(queue_.size()) < opts_.max_batch && !closed_) {
    const u64 now = monotonic_ns();
    if (now >= deadline_ns) break;
    cv_.wait_for(lk, std::chrono::nanoseconds(deadline_ns - now), [&] {
      return static_cast<i64>(queue_.size()) >= opts_.max_batch || closed_;
    });
    if (monotonic_ns() >= deadline_ns) break;
  }

  const std::size_t take =
      std::min(queue_.size(), static_cast<std::size_t>(opts_.max_batch));
  std::vector<PendingRequest> batch;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

void RequestBatcher::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestBatcher::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

i64 RequestBatcher::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<i64>(queue_.size());
}

}  // namespace geofm::serve
