#include "serve/batcher.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_context.hpp"

namespace geofm::serve {

namespace {

// EWMA smoothing for batch service time: new observations weigh 0.3 —
// reactive enough to track a hot-swap to a bigger model within a few
// batches, smooth enough that one slow batch does not shed a burst.
constexpr double kEwmaAlpha = 0.3;

struct ShedCounters {
  obs::Counter& overload;
  obs::Counter& deadline;
  obs::Counter& shutdown;
};

ShedCounters& shed_counters() {
  auto& reg = obs::MetricsRegistry::instance();
  static ShedCounters counters{reg.counter("serve.shed_overload"),
                               reg.counter("serve.shed_deadline"),
                               reg.counter("serve.shed_shutdown")};
  return counters;
}

}  // namespace

RequestBatcher::RequestBatcher(BatcherOptions opts) : opts_(opts) {
  GEOFM_CHECK(opts.max_batch >= 1, "max_batch must be >= 1");
  GEOFM_CHECK(opts.max_delay_us >= 0, "max_delay_us must be >= 0");
  GEOFM_CHECK(opts.max_queue >= 0, "max_queue must be >= 0");
}

RequestBatcher::~RequestBatcher() {
  // Shutdown satellite contract: an accepted request's future is never
  // dropped. Whatever is still queued (no worker drained it) resolves
  // with a typed ShutdownError, not a broken promise.
  std::vector<PendingRequest> orphaned;
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
    for (Queue& lane : lanes_) {
      for (PendingRequest& p : lane) orphaned.push_back(std::move(p));
      lane.clear();
    }
    stats_.shed_shutdown += static_cast<i64>(orphaned.size());
  }
  if (!orphaned.empty()) {
    shed_counters().shutdown.add(static_cast<double>(orphaned.size()));
    fail(orphaned, std::make_exception_ptr(ShutdownError(
                       "RequestBatcher destroyed with requests queued")));
  }
}

i64 RequestBatcher::pending_locked() const {
  return static_cast<i64>(lanes_[0].size() + lanes_[1].size());
}

void RequestBatcher::collect_expired_locked(u64 now_ns,
                                            std::vector<PendingRequest>* out) {
  for (Queue& lane : lanes_) {
    for (auto it = lane.begin(); it != lane.end();) {
      if (it->deadline_ns != 0 && now_ns >= it->deadline_ns) {
        out->push_back(std::move(*it));
        it = lane.erase(it);
      } else {
        ++it;
      }
    }
  }
  stats_.shed_deadline += static_cast<i64>(out->size());
}

void RequestBatcher::fail(std::vector<PendingRequest>& batch,
                          const std::exception_ptr& error) {
  for (PendingRequest& p : batch) p.promise.set_exception(error);
  batch.clear();
}

bool RequestBatcher::fair_share_displace_locked(
    const PendingRequest& incoming, std::vector<PendingRequest>* displaced) {
  auto weight_of = [this](const std::string& tenant) {
    const auto it = opts_.tenant_weights.find(tenant);
    return it != opts_.tenant_weights.end() && it->second > 0 ? it->second
                                                              : 1.0;
  };
  std::map<std::string, i64> queued;
  for (const Queue& lane : lanes_) {
    for (const PendingRequest& p : lane) queued[p.request.tenant] += 1;
  }
  // The most-over tenant: highest queued/weight ratio (strict > with the
  // map's name order makes the pick deterministic).
  std::string over_tenant;
  double over_ratio = 0;
  for (const auto& [tenant, count] : queued) {
    const double ratio = static_cast<double>(count) / weight_of(tenant);
    if (ratio > over_ratio) {
      over_ratio = ratio;
      over_tenant = tenant;
    }
  }
  const std::string& mine = incoming.request.tenant;
  const double my_ratio =
      static_cast<double>(queued[mine] + 1) / weight_of(mine);
  if (queued.empty() || my_ratio >= over_ratio || over_tenant == mine) {
    return false;  // admitting us would not improve fairness
  }
  // Displace the youngest request of the over tenant — bulk lane first,
  // so fair-share never inverts the lane priority it rides under.
  for (Queue* lane : {&lanes_[static_cast<int>(Lane::kBulk)],
                      &lanes_[static_cast<int>(Lane::kInteractive)]}) {
    for (auto it = lane->rbegin(); it != lane->rend(); ++it) {
      if (it->request.tenant == over_tenant) {
        displaced->push_back(std::move(*it));
        lane->erase(std::next(it).base());
        return true;
      }
    }
  }
  return false;
}

std::future<EmbedResult> RequestBatcher::submit(EmbedRequest req) {
  PendingRequest pending;
  pending.submitted_ns = monotonic_ns();
  if (req.deadline_us > 0) {
    pending.deadline_ns =
        pending.submitted_ns + static_cast<u64>(req.deadline_us) * 1000ULL;
  }
  const Lane lane = req.lane;
  pending.request = std::move(req);
  std::future<EmbedResult> fut = pending.promise.get_future();

  std::vector<PendingRequest> expired;   // queued entries past deadline
  std::vector<PendingRequest> displaced;  // bulk entries bumped by priority
  std::vector<PendingRequest> unfair;  // entries bumped by tenant fair-share
  std::exception_ptr rejection;  // set iff `pending` itself is shed
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) {
      stats_.shed_shutdown += 1;
      rejection = std::make_exception_ptr(
          ShutdownError("RequestBatcher: submit after close()"));
    }
    // Deadline-aware admission: if the work already queued ahead takes
    // longer (by the EWMA of recent batch times) than this request's
    // whole budget, admitting it only converts a fast failure into a
    // slow one. Requests without a deadline always pass this gate.
    if (rejection == nullptr && pending.deadline_ns != 0 &&
        ewma_batch_seconds_ > 0) {
      const double batches_ahead = static_cast<double>(
          pending_locked() / opts_.max_batch + 1);  // queue ahead + ours
      const double estimate_s = batches_ahead * ewma_batch_seconds_;
      const double budget_s =
          static_cast<double>(pending.deadline_ns - pending.submitted_ns) *
          1e-9;
      if (estimate_s > budget_s) {
        stats_.shed_deadline += 1;
        rejection = std::make_exception_ptr(DeadlineExceeded(
            "cannot meet deadline: ~" + std::to_string(estimate_s) +
            "s of queued work against a " + std::to_string(budget_s) +
            "s budget"));
      }
    }
    if (rejection == nullptr && opts_.max_queue > 0 &&
        pending_locked() >= opts_.max_queue) {
      // Make room from expired entries first: they are dead weight.
      collect_expired_locked(pending.submitted_ns, &expired);
      if (pending_locked() >= opts_.max_queue) {
        Queue& bulk = lanes_[static_cast<int>(Lane::kBulk)];
        if (lane == Lane::kInteractive && !bulk.empty()) {
          // Priority admission: the youngest bulk request yields its
          // slot (LIFO displacement — the oldest bulk request has
          // waited longest and ships soonest).
          displaced.push_back(std::move(bulk.back()));
          bulk.pop_back();
          stats_.shed_overload += 1;
        } else if (!opts_.tenant_weights.empty() &&
                   fair_share_displace_locked(pending, &unfair)) {
          // Weighted fair-share: an under-share tenant's arrival takes
          // the slot of the most-over tenant's youngest request.
          stats_.shed_overload += 1;
          stats_.shed_fair_share += 1;
        } else {
          stats_.shed_overload += 1;
          rejection = std::make_exception_ptr(Overloaded(
              "admission queue full (" + std::to_string(opts_.max_queue) +
              " queued)"));
        }
      }
    }
    if (rejection == nullptr) {
      lanes_[static_cast<int>(lane)].push_back(std::move(pending));
      stats_.submitted += 1;
    }
  }

  auto& reg = obs::MetricsRegistry::instance();
  static auto& submitted = reg.counter("serve.submitted");
  static auto& queue_depth = reg.gauge("serve.queue_depth");
  if (rejection == nullptr) submitted.add(1);
  queue_depth.set(static_cast<double>(this->pending()));
  if (!expired.empty()) {
    shed_counters().deadline.add(static_cast<double>(expired.size()));
    for (std::size_t i = 0; i < expired.size(); ++i) {
      obs::trace_instant("serve.shed_deadline", "serve");
    }
    fail(expired, std::make_exception_ptr(DeadlineExceeded(
                      "deadline expired while queued")));
  }
  if (!displaced.empty()) {
    shed_counters().overload.add(static_cast<double>(displaced.size()));
    obs::trace_instant("serve.shed_overload", "serve");
    fail(displaced, std::make_exception_ptr(Overloaded(
                        "displaced by an interactive request")));
  }
  if (!unfair.empty()) {
    static auto& fair_share =
        obs::MetricsRegistry::instance().counter("serve.shed_fair_share");
    shed_counters().overload.add(static_cast<double>(unfair.size()));
    fair_share.add(static_cast<double>(unfair.size()));
    obs::trace_instant("serve.shed_overload", "serve");
    fail(unfair, std::make_exception_ptr(Overloaded(
                     "displaced for tenant fair-share")));
  }
  if (rejection != nullptr) {
    // Typed fast-fail: the future is ready before submit returns. Metric
    // attribution by type (stats_ was already bumped under the lock).
    try {
      std::rethrow_exception(rejection);
    } catch (const Overloaded&) {
      shed_counters().overload.add(1);
      obs::trace_instant("serve.shed_overload", "serve");
    } catch (const DeadlineExceeded&) {
      shed_counters().deadline.add(1);
      obs::trace_instant("serve.shed_deadline", "serve");
    } catch (const ShutdownError&) {
      shed_counters().shutdown.add(1);
    } catch (...) {
    }
    pending.promise.set_exception(rejection);
    return fut;
  }
  cv_.notify_all();
  return fut;
}

std::vector<PendingRequest> RequestBatcher::next_batch() {
  std::vector<PendingRequest> expired;
  std::vector<PendingRequest> batch;
  {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait(lk, [&] { return pending_locked() > 0 || closed_; });
      if (pending_locked() == 0) return {};  // closed and drained

      // Sweep expired entries before forming the batch: they must never
      // reach the encoder, and their futures resolve now, not after the
      // batch ahead of them computes.
      collect_expired_locked(monotonic_ns(), &expired);
      if (pending_locked() > 0 || closed_) break;
      // Everything queued had expired; resolve those and wait again.
      lk.unlock();
      if (!expired.empty()) {
        shed_counters().deadline.add(static_cast<double>(expired.size()));
        fail(expired, std::make_exception_ptr(DeadlineExceeded(
                          "deadline expired while queued")));
      }
      lk.lock();
    }
    if (pending_locked() > 0) {
      // The oldest queued request (across lanes) anchors the delay
      // window: ship as soon as the batch is full, when that request
      // has waited long enough, or — deadline-aware — just before the
      // tightest queued deadline would expire.
      u64 oldest_ns = ~0ULL;
      u64 tightest_deadline_ns = ~0ULL;
      for (const Queue& lane : lanes_) {
        for (const PendingRequest& p : lane) {
          oldest_ns = std::min(oldest_ns, p.submitted_ns);
          if (p.deadline_ns != 0) {
            tightest_deadline_ns =
                std::min(tightest_deadline_ns, p.deadline_ns);
          }
        }
      }
      const u64 door_ns =
          oldest_ns + static_cast<u64>(opts_.max_delay_us) * 1000ULL;
      const u64 ship_ns = std::min(door_ns, tightest_deadline_ns);
      while (pending_locked() < opts_.max_batch && !closed_) {
        const u64 now = monotonic_ns();
        if (now >= ship_ns) break;
        cv_.wait_for(lk, std::chrono::nanoseconds(ship_ns - now), [&] {
          return pending_locked() >= opts_.max_batch || closed_;
        });
        if (monotonic_ns() >= ship_ns) break;
      }

      // Interactive lane drains first — the priority half of the lane
      // contract (admission displacement is the other half).
      const std::size_t take = std::min(
          static_cast<std::size_t>(pending_locked()),
          static_cast<std::size_t>(opts_.max_batch));
      batch.reserve(take);
      for (Queue* lane : {&lanes_[static_cast<int>(Lane::kInteractive)],
                          &lanes_[static_cast<int>(Lane::kBulk)]}) {
        while (batch.size() < take && !lane->empty()) {
          batch.push_back(std::move(lane->front()));
          lane->pop_front();
        }
      }
    }
  }
  if (!expired.empty()) {
    shed_counters().deadline.add(static_cast<double>(expired.size()));
    fail(expired, std::make_exception_ptr(DeadlineExceeded(
                      "deadline expired while queued")));
  }
  static auto& queue_depth =
      obs::MetricsRegistry::instance().gauge("serve.queue_depth");
  queue_depth.set(static_cast<double>(pending()));
  return batch;
}

void RequestBatcher::record_batch_seconds(double seconds) {
  if (seconds <= 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  ewma_batch_seconds_ = ewma_batch_seconds_ == 0
                            ? seconds
                            : kEwmaAlpha * seconds +
                                  (1 - kEwmaAlpha) * ewma_batch_seconds_;
}

void RequestBatcher::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestBatcher::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

i64 RequestBatcher::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_locked();
}

BatcherStats RequestBatcher::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace geofm::serve
