#include "serve/cache.hpp"

#include "obs/metrics.hpp"

namespace geofm::serve {

namespace {

obs::Counter& hits_metric() {
  static auto& c = obs::MetricsRegistry::instance().counter("serve.cache_hits");
  return c;
}
obs::Counter& misses_metric() {
  static auto& c =
      obs::MetricsRegistry::instance().counter("serve.cache_misses");
  return c;
}
obs::Counter& evictions_metric() {
  static auto& c =
      obs::MetricsRegistry::instance().counter("serve.cache_evictions");
  return c;
}
obs::Gauge& size_metric() {
  static auto& g = obs::MetricsRegistry::instance().gauge("serve.cache_size");
  return g;
}

}  // namespace

EmbeddingCache::EmbeddingCache(i64 capacity) : capacity_(capacity) {
  GEOFM_CHECK(capacity >= 0, "cache capacity must be >= 0, got " << capacity);
}

bool EmbeddingCache::lookup(const std::string& key, i64 epoch,
                            CachedEmbedding* out) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    misses_metric().add(1);
    return false;
  }
  if (it->second->second.model_epoch != epoch) {
    // Produced under different weights than the caller is serving with;
    // drop it so the refreshed embedding takes its slot.
    lru_.erase(it->second);
    index_.erase(it);
    size_metric().set(static_cast<double>(index_.size()));
    ++stats_.stale;
    ++stats_.misses;
    misses_metric().add(1);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  const CachedEmbedding& entry = it->second->second;
  out->embedding = entry.embedding.clone();
  out->model_step = entry.model_step;
  out->model_epoch = entry.model_epoch;
  ++stats_.hits;
  hits_metric().add(1);
  return true;
}

void EmbeddingCache::insert(const std::string& key, CachedEmbedding entry) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (static_cast<i64>(index_.size()) >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    evictions_metric().add(1);
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  size_metric().set(static_cast<double>(index_.size()));
}

i64 EmbeddingCache::invalidate_older_than(i64 epoch) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lk(mu_);
  i64 removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->second.model_epoch < epoch) {
      index_.erase(it->first);
      it = lru_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  size_metric().set(static_cast<double>(index_.size()));
  return removed;
}

i64 EmbeddingCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<i64>(index_.size());
}

EmbeddingCache::Stats EmbeddingCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace geofm::serve
