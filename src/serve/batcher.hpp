// Dynamic request batcher: coalesces concurrent embedding requests into
// bounded batches for one shared encoder forward.
//
// Callers submit() from any thread and get a future; the single batch
// worker calls next_batch(), which blocks until at least one request is
// queued and then returns up to `max_batch` requests — immediately when
// the batch is full, otherwise once the *oldest* queued request has
// waited `max_delay_us`. The two knobs trade latency against throughput:
// max_delay_us = 0 ships whatever is queued the moment the worker is
// free (lowest latency), larger values hold the door open so sparse
// traffic still fills batches (highest encoder utilization).
//
// close() stops admission (submit throws) but next_batch() keeps
// returning queued work until the queue drains, then returns empty —
// shutdown never abandons an accepted request's promise.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/common.hpp"

namespace geofm::serve {

/// One embedding request. `image` is a single [C,H,W] scene.
struct EmbedRequest {
  std::string key;     // cache/identity key; empty = never cached
  Tensor image;        // [C,H,W], matching the served model's config
  std::string tenant;  // optional: apply this tenant's head to the result
};

struct EmbedResult {
  Tensor embedding;     // [width]
  Tensor logits;        // [classes], defined iff a tenant head was applied
  i64 model_step = -1;  // checkpoint step of the weights that served this
  i64 model_epoch = 0;  // swap generation (constant across one batch)
  i64 batch_size = 0;   // encoder batch this rode in; 0 = served from cache
  bool cache_hit = false;
};

/// A queued request: what the caller sent plus the promise the batch
/// worker fulfills and the submit timestamp (request-latency metric).
struct PendingRequest {
  EmbedRequest request;
  std::promise<EmbedResult> promise;
  u64 submitted_ns = 0;
};

struct BatcherOptions {
  i64 max_batch = 8;
  i64 max_delay_us = 1000;
};

class RequestBatcher {
 public:
  explicit RequestBatcher(BatcherOptions opts);

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Queues `req`; never blocks. Throws geofm::Error after close().
  std::future<EmbedResult> submit(EmbedRequest req);

  /// Blocks until a batch is ready (see header comment) and pops it.
  /// Empty result = closed and fully drained; the worker should exit.
  std::vector<PendingRequest> next_batch();

  /// Stops admission and wakes the worker. Queued requests still drain.
  void close();

  bool closed() const;
  i64 pending() const;
  const BatcherOptions& options() const { return opts_; }

 private:
  const BatcherOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  bool closed_ = false;
};

}  // namespace geofm::serve
