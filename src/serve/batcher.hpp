// Dynamic request batcher with admission control: coalesces concurrent
// embedding requests into bounded batches for one shared encoder
// forward, and sheds work it cannot serve in time instead of queueing
// it forever.
//
// Callers submit() from any thread and get a future; the single batch
// worker calls next_batch(), which blocks until at least one request is
// queued and then returns up to `max_batch` requests — immediately when
// the batch is full, otherwise once the *oldest* queued request has
// waited `max_delay_us`. The two knobs trade latency against throughput:
// max_delay_us = 0 ships whatever is queued the moment the worker is
// free (lowest latency), larger values hold the door open so sparse
// traffic still fills batches (highest encoder utilization).
//
// Overload discipline — the batcher never blocks a submitter and never
// lets the queue grow without bound:
//
//   * Bounded admission (`max_queue` > 0): when the queue is full, the
//     incoming request is rejected with a typed `Overloaded` error on
//     its future (after first sweeping out any already-expired entries
//     to make room). submit() itself stays non-blocking and non-throwing
//     for load conditions — shedding is a *result*, not control flow.
//   * Deadlines (`EmbedRequest::deadline_us`, relative to submit; 0 =
//     none): a request that expires while queued is completed with
//     `DeadlineExceeded` at the next queue touch and never reaches the
//     encoder; a request that *cannot* meet its deadline even if
//     admitted — the EWMA of recent batch service times says the queue
//     ahead of it takes longer than its whole budget — is rejected
//     up front with `DeadlineExceeded` (fail fast beats queue-then-expire).
//   * Priority lanes (`EmbedRequest::lane`): kInteractive requests are
//     batched ahead of kBulk ones, and when the queue is full an
//     interactive arrival displaces the youngest queued bulk request
//     (which is shed `Overloaded`) — cache-hit-eligible and tenant-head
//     traffic is never starved behind a bulk-encode backlog.
//
// Shutdown: close() stops admission (later submits resolve with
// `ShutdownError`) but next_batch() keeps returning queued work until
// the queue drains, then returns empty. If the batcher is destroyed
// with requests still queued (no worker draining), every queued promise
// is completed with `ShutdownError` — an accepted request's future is
// never dropped unresolved.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/common.hpp"

namespace geofm::serve {

// Typed serving failures. Callers distinguish shed-able conditions (back
// off, retry elsewhere, degrade) from programming errors by type; all
// three derive from geofm::Error so existing catch sites keep working.
class Overloaded : public Error {
 public:
  explicit Overloaded(const std::string& what) : Error(what) {}
};
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};
class ShutdownError : public Error {
 public:
  explicit ShutdownError(const std::string& what) : Error(what) {}
};
/// The server is running without loadable weights (cache-only mode):
/// cache hits are still answered, everything else is shed with this.
class Degraded : public Error {
 public:
  explicit Degraded(const std::string& what) : Error(what) {}
};

/// Admission lane. Interactive requests batch ahead of bulk ones and
/// win admission against them when the queue is full.
enum class Lane : unsigned char { kBulk = 0, kInteractive = 1 };

/// One embedding request. `image` is a single [C,H,W] scene.
struct EmbedRequest {
  std::string key;     // cache/identity key; empty = never cached
  Tensor image;        // [C,H,W], matching the served model's config
  std::string tenant;  // optional: apply this tenant's head to the result
  i64 deadline_us = 0;  // latency budget from submit; 0 = no deadline
  Lane lane = Lane::kBulk;
};

struct EmbedResult {
  Tensor embedding;     // [width]
  Tensor logits;        // [classes], defined iff a tenant head was applied
  i64 model_step = -1;  // checkpoint step of the weights that served this
  i64 model_epoch = 0;  // swap generation (constant across one batch)
  i64 batch_size = 0;   // encoder batch this rode in; 0 = served from cache
  bool cache_hit = false;
  bool degraded = false;  // served from cache while no weights are loadable
};

/// A queued request: what the caller sent plus the promise the batch
/// worker fulfills and the submit/expiry timestamps.
struct PendingRequest {
  EmbedRequest request;
  std::promise<EmbedResult> promise;
  u64 submitted_ns = 0;
  u64 deadline_ns = 0;  // absolute monotonic_ns expiry; 0 = none
};

struct BatcherOptions {
  i64 max_batch = 8;
  i64 max_delay_us = 1000;
  i64 max_queue = 0;  // queued-request bound across both lanes; 0 = unbounded
  /// Per-tenant admission weights (fair-share shedding). Empty = off.
  /// When the queue is full, an arriving request whose tenant is *under*
  /// its weighted share displaces the youngest queued request of the
  /// tenant *most over* its share (shed `Overloaded`), instead of being
  /// rejected outright — so one tenant's flood cannot monopolize the
  /// queue against a lighter tenant's trickle. A tenant absent from the
  /// map weighs 1.0; weights only matter relative to each other
  /// (steady-state queue slots split proportionally to weight among
  /// tenants with pending demand).
  std::map<std::string, double> tenant_weights = {};
};

/// Shed/queue accounting (also mirrored into serve.* metrics).
struct BatcherStats {
  i64 submitted = 0;       // admitted requests
  i64 shed_overload = 0;   // rejected or displaced: queue full
  i64 shed_deadline = 0;   // expired in queue or hopeless at admission
  i64 shed_shutdown = 0;   // completed with ShutdownError
  i64 shed_fair_share = 0;  // of shed_overload: displaced by a tenant
                            // under its fair share
};

class RequestBatcher {
 public:
  explicit RequestBatcher(BatcherOptions opts);

  /// Completes any still-queued request with ShutdownError.
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Queues `req`; never blocks and never throws for load or lifecycle
  /// conditions — an un-admittable request's future resolves immediately
  /// with a typed error (Overloaded / DeadlineExceeded / ShutdownError).
  std::future<EmbedResult> submit(EmbedRequest req);

  /// Blocks until a batch is ready (see header comment) and pops it,
  /// interactive lane first. Expired requests are shed, not returned.
  /// Empty result = closed and fully drained; the worker should exit.
  std::vector<PendingRequest> next_batch();

  /// Feeds the admission estimator: observed wall seconds for one batch
  /// (encode + fulfillment). The batch worker calls this per batch.
  void record_batch_seconds(double seconds);

  /// Stops admission and wakes the worker. Queued requests still drain.
  void close();

  bool closed() const;
  i64 pending() const;
  BatcherStats stats() const;
  const BatcherOptions& options() const { return opts_; }

 private:
  using Queue = std::deque<PendingRequest>;

  // All *_locked helpers require mu_ held. Shed promises are completed
  // after the lock drops (set_exception can wake waiters).
  i64 pending_locked() const;
  void collect_expired_locked(u64 now_ns, std::vector<PendingRequest>* out);
  /// Fair-share arbitration for a full queue: if `incoming`'s tenant is
  /// under its weighted share and some tenant is over its own, moves the
  /// youngest queued request of the most-over tenant into `displaced`
  /// and returns true (the caller admits `incoming` into the freed
  /// slot). Returns false when the incoming tenant holds no fairness
  /// claim — the queue is full of tenants at or under their shares.
  bool fair_share_displace_locked(const PendingRequest& incoming,
                                  std::vector<PendingRequest>* displaced);
  static void fail(std::vector<PendingRequest>& batch,
                   const std::exception_ptr& error);

  const BatcherOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Queue lanes_[2];  // index by static_cast<int>(Lane)
  double ewma_batch_seconds_ = 0;  // 0 = no observation yet
  BatcherStats stats_;
  bool closed_ = false;
};

}  // namespace geofm::serve
