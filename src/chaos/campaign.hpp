// Chaos campaigns: seeded, randomized-but-replayable fault schedules
// that span every fault seam the system has — comm (rank kills, stalls),
// storage IO (torn/failed/slow checkpoint writes, slow uploads), the
// data path (loader worker death, hung renders, poisoned samples), and
// the serving tier (client overload bursts, mirror-upload faults).
//
// A `Campaign` is generated from a `CampaignConfig` by pure seeded
// draws: the same (config, seed) always yields the same campaign, and a
// campaign's `plan` feeds straight into `ElasticConfig::faults`, so one
// u64 reproduces an entire multi-subsystem failure scenario. Faults are
// drawn in *correlated bursts* — a burst picks one step interval and one
// victim rank, then lands several faults inside that window (the
// "kill a rank while its checkpoint write tears" shape that uncorrelated
// single-fault tests never exercise).
//
// `plan_from_postmortem` closes the record/replay loop: it parses the
// realized fault schedule out of a flight-recorder postmortem bundle
// (the "fired_plan" note `run_elastic` embeds in every bundle) — or a
// bare `plan_to_json` trace — back into a campaign, so the schedule that
// actually killed a real run can be replayed under a debugger.
#pragma once

#include <string>
#include <vector>

#include "comm/fault.hpp"

namespace geofm::chaos {

struct CampaignConfig {
  u64 seed = 0;
  /// Fault-target space. `world` bounds victim ranks (identities under
  /// run_elastic); `steps` bounds step/ordinal triggers (loader ordinals
  /// assume one global batch per step, which is what the MAE driver
  /// does); `io_ops` bounds storage-op triggers.
  int world = 4;
  i64 steps = 8;
  i64 io_ops = 4;
  /// Correlated bursts per campaign, each landing `min_faults_per_burst`
  /// .. `max_faults_per_burst` faults in one (interval, victim) window.
  int bursts = 2;
  int min_faults_per_burst = 1;
  int max_faults_per_burst = 3;
  /// Hard bound on rank kills across the whole campaign, so a campaign
  /// never shrinks a run below `world - max_kills` (keep it above the
  /// supervisor's min_world).
  int max_kills = 1;
  /// Subsystems to draw from. Disabling one removes its fault kinds from
  /// the menu; the draw sequence is unchanged (a disabled pick redraws
  /// deterministically).
  bool comm_faults = true;
  bool storage_faults = true;
  bool loader_faults = true;
  bool serve_overload = true;
};

/// One generated campaign. `plan` is in identity terms, ready for
/// `ElasticConfig::faults`; `overload_steps` schedules client-side
/// request floods against the serving tier (driven by the soak harness —
/// overload is a traffic pattern, not an injectable event), each of
/// `overload_requests` concurrent submissions.
struct Campaign {
  u64 seed = 0;
  comm::FaultPlan plan;
  std::vector<i64> overload_steps;
  i64 overload_requests = 32;

  /// Human-readable one-line-per-event summary (for soak logs).
  std::string describe() const;
};

/// Deterministically expands `cfg` into a campaign: same config, same
/// campaign, bitwise — `generate_campaign(cfg).plan` serialized with
/// `comm::plan_to_json` is stable across runs and platforms.
Campaign generate_campaign(const CampaignConfig& cfg);

/// Parses a recorded failure trace back into a replayable campaign.
/// Accepts either a flight-recorder postmortem bundle (the JSON written
/// by `obs::FlightRecorder::archive`, whose "fired_plan" note holds the
/// escaped `plan_to_json` of every event that had fired by the time the
/// run aborted) or a bare fault-plan JSON. Throws `geofm::Error` when
/// the text is neither.
Campaign plan_from_postmortem(const std::string& text);

/// `plan_from_postmortem` over a file's contents.
Campaign plan_from_postmortem_file(const std::string& path);

}  // namespace geofm::chaos
