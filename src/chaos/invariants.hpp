// System invariant checker: after a chaos campaign runs, assert the
// guarantees every subsystem promised individually — as one audit.
//
//   futures-conserved      every serving request issued came back,
//                          exactly once, fulfilled or typed-shed
//   publications-atomic    the newest manifest under every publish root
//                          (primary + mirror) passes a full checksum
//                          verify: a torn publication is never visible
//                          through latest_published_manifest /
//                          published_sources
//   recovery-bitwise       the completing attempt's losses equal a fresh
//                          run at the same world resumed from the same
//                          checkpoint, with the attempt's loss-affecting
//                          fired faults replayed
//   recovery-bounded       recoveries and summed recovery seconds stay
//                          under the configured ceilings
//   postmortems-present    every failed attempt archived a flight
//                          bundle, the file exists, and its fired_plan
//                          note parses back into a replayable campaign
//
// The checker is pure audit: it never mutates the run's state (the
// bitwise replay trains into nothing — no checkpoint dir). Each check
// only runs when its inputs are provided, and `InvariantReport::checked`
// records which ones did, so a passing report can't silently mean
// "nothing was checked".
#pragma once

#include <string>
#include <vector>

#include "data/datasets.hpp"
#include "serve/server.hpp"
#include "train/elastic.hpp"

namespace geofm::chaos {

/// Client-side serving audit, counted by whoever drove the traffic.
struct ServeAudit {
  i64 issued = 0;    // requests submitted
  i64 resolved = 0;  // futures that produced a value or a typed error
  serve::ServerStats stats;
};

struct InvariantInputs {
  /// Elastic run under audit (both null = skip the training checks).
  const train::ElasticConfig* config = nullptr;
  const train::ElasticResult* result = nullptr;
  /// Corpus the run trained on; required for the bitwise-recovery replay.
  const data::SceneDataset* corpus = nullptr;
  /// Publish roots to audit (primary checkpoint dir, uploader mirror).
  std::vector<std::string> publish_roots;
  /// Serving audit (issued == 0 = skip).
  ServeAudit serve;
  /// Ceilings for recovery-bounded. max_recoveries <= 0 defaults to the
  /// config's; max_recovery_seconds <= 0 skips the time bound.
  int max_recoveries = 0;
  double max_recovery_seconds = 0;
  /// The bitwise replay re-trains the completing attempt — skip it when
  /// auditing time matters more than depth (the soak runner keeps it on).
  bool check_bitwise_recovery = true;
};

struct InvariantViolation {
  std::string invariant;  // e.g. "publications-atomic"
  std::string detail;
};

struct InvariantReport {
  std::vector<std::string> checked;  // invariants that actually ran
  std::vector<InvariantViolation> violations;

  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

InvariantReport check_invariants(const InvariantInputs& in);

}  // namespace geofm::chaos
