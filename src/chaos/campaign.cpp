#include "chaos/campaign.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/rng.hpp"

namespace geofm::chaos {

namespace {

// The draw menu. Codes are stable: adding a kind appends, never
// renumbers — a campaign seed is a replay artifact and must keep meaning
// what it meant.
enum FaultCode : int {
  kCommKill = 0,
  kCommStall = 1,
  kCommSlowRank = 2,
  kIoTornWrite = 3,
  kIoFailWrite = 4,
  kIoSlowWrite = 5,
  kIoSlowUpload = 6,
  kIoTornUpload = 7,
  kLoaderKill = 8,
  kLoaderSlow = 9,
  kLoaderPoison = 10,
};

bool is_comm(int c) { return c <= kCommSlowRank; }
bool is_storage(int c) { return c >= kIoTornWrite && c <= kIoTornUpload; }
bool is_loader(int c) { return c >= kLoaderKill; }

const char* kind_label(comm::FaultEvent::Kind kind) {
  using Kind = comm::FaultEvent::Kind;
  switch (kind) {
    case Kind::kKill: return "kill";
    case Kind::kStall: return "stall";
    case Kind::kSlowRank: return "slow_rank";
    case Kind::kCorrupt: return "corrupt";
    case Kind::kCallback: return "callback";
    case Kind::kIoFail: return "io_fail";
    case Kind::kIoTorn: return "io_torn";
    case Kind::kIoSlow: return "io_slow";
    case Kind::kIoUnreadable: return "io_unreadable";
    case Kind::kLoaderWorkerKill: return "loader_worker_kill";
    case Kind::kLoaderSlowRender: return "loader_slow_render";
    case Kind::kLoaderPoison: return "loader_poison";
  }
  return "?";
}

}  // namespace

std::string Campaign::describe() const {
  std::ostringstream out;
  out << "campaign seed=" << seed << " events=" << plan.events.size()
      << " overload_bursts=" << overload_steps.size() << "\n";
  for (const auto& e : plan.events) {
    out << "  " << kind_label(e.kind) << " rank=" << e.rank;
    if (e.step >= 0) out << " step=" << e.step;
    if (e.after_posts >= 0) out << " after_posts=" << e.after_posts;
    if (e.after_io >= 0) out << " after_io=" << e.after_io;
    if (e.seconds > 0) out << " seconds=" << e.seconds;
    out << "\n";
  }
  for (i64 s : overload_steps) {
    out << "  overload step=" << s << " requests=" << overload_requests
        << "\n";
  }
  return out.str();
}

Campaign generate_campaign(const CampaignConfig& cfg) {
  GEOFM_CHECK(cfg.world >= 1, "campaign needs a world");
  GEOFM_CHECK(cfg.steps >= 2, "campaign needs at least 2 steps of horizon");
  GEOFM_CHECK(cfg.min_faults_per_burst >= 1 &&
                  cfg.max_faults_per_burst >= cfg.min_faults_per_burst,
              "bad faults-per-burst range");

  std::vector<int> menu;
  if (cfg.comm_faults) {
    menu.insert(menu.end(), {kCommKill, kCommStall, kCommSlowRank});
  }
  if (cfg.storage_faults) {
    menu.insert(menu.end(), {kIoTornWrite, kIoFailWrite, kIoSlowWrite,
                             kIoSlowUpload, kIoTornUpload});
  }
  if (cfg.loader_faults) {
    menu.insert(menu.end(), {kLoaderKill, kLoaderSlow, kLoaderPoison});
  }
  GEOFM_CHECK(!menu.empty() || cfg.serve_overload,
              "campaign with every subsystem disabled");

  Campaign camp;
  camp.seed = cfg.seed;
  camp.plan.seed = cfg.seed;
  const Rng root = Rng(cfg.seed).split(hash_name("chaos_campaign"));
  int kills_left = cfg.max_kills;

  for (int b = 0; b < cfg.bursts; ++b) {
    // One burst = one (step interval, victim rank) window; every fault
    // drawn for the burst lands inside it. That correlation is the
    // point: "the rank died *while* its checkpoint write tore".
    Rng burst = root.split(static_cast<u64>(b) + 1);
    const i64 step = 1 + burst.uniform_int(cfg.steps - 1);
    const int victim = static_cast<int>(burst.uniform_int(cfg.world));
    const int n_faults =
        cfg.min_faults_per_burst +
        static_cast<int>(burst.uniform_int(cfg.max_faults_per_burst -
                                           cfg.min_faults_per_burst + 1));
    for (int f = 0; f < n_faults && !menu.empty(); ++f) {
      Rng draw = burst.split(100 + static_cast<u64>(f));
      int code = menu[static_cast<size_t>(
          draw.uniform_int(static_cast<i64>(menu.size())))];
      if (code == kCommKill && kills_left <= 0) code = kCommStall;
      using FE = comm::FaultEvent;
      switch (code) {
        case kCommKill:
          --kills_left;
          camp.plan.events.push_back(FE::kill_at_step(victim, step));
          break;
        case kCommStall:
          camp.plan.events.push_back(
              FE::stall_at_step(victim, step, draw.uniform(0.005, 0.02)));
          break;
        case kCommSlowRank:
          camp.plan.events.push_back(
              FE::slow_rank(victim, draw.uniform_int(16),
                            draw.uniform(0.002, 0.008), 2));
          break;
        case kIoTornWrite:
          camp.plan.events.push_back(
              FE::io_torn_write(victim, draw.uniform_int(cfg.io_ops)));
          break;
        case kIoFailWrite:
          // Fatal unless the run tolerates checkpoint failures — the
          // soak harness sets tolerate_checkpoint_failures.
          camp.plan.events.push_back(
              FE::io_fail_write(victim, draw.uniform_int(cfg.io_ops)));
          break;
        case kIoSlowWrite:
          camp.plan.events.push_back(
              FE::io_slow_write(victim, draw.uniform_int(cfg.io_ops),
                                draw.uniform(0.002, 0.01)));
          break;
        case kIoSlowUpload:
          camp.plan.events.push_back(FE::io_slow_upload(
              draw.uniform_int(cfg.io_ops), draw.uniform(0.002, 0.01)));
          break;
        case kIoTornUpload:
          camp.plan.events.push_back(
              FE::io_torn_upload(draw.uniform_int(cfg.io_ops)));
          break;
        case kLoaderKill:
          // One global batch per step: the burst's step doubles as the
          // loader ordinal, so the data-path fault is concurrent with
          // the burst's comm/storage faults.
          camp.plan.events.push_back(FE::loader_worker_kill(victim, step));
          break;
        case kLoaderSlow:
          camp.plan.events.push_back(FE::loader_slow_render(
              victim, step, draw.uniform(0.02, 0.06), 1));
          break;
        case kLoaderPoison:
          camp.plan.events.push_back(FE::loader_poison(victim, step));
          break;
        default:
          break;
      }
    }
    if (cfg.serve_overload && burst.uniform_int(2) == 0) {
      camp.overload_steps.push_back(step);
    }
  }
  return camp;
}

namespace {

// Unescapes one JSON string starting at text[pos] == '"'. Handles the
// escapes the flight recorder and fault trace emit: \" \\ \/ \n \t and
// \u00XX control characters.
std::string read_json_string(const std::string& text, size_t pos) {
  GEOFM_CHECK(pos < text.size() && text[pos] == '"',
              "postmortem: expected a JSON string");
  ++pos;
  std::string out;
  while (pos < text.size()) {
    const char c = text[pos++];
    if (c == '"') return out;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    GEOFM_CHECK(pos < text.size(), "postmortem: unterminated escape");
    const char esc = text[pos++];
    switch (esc) {
      case '"':
      case '\\':
      case '/':
        out.push_back(esc);
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'u': {
        GEOFM_CHECK(pos + 4 <= text.size(),
                    "postmortem: truncated \\u escape");
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text[pos++];
          v <<= 4;
          if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
          else throw Error("postmortem: bad \\u escape");
        }
        GEOFM_CHECK(v < 0x80, "postmortem: non-ASCII \\u escape unsupported");
        out.push_back(static_cast<char>(v));
        break;
      }
      default:
        throw Error("postmortem: unsupported escape in string");
    }
  }
  throw Error("postmortem: unterminated string");
}

}  // namespace

Campaign plan_from_postmortem(const std::string& text) {
  std::string plan_json;
  const size_t key = text.find("\"fired_plan\"");
  if (key != std::string::npos) {
    // A flight-recorder bundle: the note's value is the escaped
    // plan_to_json of the realized schedule.
    size_t pos = text.find(':', key + 12);
    GEOFM_CHECK(pos != std::string::npos,
                "postmortem: malformed fired_plan note");
    ++pos;
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    plan_json = read_json_string(text, pos);
  } else {
    plan_json = text;  // a bare plan_to_json trace
  }
  Campaign camp;
  camp.plan = comm::plan_from_json(plan_json);
  camp.seed = camp.plan.seed;
  return camp;
}

Campaign plan_from_postmortem_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GEOFM_CHECK(in.good(), "postmortem: cannot open " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return plan_from_postmortem(buf.str());
}

}  // namespace geofm::chaos
