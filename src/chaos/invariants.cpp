#include "chaos/invariants.hpp"

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <sstream>

#include "chaos/campaign.hpp"
#include "ckpt/checkpoint.hpp"
#include "comm/communicator.hpp"
#include "models/mae.hpp"
#include "parallel/fsdp.hpp"
#include "train/distributed.hpp"
#include "util/rng.hpp"

namespace geofm::chaos {

namespace {

namespace fs = std::filesystem;

void violate(InvariantReport& rep, const std::string& invariant,
             const std::string& detail) {
  rep.violations.push_back({invariant, detail});
}

/// True for fault kinds that change the numbers a run produces (as
/// opposed to its timing): an injected payload corruption or a poisoned
/// sample must be replayed for the reference trajectory to match; kills,
/// stalls, and slow IO only move wall-clock.
bool affects_losses(comm::FaultEvent::Kind kind) {
  using Kind = comm::FaultEvent::Kind;
  return kind == Kind::kCorrupt || kind == Kind::kLoaderWorkerKill ||
         kind == Kind::kLoaderSlowRender || kind == Kind::kLoaderPoison;
}

/// The reference trajectory for recovery-bitwise: a fresh run at the
/// completing attempt's world, resumed from the same checkpoint, with
/// that attempt's loss-affecting fired faults replayed (identity terms
/// remapped to the attempt's ranks). No checkpointing — pure audit.
std::vector<float> reference_losses(const train::ElasticConfig& ecfg,
                                    const train::ElasticResult& res,
                                    const data::SceneDataset& corpus) {
  const train::ElasticAttempt& last = res.attempts.back();
  comm::FaultPlan replay;
  replay.seed = res.fired_plan.seed;
  const size_t total = res.fired_plan.events.size();
  const size_t from_last = static_cast<size_t>(last.faults_fired);
  for (size_t i = total - std::min(from_last, total); i < total; ++i) {
    comm::FaultEvent e = res.fired_plan.events[i];
    if (!affects_losses(e.kind)) continue;
    if (e.rank >= 0) {
      const auto it = std::find(res.final_identities.begin(),
                                res.final_identities.end(), e.rank);
      if (it == res.final_identities.end()) continue;  // fired on a dead rank
      e.rank = static_cast<int>(it - res.final_identities.begin());
    }
    replay.events.push_back(e);
  }
  std::shared_ptr<comm::FaultInjector> injector;
  if (!replay.events.empty()) {
    injector = std::make_shared<comm::FaultInjector>(std::move(replay));
  }

  std::vector<float> losses;
  std::mutex mu;
  comm::run_ranks(last.world, [&](comm::Communicator& c) {
    Rng rng(ecfg.model_seed);
    models::MAE mae(ecfg.model, rng);
    parallel::Fsdp fsdp(mae, c, ecfg.fsdp);
    auto tc = ecfg.train;
    tc.checkpoint_every_n_steps = 0;
    tc.checkpoint_dir.clear();
    tc.upload = ckpt::UploaderOptions{};
    tc.resume_from = last.resumed_from;
    tc.fault_injector = injector;
    auto r = train::pretrain_mae_distributed(mae, fsdp, c, corpus, tc);
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      losses = r.step_losses;
    }
  });
  return losses;
}

}  // namespace

std::string InvariantReport::to_string() const {
  std::ostringstream out;
  out << "invariants checked: ";
  for (size_t i = 0; i < checked.size(); ++i) {
    if (i > 0) out << ", ";
    out << checked[i];
  }
  if (checked.empty()) out << "(none)";
  out << "\n";
  if (violations.empty()) {
    out << "all hold\n";
  } else {
    for (const auto& v : violations) {
      out << "VIOLATION [" << v.invariant << "] " << v.detail << "\n";
    }
  }
  return out.str();
}

InvariantReport check_invariants(const InvariantInputs& in) {
  InvariantReport rep;

  // ----- futures-conserved ----------------------------------------------
  if (in.serve.issued > 0) {
    rep.checked.push_back("futures-conserved");
    if (in.serve.resolved != in.serve.issued) {
      std::ostringstream d;
      d << in.serve.issued << " requests issued but " << in.serve.resolved
        << " futures resolved — a future was dropped";
      violate(rep, "futures-conserved", d.str());
    }
    const serve::ServerStats& s = in.serve.stats;
    const i64 accounted = s.requests + s.shed_overload + s.shed_deadline +
                          s.shed_shutdown + s.shed_degraded;
    if (accounted != in.serve.issued) {
      std::ostringstream d;
      d << "typed accounting mismatch: " << s.requests << " fulfilled + "
        << (accounted - s.requests) << " shed != " << in.serve.issued
        << " issued";
      violate(rep, "futures-conserved", d.str());
    }
  }

  // ----- publications-atomic --------------------------------------------
  if (!in.publish_roots.empty()) {
    rep.checked.push_back("publications-atomic");
    for (const auto& root : in.publish_roots) {
      const auto m = ckpt::latest_published_manifest(root);
      if (!m.found()) continue;  // an empty root is fine; a torn one is not
      try {
        ckpt::verify_checkpoint_dir(m.dir);
      } catch (const std::exception& e) {
        violate(rep, "publications-atomic",
                "visible manifest " + m.dir + " fails verify: " + e.what());
      }
    }
    for (const auto& src : ckpt::published_sources(in.publish_roots)) {
      try {
        ckpt::verify_checkpoint_dir(src.dir);
      } catch (const std::exception& e) {
        violate(rep, "publications-atomic",
                "published source " + src.dir + " fails verify: " + e.what());
      }
    }
  }

  if (in.config != nullptr && in.result != nullptr &&
      !in.result->attempts.empty()) {
    const train::ElasticResult& res = *in.result;
    const train::ElasticAttempt& last = res.attempts.back();

    // ----- recovery-bounded ---------------------------------------------
    rep.checked.push_back("recovery-bounded");
    const int max_rec =
        in.max_recoveries > 0 ? in.max_recoveries : in.config->max_recoveries;
    if (res.recoveries > max_rec) {
      std::ostringstream d;
      d << res.recoveries << " recoveries exceeds the bound " << max_rec;
      violate(rep, "recovery-bounded", d.str());
    }
    if (in.max_recovery_seconds > 0 &&
        res.recovery_seconds > in.max_recovery_seconds) {
      std::ostringstream d;
      d << res.recovery_seconds << "s total recovery time exceeds "
        << in.max_recovery_seconds << "s";
      violate(rep, "recovery-bounded", d.str());
    }
    if (!last.completed) {
      violate(rep, "recovery-bounded",
              "final attempt did not complete: " + last.failure);
    }

    // ----- postmortems-present ------------------------------------------
    if (!in.config->train.checkpoint_dir.empty()) {
      rep.checked.push_back("postmortems-present");
      for (size_t a = 0; a < res.attempts.size(); ++a) {
        const train::ElasticAttempt& att = res.attempts[a];
        if (att.completed) continue;
        std::ostringstream who;
        who << "attempt " << a << " (failure: " << att.failure << ")";
        if (att.postmortem.empty()) {
          violate(rep, "postmortems-present",
                  who.str() + " archived no postmortem bundle");
          continue;
        }
        if (!fs::exists(att.postmortem)) {
          violate(rep, "postmortems-present",
                  who.str() + " bundle missing on disk: " + att.postmortem);
          continue;
        }
        try {
          plan_from_postmortem_file(att.postmortem);
        } catch (const std::exception& e) {
          violate(rep, "postmortems-present",
                  who.str() + " bundle's fired_plan does not parse back: " +
                      e.what());
        }
      }
    }

    // ----- recovery-bitwise ---------------------------------------------
    if (in.check_bitwise_recovery && in.corpus != nullptr && last.completed &&
        !last.truncated_for_growth) {
      rep.checked.push_back("recovery-bitwise");
      const std::vector<float> want =
          reference_losses(*in.config, res, *in.corpus);
      const std::vector<float>& got = last.losses;
      if (got.size() != want.size()) {
        std::ostringstream d;
        d << "final attempt ran " << got.size() << " steps, reference ran "
          << want.size();
        violate(rep, "recovery-bitwise", d.str());
      } else {
        for (size_t i = 0; i < got.size(); ++i) {
          if (got[i] != want[i]) {
            std::ostringstream d;
            d << "losses diverge at post-recovery step " << i << ": "
              << got[i] << " vs fresh-run " << want[i];
            violate(rep, "recovery-bitwise", d.str());
            break;
          }
        }
      }
    }
  }

  return rep;
}

}  // namespace geofm::chaos
