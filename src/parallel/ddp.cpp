#include "parallel/ddp.hpp"

namespace geofm::parallel {

Ddp::Ddp(nn::Module& model, comm::Communicator comm, i64 bucket_cap_bytes)
    : comm_(comm) {
  GEOFM_CHECK(bucket_cap_bytes > 0);
  const i64 cap_elements = std::max<i64>(1, bucket_cap_bytes / 4);

  // Sync initial parameters across replicas.
  auto params = model.parameters();
  for (nn::Parameter* p : params) {
    comm_.broadcast(p->value, /*root=*/0);
    p->ensure_grad();
  }

  // Buckets fill in reverse registration order — the order gradients
  // become ready during backward.
  Bucket current;
  for (auto it = params.rbegin(); it != params.rend(); ++it) {
    nn::Parameter* p = *it;
    if (current.elements > 0 && current.elements + p->numel() > cap_elements) {
      buckets_.push_back(std::move(current));
      current = Bucket{};
    }
    current.params.push_back(p);
    current.elements += p->numel();
  }
  if (current.elements > 0) buckets_.push_back(std::move(current));
  for (Bucket& b : buckets_) b.buffer = Tensor::zeros({b.elements});
}

void Ddp::synchronize_gradients() {
  for (Bucket& bucket : buckets_) {
    i64 offset = 0;
    for (nn::Parameter* p : bucket.params) {
      bucket.buffer.flat_view(offset, p->numel()).copy_(p->grad);
      offset += p->numel();
    }
    comm_.all_reduce(bucket.buffer, comm::ReduceOp::kAvg);
    offset = 0;
    for (nn::Parameter* p : bucket.params) {
      p->grad.copy_(bucket.buffer.flat_view(offset, p->numel()));
      offset += p->numel();
    }
  }
}

std::vector<i64> Ddp::bucket_elements() const {
  std::vector<i64> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.elements);
  return out;
}

}  // namespace geofm::parallel
