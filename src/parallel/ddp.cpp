#include "parallel/ddp.hpp"

#include <algorithm>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace geofm::parallel {

Ddp::Ddp(nn::StagedModel& model, comm::Communicator comm, i64 bucket_cap_bytes)
    : model_(model), comm_(comm) {
  GEOFM_CHECK(bucket_cap_bytes > 0);
  const i64 cap_elements = std::max<i64>(1, bucket_cap_bytes / 4);

  // Map each parameter to the stage whose backward finalizes its gradient;
  // parameters outside every stage belong to the root (final only when the
  // whole backward has finished).
  std::map<const nn::Parameter*, int> stage_of;
  auto stage_modules = model_.stages();
  for (size_t s = 0; s < stage_modules.size(); ++s) {
    for (nn::Parameter* p : stage_modules[s]->parameters()) {
      stage_of[p] = static_cast<int>(s);
    }
  }

  // Sync initial parameters across replicas.
  auto params = model_.module().parameters();
  for (nn::Parameter* p : params) {
    comm_.broadcast(p->value, /*root=*/0);
    p->ensure_grad();
  }

  // Buckets fill in reverse registration order — the order gradients
  // become ready during backward.
  Bucket current;
  for (auto it = params.rbegin(); it != params.rend(); ++it) {
    nn::Parameter* p = *it;
    if (current.elements > 0 && current.elements + p->numel() > cap_elements) {
      buckets_.push_back(std::move(current));
      current = Bucket{};
    }
    current.params.push_back(p);
    current.elements += p->numel();
  }
  if (current.elements > 0) buckets_.push_back(std::move(current));

  buckets_of_stage_.resize(stage_modules.size());
  for (size_t b = 0; b < buckets_.size(); ++b) {
    Bucket& bucket = buckets_[b];
    bucket.buffer = Tensor::zeros({bucket.elements});
    for (nn::Parameter* p : bucket.params) {
      auto it = stage_of.find(p);
      const int stage = (it != stage_of.end()) ? it->second : kRootStage;
      if (std::find(bucket.stages.begin(), bucket.stages.end(), stage) ==
          bucket.stages.end()) {
        bucket.stages.push_back(stage);
        if (stage != kRootStage) buckets_of_stage_[static_cast<size_t>(stage)]
            .push_back(b);
      }
    }
  }

  stage_done_.assign(stage_modules.size(), false);
  hooks_.after_backward = [this](int s) { on_stage_done(s); };
  model_.install_stage_hooks(&hooks_);
}

Ddp::~Ddp() { model_.install_stage_hooks(nullptr); }

void Ddp::begin_cycle() {
  cycle_open_ = true;
  launched_in_backward_ = 0;
  stats_.reset();
  launch_order_.clear();
  std::fill(stage_done_.begin(), stage_done_.end(), false);
  for (Bucket& b : buckets_) {
    b.stages_pending = static_cast<int>(b.stages.size());
    b.launched = false;
  }
}

void Ddp::launch(Bucket& bucket, bool from_hook) {
  obs::TraceScope span("ddp.bucket.launch", "ddp", "bucket",
                       static_cast<i64>(&bucket - buckets_.data()), "bytes",
                       bucket.elements * static_cast<i64>(sizeof(float)));
  static auto& launched =
      obs::MetricsRegistry::instance().counter("ddp.buckets_launched");
  static auto& from_hooks = obs::MetricsRegistry::instance().counter(
      "ddp.buckets_launched_from_hook");
  launched.add(1);
  if (from_hook) from_hooks.add(1);
  i64 offset = 0;
  for (nn::Parameter* p : bucket.params) {
    bucket.buffer.flat_view(offset, p->numel()).copy_(p->grad);
    offset += p->numel();
  }
  bucket.handle = comm_.iall_reduce(bucket.buffer, comm::ReduceOp::kAvg);
  bucket.launched = true;
  if (from_hook) ++launched_in_backward_;
  launch_order_.push_back(static_cast<size_t>(&bucket - buckets_.data()));
}

void Ddp::on_stage_done(int stage) {
  if (!cycle_open_) begin_cycle();
  if (stage < 0 || stage >= static_cast<int>(stage_done_.size())) return;
  if (stage_done_[static_cast<size_t>(stage)]) return;
  stage_done_[static_cast<size_t>(stage)] = true;

  for (size_t b : buckets_of_stage_[static_cast<size_t>(stage)]) {
    Bucket& bucket = buckets_[b];
    if (bucket.launched) continue;
    if (--bucket.stages_pending == 0) launch(bucket, /*from_hook=*/true);
  }
}

void Ddp::synchronize_gradients() {
  obs::TraceScope span("ddp.synchronize_gradients", "ddp");
  if (!cycle_open_) begin_cycle();

  // Root gradients are final now; launch every bucket still pending
  // (root-containing buckets, or all of them if the model has no stages /
  // no hooks fired).
  for (Bucket& bucket : buckets_) {
    if (!bucket.launched) launch(bucket, /*from_hook=*/false);
  }

  // Drain in launch order and unpack each result as it lands.
  for (size_t b : launch_order_) {
    Bucket& bucket = buckets_[b];
    bucket.handle.wait(&stats_);
    i64 offset = 0;
    for (nn::Parameter* p : bucket.params) {
      p->grad.copy_(bucket.buffer.flat_view(offset, p->numel()));
      offset += p->numel();
    }
  }
  static auto& exposed = obs::MetricsRegistry::instance().histogram(
      "ddp.sync.exposed_wait_seconds");
  exposed.observe(stats_.exposed_wait_seconds);
  cycle_open_ = false;
}

std::vector<i64> Ddp::bucket_elements() const {
  std::vector<i64> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.elements);
  return out;
}

}  // namespace geofm::parallel
