// Distributed Data Parallel baseline: full model replication with
// bucketed gradient all-reduce, mirroring PyTorch DDP's default behaviour
// (25 MB buckets filled in reverse parameter order). The paper contrasts
// this fixed-message-size scheme against FSDP's per-unit communication.
#pragma once

#include <vector>

#include "comm/communicator.hpp"
#include "nn/module.hpp"

namespace geofm::parallel {

class Ddp {
 public:
  /// Wraps `model`: broadcasts rank 0's parameters and builds gradient
  /// buckets. Default bucket cap matches PyTorch (25 MB).
  Ddp(nn::Module& model, comm::Communicator comm,
      i64 bucket_cap_bytes = 25ll * 1024 * 1024);

  /// All-reduce-averages every gradient, one bucket at a time. Call after
  /// the local backward pass, before the optimizer step.
  void synchronize_gradients();

  int n_buckets() const { return static_cast<int>(buckets_.size()); }
  /// Elements per bucket, in reduction order.
  std::vector<i64> bucket_elements() const;

 private:
  struct Bucket {
    std::vector<nn::Parameter*> params;
    i64 elements = 0;
    Tensor buffer;
  };

  comm::Communicator comm_;
  std::vector<Bucket> buckets_;
};

}  // namespace geofm::parallel
