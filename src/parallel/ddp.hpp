// Distributed Data Parallel baseline: full model replication with
// bucketed gradient all-reduce, mirroring PyTorch DDP's default behaviour
// (25 MB buckets filled in reverse parameter order). The paper contrasts
// this fixed-message-size scheme against FSDP's per-unit communication.
//
// Communication overlaps the backward pass: Ddp installs stage hooks on
// the wrapped model and launches a bucket's nonblocking all-reduce the
// moment every gradient in it is final (all contributing stages have run
// their backward), exactly as PyTorch DDP's autograd-hook-driven buckets
// do. `synchronize_gradients()` then only launches the buckets that had to
// wait for root gradients and drains the in-flight requests.
#pragma once

#include <vector>

#include "comm/communicator.hpp"
#include "nn/staged_model.hpp"

namespace geofm::parallel {

class Ddp {
 public:
  /// Wraps `model`: broadcasts rank 0's parameters, builds gradient
  /// buckets, and installs backward hooks that launch each bucket's
  /// all-reduce as soon as it is ready. Default bucket cap matches
  /// PyTorch (25 MB). The wrapper must outlive wrapped training.
  Ddp(nn::StagedModel& model, comm::Communicator comm,
      i64 bucket_cap_bytes = 25ll * 1024 * 1024);
  ~Ddp();

  Ddp(const Ddp&) = delete;
  Ddp& operator=(const Ddp&) = delete;

  /// Finishes the step's gradient averaging: launches any bucket still
  /// waiting on root (non-stage) gradients, waits for every in-flight
  /// all-reduce, and unpacks results. Call after the local backward pass,
  /// before the optimizer step. One call per backward (no gradient
  /// accumulation across backwards).
  void synchronize_gradients();

  /// The wrapped model. Ddp never re-points parameters (buckets only pack
  /// and unpack gradients), so checkpointing reads and writes the model's
  /// own parameter storage directly.
  nn::StagedModel& model() { return model_; }

  int n_buckets() const { return static_cast<int>(buckets_.size()); }
  /// Elements per bucket, in reduction order.
  std::vector<i64> bucket_elements() const;

  // ----- overlap introspection -------------------------------------------
  /// Buckets whose all-reduce launched from a backward hook (i.e. before
  /// synchronize_gradients) in the last completed sync cycle.
  int buckets_launched_in_backward() const { return launched_in_backward_; }
  /// Wait/overlap accounting for the last completed sync cycle.
  const comm::CommStats& last_sync_stats() const { return stats_; }

 private:
  struct Bucket {
    std::vector<nn::Parameter*> params;
    i64 elements = 0;
    Tensor buffer;
    // Stages whose backward must finish before this bucket is ready
    // (kRootStage for parameters outside any stage). Rebuilt each cycle.
    std::vector<int> stages;
    int stages_pending = 0;
    bool launched = false;
    comm::CollectiveHandle handle;
  };

  static constexpr int kRootStage = -1;

  void begin_cycle();
  void on_stage_done(int stage);
  void launch(Bucket& bucket, bool from_hook);

  nn::StagedModel& model_;
  comm::Communicator comm_;
  std::vector<Bucket> buckets_;
  // stage -> indices of buckets containing that stage's parameters.
  std::vector<std::vector<size_t>> buckets_of_stage_;
  std::vector<bool> stage_done_;
  std::vector<size_t> launch_order_;
  nn::StageHooks hooks_;

  bool cycle_open_ = false;
  int launched_in_backward_ = 0;
  comm::CommStats stats_;
};

}  // namespace geofm::parallel
