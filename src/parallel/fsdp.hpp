// Fully Sharded Data Parallel — a working reimplementation of the PyTorch
// FSDP mechanics the paper studies, over geofm's thread-rank communicator.
//
// Wrapping policy: one FlatParameter unit per transformer block (stage),
// plus one root unit for everything else — the paper's per-layer wrapping.
//
// Strategies (paper Sec. III-C):
//   NO_SHARD       — parameters/grads/optimizer state replicated; per-unit
//                    gradient all-reduce (the FSDP equivalent of DDP).
//   FULL_SHARD     — params, grads, and optimizer state sharded across the
//                    sharding group; params all-gathered before each
//                    stage's forward and backward and freed afterwards;
//                    grads reduce-scattered per stage.
//   SHARD_GRAD_OP  — grads/optimizer state sharded; params are gathered
//                    once at step start and kept until the backward ends
//                    ("sharded outside computation").
//   HYBRID_SHARD   — FULL_SHARD within a sharding group of `group_size`
//                    ranks + replication (gradient all-reduce) across
//                    groups. HYBRID_1GPU (group 1) degenerates to NO_SHARD
//                    semantics through the HYBRID code path, matching the
//                    paper's separate measurement of the two.
//
// Communication is asynchronous and overlaps compute: unshard() issues a
// nonblocking all-gather and the parameters are only waited for when the
// stage's compute is about to use them (BACKWARD_PRE/POST prefetch turn
// into genuinely concurrent gathers); per-stage gradient reduce-scatters
// are issued from the backward hooks and drained in end_backward(), so
// they overlap the remaining backward compute. `limit_all_gathers` is
// enforced functionally: issuing a new stage gather blocks (waits on the
// oldest outstanding gather) once 2 are in flight, PyTorch's rate-limiter
// semantics. The recorded `FsdpEvent` schedule (events at issue time) is
// unchanged and remains the contract the performance simulator executes.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "nn/staged_model.hpp"

namespace geofm::parallel {

enum class ShardingStrategy {
  kNoShard,
  kFullShard,
  kShardGradOp,
  kHybridShard,
};

enum class BackwardPrefetch { kNone, kBackwardPost, kBackwardPre };

std::string to_string(ShardingStrategy s);
std::string to_string(BackwardPrefetch p);

struct FsdpOptions {
  ShardingStrategy strategy = ShardingStrategy::kFullShard;
  /// Ranks per sharding group for HYBRID_SHARD (e.g. 2 for HYBRID_2GPUs).
  /// Must divide the world size. Ignored by other strategies.
  int hybrid_group_size = 1;
  BackwardPrefetch prefetch = BackwardPrefetch::kBackwardPre;
  /// Rate-limit in-flight all-gathers (paper's limit_all_gathers): when
  /// enabled, issuing a stage gather while 2 are already outstanding first
  /// waits on the oldest one. Enforced functionally by the async runtime
  /// (and mirrored by the simulator's cost model).
  bool limit_all_gathers = true;
};

/// In-flight stage all-gathers the rate limiter allows when enabled.
inline constexpr int kAllGatherInflightCap = 2;

/// One contiguous run of a logical model parameter inside a rank's owned
/// flat shard (checkpoint support). Padding elements carry no ranges.
struct FsdpParamRange {
  const nn::Parameter* param = nullptr;  // wrapped model parameter
  i64 param_begin = 0;  // first covered element within the parameter
  i64 shard_begin = 0;  // offset of that element within the rank's shard
  i64 len = 0;          // covered elements
};

/// Per-unit checkpoint view: this rank's authoritative shard tensor, the
/// flat parameter the optimizer steps (whose state tensors share the
/// shard's layout element-for-element), and the logical-parameter ranges
/// the shard covers. Valid as long as the wrapper lives; the shard is the
/// single source of truth in every strategy, so checkpoints built from
/// this view never materialize the full model on any rank.
struct FsdpUnitLayout {
  Tensor shard;
  nn::Parameter* opt_param = nullptr;
  std::vector<FsdpParamRange> ranges;
};

/// One step-schedule entry, for tests and for the performance simulator.
struct FsdpEvent {
  enum class Type {
    kAllGather,      // unshard a unit's parameters
    kReduceScatter,  // reduce a unit's gradients into the shard
    kAllReduce,      // replica-group (or NO_SHARD world) gradient reduce
    kReshard,        // free a unit's unsharded parameters
  };
  Type type;
  int unit;  // stage index; -1 = root unit
  i64 elements;

  bool operator==(const FsdpEvent&) const = default;
};

class Fsdp {
 public:
  /// Wraps `model`, re-pointing its parameters into per-unit flat buffers,
  /// broadcasting rank 0's initialization, and sharding. Installs stage
  /// hooks on the model; the wrapper must outlive wrapped training.
  Fsdp(nn::StagedModel& model, comm::Communicator world, FsdpOptions options);
  ~Fsdp();

  Fsdp(const Fsdp&) = delete;
  Fsdp& operator=(const Fsdp&) = delete;

  /// Call before each forward: zeroes gradients, gathers what the strategy
  /// needs up front (root always; all units for SHARD_GRAD_OP/NO_SHARD),
  /// and resets the event schedule and overlap counters.
  void begin_step();

  /// Call after the model's backward: reduces root-unit gradients and
  /// drains every in-flight collective. After this, optimizer_parameters()
  /// hold averaged gradients.
  void end_backward();

  /// The parameters an optimizer should step: one flat (shard) parameter
  /// per unit. Stepping these updates the model (sharded modes update the
  /// local shard; the next gather publishes it).
  std::vector<nn::Parameter*> optimizer_parameters();

  /// Checkpoint/eval path: gathers every unit so the wrapped model's
  /// parameters are fully materialized and readable. They stay valid until
  /// the next begin_step() or hook-driven reshard. Gathers are issued
  /// asynchronously (subject to the rate limiter) and all waited here.
  void gather_full_parameters();

  /// Sharded checkpoint view: one entry per unit (stages in order, then
  /// the root unit). See FsdpUnitLayout.
  std::vector<FsdpUnitLayout> checkpoint_layout();

  /// Inverse of gather_full_parameters(): frees any materialized full
  /// parameters so the local shards are again the only authority. The
  /// checkpoint-restore path calls this before writing restored values
  /// into the shards, so a stale gathered copy can never be read. No-op
  /// for unsharded strategies (where the shard aliases the full buffer
  /// and writes pass through).
  void drop_full_parameters();

  // ----- introspection ---------------------------------------------------
  const FsdpOptions& options() const { return options_; }
  int world_size() const { return world_.size(); }
  int shard_group_size() const;
  int replica_group_size() const;
  int n_units() const { return static_cast<int>(units_.size()); }

  /// Persistent per-rank parameter storage in elements (the sharded size).
  i64 shard_elements_per_rank() const;
  /// Elements of the largest single unit (peak transient gather target).
  i64 max_unit_elements() const;
  /// Peak number of simultaneously unsharded stage units last step.
  int peak_unsharded_units() const { return peak_unsharded_; }
  /// Peak number of stage all-gathers simultaneously in flight (issued but
  /// not yet waited) since the last begin_step() — the quantity
  /// limit_all_gathers caps at kAllGatherInflightCap.
  int peak_inflight_gathers() const { return peak_inflight_gathers_; }
  /// Wait/overlap accounting since the last begin_step(): exposed wait vs
  /// communication hidden behind compute.
  const comm::CommStats& last_step_stats() const { return stats_; }
  /// The communication schedule recorded during the last step.
  const std::vector<FsdpEvent>& last_schedule() const { return schedule_; }

 private:
  struct Unit {
    std::vector<nn::Parameter*> params;
    i64 total = 0;   // real elements
    i64 padded = 0;  // rounded up to shard-group multiple
    i64 chunk = 0;   // padded / shard group size
    Tensor full;        // [padded] parameter storage; model params view in
    Tensor full_grad;   // [padded] gradient staging; model grads view in
    Tensor shard;       // [chunk] owned parameter slice
    Tensor shard_grad;  // [chunk] owned reduced-gradient slice
    nn::Parameter opt_param;
    bool unsharded = false;       // gather issued (params valid after ready)
    comm::CollectiveHandle gather;         // outstanding all-gather
    comm::CollectiveHandle reduce_scatter; // outstanding grad reduce-scatter
    comm::CollectiveHandle all_reduce;     // outstanding replica all-reduce
  };

  bool sharded() const {
    return options_.strategy != ShardingStrategy::kNoShard &&
           shard_comm_->size() > 1;
  }

  void build_unit(Unit& unit, std::vector<nn::Parameter*> params,
                  const std::string& name);
  Unit& unit_at(int unit_index) {
    return unit_index < 0 ? root_ : units_[static_cast<size_t>(unit_index)];
  }
  /// Issues the unit's all-gather (respecting the rate limiter) without
  /// waiting for it.
  void unshard(Unit& unit, int unit_index);
  /// Blocks until the unit's gathered parameters are usable.
  void ensure_ready(Unit& unit, int unit_index);
  void reshard(Unit& unit, int unit_index);
  /// Issues the unit's gradient reduction (reduce-scatter and/or replica
  /// all-reduce) without waiting; drained by drain_reductions().
  void launch_reduce(Unit& unit, int unit_index);
  void drain_reductions();

  void on_before_forward(int stage);
  void on_after_forward(int stage);
  void on_before_backward(int stage);
  void on_after_backward(int stage);

  nn::StagedModel& model_;
  comm::Communicator world_;
  FsdpOptions options_;
  // Sharding/replication sub-communicators (own storage; world-derived).
  std::unique_ptr<comm::Communicator> shard_comm_;
  std::unique_ptr<comm::Communicator> replica_comm_;

  std::vector<Unit> units_;  // one per stage
  Unit root_;
  nn::StageHooks hooks_;

  std::vector<FsdpEvent> schedule_;
  int unsharded_count_ = 0;
  int peak_unsharded_ = 0;

  // Stage gathers issued but not yet waited, oldest first (limiter queue).
  std::deque<int> outstanding_gathers_;
  int peak_inflight_gathers_ = 0;
  // Units with in-flight gradient reductions, in issue order.
  std::vector<int> pending_reductions_;
  comm::CommStats stats_;
};

}  // namespace geofm::parallel
