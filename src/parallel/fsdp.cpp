#include "parallel/fsdp.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace geofm::parallel {

std::string to_string(ShardingStrategy s) {
  switch (s) {
    case ShardingStrategy::kNoShard: return "NO_SHARD";
    case ShardingStrategy::kFullShard: return "FULL_SHARD";
    case ShardingStrategy::kShardGradOp: return "SHARD_GRAD_OP";
    case ShardingStrategy::kHybridShard: return "HYBRID_SHARD";
  }
  return "?";
}

std::string to_string(BackwardPrefetch p) {
  switch (p) {
    case BackwardPrefetch::kNone: return "None";
    case BackwardPrefetch::kBackwardPost: return "BACKWARD_POST";
    case BackwardPrefetch::kBackwardPre: return "BACKWARD_PRE";
  }
  return "?";
}

namespace {

int shard_group_size_for(const FsdpOptions& opts, int world) {
  switch (opts.strategy) {
    case ShardingStrategy::kNoShard:
      return 1;
    case ShardingStrategy::kFullShard:
    case ShardingStrategy::kShardGradOp:
      return world;
    case ShardingStrategy::kHybridShard:
      GEOFM_CHECK(opts.hybrid_group_size >= 1 &&
                      world % opts.hybrid_group_size == 0,
                  "hybrid_group_size " << opts.hybrid_group_size
                                       << " must divide world " << world);
      return opts.hybrid_group_size;
  }
  return 1;
}

}  // namespace

Fsdp::Fsdp(nn::StagedModel& model, comm::Communicator world,
           FsdpOptions options)
    : model_(model), world_(world), options_(options) {
  const int gs = shard_group_size_for(options_, world_.size());
  // Sharding group: `gs` consecutive ranks. Replication group: ranks with
  // equal position within their sharding group.
  shard_comm_ = std::make_unique<comm::Communicator>(
      world_.split(world_.rank() / gs, world_.rank()));
  replica_comm_ = std::make_unique<comm::Communicator>(
      world_.split(world_.rank() % gs, world_.rank()));
  GEOFM_CHECK(shard_comm_->size() == gs);

  // One flat unit per stage, plus the root unit.
  auto stage_modules = model_.stages();
  units_.resize(stage_modules.size());
  for (size_t i = 0; i < stage_modules.size(); ++i) {
    build_unit(units_[i], stage_modules[i]->parameters(),
               "fsdp.unit" + std::to_string(i));
  }
  build_unit(root_, model_.root_params(), "fsdp.root");

  // Shard immediately, as PyTorch FSDP does at wrap time: from here on the
  // local shard is authoritative and every step runs the steady-state
  // gather schedule (the first step is not special).
  for (size_t i = 0; i < units_.size(); ++i) {
    reshard(units_[i], static_cast<int>(i));
  }
  reshard(root_, -1);

  hooks_.before_forward = [this](int s) { on_before_forward(s); };
  hooks_.after_forward = [this](int s) { on_after_forward(s); };
  hooks_.before_backward = [this](int s) { on_before_backward(s); };
  hooks_.after_backward = [this](int s) { on_after_backward(s); };
  model_.install_stage_hooks(&hooks_);
}

Fsdp::~Fsdp() { model_.install_stage_hooks(nullptr); }

int Fsdp::shard_group_size() const { return shard_comm_->size(); }
int Fsdp::replica_group_size() const { return replica_comm_->size(); }

void Fsdp::build_unit(Unit& unit, std::vector<nn::Parameter*> params,
                      const std::string& name) {
  unit.params = std::move(params);
  unit.total = 0;
  for (nn::Parameter* p : unit.params) unit.total += p->numel();

  const int gs = shard_comm_->size();
  unit.padded = (unit.total + gs - 1) / gs * gs;
  unit.chunk = unit.padded / gs;

  unit.full = Tensor::zeros({unit.padded});
  unit.full_grad = Tensor::zeros({unit.padded});

  // Pack current parameter values, then adopt rank 0's initialization so
  // every replica starts identical regardless of construction seeds.
  i64 offset = 0;
  for (nn::Parameter* p : unit.params) {
    unit.full.flat_view(offset, p->numel()).copy_(p->value);
    offset += p->numel();
  }
  world_.broadcast(unit.full, /*root=*/0);

  // Re-point model parameters (and grads) into the flat buffers.
  offset = 0;
  for (nn::Parameter* p : unit.params) {
    const auto shape = p->value.shape();
    p->value = unit.full.flat_view(offset, p->numel()).view(shape);
    p->grad = unit.full_grad.flat_view(offset, p->numel()).view(shape);
    offset += p->numel();
  }

  if (gs > 1) {
    // Persistent local slice (separate storage: the gathered `full` buffer
    // is transient by contract).
    unit.shard = Tensor({unit.chunk});
    unit.shard.copy_(
        unit.full.flat_view(static_cast<i64>(shard_comm_->rank()) * unit.chunk,
                            unit.chunk));
    unit.shard_grad = Tensor::zeros({unit.chunk});
    unit.unsharded = true;  // `full` currently holds valid parameters
  } else {
    // Degenerate sharding group: the "shard" aliases the full buffer, so
    // optimizer steps write through and no gather is ever needed.
    unit.shard = unit.full.flat_view(0, unit.padded);
    unit.shard_grad = unit.full_grad.flat_view(0, unit.padded);
    unit.unsharded = true;
  }

  unit.opt_param.name = name;
  unit.opt_param.value = unit.shard;
  unit.opt_param.grad = unit.shard_grad;
}

void Fsdp::unshard(Unit& unit, int unit_index) {
  if (unit.unsharded) return;
  if (shard_comm_->size() > 1) {
    obs::TraceScope span("fsdp.unshard", "fsdp", "unit", unit_index, "bytes",
                         unit.padded * static_cast<i64>(sizeof(float)));
    if (unit_index >= 0) {
      // Functional limit_all_gathers: block issuing once the cap of
      // in-flight stage gathers is reached, by retiring the oldest
      // outstanding gather first (all ranks do this in the same order, so
      // matching stays deterministic).
      if (options_.limit_all_gathers) {
        while (static_cast<int>(outstanding_gathers_.size()) >=
               kAllGatherInflightCap) {
          obs::TraceScope stall("fsdp.limiter.stall", "fsdp", "unit",
                                outstanding_gathers_.front());
          static auto& stalls =
              obs::MetricsRegistry::instance().counter("fsdp.limiter_stalls");
          stalls.add(1);
          const int oldest = outstanding_gathers_.front();
          ensure_ready(unit_at(oldest), oldest);
        }
      }
    }
    unit.gather = shard_comm_->iall_gather(unit.shard, unit.full);
    schedule_.push_back(
        {FsdpEvent::Type::kAllGather, unit_index, unit.padded});
    if (unit_index >= 0) {
      outstanding_gathers_.push_back(unit_index);
      peak_inflight_gathers_ =
          std::max(peak_inflight_gathers_,
                   static_cast<int>(outstanding_gathers_.size()));
      ++unsharded_count_;
      peak_unsharded_ = std::max(peak_unsharded_, unsharded_count_);
    }
  }
  unit.unsharded = true;
}

void Fsdp::ensure_ready(Unit& unit, int unit_index) {
  if (!unit.gather.pending()) return;
  obs::TraceScope span("fsdp.gather.wait", "fsdp", "unit", unit_index);
  unit.gather.wait(&stats_);
  if (unit_index >= 0) {
    auto it = std::find(outstanding_gathers_.begin(),
                        outstanding_gathers_.end(), unit_index);
    if (it != outstanding_gathers_.end()) outstanding_gathers_.erase(it);
  }
}

void Fsdp::reshard(Unit& unit, int unit_index) {
  if (!unit.unsharded) return;
  if (shard_comm_->size() > 1) {
    obs::TraceScope span("fsdp.reshard", "fsdp", "unit", unit_index);
    // A unit must never be freed with its gather still in flight.
    ensure_ready(unit, unit_index);
    // Poison the freed buffer: any use before the next gather is a bug and
    // will surface as NaN immediately.
    unit.full.fill_(std::numeric_limits<float>::quiet_NaN());
    schedule_.push_back({FsdpEvent::Type::kReshard, unit_index, unit.padded});
    if (unit_index >= 0) --unsharded_count_;
    unit.unsharded = false;
  }
  // Degenerate group: parameters live in `full` permanently; nothing to do.
}

void Fsdp::launch_reduce(Unit& unit, int unit_index) {
  const bool shard_active = shard_comm_->size() > 1;
  const bool replica_active = replica_comm_->size() > 1;
  obs::TraceScope span("fsdp.reduce.issue", "fsdp", "unit", unit_index);
  if (shard_active) {
    unit.reduce_scatter = shard_comm_->ireduce_scatter(
        unit.full_grad, unit.shard_grad, comm::ReduceOp::kSum);
    schedule_.push_back(
        {FsdpEvent::Type::kReduceScatter, unit_index, unit.padded});
    // A replica all-reduce consumes the reduce-scatter's output, so it is
    // chained when the reduce-scatter is drained in end_backward().
    pending_reductions_.push_back(unit_index);
  } else if (replica_active) {
    unit.all_reduce =
        replica_comm_->iall_reduce(unit.shard_grad, comm::ReduceOp::kSum);
    schedule_.push_back(
        {FsdpEvent::Type::kAllReduce, unit_index, unit.chunk});
    pending_reductions_.push_back(unit_index);
  }
}

void Fsdp::drain_reductions() {
  obs::TraceScope span("fsdp.drain_reductions", "fsdp", "pending",
                       static_cast<i64>(pending_reductions_.size()));
  const bool shard_active = shard_comm_->size() > 1;
  const bool replica_active = replica_comm_->size() > 1;

  if (shard_active && replica_active) {
    // HYBRID: chain each unit's replica all-reduce onto its completed
    // reduce-scatter, in issue order on every rank.
    for (int idx : pending_reductions_) {
      Unit& unit = unit_at(idx);
      unit.reduce_scatter.wait(&stats_);
      unit.all_reduce =
          replica_comm_->iall_reduce(unit.shard_grad, comm::ReduceOp::kSum);
      schedule_.push_back({FsdpEvent::Type::kAllReduce, idx, unit.chunk});
    }
  }
  for (int idx : pending_reductions_) {
    Unit& unit = unit_at(idx);
    unit.reduce_scatter.wait(&stats_);
    unit.all_reduce.wait(&stats_);
    // Average over the global data-parallel world.
    if (world_.size() > 1) {
      unit.shard_grad.scale_(1.f / static_cast<float>(world_.size()));
    }
  }
  pending_reductions_.clear();
}

void Fsdp::begin_step() {
  obs::TraceScope span("fsdp.begin_step", "fsdp");
  schedule_.clear();
  unsharded_count_ = 0;
  peak_unsharded_ = 0;
  peak_inflight_gathers_ = 0;
  stats_.reset();

  for (auto& unit : units_) unit.full_grad.zero_();
  root_.full_grad.zero_();
  for (auto& unit : units_) {
    if (shard_comm_->size() > 1) unit.shard_grad.zero_();
  }
  if (shard_comm_->size() > 1) root_.shard_grad.zero_();

  // Root parameters are needed across the whole step.
  unshard(root_, -1);

  // SHARD_GRAD_OP gathers every unit up front ("parameters are sharded
  // outside computation"); the gathers stay in flight (subject to the rate
  // limiter) and are waited as each stage's compute reaches them.
  if (options_.strategy == ShardingStrategy::kShardGradOp) {
    for (size_t i = 0; i < units_.size(); ++i) {
      unshard(units_[i], static_cast<int>(i));
    }
  }

  // The model reads root parameters (patch embed, cls) before the first
  // stage hook fires, so the root gather cannot stay in flight.
  ensure_ready(root_, -1);
}

void Fsdp::end_backward() {
  obs::TraceScope span("fsdp.end_backward", "fsdp");
  launch_reduce(root_, -1);
  drain_reductions();
  reshard(root_, -1);
  static auto& exposed = obs::MetricsRegistry::instance().histogram(
      "fsdp.step.exposed_wait_seconds");
  static auto& peak = obs::MetricsRegistry::instance().gauge(
      "fsdp.peak_inflight_gathers");
  exposed.observe(stats_.exposed_wait_seconds);
  peak.set_max(peak_inflight_gathers_);
}

void Fsdp::on_before_forward(int stage) {
  Unit& unit = units_[static_cast<size_t>(stage)];
  unshard(unit, stage);
  ensure_ready(unit, stage);
}

void Fsdp::on_after_forward(int stage) {
  // FULL_SHARD and HYBRID free parameters between forward and backward;
  // SHARD_GRAD_OP and NO_SHARD keep them resident.
  if (options_.strategy == ShardingStrategy::kFullShard ||
      options_.strategy == ShardingStrategy::kHybridShard) {
    reshard(units_[static_cast<size_t>(stage)], stage);
  }
}

void Fsdp::on_before_backward(int stage) {
  unshard(units_[static_cast<size_t>(stage)], stage);
  if (options_.prefetch == BackwardPrefetch::kBackwardPre && stage > 0) {
    // Issue the next-needed gather before this stage's backward compute;
    // it progresses while this stage computes.
    unshard(units_[static_cast<size_t>(stage - 1)], stage - 1);
  }
  ensure_ready(units_[static_cast<size_t>(stage)], stage);
}

void Fsdp::on_after_backward(int stage) {
  if (options_.prefetch == BackwardPrefetch::kBackwardPost && stage > 0) {
    // Prefetch before this unit's gradient communication is issued.
    unshard(units_[static_cast<size_t>(stage - 1)], stage - 1);
  }
  Unit& unit = units_[static_cast<size_t>(stage)];
  launch_reduce(unit, stage);
  if (options_.strategy != ShardingStrategy::kNoShard) {
    reshard(unit, stage);
  }
}

void Fsdp::gather_full_parameters() {
  unshard(root_, -1);
  for (size_t i = 0; i < units_.size(); ++i) {
    unshard(units_[i], static_cast<int>(i));
  }
  ensure_ready(root_, -1);
  for (size_t i = 0; i < units_.size(); ++i) {
    ensure_ready(units_[i], static_cast<int>(i));
  }
}

std::vector<FsdpUnitLayout> Fsdp::checkpoint_layout() {
  std::vector<FsdpUnitLayout> out;
  out.reserve(units_.size() + 1);
  auto emit = [this](Unit& unit) {
    FsdpUnitLayout layout;
    layout.shard = unit.shard;
    layout.opt_param = &unit.opt_param;
    // This rank's owned global range within the unit's flat span, clipped
    // to the real elements (the tail shard may be pure padding).
    const i64 begin =
        static_cast<i64>(shard_comm_->rank()) * unit.chunk;
    const i64 end = std::min(begin + unit.chunk, unit.total);
    i64 offset = 0;  // walk of the unit's logical parameter layout
    for (nn::Parameter* p : unit.params) {
      const i64 pb = std::max(offset, begin);
      const i64 pe = std::min(offset + p->numel(), end);
      if (pb < pe) {
        layout.ranges.push_back({p, pb - offset, pb - begin, pe - pb});
      }
      offset += p->numel();
    }
    return layout;
  };
  for (auto& unit : units_) out.push_back(emit(unit));
  out.push_back(emit(root_));
  return out;
}

void Fsdp::drop_full_parameters() {
  for (size_t i = 0; i < units_.size(); ++i) {
    reshard(units_[i], static_cast<int>(i));
  }
  reshard(root_, -1);
}

std::vector<nn::Parameter*> Fsdp::optimizer_parameters() {
  std::vector<nn::Parameter*> out;
  out.reserve(units_.size() + 1);
  for (auto& unit : units_) out.push_back(&unit.opt_param);
  out.push_back(&root_.opt_param);
  return out;
}

i64 Fsdp::shard_elements_per_rank() const {
  i64 n = root_.chunk;
  for (const auto& unit : units_) n += unit.chunk;
  return n;
}

i64 Fsdp::max_unit_elements() const {
  i64 n = root_.padded;
  for (const auto& unit : units_) n = std::max(n, unit.padded);
  return n;
}

}  // namespace geofm::parallel
