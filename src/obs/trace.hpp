// Per-rank tracing with Chrome-trace export.
//
// `TraceRecorder` collects timestamped events into per-thread ring buffers
// and exports them as Chrome trace-event JSON (loadable in chrome://tracing
// or https://ui.perfetto.dev), one process track per rank and one thread
// track per OS thread. `TraceScope` is the RAII emitter instrumented code
// uses; `trace_instant` / `trace_counter` cover point events and time
// series.
//
// Design constraints (see DESIGN.md §4c):
//   * ~zero cost when disabled: a scope costs one relaxed atomic load and
//     a branch — no clock read, no allocation, no synchronization.
//   * lock-free when enabled: each thread appends to its own fixed-size
//     buffer; the only synchronization is a release store of the event
//     count, matched by an acquire load at export time (single-producer /
//     single-consumer). When a buffer fills, new events are *dropped* and
//     counted (never overwritten), so export never races a writer.
//   * event names/categories must be string literals (or otherwise outlive
//     the recorder) — nothing is copied on the hot path.
//
// Activation: set `GEOFM_TRACE=out.json` in the environment and the
// recorder enables itself at first use and writes `out.json` at process
// exit. `GEOFM_TRACE_BUFFER` overrides the per-thread event capacity
// (default 65536). Tests and tools can instead call enable()/write_json()
// programmatically.
#pragma once

#include <atomic>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/thread_context.hpp"

namespace geofm::obs {

struct TraceEvent {
  enum class Phase : unsigned char { kComplete, kInstant, kCounter };

  const char* name = nullptr;
  const char* cat = nullptr;
  u64 ts_ns = 0;   // monotonic_ns() at event start
  u64 dur_ns = 0;  // kComplete only
  Phase phase = Phase::kComplete;
  int rank = -1;  // this_thread_rank() at emit time
  // Up to two integer args (bytes, unit index, ...); name == nullptr = unused.
  const char* arg_name = nullptr;
  i64 arg = 0;
  const char* arg2_name = nullptr;
  i64 arg2 = 0;
};

namespace detail {

/// One thread's event buffer. Written only by the owning thread; readers
/// synchronize through the `count` release/acquire pair and only ever read
/// slots below the published count, which are immutable (the buffer drops
/// instead of wrapping).
struct ThreadTrack {
  explicit ThreadTrack(int tid_, u64 capacity);

  const int tid;
  std::vector<TraceEvent> buf;
  std::atomic<u64> count{0};
  std::atomic<u64> dropped{0};
  std::atomic<const char*> label{nullptr};

  void push(const TraceEvent& e) {
    const u64 n = count.load(std::memory_order_relaxed);
    if (n >= buf.size()) {
      note_dropped(*this);
      return;
    }
    buf[static_cast<size_t>(n)] = e;
    count.store(n + 1, std::memory_order_release);
  }

 private:
  // Out of line: bumps this track's drop counter and the process-wide
  // `trace.dropped` metric, and warns once per process on the first drop.
  static void note_dropped(ThreadTrack& t);
};

// 0 = uninitialized (consult GEOFM_TRACE), 1 = disabled, 2 = enabled.
extern std::atomic<int> g_trace_state;
bool trace_init_slow();

}  // namespace detail

/// Fast global enabled check (the disabled-mode hot path).
inline bool trace_enabled() {
  const int s = detail::g_trace_state.load(std::memory_order_relaxed);
  if (s == 0) return detail::trace_init_slow();
  return s == 2;
}

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Programmatic enable (in-memory; nothing is auto-written at exit
  /// unless GEOFM_TRACE also named a file).
  void enable();
  void disable();
  /// Drops every recorded event and drop-counter. Caller must ensure no
  /// thread is concurrently emitting (test/tool support).
  void clear();

  /// Per-thread event capacity for tracks registered *after* this call.
  void set_buffer_capacity(u64 events);
  u64 buffer_capacity() const;

  /// Copies out every published event (stable under concurrent emission;
  /// late events may be missed, torn events never appear).
  std::vector<TraceEvent> snapshot() const;
  /// Events dropped to full buffers, summed over all tracks.
  u64 dropped_events() const;

  /// Incremental consumption (the telemetry sampler's API): visits every
  /// event published since `cursor` last saw each per-thread track —
  /// oldest first within a track — and advances the cursor, so repeated
  /// calls cost O(new events), not O(all events). `cursor` starts empty
  /// and grows as tracks register; one cursor must not be shared between
  /// concurrent callers. Safe against concurrent emitters (acquire on the
  /// published counts); a clear() between calls rewinds the cursor.
  template <typename Fn>
  void drain_new_events(std::vector<u64>& cursor, Fn&& fn) const {
    visit_new_events(cursor, [](void* ctx, const TraceEvent& e) {
      (*static_cast<Fn*>(ctx))(e);
    }, &fn);
  }

  /// Chrome trace-event JSON of everything recorded so far.
  void write_json(std::ostream& os) const;
  void write_json(const std::string& path) const;

  // ----- emitter internals ------------------------------------------------
  /// The calling thread's track, registering it on first use.
  detail::ThreadTrack& track();

 private:
  TraceRecorder() = default;
  void visit_new_events(std::vector<u64>& cursor,
                        void (*fn)(void*, const TraceEvent&),
                        void* ctx) const;
};

/// Labels the calling thread's trace track (e.g. "rank", "loader.worker").
/// Must be a string literal.
void set_thread_label(const char* label);

/// RAII span: records [construction, destruction) as one complete event on
/// the calling thread's track. All name/category/arg-name strings must be
/// literals.
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* cat = "app") {
    if (trace_enabled()) begin(name, cat);
  }
  TraceScope(const char* name, const char* cat, const char* arg_name,
             i64 arg) {
    if (trace_enabled()) {
      begin(name, cat);
      arg_name_ = arg_name;
      arg_ = arg;
    }
  }
  TraceScope(const char* name, const char* cat, const char* arg_name, i64 arg,
             const char* arg2_name, i64 arg2) {
    if (trace_enabled()) {
      begin(name, cat);
      arg_name_ = arg_name;
      arg_ = arg;
      arg2_name_ = arg2_name;
      arg2_ = arg2;
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (name_ != nullptr) end();
  }

 private:
  void begin(const char* name, const char* cat) {
    name_ = name;
    cat_ = cat;
    start_ns_ = monotonic_ns();
  }
  void end();  // out of line: appends the complete event

  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  u64 start_ns_ = 0;
  const char* arg_name_ = nullptr;
  i64 arg_ = 0;
  const char* arg2_name_ = nullptr;
  i64 arg2_ = 0;
};

/// Point event on the calling thread's track.
void trace_instant(const char* name, const char* cat = "app");
/// Time-series sample (rendered as a counter track per rank).
void trace_counter(const char* name, i64 value);

}  // namespace geofm::obs
