// Flight recorder: freeze-frame evidence for failed runs.
//
// When a rank dies — watchdog abort, injected fault, comm failure, or an
// explicit request — the one-line diagnosis the watchdog prints is all a
// human gets today; the trace/metric state that explains *why* is thrown
// away with the aborted attempt. The flight recorder fixes that: the comm
// abort path freezes the last-N trace spans per rank, a full
// `MetricsRegistry` snapshot, and the in-flight collective/barrier state
// (who joined, who is missing, how long the oldest waiter has been stuck)
// into a pending capture, and `run_elastic` archives it as a **postmortem
// bundle** — one JSON file per recovery attempt, written atomically
// (temp + rename) next to the checkpoint directory.
//
// First capture wins: in an abort cascade (root abort recursing into
// subgroups, peers re-aborting as they unwind) only the first capture —
// the root cause — is kept until it is archived or discarded.
//
// Activation mirrors the trace recorder: disabled by default (the comm
// abort path checks one flag), enabled programmatically by the elastic
// supervisor for the duration of a run, or by `GEOFM_POSTMORTEM=dir` in
// the environment — with the env var set, every capture is additionally
// auto-archived into `dir` at capture time, so even non-elastic runs
// leave evidence.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/common.hpp"

namespace geofm::obs {

/// One collective frozen mid-rendezvous: which ranks had posted and which
/// were missing when the group died. Ranks are global (root-communicator)
/// ranks, matching watchdog diagnoses and fault plans.
struct InflightOpState {
  u64 ticket = 0;
  std::string op;  // all_reduce / all_gather / reduce_scatter / broadcast
  int arrived = 0;
  int size = 0;
  double age_seconds = 0;  // since the first rank joined
  std::vector<int> missing;
};

/// A barrier round frozen mid-rendezvous.
struct BarrierState {
  int arrived = 0;
  int size = 0;
  double oldest_wait_seconds = 0;
  std::vector<int> missing;  // global ranks
};

/// Everything the recorder froze at abort time. `spans` holds the last-N
/// complete trace spans per rank (N = `FlightRecorder::last_n_spans()`),
/// oldest first within each rank.
struct PostmortemBundle {
  std::string kind;       // watchdog_abort | fault_kill | comm_abort | explicit
  std::string diagnosis;  // abort reason / watchdog message
  std::vector<int> suspects;  // watchdog's stalled global ranks (may be empty)
  double captured_at_seconds = 0;  // monotonic_seconds() at capture
  std::vector<InflightOpState> inflight;
  std::vector<BarrierState> barriers;
  std::vector<TraceEvent> spans;
  std::vector<MetricSample> metrics;
  // Archiver-supplied context (attempt index, world size, ...), emitted
  // into the bundle's "notes" object in insertion order.
  std::vector<std::pair<std::string, std::string>> notes;
};

/// Serializes a bundle to its on-disk JSON form.
std::string bundle_to_json(const PostmortemBundle& b);

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Arms the recorder. `last_n_spans_per_rank` caps how many of each
  /// rank's most recent complete spans a capture keeps.
  void enable(u64 last_n_spans_per_rank = 256);
  void disable();
  /// One relaxed load (+ env init on first call) — safe on the abort path.
  bool enabled() const;
  u64 last_n_spans() const;

  /// Freezes a capture. No-op unless enabled; no-op if a capture is
  /// already pending (first capture wins — the root cause of an abort
  /// cascade). Reads the global trace recorder and metrics registry; the
  /// comm layer supplies the in-flight/barrier state it froze *before*
  /// poisoning the ops.
  void capture(const std::string& kind, const std::string& diagnosis,
               const std::vector<int>& suspects,
               std::vector<InflightOpState> inflight,
               std::vector<BarrierState> barriers);

  /// Explicit capture (kind "explicit") with no comm state — operator
  /// request or a supervisor synthesizing evidence for a failure that
  /// never reached the comm abort path.
  void capture_now(const std::string& diagnosis);

  bool has_capture() const;
  /// Copies the pending capture out (false if none) — test/tool support.
  bool peek(PostmortemBundle& out) const;
  /// Drops the pending capture (armed for the next failure).
  void discard();

  /// Writes the pending capture into `dir` as `postmortem_<seq>_<kind>.json`
  /// (atomic temp + rename; `dir` is created if missing), clears it, and
  /// returns the bundle path. Throws Error if nothing is pending or the
  /// write fails — a failed write never leaves a partial bundle behind.
  std::string archive(const std::string& dir,
                      std::vector<std::pair<std::string, std::string>> notes =
                          {});

  /// Bundles successfully archived by this process (the filename sequence).
  u64 bundles_written() const;

  /// Test seam: makes the next archive() tear after `fail_after_bytes`
  /// bytes and fail (the temp file is removed; no bundle appears).
  /// Negative disables. Deliberately separate from the checkpoint layer's
  /// IO fault seam so bundle writes never perturb recorded fault plans.
  void set_write_fault_for_test(i64 fail_after_bytes);

 private:
  FlightRecorder() = default;
};

}  // namespace geofm::obs
