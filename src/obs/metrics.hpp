// Process-wide metrics registry: named counters, gauges, and histograms
// with percentile summaries. The companion to the trace recorder — traces
// answer "where did this step's time go", metrics answer "how much, in
// total, across the run".
//
// All instruments are thread-safe and lock-free on the update path
// (atomics only). Lookup by name takes a registry mutex, so hot sites
// should resolve their instrument once and cache the reference:
//
//   static auto& waits = obs::MetricsRegistry::instance().counter("comm.waits");
//   waits.add(1);
//
// Histograms use geometric buckets (10% relative width) spanning 1e-9 to
// ~1.8e4 (ns to hours when observations are seconds), so percentile
// estimates carry at most ~5% relative error, clamped to the observed
// min/max.
#pragma once

#include <atomic>
#include <array>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace geofm::obs {

class Counter {
 public:
  void add(double v) { v_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Keeps the maximum of all set_max() calls since reset.
  void set_max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

class Histogram {
 public:
  // Geometric buckets: bucket 0 holds v <= kLo (incl. non-positive),
  // buckets 1..kBuckets cover (kLo, kLo * kGrowth^kBuckets], the last
  // bucket is overflow.
  static constexpr double kLo = 1e-9;
  static constexpr double kGrowth = 1.1;
  static constexpr int kBuckets = 320;  // ~ up to 1.1^320 * 1e-9 ≈ 1.8e4

  void observe(double v);

  u64 count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // +inf when empty
  double max() const;  // -inf when empty
  double mean() const;
  /// p in [0, 100]. Bucket-interpolated, clamped to the observed range.
  double percentile(double p) const;
  void reset();

 private:
  std::array<std::atomic<u64>, kBuckets + 2> buckets_{};
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// One instrument's state, as captured by MetricsRegistry::snapshot().
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0;  // counter/gauge value; histogram sum
  u64 count = 0;     // histogram observations
  double mean = 0, p50 = 0, p90 = 0, p99 = 0, min = 0, max = 0;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Finds or creates. References stay valid for the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Point-in-time capture of every instrument, sorted by name — the
  /// per-step snapshot API (diff two snapshots for a step's delta).
  std::vector<MetricSample> snapshot() const;

  /// What changed between two snapshot() results (both sorted by name, as
  /// snapshot() returns them). Counters and histogram sum/count/mean
  /// become `after - before`; gauges are point-in-time and pass through
  /// the `after` value, as do histogram percentiles/min/max (bucket state
  /// is not captured in a sample, so order statistics cannot be diffed).
  /// Instruments new in `after` appear as-is; instruments only in
  /// `before` are dropped (a registry reset in between).
  static std::vector<MetricSample> delta(
      const std::vector<MetricSample>& before,
      const std::vector<MetricSample>& after);

  /// Human-readable dump of snapshot().
  std::string dump_text() const;

  /// Zeroes every instrument (between runs / tests). Not linearizable
  /// against concurrent updates.
  void reset();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace geofm::obs
