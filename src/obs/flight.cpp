#include "obs/flight.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "util/log.hpp"
#include "util/thread_context.hpp"

namespace geofm::obs {
namespace {

struct FlightState {
  // 0 = uninitialized (consult GEOFM_POSTMORTEM), 1 = disabled, 2 = enabled.
  std::atomic<int> state{0};
  std::atomic<u64> last_n{256};
  std::atomic<u64> seq{0};
  std::atomic<i64> write_fault_bytes{-1};

  std::mutex mu;  // guards pending + auto_dir
  bool has_pending = false;
  PostmortemBundle pending;
  std::string auto_dir;  // from GEOFM_POSTMORTEM: archive a copy at capture
};

FlightState& state() {
  static FlightState s;
  return s;
}

bool init_slow() {
  FlightState& s = state();
  static std::once_flag once;
  std::call_once(once, [&s] {
    const char* env = std::getenv("GEOFM_POSTMORTEM");
    if (env != nullptr && env[0] != '\0') {
      {
        std::lock_guard<std::mutex> lk(s.mu);
        s.auto_dir = env;
      }
      s.state.store(2, std::memory_order_relaxed);
    } else {
      s.state.store(1, std::memory_order_relaxed);
    }
  });
  return s.state.load(std::memory_order_relaxed) == 2;
}

void append_escaped(std::string& out, const std::string& v) {
  for (const char c : v) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out += c;
    }
  }
}

void append_quoted(std::string& out, const std::string& v) {
  out += '"';
  append_escaped(out, v);
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_int_array(std::string& out, const std::vector<int>& v) {
  out += '[';
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(v[i]);
  }
  out += ']';
}

const char* kind_name(MetricSample::Kind k) {
  switch (k) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "counter";
}

/// Keeps the last `n` complete spans per rank from a full trace snapshot,
/// ordered rank-major then oldest-first — the "what was each rank doing
/// right before it died" view.
std::vector<TraceEvent> last_n_spans_per_rank(std::vector<TraceEvent> events,
                                              u64 n) {
  std::map<int, std::vector<TraceEvent>> by_rank;
  for (auto& e : events) {
    if (e.phase != TraceEvent::Phase::kComplete) continue;
    by_rank[e.rank].push_back(e);
  }
  std::vector<TraceEvent> out;
  for (auto& [rank, v] : by_rank) {
    std::stable_sort(v.begin(), v.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.ts_ns < b.ts_ns;
                     });
    const size_t keep = std::min<size_t>(v.size(), static_cast<size_t>(n));
    out.insert(out.end(), v.end() - static_cast<std::ptrdiff_t>(keep),
               v.end());
  }
  return out;
}

/// Atomic bundle write: temp file in the target dir, fsync-free rename.
/// The test seam truncates the payload after `fault_bytes` and fails —
/// proving a torn write can never surface as a bundle.
void write_atomic(const std::string& dir, const std::string& name,
                  const std::string& payload, i64 fault_bytes) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  const std::string tmp = dir + "/." + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f.good()) throw Error("postmortem: cannot open " + tmp);
    if (fault_bytes >= 0 &&
        static_cast<size_t>(fault_bytes) < payload.size()) {
      f.write(payload.data(), fault_bytes);
      f.flush();
      f.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      throw Error("postmortem: injected torn write after " +
                  std::to_string(fault_bytes) + " bytes");
    }
    f.write(payload.data(),
            static_cast<std::streamsize>(payload.size()));
    f.flush();
    if (!f.good()) {
      f.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      throw Error("postmortem: short write to " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error("postmortem: rename to " + final_path + " failed");
  }
}

}  // namespace

std::string bundle_to_json(const PostmortemBundle& b) {
  std::string out;
  out.reserve(4096 + b.spans.size() * 128);
  out += "{\n  \"geofm_postmortem\": 1,\n  \"kind\": ";
  append_quoted(out, b.kind);
  out += ",\n  \"diagnosis\": ";
  append_quoted(out, b.diagnosis);
  out += ",\n  \"suspects\": ";
  append_int_array(out, b.suspects);
  out += ",\n  \"captured_at_seconds\": ";
  append_double(out, b.captured_at_seconds);
  out += ",\n  \"notes\": {";
  for (size_t i = 0; i < b.notes.size(); ++i) {
    if (i > 0) out += ',';
    out += "\n    ";
    append_quoted(out, b.notes[i].first);
    out += ": ";
    append_quoted(out, b.notes[i].second);
  }
  out += b.notes.empty() ? "},\n" : "\n  },\n";
  out += "  \"inflight\": [";
  for (size_t i = 0; i < b.inflight.size(); ++i) {
    const InflightOpState& op = b.inflight[i];
    if (i > 0) out += ',';
    out += "\n    {\"ticket\": " + std::to_string(op.ticket) + ", \"op\": ";
    append_quoted(out, op.op);
    out += ", \"arrived\": " + std::to_string(op.arrived) +
           ", \"size\": " + std::to_string(op.size) + ", \"age_seconds\": ";
    append_double(out, op.age_seconds);
    out += ", \"missing\": ";
    append_int_array(out, op.missing);
    out += '}';
  }
  out += b.inflight.empty() ? "],\n" : "\n  ],\n";
  out += "  \"barriers\": [";
  for (size_t i = 0; i < b.barriers.size(); ++i) {
    const BarrierState& br = b.barriers[i];
    if (i > 0) out += ',';
    out += "\n    {\"arrived\": " + std::to_string(br.arrived) +
           ", \"size\": " + std::to_string(br.size) +
           ", \"oldest_wait_seconds\": ";
    append_double(out, br.oldest_wait_seconds);
    out += ", \"missing\": ";
    append_int_array(out, br.missing);
    out += '}';
  }
  out += b.barriers.empty() ? "],\n" : "\n  ],\n";
  out += "  \"spans\": [";
  for (size_t i = 0; i < b.spans.size(); ++i) {
    const TraceEvent& e = b.spans[i];
    if (i > 0) out += ',';
    out += "\n    {\"rank\": " + std::to_string(e.rank) + ", \"name\": ";
    append_quoted(out, e.name != nullptr ? e.name : "");
    out += ", \"cat\": ";
    append_quoted(out, e.cat != nullptr ? e.cat : "app");
    out += ", \"ts_us\": ";
    append_double(out, static_cast<double>(e.ts_ns) * 1e-3);
    out += ", \"dur_us\": ";
    append_double(out, static_cast<double>(e.dur_ns) * 1e-3);
    if (e.arg_name != nullptr) {
      out += ", ";
      append_quoted(out, e.arg_name);
      out += ": " + std::to_string(e.arg);
      if (e.arg2_name != nullptr) {
        out += ", ";
        append_quoted(out, e.arg2_name);
        out += ": " + std::to_string(e.arg2);
      }
    }
    out += '}';
  }
  out += b.spans.empty() ? "],\n" : "\n  ],\n";
  out += "  \"metrics\": [";
  for (size_t i = 0; i < b.metrics.size(); ++i) {
    const MetricSample& m = b.metrics[i];
    if (i > 0) out += ',';
    out += "\n    {\"name\": ";
    append_quoted(out, m.name);
    out += ", \"kind\": \"";
    out += kind_name(m.kind);
    out += "\", \"value\": ";
    append_double(out, m.value);
    if (m.kind == MetricSample::Kind::kHistogram) {
      out += ", \"count\": " + std::to_string(m.count) + ", \"mean\": ";
      append_double(out, m.mean);
      out += ", \"p50\": ";
      append_double(out, m.p50);
      out += ", \"p99\": ";
      append_double(out, m.p99);
    }
    out += '}';
  }
  out += b.metrics.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder r;
  return r;
}

void FlightRecorder::enable(u64 last_n_spans_per_rank) {
  GEOFM_CHECK(last_n_spans_per_rank > 0);
  enabled();  // env init (so auto_dir is honored even after programmatic use)
  state().last_n.store(last_n_spans_per_rank, std::memory_order_relaxed);
  state().state.store(2, std::memory_order_relaxed);
}

void FlightRecorder::disable() {
  enabled();
  state().state.store(1, std::memory_order_relaxed);
}

bool FlightRecorder::enabled() const {
  const int s = state().state.load(std::memory_order_relaxed);
  if (s == 0) return init_slow();
  return s == 2;
}

u64 FlightRecorder::last_n_spans() const {
  return state().last_n.load(std::memory_order_relaxed);
}

void FlightRecorder::capture(const std::string& kind,
                             const std::string& diagnosis,
                             const std::vector<int>& suspects,
                             std::vector<InflightOpState> inflight,
                             std::vector<BarrierState> barriers) {
  if (!enabled()) return;
  FlightState& s = state();
  {
    // Cheap early-out for abort cascades (first capture wins anyway, and
    // the trace/metrics snapshots below are not free).
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.has_pending) return;
  }
  PostmortemBundle b;
  b.kind = kind;
  b.diagnosis = diagnosis;
  b.suspects = suspects;
  b.captured_at_seconds = monotonic_seconds();
  b.inflight = std::move(inflight);
  b.barriers = std::move(barriers);
  // Trace + metrics snapshots happen outside s.mu: both take their own
  // registry locks and neither can re-enter the flight recorder.
  b.spans = last_n_spans_per_rank(TraceRecorder::instance().snapshot(),
                                  s.last_n.load(std::memory_order_relaxed));
  b.metrics = MetricsRegistry::instance().snapshot();

  std::string auto_dir;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.has_pending) return;  // first capture wins
    s.pending = std::move(b);
    s.has_pending = true;
    auto_dir = s.auto_dir;
  }
  if (!auto_dir.empty()) {
    // Env-driven auto-archive: write a copy now, leave the capture pending
    // so a supervising archiver can still claim it.
    PostmortemBundle copy;
    {
      std::lock_guard<std::mutex> lk(s.mu);
      copy = s.pending;
    }
    const u64 seq = s.seq.fetch_add(1, std::memory_order_relaxed);
    char name[96];
    std::snprintf(name, sizeof(name), "postmortem_%03llu_%s.json",
                  static_cast<unsigned long long>(seq), copy.kind.c_str());
    try {
      write_atomic(auto_dir, name, bundle_to_json(copy),
                   s.write_fault_bytes.exchange(-1,
                                               std::memory_order_relaxed));
    } catch (const std::exception& e) {
      GEOFM_WARN("postmortem auto-archive failed: " << e.what());
    }
  }
}

void FlightRecorder::capture_now(const std::string& diagnosis) {
  capture("explicit", diagnosis, {}, {}, {});
}

bool FlightRecorder::has_capture() const {
  FlightState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.has_pending;
}

bool FlightRecorder::peek(PostmortemBundle& out) const {
  FlightState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  if (!s.has_pending) return false;
  out = s.pending;
  return true;
}

void FlightRecorder::discard() {
  FlightState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.has_pending = false;
  s.pending = PostmortemBundle{};
}

std::string FlightRecorder::archive(
    const std::string& dir,
    std::vector<std::pair<std::string, std::string>> notes) {
  FlightState& s = state();
  PostmortemBundle b;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    GEOFM_CHECK(s.has_pending, "postmortem: no capture pending");
    b = std::move(s.pending);
    s.has_pending = false;
    s.pending = PostmortemBundle{};
  }
  for (auto& kv : notes) b.notes.push_back(std::move(kv));
  const u64 seq = s.seq.fetch_add(1, std::memory_order_relaxed);
  char name[96];
  std::snprintf(name, sizeof(name), "postmortem_%03llu_%s.json",
                static_cast<unsigned long long>(seq), b.kind.c_str());
  write_atomic(dir, name, bundle_to_json(b),
               s.write_fault_bytes.exchange(-1, std::memory_order_relaxed));
  return dir + "/" + name;
}

u64 FlightRecorder::bundles_written() const {
  return state().seq.load(std::memory_order_relaxed);
}

void FlightRecorder::set_write_fault_for_test(i64 fail_after_bytes) {
  state().write_fault_bytes.store(fail_after_bytes,
                                  std::memory_order_relaxed);
}

}  // namespace geofm::obs
