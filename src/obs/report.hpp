// End-of-run health report + Prometheus exposition.
//
// `build_run_health_report` aggregates the trace spans a run already
// emitted into a cross-rank summary: pooled and per-rank p50/p99 step
// time, per-phase step-time breakdown (step.fetch / forward / backward /
// optimizer / exposed comm wait / checkpoint snapshots), rank-skew and
// straggler detection (a rank whose mean step time exceeds 1.5x the
// median), and a recovery timeline reconstructed from the recover.* spans
// and abort/publication instants. Rendered as `dump_text`-style text and
// JSON; per-rank `comm.exposed` sums reconcile with
// `CommStats::exposed_wait_seconds` by construction (the spans are emitted
// from the same wait path).
//
// `prometheus_text` renders the metrics registry in Prometheus text
// exposition format (counters/gauges as-is, histograms as summaries with
// quantile labels) — the scrape groundwork for the serving tier.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace geofm::obs {

struct RankHealth {
  int rank = -1;
  i64 steps = 0;               // number of `step` spans
  double step_seconds = 0;     // summed `step` span time
  double p50_step_seconds = 0;
  double p99_step_seconds = 0;
  double exposed_wait_seconds = 0;  // summed cat=comm.exposed span time
  std::map<std::string, double> phase_seconds;  // span name -> summed sec

  double mean_step_seconds() const {
    return steps > 0 ? step_seconds / static_cast<double>(steps) : 0;
  }
};

/// One entry of the recovery timeline: recover.* spans plus point events
/// (watchdog.abort / fault.kill / fault.stall / comm.abort /
/// ckpt.published / upload.retry / upload.gave_up), ordered by time.
struct TimelineEvent {
  std::string name;
  double at_seconds = 0;   // span start / instant time (monotonic)
  double dur_seconds = 0;  // 0 for instants
  int rank = -1;
  i64 world = -1;  // recover.* spans carry the post-recovery world size
};

/// Latency summary for one serving span family (serve.request /
/// serve.batch / serve.encode / serve.reload), feeding the p50/p99 SLO
/// lines of the serving section. Serve spans come from unranked server
/// threads, so they are collected before the per-rank accounting.
struct ServeSpanStats {
  i64 count = 0;
  double total_seconds = 0;
  double p50_seconds = 0;
  double p99_seconds = 0;
};

/// Serving-tier resilience events, counted from serve.* trace instants:
/// how much load was shed (and why) and how often the reload path
/// degraded. All zero on a run that never served under stress.
struct ServeResilience {
  i64 shed_overload = 0;   // admission queue full / displaced by priority
  i64 shed_deadline = 0;   // deadline expired or unmeetable at admission
  i64 shed_degraded = 0;   // cache-only misses shed without weights
  i64 breaker_trips = 0;   // reload circuit breaker opened
  i64 failovers = 0;       // checkpoint restored from a non-primary source
  i64 cache_only_entries = 0;  // times the server dropped to cache-only

  bool any() const {
    return shed_overload || shed_deadline || shed_degraded || breaker_trips ||
           failovers || cache_only_entries;
  }
};

struct RunHealthReport {
  std::vector<RankHealth> ranks;  // sorted by rank
  i64 steps = 0;                  // pooled `step` span count
  double p50_step_seconds = 0;    // pooled across ranks
  double p99_step_seconds = 0;
  double step_seconds_total = 0;
  double exposed_wait_seconds_total = 0;
  std::map<std::string, double> phase_seconds;  // summed across ranks
  std::vector<TimelineEvent> recovery_timeline;
  // Serving tier: span name ("serve.request", ...) -> latency summary.
  // Empty when the run served nothing.
  std::map<std::string, ServeSpanStats> serve_spans;
  ServeResilience serve_resilience;
  int straggler_rank = -1;   // -1 = no straggler detected
  double skew_ratio = 1.0;   // max rank mean / median rank mean
  u64 trace_events = 0;
  u64 trace_dropped = 0;
};

/// Builds the report from an explicit event set (test/tool support).
RunHealthReport build_run_health_report(const std::vector<TraceEvent>& events,
                                        u64 dropped = 0);

/// Builds the report from the global trace recorder's current contents.
RunHealthReport build_run_health_report();

std::string report_to_text(const RunHealthReport& r);
std::string report_to_json(const RunHealthReport& r);

/// Prometheus text exposition of a metrics snapshot. Metric names are
/// sanitized (`comm.waits` -> `geofm_comm_waits`); histograms render as
/// summaries (quantile series + _sum/_count).
std::string prometheus_text(const std::vector<MetricSample>& samples);

/// prometheus_text(MetricsRegistry::instance().snapshot()).
std::string prometheus_text();

}  // namespace geofm::obs
