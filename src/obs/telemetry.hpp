// Background telemetry sampler: per-rank time-series JSONL.
//
// A single process-wide sampler thread wakes at a configurable interval
// and appends one JSON line to `<dir>/telemetry.jsonl` with:
//   * metric deltas since the previous tick (counters / histogram
//     sum+count via `MetricsRegistry::delta`; gauges as-is) — comm waits,
//     loader stalls, uploader retries, checkpoint activity, ...;
//   * a per-rank step-time breakdown derived from the trace spans the
//     ranks already emit (step / step.fetch / step.forward / ... plus
//     exposed comm wait), consumed incrementally via
//     `TraceRecorder::drain_new_events` so each tick costs O(new events);
//   * process RSS.
//
// Hot-path cost is ~zero by construction: ranks pay nothing beyond the
// tracing they already do — the sampler is a pure consumer on its own
// thread. Each tick runs inside a `telemetry.sample` span, so the span
// budget gate bounds the sampler's own cost as a fraction of step time.
//
// Activation: `telemetry::start({dir})` programmatically, or set
// `GEOFM_TELEMETRY=dir` (+ optional `GEOFM_TELEMETRY_INTERVAL` seconds,
// default 0.1 = 10 Hz) and call `telemetry::init_from_env()` — the
// distributed driver does this on entry, so env-only users get a
// time-series with no code changes.
#pragma once

#include <string>

namespace geofm::obs::telemetry {

struct TelemetryOptions {
  std::string dir;                 // output directory (created if missing)
  double interval_seconds = 0.1;   // 10 Hz default
  bool include_rss = true;         // sample /proc/self RSS per tick
};

/// Starts the sampler thread. Returns false (and does nothing) if one is
/// already running. The output file is `<dir>/telemetry.jsonl`, truncated
/// at start.
bool start(const TelemetryOptions& opts);

/// Takes a final sample, stops the thread, and closes the file. No-op if
/// not running.
void stop();

bool running();

/// Starts the sampler from GEOFM_TELEMETRY / GEOFM_TELEMETRY_INTERVAL if
/// set (first call wins; later calls are no-ops). Enables tracing if it
/// was off — the per-rank breakdown needs the spans.
void init_from_env();

}  // namespace geofm::obs::telemetry
