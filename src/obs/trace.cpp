#include "obs/trace.hpp"

#include "obs/metrics.hpp"
#include "util/log.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>

namespace geofm::obs {
namespace detail {

std::atomic<int> g_trace_state{0};

ThreadTrack::ThreadTrack(int tid_, u64 capacity) : tid(tid_) {
  buf.resize(static_cast<size_t>(capacity));
}

void ThreadTrack::note_dropped(ThreadTrack& t) {
  t.dropped.fetch_add(1, std::memory_order_relaxed);
  static auto& dropped_m = MetricsRegistry::instance().counter("trace.dropped");
  dropped_m.add(1);
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    GEOFM_WARN("trace ring buffer full on thread track t"
               << t.tid << " — events are being dropped (see the "
               << "trace.dropped metric); raise GEOFM_TRACE_BUFFER or "
               << "TraceRecorder::set_buffer_capacity()");
  }
}

}  // namespace detail

namespace {

constexpr u64 kDefaultCapacity = 1u << 16;

struct Registry {
  mutable std::mutex mu;
  std::vector<std::shared_ptr<detail::ThreadTrack>> tracks;
  std::atomic<u64> capacity{kDefaultCapacity};
  std::string exit_path;  // set from GEOFM_TRACE; written at process exit
};

Registry& registry() {
  static Registry r;
  return r;
}

void write_exit_trace() {
  const std::string& path = registry().exit_path;
  if (path.empty()) return;
  TraceRecorder::instance().write_json(path);
  std::fprintf(stderr, "[geofm] trace written to %s (%llu events dropped)\n",
               path.c_str(),
               static_cast<unsigned long long>(
                   TraceRecorder::instance().dropped_events()));
}

// JSON string escaping for names/labels (all are literals we control, but
// stay safe).
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      os << hex;
    } else {
      os << c;
    }
  }
}

// pid encoding: rank r >= 0 -> r; untracked threads -> a sentinel process.
constexpr int kUntrackedPid = 999;

const char* process_label(int pid) {
  return pid == kUntrackedPid ? "untracked" : "rank";
}

}  // namespace

namespace detail {

bool trace_init_slow() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("GEOFM_TRACE");
    const char* cap = std::getenv("GEOFM_TRACE_BUFFER");
    if (cap != nullptr) {
      const long long v = std::atoll(cap);
      if (v > 0) registry().capacity.store(static_cast<u64>(v));
    }
    if (env != nullptr && env[0] != '\0') {
      registry().exit_path = env;
      std::atexit(write_exit_trace);
      g_trace_state.store(2, std::memory_order_relaxed);
    } else {
      g_trace_state.store(1, std::memory_order_relaxed);
    }
  });
  return g_trace_state.load(std::memory_order_relaxed) == 2;
}

}  // namespace detail

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder r;
  return r;
}

void TraceRecorder::enable() {
  trace_enabled();  // ensure env init ran (so exit_path/capacity are set)
  detail::g_trace_state.store(2, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  trace_enabled();
  detail::g_trace_state.store(1, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& t : r.tracks) {
    t->count.store(0, std::memory_order_release);
    t->dropped.store(0, std::memory_order_relaxed);
  }
}

void TraceRecorder::set_buffer_capacity(u64 events) {
  GEOFM_CHECK(events > 0);
  registry().capacity.store(events);
}

u64 TraceRecorder::buffer_capacity() const { return registry().capacity.load(); }

detail::ThreadTrack& TraceRecorder::track() {
  thread_local std::shared_ptr<detail::ThreadTrack> mine = [] {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    auto t = std::make_shared<detail::ThreadTrack>(
        static_cast<int>(r.tracks.size()), r.capacity.load());
    r.tracks.push_back(t);
    return t;
  }();
  return *mine;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<std::shared_ptr<detail::ThreadTrack>> tracks;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    tracks = r.tracks;
  }
  std::vector<TraceEvent> out;
  for (const auto& t : tracks) {
    const u64 n = std::min<u64>(t->count.load(std::memory_order_acquire),
                                t->buf.size());
    out.insert(out.end(), t->buf.begin(),
               t->buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return out;
}

void TraceRecorder::visit_new_events(std::vector<u64>& cursor,
                                     void (*fn)(void*, const TraceEvent&),
                                     void* ctx) const {
  std::vector<std::shared_ptr<detail::ThreadTrack>> tracks;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    tracks = r.tracks;
  }
  if (cursor.size() < tracks.size()) cursor.resize(tracks.size(), 0);
  for (size_t i = 0; i < tracks.size(); ++i) {
    const auto& t = tracks[i];
    const u64 n = std::min<u64>(t->count.load(std::memory_order_acquire),
                                t->buf.size());
    u64 c = cursor[i];
    if (c > n) c = 0;  // clear() rewound the track
    for (; c < n; ++c) fn(ctx, t->buf[static_cast<size_t>(c)]);
    cursor[i] = n;
  }
}

u64 TraceRecorder::dropped_events() const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  u64 total = 0;
  for (const auto& t : r.tracks) {
    total += t->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void TraceRecorder::write_json(std::ostream& os) const {
  std::vector<std::shared_ptr<detail::ThreadTrack>> tracks;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    tracks = r.tracks;
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Metadata: name each (pid, tid) pair that carries events.
  std::set<std::pair<int, int>> seen;
  for (const auto& t : tracks) {
    const u64 n = std::min<u64>(t->count.load(std::memory_order_acquire),
                                t->buf.size());
    const char* label = t->label.load(std::memory_order_relaxed);
    for (u64 i = 0; i < n; ++i) {
      const TraceEvent& e = t->buf[static_cast<size_t>(i)];
      const int pid = e.rank >= 0 ? e.rank : kUntrackedPid;
      if (!seen.insert({pid, t->tid}).second) continue;
      sep();
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << t->tid << ",\"args\":{\"name\":\""
         << process_label(pid);
      if (pid != kUntrackedPid) os << " " << pid;
      os << "\"}}";
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << t->tid << ",\"args\":{\"name\":\"";
      write_escaped(os, label != nullptr ? label : "thread");
      os << " (t" << t->tid << ")\"}}";
    }
  }

  for (const auto& t : tracks) {
    const u64 n = std::min<u64>(t->count.load(std::memory_order_acquire),
                                t->buf.size());
    for (u64 i = 0; i < n; ++i) {
      const TraceEvent& e = t->buf[static_cast<size_t>(i)];
      const int pid = e.rank >= 0 ? e.rank : kUntrackedPid;
      sep();
      os << "{\"name\":\"";
      write_escaped(os, e.name);
      os << "\",\"cat\":\"";
      write_escaped(os, e.cat != nullptr ? e.cat : "app");
      os << "\",\"pid\":" << pid << ",\"tid\":" << t->tid << ",\"ts\":";
      char ts[32];
      std::snprintf(ts, sizeof(ts), "%.3f",
                    static_cast<double>(e.ts_ns) * 1e-3);
      os << ts;
      switch (e.phase) {
        case TraceEvent::Phase::kComplete: {
          char dur[32];
          std::snprintf(dur, sizeof(dur), "%.3f",
                        static_cast<double>(e.dur_ns) * 1e-3);
          os << ",\"ph\":\"X\",\"dur\":" << dur;
          break;
        }
        case TraceEvent::Phase::kInstant:
          os << ",\"ph\":\"i\",\"s\":\"t\"";
          break;
        case TraceEvent::Phase::kCounter:
          os << ",\"ph\":\"C\"";
          break;
      }
      if (e.phase == TraceEvent::Phase::kCounter) {
        os << ",\"args\":{\"value\":" << e.arg << "}";
      } else if (e.arg_name != nullptr) {
        os << ",\"args\":{\"";
        write_escaped(os, e.arg_name);
        os << "\":" << e.arg;
        if (e.arg2_name != nullptr) {
          os << ",\"";
          write_escaped(os, e.arg2_name);
          os << "\":" << e.arg2;
        }
        os << "}";
      }
      os << "}";
    }
  }
  os << "\n]}\n";
}

void TraceRecorder::write_json(const std::string& path) const {
  std::ofstream f(path);
  GEOFM_CHECK(f.good(), "cannot open trace output " << path);
  write_json(f);
}

void set_thread_label(const char* label) {
  // No-op when disabled so threads never pay the track-buffer allocation
  // unless a trace is actually being captured.
  if (!trace_enabled()) return;
  TraceRecorder::instance().track().label.store(label,
                                                std::memory_order_relaxed);
}

void TraceScope::end() {
  TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.ts_ns = start_ns_;
  e.dur_ns = monotonic_ns() - start_ns_;
  e.phase = TraceEvent::Phase::kComplete;
  e.rank = this_thread_rank();
  e.arg_name = arg_name_;
  e.arg = arg_;
  e.arg2_name = arg2_name_;
  e.arg2 = arg2_;
  TraceRecorder::instance().track().push(e);
}

void trace_instant(const char* name, const char* cat) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = monotonic_ns();
  e.phase = TraceEvent::Phase::kInstant;
  e.rank = this_thread_rank();
  TraceRecorder::instance().track().push(e);
}

void trace_counter(const char* name, i64 value) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.name = name;
  e.cat = "counter";
  e.ts_ns = monotonic_ns();
  e.phase = TraceEvent::Phase::kCounter;
  e.rank = this_thread_rank();
  e.arg = value;
  TraceRecorder::instance().track().push(e);
}

}  // namespace geofm::obs
