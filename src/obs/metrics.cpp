#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace geofm::obs {

namespace {

int bucket_index(double v) {
  if (!(v > Histogram::kLo)) return 0;
  const int idx = 1 + static_cast<int>(std::floor(
                          std::log(v / Histogram::kLo) /
                          std::log(Histogram::kGrowth)));
  return std::min(idx, Histogram::kBuckets + 1);
}

/// Representative value of a bucket (geometric mean of its edges).
double bucket_value(int idx) {
  if (idx == 0) return Histogram::kLo;
  const double lo = Histogram::kLo * std::pow(Histogram::kGrowth, idx - 1);
  return lo * std::sqrt(Histogram::kGrowth);
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(double v) {
  buckets_[static_cast<size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const u64 n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::percentile(double p) const {
  const u64 n = count();
  if (n == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest value with cumulative count >= rank.
  const u64 rank = std::max<u64>(
      1, static_cast<u64>(std::ceil(clamped / 100.0 * static_cast<double>(n))));
  u64 cum = 0;
  for (int i = 0; i < kBuckets + 2; ++i) {
    cum += buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (cum >= rank) {
      return std::clamp(bucket_value(i), min(), max());
    }
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl i;
  return i;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry r;
  return r;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  auto& slot = i.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  auto& slot = i.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  auto& slot = i.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  std::vector<MetricSample> out;
  out.reserve(i.counters.size() + i.gauges.size() + i.histograms.size());
  for (const auto& [name, c] : i.counters) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : i.gauges) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : i.histograms) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.value = h->sum();
    s.count = h->count();
    s.mean = h->mean();
    s.p50 = h->percentile(50);
    s.p90 = h->percentile(90);
    s.p99 = h->percentile(99);
    s.min = s.count > 0 ? h->min() : 0;
    s.max = s.count > 0 ? h->max() : 0;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<MetricSample> MetricsRegistry::delta(
    const std::vector<MetricSample>& before,
    const std::vector<MetricSample>& after) {
  std::vector<MetricSample> out;
  out.reserve(after.size());
  // Both inputs are sorted by name (snapshot()'s contract): merge-walk.
  size_t bi = 0;
  for (const MetricSample& a : after) {
    while (bi < before.size() && before[bi].name < a.name) ++bi;
    MetricSample d = a;
    if (bi < before.size() && before[bi].name == a.name &&
        before[bi].kind == a.kind) {
      const MetricSample& b = before[bi];
      switch (a.kind) {
        case MetricSample::Kind::kCounter:
          d.value = a.value - b.value;
          break;
        case MetricSample::Kind::kGauge:
          break;  // point-in-time: keep the `after` value
        case MetricSample::Kind::kHistogram:
          // A reset between snapshots makes `after` the whole story.
          if (a.count >= b.count) {
            d.value = a.value - b.value;
            d.count = a.count - b.count;
            d.mean = d.count > 0 ? d.value / static_cast<double>(d.count) : 0;
          }
          break;
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::string MetricsRegistry::dump_text() const {
  std::ostringstream os;
  for (const MetricSample& s : snapshot()) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        os << s.name << " = " << s.value << "\n";
        break;
      case MetricSample::Kind::kGauge:
        os << s.name << " = " << s.value << " (gauge)\n";
        break;
      case MetricSample::Kind::kHistogram:
        os << s.name << ": n=" << s.count << " sum=" << s.value
           << " mean=" << s.mean << " p50=" << s.p50 << " p90=" << s.p90
           << " p99=" << s.p99 << " min=" << s.min << " max=" << s.max
           << "\n";
        break;
    }
  }
  return os.str();
}

void MetricsRegistry::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  for (auto& [name, c] : i.counters) c->reset();
  for (auto& [name, g] : i.gauges) g->reset();
  for (auto& [name, h] : i.histograms) h->reset();
}

}  // namespace geofm::obs
