#include "obs/telemetry.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <unistd.h>
#endif

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/thread_context.hpp"

namespace geofm::obs::telemetry {
namespace {

// Span names folded into the per-rank breakdown. Everything else a rank
// emits (comm internals, fsdp/ddp machinery) is visible in the full trace;
// the time series keeps the step-phase skeleton plus exposed comm wait.
constexpr const char* kPhases[] = {
    "step",          "step.fetch",     "step.backward",
    "step.forward",  "step.optimizer", "step.end_backward",
    "step.loss_allreduce"};

i64 rss_bytes() {
#ifdef __linux__
  std::ifstream f("/proc/self/statm");
  long long total = 0, resident = 0;
  if (f >> total >> resident) {
    return static_cast<i64>(resident) * sysconf(_SC_PAGESIZE);
  }
#endif
  return 0;
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_key(std::string& out, const std::string& k) {
  out += '"';
  for (const char c : k) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\": ";
}

struct Sampler {
  TelemetryOptions opts;
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop_requested = false;

  std::ofstream out;
  std::vector<MetricSample> prev;
  std::vector<u64> cursor;

  void tick() {
    TraceScope span("telemetry.sample", "obs");

    // Per-rank phase seconds from spans published since the last tick.
    // rank -> phase name -> seconds this interval.
    std::map<int, std::map<std::string, double>> ranks;
    TraceRecorder::instance().drain_new_events(
        cursor, [&ranks](const TraceEvent& e) {
          if (e.phase != TraceEvent::Phase::kComplete || e.rank < 0) return;
          // Cheap prefilter before any strcmp: the drain visits EVERY
          // span the ranks emit (kernel.gemm alone is millions on a real
          // run), but only "st..." names and the "comm.exposed" category
          // ("comm" ends at index 4) can fold into the breakdown. The
          // indexed reads are safe: each is guarded by the previous
          // char matching, so we never read past a literal's NUL.
          const char* c = e.cat;
          if (c != nullptr && c[0] == 'c' && c[1] == 'o' && c[2] == 'm' &&
              c[3] == 'm' && c[4] == '.' &&
              std::strcmp(c, "comm.exposed") == 0) {
            ranks[e.rank]["comm.exposed"] +=
                static_cast<double>(e.dur_ns) * 1e-9;
            return;
          }
          if (e.name == nullptr || e.name[0] != 's' || e.name[1] != 't') {
            return;
          }
          for (const char* phase : kPhases) {
            if (std::strcmp(e.name, phase) == 0) {
              ranks[e.rank][phase] += static_cast<double>(e.dur_ns) * 1e-9;
              break;
            }
          }
        });

    auto cur = MetricsRegistry::instance().snapshot();
    const auto d = MetricsRegistry::delta(prev, cur);
    prev = std::move(cur);

    std::string line;
    line.reserve(512);
    line += "{\"t\": ";
    append_double(line, monotonic_seconds());
    line += ", \"interval\": ";
    append_double(line, opts.interval_seconds);
    if (opts.include_rss) {
      line += ", \"rss_bytes\": " + std::to_string(rss_bytes());
    }
    line += ", \"metrics\": {";
    bool first = true;
    for (const MetricSample& m : d) {
      switch (m.kind) {
        case MetricSample::Kind::kCounter:
        case MetricSample::Kind::kGauge:
          if (m.value == 0) continue;
          if (!first) line += ", ";
          append_key(line, m.name);
          append_double(line, m.value);
          break;
        case MetricSample::Kind::kHistogram:
          if (m.count == 0) continue;
          if (!first) line += ", ";
          append_key(line, m.name);
          line += "{\"count\": " + std::to_string(m.count) + ", \"sum\": ";
          append_double(line, m.value);
          line += '}';
          break;
      }
      first = false;
    }
    line += "}, \"ranks\": {";
    first = true;
    for (const auto& [rank, phases] : ranks) {
      if (!first) line += ", ";
      first = false;
      line += '"' + std::to_string(rank) + "\": {";
      bool pfirst = true;
      for (const auto& [phase, sec] : phases) {
        if (!pfirst) line += ", ";
        pfirst = false;
        append_key(line, phase);
        append_double(line, sec);
      }
      line += '}';
    }
    line += "}}\n";
    out << line;
    out.flush();
  }

  void loop() {
    set_thread_rank(-1);
    set_thread_label("telemetry.sampler");
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      if (cv.wait_for(lk, std::chrono::duration<double>(opts.interval_seconds),
                      [this] { return stop_requested; })) {
        return;
      }
      lk.unlock();
      tick();
      lk.lock();
    }
  }
};

std::mutex g_mu;
Sampler* g_sampler = nullptr;  // non-null while running

}  // namespace

bool start(const TelemetryOptions& opts) {
  GEOFM_CHECK(!opts.dir.empty(), "telemetry: output dir required");
  GEOFM_CHECK(opts.interval_seconds > 0);
  std::lock_guard<std::mutex> lk(g_mu);
  if (g_sampler != nullptr) return false;
  std::filesystem::create_directories(opts.dir);
  auto* s = new Sampler;
  s->opts = opts;
  s->out.open(opts.dir + "/telemetry.jsonl", std::ios::trunc);
  if (!s->out.good()) {
    delete s;
    throw Error("telemetry: cannot open " + opts.dir + "/telemetry.jsonl");
  }
  // Baseline snapshot so the first tick reports deltas, not totals.
  s->prev = MetricsRegistry::instance().snapshot();
  s->thread = std::thread([s] { s->loop(); });
  g_sampler = s;
  return true;
}

void stop() {
  Sampler* s = nullptr;
  {
    std::lock_guard<std::mutex> lk(g_mu);
    s = g_sampler;
    g_sampler = nullptr;
  }
  if (s == nullptr) return;
  {
    std::lock_guard<std::mutex> lk(s->mu);
    s->stop_requested = true;
  }
  s->cv.notify_all();
  s->thread.join();
  s->tick();  // final partial interval, so short runs still get a sample
  delete s;
}

bool running() {
  std::lock_guard<std::mutex> lk(g_mu);
  return g_sampler != nullptr;
}

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* dir = std::getenv("GEOFM_TELEMETRY");
    if (dir == nullptr || dir[0] == '\0') return;
    TelemetryOptions opts;
    opts.dir = dir;
    if (const char* iv = std::getenv("GEOFM_TELEMETRY_INTERVAL")) {
      const double v = std::atof(iv);
      if (v > 0) opts.interval_seconds = v;
    }
    // The per-rank breakdown is derived from spans; turn tracing on if the
    // user only asked for telemetry. Note the trace buffers drop (never
    // wrap) once full, so very long runs want GEOFM_TRACE_BUFFER raised.
    TraceRecorder::instance().enable();
    try {
      start(opts);
      GEOFM_INFO("telemetry sampler writing " << opts.dir
                                              << "/telemetry.jsonl every "
                                              << opts.interval_seconds
                                              << "s");
    } catch (const std::exception& e) {
      GEOFM_WARN("telemetry: failed to start from GEOFM_TELEMETRY: "
                 << e.what());
    }
  });
}

}  // namespace geofm::obs::telemetry
