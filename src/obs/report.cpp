#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

namespace geofm::obs {
namespace {

// Step phases reported in the breakdown (summed per rank and globally).
// `step` itself is tracked separately; cat=comm.exposed spans fold into
// one "comm.exposed" phase; ckpt.snapshot is the exposed checkpoint cost.
constexpr const char* kPhaseNames[] = {
    "step.fetch",     "step.forward",       "step.backward",
    "step.end_backward", "step.optimizer",  "step.loss_allreduce",
    "ckpt.snapshot"};

bool is_timeline_instant(const char* name) {
  static constexpr const char* kNames[] = {
      "watchdog.abort", "fault.kill",     "fault.stall",
      "fault.corrupt",  "comm.abort",     "ckpt.published",
      "upload.retry",   "upload.gave_up", "serve.breaker_open",
      "serve.failover", "serve.cache_only"};
  for (const char* n : kNames) {
    if (std::strcmp(name, n) == 0) return true;
  }
  return false;
}

/// Folds one serve.* instant into the resilience tally. Returns false
/// for serve instants the tally does not track (none today, but keeps
/// unknown ones out of the timeline too).
bool count_serve_instant(const char* name, ServeResilience* out) {
  if (std::strcmp(name, "serve.shed_overload") == 0) {
    out->shed_overload += 1;
  } else if (std::strcmp(name, "serve.shed_deadline") == 0) {
    out->shed_deadline += 1;
  } else if (std::strcmp(name, "serve.shed_degraded") == 0) {
    out->shed_degraded += 1;
  } else if (std::strcmp(name, "serve.breaker_open") == 0) {
    out->breaker_trips += 1;
  } else if (std::strcmp(name, "serve.failover") == 0) {
    out->failovers += 1;
  } else if (std::strcmp(name, "serve.cache_only") == 0) {
    out->cache_only_entries += 1;
  } else {
    return false;
  }
  return true;
}

double nearest_rank_percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  size_t rank = static_cast<size_t>(
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(n))));
  if (rank > n) rank = n;
  return v[rank - 1];
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_quoted(std::string& out, const std::string& v) {
  out += '"';
  for (const char c : v) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out = "geofm_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

RunHealthReport build_run_health_report(const std::vector<TraceEvent>& events,
                                        u64 dropped) {
  RunHealthReport r;
  r.trace_events = events.size();
  r.trace_dropped = dropped;

  std::map<int, RankHealth> ranks;
  std::map<int, std::vector<double>> step_durs;
  std::vector<double> pooled;
  std::map<std::string, std::vector<double>> serve_durs;

  for (const TraceEvent& e : events) {
    if (e.phase == TraceEvent::Phase::kInstant && e.name != nullptr &&
        std::strncmp(e.name, "serve.", 6) == 0) {
      count_serve_instant(e.name, &r.serve_resilience);
      // Low-frequency mode transitions also land in the recovery
      // timeline; per-request sheds stay aggregate-only.
      if (!is_timeline_instant(e.name)) continue;
    }
    if (e.phase == TraceEvent::Phase::kInstant && e.name != nullptr &&
        is_timeline_instant(e.name)) {
      TimelineEvent t;
      t.name = e.name;
      t.at_seconds = static_cast<double>(e.ts_ns) * 1e-9;
      t.rank = e.rank;
      r.recovery_timeline.push_back(std::move(t));
      continue;
    }
    if (e.phase != TraceEvent::Phase::kComplete || e.name == nullptr) {
      continue;
    }
    const double sec = static_cast<double>(e.dur_ns) * 1e-9;
    if (std::strncmp(e.name, "recover.", 8) == 0) {
      TimelineEvent t;
      t.name = e.name;
      t.at_seconds = static_cast<double>(e.ts_ns) * 1e-9;
      t.dur_seconds = sec;
      t.rank = e.rank;
      if (e.arg_name != nullptr && std::strcmp(e.arg_name, "world") == 0) {
        t.world = e.arg;
      }
      r.recovery_timeline.push_back(std::move(t));
      continue;
    }
    // Serving spans are emitted by unranked server threads — collect
    // them before the rank filter below would drop them.
    if (std::strncmp(e.name, "serve.", 6) == 0) {
      serve_durs[e.name].push_back(sec);
      continue;
    }
    if (e.rank < 0) continue;
    RankHealth& h = ranks[e.rank];
    h.rank = e.rank;
    if (std::strcmp(e.name, "step") == 0) {
      h.steps += 1;
      h.step_seconds += sec;
      step_durs[e.rank].push_back(sec);
      pooled.push_back(sec);
      continue;
    }
    if (e.cat != nullptr && std::strcmp(e.cat, "comm.exposed") == 0) {
      h.exposed_wait_seconds += sec;
      h.phase_seconds["comm.exposed"] += sec;
      continue;
    }
    for (const char* phase : kPhaseNames) {
      if (std::strcmp(e.name, phase) == 0) {
        h.phase_seconds[phase] += sec;
        break;
      }
    }
  }

  for (auto& [rank, h] : ranks) {
    auto& durs = step_durs[rank];
    h.p50_step_seconds = nearest_rank_percentile(durs, 50);
    h.p99_step_seconds = nearest_rank_percentile(durs, 99);
    r.steps += h.steps;
    r.step_seconds_total += h.step_seconds;
    r.exposed_wait_seconds_total += h.exposed_wait_seconds;
    for (const auto& [phase, sec] : h.phase_seconds) {
      r.phase_seconds[phase] += sec;
    }
    r.ranks.push_back(h);
  }
  r.p50_step_seconds = nearest_rank_percentile(pooled, 50);
  r.p99_step_seconds = nearest_rank_percentile(pooled, 99);

  for (auto& [name, durs] : serve_durs) {
    ServeSpanStats s;
    s.count = static_cast<i64>(durs.size());
    for (const double d : durs) s.total_seconds += d;
    s.p50_seconds = nearest_rank_percentile(durs, 50);
    s.p99_seconds = nearest_rank_percentile(durs, 99);
    r.serve_spans[name] = s;
  }

  // Straggler detection: a rank whose mean step time stands 1.5x above
  // the median of rank means. Only meaningful with >= 2 stepping ranks.
  std::vector<double> means;
  for (const RankHealth& h : r.ranks) {
    if (h.steps > 0) means.push_back(h.mean_step_seconds());
  }
  if (means.size() >= 2) {
    std::vector<double> sorted = means;
    const double median = nearest_rank_percentile(sorted, 50);
    double worst = 0;
    int worst_rank = -1;
    for (const RankHealth& h : r.ranks) {
      if (h.steps > 0 && h.mean_step_seconds() > worst) {
        worst = h.mean_step_seconds();
        worst_rank = h.rank;
      }
    }
    if (median > 0) {
      r.skew_ratio = worst / median;
      if (r.skew_ratio > 1.5) r.straggler_rank = worst_rank;
    }
  }

  std::sort(r.recovery_timeline.begin(), r.recovery_timeline.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              return a.at_seconds < b.at_seconds;
            });
  return r;
}

RunHealthReport build_run_health_report() {
  return build_run_health_report(TraceRecorder::instance().snapshot(),
                                 TraceRecorder::instance().dropped_events());
}

std::string report_to_text(const RunHealthReport& r) {
  std::ostringstream os;
  char buf[160];
  os << "== run health ==\n";
  std::snprintf(buf, sizeof(buf),
                "steps: %lld   step time p50 %.3f ms  p99 %.3f ms  total "
                "%.3f s\n",
                static_cast<long long>(r.steps), r.p50_step_seconds * 1e3,
                r.p99_step_seconds * 1e3, r.step_seconds_total);
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "exposed comm wait: %.3f s (%.1f%% of step time)\n",
                r.exposed_wait_seconds_total,
                r.step_seconds_total > 0
                    ? 100.0 * r.exposed_wait_seconds_total /
                          r.step_seconds_total
                    : 0.0);
  os << buf;
  os << "phase breakdown (all ranks):\n";
  for (const auto& [phase, sec] : r.phase_seconds) {
    std::snprintf(buf, sizeof(buf), "  %-20s %10.3f s  (%5.1f%% of step)\n",
                  phase.c_str(), sec,
                  r.step_seconds_total > 0 ? 100.0 * sec / r.step_seconds_total
                                           : 0.0);
    os << buf;
  }
  os << "per-rank:\n";
  for (const RankHealth& h : r.ranks) {
    std::snprintf(buf, sizeof(buf),
                  "  rank %-3d steps %-5lld mean %.3f ms  p50 %.3f ms  p99 "
                  "%.3f ms  exposed %.3f s%s\n",
                  h.rank, static_cast<long long>(h.steps),
                  h.mean_step_seconds() * 1e3, h.p50_step_seconds * 1e3,
                  h.p99_step_seconds * 1e3, h.exposed_wait_seconds,
                  h.rank == r.straggler_rank ? "  << straggler" : "");
    os << buf;
  }
  std::snprintf(buf, sizeof(buf), "rank skew: %.2fx (straggler: %s)\n",
                r.skew_ratio,
                r.straggler_rank >= 0
                    ? std::to_string(r.straggler_rank).c_str()
                    : "none");
  os << buf;
  if (!r.serve_spans.empty()) {
    os << "serving SLO:\n";
    for (const auto& [name, s] : r.serve_spans) {
      std::snprintf(buf, sizeof(buf),
                    "  %-16s %6lld spans  p50 %8.3f ms  p99 %8.3f ms  total "
                    "%.3f s\n",
                    name.c_str(), static_cast<long long>(s.count),
                    s.p50_seconds * 1e3, s.p99_seconds * 1e3, s.total_seconds);
      os << buf;
    }
  }
  if (r.serve_resilience.any()) {
    const ServeResilience& sr = r.serve_resilience;
    std::snprintf(buf, sizeof(buf),
                  "serving resilience: shed %lld overload / %lld deadline / "
                  "%lld degraded; %lld breaker trip(s), %lld failover(s), "
                  "%lld cache-only entry(ies)\n",
                  static_cast<long long>(sr.shed_overload),
                  static_cast<long long>(sr.shed_deadline),
                  static_cast<long long>(sr.shed_degraded),
                  static_cast<long long>(sr.breaker_trips),
                  static_cast<long long>(sr.failovers),
                  static_cast<long long>(sr.cache_only_entries));
    os << buf;
  }
  if (!r.recovery_timeline.empty()) {
    os << "recovery timeline:\n";
    for (const TimelineEvent& t : r.recovery_timeline) {
      std::snprintf(buf, sizeof(buf), "  +%9.3fs  %-18s", t.at_seconds,
                    t.name.c_str());
      os << buf;
      if (t.dur_seconds > 0) {
        std::snprintf(buf, sizeof(buf), " %8.3f ms", t.dur_seconds * 1e3);
        os << buf;
      }
      if (t.world >= 0) os << "  world=" << t.world;
      if (t.rank >= 0) os << "  rank=" << t.rank;
      os << "\n";
    }
  }
  std::snprintf(buf, sizeof(buf), "trace: %llu events, %llu dropped\n",
                static_cast<unsigned long long>(r.trace_events),
                static_cast<unsigned long long>(r.trace_dropped));
  os << buf;
  return os.str();
}

std::string report_to_json(const RunHealthReport& r) {
  std::string out;
  out.reserve(2048);
  out += "{\n  \"geofm_run_health\": 1,\n  \"steps\": " +
         std::to_string(r.steps) + ",\n  \"p50_step_seconds\": ";
  append_double(out, r.p50_step_seconds);
  out += ",\n  \"p99_step_seconds\": ";
  append_double(out, r.p99_step_seconds);
  out += ",\n  \"step_seconds_total\": ";
  append_double(out, r.step_seconds_total);
  out += ",\n  \"exposed_wait_seconds_total\": ";
  append_double(out, r.exposed_wait_seconds_total);
  out += ",\n  \"skew_ratio\": ";
  append_double(out, r.skew_ratio);
  out += ",\n  \"straggler_rank\": " + std::to_string(r.straggler_rank);
  out += ",\n  \"trace_events\": " + std::to_string(r.trace_events);
  out += ",\n  \"trace_dropped\": " + std::to_string(r.trace_dropped);
  out += ",\n  \"phase_seconds\": {";
  bool first = true;
  for (const auto& [phase, sec] : r.phase_seconds) {
    if (!first) out += ", ";
    first = false;
    append_quoted(out, phase);
    out += ": ";
    append_double(out, sec);
  }
  out += "},\n  \"ranks\": [";
  for (size_t i = 0; i < r.ranks.size(); ++i) {
    const RankHealth& h = r.ranks[i];
    if (i > 0) out += ',';
    out += "\n    {\"rank\": " + std::to_string(h.rank) +
           ", \"steps\": " + std::to_string(h.steps) +
           ", \"step_seconds\": ";
    append_double(out, h.step_seconds);
    out += ", \"p50_step_seconds\": ";
    append_double(out, h.p50_step_seconds);
    out += ", \"p99_step_seconds\": ";
    append_double(out, h.p99_step_seconds);
    out += ", \"exposed_wait_seconds\": ";
    append_double(out, h.exposed_wait_seconds);
    out += ", \"phase_seconds\": {";
    bool pfirst = true;
    for (const auto& [phase, sec] : h.phase_seconds) {
      if (!pfirst) out += ", ";
      pfirst = false;
      append_quoted(out, phase);
      out += ": ";
      append_double(out, sec);
    }
    out += "}}";
  }
  out += r.ranks.empty() ? "],\n" : "\n  ],\n";
  out += "  \"serve\": {";
  bool sfirst = true;
  for (const auto& [name, s] : r.serve_spans) {
    if (!sfirst) out += ',';
    sfirst = false;
    out += "\n    ";
    append_quoted(out, name);
    out += ": {\"count\": " + std::to_string(s.count) +
           ", \"total_seconds\": ";
    append_double(out, s.total_seconds);
    out += ", \"p50_seconds\": ";
    append_double(out, s.p50_seconds);
    out += ", \"p99_seconds\": ";
    append_double(out, s.p99_seconds);
    out += "}";
  }
  out += r.serve_spans.empty() ? "},\n" : "\n  },\n";
  out += "  \"serve_resilience\": {\"shed_overload\": " +
         std::to_string(r.serve_resilience.shed_overload) +
         ", \"shed_deadline\": " +
         std::to_string(r.serve_resilience.shed_deadline) +
         ", \"shed_degraded\": " +
         std::to_string(r.serve_resilience.shed_degraded) +
         ", \"breaker_trips\": " +
         std::to_string(r.serve_resilience.breaker_trips) +
         ", \"failovers\": " + std::to_string(r.serve_resilience.failovers) +
         ", \"cache_only_entries\": " +
         std::to_string(r.serve_resilience.cache_only_entries) + "},\n";
  out += "  \"recovery_timeline\": [";
  for (size_t i = 0; i < r.recovery_timeline.size(); ++i) {
    const TimelineEvent& t = r.recovery_timeline[i];
    if (i > 0) out += ',';
    out += "\n    {\"name\": ";
    append_quoted(out, t.name);
    out += ", \"at_seconds\": ";
    append_double(out, t.at_seconds);
    out += ", \"dur_seconds\": ";
    append_double(out, t.dur_seconds);
    out += ", \"rank\": " + std::to_string(t.rank) +
           ", \"world\": " + std::to_string(t.world) + "}";
  }
  out += r.recovery_timeline.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string prometheus_text(const std::vector<MetricSample>& samples) {
  std::string out;
  out.reserve(samples.size() * 96);
  for (const MetricSample& m : samples) {
    const std::string name = sanitize_metric_name(m.name);
    switch (m.kind) {
      case MetricSample::Kind::kCounter:
        out += "# TYPE " + name + " counter\n" + name + " ";
        append_double(out, m.value);
        out += '\n';
        break;
      case MetricSample::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n" + name + " ";
        append_double(out, m.value);
        out += '\n';
        break;
      case MetricSample::Kind::kHistogram: {
        out += "# TYPE " + name + " summary\n";
        const std::pair<const char*, double> qs[] = {
            {"0.5", m.p50}, {"0.9", m.p90}, {"0.99", m.p99}};
        for (const auto& [q, v] : qs) {
          out += name + "{quantile=\"" + q + "\"} ";
          append_double(out, v);
          out += '\n';
        }
        out += name + "_sum ";
        append_double(out, m.value);
        out += '\n';
        out += name + "_count " + std::to_string(m.count) + '\n';
        break;
      }
    }
  }
  return out;
}

std::string prometheus_text() {
  return prometheus_text(MetricsRegistry::instance().snapshot());
}

}  // namespace geofm::obs
