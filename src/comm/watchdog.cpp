#include "comm/watchdog.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_context.hpp"

namespace geofm::comm {
namespace detail {
namespace {

const char* kind_label(PendingOp::Kind k) {
  switch (k) {
    case PendingOp::Kind::kAllReduce: return "all_reduce";
    case PendingOp::Kind::kAllGather: return "all_gather";
    case PendingOp::Kind::kReduceScatter: return "reduce_scatter";
    case PendingOp::Kind::kBroadcast: return "broadcast";
  }
  return "collective";
}

// "(last heartbeat 2.1s ago)" from the rank's post-time clock; empty when
// the rank never posted (nothing to age against).
std::string heartbeat_note(const CommGroup& g, int group_rank,
                           std::chrono::steady_clock::time_point now) {
  const u64 last =
      g.heartbeat[static_cast<size_t>(group_rank)].last_ns.load(
          std::memory_order_relaxed);
  if (last == 0) return "";
  const double ago =
      std::chrono::duration<double>(
          now.time_since_epoch() - std::chrono::nanoseconds(last))
          .count();
  char buf[48];
  std::snprintf(buf, sizeof(buf), " (last heartbeat %.1fs ago)", ago);
  return buf;
}

void scan_group(CommGroup& g, double deadline,
                std::chrono::steady_clock::time_point now,
                StallDiagnosis& out) {
  std::vector<std::pair<u64, std::shared_ptr<PendingOp>>> ops;
  {
    std::lock_guard<std::mutex> lk(g.async_mu);
    if (g.aborted) return;
    ops.reserve(g.inflight.size());
    for (auto& [ticket, op] : g.inflight) ops.emplace_back(ticket, op);
  }
  std::ostringstream msg;
  for (auto& [ticket, op] : ops) {
    std::lock_guard<std::mutex> lk(op->mu);
    if (op->complete || op->arrived == 0 || op->arrived >= op->n) continue;
    const double age =
        std::chrono::duration<double>(now - op->first_join_tp).count();
    if (age <= deadline) continue;
    for (int r = 0; r < op->n; ++r) {
      if (op->joined[static_cast<size_t>(r)]) continue;
      const int gr = g.global_ranks[static_cast<size_t>(r)];
      out.suspects.push_back(gr);
      msg << (msg.tellp() > 0 ? "; " : "") << "rank " << gr << " stalled in "
          << kind_label(op->kind) << " ticket " << ticket << " for ";
      char sec[32];
      std::snprintf(sec, sizeof(sec), "%.1fs", age);
      msg << sec << heartbeat_note(g, r, now);
    }
  }
  const LeaderBarrier::Status bs = g.barrier.status();
  if (bs.arrived > 0 && bs.arrived < g.size &&
      bs.oldest_wait_seconds > deadline) {
    for (int r : bs.missing) {
      const int gr = g.global_ranks[static_cast<size_t>(r)];
      out.suspects.push_back(gr);
      msg << (msg.tellp() > 0 ? "; " : "") << "rank " << gr
          << " stalled in barrier for ";
      char sec[32];
      std::snprintf(sec, sizeof(sec), "%.1fs", bs.oldest_wait_seconds);
      msg << sec << heartbeat_note(g, r, now);
    }
  }
  if (msg.tellp() > 0) {
    if (!out.message.empty()) out.message += "; ";
    out.message += msg.str();
  }

  std::vector<std::shared_ptr<CommGroup>> children;
  {
    std::lock_guard<std::mutex> lk(g.split_mu);
    children.reserve(g.subgroups.size());
    for (auto& [key, sub] : g.subgroups) children.push_back(sub);
  }
  for (auto& sub : children) scan_group(*sub, deadline, now, out);
}

void watchdog_loop(CommGroup& g) {
  set_thread_rank(-1);
  obs::set_thread_label("comm.watchdog");
  WatchdogState& w = *g.watchdog;
  const double deadline = w.opts.deadline_seconds;
  const double poll =
      w.opts.poll_seconds > 0 ? w.opts.poll_seconds : deadline / 4;
  std::unique_lock<std::mutex> lk(w.mu);
  for (;;) {
    if (w.cv.wait_for(lk, std::chrono::duration<double>(poll),
                      [&] { return w.stop; })) {
      return;
    }
    lk.unlock();
    StallDiagnosis d;
    scan_group(g, deadline, std::chrono::steady_clock::now(), d);
    if (!d.suspects.empty()) {
      std::sort(d.suspects.begin(), d.suspects.end());
      d.suspects.erase(std::unique(d.suspects.begin(), d.suspects.end()),
                       d.suspects.end());
      {
        std::lock_guard<std::mutex> glk(g.async_mu);
        if (g.suspects.empty()) g.suspects = d.suspects;
      }
      obs::trace_instant("watchdog.abort", "comm");
      obs::MetricsRegistry::instance().counter("comm.watchdog_aborts").add(1);
      abort_group(g, d.message, "watchdog_abort");
      return;  // the group is dead; nothing left to watch
    }
    lk.lock();
  }
}

}  // namespace

StallDiagnosis scan_for_stalls(CommGroup& g, double deadline_seconds) {
  StallDiagnosis d;
  scan_group(g, deadline_seconds, std::chrono::steady_clock::now(), d);
  std::sort(d.suspects.begin(), d.suspects.end());
  d.suspects.erase(std::unique(d.suspects.begin(), d.suspects.end()),
                   d.suspects.end());
  return d;
}

void stop_watchdog(CommGroup& g) {
  if (!g.watchdog) return;
  {
    std::lock_guard<std::mutex> lk(g.watchdog->mu);
    g.watchdog->stop = true;
  }
  g.watchdog->cv.notify_all();
  if (g.watchdog->monitor.joinable()) g.watchdog->monitor.join();
}

}  // namespace detail

void Communicator::start_watchdog(const WatchdogOptions& opts) {
  GEOFM_CHECK(opts.deadline_seconds > 0,
              "watchdog deadline must be positive");
  auto& g = *group_;
  {
    std::lock_guard<std::mutex> lk(g.async_mu);
    if (g.watchdog) return;  // first configuration wins
    g.watchdog = std::make_unique<detail::WatchdogState>();
    g.watchdog->opts = opts;
  }
  // Launched outside async_mu: the monitor's first scan takes that lock.
  g.watchdog->monitor = std::thread([&g] { detail::watchdog_loop(g); });
}

}  // namespace geofm::comm
