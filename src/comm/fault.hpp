// Deterministic fault injection under the communicator.
//
// A `FaultPlan` is a seeded, declarative schedule of faults — rank kills,
// stalls, slow-rank latency, payload corruption — that a `FaultInjector`
// replays at two well-defined trigger points:
//
//   * the *collective boundary*: `Communicator::post` consults the
//     installed injector before each rendezvous, counting the rank's posts
//     across the root group and all of its sub-communicators (one global
//     deterministic sequence per rank), so `after_posts`-triggered events
//     fire at exactly the same collective on every run;
//   * the *driver step point*: `pretrain_mae_distributed` calls
//     `at_step_point(comm, step)` once per step between backward and the
//     optimizer step, where `step`-triggered events fire.
//
// Because thread-rank collectives execute in rank order and the injector's
// triggers depend only on (rank, post index | step), the same plan replays
// *bitwise* across runs: a corruption flips the same bit of the same
// element, a kill unwinds at the same collective, and survivors observe
// identical aborted state. That determinism is what lets the elastic
// recovery tests assert exact loss trajectories around a fault.
//
// This layer replaces the ad-hoc `fault_hook` callback
// (`DistributedPretrainConfig::fault_hook` is now a shim over a one-event
// callback plan).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/communicator.hpp"

namespace geofm::comm {

/// Thrown on the rank a FaultPlan kills: the injector aborts the group
/// (so peers unblock with `Aborted`) and then throws RankKilled to unwind
/// the rank's stack — the in-process analogue of a node dying. The elastic
/// supervisor treats RankKilled ranks as dead and Aborted ranks as
/// survivors.
class RankKilled : public Error {
 public:
  RankKilled(const std::string& what, int global_rank)
      : Error(what), global_rank_(global_rank) {}
  int global_rank() const { return global_rank_; }

 private:
  int global_rank_;
};

/// One scheduled fault. Triggers are exact: `step` matches the driver's
/// per-step fault point, `after_posts` matches the target rank's N-th
/// collective post (0-based, counted from injector construction). Ranks
/// are *global* (root-communicator) ranks; under `run_elastic` they are
/// the persistent rank identities of the initial world.
struct FaultEvent {
  enum class Kind {
    kKill,      // abort the group and unwind the rank with RankKilled
    kStall,     // one-shot sleep of `seconds` (a hang the watchdog catches)
    kSlowRank,  // add `seconds` latency to each of `posts_affected` posts
    kCorrupt,   // flip one deterministic payload bit at the post boundary
    kCallback,  // invoke `callback(comm, step)` at the step point
  };

  Kind kind = Kind::kKill;
  int rank = 0;         // target global rank; -1 = every rank (kCallback)
  i64 step = -1;        // trigger at the driver step point of this step...
  i64 after_posts = -1;  // ...or at the rank's N-th collective post
  double seconds = 0;   // kStall: sleep length; kSlowRank: per-post delay
  i64 posts_affected = 0;  // kSlowRank: posts slowed from trigger (0 = all)
  std::function<void(Communicator&, i64)> callback;  // kCallback only
                                                     // (every step if
                                                     // step == -1)

  static FaultEvent kill_at_step(int rank, i64 step);
  static FaultEvent kill_at_post(int rank, i64 after_posts);
  static FaultEvent stall_at_step(int rank, i64 step, double seconds);
  static FaultEvent stall_at_post(int rank, i64 after_posts, double seconds);
  static FaultEvent slow_rank(int rank, i64 after_posts, double seconds,
                              i64 posts_affected = 0);
  static FaultEvent corrupt_at_post(int rank, i64 after_posts);
  static FaultEvent callback_every_step(
      std::function<void(Communicator&, i64)> fn);
};

/// A seeded schedule of faults. The seed feeds corruption-site selection;
/// the event list is replayed exactly.
struct FaultPlan {
  u64 seed = 0;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
};

/// Thread-safe replayer of one FaultPlan. Install on a communicator with
/// `Communicator::install_fault_injector` (covers the group and all of its
/// sub-communicators) and/or hand to the training driver via
/// `DistributedPretrainConfig::fault_injector`. One injector instance holds
/// the per-rank post counters and fired state for one run (or one elastic
/// attempt); reuse across runs would shift `after_posts` triggers.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Driver integration: every rank calls this once per training step at
  /// the mid-step fault point. Executes `step`-triggered events targeting
  /// `comm.global_rank()`: kStall sleeps, kCallback invokes the hook, and
  /// kKill aborts `comm` and throws RankKilled.
  void at_step_point(Communicator& comm, i64 step);

  /// Comm integration (called by Communicator::post with the group lock
  /// released): advances `global_rank`'s post counter, applies any
  /// triggered stall/slow delays (sleeping inline) and payload corruption
  /// (in place on the rank's contribution), and reports whether the rank
  /// must die at this post. On a kill the communicator aborts the group
  /// and throws RankKilled with the returned reason.
  struct PostFault {
    bool kill = false;
    std::string kill_reason;
  };
  PostFault before_post(int global_rank, const char* op_label, float* payload,
                        i64 count);

  /// fired()[i] is true once plan().events[i] has triggered (one-shot
  /// events only; an every-step kCallback never reports fired). The
  /// elastic supervisor uses this to carry the un-fired remainder of a
  /// plan into the next attempt.
  std::vector<bool> fired() const;

 private:
  mutable std::mutex mu_;
  FaultPlan plan_;
  std::vector<bool> fired_;
  std::map<int, u64> posts_;  // per-global-rank post counter
};

}  // namespace geofm::comm
