// Deterministic fault injection under the communicator.
//
// A `FaultPlan` is a seeded, declarative schedule of faults — rank kills,
// stalls, slow-rank latency, payload corruption — that a `FaultInjector`
// replays at two well-defined trigger points:
//
//   * the *collective boundary*: `Communicator::post` consults the
//     installed injector before each rendezvous, counting the rank's posts
//     across the root group and all of its sub-communicators (one global
//     deterministic sequence per rank), so `after_posts`-triggered events
//     fire at exactly the same collective on every run;
//   * the *driver step point*: `pretrain_mae_distributed` calls
//     `at_step_point(comm, step)` once per step between backward and the
//     optimizer step, where `step`-triggered events fire.
//
// Because thread-rank collectives execute in rank order and the injector's
// triggers depend only on (rank, post index | step), the same plan replays
// *bitwise* across runs: a corruption flips the same bit of the same
// element, a kill unwinds at the same collective, and survivors observe
// identical aborted state. That determinism is what lets the elastic
// recovery tests assert exact loss trajectories around a fault.
//
// This layer replaces the ad-hoc `fault_hook` callback
// (`DistributedPretrainConfig::fault_hook` is now a shim over a one-event
// callback plan).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"

namespace geofm::comm {

/// Thrown on the rank a FaultPlan kills: the injector aborts the group
/// (so peers unblock with `Aborted`) and then throws RankKilled to unwind
/// the rank's stack — the in-process analogue of a node dying. The elastic
/// supervisor treats RankKilled ranks as dead and Aborted ranks as
/// survivors.
class RankKilled : public Error {
 public:
  RankKilled(const std::string& what, int global_rank)
      : Error(what), global_rank_(global_rank) {}
  int global_rank() const { return global_rank_; }

 private:
  int global_rank_;
};

/// Storage-path trigger points (comm faults test the network path; IO
/// faults test the checkpoint storage path the same way). The ckpt layer
/// consults the installed injector at three seams: every primary shard
/// write (`kWrite`, counted per writing rank), every shard-record read at
/// restore (`kRead`, counted per restoring rank), and every file copy the
/// checkpoint uploader performs (`kUpload`, counted on rank 0 — there is
/// one uploader per run). `kRender` is the data-path seam: the dataloader
/// consults the injector before every batch render, triggered by the
/// *global batch ordinal* (epoch * batches_per_epoch + batch index) —
/// ordinal-keyed rather than counter-keyed so a watchdog re-render or a
/// respawned worker never shifts later triggers.
enum class IoPath { kNone, kWrite, kRead, kUpload, kRender };

/// One scheduled fault. Triggers are exact: `step` matches the driver's
/// per-step fault point, `after_posts` matches the target rank's N-th
/// collective post, and `after_io` matches the rank's N-th IO operation
/// on `io_path` (all 0-based, counted from injector construction). Ranks
/// are *global* (root-communicator) ranks; under `run_elastic` they are
/// the persistent rank identities of the initial world.
struct FaultEvent {
  enum class Kind {
    kKill,      // abort the group and unwind the rank with RankKilled
    kStall,     // one-shot sleep of `seconds` (a hang the watchdog catches)
    kSlowRank,  // add `seconds` latency to each of `posts_affected` posts
    kCorrupt,   // flip one deterministic payload bit at the post boundary
    kCallback,  // invoke `callback(comm, step)` at the step point
    // ----- storage-path faults (consulted by src/ckpt/) -----------------
    kIoFail,        // the IO op throws before any bytes land
    kIoTorn,        // a short write: truncated bytes land, then the op fails
    kIoSlow,        // add `seconds` latency to each of `ops_affected` ops
    kIoUnreadable,  // a read refuses the shard (unreadable at restore)
    // ----- data-path faults (consulted by data::DataLoader) --------------
    kLoaderWorkerKill,  // the worker rendering this batch dies (respawned)
    kLoaderSlowRender,  // add `seconds` latency to `ops_affected` renders
    kLoaderPoison,      // one sample of this batch renders non-finite
  };

  Kind kind = Kind::kKill;
  int rank = 0;         // target global rank; -1 = every rank (kCallback,
                        // and IO events matched on any rank's counter)
  i64 step = -1;        // trigger at the driver step point of this step...
  i64 after_posts = -1;  // ...or at the rank's N-th collective post
  double seconds = 0;   // kStall: sleep length; kSlowRank/kIoSlow: per-op
  i64 posts_affected = 0;  // kSlowRank: posts slowed from trigger (0 = all)
  std::function<void(Communicator&, i64)> callback;  // kCallback only
                                                     // (every step if
                                                     // step == -1)
  // IO-kind trigger: the rank's `after_io`-th op on `io_path`.
  IoPath io_path = IoPath::kNone;
  i64 after_io = -1;
  i64 ops_affected = 1;  // kIoFail/kIoSlow: ops hit from trigger (0 = all)

  static FaultEvent kill_at_step(int rank, i64 step);
  static FaultEvent kill_at_post(int rank, i64 after_posts);
  static FaultEvent stall_at_step(int rank, i64 step, double seconds);
  static FaultEvent stall_at_post(int rank, i64 after_posts, double seconds);
  static FaultEvent slow_rank(int rank, i64 after_posts, double seconds,
                              i64 posts_affected = 0);
  static FaultEvent corrupt_at_post(int rank, i64 after_posts);
  static FaultEvent callback_every_step(
      std::function<void(Communicator&, i64)> fn);
  // Storage-path factories. Write faults name the saving rank; restore
  // faults may use rank -1 (whichever rank's read counter hits `after_io`
  // first — use explicit ranks when replay determinism matters); upload
  // faults always target the run's single uploader (rank 0's).
  static FaultEvent io_fail_write(int rank, i64 after_io,
                                  i64 ops_affected = 1);
  static FaultEvent io_torn_write(int rank, i64 after_io);
  static FaultEvent io_slow_write(int rank, i64 after_io, double seconds,
                                  i64 ops_affected = 1);
  static FaultEvent io_unreadable_at_restore(int rank, i64 after_io);
  static FaultEvent io_fail_upload(i64 after_io, i64 ops_affected = 1);
  static FaultEvent io_torn_upload(i64 after_io);
  static FaultEvent io_slow_upload(i64 after_io, double seconds,
                                   i64 ops_affected = 1);
  // Data-path factories. `batch` is the global batch ordinal (epoch *
  // batches_per_epoch + batch index) of the rank's loader; rank -1 = any.
  static FaultEvent loader_worker_kill(int rank, i64 batch);
  static FaultEvent loader_slow_render(int rank, i64 batch, double seconds,
                                       i64 ops_affected = 1);
  static FaultEvent loader_poison(int rank, i64 batch);

  bool is_io() const {
    return kind == Kind::kIoFail || kind == Kind::kIoTorn ||
           kind == Kind::kIoSlow || kind == Kind::kIoUnreadable;
  }
  bool is_loader() const {
    return kind == Kind::kLoaderWorkerKill ||
           kind == Kind::kLoaderSlowRender || kind == Kind::kLoaderPoison;
  }
};

/// A seeded schedule of faults. The seed feeds corruption-site selection;
/// the event list is replayed exactly.
struct FaultPlan {
  u64 seed = 0;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
};

/// Thread-safe replayer of one FaultPlan. Install on a communicator with
/// `Communicator::install_fault_injector` (covers the group and all of its
/// sub-communicators) and/or hand to the training driver via
/// `DistributedPretrainConfig::fault_injector`. One injector instance holds
/// the per-rank post counters and fired state for one run (or one elastic
/// attempt); reuse across runs would shift `after_posts` triggers.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Driver integration: every rank calls this once per training step at
  /// the mid-step fault point. Executes `step`-triggered events targeting
  /// `comm.global_rank()`: kStall sleeps, kCallback invokes the hook, and
  /// kKill aborts `comm` and throws RankKilled.
  void at_step_point(Communicator& comm, i64 step);

  /// Comm integration (called by Communicator::post with the group lock
  /// released): advances `global_rank`'s post counter, applies any
  /// triggered stall/slow delays (sleeping inline) and payload corruption
  /// (in place on the rank's contribution), and reports whether the rank
  /// must die at this post. On a kill the communicator aborts the group
  /// and throws RankKilled with the returned reason.
  struct PostFault {
    bool kill = false;
    std::string kill_reason;
  };
  PostFault before_post(int global_rank, const char* op_label, float* payload,
                        i64 count);

  /// Storage integration (called by src/ckpt at each IO seam): advances
  /// `rank`'s op counter on `path`, sleeps inline for any triggered
  /// kIoSlow delay (reported in `delay_seconds` for accounting), and
  /// reports faults the *caller* applies at its own seam: throw on
  /// `fail`/`unreadable`, or land a truncated file before throwing on
  /// `torn`. Events with rank -1 match any rank's counter on the path.
  struct IoFault {
    bool fail = false;
    bool torn = false;
    bool unreadable = false;
    double delay_seconds = 0;
    std::string reason;
    bool any() const { return fail || torn || unreadable; }
  };
  IoFault before_io(IoPath path, int rank);

  /// Data-path integration (called by data::DataLoader before each batch
  /// render): matches loader events against `(rank, batch_ordinal)` —
  /// the global batch ordinal, not an op counter, so re-renders after a
  /// worker death or a watchdog requeue never shift later triggers.
  /// Sleeps inline for any triggered kLoaderSlowRender delay; the caller
  /// applies `kill_worker` (unwind + respawn the worker thread) and
  /// `poison` (render one sample non-finite, site picked by
  /// `poison_site`) at its own seam.
  struct LoaderFault {
    bool kill_worker = false;
    bool poison = false;
    u64 poison_site = 0;  // hash selecting the poisoned sample row
    double delay_seconds = 0;
    std::string reason;
    bool any() const { return kill_worker || poison || delay_seconds > 0; }
  };
  LoaderFault before_render(int rank, i64 batch_ordinal);

  /// True iff the plan holds any loader-path event — lets the dataloader
  /// skip the seam (and the per-sample poison scan) entirely on clean runs.
  bool has_loader_events() const { return has_loader_events_; }

  /// fired()[i] is true once plan().events[i] has triggered (one-shot
  /// events only; an every-step kCallback never reports fired). The
  /// elastic supervisor uses this to carry the un-fired remainder of a
  /// plan into the next attempt.
  std::vector<bool> fired() const;

  /// The subset of plan().events that actually fired, as a plan that
  /// replays them (same seed, same triggers). Feed to `plan_to_json` to
  /// capture a run's realized fault schedule.
  FaultPlan fired_plan() const;

 private:
  mutable std::mutex mu_;
  FaultPlan plan_;
  std::vector<bool> fired_;
  bool has_io_events_ = false;
  bool has_loader_events_ = false;
  std::map<int, u64> posts_;  // per-global-rank post counter
  std::map<std::pair<int, int>, u64> io_ops_;  // (path, rank) op counter
};

/// Serialize a plan to a JSON trace (stable field names, doubles printed
/// round-trip exact) and parse one back, so the fault schedule realized by
/// one run — `FaultInjector::fired_plan()` — can be replayed bitwise in
/// another. kCallback events hold code and cannot be serialized (throws
/// `Error`); every other kind round-trips exactly.
std::string plan_to_json(const FaultPlan& plan);
FaultPlan plan_from_json(const std::string& json);

}  // namespace geofm::comm
