// FaultPlan <-> JSON trace. `plan_to_json` captures a plan (typically
// `FaultInjector::fired_plan()` — the schedule a run actually realized)
// in a stable text form; `plan_from_json` loads it back for a bitwise
// replay. The format is a plain JSON object:
//
//   {"seed": 7,
//    "events": [{"kind": "kill", "rank": 1, "step": 4, "after_posts": -1,
//                "seconds": 0, "posts_affected": 0, "io_path": "none",
//                "after_io": -1, "ops_affected": 1}, ...]}
//
// Every trigger field is always emitted so traces diff cleanly; doubles
// are printed with %.17g (round-trip exact). The parser is a minimal
// recursive-descent reader for exactly this shape — objects, arrays,
// strings, and numbers; unknown keys are rejected loudly rather than
// silently dropped, since a misspelled trigger field would otherwise
// replay a different schedule.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "comm/fault.hpp"

namespace geofm::comm {

namespace {

const char* kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kKill:
      return "kill";
    case FaultEvent::Kind::kStall:
      return "stall";
    case FaultEvent::Kind::kSlowRank:
      return "slow_rank";
    case FaultEvent::Kind::kCorrupt:
      return "corrupt";
    case FaultEvent::Kind::kCallback:
      return "callback";
    case FaultEvent::Kind::kIoFail:
      return "io_fail";
    case FaultEvent::Kind::kIoTorn:
      return "io_torn";
    case FaultEvent::Kind::kIoSlow:
      return "io_slow";
    case FaultEvent::Kind::kIoUnreadable:
      return "io_unreadable";
    case FaultEvent::Kind::kLoaderWorkerKill:
      return "loader_worker_kill";
    case FaultEvent::Kind::kLoaderSlowRender:
      return "loader_slow_render";
    case FaultEvent::Kind::kLoaderPoison:
      return "loader_poison";
  }
  return "kill";
}

FaultEvent::Kind kind_from_name(const std::string& name) {
  if (name == "kill") return FaultEvent::Kind::kKill;
  if (name == "stall") return FaultEvent::Kind::kStall;
  if (name == "slow_rank") return FaultEvent::Kind::kSlowRank;
  if (name == "corrupt") return FaultEvent::Kind::kCorrupt;
  if (name == "io_fail") return FaultEvent::Kind::kIoFail;
  if (name == "io_torn") return FaultEvent::Kind::kIoTorn;
  if (name == "io_slow") return FaultEvent::Kind::kIoSlow;
  if (name == "io_unreadable") return FaultEvent::Kind::kIoUnreadable;
  if (name == "loader_worker_kill") return FaultEvent::Kind::kLoaderWorkerKill;
  if (name == "loader_slow_render") return FaultEvent::Kind::kLoaderSlowRender;
  if (name == "loader_poison") return FaultEvent::Kind::kLoaderPoison;
  throw Error("fault trace: unknown event kind \"" + name + "\"");
}

const char* path_name(IoPath path) {
  switch (path) {
    case IoPath::kNone:
      return "none";
    case IoPath::kWrite:
      return "write";
    case IoPath::kRead:
      return "read";
    case IoPath::kUpload:
      return "upload";
    case IoPath::kRender:
      return "render";
  }
  return "none";
}

IoPath path_from_name(const std::string& name) {
  if (name == "none") return IoPath::kNone;
  if (name == "write") return IoPath::kWrite;
  if (name == "read") return IoPath::kRead;
  if (name == "upload") return IoPath::kUpload;
  if (name == "render") return IoPath::kRender;
  throw Error("fault trace: unknown io_path \"" + name + "\"");
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // %.17g prints integral doubles as e.g. "2" — valid JSON, parses back
  // exactly, so no decoration needed.
  return buf;
}

// ----- minimal JSON reader --------------------------------------------

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    GEOFM_CHECK(pos_ < text_.size(), "fault trace: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    GEOFM_CHECK(peek() == c, "fault trace: expected '" + std::string(1, c) +
                                 "' at offset " + std::to_string(pos_));
    ++pos_;
  }

  bool consume_if(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string read_string() {
    expect('"');
    std::string out;
    while (true) {
      GEOFM_CHECK(pos_ < text_.size(),
                  "fault trace: unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        GEOFM_CHECK(pos_ < text_.size(),
                    "fault trace: unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out.push_back(esc);
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          default:
            throw Error("fault trace: unsupported escape in string");
        }
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  double read_number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    GEOFM_CHECK(end != start, "fault trace: expected a number at offset " +
                                  std::to_string(pos_));
    pos_ += static_cast<size_t>(end - start);
    return v;
  }

  u64 read_u64() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    u64 v = std::strtoull(start, &end, 10);
    GEOFM_CHECK(end != start,
                "fault trace: expected an unsigned integer at offset " +
                    std::to_string(pos_));
    pos_ += static_cast<size_t>(end - start);
    return v;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

FaultEvent read_event(JsonReader& r) {
  FaultEvent e;
  r.expect('{');
  bool first = true;
  while (r.peek() != '}') {
    if (!first) r.expect(',');
    first = false;
    const std::string key = r.read_string();
    r.expect(':');
    if (key == "kind") {
      e.kind = kind_from_name(r.read_string());
    } else if (key == "io_path") {
      e.io_path = path_from_name(r.read_string());
    } else if (key == "rank") {
      e.rank = static_cast<int>(r.read_number());
    } else if (key == "step") {
      e.step = static_cast<i64>(r.read_number());
    } else if (key == "after_posts") {
      e.after_posts = static_cast<i64>(r.read_number());
    } else if (key == "seconds") {
      e.seconds = r.read_number();
    } else if (key == "posts_affected") {
      e.posts_affected = static_cast<i64>(r.read_number());
    } else if (key == "after_io") {
      e.after_io = static_cast<i64>(r.read_number());
    } else if (key == "ops_affected") {
      e.ops_affected = static_cast<i64>(r.read_number());
    } else {
      throw Error("fault trace: unknown event field \"" + key + "\"");
    }
  }
  r.expect('}');
  return e;
}

}  // namespace

std::string plan_to_json(const FaultPlan& plan) {
  std::string out = "{\"seed\": " + std::to_string(plan.seed) +
                    ",\n \"events\": [";
  bool first = true;
  for (const auto& e : plan.events) {
    GEOFM_CHECK(e.kind != FaultEvent::Kind::kCallback,
                "fault trace: kCallback events hold code and cannot be "
                "serialized");
    if (!first) out += ",";
    first = false;
    out += "\n  {\"kind\": \"" + std::string(kind_name(e.kind)) + "\"";
    out += ", \"rank\": " + std::to_string(e.rank);
    out += ", \"step\": " + std::to_string(e.step);
    out += ", \"after_posts\": " + std::to_string(e.after_posts);
    out += ", \"seconds\": " + format_double(e.seconds);
    out += ", \"posts_affected\": " + std::to_string(e.posts_affected);
    out += ", \"io_path\": \"" + std::string(path_name(e.io_path)) + "\"";
    out += ", \"after_io\": " + std::to_string(e.after_io);
    out += ", \"ops_affected\": " + std::to_string(e.ops_affected);
    out += "}";
  }
  out += first ? "]}\n" : "\n ]}\n";
  return out;
}

FaultPlan plan_from_json(const std::string& json) {
  JsonReader r(json);
  FaultPlan plan;
  r.expect('{');
  bool first = true;
  while (r.peek() != '}') {
    if (!first) r.expect(',');
    first = false;
    const std::string key = r.read_string();
    r.expect(':');
    if (key == "seed") {
      plan.seed = r.read_u64();
    } else if (key == "events") {
      r.expect('[');
      while (r.peek() != ']') {
        plan.events.push_back(read_event(r));
        if (r.peek() != ']') r.expect(',');
      }
      r.expect(']');
    } else {
      throw Error("fault trace: unknown top-level field \"" + key + "\"");
    }
  }
  r.expect('}');
  GEOFM_CHECK(r.at_end(), "fault trace: trailing content after plan");
  return plan;
}

}  // namespace geofm::comm
