#include "comm/communicator.hpp"

#include <algorithm>
#include <thread>

namespace geofm::comm {
namespace detail {

LeaderBarrier::LeaderBarrier(int n) : n_(n) { GEOFM_CHECK(n > 0); }

void LeaderBarrier::arrive(const std::function<void()>& leader) {
  std::unique_lock<std::mutex> lk(mu_);
  if (++arrived_ == n_) {
    if (leader) leader();
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    const u64 gen = generation_;
    cv_.wait(lk, [&] { return generation_ != gen; });
  }
}

CommGroup::CommGroup(int n)
    : size(n),
      barrier(n),
      src(static_cast<size_t>(n), nullptr),
      dst(static_cast<size_t>(n), nullptr),
      counts(static_cast<size_t>(n), 0),
      colors(static_cast<size_t>(n), 0),
      keys(static_cast<size_t>(n), 0) {}

}  // namespace detail

Communicator::Communicator(std::shared_ptr<detail::CommGroup> group, int rank)
    : group_(std::move(group)), rank_(rank) {
  GEOFM_CHECK(group_ != nullptr);
  GEOFM_CHECK(rank_ >= 0 && rank_ < group_->size, "rank out of range");
}

void Communicator::barrier() { group_->barrier.arrive(); }

void Communicator::all_reduce(Tensor& t, ReduceOp op) {
  auto& g = *group_;
  const i64 n = t.numel();
  g.src[static_cast<size_t>(rank_)] = t.data();
  g.counts[static_cast<size_t>(rank_)] = n;

  // Phase A: everyone published; the leader validates and reduces into
  // scratch in rank order (deterministic float summation).
  g.barrier.arrive([&] {
    for (int r = 0; r < g.size; ++r) {
      GEOFM_CHECK(g.counts[static_cast<size_t>(r)] == n,
                  "all_reduce size mismatch across ranks");
    }
    g.scratch.assign(static_cast<size_t>(n), 0.f);
    if (op == ReduceOp::kMax) {
      std::copy_n(g.src[0], n, g.scratch.data());
      for (int r = 1; r < g.size; ++r) {
        const float* s = g.src[static_cast<size_t>(r)];
        for (i64 i = 0; i < n; ++i) {
          g.scratch[static_cast<size_t>(i)] =
              std::max(g.scratch[static_cast<size_t>(i)], s[i]);
        }
      }
    } else {
      for (int r = 0; r < g.size; ++r) {
        const float* s = g.src[static_cast<size_t>(r)];
        for (i64 i = 0; i < n; ++i) g.scratch[static_cast<size_t>(i)] += s[i];
      }
      if (op == ReduceOp::kAvg) {
        const float inv = 1.f / static_cast<float>(g.size);
        for (float& v : g.scratch) v *= inv;
      }
    }
  });

  // Phase B: everyone copies the result, then leaves together so scratch
  // can be reused by the next collective.
  std::copy_n(g.scratch.data(), n, t.data());
  g.barrier.arrive();
}

void Communicator::all_gather(const Tensor& shard, Tensor& out) {
  auto& g = *group_;
  const i64 n = shard.numel();
  GEOFM_CHECK(out.numel() == n * g.size, "all_gather output size mismatch");
  g.src[static_cast<size_t>(rank_)] = shard.data();
  g.counts[static_cast<size_t>(rank_)] = n;

  g.barrier.arrive([&] {
    for (int r = 0; r < g.size; ++r) {
      GEOFM_CHECK(g.counts[static_cast<size_t>(r)] == n,
                  "all_gather shard size mismatch across ranks");
    }
  });

  float* o = out.data();
  for (int r = 0; r < g.size; ++r) {
    std::copy_n(g.src[static_cast<size_t>(r)], n, o + static_cast<i64>(r) * n);
  }
  g.barrier.arrive();
}

void Communicator::reduce_scatter(const Tensor& in, Tensor& shard,
                                  ReduceOp op) {
  auto& g = *group_;
  const i64 chunk = shard.numel();
  GEOFM_CHECK(in.numel() == chunk * g.size, "reduce_scatter size mismatch");
  g.src[static_cast<size_t>(rank_)] = in.data();
  g.counts[static_cast<size_t>(rank_)] = in.numel();

  g.barrier.arrive([&] {
    for (int r = 0; r < g.size; ++r) {
      GEOFM_CHECK(g.counts[static_cast<size_t>(r)] == chunk * g.size,
                  "reduce_scatter input size mismatch across ranks");
    }
  });

  // Each rank reduces its own chunk across all peers, in rank order.
  const i64 offset = static_cast<i64>(rank_) * chunk;
  float* o = shard.data();
  std::fill_n(o, chunk, 0.f);
  for (int r = 0; r < g.size; ++r) {
    const float* s = g.src[static_cast<size_t>(r)] + offset;
    for (i64 i = 0; i < chunk; ++i) o[i] += s[i];
  }
  if (op == ReduceOp::kAvg) {
    const float inv = 1.f / static_cast<float>(g.size);
    for (i64 i = 0; i < chunk; ++i) o[i] *= inv;
  }
  GEOFM_CHECK(op != ReduceOp::kMax, "reduce_scatter kMax not supported");
  g.barrier.arrive();
}

void Communicator::broadcast(Tensor& t, int root) {
  auto& g = *group_;
  GEOFM_CHECK(root >= 0 && root < g.size, "broadcast root out of range");
  const i64 n = t.numel();
  g.src[static_cast<size_t>(rank_)] = t.data();
  g.counts[static_cast<size_t>(rank_)] = n;

  g.barrier.arrive([&] {
    for (int r = 0; r < g.size; ++r) {
      GEOFM_CHECK(g.counts[static_cast<size_t>(r)] == n,
                  "broadcast size mismatch across ranks");
    }
  });

  if (rank_ != root) {
    std::copy_n(g.src[static_cast<size_t>(root)], n, t.data());
  }
  g.barrier.arrive();
}

Communicator Communicator::split(int color, int key) {
  auto& g = *group_;
  g.colors[static_cast<size_t>(rank_)] = color;
  g.keys[static_cast<size_t>(rank_)] = key;

  u64 seq = 0;
  g.barrier.arrive([&] {
    std::lock_guard<std::mutex> lk(g.split_mu);
    const u64 this_seq = g.split_seq++;
    // Group ranks by color, order by (key, old rank).
    std::map<int, std::vector<int>> by_color;
    for (int r = 0; r < g.size; ++r) {
      by_color[g.colors[static_cast<size_t>(r)]].push_back(r);
    }
    for (auto& [c, ranks] : by_color) {
      std::stable_sort(ranks.begin(), ranks.end(), [&](int a, int b) {
        return g.keys[static_cast<size_t>(a)] < g.keys[static_cast<size_t>(b)];
      });
      g.subgroups[{this_seq, c}] =
          std::make_shared<detail::CommGroup>(static_cast<int>(ranks.size()));
      g.members[{this_seq, c}] = ranks;
    }
  });

  {
    // Every rank observes the same sequence number: it is the value the
    // leader consumed, i.e. split_seq - 1 after exactly one split.
    std::lock_guard<std::mutex> lk(g.split_mu);
    seq = g.split_seq - 1;
  }

  std::shared_ptr<detail::CommGroup> sub;
  int sub_rank = -1;
  {
    std::lock_guard<std::mutex> lk(g.split_mu);
    sub = g.subgroups.at({seq, color});
    const auto& ranks = g.members.at({seq, color});
    for (size_t i = 0; i < ranks.size(); ++i) {
      if (ranks[i] == rank_) sub_rank = static_cast<int>(i);
    }
  }
  GEOFM_CHECK(sub_rank >= 0, "split bookkeeping failure");
  g.barrier.arrive();  // keep registries alive until everyone has resolved
  return Communicator(sub, sub_rank);
}

void run_ranks(int n_ranks, const std::function<void(Communicator&)>& fn) {
  GEOFM_CHECK(n_ranks > 0);
  auto group = std::make_shared<detail::CommGroup>(n_ranks);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n_ranks));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(group, r);
      try {
        fn(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace comm::geofm
