#include "comm/communicator.hpp"

#include <algorithm>
#include <numeric>
#include <thread>

#include "comm/fault.hpp"
#include "comm/watchdog.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_context.hpp"

namespace geofm::comm {
namespace {

// Static span names per collective kind (trace names must be literals).
const char* post_name(detail::PendingOp::Kind k) {
  using Kind = detail::PendingOp::Kind;
  switch (k) {
    case Kind::kAllReduce: return "comm.post.all_reduce";
    case Kind::kAllGather: return "comm.post.all_gather";
    case Kind::kReduceScatter: return "comm.post.reduce_scatter";
    case Kind::kBroadcast: return "comm.post.broadcast";
  }
  return "comm.post";
}

const char* wait_name(detail::PendingOp::Kind k) {
  using Kind = detail::PendingOp::Kind;
  switch (k) {
    case Kind::kAllReduce: return "comm.wait.all_reduce";
    case Kind::kAllGather: return "comm.wait.all_gather";
    case Kind::kReduceScatter: return "comm.wait.reduce_scatter";
    case Kind::kBroadcast: return "comm.wait.broadcast";
  }
  return "comm.wait";
}

const char* execute_name(detail::PendingOp::Kind k) {
  using Kind = detail::PendingOp::Kind;
  switch (k) {
    case Kind::kAllReduce: return "comm.execute.all_reduce";
    case Kind::kAllGather: return "comm.execute.all_gather";
    case Kind::kReduceScatter: return "comm.execute.reduce_scatter";
    case Kind::kBroadcast: return "comm.execute.broadcast";
  }
  return "comm.execute";
}

const char* op_label(detail::PendingOp::Kind k) {
  using Kind = detail::PendingOp::Kind;
  switch (k) {
    case Kind::kAllReduce: return "all_reduce";
    case Kind::kAllGather: return "all_gather";
    case Kind::kReduceScatter: return "reduce_scatter";
    case Kind::kBroadcast: return "broadcast";
  }
  return "collective";
}

}  // namespace

namespace detail {

LeaderBarrier::LeaderBarrier(int n)
    : n_(n), in_(static_cast<size_t>(n), 0) {
  GEOFM_CHECK(n > 0);
}

void LeaderBarrier::arrive(int rank, const std::function<void()>& leader) {
  std::unique_lock<std::mutex> lk(mu_);
  if (aborted_) throw Aborted("communicator aborted: " + abort_reason_);
  if (arrived_ == 0) round_start_ = std::chrono::steady_clock::now();
  in_[static_cast<size_t>(rank)] = 1;
  if (++arrived_ == n_) {
    if (leader) leader();
    arrived_ = 0;
    std::fill(in_.begin(), in_.end(), 0);
    ++generation_;
    cv_.notify_all();
  } else {
    const u64 gen = generation_;
    cv_.wait(lk, [&] { return generation_ != gen || aborted_; });
    if (generation_ == gen && aborted_) {
      throw Aborted("communicator aborted: " + abort_reason_);
    }
  }
}

void LeaderBarrier::abort(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!aborted_) {
      aborted_ = true;
      abort_reason_ = reason;
    }
  }
  cv_.notify_all();
}

LeaderBarrier::Status LeaderBarrier::status() const {
  std::lock_guard<std::mutex> lk(mu_);
  Status s;
  s.arrived = arrived_;
  if (arrived_ > 0) {
    s.oldest_wait_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      round_start_)
            .count();
    for (int r = 0; r < n_; ++r) {
      if (!in_[static_cast<size_t>(r)]) s.missing.push_back(r);
    }
  }
  return s;
}

PendingOp::PendingOp(Kind k, ReduceOp r, int n_ranks)
    : kind(k),
      red(r),
      n(n_ranks),
      src(static_cast<size_t>(n_ranks), nullptr),
      dst(static_cast<size_t>(n_ranks), nullptr),
      counts(static_cast<size_t>(n_ranks), 0),
      joined(static_cast<size_t>(n_ranks), 0) {}

CommGroup::CommGroup(int n)
    : size(n),
      barrier(n),
      global_ranks(static_cast<size_t>(n)),
      next_ticket(static_cast<size_t>(n), 0),
      heartbeat(std::make_unique<RankClock[]>(static_cast<size_t>(n))),
      colors(static_cast<size_t>(n), 0),
      keys(static_cast<size_t>(n), 0) {
  std::iota(global_ranks.begin(), global_ranks.end(), 0);
}

CommGroup::~CommGroup() { stop_watchdog(*this); }

// Recursively poisons a group and every subgroup split from it. The
// aborted flag is published under async_mu (post checks it there before
// inserting a new op), so no op can join the inflight map after the sweep
// below misses it; the barrier is poisoned last so a rank released from a
// collective cannot re-block on a rendezvous that will never fill.
void abort_group(CommGroup& g, const std::string& reason,
                 const char* flight_kind) {
  std::vector<std::shared_ptr<PendingOp>> ops;
  std::vector<u64> tickets;
  std::vector<int> suspects;
  bool first_abort = false;
  {
    std::lock_guard<std::mutex> lk(g.async_mu);
    if (!g.aborted) {
      g.aborted = true;
      g.abort_reason = reason;
      first_abort = true;
    }
    ops.reserve(g.inflight.size());
    for (auto& [ticket, op] : g.inflight) {
      ops.push_back(op);
      tickets.push_back(ticket);
    }
    suspects = g.suspects;
  }
  // Flight recorder: the first abort of a cascade freezes the rendezvous
  // state — who joined each in-flight op, who is missing, how long the
  // oldest waiter has been stuck — *before* the poisoning below destroys
  // it. The capture itself happens after the sweep so blocked ranks are
  // released first (evidence gathering must never delay the abort).
  const bool flight =
      first_abort && obs::FlightRecorder::instance().enabled();
  std::vector<obs::InflightOpState> frozen;
  std::vector<obs::BarrierState> frozen_barriers;
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < ops.size(); ++i) {
    auto& op = ops[i];
    std::lock_guard<std::mutex> lk(op->mu);
    if (flight && !op->complete && op->arrived > 0 && op->arrived < op->n) {
      obs::InflightOpState st;
      st.ticket = tickets[i];
      st.op = op_label(op->kind);
      st.arrived = op->arrived;
      st.size = op->n;
      st.age_seconds =
          std::chrono::duration<double>(now - op->first_join_tp).count();
      for (int r = 0; r < op->n; ++r) {
        if (!op->joined[static_cast<size_t>(r)]) {
          st.missing.push_back(g.global_ranks[static_cast<size_t>(r)]);
        }
      }
      frozen.push_back(std::move(st));
    }
    if (!op->error) {
      op->error =
          std::make_exception_ptr(Aborted("communicator aborted: " + reason));
    }
    if (!op->complete) {
      op->complete = true;
      op->complete_tp = std::chrono::steady_clock::now();
    }
    op->cv.notify_all();
  }
  if (flight) {
    const auto bs = g.barrier.status();
    if (bs.arrived > 0) {
      obs::BarrierState st;
      st.arrived = bs.arrived;
      st.size = g.size;
      st.oldest_wait_seconds = bs.oldest_wait_seconds;
      for (const int r : bs.missing) {
        st.missing.push_back(g.global_ranks[static_cast<size_t>(r)]);
      }
      frozen_barriers.push_back(std::move(st));
    }
  }
  g.barrier.abort(reason);
  if (flight) {
    obs::FlightRecorder::instance().capture(flight_kind, reason, suspects,
                                            std::move(frozen),
                                            std::move(frozen_barriers));
  }
  std::vector<std::shared_ptr<CommGroup>> children;
  {
    std::lock_guard<std::mutex> lk(g.split_mu);
    children.reserve(g.subgroups.size());
    for (auto& [key, sub] : g.subgroups) children.push_back(sub);
  }
  for (auto& sub : children) abort_group(*sub, reason, flight_kind);
}

namespace {

void install_injector(CommGroup& g,
                      const std::shared_ptr<FaultInjector>& injector) {
  {
    std::lock_guard<std::mutex> lk(g.async_mu);
    g.injector = injector;
  }
  std::vector<std::shared_ptr<CommGroup>> children;
  {
    std::lock_guard<std::mutex> lk(g.split_mu);
    children.reserve(g.subgroups.size());
    for (auto& [key, sub] : g.subgroups) children.push_back(sub);
  }
  for (auto& sub : children) install_injector(*sub, injector);
}

// Executes a fully-joined op on the calling (last-arriving) thread. All
// reductions run in rank order into op-owned scratch, so results are
// bitwise deterministic and identical on every rank. Throws on cross-rank
// shape mismatches; the caller converts that into an op error.
void execute_op(PendingOp& op) {
  const i64 n0 = op.counts[0];
  switch (op.kind) {
    case PendingOp::Kind::kAllReduce: {
      for (int r = 0; r < op.n; ++r) {
        GEOFM_CHECK(op.counts[static_cast<size_t>(r)] == n0,
                    "all_reduce size mismatch across ranks");
      }
      // src may alias dst (in-place), so reduce into scratch first.
      std::vector<float> scratch(static_cast<size_t>(n0));
      if (op.red == ReduceOp::kMax) {
        std::copy_n(op.src[0], n0, scratch.data());
        for (int r = 1; r < op.n; ++r) {
          const float* s = op.src[static_cast<size_t>(r)];
          for (i64 i = 0; i < n0; ++i) {
            scratch[static_cast<size_t>(i)] =
                std::max(scratch[static_cast<size_t>(i)], s[i]);
          }
        }
      } else {
        std::fill(scratch.begin(), scratch.end(), 0.f);
        for (int r = 0; r < op.n; ++r) {
          const float* s = op.src[static_cast<size_t>(r)];
          for (i64 i = 0; i < n0; ++i) scratch[static_cast<size_t>(i)] += s[i];
        }
        if (op.red == ReduceOp::kAvg) {
          const float inv = 1.f / static_cast<float>(op.n);
          for (float& v : scratch) v *= inv;
        }
      }
      for (int r = 0; r < op.n; ++r) {
        std::copy_n(scratch.data(), n0, op.dst[static_cast<size_t>(r)]);
      }
      break;
    }
    case PendingOp::Kind::kAllGather: {
      for (int r = 0; r < op.n; ++r) {
        GEOFM_CHECK(op.counts[static_cast<size_t>(r)] == n0,
                    "all_gather shard size mismatch across ranks");
      }
      for (int d = 0; d < op.n; ++d) {
        float* out = op.dst[static_cast<size_t>(d)];
        for (int r = 0; r < op.n; ++r) {
          std::copy_n(op.src[static_cast<size_t>(r)], n0,
                      out + static_cast<i64>(r) * n0);
        }
      }
      break;
    }
    case PendingOp::Kind::kReduceScatter: {
      GEOFM_CHECK(op.red != ReduceOp::kMax,
                  "reduce_scatter kMax not supported");
      for (int r = 0; r < op.n; ++r) {
        GEOFM_CHECK(op.counts[static_cast<size_t>(r)] == n0,
                    "reduce_scatter input size mismatch across ranks");
      }
      GEOFM_CHECK(n0 % op.n == 0, "reduce_scatter size not divisible");
      const i64 chunk = n0 / op.n;
      std::vector<float> scratch(static_cast<size_t>(chunk));
      for (int d = 0; d < op.n; ++d) {
        const i64 offset = static_cast<i64>(d) * chunk;
        std::fill(scratch.begin(), scratch.end(), 0.f);
        for (int r = 0; r < op.n; ++r) {
          const float* s = op.src[static_cast<size_t>(r)] + offset;
          for (i64 i = 0; i < chunk; ++i) scratch[static_cast<size_t>(i)] += s[i];
        }
        if (op.red == ReduceOp::kAvg) {
          const float inv = 1.f / static_cast<float>(op.n);
          for (float& v : scratch) v *= inv;
        }
        std::copy_n(scratch.data(), chunk, op.dst[static_cast<size_t>(d)]);
      }
      break;
    }
    case PendingOp::Kind::kBroadcast: {
      for (int r = 0; r < op.n; ++r) {
        GEOFM_CHECK(op.counts[static_cast<size_t>(r)] == n0,
                    "broadcast size mismatch across ranks");
      }
      const float* root_src = op.src[static_cast<size_t>(op.root)];
      for (int d = 0; d < op.n; ++d) {
        if (d == op.root) continue;
        std::copy_n(root_src, n0, op.dst[static_cast<size_t>(d)]);
      }
      break;
    }
  }
}

}  // namespace
}  // namespace detail

bool CollectiveHandle::test() const {
  if (!op_) return true;
  std::lock_guard<std::mutex> lk(op_->mu);
  return op_->complete;
}

void CollectiveHandle::wait(CommStats* stats) {
  if (!op_) return;
  // Unaccounted waits (no stats sink, tracing off) take the bare fast
  // path: the comm.* metrics below mirror the CommStats accounting, so
  // traffic nobody measures costs no clock reads and no shared-cache-line
  // atomics (the micro-collective benches hammer exactly this path).
  if (stats == nullptr && !obs::trace_enabled()) {
    {
      std::unique_lock<std::mutex> lk(op_->mu);
      op_->cv.wait(lk, [&] { return op_->complete; });
    }
    std::exception_ptr err = op_->error;
    op_.reset();
    if (err) std::rethrow_exception(err);
    return;
  }

  // Category "comm.exposed" marks spans whose summed duration per rank is,
  // by construction, the same quantity CommStats::exposed_wait_seconds
  // accumulates (waits called without stats are plain "comm" spans and
  // belong to no one's overlap accounting).
  obs::TraceScope span(wait_name(op_->kind),
                       stats != nullptr ? "comm.exposed" : "comm", "bytes",
                       count_ * static_cast<i64>(sizeof(float)));
  const auto t0 = std::chrono::steady_clock::now();
  bool was_complete;
  {
    std::unique_lock<std::mutex> lk(op_->mu);
    was_complete = op_->complete;
    op_->cv.wait(lk, [&] { return op_->complete; });
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double blocked = std::chrono::duration<double>(t1 - t0).count();
  if (stats != nullptr) {
    ++stats->waits;
    if (was_complete) ++stats->completed_before_wait;
    stats->exposed_wait_seconds += blocked;
    const double busy =
        std::chrono::duration<double>(op_->complete_tp - issued_).count();
    stats->busy_seconds += busy > 0 ? busy : 0;
  }
  {
    static auto& waits = obs::MetricsRegistry::instance().counter("comm.waits");
    static auto& bytes = obs::MetricsRegistry::instance().counter("comm.bytes");
    static auto& exposed =
        obs::MetricsRegistry::instance().counter("comm.exposed_wait_seconds");
    static auto& hist =
        obs::MetricsRegistry::instance().histogram("comm.wait_seconds");
    waits.add(1);
    bytes.add(static_cast<double>(count_) * sizeof(float));
    if (stats != nullptr) exposed.add(blocked);
    hist.observe(blocked);
  }
  std::exception_ptr err = op_->error;
  op_.reset();
  if (err) std::rethrow_exception(err);
}

bool CollectiveHandle::wait_for(double seconds, CommStats* stats) {
  if (!op_) return true;
  const auto t0 = std::chrono::steady_clock::now();
  bool was_complete;
  {
    std::unique_lock<std::mutex> lk(op_->mu);
    was_complete = op_->complete;
    if (!op_->cv.wait_for(lk, std::chrono::duration<double>(seconds),
                          [&] { return op_->complete; })) {
      return false;  // still in flight; the handle stays pending
    }
  }
  if (stats != nullptr) {
    ++stats->waits;
    if (was_complete) ++stats->completed_before_wait;
    stats->exposed_wait_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double busy =
        std::chrono::duration<double>(op_->complete_tp - issued_).count();
    stats->busy_seconds += busy > 0 ? busy : 0;
  }
  std::exception_ptr err = op_->error;
  op_.reset();
  if (err) std::rethrow_exception(err);
  return true;
}

Communicator::Communicator(std::shared_ptr<detail::CommGroup> group, int rank)
    : group_(std::move(group)), rank_(rank) {
  GEOFM_CHECK(group_ != nullptr);
  GEOFM_CHECK(rank_ >= 0 && rank_ < group_->size, "rank out of range");
}

int Communicator::global_rank() const {
  return group_->global_ranks[static_cast<size_t>(rank_)];
}

void Communicator::barrier() {
  group_->heartbeat[static_cast<size_t>(rank_)].last_ns.store(
      static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count()),
      std::memory_order_relaxed);
  group_->barrier.arrive(rank_);
}

CollectiveHandle Communicator::post(detail::PendingOp::Kind kind, ReduceOp red,
                                    int root, const float* src, float* dst,
                                    i64 count) {
  using detail::PendingOp;
  auto& g = *group_;
  obs::TraceScope span(post_name(kind), "comm", "bytes",
                       count * static_cast<i64>(sizeof(float)), "ranks",
                       g.size);
  const auto issued = std::chrono::steady_clock::now();
  g.heartbeat[static_cast<size_t>(rank_)].last_ns.store(
      static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           issued.time_since_epoch())
                           .count()),
      std::memory_order_relaxed);

  std::shared_ptr<PendingOp> op;
  std::shared_ptr<FaultInjector> injector;
  u64 ticket;
  {
    std::lock_guard<std::mutex> lk(g.async_mu);
    if (g.aborted) {
      throw Aborted("communicator aborted: " + g.abort_reason);
    }
    ticket = g.next_ticket[static_cast<size_t>(rank_)]++;
    injector = g.injector;
    if (!injector) {
      auto it = g.inflight.find(ticket);
      if (it == g.inflight.end()) {
        op = std::make_shared<PendingOp>(kind, red, g.size);
        g.inflight.emplace(ticket, op);
      } else {
        op = it->second;
      }
    }
  }

  if (injector) {
    // Fault boundary: may delay this rank (stall/slow), corrupt its
    // contribution in place (simulated wire corruption — the buffer is
    // plain heap storage, const only through the collective's signature),
    // or kill the rank: abort peers, then unwind.
    const int grank = g.global_ranks[static_cast<size_t>(rank_)];
    const auto fault = injector->before_post(grank, op_label(kind),
                                             const_cast<float*>(src), count);
    if (fault.kill) {
      abort(fault.kill_reason, "fault_kill");
      throw RankKilled(fault.kill_reason, grank);
    }
    std::lock_guard<std::mutex> lk(g.async_mu);
    if (g.aborted) {  // a peer may have died during our injected delay
      throw Aborted("communicator aborted: " + g.abort_reason);
    }
    auto it = g.inflight.find(ticket);
    if (it == g.inflight.end()) {
      op = std::make_shared<PendingOp>(kind, red, g.size);
      g.inflight.emplace(ticket, op);
    } else {
      op = it->second;
    }
  }

  bool execute = false;
  {
    std::lock_guard<std::mutex> lk(op->mu);
    // Join: publish buffers, detect cross-rank call mismatches (same group,
    // same ticket, different collective) without deadlocking anyone.
    if (op->kind != kind || (kind != PendingOp::Kind::kBroadcast &&
                             op->red != red)) {
      if (!op->error) {
        op->error = std::make_exception_ptr(
            Error("mismatched collective calls on communicator: ranks "
                  "disagree on the operation for the same ticket"));
      }
    }
    if (kind == PendingOp::Kind::kBroadcast) {
      if (op->root == -1) {
        op->root = root;
      } else if (op->root != root && !op->error) {
        op->error = std::make_exception_ptr(
            Error("broadcast root mismatch across ranks"));
      }
    }
    op->src[static_cast<size_t>(rank_)] = src;
    op->dst[static_cast<size_t>(rank_)] = dst;
    op->counts[static_cast<size_t>(rank_)] = count;
    if (op->arrived == 0) op->first_join_tp = issued;
    op->joined[static_cast<size_t>(rank_)] = 1;
    execute = (++op->arrived == op->n);
  }

  if (execute) {
    {
      // Fully joined: retire the ticket so the registry stays bounded.
      std::lock_guard<std::mutex> lk(g.async_mu);
      g.inflight.erase(ticket);
    }
    if (!op->error) {
      try {
        obs::TraceScope exec(execute_name(kind), "comm", "bytes",
                             count * static_cast<i64>(sizeof(float)));
        detail::execute_op(*op);
      } catch (...) {
        op->error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lk(op->mu);
      op->complete = true;
      op->complete_tp = std::chrono::steady_clock::now();
    }
    op->cv.notify_all();
  }
  return CollectiveHandle(std::move(op), issued, count);
}

CollectiveHandle Communicator::iall_reduce(Tensor& t, ReduceOp op) {
  return post(detail::PendingOp::Kind::kAllReduce, op, -1, t.data(), t.data(),
              t.numel());
}

CollectiveHandle Communicator::iall_gather(const Tensor& shard, Tensor& out) {
  GEOFM_CHECK(out.numel() == shard.numel() * group_->size,
              "all_gather output size mismatch");
  return post(detail::PendingOp::Kind::kAllGather, ReduceOp::kSum, -1,
              shard.data(), out.data(), shard.numel());
}

CollectiveHandle Communicator::ireduce_scatter(const Tensor& in, Tensor& shard,
                                               ReduceOp op) {
  GEOFM_CHECK(in.numel() == shard.numel() * group_->size,
              "reduce_scatter size mismatch");
  return post(detail::PendingOp::Kind::kReduceScatter, op, -1, in.data(),
              shard.data(), in.numel());
}

CollectiveHandle Communicator::ibroadcast(Tensor& t, int root) {
  GEOFM_CHECK(root >= 0 && root < group_->size,
              "broadcast root out of range");
  return post(detail::PendingOp::Kind::kBroadcast, ReduceOp::kSum, root,
              t.data(), t.data(), t.numel());
}

void Communicator::all_reduce(Tensor& t, ReduceOp op) {
  iall_reduce(t, op).wait();
}

void Communicator::all_gather(const Tensor& shard, Tensor& out) {
  iall_gather(shard, out).wait();
}

void Communicator::reduce_scatter(const Tensor& in, Tensor& shard,
                                  ReduceOp op) {
  ireduce_scatter(in, shard, op).wait();
}

void Communicator::broadcast(Tensor& t, int root) {
  ibroadcast(t, root).wait();
}

void Communicator::abort(const std::string& reason,
                         const char* flight_kind) {
  obs::trace_instant("comm.abort", "comm");
  detail::abort_group(*group_, reason, flight_kind);
}

bool Communicator::aborted() const {
  std::lock_guard<std::mutex> lk(group_->async_mu);
  return group_->aborted;
}

std::string Communicator::abort_reason() const {
  std::lock_guard<std::mutex> lk(group_->async_mu);
  return group_->abort_reason;
}

std::vector<int> Communicator::abort_suspects() const {
  std::lock_guard<std::mutex> lk(group_->async_mu);
  return group_->suspects;
}

void Communicator::install_fault_injector(
    std::shared_ptr<FaultInjector> injector) {
  detail::install_injector(*group_, injector);
}

Communicator Communicator::split(int color, int key) {
  auto& g = *group_;
  g.colors[static_cast<size_t>(rank_)] = color;
  g.keys[static_cast<size_t>(rank_)] = key;

  u64 seq = 0;
  g.barrier.arrive(rank_, [&] {
    // Subgroups inherit the parent's injector and map their ranks back to
    // root identities, so fault plans and watchdog diagnoses stay in
    // world-rank terms at every level of the hierarchy.
    std::shared_ptr<FaultInjector> injector;
    {
      std::lock_guard<std::mutex> alk(g.async_mu);
      injector = g.injector;
    }
    std::lock_guard<std::mutex> lk(g.split_mu);
    const u64 this_seq = g.split_seq++;
    // Group ranks by color, order by (key, old rank).
    std::map<int, std::vector<int>> by_color;
    for (int r = 0; r < g.size; ++r) {
      by_color[g.colors[static_cast<size_t>(r)]].push_back(r);
    }
    for (auto& [c, ranks] : by_color) {
      std::stable_sort(ranks.begin(), ranks.end(), [&](int a, int b) {
        return g.keys[static_cast<size_t>(a)] < g.keys[static_cast<size_t>(b)];
      });
      auto sub =
          std::make_shared<detail::CommGroup>(static_cast<int>(ranks.size()));
      for (size_t i = 0; i < ranks.size(); ++i) {
        sub->global_ranks[i] =
            g.global_ranks[static_cast<size_t>(ranks[i])];
      }
      sub->injector = injector;  // not yet published; no lock needed
      g.subgroups[{this_seq, c}] = sub;
      g.members[{this_seq, c}] = ranks;
    }
  });

  {
    // Every rank observes the same sequence number: it is the value the
    // leader consumed, i.e. split_seq - 1 after exactly one split.
    std::lock_guard<std::mutex> lk(g.split_mu);
    seq = g.split_seq - 1;
  }

  std::shared_ptr<detail::CommGroup> sub;
  int sub_rank = -1;
  {
    std::lock_guard<std::mutex> lk(g.split_mu);
    sub = g.subgroups.at({seq, color});
    const auto& ranks = g.members.at({seq, color});
    for (size_t i = 0; i < ranks.size(); ++i) {
      if (ranks[i] == rank_) sub_rank = static_cast<int>(i);
    }
  }
  GEOFM_CHECK(sub_rank >= 0, "split bookkeeping failure");
  g.barrier.arrive(rank_);  // keep registries alive until everyone resolves
  return Communicator(sub, sub_rank);
}

std::shared_ptr<detail::CommGroup> make_group(int n_ranks) {
  GEOFM_CHECK(n_ranks > 0);
  return std::make_shared<detail::CommGroup>(n_ranks);
}

void run_ranks(int n_ranks, const std::function<void(Communicator&)>& fn) {
  auto group = make_group(n_ranks);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n_ranks));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      set_thread_rank(r);
      obs::set_thread_label("rank");
      obs::TraceScope span("rank.run", "runtime", "world", n_ranks);
      Communicator comm(group, r);
      try {
        fn(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace geofm::comm
