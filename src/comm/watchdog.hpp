// Comm watchdog: heartbeat-based health monitoring with per-rendezvous
// deadlines.
//
// `Communicator::start_watchdog` launches one background monitor thread
// per root group. Every poll it walks the group's in-flight collectives,
// its barrier, and (recursively) every sub-communicator, looking for a
// rendezvous some ranks joined more than `deadline_seconds` ago that other
// ranks still have not reached. The ranks that are missing are the
// suspects: the monitor records them on the root group and aborts the
// whole group with a diagnosis like
//
//   rank 3 stalled in all_reduce ticket 42 for 2.0s (last heartbeat 2.1s
//   ago)
//
// so every healthy rank unblocks with `Aborted` instead of deadlocking,
// and the elastic supervisor (`train/elastic.hpp`) can quarantine the
// stalled rank and continue with the survivors.
//
// The deadline bounds *rendezvous skew*, not collective duration: the
// clock for an op starts when its first rank joins, so a deadline must
// exceed the worst healthy-case spread between the first and last rank
// reaching the same collective (scheduling skew, imbalanced compute,
// checkpoint stalls). On an oversubscribed CI box keep it generous —
// hundreds of milliseconds, not tens.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

#include "comm/communicator.hpp"

namespace geofm::comm {

struct WatchdogOptions {
  /// Max age of a partially-joined rendezvous before the missing ranks are
  /// declared stalled and the group is aborted.
  double deadline_seconds = 1.0;

  /// Poll interval of the monitor thread; 0 = deadline_seconds / 4.
  /// Detection latency is at most deadline + poll.
  double poll_seconds = 0;
};

namespace detail {

/// Monitor-thread state owned by the CommGroup it watches (full definition
/// here so ~CommGroup, defined in communicator.cpp, can destroy it).
struct WatchdogState {
  WatchdogOptions opts;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  std::thread monitor;
};

/// Scan result: which global ranks stalled, and the human diagnosis.
struct StallDiagnosis {
  std::vector<int> suspects;
  std::string message;
};

/// Walks `g` and its subgroups for rendezvous older than
/// `deadline_seconds` with missing ranks (exposed for tests).
StallDiagnosis scan_for_stalls(CommGroup& g, double deadline_seconds);

}  // namespace detail

}  // namespace geofm::comm
