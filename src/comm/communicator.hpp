// In-process collective communication over thread ranks.
//
// This is geofm's stand-in for RCCL/NCCL: each "GPU rank" is a thread, and
// collectives are implemented with a leader barrier plus direct reads of
// peer buffers. Semantics match MPI/NCCL:
//   * every rank of a communicator must call the same collectives in the
//     same order (mismatched calls deadlock, as on the real machine);
//   * reductions are performed in rank order, so results are deterministic
//     and identical on every rank.
//
// Sub-communicators (`split`, in the MPI_Comm_split idiom) provide the
// hierarchical process groups HYBRID_SHARD requires (intra-node sharding
// group x inter-node replication group).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/tensor.hpp"

namespace geofm::comm {

enum class ReduceOp { kSum, kAvg, kMax };

namespace detail {

/// Sense-reversing N-party barrier. The last rank to arrive runs the
/// (optional) leader section before anyone is released.
class LeaderBarrier {
 public:
  explicit LeaderBarrier(int n);
  void arrive(const std::function<void()>& leader = {});

 private:
  const int n_;
  int arrived_ = 0;
  u64 generation_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

/// Shared state of one communicator (all ranks of the group point here).
struct CommGroup {
  explicit CommGroup(int n);

  const int size;
  LeaderBarrier barrier;

  // Publication slots for in-flight collectives.
  std::vector<const float*> src;
  std::vector<float*> dst;
  std::vector<i64> counts;
  std::vector<int> colors;
  std::vector<int> keys;
  std::vector<float> scratch;

  // split() registry: (split sequence number, color) -> subgroup + the
  // member world-ranks in key order.
  std::mutex split_mu;
  u64 split_seq = 0;
  std::map<std::pair<u64, int>, std::shared_ptr<CommGroup>> subgroups;
  std::map<std::pair<u64, int>, std::vector<int>> members;
};

}  // namespace detail

/// Per-rank handle to a communicator. Cheap to copy.
class Communicator {
 public:
  Communicator(std::shared_ptr<detail::CommGroup> group, int rank);

  int rank() const { return rank_; }
  int size() const { return group_->size; }

  /// Blocks until every rank of this communicator has arrived.
  void barrier();

  /// In-place all-reduce of `t` (same numel on every rank).
  void all_reduce(Tensor& t, ReduceOp op = ReduceOp::kSum);

  /// Gathers equal-size shards: out.numel() == shard.numel() * size().
  /// Rank r's shard lands at offset r * shard.numel().
  void all_gather(const Tensor& shard, Tensor& out);

  /// Reduces `in` (same numel everywhere) and scatters equal chunks:
  /// shard.numel() * size() == in.numel(); rank r receives chunk r.
  void reduce_scatter(const Tensor& in, Tensor& shard,
                      ReduceOp op = ReduceOp::kSum);

  /// Copies root's tensor to every rank (same numel everywhere).
  void broadcast(Tensor& t, int root);

  /// Collective split: ranks with equal `color` form a new communicator;
  /// ranks are ordered by `key` (ties broken by old rank). Every rank of
  /// this communicator must call split with some color.
  Communicator split(int color, int key);

 private:
  std::shared_ptr<detail::CommGroup> group_;
  int rank_;
};

/// Launches `n_ranks` threads, each running fn(comm) with a communicator
/// over all ranks, and joins them. The first exception (if any) is
/// rethrown on the caller after all threads complete.
void run_ranks(int n_ranks, const std::function<void(Communicator&)>& fn);

}  // namespace geofm::comm
