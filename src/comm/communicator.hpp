// In-process collective communication over thread ranks.
//
// This is geofm's stand-in for RCCL/NCCL: each "GPU rank" is a thread, and
// collectives are implemented over shared per-group progress state.
// Semantics match MPI/NCCL:
//   * every rank of a communicator must call the same collectives in the
//     same order (mismatched calls raise an error on every participant);
//   * reductions are performed in rank order, so results are deterministic
//     and identical on every rank.
//
// The engine is *nonblocking*: `iall_reduce` / `iall_gather` /
// `ireduce_scatter` / `ibroadcast` post the rank's buffers into a pending
// operation and return a `CollectiveHandle` immediately, so the rank thread
// keeps computing while the collective is in flight. Operations are matched
// across ranks by issue order on the communicator (rank r's k-th post pairs
// with every peer's k-th post); the last rank to join an operation executes
// the data movement and wakes all waiters. Any number of operations may be
// in flight per rank, and `wait()`s may complete out of issue order.
// Blocking collectives (`all_reduce`, ...) are post+wait wrappers.
//
// Sub-communicators (`split`, in the MPI_Comm_split idiom) provide the
// hierarchical process groups HYBRID_SHARD requires (intra-node sharding
// group x inter-node replication group); each group has its own matching
// sequence, so parent and child collectives interleave freely.
//
// Failure handling: `abort()` poisons a group (and its subgroups) so every
// blocked rendezvous — collective waits AND plain barriers — throws
// `Aborted` instead of deadlocking. A `FaultInjector`
// (`comm/fault.hpp`) can be installed under the communicator to replay a
// deterministic schedule of rank kills, stalls, latency, and payload
// corruption at the collective boundary, and a watchdog
// (`comm/watchdog.hpp`) monitors rendezvous progress and aborts the group
// with a diagnosis when a rank stalls past its deadline.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/tensor.hpp"

namespace geofm::comm {

class FaultInjector;    // comm/fault.hpp
struct WatchdogOptions;  // comm/watchdog.hpp

enum class ReduceOp { kSum, kAvg, kMax };

/// Thrown by every rendezvous (post, wait, barrier, split) on a group that
/// has been aborted — by `Communicator::abort`, by the watchdog, or by a
/// fault-plan kill on a peer. Derives from Error so existing catch sites
/// keep working; catch Aborted specifically to tell "a peer died" from a
/// local programming error (the elastic supervisor does exactly that).
class Aborted : public Error {
 public:
  using Error::Error;
};

/// Per-rank accounting of nonblocking-collective cost, accumulated by
/// `CollectiveHandle::wait(&stats)`. `busy_seconds` is the wall time each
/// operation was in flight (issue -> completion); `exposed_wait_seconds` is
/// the part the rank actually spent blocked in wait(). The difference is
/// communication that was hidden behind compute.
struct CommStats {
  int waits = 0;
  int completed_before_wait = 0;  // handle was done before wait() was called
  double busy_seconds = 0;        // sum of per-op (completion - issue)
  double exposed_wait_seconds = 0;  // time blocked inside wait()

  double overlapped_seconds() const {
    const double d = busy_seconds - exposed_wait_seconds;
    return d > 0 ? d : 0;
  }
  void reset() { *this = CommStats{}; }
};

namespace detail {

struct CommGroup;

/// Sense-reversing N-party barrier. The last rank to arrive runs the
/// (optional) leader section before anyone is released. Abort-aware:
/// `abort()` releases every waiter (and fails every future arrival) with
/// `Aborted`, and `status()` exposes who is missing from an in-progress
/// round so the watchdog can diagnose a stalled rank.
class LeaderBarrier {
 public:
  explicit LeaderBarrier(int n);

  /// `rank` identifies the arriving rank for stall diagnosis.
  void arrive(int rank, const std::function<void()>& leader = {});

  /// Poisons the barrier: current and future arrivals throw Aborted.
  void abort(const std::string& reason);

  struct Status {
    int arrived = 0;               // ranks waiting in the current round
    double oldest_wait_seconds = 0;  // age of the round's first arrival
    std::vector<int> missing;      // ranks not yet arrived (when arrived > 0)
  };
  Status status() const;

 private:
  const int n_;
  int arrived_ = 0;
  u64 generation_ = 0;
  bool aborted_ = false;
  std::string abort_reason_;
  std::vector<char> in_;  // per-rank arrived flag for the current round
  std::chrono::steady_clock::time_point round_start_{};
  mutable std::mutex mu_;
  std::condition_variable cv_;
};

/// One in-flight collective: the rendezvous record every participating rank
/// posts its buffers into. The last rank to arrive executes the operation
/// (reductions in rank order, into op-owned scratch) and publishes
/// completion; waiters block on the op's condition variable. Validation
/// failures (size/kind/root mismatch across ranks) complete the op with an
/// error that every waiter rethrows, instead of deadlocking.
struct PendingOp {
  enum class Kind { kAllReduce, kAllGather, kReduceScatter, kBroadcast };

  PendingOp(Kind k, ReduceOp r, int n_ranks);

  const Kind kind;
  const ReduceOp red;
  const int n;
  int root = -1;  // broadcast only

  std::vector<const float*> src;
  std::vector<float*> dst;
  std::vector<i64> counts;
  std::vector<char> joined;  // which ranks have posted (stall diagnosis)
  std::chrono::steady_clock::time_point first_join_tp{};

  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  bool complete = false;
  std::exception_ptr error;
  std::chrono::steady_clock::time_point complete_tp;
};

/// Cache-line-padded per-rank progress clock (watchdog heartbeat). Padded
/// so the relaxed store each rank makes on every post never shares a line
/// with a peer's — an unpadded array costs measurable hot-path time.
struct alignas(64) RankClock {
  std::atomic<u64> last_ns{0};  // steady_clock ns of the rank's last post
};

struct WatchdogState;  // comm/watchdog.hpp (monitor thread + stop flag)

/// Shared state of one communicator (all ranks of the group point here).
struct CommGroup {
  explicit CommGroup(int n);
  ~CommGroup();  // stops the watchdog monitor, if one was started

  const int size;
  LeaderBarrier barrier;

  // Identity of each group rank in the *root* communicator (the group
  // run_ranks / make_group created). Subgroups map through their parent,
  // so watchdog diagnoses and fault plans always name world ranks.
  std::vector<int> global_ranks;

  // Nonblocking engine: per-group progress state. `next_ticket[r]` is rank
  // r's issue counter; ticket k on this group names the k-th collective,
  // matched across all ranks. `inflight` maps tickets to their pending op
  // until every rank has joined.
  std::mutex async_mu;
  std::vector<u64> next_ticket;
  std::map<u64, std::shared_ptr<PendingOp>> inflight;

  // Abort state (Communicator::abort): once set, every in-flight op has
  // been completed with an error and every future post throws. `suspects`
  // carries the watchdog's diagnosis (global ranks that stalled) for the
  // elastic supervisor. Guarded by async_mu.
  bool aborted = false;
  std::string abort_reason;
  std::vector<int> suspects;

  // Fault injection (comm/fault.hpp): when set, every post on this group
  // consults the injector first. Propagated to subgroups at split() and by
  // install_fault_injector. Guarded by async_mu.
  std::shared_ptr<FaultInjector> injector;

  // Watchdog heartbeats: per-rank steady-clock timestamp of the last post,
  // stored relaxed from the hot path, read by the monitor for diagnosis.
  std::unique_ptr<RankClock[]> heartbeat;

  // Watchdog monitor (comm/watchdog.hpp), started at most once per group.
  std::unique_ptr<WatchdogState> watchdog;

  // split() publication slots + registry: (split sequence number, color) ->
  // subgroup + the member world-ranks in key order.
  std::vector<int> colors;
  std::vector<int> keys;
  std::mutex split_mu;
  u64 split_seq = 0;
  std::map<std::pair<u64, int>, std::shared_ptr<CommGroup>> subgroups;
  std::map<std::pair<u64, int>, std::vector<int>> members;
};

/// Recursively poisons `g` and every subgroup split from it: in-flight ops
/// complete with Aborted, barriers release, future posts throw. Idempotent.
/// Exposed for the watchdog; user code goes through Communicator::abort.
/// `flight_kind` labels the flight-recorder capture this abort freezes
/// when the recorder is enabled ("watchdog_abort" / "fault_kill" /
/// "comm_abort"); the first abort of a cascade wins the capture and
/// freezes the in-flight op + barrier state *before* poisoning it.
void abort_group(CommGroup& g, const std::string& reason,
                 const char* flight_kind = "comm_abort");

/// Joins and destroys the group's watchdog monitor (no-op if none).
void stop_watchdog(CommGroup& g);

}  // namespace detail

/// Request object for one nonblocking collective (MPI_Request idiom).
/// Movable and cheap; an empty handle (default-constructed, moved-from, or
/// already waited) is complete. The posting rank must not touch the
/// operation's buffers between post and wait(); wait() is idempotent and
/// rethrows any cross-rank matching error.
class CollectiveHandle {
 public:
  CollectiveHandle() = default;

  /// True once the collective has executed (never blocks). An empty handle
  /// reports true.
  bool test() const;

  /// True if this handle still refers to an un-waited operation.
  bool pending() const { return op_ != nullptr; }

  /// Blocks until the collective completes; optionally accumulates timing
  /// into `stats`. Rethrows if the operation failed validation. After
  /// wait() the handle is empty.
  void wait(CommStats* stats = nullptr);

  /// Bounded wait: true (and the handle empties, rethrowing any op error)
  /// if the collective completed within `seconds`; false if it is still in
  /// flight — the handle stays pending and may be waited again. A per-op
  /// deadline for callers that want to poll or time out without a
  /// group-wide watchdog.
  bool wait_for(double seconds, CommStats* stats = nullptr);

 private:
  friend class Communicator;
  CollectiveHandle(std::shared_ptr<detail::PendingOp> op,
                   std::chrono::steady_clock::time_point issued, i64 count)
      : op_(std::move(op)), issued_(issued), count_(count) {}

  std::shared_ptr<detail::PendingOp> op_;
  std::chrono::steady_clock::time_point issued_{};
  i64 count_ = 0;  // this rank's element count (trace span sizing)
};

/// Per-rank handle to a communicator. Cheap to copy.
class Communicator {
 public:
  Communicator(std::shared_ptr<detail::CommGroup> group, int rank);

  int rank() const { return rank_; }
  int size() const { return group_->size; }

  /// This rank's identity in the root communicator (== rank() on a root
  /// group; subgroup ranks map through their parents). Watchdog diagnoses
  /// and FaultPlan events are expressed in global ranks.
  int global_rank() const;

  /// Blocks until every rank of this communicator has arrived. Throws
  /// Aborted (without deadlocking) if the group is aborted while waiting.
  void barrier();

  // ----- nonblocking collectives -----------------------------------------
  // Buffers must stay valid and untouched until the returned handle's
  // wait() (the MPI nonblocking contract). Results are bitwise identical
  // to the blocking forms.

  /// In-place all-reduce of `t` (same numel on every rank).
  CollectiveHandle iall_reduce(Tensor& t, ReduceOp op = ReduceOp::kSum);

  /// Gathers equal-size shards: out.numel() == shard.numel() * size().
  /// Rank r's shard lands at offset r * shard.numel().
  CollectiveHandle iall_gather(const Tensor& shard, Tensor& out);

  /// Reduces `in` (same numel everywhere) and scatters equal chunks:
  /// shard.numel() * size() == in.numel(); rank r receives chunk r.
  CollectiveHandle ireduce_scatter(const Tensor& in, Tensor& shard,
                                   ReduceOp op = ReduceOp::kSum);

  /// Copies root's tensor to every rank (same numel everywhere).
  CollectiveHandle ibroadcast(Tensor& t, int root);

  // ----- blocking wrappers (post + wait) ----------------------------------
  void all_reduce(Tensor& t, ReduceOp op = ReduceOp::kSum);
  void all_gather(const Tensor& shard, Tensor& out);
  void reduce_scatter(const Tensor& in, Tensor& shard,
                      ReduceOp op = ReduceOp::kSum);
  void broadcast(Tensor& t, int root);

  /// Collective split: ranks with equal `color` form a new communicator;
  /// ranks are ordered by `key` (ties broken by old rank). Every rank of
  /// this communicator must call split with some color. Subgroups inherit
  /// the parent's fault injector and global-rank identities.
  Communicator split(int color, int key);

  /// Fatal-error propagation (the fault-injection / crash path): poisons
  /// this communicator and, recursively, every sub-communicator created
  /// from it via split(). Every blocked rendezvous — in-flight collective
  /// waits and plain barrier() calls alike — completes with an `Aborted`
  /// error instead of deadlocking on a rank that died, and every
  /// subsequent post or barrier throws immediately. Aborting is idempotent
  /// and may be called from any rank or thread. `flight_kind` labels the
  /// postmortem capture when the flight recorder is enabled.
  void abort(const std::string& reason,
             const char* flight_kind = "comm_abort");

  /// True once this group has been aborted (by abort(), the watchdog, or a
  /// fault-plan kill).
  bool aborted() const;

  /// The first abort's reason ("" if not aborted).
  std::string abort_reason() const;

  /// Global ranks the watchdog diagnosed as stalled when it aborted this
  /// group (empty for plain aborts). The elastic supervisor quarantines
  /// these.
  std::vector<int> abort_suspects() const;

  /// Installs a fault injector under this communicator: every subsequent
  /// post on this group and (recursively) its sub-communicators consults
  /// the plan. Replaces any previous injector; nullptr uninstalls.
  void install_fault_injector(std::shared_ptr<FaultInjector> injector);

  /// Starts the group's watchdog monitor (comm/watchdog.hpp) if not
  /// already running: a background thread that aborts the whole group with
  /// a per-rank diagnosis when any rendezvous stalls past the deadline.
  /// The first call wins; later calls are no-ops. The monitor covers this
  /// group and every sub-communicator split from it, and is joined when
  /// the group is destroyed.
  void start_watchdog(const WatchdogOptions& opts);

 private:
  CollectiveHandle post(detail::PendingOp::Kind kind, ReduceOp red, int root,
                        const float* src, float* dst, i64 count);

  std::shared_ptr<detail::CommGroup> group_;
  int rank_;
};

/// Creates a root communicator group for `n_ranks`. Hand
/// `Communicator(group, r)` to each participating thread. `run_ranks` does
/// this plus thread management; the elastic supervisor
/// (`train/elastic.hpp`) uses make_group directly so it can re-form groups
/// over surviving threads.
std::shared_ptr<detail::CommGroup> make_group(int n_ranks);

/// Launches `n_ranks` threads, each running fn(comm) with a communicator
/// over all ranks, and joins them. The first exception (if any) is
/// rethrown on the caller after all threads complete.
void run_ranks(int n_ranks, const std::function<void(Communicator&)>& fn);

}  // namespace geofm::comm
