// In-process collective communication over thread ranks.
//
// This is geofm's stand-in for RCCL/NCCL: each "GPU rank" is a thread, and
// collectives are implemented over shared per-group progress state.
// Semantics match MPI/NCCL:
//   * every rank of a communicator must call the same collectives in the
//     same order (mismatched calls raise an error on every participant);
//   * reductions are performed in rank order, so results are deterministic
//     and identical on every rank.
//
// The engine is *nonblocking*: `iall_reduce` / `iall_gather` /
// `ireduce_scatter` / `ibroadcast` post the rank's buffers into a pending
// operation and return a `CollectiveHandle` immediately, so the rank thread
// keeps computing while the collective is in flight. Operations are matched
// across ranks by issue order on the communicator (rank r's k-th post pairs
// with every peer's k-th post); the last rank to join an operation executes
// the data movement and wakes all waiters. Any number of operations may be
// in flight per rank, and `wait()`s may complete out of issue order.
// Blocking collectives (`all_reduce`, ...) are post+wait wrappers.
//
// Sub-communicators (`split`, in the MPI_Comm_split idiom) provide the
// hierarchical process groups HYBRID_SHARD requires (intra-node sharding
// group x inter-node replication group); each group has its own matching
// sequence, so parent and child collectives interleave freely.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/tensor.hpp"

namespace geofm::comm {

enum class ReduceOp { kSum, kAvg, kMax };

/// Per-rank accounting of nonblocking-collective cost, accumulated by
/// `CollectiveHandle::wait(&stats)`. `busy_seconds` is the wall time each
/// operation was in flight (issue -> completion); `exposed_wait_seconds` is
/// the part the rank actually spent blocked in wait(). The difference is
/// communication that was hidden behind compute.
struct CommStats {
  int waits = 0;
  int completed_before_wait = 0;  // handle was done before wait() was called
  double busy_seconds = 0;        // sum of per-op (completion - issue)
  double exposed_wait_seconds = 0;  // time blocked inside wait()

  double overlapped_seconds() const {
    const double d = busy_seconds - exposed_wait_seconds;
    return d > 0 ? d : 0;
  }
  void reset() { *this = CommStats{}; }
};

namespace detail {

/// Sense-reversing N-party barrier. The last rank to arrive runs the
/// (optional) leader section before anyone is released.
class LeaderBarrier {
 public:
  explicit LeaderBarrier(int n);
  void arrive(const std::function<void()>& leader = {});

 private:
  const int n_;
  int arrived_ = 0;
  u64 generation_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

/// One in-flight collective: the rendezvous record every participating rank
/// posts its buffers into. The last rank to arrive executes the operation
/// (reductions in rank order, into op-owned scratch) and publishes
/// completion; waiters block on the op's condition variable. Validation
/// failures (size/kind/root mismatch across ranks) complete the op with an
/// error that every waiter rethrows, instead of deadlocking.
struct PendingOp {
  enum class Kind { kAllReduce, kAllGather, kReduceScatter, kBroadcast };

  PendingOp(Kind k, ReduceOp r, int n_ranks);

  const Kind kind;
  const ReduceOp red;
  const int n;
  int root = -1;  // broadcast only

  std::vector<const float*> src;
  std::vector<float*> dst;
  std::vector<i64> counts;

  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  bool complete = false;
  std::exception_ptr error;
  std::chrono::steady_clock::time_point complete_tp;
};

/// Shared state of one communicator (all ranks of the group point here).
struct CommGroup {
  explicit CommGroup(int n);

  const int size;
  LeaderBarrier barrier;

  // Nonblocking engine: per-group progress state. `next_ticket[r]` is rank
  // r's issue counter; ticket k on this group names the k-th collective,
  // matched across all ranks. `inflight` maps tickets to their pending op
  // until every rank has joined.
  std::mutex async_mu;
  std::vector<u64> next_ticket;
  std::map<u64, std::shared_ptr<PendingOp>> inflight;

  // Abort state (Communicator::abort): once set, every in-flight op has
  // been completed with an error and every future post throws. Guarded by
  // async_mu.
  bool aborted = false;
  std::string abort_reason;

  // split() publication slots + registry: (split sequence number, color) ->
  // subgroup + the member world-ranks in key order.
  std::vector<int> colors;
  std::vector<int> keys;
  std::mutex split_mu;
  u64 split_seq = 0;
  std::map<std::pair<u64, int>, std::shared_ptr<CommGroup>> subgroups;
  std::map<std::pair<u64, int>, std::vector<int>> members;
};

}  // namespace detail

/// Request object for one nonblocking collective (MPI_Request idiom).
/// Movable and cheap; an empty handle (default-constructed, moved-from, or
/// already waited) is complete. The posting rank must not touch the
/// operation's buffers between post and wait(); wait() is idempotent and
/// rethrows any cross-rank matching error.
class CollectiveHandle {
 public:
  CollectiveHandle() = default;

  /// True once the collective has executed (never blocks). An empty handle
  /// reports true.
  bool test() const;

  /// True if this handle still refers to an un-waited operation.
  bool pending() const { return op_ != nullptr; }

  /// Blocks until the collective completes; optionally accumulates timing
  /// into `stats`. Rethrows if the operation failed validation. After
  /// wait() the handle is empty.
  void wait(CommStats* stats = nullptr);

 private:
  friend class Communicator;
  CollectiveHandle(std::shared_ptr<detail::PendingOp> op,
                   std::chrono::steady_clock::time_point issued, i64 count)
      : op_(std::move(op)), issued_(issued), count_(count) {}

  std::shared_ptr<detail::PendingOp> op_;
  std::chrono::steady_clock::time_point issued_{};
  i64 count_ = 0;  // this rank's element count (trace span sizing)
};

/// Per-rank handle to a communicator. Cheap to copy.
class Communicator {
 public:
  Communicator(std::shared_ptr<detail::CommGroup> group, int rank);

  int rank() const { return rank_; }
  int size() const { return group_->size; }

  /// Blocks until every rank of this communicator has arrived.
  void barrier();

  // ----- nonblocking collectives -----------------------------------------
  // Buffers must stay valid and untouched until the returned handle's
  // wait() (the MPI nonblocking contract). Results are bitwise identical
  // to the blocking forms.

  /// In-place all-reduce of `t` (same numel on every rank).
  CollectiveHandle iall_reduce(Tensor& t, ReduceOp op = ReduceOp::kSum);

  /// Gathers equal-size shards: out.numel() == shard.numel() * size().
  /// Rank r's shard lands at offset r * shard.numel().
  CollectiveHandle iall_gather(const Tensor& shard, Tensor& out);

  /// Reduces `in` (same numel everywhere) and scatters equal chunks:
  /// shard.numel() * size() == in.numel(); rank r receives chunk r.
  CollectiveHandle ireduce_scatter(const Tensor& in, Tensor& shard,
                                   ReduceOp op = ReduceOp::kSum);

  /// Copies root's tensor to every rank (same numel everywhere).
  CollectiveHandle ibroadcast(Tensor& t, int root);

  // ----- blocking wrappers (post + wait) ----------------------------------
  void all_reduce(Tensor& t, ReduceOp op = ReduceOp::kSum);
  void all_gather(const Tensor& shard, Tensor& out);
  void reduce_scatter(const Tensor& in, Tensor& shard,
                      ReduceOp op = ReduceOp::kSum);
  void broadcast(Tensor& t, int root);

  /// Collective split: ranks with equal `color` form a new communicator;
  /// ranks are ordered by `key` (ties broken by old rank). Every rank of
  /// this communicator must call split with some color.
  Communicator split(int color, int key);

  /// Fatal-error propagation (the fault-injection / crash path): poisons
  /// this communicator and, recursively, every sub-communicator created
  /// from it via split(). Every in-flight collective completes with an
  /// error that peers' wait() calls rethrow (instead of deadlocking on a
  /// rank that died), and every subsequent post throws immediately.
  /// Aborting is idempotent and may be called from any rank or thread.
  /// Plain barrier() rendezvous are not covered — abort unblocks
  /// collective data exchange, the only thing a mid-step failure leaves
  /// peers blocked on.
  void abort(const std::string& reason);

 private:
  CollectiveHandle post(detail::PendingOp::Kind kind, ReduceOp red, int root,
                        const float* src, float* dst, i64 count);

  std::shared_ptr<detail::CommGroup> group_;
  int rank_;
};

/// Launches `n_ranks` threads, each running fn(comm) with a communicator
/// over all ranks, and joins them. The first exception (if any) is
/// rethrown on the caller after all threads complete.
void run_ranks(int n_ranks, const std::function<void(Communicator&)>& fn);

}  // namespace geofm::comm
