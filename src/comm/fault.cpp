#include "comm/fault.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace geofm::comm {

FaultEvent FaultEvent::kill_at_step(int rank, i64 step) {
  FaultEvent e;
  e.kind = Kind::kKill;
  e.rank = rank;
  e.step = step;
  return e;
}

FaultEvent FaultEvent::kill_at_post(int rank, i64 after_posts) {
  FaultEvent e;
  e.kind = Kind::kKill;
  e.rank = rank;
  e.after_posts = after_posts;
  return e;
}

FaultEvent FaultEvent::stall_at_step(int rank, i64 step, double seconds) {
  FaultEvent e;
  e.kind = Kind::kStall;
  e.rank = rank;
  e.step = step;
  e.seconds = seconds;
  return e;
}

FaultEvent FaultEvent::stall_at_post(int rank, i64 after_posts,
                                     double seconds) {
  FaultEvent e;
  e.kind = Kind::kStall;
  e.rank = rank;
  e.after_posts = after_posts;
  e.seconds = seconds;
  return e;
}

FaultEvent FaultEvent::slow_rank(int rank, i64 after_posts, double seconds,
                                 i64 posts_affected) {
  FaultEvent e;
  e.kind = Kind::kSlowRank;
  e.rank = rank;
  e.after_posts = after_posts;
  e.seconds = seconds;
  e.posts_affected = posts_affected;
  return e;
}

FaultEvent FaultEvent::corrupt_at_post(int rank, i64 after_posts) {
  FaultEvent e;
  e.kind = Kind::kCorrupt;
  e.rank = rank;
  e.after_posts = after_posts;
  return e;
}

FaultEvent FaultEvent::callback_every_step(
    std::function<void(Communicator&, i64)> fn) {
  FaultEvent e;
  e.kind = Kind::kCallback;
  e.rank = -1;
  e.callback = std::move(fn);
  return e;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), fired_(plan_.events.size(), false) {
  for (const auto& e : plan_.events) {
    GEOFM_CHECK(e.kind == FaultEvent::Kind::kCallback || e.rank >= 0,
                "fault event must target a specific rank");
    GEOFM_CHECK(e.kind != FaultEvent::Kind::kCallback || e.callback,
                "kCallback fault event without a callback");
  }
}

namespace {

// Flips one mantissa bit of one payload element, both chosen by a hash of
// (plan seed, rank, post index) — the same plan corrupts the same bit of
// the same element on every run.
void corrupt_payload(u64 seed, int rank, u64 post_index, float* payload,
                     i64 count) {
  if (payload == nullptr || count <= 0) return;
  const u64 h =
      mix64(seed ^ mix64(post_index + 0x9e3779b97f4a7c15ull) ^
            static_cast<u64>(static_cast<i64>(rank) + 1));
  const i64 at = static_cast<i64>(h % static_cast<u64>(count));
  u32 bits = 0;
  std::memcpy(&bits, &payload[at], sizeof(bits));
  bits ^= 1u << ((h >> 32) % 23);  // mantissa bit: perturbs, never NaNs
  std::memcpy(&payload[at], &bits, sizeof(bits));
  obs::trace_instant("fault.corrupt", "fault");
}

}  // namespace

void FaultInjector::at_step_point(Communicator& comm, i64 step) {
  const int rank = comm.global_rank();
  double sleep_seconds = 0;
  std::vector<std::function<void(Communicator&, i64)>> callbacks;
  std::string kill_reason;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < plan_.events.size(); ++i) {
      const FaultEvent& e = plan_.events[i];
      if (e.rank != -1 && e.rank != rank) continue;
      switch (e.kind) {
        case FaultEvent::Kind::kCallback:
          if (e.step == -1 || e.step == step) {
            if (e.step != -1) fired_[i] = true;
            callbacks.push_back(e.callback);
          }
          break;
        case FaultEvent::Kind::kStall:
          if (e.step == step && !fired_[i]) {
            fired_[i] = true;
            sleep_seconds += e.seconds;
          }
          break;
        case FaultEvent::Kind::kKill:
          if (e.step == step && !fired_[i]) {
            fired_[i] = true;
            kill_reason = "rank " + std::to_string(rank) +
                          " killed by fault plan at step " +
                          std::to_string(step);
          }
          break;
        case FaultEvent::Kind::kSlowRank:
        case FaultEvent::Kind::kCorrupt:
          break;  // post-boundary events only
      }
    }
  }
  // Side effects run with the injector unlocked: callbacks may post
  // collectives, stalls must not serialize peers' trigger checks, and the
  // kill path aborts the communicator (which wakes blocked peers).
  for (auto& cb : callbacks) cb(comm, step);
  if (sleep_seconds > 0) {
    obs::trace_instant("fault.stall", "fault");
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  if (!kill_reason.empty()) {
    obs::trace_instant("fault.kill", "fault");
    comm.abort(kill_reason);
    throw RankKilled(kill_reason, rank);
  }
}

FaultInjector::PostFault FaultInjector::before_post(int global_rank,
                                                    const char* op_label,
                                                    float* payload,
                                                    i64 count) {
  PostFault out;
  double sleep_seconds = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const u64 idx = posts_[global_rank]++;
    for (size_t i = 0; i < plan_.events.size(); ++i) {
      const FaultEvent& e = plan_.events[i];
      if (e.rank != global_rank || e.after_posts < 0) continue;
      const u64 trigger = static_cast<u64>(e.after_posts);
      switch (e.kind) {
        case FaultEvent::Kind::kStall:
          if (idx == trigger && !fired_[i]) {
            fired_[i] = true;
            sleep_seconds += e.seconds;
          }
          break;
        case FaultEvent::Kind::kSlowRank:
          if (idx >= trigger &&
              (e.posts_affected <= 0 ||
               idx < trigger + static_cast<u64>(e.posts_affected))) {
            fired_[i] = true;
            sleep_seconds += e.seconds;
          }
          break;
        case FaultEvent::Kind::kCorrupt:
          if (idx == trigger && !fired_[i]) {
            fired_[i] = true;
            corrupt_payload(plan_.seed, global_rank, idx, payload, count);
          }
          break;
        case FaultEvent::Kind::kKill:
          if (idx == trigger && !fired_[i]) {
            fired_[i] = true;
            out.kill = true;
            out.kill_reason = "rank " + std::to_string(global_rank) +
                              " killed by fault plan at " + op_label +
                              " post " + std::to_string(idx);
          }
          break;
        case FaultEvent::Kind::kCallback:
          break;  // step-point events only
      }
    }
  }
  if (sleep_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  return out;
}

std::vector<bool> FaultInjector::fired() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fired_;
}

}  // namespace geofm::comm
