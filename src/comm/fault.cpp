#include "comm/fault.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace geofm::comm {

FaultEvent FaultEvent::kill_at_step(int rank, i64 step) {
  FaultEvent e;
  e.kind = Kind::kKill;
  e.rank = rank;
  e.step = step;
  return e;
}

FaultEvent FaultEvent::kill_at_post(int rank, i64 after_posts) {
  FaultEvent e;
  e.kind = Kind::kKill;
  e.rank = rank;
  e.after_posts = after_posts;
  return e;
}

FaultEvent FaultEvent::stall_at_step(int rank, i64 step, double seconds) {
  FaultEvent e;
  e.kind = Kind::kStall;
  e.rank = rank;
  e.step = step;
  e.seconds = seconds;
  return e;
}

FaultEvent FaultEvent::stall_at_post(int rank, i64 after_posts,
                                     double seconds) {
  FaultEvent e;
  e.kind = Kind::kStall;
  e.rank = rank;
  e.after_posts = after_posts;
  e.seconds = seconds;
  return e;
}

FaultEvent FaultEvent::slow_rank(int rank, i64 after_posts, double seconds,
                                 i64 posts_affected) {
  FaultEvent e;
  e.kind = Kind::kSlowRank;
  e.rank = rank;
  e.after_posts = after_posts;
  e.seconds = seconds;
  e.posts_affected = posts_affected;
  return e;
}

FaultEvent FaultEvent::corrupt_at_post(int rank, i64 after_posts) {
  FaultEvent e;
  e.kind = Kind::kCorrupt;
  e.rank = rank;
  e.after_posts = after_posts;
  return e;
}

FaultEvent FaultEvent::callback_every_step(
    std::function<void(Communicator&, i64)> fn) {
  FaultEvent e;
  e.kind = Kind::kCallback;
  e.rank = -1;
  e.callback = std::move(fn);
  return e;
}

namespace {

FaultEvent make_io_event(FaultEvent::Kind kind, IoPath path, int rank,
                         i64 after_io, double seconds, i64 ops_affected) {
  FaultEvent e;
  e.kind = kind;
  e.rank = rank;
  e.io_path = path;
  e.after_io = after_io;
  e.seconds = seconds;
  e.ops_affected = ops_affected;
  return e;
}

}  // namespace

FaultEvent FaultEvent::io_fail_write(int rank, i64 after_io,
                                     i64 ops_affected) {
  return make_io_event(Kind::kIoFail, IoPath::kWrite, rank, after_io, 0,
                       ops_affected);
}

FaultEvent FaultEvent::io_torn_write(int rank, i64 after_io) {
  return make_io_event(Kind::kIoTorn, IoPath::kWrite, rank, after_io, 0, 1);
}

FaultEvent FaultEvent::io_slow_write(int rank, i64 after_io, double seconds,
                                     i64 ops_affected) {
  return make_io_event(Kind::kIoSlow, IoPath::kWrite, rank, after_io, seconds,
                       ops_affected);
}

FaultEvent FaultEvent::io_unreadable_at_restore(int rank, i64 after_io) {
  return make_io_event(Kind::kIoUnreadable, IoPath::kRead, rank, after_io, 0,
                       1);
}

FaultEvent FaultEvent::io_fail_upload(i64 after_io, i64 ops_affected) {
  return make_io_event(Kind::kIoFail, IoPath::kUpload, 0, after_io, 0,
                       ops_affected);
}

FaultEvent FaultEvent::io_torn_upload(i64 after_io) {
  return make_io_event(Kind::kIoTorn, IoPath::kUpload, 0, after_io, 0, 1);
}

FaultEvent FaultEvent::io_slow_upload(i64 after_io, double seconds,
                                      i64 ops_affected) {
  return make_io_event(Kind::kIoSlow, IoPath::kUpload, 0, after_io, seconds,
                       ops_affected);
}

FaultEvent FaultEvent::loader_worker_kill(int rank, i64 batch) {
  return make_io_event(Kind::kLoaderWorkerKill, IoPath::kRender, rank, batch,
                       0, 1);
}

FaultEvent FaultEvent::loader_slow_render(int rank, i64 batch, double seconds,
                                          i64 ops_affected) {
  return make_io_event(Kind::kLoaderSlowRender, IoPath::kRender, rank, batch,
                       seconds, ops_affected);
}

FaultEvent FaultEvent::loader_poison(int rank, i64 batch) {
  return make_io_event(Kind::kLoaderPoison, IoPath::kRender, rank, batch, 0,
                       1);
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), fired_(plan_.events.size(), false) {
  for (const auto& e : plan_.events) {
    if (e.is_io()) {
      GEOFM_CHECK(e.io_path != IoPath::kNone &&
                      e.io_path != IoPath::kRender,
                  "IO fault event must name a storage io_path");
      GEOFM_CHECK(e.after_io >= 0,
                  "IO fault event must trigger at an op index");
      GEOFM_CHECK(e.rank >= -1, "IO fault event rank must be >= -1");
      has_io_events_ = true;
      continue;
    }
    if (e.is_loader()) {
      GEOFM_CHECK(e.io_path == IoPath::kRender,
                  "loader fault event must use io_path render");
      GEOFM_CHECK(e.after_io >= 0,
                  "loader fault event must trigger at a batch ordinal");
      GEOFM_CHECK(e.rank >= -1, "loader fault event rank must be >= -1");
      has_loader_events_ = true;
      continue;
    }
    GEOFM_CHECK(e.kind == FaultEvent::Kind::kCallback || e.rank >= 0,
                "fault event must target a specific rank");
    GEOFM_CHECK(e.kind != FaultEvent::Kind::kCallback || e.callback,
                "kCallback fault event without a callback");
  }
}

namespace {

// Flips one mantissa bit of one payload element, both chosen by a hash of
// (plan seed, rank, post index) — the same plan corrupts the same bit of
// the same element on every run.
void corrupt_payload(u64 seed, int rank, u64 post_index, float* payload,
                     i64 count) {
  if (payload == nullptr || count <= 0) return;
  const u64 h =
      mix64(seed ^ mix64(post_index + 0x9e3779b97f4a7c15ull) ^
            static_cast<u64>(static_cast<i64>(rank) + 1));
  const i64 at = static_cast<i64>(h % static_cast<u64>(count));
  u32 bits = 0;
  std::memcpy(&bits, &payload[at], sizeof(bits));
  bits ^= 1u << ((h >> 32) % 23);  // mantissa bit: perturbs, never NaNs
  std::memcpy(&payload[at], &bits, sizeof(bits));
  obs::trace_instant("fault.corrupt", "fault");
}

}  // namespace

void FaultInjector::at_step_point(Communicator& comm, i64 step) {
  const int rank = comm.global_rank();
  double sleep_seconds = 0;
  std::vector<std::function<void(Communicator&, i64)>> callbacks;
  std::string kill_reason;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < plan_.events.size(); ++i) {
      const FaultEvent& e = plan_.events[i];
      if (e.rank != -1 && e.rank != rank) continue;
      switch (e.kind) {
        case FaultEvent::Kind::kCallback:
          if (e.step == -1 || e.step == step) {
            if (e.step != -1) fired_[i] = true;
            callbacks.push_back(e.callback);
          }
          break;
        case FaultEvent::Kind::kStall:
          if (e.step == step && !fired_[i]) {
            fired_[i] = true;
            sleep_seconds += e.seconds;
          }
          break;
        case FaultEvent::Kind::kKill:
          if (e.step == step && !fired_[i]) {
            fired_[i] = true;
            kill_reason = "rank " + std::to_string(rank) +
                          " killed by fault plan at step " +
                          std::to_string(step);
          }
          break;
        default:
          break;  // post-boundary, io-seam, and loader-seam events
      }
    }
  }
  // Side effects run with the injector unlocked: callbacks may post
  // collectives, stalls must not serialize peers' trigger checks, and the
  // kill path aborts the communicator (which wakes blocked peers).
  for (auto& cb : callbacks) cb(comm, step);
  if (sleep_seconds > 0) {
    obs::trace_instant("fault.stall", "fault");
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  if (!kill_reason.empty()) {
    obs::trace_instant("fault.kill", "fault");
    comm.abort(kill_reason, "fault_kill");
    throw RankKilled(kill_reason, rank);
  }
}

FaultInjector::PostFault FaultInjector::before_post(int global_rank,
                                                    const char* op_label,
                                                    float* payload,
                                                    i64 count) {
  PostFault out;
  double sleep_seconds = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const u64 idx = posts_[global_rank]++;
    for (size_t i = 0; i < plan_.events.size(); ++i) {
      const FaultEvent& e = plan_.events[i];
      if (e.rank != global_rank || e.after_posts < 0) continue;
      const u64 trigger = static_cast<u64>(e.after_posts);
      switch (e.kind) {
        case FaultEvent::Kind::kStall:
          if (idx == trigger && !fired_[i]) {
            fired_[i] = true;
            sleep_seconds += e.seconds;
          }
          break;
        case FaultEvent::Kind::kSlowRank:
          if (idx >= trigger &&
              (e.posts_affected <= 0 ||
               idx < trigger + static_cast<u64>(e.posts_affected))) {
            fired_[i] = true;
            sleep_seconds += e.seconds;
          }
          break;
        case FaultEvent::Kind::kCorrupt:
          if (idx == trigger && !fired_[i]) {
            fired_[i] = true;
            corrupt_payload(plan_.seed, global_rank, idx, payload, count);
          }
          break;
        case FaultEvent::Kind::kKill:
          if (idx == trigger && !fired_[i]) {
            fired_[i] = true;
            out.kill = true;
            out.kill_reason = "rank " + std::to_string(global_rank) +
                              " killed by fault plan at " + op_label +
                              " post " + std::to_string(idx);
          }
          break;
        default:
          break;  // step-point, io-seam, and loader-seam events
      }
    }
  }
  if (sleep_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  return out;
}

namespace {

const char* io_path_name(IoPath path) {
  switch (path) {
    case IoPath::kNone:
      return "none";
    case IoPath::kWrite:
      return "write";
    case IoPath::kRead:
      return "read";
    case IoPath::kUpload:
      return "upload";
    case IoPath::kRender:
      return "render";
  }
  return "none";
}

}  // namespace

FaultInjector::IoFault FaultInjector::before_io(IoPath path, int rank) {
  IoFault out;
  if (!has_io_events_ || path == IoPath::kNone) return out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const u64 idx = io_ops_[{static_cast<int>(path), rank}]++;
    for (size_t i = 0; i < plan_.events.size(); ++i) {
      const FaultEvent& e = plan_.events[i];
      if (!e.is_io() || e.io_path != path) continue;
      if (e.rank != -1 && e.rank != rank) continue;
      const u64 trigger = static_cast<u64>(e.after_io);
      const bool in_window =
          idx >= trigger && (e.ops_affected <= 0 ||
                             idx < trigger + static_cast<u64>(e.ops_affected));
      const std::string site = std::string(io_path_name(path)) + " op " +
                               std::to_string(idx) + " on rank " +
                               std::to_string(rank);
      switch (e.kind) {
        case FaultEvent::Kind::kIoFail:
          if (in_window) {
            fired_[i] = true;
            out.fail = true;
            out.reason = "injected io failure (" + site + ")";
          }
          break;
        case FaultEvent::Kind::kIoTorn:
          if (idx == trigger && !fired_[i]) {
            fired_[i] = true;
            out.torn = true;
            out.reason = "injected torn write (" + site + ")";
          }
          break;
        case FaultEvent::Kind::kIoSlow:
          if (in_window) {
            fired_[i] = true;
            out.delay_seconds += e.seconds;
          }
          break;
        case FaultEvent::Kind::kIoUnreadable:
          if (idx == trigger && !fired_[i]) {
            fired_[i] = true;
            out.unreadable = true;
            out.reason = "injected unreadable shard (" + site + ")";
          }
          break;
        default:
          break;
      }
    }
  }
  // The slow-disk delay sleeps inline (mirroring before_post) so callers
  // need no extra plumbing; `delay_seconds` is reported for accounting.
  if (out.delay_seconds > 0) {
    obs::trace_instant("fault.io_slow", "fault");
    std::this_thread::sleep_for(
        std::chrono::duration<double>(out.delay_seconds));
  }
  if (out.any()) obs::trace_instant("fault.io", "fault");
  return out;
}

FaultInjector::LoaderFault FaultInjector::before_render(int rank,
                                                        i64 batch_ordinal) {
  LoaderFault out;
  if (!has_loader_events_ || batch_ordinal < 0) return out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < plan_.events.size(); ++i) {
      const FaultEvent& e = plan_.events[i];
      if (!e.is_loader()) continue;
      if (e.rank != -1 && e.rank != rank) continue;
      const i64 trigger = e.after_io;
      const std::string site = "render of batch " +
                               std::to_string(batch_ordinal) + " on rank " +
                               std::to_string(rank);
      switch (e.kind) {
        case FaultEvent::Kind::kLoaderWorkerKill:
          if (batch_ordinal == trigger && !fired_[i]) {
            fired_[i] = true;
            out.kill_worker = true;
            out.reason = "injected loader worker death (" + site + ")";
          }
          break;
        case FaultEvent::Kind::kLoaderSlowRender:
          if (batch_ordinal >= trigger &&
              (e.ops_affected <= 0 ||
               batch_ordinal < trigger + e.ops_affected)) {
            fired_[i] = true;
            out.delay_seconds += e.seconds;
          }
          break;
        case FaultEvent::Kind::kLoaderPoison:
          if (batch_ordinal == trigger && !fired_[i]) {
            fired_[i] = true;
            out.poison = true;
            out.poison_site =
                mix64(plan_.seed ^
                      mix64(static_cast<u64>(batch_ordinal) +
                            0x9e3779b97f4a7c15ull) ^
                      static_cast<u64>(static_cast<i64>(rank) + 1));
            out.reason = "injected poisoned sample (" + site + ")";
          }
          break;
        default:
          break;
      }
    }
  }
  // The slow-render delay sleeps inline (mirroring before_io): a hung
  // render is exactly a worker thread that does not come back, which is
  // what the loader watchdog exists to detect.
  if (out.delay_seconds > 0) {
    obs::trace_instant("fault.loader_slow", "fault");
    std::this_thread::sleep_for(
        std::chrono::duration<double>(out.delay_seconds));
  }
  if (out.kill_worker || out.poison) {
    obs::trace_instant("fault.loader", "fault");
  }
  return out;
}

std::vector<bool> FaultInjector::fired() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fired_;
}

FaultPlan FaultInjector::fired_plan() const {
  std::lock_guard<std::mutex> lk(mu_);
  FaultPlan out;
  out.seed = plan_.seed;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    if (fired_[i]) out.events.push_back(plan_.events[i]);
  }
  return out;
}

}  // namespace geofm::comm
