// Alpha-beta cost model for collectives over Frontier's hierarchical
// topology. Bandwidth-optimal ring data movement with tree-depth latency
// for all-reduce, plus a per-call host launch overhead — the three terms
// whose interplay produces the paper's DDP-vs-FSDP and HYBRID-group-size
// crossovers.
#pragma once

#include "sim/machine.hpp"

namespace geofm::sim {

/// Shape of one process group within the machine topology.
struct CommGroupShape {
  int size = 1;                // ranks in this group
  int ranks_per_node = 1;      // co-located members per node
  /// Inter-node flows that simultaneously share one node's NIC pool when
  /// all sibling groups communicate at once (e.g. 8 replica groups on one
  /// node => 8 flows share the 100 GB/s node budget).
  int concurrent_flows_per_node = 1;
  /// Number of nodes the group spans (jitter grows with this).
  int nodes_spanned = 1;
  /// GPUs per node of the underlying machine (for multi-rail detection).
  int gpus_per_node = 8;

  bool crosses_nodes() const { return size > ranks_per_node; }
  /// A group containing every GCD of each node it touches can stripe its
  /// boundary traffic across all 4 NICs (RCCL multi-rail).
  bool whole_node_groups() const { return ranks_per_node == gpus_per_node; }
};

/// Builds the sharding-group shape for a group of `group_size` consecutive
/// ranks on nodes of `gpus_per_node`.
CommGroupShape shard_group_shape(int group_size, int gpus_per_node);

/// Builds the replica-group shape for HYBRID/NO_SHARD data parallelism:
/// `replicas` ranks, one per sharding group, `shard_group_size` sibling
/// groups communicating concurrently.
CommGroupShape replica_group_shape(int replicas, int shard_group_size,
                                   int gpus_per_node);

/// Effective per-flow bandwidth (bytes/s) for the group.
double group_bandwidth(const CommGroupShape& g, const MachineSpec& m);
/// Per-hop latency for the group.
double group_latency(const CommGroupShape& g, const MachineSpec& m);

/// Time to all-gather `shard_bytes` from each rank (ring).
double all_gather_seconds(double shard_bytes, const CommGroupShape& g,
                          const MachineSpec& m);
/// Time to reduce-scatter `total_bytes` down to per-rank shards (ring).
double reduce_scatter_seconds(double total_bytes, const CommGroupShape& g,
                              const MachineSpec& m);
/// Time to all-reduce `total_bytes` (ring bandwidth + tree latency).
double all_reduce_seconds(double total_bytes, const CommGroupShape& g,
                          const MachineSpec& m);

}  // namespace geofm::sim
