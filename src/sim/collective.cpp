#include "sim/collective.hpp"

#include <algorithm>
#include <cmath>

namespace geofm::sim {

CommGroupShape shard_group_shape(int group_size, int gpus_per_node) {
  GEOFM_CHECK(group_size >= 1);
  CommGroupShape g;
  g.size = group_size;
  g.ranks_per_node = std::min(group_size, gpus_per_node);
  if (group_size > gpus_per_node) {
    // One world-spanning group: a single boundary flow per node.
    g.concurrent_flows_per_node = 1;
    g.nodes_spanned = (group_size + gpus_per_node - 1) / gpus_per_node;
  } else {
    // gpus_per_node/group_size sibling groups per node, all intra-node.
    g.concurrent_flows_per_node = std::max(1, gpus_per_node / group_size);
    g.nodes_spanned = 1;
  }
  g.gpus_per_node = gpus_per_node;
  return g;
}

CommGroupShape replica_group_shape(int replicas, int shard_group_size,
                                   int gpus_per_node) {
  GEOFM_CHECK(replicas >= 1 && shard_group_size >= 1);
  CommGroupShape g;
  g.size = replicas;
  // Members of one replica group co-located on a node: each node hosts
  // gpus_per_node ranks spread over shard groups of size s, so a replica
  // group has gpus_per_node / s members per node (>= 1 when s <= gpn).
  g.ranks_per_node =
      std::max(1, gpus_per_node / std::min(shard_group_size, gpus_per_node));
  // All `s` sibling replica groups reduce concurrently; each contributes
  // one boundary flow per node.
  g.concurrent_flows_per_node = std::min(shard_group_size, gpus_per_node);
  g.nodes_spanned = std::max(1, replicas / g.ranks_per_node);
  g.gpus_per_node = gpus_per_node;
  return g;
}

namespace {

// Jitter/straggler multiplier for groups spanning many nodes.
double jitter_factor(const CommGroupShape& g, const MachineSpec& m) {
  if (!g.crosses_nodes() || g.nodes_spanned <= 1) return 1.0;
  return 1.0 + m.inter_node_jitter_per_log2_nodes *
                   std::log2(static_cast<double>(g.nodes_spanned));
}

}  // namespace

double group_bandwidth(const CommGroupShape& g, const MachineSpec& m) {
  if (!g.crosses_nodes()) return m.ring_efficiency * m.intra_node.bandwidth;
  double nic_share = 0.8 * m.nic_node_bandwidth /
                     std::max(1, g.concurrent_flows_per_node);
  if (!g.whole_node_groups()) {
    // A group with fewer than all GCDs per node drives a single NIC path;
    // whole-node groups stripe across all four rails (RCCL multi-rail).
    nic_share = std::min(nic_share, m.nic_flow_bandwidth);
    if (g.ranks_per_node > 1) {
      // Stride-interleaved rings (several co-located members that are not
      // the whole node) zig-zag between IF and NIC hops and lose protocol
      // efficiency.
      nic_share *= 0.75;
    }
  }
  return m.ring_efficiency * std::min(nic_share, m.intra_node.bandwidth);
}

double group_latency(const CommGroupShape& g, const MachineSpec& m) {
  return g.crosses_nodes() ? m.inter_node_latency : m.intra_node.latency;
}

double all_gather_seconds(double shard_bytes, const CommGroupShape& g,
                          const MachineSpec& m) {
  if (g.size <= 1) return 0.0;
  const double hops = static_cast<double>(g.size - 1);
  return m.collective_launch_overhead +
         jitter_factor(g, m) * (hops * group_latency(g, m) +
                                hops * shard_bytes / group_bandwidth(g, m));
}

double reduce_scatter_seconds(double total_bytes, const CommGroupShape& g,
                              const MachineSpec& m) {
  if (g.size <= 1) return 0.0;
  const double hops = static_cast<double>(g.size - 1);
  const double chunk = total_bytes / static_cast<double>(g.size);
  return m.collective_launch_overhead +
         jitter_factor(g, m) * (hops * group_latency(g, m) +
                                hops * chunk / group_bandwidth(g, m));
}

double all_reduce_seconds(double total_bytes, const CommGroupShape& g,
                          const MachineSpec& m) {
  if (g.size <= 1) return 0.0;
  const double n = static_cast<double>(g.size);
  const double bw = group_bandwidth(g, m);
  const double lat = group_latency(g, m);
  // RCCL picks the faster of a bandwidth-optimal ring (2(N-1) latency
  // hops, 2(N-1)/N payload volumes) and a latency-optimal tree (2 log2 N
  // hops, full payload per hop). Small messages over deep rings — DDP's
  // fixed 25 MB buckets at scale — are latency-bound; large per-unit FSDP
  // messages stay bandwidth-bound.
  const double ring = 2.0 * (n - 1.0) * lat +
                      2.0 * (n - 1.0) / n * total_bytes / bw;
  const double tree = 2.0 * std::log2(n) * (lat + total_bytes / bw);
  return m.collective_launch_overhead +
         jitter_factor(g, m) * std::min(ring, tree);
}

}  // namespace geofm::sim
