// Discrete-event simulation of one training step under a parallelization
// strategy, on the Frontier machine model.
//
// The simulator executes the same per-unit schedule the functional FSDP
// runtime performs (gather -> compute -> reduce, with prefetch windows and
// the all-gather rate limiter), on two FIFO resources per rank — a compute
// stream and a communication stream — so compute/communication overlap,
// exposed communication time, and all the crossovers of Figs 1-4 are
// emergent properties of message sizes, call counts and link bandwidths.
#pragma once

#include <string>
#include <vector>

#include "parallel/fsdp.hpp"
#include "sim/collective.hpp"
#include "sim/machine.hpp"
#include "sim/workload.hpp"

namespace geofm::sim {

/// Parallelization configuration for a simulated run.
struct ParallelPlan {
  enum class Kind { kDdp, kFsdp };
  Kind kind = Kind::kFsdp;
  parallel::FsdpOptions fsdp;      // used when kind == kFsdp
  i64 ddp_bucket_bytes = 25ll * 1024 * 1024;  // used when kind == kDdp
  bool disable_comm = false;       // "syn no comm" mode of Fig 1
};

/// Simulated step outcome for one rank (SPMD-symmetric).
struct StepTiming {
  double step_seconds = 0;
  double compute_seconds = 0;   // busy time on the compute stream
  double comm_seconds = 0;      // busy time on the comm stream
  double exposed_comm_seconds = 0;  // step time not hidden behind compute
  double images_per_second_per_rank = 0;
  double images_per_second_total = 0;
  int comm_calls = 0;
};

/// Per-rank memory footprint (bytes), by contribution.
struct MemoryFootprint {
  double params = 0;
  double grads = 0;
  double optimizer = 0;
  double activations = 0;
  double transient_unsharded = 0;  // peak gathered full-parameter buffers
  double total() const {
    return params + grads + optimizer + activations + transient_unsharded;
  }
};

/// Average power draw per GCD over a step (for the Fig 4 trace).
struct PowerDraw {
  double average_watts = 0;
  double compute_utilization = 0;  // fraction of step on compute
  double comm_utilization = 0;
};

class TrainingSimulator {
 public:
  TrainingSimulator(StepWorkload workload, MachineSpec machine, int nodes,
                    ParallelPlan plan);

  /// Simulates one steady-state training step.
  StepTiming simulate_step() const;
  MemoryFootprint memory_footprint() const;
  PowerDraw power_draw() const;

  int world_size() const { return nodes_ * machine_.gpus_per_node; }
  int shard_group_size() const { return shard_group_size_; }

 private:
  struct Task {
    bool is_comm = false;
    double duration = 0;
    std::vector<int> deps;  // task ids that must complete first
  };

  void build_fsdp_tasks(std::vector<Task>& tasks) const;
  void build_ddp_tasks(std::vector<Task>& tasks) const;

  double gather_seconds(i64 elements) const;
  double reduce_scatter_grads_seconds(i64 elements) const;
  double replica_all_reduce_seconds(i64 elements) const;

  StepWorkload workload_;
  MachineSpec machine_;
  int nodes_;
  ParallelPlan plan_;

  int shard_group_size_ = 1;
  CommGroupShape shard_shape_;
  CommGroupShape replica_shape_;
};

/// Dataloader/IO throughput model for Fig 1's IO curve: images/s a node's
/// worker pool can deliver, bounded by decode CPU and storage bandwidth.
double io_images_per_second_per_node(const MachineSpec& machine);

/// One row of a weak-scaling experiment.
struct WeakScalingPoint {
  int nodes = 0;
  double real_ips = 0;        // with dataloader interaction
  double syn_ips = 0;         // cached/synthetic data: compute + comm
  double syn_no_comm_ips = 0; // communication disabled
  double io_ips = 0;          // dataloader in isolation
  double ideal_ips = 0;       // linear from 1 node
  double comm_fraction = 0;   // exposed comm / step
  double memory_gb = 0;
};

/// Runs the Fig-1-style weak scaling sweep for a workload/plan.
std::vector<WeakScalingPoint> weak_scaling(
    const StepWorkload& workload, const MachineSpec& machine,
    const std::vector<int>& node_counts, const ParallelPlan& plan);

std::string to_string(ParallelPlan::Kind k);

// ----- time-to-train estimation ------------------------------------------------

struct TrainingEstimate {
  double step_seconds = 0;
  i64 steps = 0;              // optimizer steps for the full run
  double wall_hours = 0;
  double node_hours = 0;      // wall_hours * nodes (allocation cost)
  double energy_mwh = 0;      // GCD power integrated over the run
  double avg_gcd_watts = 0;
};

/// Estimates a full pretraining campaign: `epochs` passes over
/// `corpus_images` with the per-rank workload's local batch on `nodes`
/// nodes. This is the planning question the paper's "practical guide"
/// framing targets (cf. Florence: 10 days x 512 A100s).
TrainingEstimate estimate_pretraining(const StepWorkload& workload,
                                      const MachineSpec& machine, int nodes,
                                      const ParallelPlan& plan,
                                      i64 corpus_images, i64 epochs);

}  // namespace geofm::sim
