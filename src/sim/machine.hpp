// Machine model of the Frontier supercomputer (paper Sec. III-B).
//
// Each node: one 64-core EPYC CPU + 4 MI250X GPUs = 8 GCDs ("GPUs" in the
// paper's and our terminology), 64 GB HBM each. GCDs within a node are
// connected by Infinity Fabric (50 GB/s per link); nodes by Slingshot-11
// (4 x 25 GB/s NICs = 100 GB/s per node aggregate).
//
// All quantities are *effective, sustained* figures for deep-learning
// workloads — not datasheet peaks — chosen so simulated throughput lands
// in the regime the paper reports (e.g. ViT-5B ~1.5k ips on 32 nodes).
#pragma once

#include "util/common.hpp"

namespace geofm::sim {

struct GpuSpec {
  /// Sustained trainable-matmul throughput per GCD (FLOP/s). ~25% of the
  /// MI250X per-GCD fp16 peak (191.5 TFLOPS), matching measured ViT
  /// training efficiency on ROCm at the paper's software stack.
  double sustained_flops = 48e12;
  /// HBM capacity per GCD.
  double hbm_bytes = 64.0 * (1ull << 30);
  /// Sustained HBM bandwidth per GCD (for memory-bound layer costs).
  double hbm_bandwidth = 1.3e12;
};

struct LinkSpec {
  double bandwidth;  // bytes/s, per flow
  double latency;    // seconds per hop
};

struct MachineSpec {
  GpuSpec gpu;
  int gpus_per_node = 8;

  /// Infinity Fabric GPU-GPU within a node (50 GB/s per the paper).
  LinkSpec intra_node{50e9, 1.0e-6};
  /// Slingshot-11: one NIC flow sustains ~20 GB/s effective (25 GB/s line
  /// rate x RCCL efficiency); a node aggregates 100 GB/s across its 4 NICs.
  double nic_flow_bandwidth = 20e9;
  double nic_node_bandwidth = 100e9;
  double inter_node_latency = 2.0e-6;

  /// Network jitter/straggler factor: inter-node collective time grows by
  /// this fraction per doubling of the nodes a group spans (fabric
  /// contention, OS noise, imbalanced arrival).
  double inter_node_jitter_per_log2_nodes = 0.10;

  /// RCCL protocol efficiency: achieved collective bandwidth as a fraction
  /// of the bottleneck link's rate (measured ~0.6 on MI250X + Slingshot
  /// for large messages).
  double ring_efficiency = 0.60;

  /// Fraction of *overlapped* communication time that still costs step
  /// time: RCCL kernels execute on the GCD's compute units and slow
  /// concurrent GEMMs. This is why "syn" trails "syn no comm" even when
  /// communication is nominally hidden (paper Fig. 1).
  double comm_compute_contention = 0.5;

  /// Slowdown on all-gathers when limit_all_gathers is disabled: unbounded
  /// in-flight gathers contend for NIC/HBM and allocator (paper Fig. 2
  /// shows the limiter improving throughput).
  double unlimited_gather_penalty = 1.12;

  /// Extra cost on NO_SHARD's per-unit all-reduce relative to the
  /// HYBRID(1) code path. Algorithmically identical, but the paper
  /// measures HYBRID_1GPU consistently ahead of NO_SHARD and attributes
  /// it to implementation differences inside FSDP.
  double no_shard_allreduce_penalty = 1.06;

  /// Host-side launch overhead per collective call (kernel launch +
  /// RCCL bookkeeping). This is what punishes many-small-message schemes.
  double collective_launch_overhead = 25e-6;

  /// Additional CPU-side cost per sharding operation (flat-parameter
  /// copy-in/out, stream bookkeeping) paid by all-gather/reduce-scatter
  /// of a unit. This is the synchronization overhead the paper blames for
  /// HYBRID_1GPU beating HYBRID_2GPUs on small models.
  double shard_op_overhead = 150e-6;

  /// Per-step Python/hook overhead of the DDP wrapper (bucket management,
  /// autograd hooks) relative to FSDP's fused path.
  double ddp_step_overhead = 5e-3;

  /// Host-side per-step overhead (optimizer launch, dataloader handoff).
  double step_overhead = 1.5e-3;

  // ----- power model (per GCD) --------------------------------------------
  double idle_power_w = 90.0;
  double compute_power_w = 410.0;  // additional draw at full compute
  double comm_power_w = 60.0;      // additional draw while communicating

  // ----- IO subsystem -------------------------------------------------------
  /// Per-node effective parallel-filesystem read bandwidth (Lustre/Orion
  /// share, steady state).
  double storage_bandwidth_per_node = 4e9;
  /// End-to-end per-image dataloader pipeline cost per worker (512^2
  /// decode + augmentations + collation + H2D handoff, Python overhead
  /// included).
  double decode_seconds_per_image = 0.33;
  int dataloader_workers_per_gpu = 4;  // paper value
  /// Bytes per stored (compressed) training image at 512^2.
  double stored_image_bytes = 150e3;
};

/// The Frontier configuration used throughout the benchmarks.
MachineSpec frontier();

}  // namespace geofm::sim
