#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

namespace geofm::sim {

using parallel::BackwardPrefetch;
using parallel::ShardingStrategy;

std::string to_string(ParallelPlan::Kind k) {
  return k == ParallelPlan::Kind::kDdp ? "DDP" : "FSDP";
}

TrainingSimulator::TrainingSimulator(StepWorkload workload,
                                     MachineSpec machine, int nodes,
                                     ParallelPlan plan)
    : workload_(std::move(workload)),
      machine_(machine),
      nodes_(nodes),
      plan_(plan) {
  GEOFM_CHECK(nodes_ >= 1);
  const int world = world_size();

  if (plan_.kind == ParallelPlan::Kind::kDdp) {
    shard_group_size_ = 1;
  } else {
    switch (plan_.fsdp.strategy) {
      case ShardingStrategy::kNoShard:
        shard_group_size_ = 1;
        break;
      case ShardingStrategy::kFullShard:
      case ShardingStrategy::kShardGradOp:
        shard_group_size_ = world;
        break;
      case ShardingStrategy::kHybridShard:
        GEOFM_CHECK(plan_.fsdp.hybrid_group_size >= 1 &&
                        world % plan_.fsdp.hybrid_group_size == 0,
                    "hybrid group must divide world");
        shard_group_size_ = plan_.fsdp.hybrid_group_size;
        break;
    }
  }
  shard_shape_ = shard_group_shape(shard_group_size_, machine_.gpus_per_node);
  replica_shape_ = replica_group_shape(world / shard_group_size_,
                                       shard_group_size_,
                                       machine_.gpus_per_node);
}

double TrainingSimulator::gather_seconds(i64 elements) const {
  if (plan_.disable_comm || shard_group_size_ <= 1) return 0.0;
  const double shard_bytes =
      4.0 * static_cast<double>(elements) / shard_group_size_;
  double t = machine_.shard_op_overhead +
             all_gather_seconds(shard_bytes, shard_shape_, machine_);
  if (plan_.kind == ParallelPlan::Kind::kFsdp &&
      !plan_.fsdp.limit_all_gathers) {
    // Unbounded in-flight gathers contend for the NIC/HBM.
    t *= machine_.unlimited_gather_penalty;
  }
  return t;
}

double TrainingSimulator::reduce_scatter_grads_seconds(i64 elements) const {
  if (plan_.disable_comm || shard_group_size_ <= 1) return 0.0;
  return machine_.shard_op_overhead +
         reduce_scatter_seconds(4.0 * static_cast<double>(elements),
                                shard_shape_, machine_);
}

double TrainingSimulator::replica_all_reduce_seconds(i64 elements) const {
  if (plan_.disable_comm || replica_shape_.size <= 1) return 0.0;
  const double bytes =
      4.0 * static_cast<double>(elements) / shard_group_size_;
  double t = all_reduce_seconds(bytes, replica_shape_, machine_);
  if (plan_.kind == ParallelPlan::Kind::kFsdp &&
      plan_.fsdp.strategy == ShardingStrategy::kNoShard) {
    t *= machine_.no_shard_allreduce_penalty;
  }
  return t;
}

void TrainingSimulator::build_fsdp_tasks(std::vector<Task>& tasks) const {
  const int n_stages = static_cast<int>(workload_.stages.size());
  const auto& opts = plan_.fsdp;
  const bool sharded = shard_group_size_ > 1;
  const bool per_stage_gather =
      sharded && (opts.strategy == ShardingStrategy::kFullShard ||
                  opts.strategy == ShardingStrategy::kHybridShard);
  const double flops = machine_.gpu.sustained_flops;
  // In-flight unsharded-unit cap (the limit_all_gathers rate limiter).
  const int cap = opts.limit_all_gathers ? 2 : 6;

  auto add = [&](bool is_comm, double dur,
                 std::vector<int> deps) -> int {
    Task t;
    t.is_comm = is_comm;
    t.duration = dur;
    t.deps = std::move(deps);
    tasks.push_back(std::move(t));
    return static_cast<int>(tasks.size()) - 1;
  };

  std::vector<int> fwd(static_cast<size_t>(n_stages), -1);
  std::vector<int> bwd(static_cast<size_t>(n_stages), -1);
  std::vector<int> fwd_gather(static_cast<size_t>(n_stages), -1);
  std::vector<int> bwd_gather(static_cast<size_t>(n_stages), -1);

  // ---- forward ------------------------------------------------------------
  int root_gather = -1;
  if (sharded) {
    root_gather = add(true, gather_seconds(workload_.root.param_elements), {});
  }
  if (sharded && opts.strategy == ShardingStrategy::kShardGradOp) {
    // SHARD_GRAD_OP gathers every unit up front.
    for (int i = 0; i < n_stages; ++i) {
      fwd_gather[static_cast<size_t>(i)] = add(
          true, gather_seconds(workload_.stages[static_cast<size_t>(i)]
                                   .param_elements),
          {});
    }
  }
  const int root_fwd =
      add(false, workload_.root.fwd_flops / flops,
          root_gather >= 0 ? std::vector<int>{root_gather}
                           : std::vector<int>{});

  for (int i = 0; i < n_stages; ++i) {
    const auto& stage = workload_.stages[static_cast<size_t>(i)];
    if (per_stage_gather) {
      std::vector<int> deps;
      // Rate limiter: the gather for unit i waits until unit i-cap has
      // finished its forward (and thus resharded).
      if (i - cap >= 0) deps.push_back(fwd[static_cast<size_t>(i - cap)]);
      fwd_gather[static_cast<size_t>(i)] =
          add(true, gather_seconds(stage.param_elements), std::move(deps));
    }
    std::vector<int> deps{i == 0 ? root_fwd : fwd[static_cast<size_t>(i - 1)]};
    if (fwd_gather[static_cast<size_t>(i)] >= 0) {
      deps.push_back(fwd_gather[static_cast<size_t>(i)]);
    }
    fwd[static_cast<size_t>(i)] =
        add(false, stage.fwd_flops / flops, std::move(deps));
  }

  // ---- backward -------------------------------------------------------------
  // Stage L-1's parameters are re-gathered right after forward for
  // FULL/HYBRID (they were freed after their forward).
  auto stage_elements = [&](int i) {
    return workload_.stages[static_cast<size_t>(i)].param_elements;
  };

  int last_compute = fwd[static_cast<size_t>(n_stages - 1)];
  for (int i = n_stages - 1; i >= 0; --i) {
    // Issue backward gathers per prefetch policy.
    if (per_stage_gather) {
      if (bwd_gather[static_cast<size_t>(i)] < 0) {
        // Own gather (issued at before_backward(i) unless prefetched
        // earlier by the stage above).
        std::vector<int> deps{last_compute};
        if (i + cap < n_stages) {
          deps.push_back(bwd[static_cast<size_t>(i + cap)]);
        }
        bwd_gather[static_cast<size_t>(i)] =
            add(true, gather_seconds(stage_elements(i)), std::move(deps));
      }
      if (opts.prefetch == BackwardPrefetch::kBackwardPre && i > 0 &&
          bwd_gather[static_cast<size_t>(i - 1)] < 0) {
        // Prefetch the next unit before this unit's backward compute.
        std::vector<int> deps{last_compute};
        if (i - 1 + cap < n_stages) {
          deps.push_back(bwd[static_cast<size_t>(i - 1 + cap)]);
        }
        bwd_gather[static_cast<size_t>(i - 1)] =
            add(true, gather_seconds(stage_elements(i - 1)), std::move(deps));
      }
    }

    std::vector<int> deps{last_compute};
    if (bwd_gather[static_cast<size_t>(i)] >= 0) {
      deps.push_back(bwd_gather[static_cast<size_t>(i)]);
    }
    bwd[static_cast<size_t>(i)] =
        add(false, workload_.stages[static_cast<size_t>(i)].bwd_flops / flops,
            std::move(deps));
    last_compute = bwd[static_cast<size_t>(i)];

    // BACKWARD_POST: prefetch issued after this unit's backward compute
    // but before its gradient communication enters the queue.
    if (per_stage_gather && opts.prefetch == BackwardPrefetch::kBackwardPost &&
        i > 0 && bwd_gather[static_cast<size_t>(i - 1)] < 0) {
      std::vector<int> deps2{last_compute};
      if (i - 1 + cap < n_stages) {
        deps2.push_back(bwd[static_cast<size_t>(i - 1 + cap)]);
      }
      bwd_gather[static_cast<size_t>(i - 1)] =
          add(true, gather_seconds(stage_elements(i - 1)), std::move(deps2));
    }

    // Gradient communication for this unit.
    int reduce_dep = bwd[static_cast<size_t>(i)];
    if (sharded) {
      reduce_dep = add(true, reduce_scatter_grads_seconds(stage_elements(i)),
                       {reduce_dep});
    }
    if (replica_shape_.size > 1) {
      add(true, replica_all_reduce_seconds(stage_elements(i)), {reduce_dep});
    }
  }

  // Root backward + its gradient communication.
  const int root_bwd =
      add(false, workload_.root.bwd_flops / flops, {last_compute});
  int root_reduce_dep = root_bwd;
  if (sharded) {
    root_reduce_dep =
        add(true, reduce_scatter_grads_seconds(workload_.root.param_elements),
            {root_reduce_dep});
  }
  if (replica_shape_.size > 1) {
    add(true, replica_all_reduce_seconds(workload_.root.param_elements),
        {root_reduce_dep});
  }

  // Optimizer step over the local shard (memory-bound).
  const double shard_bytes = 4.0 *
                             static_cast<double>(
                                 workload_.total_param_elements) /
                             shard_group_size_;
  // Read params+grads+2 moments, write params+moments: ~6x traffic.
  // Depends on the last gradient-communication task and the last compute.
  std::vector<int> opt_deps{static_cast<int>(tasks.size()) - 1, root_bwd};
  add(false, 6.0 * shard_bytes / machine_.gpu.hbm_bandwidth,
      std::move(opt_deps));
}

void TrainingSimulator::build_ddp_tasks(std::vector<Task>& tasks) const {
  const int n_stages = static_cast<int>(workload_.stages.size());
  const double flops = machine_.gpu.sustained_flops;

  auto add = [&](bool is_comm, double dur, std::vector<int> deps) -> int {
    Task t;
    t.is_comm = is_comm;
    t.duration = dur;
    t.deps = std::move(deps);
    tasks.push_back(std::move(t));
    return static_cast<int>(tasks.size()) - 1;
  };

  // Forward.
  const int root_fwd = add(false, workload_.root.fwd_flops / flops, {});
  std::vector<int> fwd(static_cast<size_t>(n_stages), -1);
  for (int i = 0; i < n_stages; ++i) {
    fwd[static_cast<size_t>(i)] = add(
        false, workload_.stages[static_cast<size_t>(i)].fwd_flops / flops,
        {i == 0 ? root_fwd : fwd[static_cast<size_t>(i - 1)]});
  }

  // Backward with bucketed all-reduce: buckets fill in gradient-ready
  // (reverse stage) order with a fixed byte cap — DDP's constant message
  // size irrespective of model size.
  const double cap_bytes = static_cast<double>(plan_.ddp_bucket_bytes);
  int last_compute = fwd[static_cast<size_t>(n_stages - 1)];
  double bucket_fill = 0;
  int bucket_last_stage_task = -1;

  auto flush_bucket = [&] {
    if (bucket_fill <= 0) return;
    double t = 0;
    if (!plan_.disable_comm && replica_shape_.size > 1) {
      t = all_reduce_seconds(bucket_fill, replica_shape_, machine_);
      // Pack/unpack traffic through HBM.
      t += 2.0 * bucket_fill / machine_.gpu.hbm_bandwidth;
    }
    add(true, t, {bucket_last_stage_task});
    bucket_fill = 0;
  };

  for (int i = n_stages - 1; i >= 0; --i) {
    const int b = add(
        false, workload_.stages[static_cast<size_t>(i)].bwd_flops / flops,
        {last_compute});
    last_compute = b;
    double remaining =
        4.0 * static_cast<double>(
                  workload_.stages[static_cast<size_t>(i)].param_elements);
    bucket_last_stage_task = b;
    while (remaining > 0) {
      const double take = std::min(cap_bytes - bucket_fill, remaining);
      bucket_fill += take;
      remaining -= take;
      if (bucket_fill >= cap_bytes) flush_bucket();
    }
  }
  const int root_bwd =
      add(false, workload_.root.bwd_flops / flops, {last_compute});
  bucket_last_stage_task = root_bwd;
  bucket_fill += 4.0 * static_cast<double>(workload_.root.param_elements);
  while (bucket_fill > cap_bytes) {
    const double save = bucket_fill - cap_bytes;
    bucket_fill = cap_bytes;
    flush_bucket();
    bucket_fill = save;
  }
  flush_bucket();

  // Optimizer over the full (replicated) parameters.
  const double param_bytes =
      4.0 * static_cast<double>(workload_.total_param_elements);
  add(false, 6.0 * param_bytes / machine_.gpu.hbm_bandwidth,
      {static_cast<int>(tasks.size()) - 1, root_bwd});
}

StepTiming TrainingSimulator::simulate_step() const {
  std::vector<Task> tasks;
  if (plan_.kind == ParallelPlan::Kind::kDdp) {
    build_ddp_tasks(tasks);
  } else {
    build_fsdp_tasks(tasks);
  }

  // Two FIFO streams: tasks of each kind execute in construction order.
  double compute_free = 0, comm_free = 0;
  std::vector<double> end(tasks.size(), 0.0);
  double compute_busy = 0, comm_busy = 0;
  int comm_calls = 0;
  for (size_t t = 0; t < tasks.size(); ++t) {
    const Task& task = tasks[t];
    double start = task.is_comm ? comm_free : compute_free;
    for (int d : task.deps) {
      if (d >= 0) start = std::max(start, end[static_cast<size_t>(d)]);
    }
    end[t] = start + task.duration;
    if (task.is_comm) {
      comm_free = end[t];
      comm_busy += task.duration;
      if (task.duration > 0) ++comm_calls;
    } else {
      compute_free = end[t];
      compute_busy += task.duration;
    }
  }

  StepTiming out;
  double makespan = *std::max_element(end.begin(), end.end());
  // Overlapped communication is not free: RCCL kernels run on the same
  // compute units and slow concurrent GEMMs. Charge a fraction of the
  // hidden communication back to the step.
  const double exposed_raw = std::max(0.0, makespan - compute_busy);
  const double hidden = std::max(0.0, comm_busy - exposed_raw);
  makespan += machine_.comm_compute_contention * hidden;
  makespan += machine_.step_overhead;
  if (plan_.kind == ParallelPlan::Kind::kDdp) {
    makespan += machine_.ddp_step_overhead;
  }

  out.step_seconds = makespan;
  out.compute_seconds = compute_busy;
  out.comm_seconds = comm_busy;
  out.exposed_comm_seconds =
      std::max(0.0, makespan - compute_busy - machine_.step_overhead);
  out.comm_calls = comm_calls;
  out.images_per_second_per_rank =
      static_cast<double>(workload_.images_per_step) / makespan;
  out.images_per_second_total =
      out.images_per_second_per_rank * world_size();
  return out;
}

MemoryFootprint TrainingSimulator::memory_footprint() const {
  MemoryFootprint m;
  const double P = 4.0 * static_cast<double>(workload_.total_param_elements);
  const double gs = static_cast<double>(shard_group_size_);
  const bool fsdp = plan_.kind == ParallelPlan::Kind::kFsdp;
  const auto strategy =
      fsdp ? plan_.fsdp.strategy : ShardingStrategy::kNoShard;

  double max_unit = static_cast<double>(workload_.root.param_elements);
  for (const auto& s : workload_.stages) {
    max_unit = std::max(max_unit, static_cast<double>(s.param_elements));
  }
  max_unit *= 4.0;

  // Allocator/fragmentation overhead on persistent state.
  constexpr double kOverhead = 1.1;
  switch (strategy) {
    case ShardingStrategy::kNoShard:
      m.params = P;
      m.grads = P;
      m.optimizer = 2.0 * P;
      break;
    case ShardingStrategy::kShardGradOp:
      m.params = P;  // unsharded during computation
      m.grads = P / gs;
      m.optimizer = 2.0 * P / gs;
      m.transient_unsharded = max_unit;  // one full-gradient staging unit
      break;
    case ShardingStrategy::kFullShard:
    case ShardingStrategy::kHybridShard: {
      m.params = P / gs;
      m.grads = P / gs;
      m.optimizer = 2.0 * P / gs;
      const int cap = plan_.fsdp.limit_all_gathers ? 2 : 6;
      m.transient_unsharded = (cap + 1) * max_unit;
      break;
    }
  }
  m.params *= kOverhead;
  m.grads *= kOverhead;
  m.optimizer *= kOverhead;
  m.activations = workload_.activation_bytes;
  return m;
}

PowerDraw TrainingSimulator::power_draw() const {
  const StepTiming t = simulate_step();
  PowerDraw p;
  p.compute_utilization = t.compute_seconds / t.step_seconds;
  p.comm_utilization = std::min(1.0, t.comm_seconds / t.step_seconds);
  p.average_watts = machine_.idle_power_w +
                    p.compute_utilization * machine_.compute_power_w +
                    p.comm_utilization * machine_.comm_power_w;
  return p;
}

double io_images_per_second_per_node(const MachineSpec& machine) {
  const double workers = static_cast<double>(
      machine.dataloader_workers_per_gpu * machine.gpus_per_node);
  const double decode_limited = workers / machine.decode_seconds_per_image;
  const double storage_limited =
      machine.storage_bandwidth_per_node / machine.stored_image_bytes;
  return std::min(decode_limited, storage_limited);
}

std::vector<WeakScalingPoint> weak_scaling(
    const StepWorkload& workload, const MachineSpec& machine,
    const std::vector<int>& node_counts, const ParallelPlan& plan) {
  std::vector<WeakScalingPoint> out;
  double ips_at_one_node = 0;
  for (int nodes : node_counts) {
    TrainingSimulator sim(workload, machine, nodes, plan);
    ParallelPlan no_comm = plan;
    no_comm.disable_comm = true;
    TrainingSimulator sim_nc(workload, machine, nodes, no_comm);

    const StepTiming syn = sim.simulate_step();
    const StepTiming nc = sim_nc.simulate_step();

    WeakScalingPoint p;
    p.nodes = nodes;
    p.syn_ips = syn.images_per_second_total;
    p.syn_no_comm_ips = nc.images_per_second_total;
    p.io_ips = io_images_per_second_per_node(machine) * nodes;
    // Real run: dataloader interaction costs a few percent even when IO is
    // not the bottleneck (handoff, H2D copies competing with compute).
    const double real_per_rank =
        std::min(syn.images_per_second_total * 0.97, p.io_ips);
    p.real_ips = real_per_rank;
    if (ips_at_one_node == 0) ips_at_one_node = p.real_ips / nodes;
    p.ideal_ips = ips_at_one_node * nodes;
    p.comm_fraction =
        syn.exposed_comm_seconds / std::max(1e-12, syn.step_seconds);
    p.memory_gb = sim.memory_footprint().total() / double(1ull << 30);
    out.push_back(p);
  }
  return out;
}

TrainingEstimate estimate_pretraining(const StepWorkload& workload,
                                      const MachineSpec& machine, int nodes,
                                      const ParallelPlan& plan,
                                      i64 corpus_images, i64 epochs) {
  GEOFM_CHECK(corpus_images > 0 && epochs > 0);
  TrainingSimulator sim(workload, machine, nodes, plan);
  const StepTiming step = sim.simulate_step();
  const PowerDraw power = sim.power_draw();

  const i64 global_batch =
      workload.images_per_step * static_cast<i64>(sim.world_size());
  const i64 steps_per_epoch =
      std::max<i64>(1, corpus_images / global_batch);  // drop_last

  TrainingEstimate out;
  out.step_seconds = step.step_seconds;
  out.steps = steps_per_epoch * epochs;
  out.wall_hours = static_cast<double>(out.steps) * step.step_seconds / 3600.0;
  out.node_hours = out.wall_hours * nodes;
  out.avg_gcd_watts = power.average_watts;
  out.energy_mwh = power.average_watts *
                   static_cast<double>(sim.world_size()) * out.wall_hours /
                   1e6;
  return out;
}

}  // namespace geofm::sim
