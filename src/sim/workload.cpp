#include "sim/workload.hpp"

#include <cmath>

namespace geofm::sim {
namespace {

// Learnable elements of one block (must match models::config accounting).
i64 block_param_elements(i64 w, i64 m) {
  return 2 * (2 * w) + (w * 3 * w + 3 * w) + (w * w + w) + (w * m + m) +
         (m * w + w);
}

}  // namespace

double block_forward_flops(i64 t, i64 w, i64 m, i64 h) {
  (void)h;  // head count redistributes, not changes, the attention FLOPs
  const double td = static_cast<double>(t);
  const double wd = static_cast<double>(w);
  const double md = static_cast<double>(m);
  double flops = 0;
  flops += 2.0 * td * wd * (3.0 * wd);  // QKV projection
  flops += 2.0 * td * td * wd;          // attention scores QK^T
  flops += 2.0 * td * td * wd;          // context attn @ V
  flops += 2.0 * td * wd * wd;          // output projection
  flops += 2.0 * td * wd * md;          // MLP fc1
  flops += 2.0 * td * md * wd;          // MLP fc2
  // LayerNorms/softmax/residuals are bandwidth-bound and small; fold in a
  // 3% overhead.
  return flops * 1.03;
}

double activation_bytes(i64 batch, i64 seq, i64 width, i64 depth) {
  // ~1.3 fp32 token-feature volumes cached per block (post-recompute
  // regime), calibrated so ViT-3B @ batch 32 lands near the paper's
  // memory plots.
  return 1.3 * 4.0 * static_cast<double>(batch) * static_cast<double>(seq) *
         static_cast<double>(width) * static_cast<double>(depth);
}

StepWorkload vit_step_workload(const models::ViTConfig& cfg, i64 batch) {
  StepWorkload out;
  const i64 t = cfg.seq_len();
  const double fwd =
      static_cast<double>(batch) *
      block_forward_flops(t, cfg.width, cfg.mlp_dim, cfg.heads);

  out.stages.resize(static_cast<size_t>(cfg.depth));
  for (auto& s : out.stages) {
    s.fwd_flops = fwd;
    s.bwd_flops = 2.0 * fwd;
    s.param_elements = block_param_elements(cfg.width, cfg.mlp_dim);
  }
  // Root: patch embed + head; small next to the blocks.
  const double embed_flops = 2.0 * static_cast<double>(batch) *
                             static_cast<double>(cfg.n_patches()) *
                             static_cast<double>(cfg.patch_dim()) *
                             static_cast<double>(cfg.width);
  out.root.fwd_flops = embed_flops;
  out.root.bwd_flops = 2.0 * embed_flops;
  out.root.param_elements =
      cfg.param_count() - cfg.depth * block_param_elements(cfg.width,
                                                           cfg.mlp_dim);
  out.images_per_step = batch;
  out.activation_bytes = activation_bytes(batch, t, cfg.width, cfg.depth);
  out.total_param_elements = cfg.param_count();
  return out;
}

StepWorkload mae_step_workload(const models::MaeConfig& cfg, i64 batch) {
  StepWorkload out;
  const auto& enc = cfg.encoder;
  const i64 n = enc.n_patches();
  const i64 visible =
      std::max<i64>(1, static_cast<i64>(std::llround(
                           n * (1.0 - cfg.mask_ratio)))) + 1;  // + cls
  const i64 full = n + 1;

  const double enc_fwd =
      static_cast<double>(batch) *
      block_forward_flops(visible, enc.width, enc.mlp_dim, enc.heads);
  const double dec_fwd = static_cast<double>(batch) *
                         block_forward_flops(full, cfg.decoder_width,
                                             4 * cfg.decoder_width,
                                             cfg.decoder_heads);

  for (i64 i = 0; i < enc.depth; ++i) {
    StageWork s;
    s.fwd_flops = enc_fwd;
    s.bwd_flops = 2.0 * enc_fwd;
    s.param_elements = block_param_elements(enc.width, enc.mlp_dim);
    out.stages.push_back(s);
  }
  for (i64 i = 0; i < cfg.decoder_depth; ++i) {
    StageWork s;
    s.fwd_flops = dec_fwd;
    s.bwd_flops = 2.0 * dec_fwd;
    s.param_elements =
        block_param_elements(cfg.decoder_width, 4 * cfg.decoder_width);
    out.stages.push_back(s);
  }

  const double embed_flops =
      2.0 * static_cast<double>(batch) * static_cast<double>(n) *
          static_cast<double>(enc.patch_dim()) *
          static_cast<double>(enc.width) +
      2.0 * static_cast<double>(batch) * static_cast<double>(full) *
          static_cast<double>(cfg.decoder_width) *
          static_cast<double>(enc.patch_dim());
  out.root.fwd_flops = embed_flops;
  out.root.bwd_flops = 2.0 * embed_flops;
  i64 stage_params = 0;
  for (auto& s : out.stages) stage_params += s.param_elements;
  out.root.param_elements = cfg.param_count() - stage_params;

  out.images_per_step = batch;
  out.activation_bytes =
      activation_bytes(batch, visible, enc.width, enc.depth) +
      activation_bytes(batch, full, cfg.decoder_width, cfg.decoder_depth);
  out.total_param_elements = cfg.param_count();
  return out;
}

}  // namespace geofm::sim
