// Workload cost model: per-stage FLOPs, parameter counts, and activation
// footprints for ViT classification and MAE pretraining steps, derived
// analytically from the architecture configuration.
#pragma once

#include <vector>

#include "models/config.hpp"
#include "sim/machine.hpp"

namespace geofm::sim {

/// One FSDP unit's compute work for a training step.
struct StageWork {
  double fwd_flops = 0;
  double bwd_flops = 0;  // ~2x forward for matmul-dominated layers
  i64 param_elements = 0;
};

/// Whole-step workload description consumed by the schedule builder.
struct StepWorkload {
  std::vector<StageWork> stages;  // transformer blocks, execution order
  StageWork root;                 // embeddings/norms/heads outside blocks
  i64 images_per_step = 0;        // local batch size
  double activation_bytes = 0;    // cached activations per rank
  i64 total_param_elements = 0;
};

/// FLOPs of one transformer block forward at sequence length t, width w,
/// mlp hidden m, heads h (GEMMs + attention score/context products).
double block_forward_flops(i64 t, i64 w, i64 m, i64 h);

/// ViT supervised/perf-benchmark step (full token sequence), local batch b.
StepWorkload vit_step_workload(const models::ViTConfig& cfg, i64 batch);

/// MAE pretraining step: encoder sees only visible tokens (1-mask_ratio),
/// decoder sees the full sequence at the decoder width.
StepWorkload mae_step_workload(const models::MaeConfig& cfg, i64 batch);

/// Activation bytes cached per rank for backward (empirical factor over
/// the token-feature volume; assumes the standard fused-ish training stack
/// with partial recomputation, calibrated to the paper's memory plots).
double activation_bytes(i64 batch, i64 seq, i64 width, i64 depth);

}  // namespace geofm::sim
