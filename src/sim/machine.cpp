#include "sim/machine.hpp"

namespace geofm::sim {

MachineSpec frontier() { return MachineSpec{}; }

}  // namespace geofm::sim
