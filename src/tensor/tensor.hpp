// Dense fp32 tensor with shared, contiguous, row-major storage.
//
// Design notes:
//  * Storage is a shared_ptr'd flat float buffer; Tensors are cheap value
//    types (copying a Tensor aliases storage — use clone() for a deep copy).
//  * Flat views (`view`, `flat_view`) enable FSDP's flat-parameter scheme:
//    module parameters are windows into one contiguous per-unit buffer.
//  * Only fp32 is supported: the paper's numerics (MAE/ViT training) do not
//    depend on mixed precision, and single-dtype keeps kernels simple.
#pragma once

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace geofm {

class Tensor {
 public:
  /// Empty (numel 0, rank 0) tensor.
  Tensor() = default;

  /// Uninitialized tensor of the given shape.
  explicit Tensor(std::vector<i64> shape);
  Tensor(std::initializer_list<i64> shape)
      : Tensor(std::vector<i64>(shape)) {}

  // ----- factories ---------------------------------------------------------
  static Tensor zeros(std::vector<i64> shape);
  static Tensor full(std::vector<i64> shape, float value);
  static Tensor ones(std::vector<i64> shape) { return full(std::move(shape), 1.f); }
  /// I.i.d. N(mean, stddev) entries drawn from `rng`.
  static Tensor randn(std::vector<i64> shape, Rng& rng, float stddev = 1.f,
                      float mean = 0.f);
  /// Uniform in [lo, hi).
  static Tensor rand(std::vector<i64> shape, Rng& rng, float lo = 0.f,
                     float hi = 1.f);
  /// [0, 1, ..., n-1] as a 1-D tensor.
  static Tensor arange(i64 n);
  /// 1-D tensor from explicit values.
  static Tensor from(std::vector<float> values);

  // ----- shape -------------------------------------------------------------
  const std::vector<i64>& shape() const { return shape_; }
  i64 dim(int i) const;
  int rank() const { return static_cast<int>(shape_.size()); }
  i64 numel() const { return numel_; }
  bool defined() const { return buf_ != nullptr; }
  std::string shape_str() const;

  /// Reinterpret as `shape` (same numel); shares storage.
  Tensor view(std::vector<i64> shape) const;
  /// 1-D window [offset, offset+len) into this tensor's flat storage;
  /// shares storage. This is the FSDP flat-parameter primitive.
  Tensor flat_view(i64 offset, i64 len) const;
  /// Whole tensor as 1-D; shares storage.
  Tensor flatten() const { return view({numel_}); }

  // ----- element access ----------------------------------------------------
  float* data();
  const float* data() const;
  float& at(std::initializer_list<i64> idx);
  float at(std::initializer_list<i64> idx) const;
  float& operator[](i64 flat);
  float operator[](i64 flat) const;

  // ----- whole-tensor operations (in place, return *this) -------------------
  Tensor& fill_(float value);
  Tensor& zero_() { return fill_(0.f); }
  /// Copies values from src (same numel; shapes may differ).
  Tensor& copy_(const Tensor& src);
  Tensor& add_(const Tensor& other, float alpha = 1.f);  // this += alpha*other
  Tensor& mul_(const Tensor& other);                     // elementwise
  Tensor& scale_(float alpha);                           // this *= alpha
  Tensor& add_scalar_(float alpha);                      // this += alpha

  /// Deep copy with fresh storage.
  Tensor clone() const;

  // ----- reductions --------------------------------------------------------
  float sum() const;
  float mean() const;
  float abs_max() const;
  /// sqrt(sum of squares).
  float norm() const;

  /// True iff same shape and max |a-b| <= atol + rtol*|b|.
  bool allclose(const Tensor& other, float rtol = 1e-5f,
                float atol = 1e-6f) const;

 private:
  Tensor(std::shared_ptr<std::vector<float>> buf, i64 offset,
         std::vector<i64> shape);

  static i64 compute_numel(const std::vector<i64>& shape);

  std::shared_ptr<std::vector<float>> buf_;
  i64 offset_ = 0;
  std::vector<i64> shape_;
  i64 numel_ = 0;
};

}  // namespace geofm
