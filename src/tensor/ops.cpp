#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/kernels/kernels.hpp"
#include "util/thread_pool.hpp"

// The hot kernels (GEMM, layernorm, softmax, patchify) live in
// tensor/kernels/ behind the GEOFM_KERNELS dispatch seam; this file keeps
// the Tensor-level shape handling plus the cheap ops that don't warrant a
// kernel entry.

namespace geofm::ops {
namespace {

struct Dims2 {
  i64 rows;
  i64 cols;
};

// Views an arbitrary-rank tensor as [rows, lastdim].
Dims2 as_2d(const Tensor& x) {
  GEOFM_CHECK(x.rank() >= 1);
  const i64 cols = x.dim(-1);
  return {x.numel() / cols, cols};
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  GEOFM_CHECK(a.rank() == 2 && b.rank() == 2, "matmul expects 2-D operands");
  GEOFM_CHECK(a.dim(1) == b.dim(0), "matmul inner dims: " << a.shape_str()
                                     << " x " << b.shape_str());
  Tensor c({a.dim(0), b.dim(1)});
  kernels::gemm_nn(1, a.dim(0), a.dim(1), b.dim(1), a.data(), b.data(),
                   c.data());
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  GEOFM_CHECK(a.rank() == 2 && b.rank() == 2);
  GEOFM_CHECK(a.dim(1) == b.dim(1), "matmul_nt inner dims: " << a.shape_str()
                                     << " x " << b.shape_str());
  Tensor c({a.dim(0), b.dim(0)});
  kernels::gemm_nt(1, a.dim(0), a.dim(1), b.dim(0), a.data(), b.data(),
                   c.data());
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  GEOFM_CHECK(a.rank() == 2 && b.rank() == 2);
  GEOFM_CHECK(a.dim(0) == b.dim(0), "matmul_tn outer dims: " << a.shape_str()
                                     << " x " << b.shape_str());
  Tensor c({a.dim(1), b.dim(1)});
  kernels::gemm_tn(1, a.dim(0), a.dim(1), b.dim(1), a.data(), b.data(),
                   c.data());
  return c;
}

Tensor bmm(const Tensor& a, const Tensor& b) {
  GEOFM_CHECK(a.rank() == 3 && b.rank() == 3 && a.dim(0) == b.dim(0) &&
              a.dim(2) == b.dim(1),
              "bmm shapes: " << a.shape_str() << " x " << b.shape_str());
  const i64 batch = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  Tensor c({batch, m, n});
  kernels::gemm_nn(batch, m, k, n, a.data(), b.data(), c.data());
  return c;
}

Tensor bmm_nt(const Tensor& a, const Tensor& b) {
  GEOFM_CHECK(a.rank() == 3 && b.rank() == 3 && a.dim(0) == b.dim(0) &&
              a.dim(2) == b.dim(2),
              "bmm_nt shapes: " << a.shape_str() << " x " << b.shape_str());
  const i64 batch = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(1);
  Tensor c({batch, m, n});
  kernels::gemm_nt(batch, m, k, n, a.data(), b.data(), c.data());
  return c;
}

Tensor bmm_tn(const Tensor& a, const Tensor& b) {
  GEOFM_CHECK(a.rank() == 3 && b.rank() == 3 && a.dim(0) == b.dim(0) &&
              a.dim(1) == b.dim(1),
              "bmm_tn shapes: " << a.shape_str() << " x " << b.shape_str());
  const i64 batch = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  Tensor c({batch, k, n});
  kernels::gemm_tn(batch, m, k, n, a.data(), b.data(), c.data());
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  GEOFM_CHECK(a.shape() == b.shape(), "add shape mismatch");
  Tensor out = a.clone();
  out.add_(b);
  return out;
}

void add_bias_rows(Tensor& x, const Tensor& bias) {
  const Dims2 d = as_2d(x);
  GEOFM_CHECK(bias.numel() == d.cols, "bias size mismatch");
  float* xp = x.data();
  const float* bp = bias.data();
  parallel_for(d.rows, [&](i64 r0, i64 r1) {
    for (i64 r = r0; r < r1; ++r) {
      float* row = xp + r * d.cols;
      for (i64 c = 0; c < d.cols; ++c) row[c] += bp[c];
    }
  });
}

void accumulate_bias_grad(const Tensor& grad, Tensor& grad_bias) {
  const Dims2 d = as_2d(grad);
  GEOFM_CHECK(grad_bias.numel() == d.cols, "bias grad size mismatch");
  const float* gp = grad.data();
  float* bp = grad_bias.data();
  for (i64 r = 0; r < d.rows; ++r) {
    const float* row = gp + r * d.cols;
    for (i64 c = 0; c < d.cols; ++c) bp[c] += row[c];
  }
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;
}  // namespace

Tensor gelu(const Tensor& x) {
  Tensor y(x.shape());
  const float* xp = x.data();
  float* yp = y.data();
  parallel_for(x.numel(), [&](i64 i0, i64 i1) {
    for (i64 i = i0; i < i1; ++i) {
      const float v = xp[i];
      const float t = std::tanh(kGeluC * (v + kGeluA * v * v * v));
      yp[i] = 0.5f * v * (1.f + t);
    }
  });
  return y;
}

Tensor gelu_backward(const Tensor& dy, const Tensor& x) {
  GEOFM_CHECK(dy.numel() == x.numel());
  Tensor dx(x.shape());
  const float* dyp = dy.data();
  const float* xp = x.data();
  float* dxp = dx.data();
  parallel_for(x.numel(), [&](i64 i0, i64 i1) {
    for (i64 i = i0; i < i1; ++i) {
      const float v = xp[i];
      const float u = kGeluC * (v + kGeluA * v * v * v);
      const float t = std::tanh(u);
      const float dudv = kGeluC * (1.f + 3.f * kGeluA * v * v);
      const float dgelu = 0.5f * (1.f + t) + 0.5f * v * (1.f - t * t) * dudv;
      dxp[i] = dyp[i] * dgelu;
    }
  });
  return dx;
}

Tensor softmax_lastdim(const Tensor& x) {
  const Dims2 d = as_2d(x);
  Tensor y(x.shape());
  kernels::softmax_fwd(d.rows, d.cols, x.data(), y.data());
  return y;
}

Tensor softmax_backward_lastdim(const Tensor& dy, const Tensor& y) {
  GEOFM_CHECK(dy.shape() == y.shape());
  const Dims2 d = as_2d(y);
  Tensor dx(y.shape());
  kernels::softmax_bwd(d.rows, d.cols, dy.data(), y.data(), dx.data());
  return dx;
}

Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps, LayerNormCache& cache) {
  const Dims2 d = as_2d(x);
  GEOFM_CHECK(gamma.numel() == d.cols && beta.numel() == d.cols,
              "layernorm affine size mismatch");
  Tensor y(x.shape());
  cache.mean = Tensor({d.rows});
  cache.rstd = Tensor({d.rows});
  kernels::layernorm_fwd(d.rows, d.cols, x.data(), gamma.data(), beta.data(),
                         eps, y.data(), cache.mean.data(), cache.rstd.data());
  return y;
}

Tensor layernorm_backward(const Tensor& dy, const Tensor& x,
                          const Tensor& gamma, const LayerNormCache& cache,
                          Tensor& dgamma, Tensor& dbeta) {
  const Dims2 d = as_2d(x);
  GEOFM_CHECK(dy.numel() == x.numel());
  GEOFM_CHECK(dgamma.numel() == d.cols && dbeta.numel() == d.cols);
  Tensor dx(x.shape());
  kernels::layernorm_bwd(d.rows, d.cols, dy.data(), x.data(), gamma.data(),
                         cache.mean.data(), cache.rstd.data(), dx.data(),
                         dgamma.data(), dbeta.data());
  return dx;
}

SoftmaxCrossEntropy softmax_cross_entropy(const Tensor& logits,
                                          const std::vector<i64>& labels) {
  GEOFM_CHECK(logits.rank() == 2);
  const i64 batch = logits.dim(0), classes = logits.dim(1);
  GEOFM_CHECK(static_cast<i64>(labels.size()) == batch);
  SoftmaxCrossEntropy out;
  out.probs = softmax_lastdim(logits);
  double loss = 0.0;
  const float* pp = out.probs.data();
  for (i64 r = 0; r < batch; ++r) {
    const i64 y = labels[static_cast<size_t>(r)];
    GEOFM_CHECK(y >= 0 && y < classes, "label out of range");
    loss -= std::log(std::max(pp[r * classes + y], 1e-12f));
  }
  out.loss = static_cast<float>(loss / static_cast<double>(batch));
  return out;
}

Tensor softmax_cross_entropy_backward(const SoftmaxCrossEntropy& fwd,
                                      const std::vector<i64>& labels) {
  const i64 batch = fwd.probs.dim(0), classes = fwd.probs.dim(1);
  Tensor dlogits = fwd.probs.clone();
  float* dp = dlogits.data();
  const float inv_b = 1.f / static_cast<float>(batch);
  for (i64 r = 0; r < batch; ++r) {
    dp[r * classes + labels[static_cast<size_t>(r)]] -= 1.f;
  }
  dlogits.scale_(inv_b);
  return dlogits;
}

double topk_accuracy(const Tensor& logits, const std::vector<i64>& labels,
                     int k) {
  GEOFM_CHECK(logits.rank() == 2 && k >= 1);
  const i64 batch = logits.dim(0), classes = logits.dim(1);
  GEOFM_CHECK(static_cast<i64>(labels.size()) == batch);
  const float* lp = logits.data();
  i64 hits = 0;
  for (i64 r = 0; r < batch; ++r) {
    const float* row = lp + r * classes;
    const float label_score = row[labels[static_cast<size_t>(r)]];
    // Count strictly-greater scores; the label is in the top-k iff fewer
    // than k classes beat it (ties resolved in the label's favour, which
    // is deterministic and conservative-free for distinct float logits).
    int greater = 0;
    for (i64 c = 0; c < classes; ++c) {
      if (row[c] > label_score) ++greater;
      if (greater >= k) break;
    }
    if (greater < k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(batch);
}

float masked_mse(const Tensor& pred, const Tensor& target,
                 const std::vector<u32>& row_mask, Tensor* dpred) {
  const Dims2 d = as_2d(pred);
  GEOFM_CHECK(target.numel() == pred.numel());
  GEOFM_CHECK(static_cast<i64>(row_mask.size()) == d.rows);
  i64 active = 0;
  for (u32 m : row_mask) active += (m != 0);
  GEOFM_CHECK(active > 0, "masked_mse with empty mask");

  const float* pp = pred.data();
  const float* tp = target.data();
  double loss = 0.0;
  const double denom = static_cast<double>(active) * d.cols;
  float* dp = nullptr;
  if (dpred != nullptr) {
    *dpred = Tensor::zeros(pred.shape());
    dp = dpred->data();
  }
  for (i64 r = 0; r < d.rows; ++r) {
    if (row_mask[static_cast<size_t>(r)] == 0) continue;
    const float* pi = pp + r * d.cols;
    const float* ti = tp + r * d.cols;
    for (i64 c = 0; c < d.cols; ++c) {
      const double diff = static_cast<double>(pi[c]) - ti[c];
      loss += diff * diff;
      if (dp != nullptr) {
        dp[r * d.cols + c] = static_cast<float>(2.0 * diff / denom);
      }
    }
  }
  return static_cast<float>(loss / denom);
}

Tensor patchify(const Tensor& images, i64 patch) {
  GEOFM_CHECK(images.rank() == 4, "patchify expects [B,C,H,W]");
  const i64 b = images.dim(0), c = images.dim(1), h = images.dim(2),
            w = images.dim(3);
  GEOFM_CHECK(h % patch == 0 && w % patch == 0, "image not divisible by patch");
  const i64 n = (h / patch) * (w / patch);
  Tensor out({b, n, patch * patch * c});
  kernels::patchify(b, c, h, w, patch, images.data(), out.data());
  return out;
}

Tensor unpatchify(const Tensor& patches, i64 patch, i64 channels) {
  GEOFM_CHECK(patches.rank() == 3, "unpatchify expects [B,N,P*P*C]");
  const i64 b = patches.dim(0), n = patches.dim(1);
  GEOFM_CHECK(patches.dim(2) == patch * patch * channels);
  const i64 g = static_cast<i64>(std::llround(std::sqrt(double(n))));
  GEOFM_CHECK(g * g == n, "unpatchify expects square grid");
  const i64 hw = g * patch;
  Tensor out({b, channels, hw, hw});
  kernels::unpatchify(b, channels, g, patch, patches.data(), out.data());
  return out;
}

Tensor transpose2d(const Tensor& x) {
  GEOFM_CHECK(x.rank() == 2);
  const i64 r = x.dim(0), c = x.dim(1);
  Tensor y({c, r});
  const float* xp = x.data();
  float* yp = y.data();
  for (i64 i = 0; i < r; ++i) {
    for (i64 j = 0; j < c; ++j) yp[j * r + i] = xp[i * c + j];
  }
  return y;
}

Tensor gather_rows(const Tensor& x, const std::vector<i64>& index) {
  const Dims2 d = as_2d(x);
  Tensor out({static_cast<i64>(index.size()), d.cols});
  const float* xp = x.data();
  float* op = out.data();
  for (size_t i = 0; i < index.size(); ++i) {
    const i64 r = index[i];
    GEOFM_CHECK(r >= 0 && r < d.rows, "gather_rows index out of range");
    std::memcpy(op + static_cast<i64>(i) * d.cols, xp + r * d.cols,
                static_cast<size_t>(d.cols) * sizeof(float));
  }
  return out;
}

void scatter_rows_add(const Tensor& x, const std::vector<i64>& index,
                      Tensor& out) {
  const Dims2 dx = as_2d(x);
  const Dims2 dout = as_2d(out);
  GEOFM_CHECK(dx.cols == dout.cols, "scatter_rows_add col mismatch");
  GEOFM_CHECK(static_cast<i64>(index.size()) == dx.rows);
  const float* xp = x.data();
  float* op = out.data();
  for (size_t i = 0; i < index.size(); ++i) {
    const i64 r = index[i];
    GEOFM_CHECK(r >= 0 && r < dout.rows, "scatter_rows_add out of range");
    const float* src = xp + static_cast<i64>(i) * dx.cols;
    float* dst = op + r * dout.cols;
    for (i64 c = 0; c < dx.cols; ++c) dst[c] += src[c];
  }
}

}  // namespace geofm::ops
