#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <utility>

namespace geofm {

i64 Tensor::compute_numel(const std::vector<i64>& shape) {
  i64 n = 1;
  for (i64 d : shape) {
    GEOFM_CHECK(d >= 0, "negative dimension");
    n *= d;
  }
  return n;
}

Tensor::Tensor(std::vector<i64> shape)
    : shape_(std::move(shape)), numel_(compute_numel(shape_)) {
  buf_ = std::make_shared<std::vector<float>>(static_cast<size_t>(numel_));
}

Tensor::Tensor(std::shared_ptr<std::vector<float>> buf, i64 offset,
               std::vector<i64> shape)
    : buf_(std::move(buf)),
      offset_(offset),
      shape_(std::move(shape)),
      numel_(compute_numel(shape_)) {
  GEOFM_CHECK(offset_ >= 0 && offset_ + numel_ <=
                  static_cast<i64>(buf_->size()),
              "view window out of range");
}

Tensor Tensor::zeros(std::vector<i64> shape) {
  Tensor t(std::move(shape));
  t.fill_(0.f);
  return t;
}

Tensor Tensor::full(std::vector<i64> shape, float value) {
  Tensor t(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::randn(std::vector<i64> shape, Rng& rng, float stddev,
                     float mean) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (i64 i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand(std::vector<i64> shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (i64 i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::arange(i64 n) {
  Tensor t({n});
  float* p = t.data();
  for (i64 i = 0; i < n; ++i) p[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::from(std::vector<float> values) {
  Tensor t({static_cast<i64>(values.size())});
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

i64 Tensor::dim(int i) const {
  if (i < 0) i += rank();
  GEOFM_CHECK(i >= 0 && i < rank(), "dim index out of range");
  return shape_[static_cast<size_t>(i)];
}

std::string Tensor::shape_str() const {
  std::ostringstream oss;
  oss << '[';
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) oss << ", ";
    oss << shape_[i];
  }
  oss << ']';
  return oss.str();
}

Tensor Tensor::view(std::vector<i64> shape) const {
  GEOFM_CHECK(defined());
  const i64 n = compute_numel(shape);
  GEOFM_CHECK(n == numel_, "view numel mismatch: " << n << " vs " << numel_);
  return Tensor(buf_, offset_, std::move(shape));
}

Tensor Tensor::flat_view(i64 offset, i64 len) const {
  GEOFM_CHECK(defined());
  GEOFM_CHECK(offset >= 0 && len >= 0 && offset + len <= numel_,
              "flat_view [" << offset << ", " << offset + len
                            << ") out of numel " << numel_);
  return Tensor(buf_, offset_ + offset, {len});
}

float* Tensor::data() {
  GEOFM_CHECK(defined());
  return buf_->data() + offset_;
}

const float* Tensor::data() const {
  GEOFM_CHECK(defined());
  return buf_->data() + offset_;
}

namespace {
i64 flat_index(const std::vector<i64>& shape, std::initializer_list<i64> idx) {
  GEOFM_CHECK(idx.size() == shape.size(), "index arity != tensor rank");
  i64 flat = 0;
  auto it = idx.begin();
  for (size_t d = 0; d < shape.size(); ++d, ++it) {
    GEOFM_CHECK(*it >= 0 && *it < shape[d], "index out of range in dim " << d);
    flat = flat * shape[d] + *it;
  }
  return flat;
}
}  // namespace

float& Tensor::at(std::initializer_list<i64> idx) {
  return data()[flat_index(shape_, idx)];
}

float Tensor::at(std::initializer_list<i64> idx) const {
  return data()[flat_index(shape_, idx)];
}

float& Tensor::operator[](i64 flat) {
  GEOFM_CHECK(flat >= 0 && flat < numel_);
  return data()[flat];
}

float Tensor::operator[](i64 flat) const {
  GEOFM_CHECK(flat >= 0 && flat < numel_);
  return data()[flat];
}

Tensor& Tensor::fill_(float value) {
  std::fill_n(data(), numel_, value);
  return *this;
}

Tensor& Tensor::copy_(const Tensor& src) {
  GEOFM_CHECK(src.numel() == numel_, "copy_ numel mismatch");
  std::copy_n(src.data(), numel_, data());
  return *this;
}

Tensor& Tensor::add_(const Tensor& other, float alpha) {
  GEOFM_CHECK(other.numel() == numel_, "add_ numel mismatch");
  float* a = data();
  const float* b = other.data();
  for (i64 i = 0; i < numel_; ++i) a[i] += alpha * b[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  GEOFM_CHECK(other.numel() == numel_, "mul_ numel mismatch");
  float* a = data();
  const float* b = other.data();
  for (i64 i = 0; i < numel_; ++i) a[i] *= b[i];
  return *this;
}

Tensor& Tensor::scale_(float alpha) {
  float* a = data();
  for (i64 i = 0; i < numel_; ++i) a[i] *= alpha;
  return *this;
}

Tensor& Tensor::add_scalar_(float alpha) {
  float* a = data();
  for (i64 i = 0; i < numel_; ++i) a[i] += alpha;
  return *this;
}

Tensor Tensor::clone() const {
  Tensor out(shape_);
  out.copy_(*this);
  return out;
}

float Tensor::sum() const {
  const float* a = data();
  // Pairwise-ish accumulation in double to keep large reductions stable.
  double acc = 0.0;
  for (i64 i = 0; i < numel_; ++i) acc += a[i];
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  GEOFM_CHECK(numel_ > 0);
  return static_cast<float>(static_cast<double>(sum()) / numel_);
}

float Tensor::abs_max() const {
  const float* a = data();
  float m = 0.f;
  for (i64 i = 0; i < numel_; ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

float Tensor::norm() const {
  const float* a = data();
  double acc = 0.0;
  for (i64 i = 0; i < numel_; ++i) {
    acc += static_cast<double>(a[i]) * a[i];
  }
  return static_cast<float>(std::sqrt(acc));
}

bool Tensor::allclose(const Tensor& other, float rtol, float atol) const {
  if (shape_ != other.shape()) return false;
  const float* a = data();
  const float* b = other.data();
  for (i64 i = 0; i < numel_; ++i) {
    const float tol = atol + rtol * std::fabs(b[i]);
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace geofm
