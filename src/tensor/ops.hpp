// Dense kernels used by the neural-network layers. All kernels are
// shape-checked, deterministic, and thread-parallel over the leading
// dimension where profitable.
//
// Convention: forward kernels return fresh tensors; backward kernels take
// the upstream gradient plus whatever the forward saved, and return (or
// accumulate into) input/parameter gradients.
#pragma once

#include "tensor/tensor.hpp"

namespace geofm::ops {

// ----- GEMM ----------------------------------------------------------------

/// C[m,n] = A[m,k] * B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[m,n] = A[m,k] * B[n,k]^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// C[k,n] = A[m,k]^T * B[m,n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Batched C[i] = A[i] * B[i] for i in [0, batch): A[batch,m,k], B[batch,k,n].
Tensor bmm(const Tensor& a, const Tensor& b);
/// Batched C[i] = A[i] * B[i]^T: A[batch,m,k], B[batch,n,k].
Tensor bmm_nt(const Tensor& a, const Tensor& b);
/// Batched C[i] = A[i]^T * B[i]: A[batch,m,k], B[batch,m,n] -> [batch,k,n].
Tensor bmm_tn(const Tensor& a, const Tensor& b);

// ----- elementwise / broadcast ----------------------------------------------

/// out = a + b (same shape).
Tensor add(const Tensor& a, const Tensor& b);
/// y[r, :] = x[r, :] + bias for x viewed as [rows, cols]. In place.
void add_bias_rows(Tensor& x, const Tensor& bias);
/// grad_bias[c] += sum_r grad[r, c].
void accumulate_bias_grad(const Tensor& grad, Tensor& grad_bias);

/// GELU (tanh approximation), elementwise.
Tensor gelu(const Tensor& x);
/// dL/dx given dL/dy and the forward input.
Tensor gelu_backward(const Tensor& dy, const Tensor& x);

// ----- softmax ---------------------------------------------------------------

/// Row-wise softmax over the last dimension of x viewed as [rows, cols].
Tensor softmax_lastdim(const Tensor& x);
/// dL/dx from dL/dy and y = softmax(x): dx = y * (dy - sum(dy*y)).
Tensor softmax_backward_lastdim(const Tensor& dy, const Tensor& y);

// ----- layer norm ------------------------------------------------------------

struct LayerNormCache {
  Tensor mean;  // [rows]
  Tensor rstd;  // [rows]
};

/// y = gamma * (x - mean)/sqrt(var + eps) + beta over the last dim of x
/// viewed as [rows, C]. Fills `cache` for the backward pass.
Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps, LayerNormCache& cache);
/// Returns dx; accumulates dgamma/dbeta.
Tensor layernorm_backward(const Tensor& dy, const Tensor& x,
                          const Tensor& gamma, const LayerNormCache& cache,
                          Tensor& dgamma, Tensor& dbeta);

// ----- losses / metrics -------------------------------------------------------

struct SoftmaxCrossEntropy {
  float loss = 0.f;   // mean over batch
  Tensor probs;       // [batch, classes], saved for backward
};

/// Numerically stable softmax cross-entropy with integer labels.
SoftmaxCrossEntropy softmax_cross_entropy(const Tensor& logits,
                                          const std::vector<i64>& labels);
/// dL/dlogits = (probs - onehot)/batch.
Tensor softmax_cross_entropy_backward(const SoftmaxCrossEntropy& fwd,
                                      const std::vector<i64>& labels);

/// Fraction of rows whose top-k logits contain the label.
double topk_accuracy(const Tensor& logits, const std::vector<i64>& labels,
                     int k);

/// Mean squared error restricted to rows with mask[row] == 1, over x,y
/// viewed as [rows, cols]; also returns d(mse)/dx into dx if non-null.
float masked_mse(const Tensor& pred, const Tensor& target,
                 const std::vector<u32>& row_mask, Tensor* dpred);

// ----- image <-> patch ---------------------------------------------------------

/// [B, C, H, W] -> [B, N, P*P*C] with N = (H/P)*(W/P); patch pixels are laid
/// out channel-major within a patch, matching the MAE reference.
Tensor patchify(const Tensor& images, i64 patch);
/// Inverse of patchify: [B, N, P*P*C] -> [B, C, H, W] for square images.
Tensor unpatchify(const Tensor& patches, i64 patch, i64 channels);

// ----- misc --------------------------------------------------------------------

/// [rows, cols] -> [cols, rows].
Tensor transpose2d(const Tensor& x);

/// Gathers rows: out[i, :] = x[index[i], :] for x viewed as [rows, cols].
Tensor gather_rows(const Tensor& x, const std::vector<i64>& index);
/// Scatter-add rows: out[index[i], :] += x[i, :]; `out` must be pre-sized.
void scatter_rows_add(const Tensor& x, const std::vector<i64>& index,
                      Tensor& out);

}  // namespace geofm::ops
