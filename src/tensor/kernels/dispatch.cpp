#include "tensor/kernels/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/common.hpp"

namespace geofm::kernels {
namespace {

std::atomic<int> g_mode{-1};  // -1 = consult GEOFM_KERNELS on first use

int mode_from_env() {
  const char* env = std::getenv("GEOFM_KERNELS");
  if (env == nullptr || *env == '\0') return static_cast<int>(Mode::kSimd);
  const std::string s(env);
  if (s == "scalar") return static_cast<int>(Mode::kScalar);
  if (s == "simd") return static_cast<int>(Mode::kSimd);
  GEOFM_CHECK(false, "GEOFM_KERNELS must be 'scalar' or 'simd', got '" << s
                     << "'");
  return static_cast<int>(Mode::kSimd);  // unreachable
}

}  // namespace

Mode active_mode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    // Benign race: concurrent first callers compute the same value.
    m = mode_from_env();
    g_mode.store(m, std::memory_order_relaxed);
  }
  return static_cast<Mode>(m);
}

Mode set_mode(Mode mode) {
  const int prev = g_mode.exchange(static_cast<int>(mode),
                                   std::memory_order_relaxed);
  return prev < 0 ? static_cast<Mode>(mode_from_env())
                  : static_cast<Mode>(prev);
}

const char* mode_name(Mode mode) {
  return mode == Mode::kScalar ? "scalar" : "simd";
}

}  // namespace geofm::kernels
