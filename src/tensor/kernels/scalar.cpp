// The scalar oracle: the original hand-written kernels, moved here from
// src/tensor/ops.cpp / src/optim when the kernel engine landed. Loop
// structure and arithmetic order are preserved bit-for-bit for the
// contiguous layouts the layers use, so this side of the dispatch seam IS
// the seed implementation; generic strided fallbacks cover padded
// sub-views for the parity suite.
#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/kernels/detail.hpp"
#include "util/thread_pool.hpp"

namespace geofm::kernels::detail {
namespace {

// ----- GEMM cores over one batch slice, parallel-range form -----------------

// C[m,n] = A[m,k] * B[k,n], rows [r0, r1). Saxpy loop order: B streamed
// row-wise, zero-skip on A (sparse gradients are common in masked MAE).
void gemm_rows_nn(const float* a, i64 lda, const float* b, i64 ldb, float* c,
                  i64 ldc, i64 k, i64 n, i64 r0, i64 r1) {
  for (i64 i = r0; i < r1; ++i) {
    float* crow = c + i * ldc;
    std::fill_n(crow, n, 0.f);
    const float* arow = a + i * lda;
    for (i64 p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.f) continue;
      const float* brow = b + p * ldb;
      for (i64 j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[m,n] = A[m,k] * B[n,k]^T — dot products of rows.
void gemm_rows_nt(const float* a, i64 lda, const float* b, i64 ldb, float* c,
                  i64 ldc, i64 k, i64 n, i64 r0, i64 r1) {
  for (i64 i = r0; i < r1; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (i64 j = 0; j < n; ++j) {
      const float* brow = b + j * ldb;
      float acc = 0.f;
      for (i64 p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

// C[k,n] = A[m,k]^T * B[m,n] — accumulate outer products row by row.
// Parallel over output rows p (columns of A).
void gemm_rows_tn(const float* a, i64 lda, const float* b, i64 ldb, float* c,
                  i64 ldc, i64 m, i64 n, i64 r0, i64 r1) {
  for (i64 p = r0; p < r1; ++p) {
    float* crow = c + p * ldc;
    std::fill_n(crow, n, 0.f);
    for (i64 i = 0; i < m; ++i) {
      const float av = a[i * lda + p];
      if (av == 0.f) continue;
      const float* brow = b + i * ldb;
      for (i64 j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// Fully generic strided fallback (dot-product order), rows [r0, r1).
void gemm_rows_generic(const float* a, i64 ars, i64 acs, const float* b,
                       i64 brs, i64 bcs, float* c, i64 ldc, i64 k, i64 n,
                       i64 r0, i64 r1) {
  for (i64 i = r0; i < r1; ++i) {
    float* crow = c + i * ldc;
    for (i64 j = 0; j < n; ++j) {
      float acc = 0.f;
      for (i64 p = 0; p < k; ++p) {
        acc += a[i * ars + p * acs] * b[p * brs + j * bcs];
      }
      crow[j] = acc;
    }
  }
}

enum class Layout { kNN, kNT, kTN, kGeneric };

Layout classify(i64 ars, i64 acs, i64 brs, i64 bcs) {
  if (acs == 1 && bcs == 1) return Layout::kNN;
  if (acs == 1 && brs == 1) return Layout::kNT;
  if (ars == 1 && bcs == 1) return Layout::kTN;
  return Layout::kGeneric;
}

// One batch slice, rows [r0, r1) of the logical [m, n] output.
void gemm_slice(Layout layout, const float* a, i64 ars, i64 acs,
                const float* b, i64 brs, i64 bcs, float* c, i64 ldc,
                i64 k, i64 n, i64 r0, i64 r1) {
  switch (layout) {
    case Layout::kNN:
      gemm_rows_nn(a, ars, b, brs, c, ldc, k, n, r0, r1);
      break;
    case Layout::kNT:
      gemm_rows_nt(a, ars, b, bcs, c, ldc, k, n, r0, r1);
      break;
    case Layout::kTN:
      // ars==1: A is physically [k, m] with row stride acs; the
      // contraction runs over physical A rows (logical k).
      gemm_rows_tn(a, acs, b, brs, c, ldc, k, n, r0, r1);
      break;
    case Layout::kGeneric:
      gemm_rows_generic(a, ars, acs, b, brs, bcs, c, ldc, k, n, r0, r1);
      break;
  }
}

}  // namespace

void scalar_gemm(i64 batch, i64 m, i64 k, i64 n,
                 const float* a, i64 a_batch, i64 ars, i64 acs,
                 const float* b, i64 b_batch, i64 brs, i64 bcs,
                 float* c, i64 c_batch, i64 ldc) {
  if (batch <= 0 || m <= 0 || n <= 0) return;
  const Layout layout = classify(ars, acs, brs, bcs);
  if (batch == 1) {
    parallel_for(m, [&](i64 r0, i64 r1) {
      gemm_slice(layout, a, ars, acs, b, brs, bcs, c, ldc, k, n, r0, r1);
    });
    return;
  }
  parallel_for(batch, [&](i64 b0, i64 b1) {
    for (i64 i = b0; i < b1; ++i) {
      gemm_slice(layout, a + i * a_batch, ars, acs, b + i * b_batch, brs, bcs,
                 c + i * c_batch, ldc, k, n, 0, m);
    }
  });
}

// ----- layernorm -------------------------------------------------------------

void scalar_layernorm_fwd(i64 rows, i64 cols, const float* x,
                          const float* gamma, const float* beta, float eps,
                          float* y, float* mean, float* rstd) {
  parallel_for(rows, [&](i64 r0, i64 r1) {
    for (i64 r = r0; r < r1; ++r) {
      const float* xi = x + r * cols;
      float* yi = y + r * cols;
      double mu = 0.0;
      for (i64 c = 0; c < cols; ++c) mu += xi[c];
      mu /= static_cast<double>(cols);
      double var = 0.0;
      for (i64 c = 0; c < cols; ++c) {
        const double diff = xi[c] - mu;
        var += diff * diff;
      }
      var /= static_cast<double>(cols);
      const float rs = static_cast<float>(1.0 / std::sqrt(var + eps));
      mean[r] = static_cast<float>(mu);
      rstd[r] = rs;
      for (i64 c = 0; c < cols; ++c) {
        yi[c] = (xi[c] - mean[r]) * rs * gamma[c] + beta[c];
      }
    }
  });
}

void scalar_layernorm_bwd(i64 rows, i64 cols, const float* dy, const float* x,
                          const float* gamma, const float* mean,
                          const float* rstd, float* dx, float* dgamma,
                          float* dbeta) {
  // dgamma/dbeta accumulate across rows — do serially to stay deterministic.
  for (i64 r = 0; r < rows; ++r) {
    const float* dyi = dy + r * cols;
    const float* xi = x + r * cols;
    for (i64 c = 0; c < cols; ++c) {
      const float xhat = (xi[c] - mean[r]) * rstd[r];
      dgamma[c] += dyi[c] * xhat;
      dbeta[c] += dyi[c];
    }
  }

  parallel_for(rows, [&](i64 r0, i64 r1) {
    for (i64 r = r0; r < r1; ++r) {
      const float* dyi = dy + r * cols;
      const float* xi = x + r * cols;
      float* dxi = dx + r * cols;
      // Two row reductions, then the standard LN gradient identity.
      float sum_g = 0.f, sum_gx = 0.f;
      for (i64 c = 0; c < cols; ++c) {
        const float g = dyi[c] * gamma[c];
        const float xhat = (xi[c] - mean[r]) * rstd[r];
        sum_g += g;
        sum_gx += g * xhat;
      }
      const float inv_n = 1.f / static_cast<float>(cols);
      for (i64 c = 0; c < cols; ++c) {
        const float g = dyi[c] * gamma[c];
        const float xhat = (xi[c] - mean[r]) * rstd[r];
        dxi[c] = rstd[r] * (g - inv_n * sum_g - xhat * inv_n * sum_gx);
      }
    }
  });
}

// ----- softmax ---------------------------------------------------------------

void scalar_softmax_fwd(i64 rows, i64 cols, const float* x, float* y) {
  if (rows <= 0 || cols <= 0) return;
  parallel_for(rows, [&](i64 r0, i64 r1) {
    for (i64 r = r0; r < r1; ++r) {
      const float* xi = x + r * cols;
      float* yi = y + r * cols;
      float mx = xi[0];
      for (i64 c = 1; c < cols; ++c) mx = std::max(mx, xi[c]);
      float sum = 0.f;
      for (i64 c = 0; c < cols; ++c) {
        yi[c] = std::exp(xi[c] - mx);
        sum += yi[c];
      }
      const float inv = 1.f / sum;
      for (i64 c = 0; c < cols; ++c) yi[c] *= inv;
    }
  });
}

void scalar_softmax_bwd(i64 rows, i64 cols, const float* dy, const float* y,
                        float* dx) {
  parallel_for(rows, [&](i64 r0, i64 r1) {
    for (i64 r = r0; r < r1; ++r) {
      const float* dyi = dy + r * cols;
      const float* yi = y + r * cols;
      float* dxi = dx + r * cols;
      float dot = 0.f;
      for (i64 c = 0; c < cols; ++c) dot += dyi[c] * yi[c];
      for (i64 c = 0; c < cols; ++c) dxi[c] = yi[c] * (dyi[c] - dot);
    }
  });
}

// ----- AdamW -----------------------------------------------------------------

void scalar_adamw(i64 n, float* w, const float* g, float* m, float* v,
                  const AdamWConfig& cfg) {
  for (i64 j = 0; j < n; ++j) {
    m[j] = static_cast<float>(cfg.beta1 * m[j] + (1.0 - cfg.beta1) * g[j]);
    v[j] = static_cast<float>(cfg.beta2 * v[j] +
                              (1.0 - cfg.beta2) * static_cast<double>(g[j]) *
                                  g[j]);
    const double mhat = m[j] / cfg.bias_c1;
    const double vhat = v[j] / cfg.bias_c2;
    // Decoupled weight decay, then the Adam update.
    w[j] -= static_cast<float>(cfg.lr * cfg.weight_decay * w[j]);
    w[j] -= static_cast<float>(cfg.lr * mhat / (std::sqrt(vhat) + cfg.eps));
  }
}

// ----- image <-> patch --------------------------------------------------------

void scalar_patchify(i64 b, i64 c, i64 h, i64 w, i64 patch,
                     const float* images, float* out) {
  const i64 gw = w / patch;
  const i64 n = (h / patch) * gw;
  const i64 pdim = patch * patch * c;
  parallel_for(b * n, [&](i64 i0, i64 i1) {
    for (i64 idx = i0; idx < i1; ++idx) {
      const i64 bi = idx / n;
      const i64 pi = idx % n;
      const i64 py = pi / gw, px = pi % gw;
      float* dst = out + idx * pdim;
      for (i64 ci = 0; ci < c; ++ci) {
        for (i64 y = 0; y < patch; ++y) {
          const float* src = images +
                             ((bi * c + ci) * h + py * patch + y) * w +
                             px * patch;
          std::memcpy(dst, src, static_cast<size_t>(patch) * sizeof(float));
          dst += patch;
        }
      }
    }
  });
}

void scalar_unpatchify(i64 b, i64 c, i64 grid, i64 patch, const float* patches,
                       float* out) {
  const i64 n = grid * grid;
  const i64 hw = grid * patch;
  const i64 pdim = patch * patch * c;
  parallel_for(b * n, [&](i64 i0, i64 i1) {
    for (i64 idx = i0; idx < i1; ++idx) {
      const i64 bi = idx / n;
      const i64 pi = idx % n;
      const i64 py = pi / grid, px = pi % grid;
      const float* src = patches + idx * pdim;
      for (i64 ci = 0; ci < c; ++ci) {
        for (i64 y = 0; y < patch; ++y) {
          float* dst = out +
                       ((bi * c + ci) * hw + py * patch + y) * hw + px * patch;
          std::memcpy(dst, src, static_cast<size_t>(patch) * sizeof(float));
          src += patch;
        }
      }
    }
  });
}

}  // namespace geofm::kernels::detail
