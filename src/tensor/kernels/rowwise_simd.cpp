// Vectorized row-wise kernels: layernorm forward/backward and softmax
// forward/backward. Rows are independent (parallelized with a grain hint
// so small calls take the thread pool's single-chunk bypass); within a
// row, reductions run lane-parallel and the elementwise passes use fused
// multiply-adds.
//
// Numerics vs the scalar oracle:
//  * layernorm statistics accumulate in double (like the oracle) but
//    lane-striped, so mean/rstd agree to ~1 float ulp;
//  * softmax uses the polynomial vexp (relative error ~1.5e-7 vs libm);
//  * float row reductions (softmax dot, LN backward sums) reassociate
//    across lanes — covered by the parity suite's tolerances.
// All of it is deterministic: lane striping is fixed by the column index,
// never by thread count.
#include <algorithm>
#include <cmath>

#include "tensor/kernels/detail.hpp"
#include "tensor/kernels/simd.hpp"
#include "util/thread_pool.hpp"

namespace geofm::kernels::detail {
namespace {

using simd::kDLanes;
using simd::kLanes;
using simd::vd;
using simd::vf;
using simd::vfh;

// Row mean and variance with lane-striped double accumulation.
void row_stats(const float* xi, i64 cols, double* out_mean, double* out_var) {
  vd sum0{}, sum1{};
  i64 c = 0;
  for (; c + 2 * kDLanes <= cols; c += 2 * kDLanes) {
    sum0 += simd::to_double(simd::load_half(xi + c));
    sum1 += simd::to_double(simd::load_half(xi + c + kDLanes));
  }
  double mean = simd::hsum(sum0) + simd::hsum(sum1);
  for (; c < cols; ++c) mean += xi[c];
  mean /= static_cast<double>(cols);

  const vd mu = vd{} + mean;
  vd var0{}, var1{};
  c = 0;
  for (; c + 2 * kDLanes <= cols; c += 2 * kDLanes) {
    const vd d0 = simd::to_double(simd::load_half(xi + c)) - mu;
    const vd d1 = simd::to_double(simd::load_half(xi + c + kDLanes)) - mu;
    var0 += d0 * d0;
    var1 += d1 * d1;
  }
  double var = simd::hsum(var0) + simd::hsum(var1);
  for (; c < cols; ++c) {
    const double diff = xi[c] - mean;
    var += diff * diff;
  }
  var /= static_cast<double>(cols);
  *out_mean = mean;
  *out_var = var;
}

}  // namespace

void simd_layernorm_fwd(i64 rows, i64 cols, const float* x, const float* gamma,
                        const float* beta, float eps, float* y, float* mean,
                        float* rstd) {
  parallel_for(
      rows,
      [&](i64 r0, i64 r1) {
        for (i64 r = r0; r < r1; ++r) {
          const float* xi = x + r * cols;
          float* yi = y + r * cols;
          double mu, var;
          row_stats(xi, cols, &mu, &var);
          const float rs = static_cast<float>(1.0 / std::sqrt(var + eps));
          mean[r] = static_cast<float>(mu);
          rstd[r] = rs;
          const vf mv = simd::splat(mean[r]);
          const vf rv = simd::splat(rs);
          i64 c = 0;
          for (; c + kLanes <= cols; c += kLanes) {
            const vf xv = simd::load(xi + c);
            const vf gv = simd::load(gamma + c);
            const vf bv = simd::load(beta + c);
            simd::store(yi + c, (xv - mv) * rv * gv + bv);
          }
          for (; c < cols; ++c) {
            yi[c] = (xi[c] - mean[r]) * rs * gamma[c] + beta[c];
          }
        }
      },
      row_grain(cols));
}

void simd_layernorm_bwd(i64 rows, i64 cols, const float* dy, const float* x,
                        const float* gamma, const float* mean,
                        const float* rstd, float* dx, float* dgamma,
                        float* dbeta) {
  // dgamma/dbeta accumulate across rows: row-serial (deterministic, same
  // row order as the oracle), lane-parallel across columns.
  for (i64 r = 0; r < rows; ++r) {
    const float* dyi = dy + r * cols;
    const float* xi = x + r * cols;
    const vf mv = simd::splat(mean[r]);
    const vf rv = simd::splat(rstd[r]);
    i64 c = 0;
    for (; c + kLanes <= cols; c += kLanes) {
      const vf dyv = simd::load(dyi + c);
      const vf xhat = (simd::load(xi + c) - mv) * rv;
      simd::store(dgamma + c, simd::load(dgamma + c) + dyv * xhat);
      simd::store(dbeta + c, simd::load(dbeta + c) + dyv);
    }
    for (; c < cols; ++c) {
      const float xhat = (xi[c] - mean[r]) * rstd[r];
      dgamma[c] += dyi[c] * xhat;
      dbeta[c] += dyi[c];
    }
  }

  parallel_for(
      rows,
      [&](i64 r0, i64 r1) {
        for (i64 r = r0; r < r1; ++r) {
          const float* dyi = dy + r * cols;
          const float* xi = x + r * cols;
          float* dxi = dx + r * cols;
          const vf mv = simd::splat(mean[r]);
          const vf rv = simd::splat(rstd[r]);
          vf sum_gv{}, sum_gxv{};
          i64 c = 0;
          for (; c + kLanes <= cols; c += kLanes) {
            const vf g = simd::load(dyi + c) * simd::load(gamma + c);
            const vf xhat = (simd::load(xi + c) - mv) * rv;
            sum_gv += g;
            sum_gxv += g * xhat;
          }
          float sum_g = simd::hsum(sum_gv), sum_gx = simd::hsum(sum_gxv);
          for (; c < cols; ++c) {
            const float g = dyi[c] * gamma[c];
            const float xhat = (xi[c] - mean[r]) * rstd[r];
            sum_g += g;
            sum_gx += g * xhat;
          }
          const float inv_n = 1.f / static_cast<float>(cols);
          const vf t1 = simd::splat(inv_n * sum_g);
          const vf t2 = simd::splat(inv_n * sum_gx);
          c = 0;
          for (; c + kLanes <= cols; c += kLanes) {
            const vf g = simd::load(dyi + c) * simd::load(gamma + c);
            const vf xhat = (simd::load(xi + c) - mv) * rv;
            simd::store(dxi + c, rv * (g - t1 - xhat * t2));
          }
          for (; c < cols; ++c) {
            const float g = dyi[c] * gamma[c];
            const float xhat = (xi[c] - mean[r]) * rstd[r];
            dxi[c] = rstd[r] * (g - inv_n * sum_g - xhat * inv_n * sum_gx);
          }
        }
      },
      row_grain(cols));
}

void simd_softmax_fwd(i64 rows, i64 cols, const float* x, float* y) {
  if (rows <= 0 || cols <= 0) return;
  const i64 tail = cols % kLanes;
  const i64 main = cols - tail;
  parallel_for(
      rows,
      [&](i64 r0, i64 r1) {
        for (i64 r = r0; r < r1; ++r) {
          const float* xi = x + r * cols;
          float* yi = y + r * cols;

          vf mxv = simd::splat(-std::numeric_limits<float>::infinity());
          for (i64 c = 0; c < main; c += kLanes) {
            mxv = simd::vmax(mxv, simd::load(xi + c));
          }
          float mx = main > 0 ? simd::hmax(mxv) : xi[0];
          for (i64 c = main; c < cols; ++c) mx = std::max(mx, xi[c]);

          const vf mxs = simd::splat(mx);
          vf sumv{};
          for (i64 c = 0; c < main; c += kLanes) {
            const vf e = simd::vexp(simd::load(xi + c) - mxs);
            simd::store(yi + c, e);
            sumv += e;
          }
          float sum = simd::hsum(sumv);
          if (tail > 0) {
            vf xt = simd::load_partial(xi + main, tail);
            vf e = simd::vexp(xt - mxs);
            for (i64 l = tail; l < kLanes; ++l) e[l] = 0.f;
            simd::store_partial(yi + main, e, tail);
            sum += simd::hsum(e);
          }

          const vf inv = simd::splat(1.f / sum);
          for (i64 c = 0; c < main; c += kLanes) {
            simd::store(yi + c, simd::load(yi + c) * inv);
          }
          for (i64 c = main; c < cols; ++c) yi[c] *= inv[0];
        }
      },
      row_grain(cols));
}

void simd_softmax_bwd(i64 rows, i64 cols, const float* dy, const float* y,
                      float* dx) {
  const i64 tail = cols % kLanes;
  const i64 main = cols - tail;
  parallel_for(
      rows,
      [&](i64 r0, i64 r1) {
        for (i64 r = r0; r < r1; ++r) {
          const float* dyi = dy + r * cols;
          const float* yi = y + r * cols;
          float* dxi = dx + r * cols;
          vf dotv{};
          for (i64 c = 0; c < main; c += kLanes) {
            dotv += simd::load(dyi + c) * simd::load(yi + c);
          }
          float dot = simd::hsum(dotv);
          for (i64 c = main; c < cols; ++c) dot += dyi[c] * yi[c];
          const vf dots = simd::splat(dot);
          for (i64 c = 0; c < main; c += kLanes) {
            simd::store(dxi + c,
                        simd::load(yi + c) * (simd::load(dyi + c) - dots));
          }
          for (i64 c = main; c < cols; ++c) {
            dxi[c] = yi[c] * (dyi[c] - dot);
          }
        }
      },
      row_grain(cols));
}

}  // namespace geofm::kernels::detail
