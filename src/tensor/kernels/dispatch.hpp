// Runtime dispatch seam for the kernel engine (DESIGN §5).
//
// Every hot kernel exists twice: the original scalar loops (the oracle —
// clear, deterministic, kept bit-identical to the seed implementation) and
// a SIMD + cache-blocked rewrite. `GEOFM_KERNELS=scalar|simd` selects the
// active implementation at process start (default: simd); tests flip it
// programmatically with set_mode() to run the parity oracle suite.
#pragma once

namespace geofm::kernels {

enum class Mode { kScalar, kSimd };

/// The active implementation. First call consults GEOFM_KERNELS; later
/// calls return the cached (or set_mode-overridden) value.
Mode active_mode();

/// Overrides the active mode (tests / benches). Returns the previous mode.
Mode set_mode(Mode mode);

/// "scalar" / "simd".
const char* mode_name(Mode mode);

/// Lane count of the compiled SIMD kernels (floats per vector register),
/// e.g. 16 with AVX-512, 8 otherwise. The parity suite sweeps shapes
/// around this to exercise tail handling.
int simd_lanes();

/// RAII mode override for tests: restores the previous mode on scope exit.
class ModeGuard {
 public:
  explicit ModeGuard(Mode mode) : prev_(set_mode(mode)) {}
  ~ModeGuard() { set_mode(prev_); }
  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;

 private:
  Mode prev_;
};

}  // namespace geofm::kernels
