// Portable SIMD layer for the vectorized kernels, built on GCC/Clang
// vector extensions: a fixed-width float vector type with unaligned
// load/store, broadcast, select, horizontal reductions, and a vectorized
// exp. The compiler lowers arithmetic on these types to the best ISA the
// translation unit is compiled for (the simd_*.cpp files get
// -march=native when available, see src/CMakeLists.txt) and emulates
// wider-than-hardware vectors otherwise, so this header needs no
// per-ISA intrinsics and always compiles.
//
// ONLY include this from the *_simd.cpp translation units: the lane count
// depends on the TU's target flags, so leaking these types into commonly
// compiled code would be an ODR violation.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "util/common.hpp"

namespace geofm::kernels::simd {

#if defined(__AVX512F__)
inline constexpr int kLanes = 16;
#else
// 8 floats = one AVX register, or two SSE registers when the TU is built
// for baseline x86-64 — GCC emulates the wider type with no correctness
// cost.
inline constexpr int kLanes = 8;
#endif

typedef float vf __attribute__((vector_size(kLanes * sizeof(float))));
typedef std::int32_t vi __attribute__((vector_size(kLanes * sizeof(std::int32_t))));

inline vf splat(float x) { return vf{} + x; }

inline vf load(const float* p) {
  vf v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store(float* p, vf v) { std::memcpy(p, &v, sizeof(v)); }

/// Loads n < kLanes floats, zero-filling the rest.
inline vf load_partial(const float* p, i64 n) {
  vf v{};
  std::memcpy(&v, p, static_cast<size_t>(n) * sizeof(float));
  return v;
}

/// Stores the first n lanes only.
inline void store_partial(float* p, vf v, i64 n) {
  std::memcpy(p, &v, static_cast<size_t>(n) * sizeof(float));
}

inline float hsum(vf v) {
  float s = 0.f;
  for (int l = 0; l < kLanes; ++l) s += v[l];
  return s;
}

inline float hmax(vf v) {
  float m = v[0];
  for (int l = 1; l < kLanes; ++l) m = m > v[l] ? m : v[l];
  return m;
}

inline vf vmax(vf a, vf b) { return a > b ? a : b; }

/// Lane-wise sqrt; vectorizes to sqrtps under -fno-math-errno.
inline vf vsqrt(vf x) {
  vf r;
  for (int l = 0; l < kLanes; ++l) r[l] = std::sqrt(x[l]);
  return r;
}

/// Vectorized e^x for x <= ~88 (softmax inputs are <= 0 after the max
/// subtraction). Cody-Waite range reduction to r in [-ln2/2, ln2/2], a
/// degree-6 Taylor polynomial (relative error ~1.5e-7), then a 2^n scale
/// via exponent-bit arithmetic. Inputs below -87 clamp (exp underflows to
/// ~1e-38 instead of 0 — indistinguishable at fp32 softmax tolerances).
inline vf vexp(vf x) {
  const vf lo = splat(-87.0f);
  const vf hi = splat(88.0f);
  x = x < lo ? lo : x;
  x = x > hi ? hi : x;
  const vf magic = splat(12582912.0f);  // 1.5 * 2^23: round-to-nearest trick
  vf t = x * splat(1.44269504088896341f) + magic;
  const vf n = t - magic;
  vf r = x - n * splat(0.693145751953125f);    // ln2 high bits
  r = r - n * splat(1.42860677e-06f);          // ln2 low bits
  vf p = splat(1.3888889e-3f);                 // 1/720
  p = p * r + splat(8.3333333e-3f);            // 1/120
  p = p * r + splat(4.1666667e-2f);            // 1/24
  p = p * r + splat(0.16666667f);              // 1/6
  p = p * r + splat(0.5f);
  p = p * r + splat(1.0f);
  p = p * r + splat(1.0f);
  const vi ni = __builtin_convertvector(n, vi);
  const vi bits = (ni + 127) << 23;  // 2^n as float bits
  vf scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return p * scale;
}

// Half-width double vectors for high-precision row statistics (layernorm
// accumulates in double like the scalar oracle).
inline constexpr int kDLanes = kLanes / 2;
typedef double vd __attribute__((vector_size(kDLanes * sizeof(double))));
typedef float vfh __attribute__((vector_size(kDLanes * sizeof(float))));

inline vfh load_half(const float* p) {
  vfh v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline vd to_double(vfh v) { return __builtin_convertvector(v, vd); }

inline double hsum(vd v) {
  double s = 0.0;
  for (int l = 0; l < kDLanes; ++l) s += v[l];
  return s;
}

}  // namespace geofm::kernels::simd
