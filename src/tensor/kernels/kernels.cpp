// Dispatch + instrumentation layer of the kernel engine. Each public
// kernel resolves the active mode (GEOFM_KERNELS), wraps the call in a
// `kernel.<family>` trace span, and bumps the family's
// {calls,flops,bytes,seconds} counters. Counter references are resolved
// once per family (registry lookup takes a mutex) and the span names are
// string literals, as the trace recorder requires.
//
// flops/bytes are model estimates, not measurements: GEMM counts
// 2*b*m*k*n flops and one touch of each operand; the row-wise kernels
// count transcendentals as one flop and assume each array is streamed
// once. They exist to make the spans self-describing (GFLOP/s at a
// glance) and to feed roofline-style summaries, so consistency matters
// more than exactness.
#include <algorithm>

#include "tensor/kernels/kernels.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/kernels/detail.hpp"
#include "util/thread_context.hpp"

namespace geofm::kernels {
namespace {

struct FamilyCounters {
  obs::Counter& calls;
  obs::Counter& flops;
  obs::Counter& bytes;
  obs::Counter& seconds;

  explicit FamilyCounters(const char* family) noexcept
      : calls(counter(family, "calls")),
        flops(counter(family, "flops")),
        bytes(counter(family, "bytes")),
        seconds(counter(family, "seconds")) {}

 private:
  static obs::Counter& counter(const char* family, const char* leaf) {
    return obs::MetricsRegistry::instance().counter(
        std::string("kernel.") + family + "." + leaf);
  }
};

// RAII around one kernel call: span + counters. `span_name` must be a
// literal ("kernel.gemm", ...).
class KernelScope {
 public:
  KernelScope(const char* span_name, FamilyCounters& fam, i64 flops, i64 bytes)
      : fam_(fam),
        flops_(flops),
        bytes_(bytes),
        span_(span_name, "kernel", "flops", flops, "bytes", bytes),
        start_ns_(monotonic_ns()) {}

  ~KernelScope() {
    const u64 end_ns = monotonic_ns();
    fam_.calls.add(1);
    fam_.flops.add(static_cast<double>(flops_));
    fam_.bytes.add(static_cast<double>(bytes_));
    fam_.seconds.add(static_cast<double>(end_ns - start_ns_) * 1e-9);
  }

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  FamilyCounters& fam_;
  i64 flops_;
  i64 bytes_;
  obs::TraceScope span_;
  u64 start_ns_;
};

bool use_simd() { return active_mode() == Mode::kSimd; }

}  // namespace

int simd_lanes() { return detail::simd_lanes_impl(); }

void gemm(i64 batch, i64 m, i64 k, i64 n,
          const float* a, i64 a_batch, i64 ars, i64 acs,
          const float* b, i64 b_batch, i64 brs, i64 bcs,
          float* c, i64 c_batch, i64 ldc) {
  static FamilyCounters fam("gemm");
  const i64 flops = 2 * batch * m * k * n;
  const i64 bytes = 4 * batch * (m * k + k * n + m * n);
  KernelScope scope("kernel.gemm", fam, flops, bytes);
  // Tiny problems can't amortize packing: the blocked path starts paying
  // off once the per-slice work clears a few microkernel tiles.
  const bool tiny = m * k * n < 4096 || n < detail::simd_lanes_impl();
  if (use_simd() && !tiny) {
    detail::simd_gemm(batch, m, k, n, a, a_batch, ars, acs, b, b_batch, brs,
                      bcs, c, c_batch, ldc);
  } else {
    detail::scalar_gemm(batch, m, k, n, a, a_batch, ars, acs, b, b_batch, brs,
                        bcs, c, c_batch, ldc);
  }
}

void gemm_nn(i64 batch, i64 m, i64 k, i64 n, const float* a, const float* b,
             float* c) {
  gemm(batch, m, k, n, a, m * k, k, 1, b, k * n, n, 1, c, m * n, n);
}

void gemm_nt(i64 batch, i64 m, i64 k, i64 n, const float* a, const float* b,
             float* c) {
  // B is stored [n, k]; b(p, j) = B[j*k + p].
  gemm(batch, m, k, n, a, m * k, k, 1, b, n * k, 1, k, c, m * n, n);
}

void gemm_tn(i64 batch, i64 m, i64 k, i64 n, const float* a, const float* b,
             float* c) {
  // C[k,n] = A^T * B with A stored [m, k]: logical rows = k, contraction
  // runs over m. a(i, p) = A[p*k + i].
  gemm(batch, k, m, n, a, m * k, 1, k, b, m * n, n, 1, c, k * n, n);
}

void layernorm_fwd(i64 rows, i64 cols, const float* x, const float* gamma,
                   const float* beta, float eps, float* y, float* mean,
                   float* rstd) {
  static FamilyCounters fam("layernorm");
  const i64 flops = 8 * rows * cols;
  const i64 bytes = 4 * (2 * rows * cols + 2 * cols + 2 * rows);
  KernelScope scope("kernel.layernorm", fam, flops, bytes);
  if (use_simd()) {
    detail::simd_layernorm_fwd(rows, cols, x, gamma, beta, eps, y, mean, rstd);
  } else {
    detail::scalar_layernorm_fwd(rows, cols, x, gamma, beta, eps, y, mean,
                                 rstd);
  }
}

void layernorm_bwd(i64 rows, i64 cols, const float* dy, const float* x,
                   const float* gamma, const float* mean, const float* rstd,
                   float* dx, float* dgamma, float* dbeta) {
  static FamilyCounters fam("layernorm_bwd");
  const i64 flops = 14 * rows * cols;
  const i64 bytes = 4 * (4 * rows * cols + 3 * cols + 2 * rows);
  KernelScope scope("kernel.layernorm_bwd", fam, flops, bytes);
  if (use_simd()) {
    detail::simd_layernorm_bwd(rows, cols, dy, x, gamma, mean, rstd, dx,
                               dgamma, dbeta);
  } else {
    detail::scalar_layernorm_bwd(rows, cols, dy, x, gamma, mean, rstd, dx,
                                 dgamma, dbeta);
  }
}

void softmax_fwd(i64 rows, i64 cols, const float* x, float* y) {
  static FamilyCounters fam("softmax");
  const i64 flops = 5 * rows * cols;
  const i64 bytes = 4 * 2 * rows * cols;
  KernelScope scope("kernel.softmax", fam, flops, bytes);
  if (use_simd()) {
    detail::simd_softmax_fwd(rows, cols, x, y);
  } else {
    detail::scalar_softmax_fwd(rows, cols, x, y);
  }
}

void softmax_bwd(i64 rows, i64 cols, const float* dy, const float* y,
                 float* dx) {
  static FamilyCounters fam("softmax_bwd");
  const i64 flops = 4 * rows * cols;
  const i64 bytes = 4 * 3 * rows * cols;
  KernelScope scope("kernel.softmax_bwd", fam, flops, bytes);
  if (use_simd()) {
    detail::simd_softmax_bwd(rows, cols, dy, y, dx);
  } else {
    detail::scalar_softmax_bwd(rows, cols, dy, y, dx);
  }
}

void adamw_update(i64 n, float* w, const float* g, float* m, float* v,
                  const AdamWConfig& cfg) {
  static FamilyCounters fam("adamw");
  const i64 flops = 12 * n;
  const i64 bytes = 4 * 7 * n;  // read w,g,m,v; write w,m,v
  KernelScope scope("kernel.adamw", fam, flops, bytes);
  if (use_simd()) {
    detail::simd_adamw(n, w, g, m, v, cfg);
  } else {
    detail::scalar_adamw(n, w, g, m, v, cfg);
  }
}

void patchify(i64 b, i64 c, i64 h, i64 w, i64 patch, const float* images,
              float* out) {
  static FamilyCounters fam("patchify");
  const i64 total = b * c * h * w;
  KernelScope scope("kernel.patchify", fam, /*flops=*/0, 4 * 2 * total);
  if (use_simd()) {
    detail::simd_patchify(b, c, h, w, patch, images, out);
  } else {
    detail::scalar_patchify(b, c, h, w, patch, images, out);
  }
}

void unpatchify(i64 b, i64 c, i64 grid, i64 patch, const float* patches,
                float* out) {
  static FamilyCounters fam("unpatchify");
  const i64 total = b * c * grid * grid * patch * patch;
  KernelScope scope("kernel.unpatchify", fam, /*flops=*/0, 4 * 2 * total);
  if (use_simd()) {
    detail::simd_unpatchify(b, c, grid, patch, patches, out);
  } else {
    detail::scalar_unpatchify(b, c, grid, patch, patches, out);
  }
}

}  // namespace geofm::kernels
