// Vectorized elementwise kernels: the AdamW parameter update and the
// patchify/unpatchify layout transforms.
//
// AdamW runs the whole update in fp32 lanes (the oracle's double
// intermediates exist for clarity, not necessity — the moment buffers and
// weights are fp32 anyway); bias corrections arrive precomputed per step.
// The patch transforms are pure data movement: the win over the oracle is
// vector copies for wide patches and a grain hint that keeps small calls
// on the calling thread.
#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/kernels/detail.hpp"
#include "tensor/kernels/simd.hpp"
#include "util/thread_pool.hpp"

namespace geofm::kernels::detail {
namespace {

using simd::kLanes;
using simd::vf;

// Copies `n` floats; vector path for full lanes, memcpy tail.
inline void copy_row(float* dst, const float* src, i64 n) {
  i64 c = 0;
  for (; c + kLanes <= n; c += kLanes) {
    simd::store(dst + c, simd::load(src + c));
  }
  if (c < n) {
    std::memcpy(dst + c, src + c, static_cast<size_t>(n - c) * sizeof(float));
  }
}

}  // namespace

void simd_adamw(i64 n, float* w, const float* g, float* m, float* v,
                const AdamWConfig& cfg) {
  const float b1 = static_cast<float>(cfg.beta1);
  const float b2 = static_cast<float>(cfg.beta2);
  const float c1 = static_cast<float>(1.0 - cfg.beta1);
  const float c2 = static_cast<float>(1.0 - cfg.beta2);
  const float inv_bc1 = static_cast<float>(1.0 / cfg.bias_c1);
  const float inv_bc2 = static_cast<float>(1.0 / cfg.bias_c2);
  const float lr = static_cast<float>(cfg.lr);
  const float decay = static_cast<float>(cfg.lr * cfg.weight_decay);
  const float eps = static_cast<float>(cfg.eps);

  const vf vb1 = simd::splat(b1), vb2 = simd::splat(b2);
  const vf vc1 = simd::splat(c1), vc2 = simd::splat(c2);
  const vf vibc1 = simd::splat(inv_bc1), vibc2 = simd::splat(inv_bc2);
  const vf vlr = simd::splat(lr), vdecay = simd::splat(decay);
  const vf veps = simd::splat(eps);

  i64 j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const vf gv = simd::load(g + j);
    const vf mv = vb1 * simd::load(m + j) + vc1 * gv;
    const vf vv = vb2 * simd::load(v + j) + vc2 * gv * gv;
    simd::store(m + j, mv);
    simd::store(v + j, vv);
    const vf mhat = mv * vibc1;
    const vf vhat = vv * vibc2;
    vf wv = simd::load(w + j);
    wv = wv - vdecay * wv;
    wv = wv - vlr * mhat / (simd::vsqrt(vhat) + veps);
    simd::store(w + j, wv);
  }
  for (; j < n; ++j) {
    m[j] = b1 * m[j] + c1 * g[j];
    v[j] = b2 * v[j] + c2 * g[j] * g[j];
    const float mhat = m[j] * inv_bc1;
    const float vhat = v[j] * inv_bc2;
    w[j] -= decay * w[j];
    w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void simd_patchify(i64 b, i64 c, i64 h, i64 w, i64 patch, const float* images,
                   float* out) {
  const i64 gw = w / patch;
  const i64 n = (h / patch) * gw;
  const i64 pdim = patch * patch * c;
  parallel_for(
      b * n,
      [&](i64 i0, i64 i1) {
        for (i64 idx = i0; idx < i1; ++idx) {
          const i64 bi = idx / n;
          const i64 pi = idx % n;
          const i64 py = pi / gw, px = pi % gw;
          float* dst = out + idx * pdim;
          const float* base = images + (bi * c * h + py * patch) * w +
                              px * patch;
          for (i64 ci = 0; ci < c; ++ci) {
            const float* src = base + ci * h * w;
            for (i64 y = 0; y < patch; ++y) {
              copy_row(dst, src, patch);
              dst += patch;
              src += w;
            }
          }
        }
      },
      /*grain=*/std::max<i64>(i64{1}, i64{16384} / std::max<i64>(i64{1},
                                                                 pdim)));
}

void simd_unpatchify(i64 b, i64 c, i64 grid, i64 patch, const float* patches,
                     float* out) {
  const i64 n = grid * grid;
  const i64 hw = grid * patch;
  const i64 pdim = patch * patch * c;
  parallel_for(
      b * n,
      [&](i64 i0, i64 i1) {
        for (i64 idx = i0; idx < i1; ++idx) {
          const i64 bi = idx / n;
          const i64 pi = idx % n;
          const i64 py = pi / grid, px = pi % grid;
          const float* src = patches + idx * pdim;
          float* base = out + (bi * c * hw + py * patch) * hw + px * patch;
          for (i64 ci = 0; ci < c; ++ci) {
            float* dst = base + ci * hw * hw;
            for (i64 y = 0; y < patch; ++y) {
              copy_row(dst, src, patch);
              src += patch;
              dst += hw;
            }
          }
        }
      },
      /*grain=*/std::max<i64>(i64{1}, i64{16384} / std::max<i64>(i64{1},
                                                                 pdim)));
}

}  // namespace geofm::kernels::detail
