// Public surface of the kernel engine: the hot raw-pointer kernels behind
// every tensor/nn/optim operation, dispatched at runtime between the
// scalar oracle and the SIMD + cache-blocked implementations
// (GEOFM_KERNELS, see dispatch.hpp).
//
// Conventions:
//  * All matrices are fp32. C outputs are row-major; GEMM transposition is
//    expressed through element strides, so one entry point serves NN/NT/TN
//    and arbitrary (lda/ldb) padded sub-views.
//  * `batch` amortizes dispatch + instrumentation over e.g. the per-head
//    attention GEMMs: one kernel.* span covers the whole batch.
//  * Every call emits a `kernel.<family>` trace span (category "kernel",
//    args flops/bytes) and bumps kernel.<family>.{calls,flops,bytes,
//    seconds} metrics.
#pragma once

#include "tensor/kernels/dispatch.hpp"
#include "util/common.hpp"

namespace geofm::kernels {

// ----- GEMM ----------------------------------------------------------------

/// For each batch slice: C[i,j] = sum_p a(i,p) * b(p,j), where
///   a(i,p) = A[batch*a_batch + i*ars + p*acs],
///   b(p,j) = B[batch*b_batch + p*brs + j*bcs],
/// and C is row-major with leading dimension ldc (c_batch between slices).
/// C is overwritten. Shapes are logical: A is [m,k], B is [k,n].
void gemm(i64 batch, i64 m, i64 k, i64 n,
          const float* a, i64 a_batch, i64 ars, i64 acs,
          const float* b, i64 b_batch, i64 brs, i64 bcs,
          float* c, i64 c_batch, i64 ldc);

/// Contiguous convenience wrappers over gemm(), physical shapes as in
/// ops::matmul / ops::bmm:
///   nn: A[m,k] * B[k,n]          -> C[m,n]
///   nt: A[m,k] * B[n,k]^T        -> C[m,n]
///   tn: A[m,k]^T * B[m,n]        -> C[k,n]
void gemm_nn(i64 batch, i64 m, i64 k, i64 n, const float* a, const float* b,
             float* c);
void gemm_nt(i64 batch, i64 m, i64 k, i64 n, const float* a, const float* b,
             float* c);
void gemm_tn(i64 batch, i64 m, i64 k, i64 n, const float* a, const float* b,
             float* c);

// ----- row-wise normalizations ----------------------------------------------

/// y = gamma * (x - mean) / sqrt(var + eps) + beta per row; writes per-row
/// mean/rstd for the backward pass. x, y are [rows, cols] contiguous.
void layernorm_fwd(i64 rows, i64 cols, const float* x, const float* gamma,
                   const float* beta, float eps, float* y, float* mean,
                   float* rstd);

/// dx from the standard LN gradient identity; dgamma/dbeta are
/// *accumulated* (row-serial, deterministic).
void layernorm_bwd(i64 rows, i64 cols, const float* dy, const float* x,
                   const float* gamma, const float* mean, const float* rstd,
                   float* dx, float* dgamma, float* dbeta);

/// Numerically stable row-wise softmax; x, y are [rows, cols].
void softmax_fwd(i64 rows, i64 cols, const float* x, float* y);

/// dx = y * (dy - sum(dy*y)) per row.
void softmax_bwd(i64 rows, i64 cols, const float* dy, const float* y,
                 float* dx);

// ----- optimizer -------------------------------------------------------------

struct AdamWConfig {
  double lr = 0;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0;
  double bias_c1 = 1;  // 1 - beta1^t, computed once per step
  double bias_c2 = 1;  // 1 - beta2^t
};

/// One decoupled-weight-decay Adam update over n contiguous elements:
/// m/v moment update, bias-corrected step, decay applied to the pre-step
/// weights. Matches optim::AdamW semantics exactly in scalar mode.
void adamw_update(i64 n, float* w, const float* g, float* m, float* v,
                  const AdamWConfig& cfg);

// ----- image <-> patch --------------------------------------------------------

/// [B, C, H, W] -> [B, N, P*P*C], channel-major within a patch (the MAE
/// layout). h and w must be multiples of patch.
void patchify(i64 b, i64 c, i64 h, i64 w, i64 patch, const float* images,
              float* out);

/// Inverse of patchify for square g x g patch grids: [B, N, P*P*C] ->
/// [B, C, g*P, g*P].
void unpatchify(i64 b, i64 c, i64 grid, i64 patch, const float* patches,
                float* out);

}  // namespace geofm::kernels
