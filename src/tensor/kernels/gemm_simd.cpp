// SIMD GEMM: register-tiled, cache-blocked, packed-panel — the classic
// GotoBLAS/BLIS decomposition scaled down to this repo's needs.
//
//   for jc over N in NC panels            (Bp panel lives in L2)
//     for pc over K in KC panels
//       pack B[pc:pc+KC, jc:jc+NC] -> Bp  (NR-wide slivers, zero-padded)
//       parallel over M in MC blocks      (grain hint = one block)
//         pack A[ic:ic+MC, pc:pc+KC] -> Ap (MR-tall slivers)
//         for each NR sliver of Bp        (sliver stays in L1)
//           for each MR sliver of Ap
//             microkernel: MR x NR register tile of C += Ap * Bp
//
// The microkernel holds an MR x (2 vectors) accumulator block in
// registers and broadcasts A; edge tiles route through a small stack
// buffer so the hot path never masks. Strides on A and B are arbitrary
// (packing is where strided/transposed inputs get linearized), so one
// core serves NN/NT/TN and padded sub-views. C accumulates across KC
// panels in a fixed order — results are deterministic and independent of
// the thread count.
//
// This TU is compiled with -march=native (when available) so the vector
// type in simd.hpp maps to the widest ISA on the build machine; tiny
// problems are routed to the scalar oracle by the dispatcher before
// getting here (packing would dominate).
#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/kernels/detail.hpp"
#include "tensor/kernels/simd.hpp"
#include "util/thread_pool.hpp"

namespace geofm::kernels::detail {
namespace {

using simd::kLanes;
using simd::vf;

constexpr i64 MR = 6;             // microkernel rows
constexpr i64 NR = 2 * kLanes;    // microkernel cols (2 vector registers)
constexpr i64 KC = 192;           // k panel: Bp sliver = KC*NR floats in L1
constexpr i64 MC = 96;            // m block: Ap block = MC*KC floats in L2
constexpr i64 NC = 2048;          // n panel: Bp panel = KC*NC floats in L2

// Packs kc x nc of B (element stride brs/bcs) into NR-wide slivers,
// zero-padding the last sliver: dst[sliver][p][0..NR).
void pack_b(const float* b, i64 brs, i64 bcs, i64 kc, i64 nc, float* dst) {
  for (i64 j0 = 0; j0 < nc; j0 += NR) {
    const i64 jw = std::min<i64>(NR, nc - j0);
    for (i64 p = 0; p < kc; ++p) {
      const float* src = b + p * brs + j0 * bcs;
      if (bcs == 1) {
        std::memcpy(dst, src, static_cast<size_t>(jw) * sizeof(float));
      } else {
        for (i64 j = 0; j < jw; ++j) dst[j] = src[j * bcs];
      }
      for (i64 j = jw; j < NR; ++j) dst[j] = 0.f;
      dst += NR;
    }
  }
}

// Packs mc x kc of A (element stride ars/acs) into MR-tall slivers,
// zero-padding the last: dst[sliver][p][0..MR).
void pack_a(const float* a, i64 ars, i64 acs, i64 mc, i64 kc, float* dst) {
  for (i64 i0 = 0; i0 < mc; i0 += MR) {
    const i64 iw = std::min<i64>(MR, mc - i0);
    for (i64 p = 0; p < kc; ++p) {
      const float* src = a + i0 * ars + p * acs;
      for (i64 i = 0; i < iw; ++i) dst[i] = src[i * ars];
      for (i64 i = iw; i < MR; ++i) dst[i] = 0.f;
      dst += MR;
    }
  }
}

// C[0..mr, 0..nr] += Ap(MR x kc sliver) * Bp(kc x NR sliver). Full tiles
// accumulate straight into C; edge tiles go through `spill`.
void micro(const float* ap, const float* bp, i64 kc, float* c, i64 ldc,
           i64 mr, i64 nr) {
  vf acc0[MR], acc1[MR];
  for (i64 r = 0; r < MR; ++r) {
    acc0[r] = vf{};
    acc1[r] = vf{};
  }
  for (i64 p = 0; p < kc; ++p) {
    const vf b0 = simd::load(bp + p * NR);
    const vf b1 = simd::load(bp + p * NR + kLanes);
    const float* arow = ap + p * MR;
    for (i64 r = 0; r < MR; ++r) {
      const vf av = simd::splat(arow[r]);
      acc0[r] += av * b0;
      acc1[r] += av * b1;
    }
  }
  if (mr == MR && nr == NR) {
    for (i64 r = 0; r < MR; ++r) {
      float* crow = c + r * ldc;
      simd::store(crow, simd::load(crow) + acc0[r]);
      simd::store(crow + kLanes, simd::load(crow + kLanes) + acc1[r]);
    }
    return;
  }
  float spill[MR * NR];
  for (i64 r = 0; r < MR; ++r) {
    simd::store(spill + r * NR, acc0[r]);
    simd::store(spill + r * NR + kLanes, acc1[r]);
  }
  for (i64 r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    const float* srow = spill + r * NR;
    for (i64 j = 0; j < nr; ++j) crow[j] += srow[j];
  }
}

// One batch slice. `parallel` toggles row-parallelism (off when the
// caller already parallelized over the batch dimension).
void gemm_slice(const float* a, i64 ars, i64 acs, const float* b, i64 brs,
                i64 bcs, float* c, i64 ldc, i64 m, i64 k, i64 n,
                bool parallel) {
  for (i64 i = 0; i < m; ++i) std::fill_n(c + i * ldc, n, 0.f);
  if (k <= 0) return;

  thread_local std::vector<float> bpack;
  bpack.resize(static_cast<size_t>(KC * NC));

  for (i64 jc = 0; jc < n; jc += NC) {
    const i64 nc = std::min<i64>(NC, n - jc);
    for (i64 pc = 0; pc < k; pc += KC) {
      const i64 kc = std::min<i64>(KC, k - pc);
      pack_b(b + pc * brs + jc * bcs, brs, bcs, kc, nc, bpack.data());
      const float* bp = bpack.data();

      auto rows = [&](i64 r0, i64 r1) {
        thread_local std::vector<float> apack;
        apack.resize(static_cast<size_t>(MC * KC));
        for (i64 ic = r0; ic < r1; ic += MC) {
          const i64 mc = std::min<i64>(MC, r1 - ic);
          pack_a(a + ic * ars + pc * acs, ars, acs, mc, kc, apack.data());
          for (i64 jr = 0; jr < nc; jr += NR) {
            const i64 nr = std::min<i64>(NR, nc - jr);
            const float* bsliver = bp + (jr / NR) * kc * NR;
            for (i64 ir = 0; ir < mc; ir += MR) {
              const i64 mr = std::min<i64>(MR, mc - ir);
              micro(apack.data() + (ir / MR) * kc * MR, bsliver, kc,
                    c + (ic + ir) * ldc + jc + jr, ldc, mr, nr);
            }
          }
        }
      };
      if (parallel) {
        parallel_for(m, rows, MC);
      } else {
        rows(0, m);
      }
    }
  }
}

}  // namespace

int simd_lanes_impl() { return kLanes; }

void simd_gemm(i64 batch, i64 m, i64 k, i64 n,
               const float* a, i64 a_batch, i64 ars, i64 acs,
               const float* b, i64 b_batch, i64 brs, i64 bcs,
               float* c, i64 c_batch, i64 ldc) {
  if (batch <= 0 || m <= 0 || n <= 0) return;
  if (batch == 1) {
    gemm_slice(a, ars, acs, b, brs, bcs, c, ldc, m, k, n, /*parallel=*/true);
    return;
  }
  parallel_for(
      batch,
      [&](i64 b0, i64 b1) {
        for (i64 i = b0; i < b1; ++i) {
          gemm_slice(a + i * a_batch, ars, acs, b + i * b_batch, brs, bcs,
                     c + i * c_batch, ldc, m, k, n, /*parallel=*/false);
        }
      },
      /*grain=*/1);
}

}  // namespace geofm::kernels::detail
