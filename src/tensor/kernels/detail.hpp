// Internal split of the kernel engine: each public kernel in kernels.hpp
// resolves to a scalar_* (oracle) or simd_* implementation. Signatures are
// plain-pointer so this header stays free of vector types — the simd_*
// translation units are the only ones compiled with target-specific flags
// (see src/CMakeLists.txt), which keeps ODR clean.
#pragma once

#include <algorithm>

#include "tensor/kernels/kernels.hpp"
#include "util/common.hpp"

namespace geofm::kernels::detail {

void scalar_gemm(i64 batch, i64 m, i64 k, i64 n,
                 const float* a, i64 a_batch, i64 ars, i64 acs,
                 const float* b, i64 b_batch, i64 brs, i64 bcs,
                 float* c, i64 c_batch, i64 ldc);
void simd_gemm(i64 batch, i64 m, i64 k, i64 n,
               const float* a, i64 a_batch, i64 ars, i64 acs,
               const float* b, i64 b_batch, i64 brs, i64 bcs,
               float* c, i64 c_batch, i64 ldc);

void scalar_layernorm_fwd(i64 rows, i64 cols, const float* x,
                          const float* gamma, const float* beta, float eps,
                          float* y, float* mean, float* rstd);
void simd_layernorm_fwd(i64 rows, i64 cols, const float* x,
                        const float* gamma, const float* beta, float eps,
                        float* y, float* mean, float* rstd);

void scalar_layernorm_bwd(i64 rows, i64 cols, const float* dy, const float* x,
                          const float* gamma, const float* mean,
                          const float* rstd, float* dx, float* dgamma,
                          float* dbeta);
void simd_layernorm_bwd(i64 rows, i64 cols, const float* dy, const float* x,
                        const float* gamma, const float* mean,
                        const float* rstd, float* dx, float* dgamma,
                        float* dbeta);

void scalar_softmax_fwd(i64 rows, i64 cols, const float* x, float* y);
void simd_softmax_fwd(i64 rows, i64 cols, const float* x, float* y);

void scalar_softmax_bwd(i64 rows, i64 cols, const float* dy, const float* y,
                        float* dx);
void simd_softmax_bwd(i64 rows, i64 cols, const float* dy, const float* y,
                      float* dx);

void scalar_adamw(i64 n, float* w, const float* g, float* m, float* v,
                  const AdamWConfig& cfg);
void simd_adamw(i64 n, float* w, const float* g, float* m, float* v,
                const AdamWConfig& cfg);

void scalar_patchify(i64 b, i64 c, i64 h, i64 w, i64 patch,
                     const float* images, float* out);
void simd_patchify(i64 b, i64 c, i64 h, i64 w, i64 patch, const float* images,
                   float* out);

void scalar_unpatchify(i64 b, i64 c, i64 grid, i64 patch, const float* patches,
                       float* out);
void simd_unpatchify(i64 b, i64 c, i64 grid, i64 patch, const float* patches,
                     float* out);

/// Lane count baked into the simd_*.cpp translation units (they may be
/// compiled for a wider ISA than the rest of the library).
int simd_lanes_impl();

/// Row-parallel grain: chunk rows so each dispatched chunk covers at least
/// ~16K elements — small kernels take the thread pool's single-chunk
/// bypass instead of paying fan-out.
inline i64 row_grain(i64 cols) {
  return std::max<i64>(i64{1}, i64{16384} / std::max<i64>(i64{1}, cols));
}

}  // namespace geofm::kernels::detail
