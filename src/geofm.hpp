// geofm — umbrella header for the public API.
//
// A C++ reproduction of "Pretraining Billion-scale Geospatial Foundational
// Models on Frontier" (Tsaris et al.): ViT/MAE models with hand-written
// backward passes, working DDP/FSDP over an in-process collective
// substrate, procedural geospatial datasets, training loops for MAE
// pretraining and linear probing, and a discrete-event performance
// simulator of the Frontier supercomputer.
//
// Layer map (include individually for faster builds):
//   util/      logging, RNG, thread pool, tables
//   tensor/    fp32 tensors + kernels
//   nn/        layers with forward/backward
//   models/    ViT encoder, MAE, Table I configs
//   optim/     SGD / AdamW / LARS, cosine-warmup schedule
//   comm/      thread-rank collectives (nonblocking engine + split)
//   parallel/  DDP and FSDP (all sharding strategies, prefetch modes)
//   data/      procedural scene datasets (Table II), DataLoader
//   train/     pretraining, linear probing, checkpoints
//   ckpt/      sharded checkpoint/restart (async snapshots, resharding)
//   serve/     frozen-encoder embedding service (hot-reload, batching,
//              embedding cache, per-tenant linear-probe heads)
//   sim/       Frontier machine model + training-step simulator
//   obs/       per-rank tracing (Chrome-trace export) + metrics registry,
//              flight recorder (postmortem bundles), telemetry sampler,
//              run-health report + Prometheus exposition
#pragma once

#include "ckpt/checkpoint.hpp"
#include "ckpt/io_fault.hpp"
#include "ckpt/reshard.hpp"
#include "ckpt/state.hpp"
#include "ckpt/uploader.hpp"
#include "comm/communicator.hpp"
#include "comm/fault.hpp"
#include "comm/watchdog.hpp"
#include "data/dataloader.hpp"
#include "data/datasets.hpp"
#include "models/config.hpp"
#include "models/mae.hpp"
#include "models/vit.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "optim/optimizer.hpp"
#include "parallel/ddp.hpp"
#include "parallel/fsdp.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/heads.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"
#include "train/checkpoint.hpp"
#include "train/distributed.hpp"
#include "train/elastic.hpp"
#include "train/linear_probe.hpp"
#include "train/pretrain.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
