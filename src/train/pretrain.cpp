#include "train/pretrain.hpp"

#include "data/dataloader.hpp"
#include "obs/trace.hpp"
#include "optim/optimizer.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace geofm::train {

PretrainResult pretrain_mae(models::MAE& mae, const data::SceneDataset& corpus,
                            const PretrainConfig& cfg) {
  GEOFM_CHECK(cfg.epochs > 0 && cfg.batch_size > 0);
  Timer timer;

  data::DataLoader::Options lopts;
  lopts.batch_size = cfg.batch_size;
  lopts.n_workers = cfg.loader_workers;
  lopts.shuffle = true;
  lopts.seed = cfg.seed;
  lopts.enable_augment = cfg.augment;
  data::DataLoader loader(corpus, data::Split::kTrain, lopts);

  const i64 steps_per_epoch = loader.batches_per_epoch();
  GEOFM_CHECK(steps_per_epoch > 0, "pretraining corpus smaller than a batch");
  const i64 total_steps = steps_per_epoch * cfg.epochs;
  const i64 warmup = static_cast<i64>(
      static_cast<double>(total_steps) * cfg.warmup_frac);

  // MAE linear lr scaling rule: effective lr = base * batch / 256.
  const double peak_lr =
      cfg.base_lr * static_cast<double>(cfg.batch_size) / 256.0;

  optim::AdamW opt(mae.parameters(), peak_lr, 0.9, 0.95, 1e-8,
                   cfg.weight_decay);

  PretrainResult result;
  result.step_losses.reserve(static_cast<size_t>(total_steps));
  Rng step_rng(cfg.seed ^ 0x3a5e11ULL);

  i64 global_step = 0;
  for (i64 epoch = 0; epoch < cfg.epochs; ++epoch) {
    loader.start_epoch(epoch);
    double epoch_loss = 0.0;
    i64 epoch_batches = 0;
    while (auto batch = loader.next()) {
      obs::TraceScope step_span("step", "runtime", "step", global_step);
      opt.set_lr(optim::cosine_warmup_lr(peak_lr, global_step, warmup,
                                         total_steps));
      opt.zero_grad();
      Rng mask_rng = step_rng.split(static_cast<u64>(global_step));
      const float loss = mae.forward(batch->images, mask_rng);
      mae.backward();
      opt.step();

      result.step_losses.push_back(loss);
      result.images_seen += batch->images.dim(0);
      epoch_loss += loss;
      ++epoch_batches;
      ++global_step;
    }
    result.epoch_losses.push_back(
        static_cast<float>(epoch_loss / std::max<i64>(1, epoch_batches)));
    if (cfg.verbose) {
      GEOFM_INFO("pretrain epoch " << epoch << "/" << cfg.epochs << " loss "
                                   << result.epoch_losses.back());
    }
  }
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace geofm::train
