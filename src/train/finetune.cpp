#include "train/finetune.hpp"

#include <algorithm>

#include "optim/optimizer.hpp"
#include "tensor/ops.hpp"
#include "util/log.hpp"

namespace geofm::train {

void init_vit_from_mae(models::ViTEncoder& vit, models::MAE& mae) {
  const auto& vcfg = vit.config();
  const auto& mcfg = mae.config().encoder;
  GEOFM_CHECK(vcfg.width == mcfg.width && vcfg.depth == mcfg.depth &&
                  vcfg.mlp_dim == mcfg.mlp_dim && vcfg.heads == mcfg.heads &&
                  vcfg.img_size == mcfg.img_size &&
                  vcfg.patch_size == mcfg.patch_size,
              "encoder architectures differ");

  // Both models lay their encoder parameters out in the same order:
  // patch embed, cls token, per-block parameters, final norm. Build the
  // MAE-side list and copy positionally.
  std::vector<nn::Parameter*> src;
  for (nn::Parameter* p : mae.patch_embed.parameters()) src.push_back(p);
  src.push_back(&mae.cls_token);
  auto mae_stages = mae.stage_modules();
  for (i64 i = 0; i < mcfg.depth; ++i) {
    for (nn::Parameter* p :
         mae_stages[static_cast<size_t>(i)]->parameters()) {
      src.push_back(p);
    }
  }
  for (nn::Parameter* p : mae.enc_norm.parameters()) src.push_back(p);

  std::vector<nn::Parameter*> dst;
  for (nn::Parameter* p : vit.patch_embed.parameters()) dst.push_back(p);
  dst.push_back(&vit.cls_token);
  for (nn::Module* blk : vit.stage_modules()) {
    for (nn::Parameter* p : blk->parameters()) dst.push_back(p);
  }
  for (nn::Parameter* p : vit.norm.parameters()) dst.push_back(p);

  GEOFM_CHECK(src.size() == dst.size(), "encoder parameter lists differ");
  for (size_t i = 0; i < src.size(); ++i) {
    GEOFM_CHECK(src[i]->numel() == dst[i]->numel(),
                "shape mismatch transferring " << src[i]->name << " -> "
                                               << dst[i]->name);
    dst[i]->value.copy_(src[i]->value);
  }
}

void apply_finetune_mode(models::ViTEncoder& vit, FinetuneMode mode,
                         int top_blocks) {
  // Start from everything trainable, then freeze per policy. The head
  // (not part of root/stage backbone lists' freeze set) always trains.
  for (nn::Parameter* p : vit.parameters()) p->requires_grad = true;
  if (mode == FinetuneMode::kFull) return;

  auto freeze = [](nn::Parameter* p) { p->requires_grad = false; };
  for (nn::Parameter* p : vit.patch_embed.parameters()) freeze(p);
  freeze(&vit.cls_token);
  auto stages = vit.stage_modules();
  const int keep =
      mode == FinetuneMode::kHeadOnly ? 0 : std::max(0, top_blocks);
  const int frozen_stages =
      std::max(0, static_cast<int>(stages.size()) - keep);
  for (int i = 0; i < frozen_stages; ++i) {
    for (nn::Parameter* p : stages[static_cast<size_t>(i)]->parameters()) {
      freeze(p);
    }
  }
  if (mode == FinetuneMode::kHeadOnly) {
    for (nn::Parameter* p : vit.norm.parameters()) freeze(p);
  }
}

FinetuneResult finetune(models::ViTEncoder& vit,
                        const data::SceneDataset& dataset,
                        const FinetuneConfig& cfg) {
  GEOFM_CHECK(vit.has_head(), "finetune needs a classification head");
  apply_finetune_mode(vit, cfg.mode, cfg.top_blocks);

  FinetuneResult result;
  for (nn::Parameter* p : vit.parameters()) {
    if (p->requires_grad) result.trainable_params += p->numel();
  }

  optim::AdamW opt(vit.parameters(), cfg.base_lr, 0.9, 0.999, 1e-8,
                   cfg.weight_decay);
  const i64 n_train = dataset.size(data::Split::kTrain);
  const i64 steps_per_epoch = std::max<i64>(1, n_train / cfg.batch_size);
  const i64 total_steps = steps_per_epoch * cfg.epochs;
  const i64 warmup =
      static_cast<i64>(static_cast<double>(total_steps) * cfg.warmup_frac);

  std::vector<i64> order(static_cast<size_t>(n_train));
  for (i64 i = 0; i < n_train; ++i) order[static_cast<size_t>(i)] = i;

  // Pre-render the test split once.
  std::vector<i64> test_idx(
      static_cast<size_t>(dataset.size(data::Split::kTest)));
  for (size_t i = 0; i < test_idx.size(); ++i) {
    test_idx[i] = static_cast<i64>(i);
  }

  i64 global_step = 0;
  for (i64 epoch = 0; epoch < cfg.epochs; ++epoch) {
    Rng shuffle = Rng(cfg.seed).split(0xf17eULL).split(
        static_cast<u64>(epoch));
    for (i64 i = n_train - 1; i > 0; --i) {
      const i64 j = shuffle.uniform_int(i + 1);
      std::swap(order[static_cast<size_t>(i)], order[static_cast<size_t>(j)]);
    }

    double epoch_loss = 0;
    for (i64 s = 0; s < steps_per_epoch; ++s) {
      const i64 begin = s * cfg.batch_size;
      const i64 end = std::min<i64>(begin + cfg.batch_size, n_train);
      std::vector<i64> idx(order.begin() + begin, order.begin() + end);
      auto [images, labels] = dataset.make_batch(data::Split::kTrain, idx);

      opt.set_lr(optim::cosine_warmup_lr(cfg.base_lr, global_step, warmup,
                                         total_steps));
      opt.zero_grad();
      Tensor logits = vit.forward(images);
      auto ce = ops::softmax_cross_entropy(logits, labels);
      vit.backward(ops::softmax_cross_entropy_backward(ce, labels));
      opt.step();
      epoch_loss += ce.loss;
      ++global_step;
    }
    result.train_loss_per_epoch.push_back(
        static_cast<float>(epoch_loss / steps_per_epoch));

    // Evaluate.
    double top1 = 0, top5 = 0;
    i64 seen = 0;
    for (size_t begin = 0; begin < test_idx.size(); begin += 256) {
      const size_t end = std::min(begin + 256, test_idx.size());
      std::vector<i64> idx(test_idx.begin() + static_cast<i64>(begin),
                           test_idx.begin() + static_cast<i64>(end));
      auto [images, labels] = dataset.make_batch(data::Split::kTest, idx);
      Tensor logits = vit.forward(images);
      const i64 b = static_cast<i64>(idx.size());
      top1 += ops::topk_accuracy(logits, labels, 1) * static_cast<double>(b);
      top5 += ops::topk_accuracy(logits, labels, 5) * static_cast<double>(b);
      seen += b;
    }
    result.top1_per_epoch.push_back(top1 / static_cast<double>(seen));
    result.final_top5 = top5 / static_cast<double>(seen);
    if (cfg.verbose) {
      GEOFM_INFO("finetune epoch " << epoch << " loss "
                                   << result.train_loss_per_epoch.back()
                                   << " top1 "
                                   << result.top1_per_epoch.back());
    }
  }
  result.final_top1 = result.top1_per_epoch.back();
  return result;
}

}  // namespace geofm::train
