// Binary checkpointing of module parameters (name-keyed, versioned).
#pragma once

#include <string>

#include "nn/module.hpp"

namespace geofm::train {

/// Writes every parameter (name, shape, data) of `module` to `path`.
void save_checkpoint(nn::Module& module, const std::string& path);

/// Loads a checkpoint into `module`. Every parameter in the module must be
/// present in the file with a matching element count; extra entries in the
/// file are ignored. Throws geofm::Error on mismatch or malformed input.
void load_checkpoint(nn::Module& module, const std::string& path);

}  // namespace geofm::train
