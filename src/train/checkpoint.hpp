// Binary checkpointing of module parameters (name-keyed, versioned).
// Convenience wrappers over the sharded checkpoint subsystem (see
// src/ckpt/checkpoint.hpp for full training-state checkpoints with
// optimizer state, counters, and elastic resharding).
#pragma once

#include <string>

#include "nn/module.hpp"

namespace geofm::train {

/// Writes every parameter (name, shape, data) of `module` to `path` as a
/// single checksummed shard file (atomic: temp + rename).
void save_checkpoint(nn::Module& module, const std::string& path);

/// Loads a checkpoint into `module`. Every parameter in the module must
/// be present with a matching full shape — the first mismatch is
/// reported by parameter name; extra entries in the file are ignored.
/// Throws geofm::Error on mismatch, corruption, or malformed input.
void load_checkpoint(nn::Module& module, const std::string& path);

}  // namespace geofm::train
