// Linear probing (paper Sec. V-C): freeze the pretrained encoder, replace
// the head with a single linear classifier, train it with LARS (base lr
// 0.1, no weight decay) and report top-1/top-5 accuracy per epoch.
//
// Because the backbone is frozen, features are precomputed once per split
// and the probe trains on cached features — numerically identical to
// running the encoder every step, and orders of magnitude faster.
#pragma once

#include <vector>

#include "data/datasets.hpp"
#include "models/mae.hpp"

namespace geofm::train {

struct ProbeConfig {
  i64 epochs = 100;       // paper value
  i64 batch_size = 256;   // paper: 256 (UCM/AID/NWPU), 1024 (MillionAID)
  double base_lr = 0.1;   // paper value (per 256 effective batch)
  double momentum = 0.9;
  double warmup_frac = 0.1;
  u64 seed = 0;
  bool verbose = false;
};

struct ProbeResult {
  std::vector<double> top1_per_epoch;  // test accuracy after each epoch
  std::vector<double> top5_per_epoch;
  double final_top1 = 0.0;
  double final_top5 = 0.0;
};

/// Extracts class-token features for every sample of `split`.
/// Returns [n, width] features plus labels.
std::pair<Tensor, std::vector<i64>> extract_features(
    models::MAE& encoder, const data::SceneDataset& dataset, data::Split split,
    i64 batch_size = 256);

/// Full probing protocol on `dataset` using frozen `encoder` features.
ProbeResult linear_probe(models::MAE& encoder,
                         const data::SceneDataset& dataset,
                         const ProbeConfig& cfg);

}  // namespace geofm::train
