#include "train/checkpoint.hpp"

#include "ckpt/checkpoint.hpp"
#include "ckpt/state.hpp"

namespace geofm::train {

// Thin shims over the sharded checkpoint subsystem (src/ckpt/): a module
// checkpoint is a single-rank, parameters-only checkpoint written as one
// shard file. Moving to the v2 format fixed the historic laxness of this
// API — loads now verify full parameter shapes (not just element counts)
// and record checksums, and report the first mismatching parameter by
// name.

void save_checkpoint(nn::Module& module, const std::string& path) {
  ckpt::save_file(path, ckpt::replicated_state(module, /*optimizer=*/nullptr,
                                               /*rank=*/0, /*world=*/1,
                                               /*for_save=*/true));
}

void load_checkpoint(nn::Module& module, const std::string& path) {
  ckpt::CheckpointReader reader(path);
  reader.restore(ckpt::replicated_state(module, /*optimizer=*/nullptr,
                                        /*rank=*/0, /*world=*/1,
                                        /*for_save=*/false));
}

}  // namespace geofm::train
