#include "train/checkpoint.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

namespace geofm::train {
namespace {

constexpr std::uint64_t kMagic = 0x67656f666d636b31ULL;  // "geofmck1"

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  GEOFM_CHECK(in.good(), "checkpoint truncated");
  return v;
}

}  // namespace

void save_checkpoint(nn::Module& module, const std::string& path) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary);
  GEOFM_CHECK(out.good(), "cannot open checkpoint " << path);

  const auto params = module.parameters();
  write_u64(out, kMagic);
  write_u64(out, static_cast<std::uint64_t>(params.size()));
  for (nn::Parameter* param : params) {
    write_u64(out, static_cast<std::uint64_t>(param->name.size()));
    out.write(param->name.data(),
              static_cast<std::streamsize>(param->name.size()));
    write_u64(out, static_cast<std::uint64_t>(param->numel()));
    out.write(reinterpret_cast<const char*>(param->value.data()),
              static_cast<std::streamsize>(param->numel() * sizeof(float)));
  }
  GEOFM_CHECK(out.good(), "checkpoint write failed: " << path);
}

void load_checkpoint(nn::Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GEOFM_CHECK(in.good(), "cannot open checkpoint " << path);
  GEOFM_CHECK(read_u64(in) == kMagic, "not a geofm checkpoint: " << path);

  const std::uint64_t count = read_u64(in);
  std::map<std::string, std::vector<float>> entries;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = read_u64(in);
    GEOFM_CHECK(name_len < 4096, "implausible name length");
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    const std::uint64_t numel = read_u64(in);
    std::vector<float> values(numel);
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    GEOFM_CHECK(in.good(), "checkpoint truncated at " << name);
    entries.emplace(std::move(name), std::move(values));
  }

  for (nn::Parameter* param : module.parameters()) {
    auto it = entries.find(param->name);
    GEOFM_CHECK(it != entries.end(),
                "checkpoint missing parameter " << param->name);
    GEOFM_CHECK(static_cast<i64>(it->second.size()) == param->numel(),
                "checkpoint size mismatch for " << param->name);
    std::copy(it->second.begin(), it->second.end(), param->value.data());
  }
}

}  // namespace geofm::train
