// Distributed MAE pretraining driver over the async FSDP runtime — the
// functional analogue of the paper's Frontier runs. Each rank trains its
// slice of every global batch; parameter gathers and gradient reductions
// are nonblocking and overlap compute, and the driver aggregates the
// per-step exposed-wait vs overlapped-communication accounting that the
// paper's prefetch/limit_all_gathers ablations are about.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ckpt/uploader.hpp"
#include "comm/communicator.hpp"
#include "comm/fault.hpp"
#include "data/datasets.hpp"
#include "models/mae.hpp"
#include "parallel/fsdp.hpp"

namespace geofm::train {

struct DistributedPretrainConfig {
  i64 steps = 30;
  i64 global_batch = 64;   // split evenly across ranks
  double lr = 3e-3;
  double weight_decay = 0.05;
  u64 seed = 9;
  int loader_workers = 0;  // per rank; 0 = synchronous rendering
  bool verbose = false;

  // ----- checkpoint/restart (src/ckpt/) ----------------------------------
  /// Save a sharded checkpoint after every N completed optimizer steps
  /// (0 = never). Requires checkpoint_dir.
  i64 checkpoint_every_n_steps = 0;
  std::string checkpoint_dir;
  /// Stage at the step boundary, write on a background thread (the
  /// exposed cost is the staging copy only). False = write inline.
  bool async_checkpoint = true;
  /// Resume source: a checkpoint root (latest complete step), a step
  /// directory, or a shard file. Empty = fresh run. The checkpoint may
  /// have been written at any world size or sharding strategy; counters,
  /// optimizer state, and RNG streams are restored so the continued loss
  /// trajectory matches an uninterrupted run's.
  std::string resume_from;
  /// True when this run is the elastic supervisor's shrink-and-continue
  /// restart of a faulted run: the resume emits a `recover.reshard` trace
  /// span (category "recover") instead of the plain `ckpt.resume` one, so
  /// time-to-recover is visible in trace exports and span budgets.
  bool recovery_resume = false;

  // ----- failure model (src/comm/fault.hpp, comm/watchdog.hpp) ------------
  /// Deterministic fault schedule for this run. Installed under the
  /// communicator (covering FSDP's sub-communicators) so post-triggered
  /// events fire at the collective boundary, and consulted once per step
  /// at the mid-step fault point (after the backward's collectives drain,
  /// before the optimizer step) for step-triggered events.
  std::shared_ptr<comm::FaultInjector> fault_injector;
  /// > 0 starts the comm watchdog with this rendezvous deadline: a rank
  /// that stalls past it gets the whole group aborted with a diagnosis
  /// instead of deadlocking the run. Keep generous on oversubscribed
  /// machines (the deadline bounds healthy rendezvous skew).
  double watchdog_deadline_seconds = 0;
  /// Loader stall watchdog (only armed when the fault plan carries
  /// loader-kind events): if a rank's next() waits longer than this for
  /// a batch — a hung render or a worker killed without respawn budget —
  /// the consumer re-renders the batch itself and late duplicates are
  /// discarded. 0 keeps the watchdog off even under a loader-fault plan.
  double loader_watchdog_seconds = 0.25;
  /// DEPRECATED — thin shim over the fault layer, kept for API
  /// compatibility: the hook is wrapped in a one-event every-step
  /// kCallback FaultPlan and fired at the same mid-step fault point.
  /// New code should build a comm::FaultPlan and set fault_injector.
  std::function<void(comm::Communicator&, i64 step)> fault_hook;

  // ----- checkpoint retention (ckpt::RetentionPolicy) ---------------------
  /// > 0 bounds on-disk checkpoints: keep the last N complete steps...
  i64 checkpoint_keep_last = 0;
  /// ...plus every step divisible by this (0 = no anchors), GC'ing the
  /// rest atomically after each publication.
  i64 checkpoint_keep_multiple_of = 0;

  // ----- storage-path robustness (ckpt::Uploader, io-fault seam) ----------
  /// Mirror every published checkpoint to `upload.destination` from a
  /// background uploader owned by rank 0 (empty destination = disabled).
  /// `upload.source` is owned by the driver (always the checkpoint_dir);
  /// the remaining knobs — retries, backoff, timeouts, checksum
  /// verification — pass through. Training never blocks on the upload:
  /// the driver barriers once at the end of the run and drains the queue,
  /// reporting totals in the result.
  ckpt::UploaderOptions upload;
  /// Treat a failed shard write (disk error, injected IO fault) as a
  /// skipped checkpoint instead of a fatal error: logged, counted in
  /// `ckpt.save_failures`, training continues to the next save.
  bool tolerate_checkpoint_failures = false;
};

struct DistributedPretrainResult {
  std::vector<float> step_losses;  // globally averaged, one per step run
  double wall_seconds = 0;
  i64 images_seen = 0;  // global
  /// First step this run executed (> 0 when resumed from a checkpoint).
  i64 start_step = 0;

  // Overlap accounting for this rank, summed over all steps.
  int collectives_waited = 0;
  int collectives_overlapped = 0;     // already complete when waited on
  double comm_busy_seconds = 0;       // total in-flight collective time
  double exposed_wait_seconds = 0;    // time actually blocked waiting
  double overlapped_comm_seconds = 0; // comm hidden behind compute
  int peak_inflight_gathers = 0;      // max over steps

  // Input-pipeline analogue of exposed_wait_seconds: time this rank spent
  // blocked in loader.next(), summed over all steps. With workers the
  // render pipeline hides behind compute and this stays near zero; with
  // loader_workers == 0 every render is on the critical path.
  double loader_exposed_seconds = 0;

  // Checkpoint-upload accounting from the end-of-run drain (rank 0 of an
  // upload-configured run; zero elsewhere).
  i64 checkpoints_uploaded = 0;
  i64 upload_failures = 0;
  i64 upload_gave_up = 0;
};

/// Runs `cfg.steps` optimizer steps of MAE pretraining on `mae`, already
/// wrapped by `fsdp`, over the train split of `corpus`. Every rank loads
/// the global batch deterministically and trains on its own slice (SPMD),
/// so the result is step-equivalent to a single-rank full-batch run. The
/// caller keeps ownership of the wrapper (e.g. to gather_full_parameters()
/// and checkpoint afterwards).
DistributedPretrainResult pretrain_mae_distributed(
    models::MAE& mae, parallel::Fsdp& fsdp, comm::Communicator& comm,
    const data::SceneDataset& corpus, const DistributedPretrainConfig& cfg);

}  // namespace geofm::train
