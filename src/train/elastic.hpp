// Elastic in-run failure recovery: a shrink-and-continue supervisor over
// `pretrain_mae_distributed`.
//
// `run_elastic` owns one persistent worker thread per initial rank
// ("identity"). Each attempt it forms a communicator over the live
// identities, hands every worker a rank, and runs the distributed
// pretraining driver to completion — or to a fault. When a rank dies
// (a FaultPlan kill, or a stall the comm watchdog aborts), the
// supervisor:
//
//   1. *detects*: survivors unwind with `comm::Aborted` (the dead rank
//      with `comm::RankKilled`); the span `recover.detect` covers first
//      failure -> all ranks reported;
//   2. *quarantines*: RankKilled ranks plus the watchdog's stall suspects
//      are retired — their threads exit, their identities never rejoin;
//   3. *re-forms*: a fresh communicator over the survivors
//      (`recover.reform`), shrinking further if the global batch does not
//      divide the survivor count;
//   4. *reshards + continues*: the next attempt resumes from the latest
//      complete checkpoint — the ordinary elastic-restore path
//      (`plan_reads` reassembles any saved world/strategy into the new
//      one, surfaced as `recover.reshard`), with loader slicing rescaled
//      to the new world size — and training continues in-process, no
//      external restart.
//
// Because a resumed run is bitwise deterministic for a given world size,
// the post-recovery loss trajectory is *exactly* the trajectory of a
// fresh run launched at the shrunken world from the same checkpoint (the
// recovery tests assert float equality).
//
// Metrics: `recovery.count`, `recovery.seconds` (first failure ->
// next attempt running), `recovery.world`.
#pragma once

#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "data/datasets.hpp"
#include "models/config.hpp"
#include "models/mae.hpp"
#include "parallel/fsdp.hpp"
#include "train/distributed.hpp"

namespace geofm::train {

struct ElasticConfig {
  /// Per-attempt training template. The supervisor owns `resume_from`,
  /// `recovery_resume`, `fault_injector`, and
  /// `watchdog_deadline_seconds`; set faults/watchdog on the fields
  /// below instead. `checkpoint_dir` doubles as the recovery source: a
  /// run that faults before its first save has nothing to resume from
  /// and restarts the attempt from step 0.
  DistributedPretrainConfig train;

  /// Model + sharding, rebuilt per attempt (every surviving rank
  /// reconstructs the model from `model_seed`, then restores from the
  /// checkpoint — same as a fresh launch at the new world size).
  models::MaeConfig model;
  parallel::FsdpOptions fsdp;
  u64 model_seed = 1;

  /// Initial world size (identities 0..world-1). Must divide
  /// train.global_batch.
  int world = 4;
  /// Give up (rethrow the last failure) if survivors would drop below
  /// this after quarantine + divisibility trimming.
  int min_world = 1;
  /// Give up after this many recoveries (a fault storm, not a fault).
  int max_recoveries = 8;

  /// Fault schedule, in *identity* (initial-world rank) terms. Unfired
  /// events carry over across attempts, remapped to each attempt's
  /// ranks; events targeting quarantined identities are dropped.
  comm::FaultPlan faults;

  /// > 0 arms the comm watchdog on every attempt's group: stalled ranks
  /// are diagnosed, aborted, and quarantined like crashed ones.
  double watchdog_deadline_seconds = 0;
};

/// One attempt = one communicator generation.
struct ElasticAttempt {
  int world = 0;
  bool completed = false;
  i64 start_step = 0;              // first step this attempt executed
  std::vector<float> losses;       // per-step losses this attempt produced
  std::string resumed_from;        // checkpoint dir ("" = from scratch)
  std::vector<int> quarantined;    // identities retired after this attempt
  std::string failure;             // first failure's message ("" if none)
  i64 faults_fired = 0;            // plan events consumed by this attempt
};

struct ElasticResult {
  std::vector<ElasticAttempt> attempts;  // >= 1; last one completed
  int recoveries = 0;
  double recovery_seconds = 0;  // summed first-failure -> next-attempt time
  /// The completing attempt's driver result (its step_losses are the
  /// post-recovery trajectory).
  DistributedPretrainResult final_result;
  /// Identities that survived to the completing attempt, in rank order.
  std::vector<int> final_identities;
};

/// Runs MAE pretraining to completion across faults, shrinking the world
/// as ranks die. Throws the underlying error when recovery is impossible
/// (no diagnosable dead rank, survivors below min_world, recoveries
/// exhausted, or a non-comm failure).
ElasticResult run_elastic(const ElasticConfig& cfg,
                          const data::SceneDataset& corpus);

}  // namespace geofm::train
