// Elastic in-run failure recovery: a shrink-and-continue supervisor over
// `pretrain_mae_distributed`.
//
// `run_elastic` owns one persistent worker thread per initial rank
// ("identity"). Each attempt it forms a communicator over the live
// identities, hands every worker a rank, and runs the distributed
// pretraining driver to completion — or to a fault. When a rank dies
// (a FaultPlan kill, or a stall the comm watchdog aborts), the
// supervisor:
//
//   1. *detects*: survivors unwind with `comm::Aborted` (the dead rank
//      with `comm::RankKilled`); the span `recover.detect` covers first
//      failure -> all ranks reported;
//   2. *quarantines*: RankKilled ranks plus the watchdog's stall suspects
//      are retired — their threads exit, their identities never rejoin;
//   3. *re-forms*: a fresh communicator over the survivors
//      (`recover.reform`), shrinking further if the global batch does not
//      divide the survivor count;
//   4. *reshards + continues*: the next attempt resumes from the latest
//      complete checkpoint — the ordinary elastic-restore path
//      (`plan_reads` reassembles any saved world/strategy into the new
//      one, surfaced as `recover.reshard`), with loader slicing rescaled
//      to the new world size — and training continues in-process, no
//      external restart.
//
// Because a resumed run is bitwise deterministic for a given world size,
// the post-recovery loss trajectory is *exactly* the trajectory of a
// fresh run launched at the shrunken world from the same checkpoint (the
// recovery tests assert float equality).
//
// Metrics: `recovery.count`, `recovery.seconds` (first failure ->
// next attempt running), `recovery.world`.
#pragma once

#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "data/datasets.hpp"
#include "models/config.hpp"
#include "models/mae.hpp"
#include "parallel/fsdp.hpp"
#include "train/distributed.hpp"

namespace geofm::train {

/// When and who may re-join a shrunken run (grow-back).
///
/// Re-admission happens only at *checkpoint boundaries*: when growth is
/// possible, the supervisor truncates the shrunken attempt at the next
/// step the driver checkpoints, and on its completion runs a
/// *probationary rendezvous* — candidates form a probe group with the
/// supervisor, run the (optional) health-check hook, and complete a
/// barrier + all-reduce under a watchdog armed with
/// `probation_deadline_seconds`. A candidate that stalls or throws is
/// re-quarantined permanently (`ElasticResult::probation_rejected`)
/// without stalling the run; the healthy remainder is admitted, the
/// communicator re-forms *up*, and the next attempt reshards from the
/// boundary checkpoint onto the larger world. Identities parked while
/// awaiting re-admission are in no communicator group, so the training
/// watchdog never sees (and never flags) them.
struct ReadmissionPolicy {
  /// Re-admit identities the supervisor quarantined earlier (a node
  /// coming back after a reboot).
  bool readmit_quarantined = false;
  /// Fresh replacement identities world..world+spares-1, parked from the
  /// start (a spare node joining for the first time).
  int spare_identities = 0;
  /// Never grow beyond this world size (0 = the initial world).
  int max_world = 0;
  /// Watchdog deadline for the probationary rendezvous; a candidate
  /// whose rendezvous skew exceeds it is rejected, not admitted.
  double probation_deadline_seconds = 0.75;
  /// Give up on growing after this many probation rounds.
  int max_readmissions = 4;
  /// Test seam: runs on the candidate's thread before its probationary
  /// rendezvous. Throwing or sleeping past the deadline gets the
  /// candidate rejected.
  std::function<void(int identity)> probation_hook;

  bool enabled() const { return readmit_quarantined || spare_identities > 0; }
};

struct ElasticConfig {
  /// Per-attempt training template. The supervisor owns `resume_from`,
  /// `recovery_resume`, `fault_injector`, and
  /// `watchdog_deadline_seconds`; set faults/watchdog on the fields
  /// below instead. `checkpoint_dir` doubles as the recovery source: a
  /// run that faults before its first save has nothing to resume from
  /// and restarts the attempt from step 0.
  DistributedPretrainConfig train;

  /// Model + sharding, rebuilt per attempt (every surviving rank
  /// reconstructs the model from `model_seed`, then restores from the
  /// checkpoint — same as a fresh launch at the new world size).
  models::MaeConfig model;
  parallel::FsdpOptions fsdp;
  u64 model_seed = 1;

  /// Initial world size (identities 0..world-1). Must divide
  /// train.global_batch.
  int world = 4;
  /// Give up (rethrow the last failure) if survivors would drop below
  /// this after quarantine + divisibility trimming.
  int min_world = 1;
  /// Give up after this many recoveries (a fault storm, not a fault).
  int max_recoveries = 8;

  /// Fault schedule, in *identity* (initial-world rank, plus spare
  /// identity) terms. Unfired events carry over across attempts,
  /// remapped to each attempt's ranks; events targeting identities not
  /// in the attempt are held back — and fire if their identity is later
  /// re-admitted.
  comm::FaultPlan faults;

  /// > 0 arms the comm watchdog on every attempt's group: stalled ranks
  /// are diagnosed, aborted, and quarantined like crashed ones.
  double watchdog_deadline_seconds = 0;

  /// Grow-back: re-admit quarantined/replacement identities at checkpoint
  /// boundaries. Disabled by default (a shrunken run stays shrunken).
  ReadmissionPolicy readmission;
};

/// One attempt = one communicator generation.
struct ElasticAttempt {
  int world = 0;
  bool completed = false;
  i64 start_step = 0;              // first step this attempt executed
  std::vector<float> losses;       // per-step losses this attempt produced
  std::string resumed_from;        // checkpoint dir ("" = from scratch)
  std::vector<int> quarantined;    // identities retired after this attempt
  std::vector<int> readmitted;     // identities admitted before this attempt
  std::string failure;             // first failure's message ("" if none)
  /// Path of the postmortem bundle this attempt's failure archived under
  /// `<checkpoint_dir>/postmortem/` ("" when the attempt completed, no
  /// checkpoint dir was configured, or archiving itself failed). See
  /// `obs::FlightRecorder`.
  std::string postmortem;
  i64 faults_fired = 0;            // plan events consumed by this attempt
  /// True when the supervisor cut this attempt short at a checkpoint
  /// boundary to attempt grow-back (its completion is a boundary stop,
  /// not the end of training).
  bool truncated_for_growth = false;
};

struct ElasticResult {
  std::vector<ElasticAttempt> attempts;  // >= 1; last one completed
  int recoveries = 0;
  double recovery_seconds = 0;  // summed first-failure -> next-attempt time
  /// Successful grow-back rounds (readmitted identities per round are on
  /// the following attempt's `readmitted`).
  int readmissions = 0;
  /// Candidates rejected during probation, permanently re-quarantined.
  std::vector<int> probation_rejected;
  /// Every plan event that actually fired across all attempts, in
  /// identity terms — serialize with `comm::plan_to_json` to capture the
  /// run's realized fault schedule for bitwise replay.
  comm::FaultPlan fired_plan;
  /// The completing attempt's driver result (its step_losses are the
  /// post-recovery trajectory).
  DistributedPretrainResult final_result;
  /// Identities that survived to the completing attempt, in rank order.
  std::vector<int> final_identities;
};

/// Runs MAE pretraining to completion across faults, shrinking the world
/// as ranks die. Throws the underlying error when recovery is impossible
/// (no diagnosable dead rank, survivors below min_world, recoveries
/// exhausted, or a non-comm failure).
ElasticResult run_elastic(const ElasticConfig& cfg,
                          const data::SceneDataset& corpus);

}  // namespace geofm::train
