// Fine-tuning — the paper's other downstream-adaptation protocol
// (Sec. II "Evaluation protocols for FMs"): unlike linear probing, some or
// all backbone parameters update together with the classification head.
//
// Supported configurations, mirroring the protocols the paper describes:
//   kFull          — update every layer;
//   kHeadOnly      — freeze the backbone (linear probing through the
//                    full-graph path; slower than train::linear_probe but
//                    numerically equivalent in expectation);
//   kTopBlocks(k)  — freeze everything below the top k transformer blocks.
#pragma once

#include "data/datasets.hpp"
#include "models/mae.hpp"
#include "models/vit.hpp"

namespace geofm::train {

enum class FinetuneMode { kFull, kHeadOnly, kTopBlocks };

struct FinetuneConfig {
  FinetuneMode mode = FinetuneMode::kFull;
  int top_blocks = 2;     // used by kTopBlocks
  i64 epochs = 20;
  i64 batch_size = 64;
  double base_lr = 1e-3;  // AdamW
  double weight_decay = 0.05;
  double warmup_frac = 0.1;
  u64 seed = 0;
  bool verbose = false;
};

struct FinetuneResult {
  std::vector<double> top1_per_epoch;  // test accuracy after each epoch
  std::vector<float> train_loss_per_epoch;
  double final_top1 = 0.0;
  double final_top5 = 0.0;
  i64 trainable_params = 0;
};

/// Copies a pretrained MAE's encoder weights (patch embed, cls token,
/// blocks, final norm) into a ViT encoder of the same architecture. The
/// ViT may carry a classification head (left at its own initialization).
void init_vit_from_mae(models::ViTEncoder& vit, models::MAE& mae);

/// Applies the freeze policy to the encoder (head always trains).
void apply_finetune_mode(models::ViTEncoder& vit, FinetuneMode mode,
                         int top_blocks);

/// Full fine-tuning loop on `dataset` with softmax cross-entropy.
FinetuneResult finetune(models::ViTEncoder& vit,
                        const data::SceneDataset& dataset,
                        const FinetuneConfig& cfg);

}  // namespace geofm::train
