#include "train/linear_probe.hpp"

#include <algorithm>

#include "nn/linear.hpp"
#include "optim/optimizer.hpp"
#include "tensor/ops.hpp"
#include "util/log.hpp"

namespace geofm::train {

std::pair<Tensor, std::vector<i64>> extract_features(
    models::MAE& encoder, const data::SceneDataset& dataset, data::Split split,
    i64 batch_size) {
  const i64 n = dataset.size(split);
  GEOFM_CHECK(n > 0);
  const i64 width = encoder.config().encoder.width;
  Tensor features({n, width});
  std::vector<i64> labels(static_cast<size_t>(n));

  for (i64 begin = 0; begin < n; begin += batch_size) {
    const i64 end = std::min<i64>(begin + batch_size, n);
    std::vector<i64> idx;
    idx.reserve(static_cast<size_t>(end - begin));
    for (i64 i = begin; i < end; ++i) idx.push_back(i);
    auto [images, batch_labels] = dataset.make_batch(split, idx);
    Tensor f = encoder.encode(images);
    features.flat_view(begin * width, (end - begin) * width).copy_(f);
    for (i64 i = begin; i < end; ++i) {
      labels[static_cast<size_t>(i)] =
          batch_labels[static_cast<size_t>(i - begin)];
    }
  }
  return {features, labels};
}

namespace {

struct Eval {
  double top1;
  double top5;
};

Eval evaluate(nn::Linear& head, const Tensor& features,
              const std::vector<i64>& labels) {
  Tensor logits = head.forward(features);
  return {ops::topk_accuracy(logits, labels, 1),
          ops::topk_accuracy(logits, labels, 5)};
}

}  // namespace

ProbeResult linear_probe(models::MAE& encoder,
                         const data::SceneDataset& dataset,
                         const ProbeConfig& cfg) {
  GEOFM_CHECK(cfg.epochs > 0 && cfg.batch_size > 0);

  auto [train_x, train_y] =
      extract_features(encoder, dataset, data::Split::kTrain);
  auto [test_x, test_y] =
      extract_features(encoder, dataset, data::Split::kTest);

  const i64 n_train = train_x.dim(0);
  const i64 width = train_x.dim(1);
  const i64 classes = dataset.n_classes();

  // MAE's probing protocol places a (non-affine) BatchNorm before the
  // linear head. With a frozen backbone that is equivalent to z-scoring
  // both splits with the training-set feature statistics.
  {
    for (i64 d = 0; d < width; ++d) {
      double mean = 0;
      for (i64 i = 0; i < n_train; ++i) mean += train_x.at({i, d});
      mean /= static_cast<double>(n_train);
      double var = 0;
      for (i64 i = 0; i < n_train; ++i) {
        const double diff = train_x.at({i, d}) - mean;
        var += diff * diff;
      }
      var /= static_cast<double>(n_train);
      const float rstd = static_cast<float>(1.0 / std::sqrt(var + 1e-6));
      for (i64 i = 0; i < n_train; ++i) {
        train_x.at({i, d}) =
            (train_x.at({i, d}) - static_cast<float>(mean)) * rstd;
      }
      for (i64 i = 0; i < test_x.dim(0); ++i) {
        test_x.at({i, d}) =
            (test_x.at({i, d}) - static_cast<float>(mean)) * rstd;
      }
    }
  }

  Rng rng(cfg.seed ^ hash_name(dataset.name().c_str()));
  nn::Linear head("probe.head", width, classes, rng);
  head.weight.value.zero_();  // MAE linear-probe convention: zero-init head
  if (head.bias.value.defined()) head.bias.value.zero_();

  const double peak_lr =
      cfg.base_lr * static_cast<double>(cfg.batch_size) / 256.0;
  optim::Lars opt(head.parameters(), peak_lr, cfg.momentum,
                  /*weight_decay=*/0.0, /*trust=*/0.01);

  const i64 steps_per_epoch =
      std::max<i64>(1, n_train / cfg.batch_size);
  const i64 total_steps = steps_per_epoch * cfg.epochs;
  const i64 warmup = static_cast<i64>(total_steps * cfg.warmup_frac);

  ProbeResult result;
  std::vector<i64> order(static_cast<size_t>(n_train));
  for (i64 i = 0; i < n_train; ++i) order[static_cast<size_t>(i)] = i;

  i64 global_step = 0;
  for (i64 epoch = 0; epoch < cfg.epochs; ++epoch) {
    // Reshuffle per epoch, reproducibly.
    Rng shuffle_rng = Rng(cfg.seed).split(0xf00dULL).split(
        static_cast<u64>(epoch));
    for (i64 i = n_train - 1; i > 0; --i) {
      const i64 j = shuffle_rng.uniform_int(i + 1);
      std::swap(order[static_cast<size_t>(i)], order[static_cast<size_t>(j)]);
    }

    for (i64 s = 0; s < steps_per_epoch; ++s) {
      const i64 begin = s * cfg.batch_size;
      const i64 end = std::min<i64>(begin + cfg.batch_size, n_train);
      std::vector<i64> idx(order.begin() + begin, order.begin() + end);
      Tensor xb = ops::gather_rows(train_x, idx);
      std::vector<i64> yb;
      yb.reserve(idx.size());
      for (i64 i : idx) yb.push_back(train_y[static_cast<size_t>(i)]);

      opt.set_lr(optim::cosine_warmup_lr(peak_lr, global_step, warmup,
                                         total_steps));
      opt.zero_grad();
      Tensor logits = head.forward(xb);
      auto ce = ops::softmax_cross_entropy(logits, yb);
      head.backward(ops::softmax_cross_entropy_backward(ce, yb));
      opt.step();
      ++global_step;
    }

    const Eval ev = evaluate(head, test_x, test_y);
    result.top1_per_epoch.push_back(ev.top1);
    result.top5_per_epoch.push_back(ev.top5);
    if (cfg.verbose) {
      GEOFM_INFO("probe " << dataset.name() << " epoch " << epoch << " top1 "
                          << ev.top1);
    }
  }
  result.final_top1 = result.top1_per_epoch.back();
  result.final_top5 = result.top5_per_epoch.back();
  return result;
}

}  // namespace geofm::train
